#include "moe/router.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace hybrimoe::moe {
namespace {

TEST(RouterTest, ConstructorValidates) {
  EXPECT_THROW(Router(0, 1), std::invalid_argument);
  EXPECT_THROW(Router(4, 0), std::invalid_argument);
  EXPECT_THROW(Router(4, 5), std::invalid_argument);
  EXPECT_NO_THROW(Router(4, 4));
}

TEST(RouterTest, RouteTokenPicksTopK) {
  Router router(4, 2);
  const std::vector<float> logits{0.1f, 2.0f, -1.0f, 1.5f};
  const auto r = router.route_token(logits);
  ASSERT_EQ(r.experts.size(), 2U);
  EXPECT_EQ(r.experts[0], 1U);
  EXPECT_EQ(r.experts[1], 3U);
  EXPECT_NEAR(r.weights[0] + r.weights[1], 1.0, 1e-6);
  EXPECT_GT(r.weights[0], r.weights[1]);
}

TEST(RouterTest, FullScoresAreSoftmax) {
  Router router(3, 1);
  const std::vector<float> logits{0.0f, 0.0f, 0.0f};
  const auto s = router.full_scores(logits);
  for (const float v : s) EXPECT_NEAR(v, 1.0f / 3.0f, 1e-6);
}

TEST(RouterTest, BatchLoadsSumToTokensTimesK) {
  util::Rng rng(31);
  constexpr std::size_t kExperts = 16;
  constexpr std::size_t kTopK = 3;
  constexpr std::size_t kTokens = 40;
  Router router(kExperts, kTopK);
  std::vector<float> logits(kTokens * kExperts);
  for (float& v : logits) v = static_cast<float>(rng.gaussian());
  const auto routing = router.route_batch(logits, kTokens);
  EXPECT_EQ(routing.total_tokens, kTokens);
  const auto total =
      std::accumulate(routing.loads.begin(), routing.loads.end(), 0U);
  EXPECT_EQ(total, kTokens * kTopK);
}

TEST(RouterTest, BatchScoresAreMeanSoftmax) {
  Router router(2, 1);
  // Token A: strongly expert 0; token B: strongly expert 1 (symmetric).
  const std::vector<float> logits{5.0f, -5.0f, -5.0f, 5.0f};
  const auto routing = router.route_batch(logits, 2);
  EXPECT_NEAR(routing.scores[0], 0.5f, 1e-4);
  EXPECT_NEAR(routing.scores[1], 0.5f, 1e-4);
  EXPECT_EQ(routing.loads[0], 1U);
  EXPECT_EQ(routing.loads[1], 1U);
}

TEST(RouterTest, ActivatedListsNonZeroLoads) {
  LayerRouting r;
  r.loads = {0, 3, 0, 1};
  EXPECT_EQ(r.activated(), (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(r.activated_count(), 2U);
}

TEST(RouterTest, SizeMismatchThrows) {
  Router router(4, 2);
  const std::vector<float> short_logits{1.0f, 2.0f};
  EXPECT_THROW((void)router.route_token(short_logits), std::invalid_argument);
  EXPECT_THROW((void)router.route_batch(short_logits, 1), std::invalid_argument);
  EXPECT_THROW((void)router.route_batch(short_logits, 0), std::invalid_argument);
}

/// Property sweep over (experts, k): every token contributes exactly k load
/// units; activated count per token == k; scores sum to ~1.
class RouterParamTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(RouterParamTest, Invariants) {
  const auto [experts, k] = GetParam();
  util::Rng rng(experts * 100 + k);
  Router router(experts, k);
  std::vector<float> logits(experts);
  for (float& v : logits) v = static_cast<float>(rng.gaussian());

  const auto token = router.route_token(logits);
  EXPECT_EQ(token.experts.size(), k);
  double wsum = 0.0;
  for (const float w : token.weights) {
    EXPECT_GT(w, 0.0f);
    wsum += w;
  }
  EXPECT_NEAR(wsum, 1.0, 1e-5);

  const auto scores = router.full_scores(logits);
  EXPECT_NEAR(std::accumulate(scores.begin(), scores.end(), 0.0), 1.0, 1e-5);

  // The selected experts hold the k highest scores.
  for (const auto e : token.experts) {
    for (std::size_t other = 0; other < experts; ++other) {
      if (std::find(token.experts.begin(), token.experts.end(), other) ==
          token.experts.end()) {
        EXPECT_GE(scores[e], scores[other]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RouterParamTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{8, 2},   // Mixtral
                      std::pair<std::size_t, std::size_t>{64, 8},  // Qwen2
                      std::pair<std::size_t, std::size_t>{64, 6},  // DeepSeek
                      std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{5, 5}));

}  // namespace
}  // namespace hybrimoe::moe
