#include "moe/model_config.hpp"

#include <gtest/gtest.h>

namespace hybrimoe::moe {
namespace {

// Paper Table II, asserted exactly.
TEST(ModelConfigTest, MixtralMatchesTableII) {
  const auto c = ModelConfig::mixtral();
  EXPECT_EQ(c.name, "Mixtral");
  EXPECT_EQ(c.num_layers, 32U);
  EXPECT_EQ(c.num_shared_experts, 0U);
  EXPECT_EQ(c.num_routed_experts, 8U);
  EXPECT_EQ(c.top_k, 2U);
  EXPECT_EQ(c.routed.d_model, 4096U);
  EXPECT_EQ(c.routed.d_ff, 14336U);
  EXPECT_FALSE(c.shared.valid());
  EXPECT_NO_THROW(c.validate());
}

TEST(ModelConfigTest, Qwen2MatchesTableII) {
  const auto c = ModelConfig::qwen2();
  EXPECT_EQ(c.num_layers, 28U);
  EXPECT_EQ(c.num_shared_experts, 1U);
  EXPECT_EQ(c.num_routed_experts, 64U);
  EXPECT_EQ(c.top_k, 8U);
  EXPECT_EQ(c.routed.d_model, 3584U);
  EXPECT_EQ(c.routed.d_ff, 18944U);
  EXPECT_EQ(c.shared.d_model, 3584U);
  EXPECT_EQ(c.shared.d_ff, 20480U);
  EXPECT_NO_THROW(c.validate());
}

TEST(ModelConfigTest, DeepSeekMatchesTableII) {
  const auto c = ModelConfig::deepseek();
  EXPECT_EQ(c.num_layers, 26U);
  EXPECT_EQ(c.num_shared_experts, 2U);
  EXPECT_EQ(c.num_routed_experts, 64U);
  EXPECT_EQ(c.top_k, 6U);
  EXPECT_EQ(c.routed.d_model, 2048U);
  EXPECT_EQ(c.routed.d_ff, 1408U);
  EXPECT_NO_THROW(c.validate());
}

TEST(ModelConfigTest, PaperModelsOrderAndCount) {
  const auto& models = paper_models();
  ASSERT_EQ(models.size(), 3U);
  EXPECT_EQ(models[0].name, "Mixtral");
  EXPECT_EQ(models[1].name, "Qwen2");
  EXPECT_EQ(models[2].name, "DeepSeek");
}

TEST(ExpertShapeTest, ParamAndByteMath) {
  const ExpertShape s{2048, 1408};
  EXPECT_EQ(s.params(), 3U * 2048U * 1408U);
  // 4.25 effective bits.
  EXPECT_EQ(s.bytes(4.25), static_cast<std::size_t>(s.params() * 4.25 / 8.0));
  EXPECT_DOUBLE_EQ(s.flops(1), 2.0 * static_cast<double>(s.params()));
  EXPECT_DOUBLE_EQ(s.flops(10), 10.0 * s.flops(1));
}

TEST(ModelConfigTest, DerivedQuantities) {
  const auto c = ModelConfig::deepseek();
  EXPECT_EQ(c.total_routed_experts(), 26U * 64U);
  EXPECT_EQ(c.routed_expert_bytes(), c.routed.bytes(c.bits_per_weight));
  EXPECT_EQ(c.shared_expert_bytes(), c.shared.bytes(c.bits_per_weight));
  EXPECT_GT(c.attention_flops_per_token(), 0.0);
  EXPECT_GT(c.attention_bytes(), 0U);
  // Mixtral has no shared experts -> zero bytes.
  EXPECT_EQ(ModelConfig::mixtral().shared_expert_bytes(), 0U);
}

TEST(ModelConfigTest, ExpertSizesOrderAcrossModels) {
  // DeepSeek experts are tiny; Mixtral and Qwen2 experts are ~20x larger —
  // the property that flips the decode scheduling regime.
  const auto mixtral = ModelConfig::mixtral().routed_expert_bytes();
  const auto qwen2 = ModelConfig::qwen2().routed_expert_bytes();
  const auto deepseek = ModelConfig::deepseek().routed_expert_bytes();
  EXPECT_GT(mixtral, 10 * deepseek);
  EXPECT_GT(qwen2, 10 * deepseek);
}

TEST(ModelConfigTest, ValidateRejectsBadConfigs) {
  auto c = ModelConfig::deepseek();
  c.top_k = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = ModelConfig::deepseek();
  c.top_k = c.num_routed_experts + 1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = ModelConfig::deepseek();
  c.num_layers = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = ModelConfig::deepseek();
  c.routed = {};
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = ModelConfig::deepseek();
  c.shared = {};  // but num_shared_experts == 2
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = ModelConfig::deepseek();
  c.bits_per_weight = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ModelConfigTest, TinyIsValidAndSmall) {
  const auto c = ModelConfig::tiny();
  EXPECT_NO_THROW(c.validate());
  EXPECT_LT(c.routed.params(), 10000U);
}

}  // namespace
}  // namespace hybrimoe::moe
