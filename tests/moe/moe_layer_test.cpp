#include "moe/moe_layer.hpp"

#include <gtest/gtest.h>

#include "kernels/ops.hpp"
#include "util/rng.hpp"

namespace hybrimoe::moe {
namespace {

std::vector<float> random_input(util::Rng& rng, std::size_t dim) {
  std::vector<float> x(dim);
  for (float& v : x) v = static_cast<float>(rng.gaussian());
  return x;
}

TEST(MoeLayerTest, ForwardShapeAndDeterminism) {
  util::Rng rng1(41);
  util::Rng rng2(41);
  const MoeLayer a(rng1, 8, 2, 24, 48);
  const MoeLayer b(rng2, 8, 2, 24, 48);
  util::Rng xr(1);
  const auto x = random_input(xr, 24);
  const auto ya = a.forward(x);
  const auto yb = b.forward(x);
  ASSERT_EQ(ya.size(), 24U);
  EXPECT_EQ(kernels::max_abs_diff(ya, yb), 0.0);
}

TEST(MoeLayerTest, ForwardEqualsManualCombination) {
  util::Rng rng(42);
  const MoeLayer layer(rng, 8, 3, 16, 32);
  util::Rng xr(2);
  const auto x = random_input(xr, 16);
  const auto routing = layer.route(x);
  ASSERT_EQ(routing.experts.size(), 3U);

  std::vector<float> manual(16, 0.0f);
  for (std::size_t k = 0; k < routing.experts.size(); ++k) {
    const auto out = layer.expert_output(routing.experts[k], x);
    for (std::size_t i = 0; i < manual.size(); ++i)
      manual[i] += routing.weights[k] * out[i];
  }
  EXPECT_LT(kernels::max_abs_diff(layer.forward(x), manual), 1e-6);
}

TEST(MoeLayerTest, PartitionedComputationMatchesReference) {
  // The core functional guarantee behind offload scheduling: computing
  // disjoint expert subsets separately (as if on CPU and GPU) and summing
  // gives exactly the reference forward.
  util::Rng rng(43);
  const MoeLayer layer(rng, 8, 4, 16, 32, /*num_shared=*/1);
  util::Rng xr(3);
  const auto x = random_input(xr, 16);
  const auto routing = layer.route(x);
  const auto reference = layer.forward(x);

  // Split routed experts into "cpu" (even index) and "gpu" (odd index).
  TokenRouting cpu_part;
  TokenRouting gpu_part;
  for (std::size_t k = 0; k < routing.experts.size(); ++k) {
    auto& part = (k % 2 == 0) ? cpu_part : gpu_part;
    part.experts.push_back(routing.experts[k]);
    part.weights.push_back(routing.weights[k]);
  }
  // Shared experts are included by forward_with_routing; run them once via
  // the gpu partition and subtract the extra shared contribution by running
  // an empty routing for the cpu side.
  const auto gpu_out = layer.forward_with_routing(x, gpu_part);      // routed + shared
  const auto cpu_out = layer.forward_with_routing(x, cpu_part);      // routed + shared
  const auto shared_only = layer.forward_with_routing(x, TokenRouting{});

  std::vector<float> combined(x.size());
  for (std::size_t i = 0; i < combined.size(); ++i)
    combined[i] = gpu_out[i] + cpu_out[i] - shared_only[i];
  EXPECT_LT(kernels::max_abs_diff(reference, combined), 1e-5);
}

TEST(MoeLayerTest, SharedExpertsAlwaysApplied) {
  util::Rng rng(44);
  const MoeLayer with_shared(rng, 4, 1, 16, 32, /*num_shared=*/2);
  util::Rng xr(4);
  const auto x = random_input(xr, 16);
  const auto shared_only = with_shared.forward_with_routing(x, TokenRouting{});
  EXPECT_GT(kernels::l2_norm(shared_only), 0.0);
}

TEST(MoeLayerTest, QuantizedForwardCloseToDense) {
  util::Rng rng1(45);
  util::Rng rng2(45);
  const MoeLayer dense(rng1, 8, 2, 32, 64, 1, /*quantized=*/false);
  const MoeLayer quant(rng2, 8, 2, 32, 64, 1, /*quantized=*/true);
  util::Rng xr(5);
  const auto x = random_input(xr, 32);
  const auto yd = dense.forward(x);
  const auto yq = quant.forward(x);
  std::vector<float> diff(yd.size());
  for (std::size_t i = 0; i < diff.size(); ++i) diff[i] = yd[i] - yq[i];
  EXPECT_LT(kernels::l2_norm(diff) / (kernels::l2_norm(yd) + 1e-9), 0.3);
}

TEST(MoeLayerTest, RejectsBadExpertIndex) {
  util::Rng rng(46);
  const MoeLayer layer(rng, 4, 1, 8, 16);
  util::Rng xr(6);
  const auto x = random_input(xr, 8);
  EXPECT_THROW((void)layer.expert_output(4, x), std::invalid_argument);
}

TEST(MoeLayerTest, MismatchedRoutingThrows) {
  util::Rng rng(47);
  const MoeLayer layer(rng, 4, 1, 8, 16);
  util::Rng xr(7);
  const auto x = random_input(xr, 8);
  TokenRouting bad;
  bad.experts = {0, 1};
  bad.weights = {1.0f};  // length mismatch
  EXPECT_THROW((void)layer.forward_with_routing(x, bad), std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::moe
