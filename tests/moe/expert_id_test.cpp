#include "moe/expert_id.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

namespace hybrimoe::moe {
namespace {

TEST(ExpertIdTest, EncodeDecodeRoundTrip) {
  for (const auto id : {ExpertId{0, 0}, ExpertId{1, 2}, ExpertId{31, 63},
                        ExpertId{65535, 65535}}) {
    EXPECT_EQ(ExpertId::decode(id.encode()), id);
  }
}

TEST(ExpertIdTest, EncodingIsInjective) {
  std::unordered_set<std::uint32_t> seen;
  for (std::uint16_t l = 0; l < 40; ++l)
    for (std::uint16_t e = 0; e < 70; ++e)
      EXPECT_TRUE(seen.insert(ExpertId{l, e}.encode()).second);
}

TEST(ExpertIdTest, OrderingIsLayerMajor) {
  EXPECT_LT((ExpertId{0, 5}), (ExpertId{1, 0}));
  EXPECT_LT((ExpertId{1, 0}), (ExpertId{1, 1}));
  std::vector<ExpertId> ids{{2, 0}, {0, 3}, {1, 1}, {0, 1}};
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids.front(), (ExpertId{0, 1}));
  EXPECT_EQ(ids.back(), (ExpertId{2, 0}));
}

TEST(ExpertIdTest, HashUsableInUnorderedContainers) {
  std::unordered_set<ExpertId> set;
  set.insert({3, 7});
  set.insert({3, 7});  // duplicate
  set.insert({7, 3});
  EXPECT_EQ(set.size(), 2U);
  EXPECT_TRUE(set.contains(ExpertId{3, 7}));
  EXPECT_FALSE(set.contains(ExpertId{3, 8}));
}

TEST(ExpertIdTest, ToStringFormat) {
  EXPECT_EQ((ExpertId{4, 12}).to_string(), "L4/E12");
}

}  // namespace
}  // namespace hybrimoe::moe
