#include "moe/gating.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace hybrimoe::moe {
namespace {

std::vector<float> unit_vector(util::Rng& rng, std::size_t dim) {
  std::vector<float> h(dim);
  double sq = 0.0;
  for (float& v : h) {
    v = static_cast<float>(rng.gaussian());
    sq += static_cast<double>(v) * v;
  }
  const auto inv = static_cast<float>(1.0 / std::sqrt(sq));
  for (float& v : h) v *= inv;
  return h;
}

TEST(GateSetTest, DeterministicInSeed) {
  const auto config = ModelConfig::tiny(3, 8, 2);
  GateSet a(config, 16, 99);
  GateSet b(config, 16, 99);
  util::Rng rng(1);
  const auto h = unit_vector(rng, 16);
  for (std::size_t l = 0; l < 3; ++l) {
    const auto la = a.logits(l, h);
    const auto lb = b.logits(l, h);
    for (std::size_t e = 0; e < la.size(); ++e) EXPECT_EQ(la[e], lb[e]);
  }
}

TEST(GateSetTest, DifferentSeedsDiffer) {
  const auto config = ModelConfig::tiny(1, 8, 2);
  GateSet a(config, 16, 1);
  GateSet b(config, 16, 2);
  util::Rng rng(2);
  const auto h = unit_vector(rng, 16);
  const auto la = a.logits(0, h);
  const auto lb = b.logits(0, h);
  bool any_diff = false;
  for (std::size_t e = 0; e < la.size(); ++e) any_diff |= la[e] != lb[e];
  EXPECT_TRUE(any_diff);
}

TEST(GateSetTest, LayersAreIndependent) {
  const auto config = ModelConfig::tiny(2, 8, 2);
  GateSet gates(config, 16, 5);
  util::Rng rng(3);
  const auto h = unit_vector(rng, 16);
  const auto l0 = gates.logits(0, h);
  const auto l1 = gates.logits(1, h);
  bool any_diff = false;
  for (std::size_t e = 0; e < l0.size(); ++e) any_diff |= l0[e] != l1[e];
  EXPECT_TRUE(any_diff);
}

TEST(GateSetTest, TemperatureScalesLogits) {
  const auto config = ModelConfig::tiny(1, 8, 2);
  GateSet gates(config, 16, 7);
  util::Rng rng(4);
  const auto h = unit_vector(rng, 16);
  const auto base = gates.logits(0, h, 1.0);
  const auto sharp = gates.logits(0, h, 0.5);
  for (std::size_t e = 0; e < base.size(); ++e)
    EXPECT_NEAR(sharp[e], base[e] * 2.0f, 1e-5);
}

TEST(GateSetTest, LogitsAreOrderOne) {
  // Unit-norm hidden + unit-variance rows keep logits O(1).
  const auto config = ModelConfig::tiny(1, 64, 2);
  GateSet gates(config, 32, 8);
  util::Rng rng(5);
  const auto h = unit_vector(rng, 32);
  const auto logits = gates.logits(0, h);
  const float amax = *std::max_element(logits.begin(), logits.end());
  EXPECT_LT(std::abs(amax), 6.0f);
}

TEST(GateSetTest, RejectsBadInputs) {
  const auto config = ModelConfig::tiny(2, 8, 2);
  GateSet gates(config, 16, 9);
  util::Rng rng(6);
  const auto h = unit_vector(rng, 16);
  EXPECT_THROW((void)gates.logits(2, h), std::invalid_argument);  // layer OOR
  const std::vector<float> short_h(8, 0.0f);
  EXPECT_THROW((void)gates.logits(0, short_h), std::invalid_argument);
  EXPECT_THROW((void)gates.logits(0, h, 0.0), std::invalid_argument);
  EXPECT_THROW(GateSet(config, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::moe
