#include "workload/sparsity.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/stats.hpp"
#include "workload/generator.hpp"

namespace hybrimoe::workload {
namespace {

TEST(ZipfTest, NormalisedAndDecreasing) {
  const auto freq = zipf_frequencies(100);
  EXPECT_NEAR(std::accumulate(freq.begin(), freq.end(), 0.0), 1.0, 1e-9);
  for (std::size_t i = 1; i < freq.size(); ++i) EXPECT_LE(freq[i], freq[i - 1]);
}

TEST(ZipfTest, SteeperExponentMoreConcentrated) {
  const auto mild = zipf_frequencies(1000, 0.8);
  const auto steep = zipf_frequencies(1000, 1.6);
  EXPECT_LT(top_share(mild, 0.1), top_share(steep, 0.1));
}

TEST(ZipfTest, HotNeuronShapeMatchesPowerInferPremise) {
  // The paper's Fig. 3(a): a small fraction of neurons dominates dense-model
  // activations. With default parameters, the top 10% should hold >50%.
  const auto freq = zipf_frequencies(4096);
  EXPECT_GT(top_share(freq, 0.10), 0.5);
  EXPECT_GT(top_share(freq, 0.20), 0.6);
}

TEST(ZipfTest, InputValidation) {
  EXPECT_THROW((void)zipf_frequencies(0), std::invalid_argument);
  EXPECT_THROW((void)zipf_frequencies(10, 0.0), std::invalid_argument);
  EXPECT_THROW((void)zipf_frequencies(10, 1.0, -1.0), std::invalid_argument);
}

TEST(TopShareTest, Basics) {
  const std::vector<double> freq{0.5, 0.3, 0.2};
  EXPECT_NEAR(top_share(freq, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(top_share(freq, 0.0), 0.0, 1e-12);
  // Top 1 of 3 items (33%) holds 0.5 of the mass.
  EXPECT_NEAR(top_share(freq, 0.34), 0.5, 1e-12);
  EXPECT_THROW((void)top_share(freq, 1.5), std::invalid_argument);
  EXPECT_THROW((void)top_share({}, 0.5), std::invalid_argument);
}

TEST(SparsityContrastTest, ExpertActivationsFlatterThanNeurons) {
  // The central claim of Fig. 3(a): MoE expert activation frequencies are
  // far less concentrated than neuron-level sparsity.
  const auto neurons = zipf_frequencies(4096);

  const auto model = moe::ModelConfig::deepseek();
  TraceGenParams params;
  params.seed = 31;
  TraceGenerator gen(model, params);
  const auto freq = activation_frequencies(gen.generate_decode(128), model);
  std::vector<double> experts;
  for (const auto& layer : freq)
    experts.insert(experts.end(), layer.begin(), layer.end());

  EXPECT_GT(util::gini(neurons), 2.0 * util::gini(experts));
  EXPECT_GT(top_share(neurons, 0.2), top_share(experts, 0.2) + 0.2);
}

}  // namespace
}  // namespace hybrimoe::workload
