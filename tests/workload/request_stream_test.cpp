#include "workload/request_stream.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hybrimoe::workload {
namespace {

RequestStreamParams tiny_params() {
  RequestStreamParams p;
  p.num_requests = 32;
  p.arrival_rate = 4.0;
  p.prompt_tokens_min = 4;
  p.prompt_tokens_max = 12;
  p.decode_tokens_min = 2;
  p.decode_tokens_max = 6;
  p.seed = 7;
  return p;
}

TEST(RequestStreamTest, DeterministicForSameSeed) {
  const auto a = generate_request_stream(tiny_params());
  const auto b = generate_request_stream(tiny_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
    EXPECT_EQ(a[i].decode_tokens, b[i].decode_tokens);
  }
}

TEST(RequestStreamTest, DifferentSeedsDiffer) {
  auto p = tiny_params();
  const auto a = generate_request_stream(p);
  p.seed = 8;
  const auto b = generate_request_stream(p);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].arrival_time != b[i].arrival_time) any_different = true;
  EXPECT_TRUE(any_different);
}

TEST(RequestStreamTest, ArrivalsSortedIdsSequentialLengthsBounded) {
  const auto p = tiny_params();
  const auto stream = generate_request_stream(p);
  ASSERT_EQ(stream.size(), p.num_requests);
  double prev = 0.0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].id, i);
    EXPECT_GE(stream[i].arrival_time, prev);
    prev = stream[i].arrival_time;
    EXPECT_GE(stream[i].prompt_tokens, p.prompt_tokens_min);
    EXPECT_LE(stream[i].prompt_tokens, p.prompt_tokens_max);
    EXPECT_GE(stream[i].decode_tokens, p.decode_tokens_min);
    EXPECT_LE(stream[i].decode_tokens, p.decode_tokens_max);
  }
}

TEST(RequestStreamTest, PoissonMeanRateRoughlyMatches) {
  auto p = tiny_params();
  p.num_requests = 512;
  const auto stream = generate_request_stream(p);
  const double span = stream.back().arrival_time;
  const double rate = static_cast<double>(p.num_requests) / span;
  // Statistical check with a fixed seed: the empirical rate is within a
  // generous factor of the nominal one.
  EXPECT_GT(rate, p.arrival_rate * 0.7);
  EXPECT_LT(rate, p.arrival_rate * 1.3);
}

TEST(RequestStreamTest, BurstGroupsArriveTogetherAtTheSameMeanRate) {
  auto p = tiny_params();
  p.process = ArrivalProcess::Burst;
  p.burst_size = 4;
  p.num_requests = 256;
  const auto stream = generate_request_stream(p);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (i % p.burst_size != 0) {
      EXPECT_DOUBLE_EQ(stream[i].arrival_time, stream[i - 1].arrival_time);
    }
  }
  const double rate = static_cast<double>(p.num_requests) / stream.back().arrival_time;
  EXPECT_GT(rate, p.arrival_rate * 0.7);
  EXPECT_LT(rate, p.arrival_rate * 1.3);
}

TEST(RequestStreamTest, DiurnalIsDeterministicForSameSeed) {
  auto p = tiny_params();
  p.process = ArrivalProcess::Diurnal;
  p.diurnal_period = 4.0;
  p.diurnal_amplitude = 0.8;
  const auto a = generate_request_stream(p);
  const auto b = generate_request_stream(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
  }
}

TEST(RequestStreamTest, DiurnalMeanRateRoughlyMatchesOverWholePeriods) {
  auto p = tiny_params();
  p.process = ArrivalProcess::Diurnal;
  p.num_requests = 1024;
  p.arrival_rate = 8.0;
  p.diurnal_period = 4.0;  // ~32 day/night swings across the stream
  p.diurnal_amplitude = 0.9;
  const auto stream = generate_request_stream(p);
  const double rate = static_cast<double>(p.num_requests) / stream.back().arrival_time;
  // Thinning preserves the mean rate over whole periods.
  EXPECT_GT(rate, p.arrival_rate * 0.7);
  EXPECT_LT(rate, p.arrival_rate * 1.3);
}

TEST(RequestStreamTest, DiurnalRateActuallySwings) {
  // Arrivals must cluster in the sinusoid's peaks: the densest
  // quarter-period holds clearly more arrivals than the sparsest.
  auto p = tiny_params();
  p.process = ArrivalProcess::Diurnal;
  p.num_requests = 1024;
  p.arrival_rate = 8.0;
  p.diurnal_period = 16.0;
  p.diurnal_amplitude = 0.9;
  const auto stream = generate_request_stream(p);
  std::size_t peak = 0, trough = 0;
  for (const auto& r : stream) {
    // Phase 0..1 within the period; sin peaks in the first quarter and
    // bottoms out in the third.
    const double phase = r.arrival_time / p.diurnal_period;
    const double frac = phase - static_cast<double>(static_cast<long>(phase));
    if (frac < 0.25) ++peak;
    if (frac >= 0.5 && frac < 0.75) ++trough;
  }
  EXPECT_GT(peak, trough * 2);
}

TEST(RequestStreamTest, ArrivalNamesRoundTripWithSuggestions) {
  EXPECT_EQ(arrival_from_name("poisson"), ArrivalProcess::Poisson);
  EXPECT_EQ(arrival_from_name("burst"), ArrivalProcess::Burst);
  EXPECT_EQ(arrival_from_name("diurnal"), ArrivalProcess::Diurnal);
  EXPECT_STREQ(to_string(ArrivalProcess::Diurnal), "diurnal");
  try {
    (void)arrival_from_name("diurnall");
    FAIL() << "unknown arrival process accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("diurnal"), std::string::npos) << e.what();
  }
}

TEST(RequestStreamTest, ValidateRejectsBadDiurnalParams) {
  auto p = tiny_params();
  p.process = ArrivalProcess::Diurnal;
  p.diurnal_period = 0.0;
  EXPECT_THROW((void)generate_request_stream(p), std::invalid_argument);
  p = tiny_params();
  p.process = ArrivalProcess::Diurnal;
  p.diurnal_amplitude = 1.0;  // would let the rate touch zero
  EXPECT_THROW((void)generate_request_stream(p), std::invalid_argument);
  p = tiny_params();
  p.process = ArrivalProcess::Diurnal;
  p.diurnal_amplitude = -0.1;
  EXPECT_THROW((void)generate_request_stream(p), std::invalid_argument);
}

TEST(RequestStreamTest, ValidateRejectsBadParams) {
  auto p = tiny_params();
  p.num_requests = 0;
  EXPECT_THROW((void)generate_request_stream(p), std::invalid_argument);
  p = tiny_params();
  p.arrival_rate = 0.0;
  EXPECT_THROW((void)generate_request_stream(p), std::invalid_argument);
  p = tiny_params();
  p.prompt_tokens_min = 0;
  EXPECT_THROW((void)generate_request_stream(p), std::invalid_argument);
  p = tiny_params();
  p.prompt_tokens_min = 20;  // > max
  EXPECT_THROW((void)generate_request_stream(p), std::invalid_argument);
  p = tiny_params();
  p.decode_tokens_min = 9;  // > max
  EXPECT_THROW((void)generate_request_stream(p), std::invalid_argument);
  p = tiny_params();
  p.process = ArrivalProcess::Burst;
  p.burst_size = 0;
  EXPECT_THROW((void)generate_request_stream(p), std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::workload
