#include "workload/datasets.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/stats.hpp"

namespace hybrimoe::workload {
namespace {

TEST(DatasetsTest, Names) {
  EXPECT_STREQ(to_string(Dataset::MtBench), "MT-Bench");
  EXPECT_STREQ(to_string(Dataset::VicunaBench), "Vicuna-Bench");
  EXPECT_STREQ(to_string(Dataset::ChatGptPrompts), "ChatGPT-Prompts");
  EXPECT_EQ(kAllDatasets.size(), 3U);
}

TEST(DatasetsTest, PaperPrefillBuckets) {
  ASSERT_EQ(kPaperPrefillLengths.size(), 4U);
  EXPECT_EQ(kPaperPrefillLengths[0], 32U);
  EXPECT_EQ(kPaperPrefillLengths[3], 1024U);
}

TEST(DatasetsTest, SampledLengthsWithinDatasetBounds) {
  util::Rng rng(21);
  for (const auto dataset : kAllDatasets) {
    for (int i = 0; i < 2000; ++i) {
      const auto len = sample_prompt_length(dataset, rng);
      EXPECT_GE(len, 12U);
      EXPECT_LE(len, 2048U);
    }
  }
}

TEST(DatasetsTest, MedianOrderingAcrossDatasets) {
  // Vicuna questions are shortest, ChatGPT persona prompts longest.
  util::Rng rng(22);
  auto median_of = [&](Dataset d) {
    std::vector<double> lens;
    for (int i = 0; i < 4000; ++i)
      lens.push_back(static_cast<double>(sample_prompt_length(d, rng)));
    return util::percentile(lens, 50.0);
  };
  const double vicuna = median_of(Dataset::VicunaBench);
  const double mtbench = median_of(Dataset::MtBench);
  const double chatgpt = median_of(Dataset::ChatGptPrompts);
  EXPECT_LT(vicuna, mtbench);
  EXPECT_LT(mtbench, chatgpt);
}

TEST(DatasetsTest, BucketedLengthsNearBucket) {
  util::Rng rng(23);
  for (const auto dataset : kAllDatasets) {
    for (const std::size_t bucket : kPaperPrefillLengths) {
      for (int i = 0; i < 200; ++i) {
        const auto len = sample_bucketed_length(dataset, bucket, rng);
        EXPECT_GE(len, static_cast<std::size_t>(static_cast<double>(bucket) * 0.85));
        EXPECT_LE(len, static_cast<std::size_t>(static_cast<double>(bucket) * 1.15));
      }
    }
  }
}

TEST(DatasetsTest, BucketedRejectsTinyBucket) {
  util::Rng rng(24);
  EXPECT_THROW((void)sample_bucketed_length(Dataset::MtBench, 4, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::workload
