#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/stats.hpp"

namespace hybrimoe::workload {
namespace {

TraceGenParams test_params(std::uint64_t seed = 7) {
  TraceGenParams p;
  p.seed = seed;
  return p;
}

TEST(TraceGenParamsTest, Validation) {
  TraceGenParams p;
  p.d_latent = 2;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.token_rho = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.gate_temperature = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  EXPECT_NO_THROW(p.validate());
}

TEST(TraceGeneratorTest, DeterministicForSeed) {
  const auto model = moe::ModelConfig::tiny(4, 16, 3);
  TraceGenerator a(model, test_params());
  TraceGenerator b(model, test_params());
  const auto ta = a.generate_decode(5);
  const auto tb = b.generate_decode(5);
  ASSERT_EQ(ta.num_steps(), tb.num_steps());
  for (std::size_t s = 0; s < ta.num_steps(); ++s)
    for (std::size_t l = 0; l < model.num_layers; ++l)
      EXPECT_EQ(ta.steps[s].layers[l].loads, tb.steps[s].layers[l].loads);
}

TEST(TraceGeneratorTest, GateSeedSeparatesModelFromTokens) {
  const auto model = moe::ModelConfig::tiny(2, 16, 3);
  auto p1 = test_params(1);
  auto p2 = test_params(2);
  p2.gate_seed = p1.effective_gate_seed();  // same model, different tokens
  TraceGenerator g1(model, p1);
  TraceGenerator g2(model, p2);
  const auto t1 = g1.generate_decode(8);
  const auto t2 = g2.generate_decode(8);
  // Different token streams...
  bool differs = false;
  for (std::size_t s = 0; s < 8 && !differs; ++s)
    differs = t1.steps[s].layers[0].loads != t2.steps[s].layers[0].loads;
  EXPECT_TRUE(differs);
  // ...but statistically similar per-expert frequencies (same gates+biases).
  const auto f1 = activation_frequencies(g1.generate_decode(256), model);
  const auto f2 = activation_frequencies(g2.generate_decode(256), model);
  std::vector<double> flat1;
  std::vector<double> flat2;
  for (std::size_t l = 0; l < f1.size(); ++l) {
    flat1.insert(flat1.end(), f1[l].begin(), f1[l].end());
    flat2.insert(flat2.end(), f2[l].begin(), f2[l].end());
  }
  EXPECT_GT(util::pearson(flat1, flat2), 0.5);
}

TEST(TraceGeneratorTest, DecodeStepStructure) {
  const auto model = moe::ModelConfig::tiny(3, 16, 4);
  TraceGenerator gen(model, test_params());
  const auto trace = gen.generate_decode(6);
  ASSERT_EQ(trace.num_steps(), 6U);
  for (const auto& step : trace.steps) {
    EXPECT_EQ(step.tokens, 1U);
    ASSERT_EQ(step.num_layers(), model.num_layers);
    for (const auto& layer : step.layers) {
      // Each decode token activates exactly top_k experts.
      const auto total = std::accumulate(layer.loads.begin(), layer.loads.end(), 0U);
      EXPECT_EQ(total, model.top_k);
      EXPECT_EQ(layer.activated_count(), model.top_k);
      // Scores are a softmax: sum to 1.
      const double ssum =
          std::accumulate(layer.scores.begin(), layer.scores.end(), 0.0);
      EXPECT_NEAR(ssum, 1.0, 1e-4);
    }
  }
}

TEST(TraceGeneratorTest, PrefillLoadsSumToTokensTimesK) {
  const auto model = moe::ModelConfig::tiny(3, 16, 4);
  TraceGenerator gen(model, test_params());
  const auto trace = gen.generate_prefill(37);
  EXPECT_EQ(trace.prompt_tokens, 37U);
  for (const auto& layer : trace.forward.layers) {
    const auto total = std::accumulate(layer.loads.begin(), layer.loads.end(), 0U);
    EXPECT_EQ(total, 37U * model.top_k);
  }
}

TEST(TraceGeneratorTest, PredictionsPresentWithinLookahead) {
  const auto model = moe::ModelConfig::tiny(6, 16, 3);
  auto params = test_params();
  params.lookahead = 3;
  TraceGenerator gen(model, params);
  const auto trace = gen.generate_decode(1);
  const auto& fwd = trace.steps[0];
  EXPECT_NE(fwd.prediction(0, 1), nullptr);
  EXPECT_NE(fwd.prediction(0, 3), nullptr);
  EXPECT_EQ(fwd.prediction(0, 4), nullptr);   // beyond lookahead
  EXPECT_EQ(fwd.prediction(3, 3), nullptr);   // not ahead
  EXPECT_EQ(fwd.prediction(5, 6), nullptr);   // beyond last layer
  EXPECT_NE(fwd.prediction(4, 5), nullptr);   // trimmed but valid
}

TEST(TraceGeneratorTest, PredictionsApproximateActualRouting) {
  // Gate-reuse predictions (Fig. 6) must be informative: the predicted
  // activated set overlaps the actual one far above chance, and accuracy
  // decays with lookahead depth.
  const auto model = moe::ModelConfig::deepseek();
  TraceGenerator gen(model, test_params(11));
  const auto trace = gen.generate_decode(24);

  auto overlap_at_depth = [&](std::size_t depth) {
    double overlap = 0.0;
    double count = 0.0;
    for (const auto& step : trace.steps) {
      for (std::size_t l = 0; l + depth < model.num_layers; ++l) {
        const auto* pred = step.prediction(l, l + depth);
        if (pred == nullptr) continue;
        const auto& actual = step.layers[l + depth];
        for (std::size_t e = 0; e < actual.loads.size(); ++e)
          if (pred->loads[e] > 0 && actual.loads[e] > 0) overlap += 1.0;
        count += static_cast<double>(model.top_k);
      }
    }
    return overlap / count;
  };
  const double depth1 = overlap_at_depth(1);
  const double depth3 = overlap_at_depth(3);
  const double chance = static_cast<double>(model.top_k) /
                        static_cast<double>(model.num_routed_experts);
  EXPECT_GT(depth1, 5.0 * chance);
  EXPECT_GT(depth3, 3.0 * chance);
  EXPECT_GE(depth1, depth3 - 0.02);  // accuracy decays (or ties) with depth
}

TEST(TraceGeneratorTest, TemporalReuseMonotoneInScoreRank) {
  // Fig. 3(b): the higher an expert's score now, the likelier its
  // activation next step. Compare top-quartile vs bottom-quartile ranks.
  const auto model = moe::ModelConfig::deepseek();
  TraceGenerator gen(model, test_params(12));
  const auto trace = gen.generate_decode(64);
  double top_reuse = 0.0;
  double bottom_reuse = 0.0;
  double n = 0.0;
  for (std::size_t s = 0; s + 1 < trace.num_steps(); ++s) {
    for (std::size_t l = 0; l < model.num_layers; ++l) {
      const auto& now = trace.steps[s].layers[l];
      const auto& next = trace.steps[s + 1].layers[l];
      std::vector<std::uint32_t> order(model.num_routed_experts);
      std::iota(order.begin(), order.end(), 0U);
      std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        return now.scores[a] > now.scores[b];
      });
      const std::size_t quarter = order.size() / 4;
      for (std::size_t r = 0; r < quarter; ++r) {
        top_reuse += next.loads[order[r]] > 0 ? 1.0 : 0.0;
        bottom_reuse += next.loads[order[order.size() - 1 - r]] > 0 ? 1.0 : 0.0;
        n += 1.0;
      }
    }
  }
  EXPECT_GT(top_reuse / n, 1.5 * (bottom_reuse / n));
}

TEST(TraceGeneratorTest, PrefillLoadsAreUneven) {
  // Fig. 3(c): prefill expert workloads are heavily unbalanced.
  const auto model = moe::ModelConfig::deepseek();
  TraceGenerator gen(model, test_params(13));
  const auto trace = gen.generate_prefill(128);
  const auto& mid = trace.forward.layers[model.num_layers / 2];
  std::vector<double> loads(mid.loads.begin(), mid.loads.end());
  const double max_load = *std::max_element(loads.begin(), loads.end());
  EXPECT_GT(max_load, 2.5 * util::mean(loads));
}

TEST(TraceGeneratorTest, ResetRestartsTokenProcessKeepsGates) {
  const auto model = moe::ModelConfig::tiny(2, 16, 3);
  TraceGenerator gen(model, test_params(14));
  const auto first = gen.generate_decode(4);
  gen.reset(14);
  const auto second = gen.generate_decode(4);
  for (std::size_t s = 0; s < 4; ++s)
    EXPECT_EQ(first.steps[s].layers[0].loads, second.steps[s].layers[0].loads);
}

TEST(TraceGeneratorTest, ActivationFrequenciesShape) {
  const auto model = moe::ModelConfig::tiny(3, 8, 2);
  TraceGenerator gen(model, test_params(15));
  const auto trace = gen.generate_decode(32);
  const auto freq = activation_frequencies(trace, model);
  ASSERT_EQ(freq.size(), model.num_layers);
  for (const auto& layer : freq) {
    ASSERT_EQ(layer.size(), model.num_routed_experts);
    const double total = std::accumulate(layer.begin(), layer.end(), 0.0);
    EXPECT_DOUBLE_EQ(total, 32.0 * model.top_k);  // single-token steps
  }
}

TEST(TraceGeneratorTest, RejectsEmptyRequests) {
  const auto model = moe::ModelConfig::tiny();
  TraceGenerator gen(model, test_params());
  EXPECT_THROW((void)gen.generate_decode(0), std::invalid_argument);
  EXPECT_THROW((void)gen.generate_prefill(0), std::invalid_argument);
}

TEST(MergeForwardTracesTest, CombinesLoadsScoresAndPredictions) {
  const auto model = moe::ModelConfig::tiny(4, 16, 3);
  TraceGenerator gen(model, test_params());
  const auto a = gen.generate_decode(1).steps[0];
  const auto b = gen.generate_prefill(5).forward;
  const std::vector<const ForwardTrace*> parts{&a, &b};
  const auto merged = merge_forward_traces(parts);
  EXPECT_EQ(merged.tokens, a.tokens + b.tokens);
  ASSERT_EQ(merged.num_layers(), model.num_layers);
  for (std::size_t l = 0; l < model.num_layers; ++l) {
    const auto& ml = merged.layers[l];
    EXPECT_EQ(ml.total_tokens, a.layers[l].total_tokens + b.layers[l].total_tokens);
    double score_sum = 0.0;
    for (std::size_t e = 0; e < ml.loads.size(); ++e) {
      EXPECT_EQ(ml.loads[e], a.layers[l].loads[e] + b.layers[l].loads[e]);
      score_sum += ml.scores[e];
    }
    // Token-weighted mean of two (near-)unit-sum score vectors stays ~1.
    EXPECT_NEAR(score_sum, 1.0, 1e-3);
    EXPECT_EQ(merged.predictions[l].size(),
              std::min(a.predictions[l].size(), b.predictions[l].size()));
  }
}

TEST(MergeForwardTracesTest, SinglePartIsIdentity) {
  const auto model = moe::ModelConfig::tiny(3, 8, 2);
  TraceGenerator gen(model, test_params());
  const auto a = gen.generate_decode(1).steps[0];
  const std::vector<const ForwardTrace*> parts{&a};
  const auto merged = merge_forward_traces(parts);
  EXPECT_EQ(merged.tokens, a.tokens);
  for (std::size_t l = 0; l < model.num_layers; ++l)
    EXPECT_EQ(merged.layers[l].loads, a.layers[l].loads);
}

TEST(MergeForwardTracesTest, ToleratesTrimmedOrAbsentPredictions) {
  const auto model = moe::ModelConfig::tiny(3, 8, 2);
  TraceGenerator gen(model, test_params());
  const auto a = gen.generate_decode(1).steps[0];
  ForwardTrace bare = gen.generate_decode(1).steps[0];
  bare.predictions.clear();  // valid per ForwardTrace::prediction's guard
  const std::vector<const ForwardTrace*> parts{&a, &bare};
  const auto merged = merge_forward_traces(parts);
  for (std::size_t l = 0; l < model.num_layers; ++l)
    EXPECT_TRUE(merged.predictions[l].empty());
}

TEST(MergeForwardTracesTest, RejectsMismatchedModels) {
  TraceGenerator g3(moe::ModelConfig::tiny(3, 8, 2), test_params());
  TraceGenerator g4(moe::ModelConfig::tiny(4, 8, 2), test_params());
  const auto a = g3.generate_decode(1).steps[0];
  const auto b = g4.generate_decode(1).steps[0];
  const std::vector<const ForwardTrace*> parts{&a, &b};
  EXPECT_THROW((void)merge_forward_traces(parts), std::invalid_argument);
  const std::vector<const ForwardTrace*> empty;
  EXPECT_THROW((void)merge_forward_traces(empty), std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::workload
