#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "workload/generator.hpp"

namespace hybrimoe::workload {
namespace {

TraceGenerator make_generator(std::uint64_t seed = 61) {
  TraceGenParams params;
  params.seed = seed;
  return TraceGenerator(moe::ModelConfig::tiny(3, 8, 2), params);
}

void expect_routing_equal(const moe::LayerRouting& a, const moe::LayerRouting& b) {
  EXPECT_EQ(a.total_tokens, b.total_tokens);
  EXPECT_EQ(a.loads, b.loads);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t i = 0; i < a.scores.size(); ++i)
    EXPECT_FLOAT_EQ(a.scores[i], b.scores[i]);
}

void expect_forward_equal(const ForwardTrace& a, const ForwardTrace& b) {
  EXPECT_EQ(a.tokens, b.tokens);
  ASSERT_EQ(a.num_layers(), b.num_layers());
  for (std::size_t l = 0; l < a.num_layers(); ++l) {
    expect_routing_equal(a.layers[l], b.layers[l]);
    ASSERT_EQ(a.predictions[l].size(), b.predictions[l].size());
    for (std::size_t d = 0; d < a.predictions[l].size(); ++d)
      expect_routing_equal(a.predictions[l][d], b.predictions[l][d]);
  }
}

TEST(TraceIoTest, DecodeRoundTrip) {
  auto gen = make_generator();
  const auto trace = gen.generate_decode(4);
  const auto back = decode_trace_from_string(to_string(trace));
  ASSERT_EQ(back.num_steps(), trace.num_steps());
  for (std::size_t s = 0; s < trace.num_steps(); ++s)
    expect_forward_equal(trace.steps[s], back.steps[s]);
}

TEST(TraceIoTest, PrefillRoundTrip) {
  auto gen = make_generator(62);
  const auto trace = gen.generate_prefill(12);
  const auto back = prefill_trace_from_string(to_string(trace));
  EXPECT_EQ(back.prompt_tokens, 12U);
  expect_forward_equal(trace.forward, back.forward);
}

TEST(TraceIoTest, FileRoundTrip) {
  auto gen = make_generator(63);
  const auto trace = gen.generate_decode(3);
  const std::string path = ::testing::TempDir() + "/hybrimoe_trace_test.txt";
  save_trace(path, trace);
  const auto back = load_decode_trace(path);
  ASSERT_EQ(back.num_steps(), 3U);
  expect_forward_equal(trace.steps[0], back.steps[0]);
  std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsWrongKind) {
  auto gen = make_generator(64);
  const auto decode = gen.generate_decode(1);
  EXPECT_THROW((void)prefill_trace_from_string(to_string(decode)),
               std::invalid_argument);
}

TEST(TraceIoTest, RejectsCorruptedInput) {
  auto gen = make_generator(65);
  auto text = to_string(gen.generate_decode(2));
  EXPECT_THROW((void)decode_trace_from_string(text.substr(0, text.size() / 2)),
               std::invalid_argument);
  EXPECT_THROW((void)decode_trace_from_string("garbage"), std::invalid_argument);
  EXPECT_THROW((void)decode_trace_from_string("HYBRIMOE-TRACE v99 decode"),
               std::invalid_argument);
}

TEST(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW((void)load_decode_trace("/nonexistent/path/trace.txt"),
               std::invalid_argument);
}

TEST(BatchDecodeTest, LoadsSumToBatchTimesK) {
  auto gen = make_generator(66);
  const auto model = moe::ModelConfig::tiny(3, 8, 2);
  const auto trace = gen.generate_decode_batch(5, 4);
  ASSERT_EQ(trace.num_steps(), 5U);
  for (const auto& step : trace.steps) {
    EXPECT_EQ(step.tokens, 4U);
    for (const auto& layer : step.layers) {
      std::uint32_t total = 0;
      for (const auto l : layer.loads) total += l;
      EXPECT_EQ(total, 4U * model.top_k);
    }
  }
}

TEST(BatchDecodeTest, BatchOneMatchesStructureOfPlainDecode) {
  auto gen = make_generator(67);
  const auto trace = gen.generate_decode_batch(3, 1);
  for (const auto& step : trace.steps) {
    EXPECT_EQ(step.tokens, 1U);
    for (const auto& layer : step.layers)
      EXPECT_EQ(layer.activated_count(), 2U);  // top_k
  }
}

TEST(BatchDecodeTest, RejectsZeroBatch) {
  auto gen = make_generator(68);
  EXPECT_THROW((void)gen.generate_decode_batch(1, 0), std::invalid_argument);
  EXPECT_THROW((void)gen.generate_decode_batch(0, 1), std::invalid_argument);
}

TEST(BatchDecodeTest, RoundTripsThroughSerialization) {
  auto gen = make_generator(69);
  const auto trace = gen.generate_decode_batch(2, 3);
  const auto back = decode_trace_from_string(to_string(trace));
  expect_forward_equal(trace.steps[1], back.steps[1]);
}

}  // namespace
}  // namespace hybrimoe::workload
