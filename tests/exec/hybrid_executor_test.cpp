#include "exec/executor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sched/simulator.hpp"

namespace hybrimoe::exec {
namespace {

using sched::ExpertDemand;
using sched::Stage;

/// Unit-cost machine (cpu time == load, gpu == 1, transfer == 3) with the
/// tiny model; at kScale one cost unit paces to 300us of wall clock — large
/// against kernel times (~us) and sleep overshoot, small enough for tests.
/// Under ThreadSanitizer every synchronization/kernel op is ~10-20x slower,
/// so the pacing windows grow 10x to keep the timing envelopes meaningful.
#if defined(__SANITIZE_THREAD__)
#define HYBRIMOE_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HYBRIMOE_TEST_TSAN 1
#endif
#endif
#if defined(HYBRIMOE_TEST_TSAN)
constexpr double kScale = 3e-3;
#else
constexpr double kScale = 3e-4;
#endif

hw::CostModel unit_costs() {
  return {hw::MachineProfile::unit_test_machine(), moe::ModelConfig::tiny()};
}

ExecOptions options_with(std::size_t workers, double scale = kScale) {
  ExecOptions opts;
  opts.workers = workers;
  opts.time_scale = scale;
  return opts;
}

/// A layer with both lanes and a transfer: two cached experts (GPU), two
/// uncached (CPU takes the light one, PCIe promotes the heavy one).
std::vector<ExpertDemand> mixed_demands() {
  return {{0, 2, true}, {1, 1, true}, {2, 1, false}, {3, 6, false}};
}

TEST(ExecOptions, ValidatesStructure) {
  EXPECT_THROW(options_with(0).validate(), std::invalid_argument);
  ExecOptions bad_scale;
  bad_scale.time_scale = 0.0;
  EXPECT_THROW(bad_scale.validate(), std::invalid_argument);
  ExecOptions bad_dim;
  bad_dim.d_model = 0;
  EXPECT_THROW(bad_dim.validate(), std::invalid_argument);
}

TEST(HybridExecutor, ThreadedOutputMatchesReferenceBitwise) {
  const auto costs = unit_costs();
  const auto demands = mixed_demands();
  const auto plan = sched::simulate_layer(0, Stage::Decode, demands, costs);

  HybridExecutor threaded(options_with(4));
  threaded.begin_step();
  const auto real = threaded.execute_layer(plan, 0.0, {});
  const auto real_step = threaded.end_step();

  HybridExecutor reference(options_with(4));
  reference.begin_step();
  const auto ref = reference.execute_layer_reference(plan);
  const auto ref_step = reference.end_step();

  ASSERT_EQ(real.output.size(), ref.output.size());
  for (std::size_t i = 0; i < ref.output.size(); ++i)
    EXPECT_EQ(real.output[i], ref.output[i]) << "component " << i;
  EXPECT_EQ(real_step.digest, ref_step.digest);
  EXPECT_GT(real.measured, 0.0);
  EXPECT_EQ(ref.measured, 0.0);
}

TEST(HybridExecutor, DigestIsIdenticalAtOneTwoAndEightWorkers) {
  const auto costs = unit_costs();
  const auto demands = mixed_demands();
  std::vector<std::uint64_t> digests;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    HybridExecutor executor(options_with(workers));
    executor.begin_step();
    for (std::uint16_t layer = 0; layer < 3; ++layer) {
      const auto plan = sched::simulate_layer(layer, Stage::Decode, demands, costs);
      (void)executor.execute_layer(plan, 0.0, {});
    }
    digests.push_back(executor.end_step().digest);
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[1], digests[2]);
}

TEST(HybridExecutor, MeasuredTracksModeledLayerMakespan) {
  const auto costs = unit_costs();
  const auto demands = mixed_demands();
  const double overhead = 0.5;
  sched::SimOptions sim;
  sim.gpu_busy_until = 1.0;  // dense head
  const auto plan = sched::simulate_layer(0, Stage::Decode, demands, costs, sim);
  const double modeled = overhead + plan.makespan;

  HybridExecutor executor(options_with(2));
  executor.begin_step();
  const auto result = executor.execute_layer(plan, overhead, {});
  (void)executor.end_step();
  // Asymmetric envelope: undershoot means serialization/pacing is broken
  // (the real bug signal), so the lower bound is tight; the upper bound only
  // guards against gross overhead and stays loose because parallel CI load
  // can delay wakeups (bench_exec_validation holds the tight 25% bound).
  EXPECT_GT(result.measured, 0.6 * modeled);
  EXPECT_LT(result.measured, 5.0 * modeled);
}

TEST(HybridExecutor, TransferGatesDependentGpuCompute) {
  const auto costs = unit_costs();
  // GPU-only scheduling of an uncached expert: it must be transferred first,
  // so the real makespan cannot undercut transfer + compute.
  sched::SimOptions gpu_only;
  gpu_only.allow_cpu = false;
  gpu_only.allow_cpu_steal = false;
  const std::vector<ExpertDemand> demands{{0, 4, false}};
  const auto plan = sched::simulate_layer(0, Stage::Decode, demands, costs, gpu_only);
  ASSERT_TRUE(plan.tasks[0].transferred);
  const double modeled = plan.makespan;  // 3 (transfer) + 1 (gpu compute)

  HybridExecutor executor(options_with(2));
  executor.begin_step();
  const auto result = executor.execute_layer(plan, 0.0, {});
  (void)executor.end_step();
  EXPECT_GT(result.measured, 0.8 * modeled);
}

TEST(HybridExecutor, AsyncCopiesDoNotBlockTheLayer) {
  const auto costs = unit_costs();
  const auto demands = mixed_demands();
  const auto plan = sched::simulate_layer(0, Stage::Decode, demands, costs);
  const std::vector<AsyncCopy> prefetches{{.id = {1, 0}, .link = 0, .seconds = 10.0},
                                          {.id = {1, 1}, .link = 0, .seconds = 10.0},
                                          {.id = {1, 2}, .link = 0, .seconds = 10.0},
                                          {.id = {1, 3}, .link = 0, .seconds = 10.0}};

  HybridExecutor executor(options_with(2));
  executor.begin_step();
  // Four speculative copies of 10 units each would add 12ms if the layer
  // waited on them; the layer window must not include that.
  const auto result = executor.execute_layer(plan, 0.0, prefetches);
  EXPECT_LT(result.measured, plan.makespan + 10.0);
  const auto step = executor.end_step();  // end_step drains them
  EXPECT_EQ(step.layers, 1u);
}

TEST(HybridExecutor, StepProtocolIsEnforced) {
  const auto costs = unit_costs();
  const auto plan =
      sched::simulate_layer(0, Stage::Decode, mixed_demands(), costs);
  HybridExecutor executor(options_with(1));
  EXPECT_THROW((void)executor.execute_layer(plan, 0.0, {}), std::invalid_argument);
  EXPECT_THROW((void)executor.end_step(), std::invalid_argument);
  executor.begin_step();
  EXPECT_THROW(executor.begin_step(), std::invalid_argument);
  sched::LayerPlan empty;
  EXPECT_THROW((void)executor.execute_layer(empty, 0.0, {}), std::invalid_argument);
  (void)executor.end_step();
}

TEST(HybridExecutor, AbortStepUnwedgesTheExecutor) {
  // The engine's unwind path: a failure mid-step must not leave a shared
  // executor permanently rejecting begin_step.
  const auto costs = unit_costs();
  const auto plan = sched::simulate_layer(0, Stage::Decode, mixed_demands(), costs);
  HybridExecutor executor(options_with(2));
  executor.abort_step();  // no open step: no-op
  executor.begin_step();
  (void)executor.execute_layer(plan, 0.0, {});
  executor.abort_step();
  executor.begin_step();  // usable again
  (void)executor.execute_layer(plan, 0.0, {});
  EXPECT_EQ(executor.end_step().layers, 1u);  // aborted step was discarded
}

TEST(HybridExecutor, CalibrateTimeScaleCoversRealKernelTimes) {
  const auto costs = unit_costs();
  HybridExecutor executor(options_with(1));
  const double scale = executor.calibrate_time_scale(costs, 4.0);
  EXPECT_GT(scale, 0.0);
  // At the returned scale the fastest modeled task (1 unit on this machine)
  // paces to at least 4x any measured real operation: a microsecond-level
  // floor must hold even on fast hosts.
  EXPECT_GE(scale * 1.0, 4e-6);
}

TEST(ExpertStoreDigest, HashChainsAreOrderSensitive) {
  const std::uint64_t a = hash_u64(kDigestSeed, 1);
  const std::uint64_t b = hash_u64(kDigestSeed, 2);
  EXPECT_NE(a, b);
  EXPECT_NE(hash_u64(a, 2), hash_u64(b, 1));
  const float data[2] = {1.0f, -2.5f};
  EXPECT_NE(hash_bytes(kDigestSeed, data, sizeof(data)), kDigestSeed);
}

}  // namespace
}  // namespace hybrimoe::exec
