/// \file performance_mode_test.cpp
/// Integration coverage for exec::ExecutionMode::Performance — the unpaced
/// execution mode. The lowering is identical to Threaded (same plans, same
/// dependency structure, same dispatched kernels), so on fp32 stacks the
/// layer-output digest must be bitwise identical to both Simulated and
/// Threaded at any worker count, while the measured wall clock must come in
/// strictly below the paced Threaded run (pacing sleeps are the only thing
/// removed). Quantized-expert stacks are covered for run-to-run determinism.
/// This binary is part of the ThreadSanitizer CI job (exec_* glob).

#include <gtest/gtest.h>

#include <memory>

#include "exec/executor.hpp"
#include "runtime/frameworks.hpp"
#include "runtime/session.hpp"

namespace hybrimoe::runtime {
namespace {

/// Same pacing scale policy as exec_engine_test: one cost unit paces to
/// 300us, 10x that under ThreadSanitizer whose instrumentation slows kernels
/// and wakeups by an order of magnitude.
#if defined(__SANITIZE_THREAD__)
#define HYBRIMOE_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HYBRIMOE_TEST_TSAN 1
#endif
#endif
#if defined(HYBRIMOE_TEST_TSAN)
constexpr double kScale = 3e-3;
#else
constexpr double kScale = 3e-4;
#endif
constexpr std::size_t kDecodeSteps = 6;

exec::ExecOptions exec_options(std::size_t workers, bool quantized = false) {
  exec::ExecOptions opts;
  opts.workers = workers;
  opts.time_scale = kScale;
  opts.quantized_experts = quantized;
  return opts;
}

ExperimentSpec tiny_spec() {
  ExperimentSpec spec;
  spec.model = moe::ModelConfig::tiny();
  spec.machine = hw::MachineProfile::unit_test_machine();
  spec.cache_ratio = 0.25;
  spec.trace.seed = 7;
  spec.warmup_steps = 16;
  return spec;
}

StageMetrics run_decode(ExperimentHarness& harness, exec::ExecutionMode mode,
                        std::size_t workers, bool quantized = false) {
  harness.set_execution(
      mode, std::make_shared<exec::HybridExecutor>(exec_options(workers, quantized)));
  return harness.run_decode(Framework::HybriMoE, kDecodeSteps);
}

TEST(PerformanceMode, ToStringAndModeNames) {
  EXPECT_STREQ(exec::to_string(exec::ExecutionMode::Performance), "performance");
  EXPECT_STREQ(exec::to_string(exec::ExecutionMode::Threaded), "threaded");
  EXPECT_STREQ(exec::to_string(exec::ExecutionMode::Simulated), "simulated");
}

TEST(PerformanceMode, DigestBitIdenticalToSimulatedAndThreadedOnFp32) {
  ExperimentHarness harness(tiny_spec());
  const auto simulated =
      run_decode(harness, exec::ExecutionMode::Simulated, 1);
  ASSERT_NE(simulated.exec_digest, 0u);
  const auto threaded = run_decode(harness, exec::ExecutionMode::Threaded, 2);
  EXPECT_EQ(threaded.exec_digest, simulated.exec_digest);

  for (const std::size_t workers : {1u, 2u, 8u}) {
    const auto performance =
        run_decode(harness, exec::ExecutionMode::Performance, workers);
    EXPECT_EQ(performance.exec_digest, simulated.exec_digest)
        << "workers=" << workers;
    EXPECT_EQ(performance.total_latency, simulated.total_latency)
        << "modeled time must not depend on the backend";
    EXPECT_GT(performance.measured_latency, 0.0);
  }
}

TEST(PerformanceMode, MeasuredLatencyStrictlyBelowPacedThreaded) {
  ExperimentHarness harness(tiny_spec());
  const auto threaded = run_decode(harness, exec::ExecutionMode::Threaded, 2);
  const auto performance =
      run_decode(harness, exec::ExecutionMode::Performance, 2);
  ASSERT_GT(threaded.measured_latency, 0.0);
  ASSERT_GT(performance.measured_latency, 0.0);
  // Threaded sleeps every task out to its modeled deadline; Performance runs
  // the identical task graph without the sleeps, so it must finish strictly
  // sooner (same work is a lower bound on the paced wall clock).
  EXPECT_LT(performance.measured_latency, threaded.measured_latency);
  // And unlike Threaded, the measured time is not calibrated to track the
  // model — it is raw kernel time, far below the paced target here.
  EXPECT_EQ(performance.exec_digest, threaded.exec_digest);
}

TEST(PerformanceMode, PrefillDigestMatchesAcrossModes) {
  ExperimentHarness harness(tiny_spec());
  harness.set_execution(exec::ExecutionMode::Simulated,
                        std::make_shared<exec::HybridExecutor>(exec_options(1)));
  const auto simulated = harness.run_prefill(Framework::HybriMoE, 8);
  ASSERT_NE(simulated.exec_digest, 0u);
  harness.set_execution(exec::ExecutionMode::Performance,
                        std::make_shared<exec::HybridExecutor>(exec_options(4)));
  const auto performance = harness.run_prefill(Framework::HybriMoE, 8);
  EXPECT_EQ(performance.exec_digest, simulated.exec_digest);
  EXPECT_GT(performance.measured_latency, 0.0);
}

TEST(PerformanceMode, QuantizedExpertsAreDeterministicAcrossRunsAndModes) {
  // Q4 experts change the math (error-bounded, not bit-identical to fp32),
  // but within the quantized configuration the digest must be reproducible
  // run to run and across backends that share the dispatched kernels.
  ExperimentHarness harness(tiny_spec());
  const auto fp32 = run_decode(harness, exec::ExecutionMode::Performance, 2);
  const auto first = run_decode(harness, exec::ExecutionMode::Performance, 2,
                                /*quantized=*/true);
  const auto second = run_decode(harness, exec::ExecutionMode::Performance, 4,
                                 /*quantized=*/true);
  const auto threaded = run_decode(harness, exec::ExecutionMode::Threaded, 2,
                                   /*quantized=*/true);
  ASSERT_NE(first.exec_digest, 0u);
  EXPECT_EQ(second.exec_digest, first.exec_digest);
  EXPECT_EQ(threaded.exec_digest, first.exec_digest);
  EXPECT_NE(first.exec_digest, fp32.exec_digest)
      << "quantized stacks must actually run the Q4 kernels";
}

}  // namespace
}  // namespace hybrimoe::runtime
