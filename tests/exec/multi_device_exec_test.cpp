/// \file multi_device_exec_test.cpp
/// Threaded execution of N-device plans: per-device GPU lanes and per-link
/// copy engines must reproduce the single-threaded reference outputs
/// bitwise, at any worker count, with transfer gating honored on every link.

#include <gtest/gtest.h>

#include <vector>

#include "exec/executor.hpp"
#include "hw/topology.hpp"
#include "moe/model_config.hpp"
#include "sched/simulator.hpp"

namespace hybrimoe::exec {
namespace {

using sched::ExpertDemand;
using sched::Stage;

hw::CostModel multi_costs(std::size_t devices) {
  return {hw::Topology::replicated(hw::MachineProfile::unit_test_machine(), devices),
          moe::ModelConfig::tiny()};
}

#if defined(__SANITIZE_THREAD__)
#define HYBRIMOE_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HYBRIMOE_TEST_TSAN 1
#endif
#endif

ExecOptions fast_options(std::size_t workers) {
  ExecOptions options;
  options.workers = workers;
  // Unit-machine seconds -> ~100us paced tasks; TSan slows wakeups by an
  // order of magnitude, so pace coarser there to keep overshoot negligible.
#if defined(HYBRIMOE_TEST_TSAN)
  options.time_scale = 3e-3;
#else
  options.time_scale = 1e-4;
#endif
  return options;
}

/// Demands exercising every lane: cached experts on both devices, CPU work,
/// and on-demand transfers.
std::vector<ExpertDemand> lane_demands(std::size_t devices) {
  std::vector<ExpertDemand> demands;
  for (std::uint16_t e = 0; e < 10; ++e) {
    ExpertDemand d;
    d.expert = e;
    d.load = 1 + e % 4;
    d.cached = e % 3 == 0;
    if (d.cached)
      d.cached_on =
          sched::accelerator_device(static_cast<std::size_t>(e) % devices);
    demands.push_back(d);
  }
  return demands;
}

TEST(MultiDeviceExecutor, ThreadedMatchesReferenceOnTwoDevicePlans) {
  const auto costs = multi_costs(2);
  const auto demands = lane_demands(2);
  const auto plan = sched::simulate_layer(0, Stage::Decode, demands, costs);
  ASSERT_TRUE(sched::validate_plan(plan, demands).empty());
  ASSERT_EQ(plan.num_accel_devices(), 2u);

  HybridExecutor reference(fast_options(1));
  reference.begin_step();
  const auto ref = reference.execute_layer_reference(plan);
  (void)reference.end_step();

  HybridExecutor threaded(fast_options(2));
  threaded.begin_step();
  const auto real = threaded.execute_layer(plan, 0.0);
  const auto step = threaded.end_step();
  EXPECT_EQ(step.layers, 1u);
  EXPECT_GT(real.measured, 0.0);
  EXPECT_EQ(ref.output, real.output);  // bitwise across lanes
}

TEST(MultiDeviceExecutor, DigestsAreWorkerCountInvariantOnFourDevices) {
  const auto costs = multi_costs(4);
  const auto demands = lane_demands(4);
  const auto plan = sched::simulate_layer(0, Stage::Decode, demands, costs);
  ASSERT_TRUE(sched::validate_plan(plan, demands).empty());

  std::uint64_t first_digest = 0;
  for (const std::size_t workers : {1u, 2u, 3u}) {
    HybridExecutor executor(fast_options(workers));
    executor.begin_step();
    (void)executor.execute_layer(plan, 0.0);
    const auto step = executor.end_step();
    EXPECT_NE(step.digest, kDigestSeed);
    if (first_digest == 0) {
      first_digest = step.digest;
    } else {
      EXPECT_EQ(step.digest, first_digest) << "workers=" << workers;
    }
  }
}

TEST(MultiDeviceExecutor, AsyncCopiesRouteToTheirLinks) {
  const auto costs = multi_costs(2);
  const auto demands = lane_demands(2);
  const auto plan = sched::simulate_layer(0, Stage::Decode, demands, costs);

  // 30 modeled seconds of speculative copies; if the layer waited on them
  // its window would grow by >= 20 (the busiest link).
  const std::vector<AsyncCopy> copies{{.id = {1, 0}, .link = 0, .seconds = 10.0},
                                      {.id = {1, 1}, .link = 1, .seconds = 10.0},
                                      {.id = {1, 2}, .link = 1, .seconds = 10.0}};
  HybridExecutor executor(fast_options(2));
  executor.begin_step();
  const auto result = executor.execute_layer(plan, 0.0, copies);
  // Speculative copies must not extend the layer window (the +10 margin
  // absorbs sleep overshoot at this time scale, well under the 20s the
  // busiest link would add if the layer waited).
  EXPECT_LT(result.measured, plan.makespan + 10.0);
  const auto step = executor.end_step();  // drains every link
  EXPECT_EQ(step.layers, 1u);
}

TEST(MultiDeviceExecutor, RepeatedLayersStayDeterministic) {
  const auto costs = multi_costs(3);
  const auto demands = lane_demands(3);
  const auto plan = sched::simulate_layer(0, Stage::Decode, demands, costs);

  std::uint64_t digests[2] = {0, 0};
  for (int round = 0; round < 2; ++round) {
    HybridExecutor executor(fast_options(2));
    executor.begin_step();
    (void)executor.execute_layer(plan, 0.0);
    (void)executor.execute_layer(plan, 0.0);
    digests[round] = executor.end_step().digest;
  }
  EXPECT_EQ(digests[0], digests[1]);
}

}  // namespace
}  // namespace hybrimoe::exec
