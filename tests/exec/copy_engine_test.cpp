#include "exec/copy_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace hybrimoe::exec {
namespace {

TEST(CopyEngine, ServicesJobsInSubmissionOrder) {
  CopyEngine engine;
  std::mutex m;
  std::vector<int> order;
  for (int i = 0; i < 32; ++i)
    engine.submit([&m, &order, i] {
      std::lock_guard lock(m);
      order.push_back(i);
    });
  engine.drain();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(engine.completed(), 32u);
}

TEST(CopyEngine, DrainWaitsForInFlightJob) {
  CopyEngine engine;
  std::atomic<bool> finished{false};
  engine.submit([&finished] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    finished.store(true);
  });
  engine.drain();
  EXPECT_TRUE(finished.load());
}

TEST(CopyEngine, UsableAcrossMultipleDrains) {
  CopyEngine engine;
  for (int round = 0; round < 3; ++round) {
    engine.submit([] {});
    engine.drain();
  }
  EXPECT_EQ(engine.completed(), 3u);
}

TEST(CopyEngine, DestructorDrainsPendingJobs) {
  std::atomic<int> count{0};
  {
    CopyEngine engine;
    for (int i = 0; i < 16; ++i)
      engine.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        count.fetch_add(1);
      });
  }  // join
  EXPECT_EQ(count.load(), 16);
}

TEST(CopyEngine, JobExceptionIsCapturedAndRethrown) {
  CopyEngine engine;
  engine.submit([] { throw std::runtime_error("copy failed"); });
  engine.submit([] {});  // the thread survives the throwing job
  engine.drain();
  EXPECT_EQ(engine.completed(), 2u);
  EXPECT_THROW(engine.rethrow_pending_error(), std::runtime_error);
  engine.rethrow_pending_error();  // cleared: second call is a no-op
}

TEST(CopyEngine, JobsRunOffTheSubmittingThread) {
  CopyEngine engine;
  std::thread::id copy_thread;
  engine.submit([&copy_thread] { copy_thread = std::this_thread::get_id(); });
  engine.drain();
  EXPECT_NE(copy_thread, std::this_thread::get_id());
}

}  // namespace
}  // namespace hybrimoe::exec
