#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hybrimoe::exec {
namespace {

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
  EXPECT_EQ(pool.tasks_executed(), 200u);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

TEST(ThreadPool, StealsFromAnImbalancedQueue) {
  // Pin every task to worker 0's queue: worker 1 has nothing of its own and
  // must steal to participate at all.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i)
    pool.submit_to(0, [&count] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      count.fetch_add(1, std::memory_order_relaxed);
    });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64);
  EXPECT_GE(pool.tasks_stolen(), 1u);
}

TEST(ThreadPool, TasksMaySubmitFollowUpTasks) {
  // The executor chains CPU-lane tasks exactly this way.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::function<void(int)> chain = [&](int remaining) {
    count.fetch_add(1, std::memory_order_relaxed);
    if (remaining > 0) pool.submit([&chain, remaining] { chain(remaining - 1); });
  };
  pool.submit([&chain] { chain(49); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i)
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        count.fetch_add(1, std::memory_order_relaxed);
      });
  }  // join
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, TaskExceptionIsCapturedAndRethrown) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  pool.wait_idle();
  EXPECT_THROW(pool.rethrow_pending_error(), std::runtime_error);
  pool.rethrow_pending_error();  // cleared: second call is a no-op
}

TEST(ThreadPool, SubmitToValidatesWorkerIndex) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.submit_to(2, [] {}), std::invalid_argument);
}

TEST(ThreadPool, TasksRunOnMultipleThreads) {
  ThreadPool pool(4);
  std::mutex m;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 64; ++i)
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard lock(m);
      ids.insert(std::this_thread::get_id());
    });
  pool.wait_idle();
  EXPECT_GE(ids.size(), 2u);  // sleeping tasks overlap even on one core
  EXPECT_FALSE(ids.contains(std::this_thread::get_id()));
}

}  // namespace
}  // namespace hybrimoe::exec
