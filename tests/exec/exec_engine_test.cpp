/// \file exec_engine_test.cpp
/// Engine-level validation of the threaded execution backend: simulated and
/// threaded modes must produce bitwise-identical layer-output digests on the
/// integration traces (at any worker count), the digest must be invariant
/// across scheduling policies, dependency chains under a capacity-1 cache
/// must execute cleanly, and wall-clock measurements must track the model.
/// This binary is part of the ThreadSanitizer CI job.

#include <gtest/gtest.h>

#include <memory>

#include "cache/classic_policies.hpp"
#include "exec/executor.hpp"
#include "runtime/frameworks.hpp"
#include "runtime/session.hpp"
#include "workload/request_stream.hpp"

namespace hybrimoe::runtime {
namespace {

/// One cost unit paces to 300us — 10x that under ThreadSanitizer, whose
/// instrumentation slows kernels/wakeups by an order of magnitude (see
/// hybrid_executor_test for the envelope rationale).
#if defined(__SANITIZE_THREAD__)
#define HYBRIMOE_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HYBRIMOE_TEST_TSAN 1
#endif
#endif
#if defined(HYBRIMOE_TEST_TSAN)
constexpr double kScale = 3e-3;
#else
constexpr double kScale = 3e-4;
#endif
constexpr std::size_t kDecodeSteps = 6;

exec::ExecOptions exec_options(std::size_t workers) {
  exec::ExecOptions opts;
  opts.workers = workers;
  opts.time_scale = kScale;
  return opts;
}

ExperimentSpec tiny_spec() {
  ExperimentSpec spec;
  spec.model = moe::ModelConfig::tiny();
  spec.machine = hw::MachineProfile::unit_test_machine();
  spec.cache_ratio = 0.25;
  spec.trace.seed = 7;
  spec.warmup_steps = 16;
  return spec;
}

StageMetrics run_decode(ExperimentHarness& harness, Framework framework,
                        exec::ExecutionMode mode, std::size_t workers) {
  harness.set_execution(mode, std::make_shared<exec::HybridExecutor>(exec_options(workers)));
  return harness.run_decode(framework, kDecodeSteps);
}

TEST(ExecEngine, ThreadedDigestMatchesSimulatedAtEveryWorkerCount) {
  ExperimentHarness harness(tiny_spec());
  const auto reference =
      run_decode(harness, Framework::HybriMoE, exec::ExecutionMode::Simulated, 1);
  ASSERT_NE(reference.exec_digest, 0u);
  EXPECT_EQ(reference.measured_latency, 0.0);

  for (const std::size_t workers : {1u, 2u, 8u}) {
    const auto threaded =
        run_decode(harness, Framework::HybriMoE, exec::ExecutionMode::Threaded, workers);
    EXPECT_EQ(threaded.exec_digest, reference.exec_digest)
        << "workers=" << workers;
    EXPECT_EQ(threaded.total_latency, reference.total_latency)
        << "modeled time must not depend on the backend";
    EXPECT_GT(threaded.measured_latency, 0.0);
  }
}

TEST(ExecEngine, DigestIsInvariantAcrossSchedulingPolicies) {
  // Different frameworks place the same demanded experts on different
  // devices; execution must produce the same combined outputs regardless.
  ExperimentHarness harness(tiny_spec());
  const auto baseline =
      run_decode(harness, Framework::HybriMoE, exec::ExecutionMode::Simulated, 1);
  for (const Framework framework :
       {Framework::AdapMoE, Framework::KTransformers, Framework::OnDemand}) {
    const auto other =
        run_decode(harness, framework, exec::ExecutionMode::Threaded, 2);
    EXPECT_EQ(other.exec_digest, baseline.exec_digest)
        << to_string(framework);
  }
}

TEST(ExecEngine, PrefillDigestMatchesAcrossModes) {
  ExperimentHarness harness(tiny_spec());
  harness.set_execution(exec::ExecutionMode::Simulated,
                        std::make_shared<exec::HybridExecutor>(exec_options(1)));
  const auto simulated = harness.run_prefill(Framework::HybriMoE, 8);
  harness.set_execution(exec::ExecutionMode::Threaded,
                        std::make_shared<exec::HybridExecutor>(exec_options(4)));
  const auto threaded = harness.run_prefill(Framework::HybriMoE, 8);
  ASSERT_NE(simulated.exec_digest, 0u);
  EXPECT_EQ(threaded.exec_digest, simulated.exec_digest);
}

TEST(ExecEngine, CapacityOneCacheForcesDependencyChainsAndStaysCorrect) {
  // A 1-slot cache under GPU-centric scheduling turns nearly every layer
  // into a transfer -> GPU-compute chain on the copy thread and GPU lane —
  // the stress shape for dependency handling (and the TSan job).
  const auto spec = tiny_spec();
  const hw::CostModel costs(spec.machine, spec.model);
  workload::TraceGenerator generator(spec.model, spec.trace);
  const auto trace = generator.generate_decode(kDecodeSteps);

  auto build = [&](exec::ExecutionMode mode, std::size_t workers) {
    EngineComponents c;
    c.name = "stress";
    c.scheduler = std::make_unique<sched::GpuCentricScheduler>();
    c.cache = std::make_unique<cache::ExpertCache>(
        1, std::make_unique<cache::LruPolicy>());
    c.update_policy_scores = false;
    c.execution_mode = mode;
    c.executor = std::make_shared<exec::HybridExecutor>(exec_options(workers));
    return std::make_unique<OffloadEngine>(std::move(c), costs);
  };

  const auto simulated = build(exec::ExecutionMode::Simulated, 1)->run_decode(trace);
  const auto threaded = build(exec::ExecutionMode::Threaded, 8)->run_decode(trace);
  ASSERT_NE(simulated.exec_digest, 0u);
  EXPECT_EQ(threaded.exec_digest, simulated.exec_digest);
  EXPECT_GT(threaded.transfers, 0u);
  EXPECT_GT(threaded.measured_latency, 0.0);
}

TEST(ExecEngine, MeasuredLatencyTracksModeledLatency) {
  ExperimentHarness harness(tiny_spec());
  const auto metrics =
      run_decode(harness, Framework::HybriMoE, exec::ExecutionMode::Threaded, 4);
  // Asymmetric CI-safe envelope (tight undershoot bound = missing
  // serialization; loose overshoot bound = tolerate parallel-test load);
  // bench_exec_validation enforces the 25% bound.
  EXPECT_GT(metrics.measured_latency, 0.5 * metrics.total_latency);
  EXPECT_LT(metrics.measured_latency, 6.0 * metrics.total_latency);
}

TEST(ExecEngine, ServingPathCarriesDigestsThroughContinuousBatching) {
  workload::RequestStreamParams stream;
  stream.num_requests = 3;
  stream.prompt_tokens_min = 4;
  stream.prompt_tokens_max = 8;
  stream.decode_tokens_min = 2;
  stream.decode_tokens_max = 4;
  stream.seed = 11;
  const auto specs = workload::generate_request_stream(stream);

  ExperimentHarness harness(tiny_spec());
  harness.set_execution(exec::ExecutionMode::Simulated,
                        std::make_shared<exec::HybridExecutor>(exec_options(1)));
  const auto simulated = harness.serve(Framework::HybriMoE, specs);
  harness.set_execution(exec::ExecutionMode::Threaded,
                        std::make_shared<exec::HybridExecutor>(exec_options(4)));
  const auto threaded = harness.serve(Framework::HybriMoE, specs);

  ASSERT_NE(simulated.steps.exec_digest, 0u);
  EXPECT_EQ(threaded.steps.exec_digest, simulated.steps.exec_digest);
  EXPECT_GT(threaded.steps.measured_latency, 0.0);
  EXPECT_EQ(threaded.steps.total_latency, simulated.steps.total_latency);
}

TEST(ExecEngine, ThreadedModeRequiresAnExecutor) {
  const auto spec = tiny_spec();
  const hw::CostModel costs(spec.machine, spec.model);
  EngineComponents c;
  c.name = "broken";
  c.scheduler = std::make_unique<sched::GpuCentricScheduler>();
  c.cache =
      std::make_unique<cache::ExpertCache>(1, std::make_unique<cache::LruPolicy>());
  c.execution_mode = exec::ExecutionMode::Threaded;
  EXPECT_THROW(OffloadEngine(std::move(c), costs), std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::runtime
