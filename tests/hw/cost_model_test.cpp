#include "hw/cost_model.hpp"

#include <gtest/gtest.h>

namespace hybrimoe::hw {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  moe::ModelConfig model_ = moe::ModelConfig::deepseek();
  CostModel costs_{MachineProfile::a6000_xeon10(), model_};
};

TEST_F(CostModelTest, ProfilesValidate) {
  EXPECT_NO_THROW(MachineProfile::a6000_xeon10().validate());
  EXPECT_NO_THROW(MachineProfile::laptop_edge().validate());
  EXPECT_NO_THROW(MachineProfile::unit_test_machine().validate());
}

TEST_F(CostModelTest, GpuFlatCpuLinear_Fig3f) {
  // Paper Fig. 3(f): GPU per-expert time stays near-flat across decode-scale
  // loads and grows sub-linearly overall; CPU grows near-linearly.
  const double gpu1 = costs_.gpu_expert_time(1);
  const double gpu64 = costs_.gpu_expert_time(64);
  const double gpu512 = costs_.gpu_expert_time(512);
  EXPECT_LT(gpu64, gpu1 * 1.6);   // flat through typical decode loads
  EXPECT_LT(gpu512, gpu1 * 6.0);  // sub-linear even at 512x the tokens

  const double cpu64 = costs_.cpu_expert_time(64);
  const double cpu512 = costs_.cpu_expert_time(512);
  EXPECT_GT(cpu512, cpu64 * 6.0);  // near-linear: 8x tokens -> >6x time
  // The asymmetry hybrid scheduling exploits: CPU grows much faster.
  EXPECT_GT(cpu512 / cpu64, 1.5 * (gpu512 / gpu64));
}

TEST_F(CostModelTest, CpuWarmupPenalty_Fig3e) {
  const double cold = costs_.cpu_expert_time(1, /*warm=*/false);
  const double warm = costs_.cpu_expert_time(1, /*warm=*/true);
  EXPECT_GT(cold, warm);
  EXPECT_NEAR(cold - warm, costs_.machine().cpu.warmup_penalty, 1e-12);
}

TEST_F(CostModelTest, DecodeRegime) {
  // Single-token decode on DeepSeek-sized experts: CPU compute beats an
  // on-demand transfer, GPU-cached beats both — the premise of hybrid
  // execution (paper Fig. 1).
  const double cpu = costs_.cpu_expert_time(1);
  const double gpu = costs_.gpu_expert_time(1);
  const double xfer = costs_.transfer_time();
  EXPECT_LT(gpu, cpu);
  EXPECT_LT(cpu, xfer);
}

TEST_F(CostModelTest, PrefillRegime) {
  // At high loads the GPU route (transfer + compute) beats the CPU — the
  // reason prefill streams misses instead of computing them locally.
  const std::size_t load = 256;
  const double cpu = costs_.cpu_expert_time(load);
  const double via_gpu = costs_.transfer_time() + costs_.gpu_expert_time(load);
  EXPECT_LT(via_gpu, cpu);
}

TEST_F(CostModelTest, TransferConstantPerExpert) {
  EXPECT_DOUBLE_EQ(costs_.transfer_time(), costs_.transfer_time());
  const double expected =
      costs_.machine().pcie.latency +
      static_cast<double>(model_.routed_expert_bytes()) / costs_.machine().pcie.bandwidth;
  EXPECT_DOUBLE_EQ(costs_.transfer_time(), expected);
}

TEST_F(CostModelTest, MonotoneInTokens) {
  double prev_cpu = 0.0;
  double prev_gpu = 0.0;
  for (const std::size_t t : {1UL, 2UL, 8UL, 64UL, 256UL, 1024UL}) {
    const double cpu = costs_.cpu_expert_time(t);
    const double gpu = costs_.gpu_expert_time(t);
    EXPECT_GE(cpu, prev_cpu);
    EXPECT_GE(gpu, prev_gpu);
    prev_cpu = cpu;
    prev_gpu = gpu;
  }
}

TEST_F(CostModelTest, SharedExpertsScaleWithCount) {
  const CostModel mixtral(MachineProfile::a6000_xeon10(), moe::ModelConfig::mixtral());
  EXPECT_EQ(mixtral.shared_experts_time(8), 0.0);  // no shared experts
  const CostModel deepseek(MachineProfile::a6000_xeon10(), moe::ModelConfig::deepseek());
  EXPECT_GT(deepseek.shared_experts_time(8), 0.0);
}

TEST_F(CostModelTest, AttentionGrowsWithTokens) {
  EXPECT_GT(costs_.attention_time(1024), costs_.attention_time(1));
}

TEST_F(CostModelTest, RejectsZeroTokens) {
  EXPECT_THROW((void)costs_.cpu_expert_time(0), std::invalid_argument);
  EXPECT_THROW((void)costs_.gpu_expert_time(0), std::invalid_argument);
  EXPECT_THROW((void)costs_.attention_time(0), std::invalid_argument);
}

TEST_F(CostModelTest, GemmRampMonotoneAndBounded) {
  const auto& cpu = costs_.machine().cpu;
  EXPECT_DOUBLE_EQ(cpu.effective_flops(0), cpu.flops);
  double prev = 0.0;
  for (const std::size_t t : {1UL, 4UL, 16UL, 64UL, 1024UL}) {
    const double f = cpu.effective_flops(t);
    EXPECT_GE(f, prev);
    EXPECT_LE(f, cpu.flops_peak);
    prev = f;
  }
  // Half the headroom at flops_ramp_half tokens.
  const double at_half =
      cpu.effective_flops(static_cast<std::size_t>(cpu.flops_ramp_half));
  EXPECT_NEAR(at_half, cpu.flops + (cpu.flops_peak - cpu.flops) * 0.5,
              (cpu.flops_peak - cpu.flops) * 0.01);
}

TEST_F(CostModelTest, UnitMachineRatios) {
  // The unit machine promises: cpu == load units, gpu == 1, transfer == 3,
  // for ModelConfig::tiny().
  const CostModel unit(MachineProfile::unit_test_machine(), moe::ModelConfig::tiny());
  EXPECT_NEAR(unit.cpu_expert_time(1), 1.0, 1e-9);
  EXPECT_NEAR(unit.cpu_expert_time(4), 4.0, 1e-9);
  EXPECT_NEAR(unit.gpu_expert_time(1), 1.0, 1e-9);
  EXPECT_NEAR(unit.gpu_expert_time(7), 1.0, 1e-9);  // flat
  EXPECT_NEAR(unit.transfer_time(), 3.0, 1e-9);
}

TEST_F(CostModelTest, InvalidMachineRejected) {
  MachineProfile bad = MachineProfile::a6000_xeon10();
  bad.cpu.flops = 0.0;
  EXPECT_THROW(CostModel(bad, model_), std::invalid_argument);
  bad = MachineProfile::a6000_xeon10();
  bad.pcie.bandwidth = -1.0;
  EXPECT_THROW(CostModel(bad, model_), std::invalid_argument);
}

TEST_F(CostModelTest, LayerOverheadDefaultsToZero) {
  EXPECT_EQ(costs_.layer_overhead(), 0.0);
  CostModel c(MachineProfile::a6000_xeon10(), model_);
  c.set_layer_overhead(1e-4);
  EXPECT_DOUBLE_EQ(c.layer_overhead(), 1e-4);
}

/// Expert size ordering drives model-dependent regimes; sweep all models.
class ModelRegimeTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelRegimeTest, TransferCostScalesWithExpertBytes) {
  const auto& model = moe::paper_models()[static_cast<std::size_t>(GetParam())];
  const CostModel costs(MachineProfile::a6000_xeon10(), model);
  const double expected = costs.machine().pcie.latency +
                          static_cast<double>(model.routed_expert_bytes()) /
                              costs.machine().pcie.bandwidth;
  EXPECT_DOUBLE_EQ(costs.transfer_time(), expected);
  // Decode: cached GPU compute is always the cheapest option.
  EXPECT_LT(costs.gpu_expert_time(1), costs.cpu_expert_time(1));
  EXPECT_LT(costs.gpu_expert_time(1), costs.transfer_time());
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelRegimeTest, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace hybrimoe::hw
