#include "hw/calibration.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace hybrimoe::hw {
namespace {

TEST(FitLinearTest, ExactOnLinearData) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{3.0, 5.0, 7.0, 9.0};  // y = 1 + 2x
  const auto fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinearTest, RejectsDegenerateInput) {
  const std::vector<double> xs{1.0};
  const std::vector<double> ys{1.0};
  EXPECT_THROW((void)fit_linear(xs, ys), std::invalid_argument);
  const std::vector<double> same{2.0, 2.0};
  EXPECT_THROW((void)fit_linear(same, same), std::invalid_argument);
  const std::vector<double> two{1.0, 2.0};
  const std::vector<double> three{1.0, 2.0, 3.0};
  EXPECT_THROW((void)fit_linear(two, three), std::invalid_argument);
}

class CalibrationTest : public ::testing::Test {
 protected:
  moe::ModelConfig model_ = moe::ModelConfig::deepseek();
  CostModel truth_{MachineProfile::a6000_xeon10(), model_};
};

TEST_F(CalibrationTest, NoiselessFitRecoversTimings) {
  util::Rng rng(101);
  const auto samples = simulate_measurements(truth_, rng, 2, /*noise=*/0.0);
  const auto fitted = fit_machine_profile(samples, model_);
  const CostModel fit_costs(fitted, model_);

  // The warmup phase must reproduce the quantities scheduling consumes.
  for (const std::size_t tokens : {1UL, 32UL, 256UL}) {
    EXPECT_NEAR(fit_costs.gpu_expert_time(tokens), truth_.gpu_expert_time(tokens),
                truth_.gpu_expert_time(tokens) * 0.10)
        << tokens;
  }
  // CPU: large-token (GEMM) regime and single-token (bandwidth) regime.
  EXPECT_NEAR(fit_costs.cpu_expert_time(512), truth_.cpu_expert_time(512),
              truth_.cpu_expert_time(512) * 0.15);
  EXPECT_NEAR(fit_costs.cpu_expert_time(1), truth_.cpu_expert_time(1),
              truth_.cpu_expert_time(1) * 0.15);
  EXPECT_NEAR(fit_costs.transfer_time(), truth_.transfer_time(),
              truth_.transfer_time() * 0.05);
  EXPECT_NEAR(fitted.cpu.warmup_penalty, truth_.machine().cpu.warmup_penalty,
              truth_.machine().cpu.warmup_penalty * 0.05);
}

TEST_F(CalibrationTest, NoisyFitStaysInBand) {
  util::Rng rng(102);
  const auto samples = simulate_measurements(truth_, rng, 8, /*noise=*/0.05);
  const auto fitted = fit_machine_profile(samples, model_);
  const CostModel fit_costs(fitted, model_);
  EXPECT_NEAR(fit_costs.transfer_time(), truth_.transfer_time(),
              truth_.transfer_time() * 0.15);
  EXPECT_NEAR(fit_costs.cpu_expert_time(256), truth_.cpu_expert_time(256),
              truth_.cpu_expert_time(256) * 0.25);
  EXPECT_NEAR(fit_costs.gpu_expert_time(1), truth_.gpu_expert_time(1),
              truth_.gpu_expert_time(1) * 0.25);
}

TEST_F(CalibrationTest, FittedProfileValidates) {
  util::Rng rng(103);
  const auto samples = simulate_measurements(truth_, rng, 4, 0.02);
  EXPECT_NO_THROW(fit_machine_profile(samples, model_).validate());
}

TEST_F(CalibrationTest, RequiresEnoughSamples) {
  WarmupMeasurements empty;
  EXPECT_THROW((void)fit_machine_profile(empty, model_), std::invalid_argument);
}

TEST_F(CalibrationTest, MeasurementSweepCoversRegimes) {
  util::Rng rng(104);
  const auto samples = simulate_measurements(truth_, rng, 1, 0.0);
  bool has_single = false;
  bool has_large = false;
  for (const auto& s : samples.cpu_warm) {
    has_single |= s.tokens == 1;
    has_large |= s.tokens >= 256;
  }
  EXPECT_TRUE(has_single);
  EXPECT_TRUE(has_large);
  EXPECT_GE(samples.transfers.size(), 2U);
}

TEST_F(CalibrationTest, NoiseParameterValidated) {
  util::Rng rng(105);
  EXPECT_THROW((void)simulate_measurements(truth_, rng, 0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)simulate_measurements(truth_, rng, 1, 0.9), std::invalid_argument);
}

TEST(WallClockTest, TimeCallableMeasuresRealWork) {
  // A 2ms sleep must measure at least 2ms (and a no-op far less than that).
  const double slept = time_callable(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); }, 3);
  EXPECT_GE(slept, 2e-3);
  EXPECT_LT(time_callable([] {}, 3), 2e-3);
  EXPECT_THROW((void)time_callable({}, 3), std::invalid_argument);
  EXPECT_THROW((void)time_callable([] {}, 0), std::invalid_argument);
}

TEST(WallClockTest, MeasureComputeSamplesFeedsTheFitters) {
  // Time a synthetic kernel whose cost grows with the token load; the
  // samples must be usable where simulated cpu_warm samples are.
  const std::vector<std::size_t> loads{1, 4, 16};
  const auto samples = measure_compute_samples(
      [](std::size_t tokens) {
        volatile double sink = 0.0;
        for (std::size_t i = 0; i < tokens * 20000; ++i) sink = sink + 1.0;
      },
      loads, 3);
  ASSERT_EQ(samples.size(), loads.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].tokens, loads[i]);
    EXPECT_GT(samples[i].seconds, 0.0);
  }
  EXPECT_GT(samples.back().seconds, samples.front().seconds);
  const std::vector<std::size_t> bad{0};
  EXPECT_THROW((void)measure_compute_samples([](std::size_t) {}, bad, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::hw
