#include "hw/timeline.hpp"

#include <gtest/gtest.h>

namespace hybrimoe::hw {
namespace {

TEST(TimelineTest, SequentialScheduling) {
  Timeline t(Resource::Cpu);
  const auto a = t.schedule(0.0, 2.0, OpKind::CpuCompute);
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  EXPECT_DOUBLE_EQ(a.end, 2.0);
  // Next task cannot start before the first ends.
  const auto b = t.schedule(1.0, 1.0, OpKind::CpuCompute);
  EXPECT_DOUBLE_EQ(b.start, 2.0);
  EXPECT_DOUBLE_EQ(b.end, 3.0);
  EXPECT_DOUBLE_EQ(t.busy_until(), 3.0);
}

TEST(TimelineTest, RespectsEarliestConstraint) {
  Timeline t(Resource::Gpu);
  const auto a = t.schedule(5.0, 1.0, OpKind::GpuCompute);
  EXPECT_DOUBLE_EQ(a.start, 5.0);
  EXPECT_DOUBLE_EQ(t.busy_until(), 6.0);
}

TEST(TimelineTest, BusyAndIdleAccounting) {
  Timeline t(Resource::Pcie);
  (void)t.schedule(0.0, 2.0, OpKind::Transfer);
  (void)t.schedule(3.0, 1.0, OpKind::Transfer);  // 1s gap
  EXPECT_DOUBLE_EQ(t.busy_time(), 3.0);
  EXPECT_DOUBLE_EQ(t.busy_until(), 4.0);
  EXPECT_DOUBLE_EQ(t.utilization(6.0), 0.5);
  EXPECT_DOUBLE_EQ(t.idle_before(10.0), 6.0);
  EXPECT_DOUBLE_EQ(t.idle_before(2.0), 0.0);
}

TEST(TimelineTest, RejectsNegativeInputs) {
  Timeline t(Resource::Cpu);
  EXPECT_THROW((void)t.schedule(0.0, -1.0, OpKind::CpuCompute), std::invalid_argument);
  EXPECT_THROW((void)t.schedule(-1.0, 1.0, OpKind::CpuCompute), std::invalid_argument);
}

TEST(TimelineTest, ClearResets) {
  Timeline t(Resource::Cpu);
  (void)t.schedule(0.0, 2.0, OpKind::CpuCompute);
  t.clear();
  EXPECT_DOUBLE_EQ(t.busy_until(), 0.0);
  EXPECT_TRUE(t.intervals().empty());
}

TEST(TimelineSetTest, MakespanIsMaxAcrossResources) {
  TimelineSet set;
  (void)set.cpu.schedule(0.0, 2.0, OpKind::CpuCompute);
  (void)set.gpu.schedule(0.0, 5.0, OpKind::GpuCompute);
  (void)set.pcie.schedule(0.0, 3.0, OpKind::Transfer);
  EXPECT_DOUBLE_EQ(set.makespan(), 5.0);
  EXPECT_EQ(&set.of(Resource::Gpu), &set.gpu);
  set.clear();
  EXPECT_DOUBLE_EQ(set.makespan(), 0.0);
}

TEST(GanttTest, RendersAllLanes) {
  TimelineSet set;
  (void)set.cpu.schedule(0.0, 1.0, OpKind::CpuCompute, {0, 1}, 1);
  (void)set.gpu.schedule(0.0, 2.0, OpKind::GpuCompute, {0, 2}, 1);
  const std::string gantt = render_gantt(set, 40);
  EXPECT_NE(gantt.find("CPU"), std::string::npos);
  EXPECT_NE(gantt.find("GPU"), std::string::npos);
  EXPECT_NE(gantt.find("PCIe"), std::string::npos);
}

TEST(GanttTest, EmptyScheduleHandled) {
  TimelineSet set;
  EXPECT_NE(render_gantt(set).find("empty"), std::string::npos);
}

TEST(EnumsTest, Names) {
  EXPECT_STREQ(to_string(Resource::Cpu), "CPU");
  EXPECT_STREQ(to_string(Resource::Gpu), "GPU");
  EXPECT_STREQ(to_string(Resource::Pcie), "PCIe");
  EXPECT_STREQ(to_string(OpKind::Transfer), "xfer");
  EXPECT_STREQ(to_string(OpKind::Prefetch), "pref");
}

}  // namespace
}  // namespace hybrimoe::hw
