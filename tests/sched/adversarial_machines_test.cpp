#include <gtest/gtest.h>

#include "sched/optimal.hpp"
#include "sched/simulator.hpp"
#include "util/rng.hpp"

/// Failure-injection sweep: scheduling must stay structurally valid and
/// deadlock-free on machines with pathological cost ratios — a CPU faster
/// than the GPU, a free PCIe link, a uselessly slow link, or a huge
/// cold-start penalty. These are the corners a real deployment hits when
/// the warmup calibration runs on unusual hardware.

namespace hybrimoe::sched {
namespace {

hw::MachineProfile base_machine() { return hw::MachineProfile::unit_test_machine(); }

struct MachineCase {
  const char* name;
  hw::MachineProfile machine;
};

std::vector<MachineCase> adversarial_machines() {
  std::vector<MachineCase> cases;
  {
    auto m = base_machine();  // CPU 100x faster than usual: beats the GPU
    m.cpu.flops *= 100.0;
    cases.push_back({"cpu_dominant", m});
  }
  {
    auto m = base_machine();  // nearly free PCIe link
    m.pcie.bandwidth *= 1000.0;
    cases.push_back({"free_link", m});
  }
  {
    auto m = base_machine();  // nearly useless PCIe link
    m.pcie.bandwidth /= 1000.0;
    cases.push_back({"dead_link", m});
  }
  {
    auto m = base_machine();  // giant CPU cold-start penalty
    m.cpu.warmup_penalty = 50.0;
    cases.push_back({"cold_cpu", m});
  }
  {
    auto m = base_machine();  // huge GPU launch overhead (tiny kernels)
    m.gpu.launch_overhead = 10.0;
    cases.push_back({"slow_launch", m});
  }
  return cases;
}

TEST(AdversarialMachinesTest, PlansStayValidEverywhere) {
  const moe::ModelConfig model = moe::ModelConfig::tiny();
  util::Rng rng(23);
  for (const auto& mc : adversarial_machines()) {
    const hw::CostModel costs(mc.machine, model);
    for (int trial = 0; trial < 60; ++trial) {
      const auto n = static_cast<std::uint16_t>(rng.uniform_index(10) + 1);
      std::vector<ExpertDemand> demands;
      for (std::uint16_t e = 0; e < n; ++e)
        demands.push_back({e, static_cast<std::uint32_t>(rng.uniform_index(16) + 1),
                           rng.bernoulli(0.5)});
      const auto plan = simulate_layer(0, Stage::Decode, demands, costs);
      const auto issues = validate_plan(plan, demands);
      ASSERT_TRUE(issues.empty()) << mc.name << ": " << issues.front();
    }
  }
}

TEST(AdversarialMachinesTest, CpuDominantMachinePrefersCpu) {
  auto m = base_machine();
  m.cpu.flops *= 100.0;  // cpu time = load/100 << gpu time 1
  const hw::CostModel costs(m, moe::ModelConfig::tiny());
  const std::vector<ExpertDemand> demands = {{0, 1, true}, {1, 2, false}};
  const auto plan = simulate_layer(0, Stage::Decode, demands, costs);
  // The miss must run on the CPU (transfer can't possibly win); the hit is
  // either computed on the GPU or stolen by the much faster CPU.
  for (const auto& t : plan.tasks) {
    if (!t.was_cached) {
      EXPECT_EQ(t.device, kCpuDevice);
    }
  }
  EXPECT_EQ(plan.pcie_busy, 0.0);
}

TEST(AdversarialMachinesTest, DeadLinkDegradesToFixedMapping) {
  auto m = base_machine();
  m.pcie.bandwidth /= 1000.0;  // transfer ~3000 units
  const hw::CostModel costs(m, moe::ModelConfig::tiny());
  const std::vector<ExpertDemand> demands = {
      {0, 4, false}, {1, 2, false}, {2, 3, true}};
  const auto plan = simulate_layer(0, Stage::Decode, demands, costs);
  for (const auto& t : plan.tasks) EXPECT_FALSE(t.transferred);
}

TEST(AdversarialMachinesTest, FreeLinkStreamsHeavyWork) {
  auto m = base_machine();
  m.pcie.bandwidth *= 1000.0;  // transfer ~0.003 units
  const hw::CostModel costs(m, moe::ModelConfig::tiny());
  const std::vector<ExpertDemand> demands = {{0, 50, false}, {1, 1, false}};
  const auto plan = simulate_layer(0, Stage::Decode, demands, costs);
  // The heavy expert must go through the (free) link to the GPU.
  for (const auto& t : plan.tasks)
    if (t.load == 50) {
      EXPECT_EQ(t.device, kGpuDevice);
      EXPECT_TRUE(t.transferred);
    }
}

TEST(AdversarialMachinesTest, GreedyBoundedEvenOnAdversaries) {
  // The paper's priority rules are premised on realistic regimes (GPU much
  // faster than CPU, §III Opportunity 2); on inverted machines the
  // GPU-priority rule eagerly computes cached experts the CPU should have
  // absorbed, and the gap grows to several x. This test documents that the
  // degradation stays *bounded* (no runaway behaviour) — on realistic
  // machines OptimalTest pins the gap at a few percent.
  const moe::ModelConfig model = moe::ModelConfig::tiny();
  util::Rng rng(29);
  for (const auto& mc : adversarial_machines()) {
    const hw::CostModel costs(mc.machine, model);
    double greedy_total = 0.0;
    double optimal_total = 0.0;
    for (int trial = 0; trial < 40; ++trial) {
      const auto n = static_cast<std::uint16_t>(rng.uniform_index(6) + 2);
      std::vector<ExpertDemand> demands;
      for (std::uint16_t e = 0; e < n; ++e)
        demands.push_back({e, static_cast<std::uint32_t>(rng.uniform_index(8) + 1),
                           rng.bernoulli(0.5)});
      greedy_total += simulate_layer(0, Stage::Decode, demands, costs).makespan;
      optimal_total += optimal_layer_schedule(demands, costs).makespan;
    }
    EXPECT_LT(greedy_total, optimal_total * 8.0) << mc.name;
    EXPECT_GE(greedy_total, optimal_total - 1e-9) << mc.name;
  }
}

}  // namespace
}  // namespace hybrimoe::sched
