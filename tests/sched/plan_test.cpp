#include "sched/plan.hpp"

#include <gtest/gtest.h>

namespace hybrimoe::sched {
namespace {

LayerPlan valid_plan() {
  LayerPlan plan;
  plan.layer = 2;
  // CPU computes expert 0 [0,2); GPU computes expert 1 after a transfer
  // [0,3) -> compute [3,4).
  ExpertTask cpu;
  cpu.expert = {2, 0};
  cpu.load = 2;
  cpu.device = kCpuDevice;
  cpu.start = 0.0;
  cpu.end = 2.0;
  ExpertTask gpu;
  gpu.expert = {2, 1};
  gpu.load = 5;
  gpu.device = kGpuDevice;
  gpu.transferred = true;
  gpu.transfer_start = 0.0;
  gpu.transfer_end = 3.0;
  gpu.start = 3.0;
  gpu.end = 4.0;
  plan.tasks = {cpu, gpu};
  plan.makespan = 4.0;
  plan.cpu_busy = 2.0;
  plan.gpu_busy = 1.0;
  plan.pcie_busy = 3.0;
  plan.pcie_end = 3.0;
  return plan;
}

std::vector<ExpertDemand> matching_demands() {
  return {{0, 2, false}, {1, 5, false}};
}

TEST(ValidatePlanTest, AcceptsValidPlan) {
  const auto issues = validate_plan(valid_plan(), matching_demands());
  EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues.front());
}

TEST(ValidatePlanTest, DetectsMissingExpert) {
  auto plan = valid_plan();
  plan.tasks.pop_back();
  plan.makespan = 2.0;
  plan.gpu_busy = 0.0;
  plan.pcie_busy = 0.0;
  EXPECT_FALSE(validate_plan(plan, matching_demands()).empty());
}

TEST(ValidatePlanTest, DetectsDuplicateExpert) {
  auto plan = valid_plan();
  plan.tasks.push_back(plan.tasks[0]);
  EXPECT_FALSE(validate_plan(plan, matching_demands()).empty());
}

TEST(ValidatePlanTest, DetectsLoadMismatch) {
  auto plan = valid_plan();
  plan.tasks[0].load = 99;
  EXPECT_FALSE(validate_plan(plan, matching_demands()).empty());
}

TEST(ValidatePlanTest, DetectsWrongLayer) {
  auto plan = valid_plan();
  plan.tasks[0].expert.layer = 5;
  EXPECT_FALSE(validate_plan(plan, matching_demands()).empty());
}

TEST(ValidatePlanTest, DetectsComputeBeforeTransferEnds) {
  auto plan = valid_plan();
  plan.tasks[1].start = 2.0;  // transfer ends at 3.0
  plan.tasks[1].end = 3.0;
  plan.makespan = 3.0;
  EXPECT_FALSE(validate_plan(plan, matching_demands()).empty());
}

TEST(ValidatePlanTest, DetectsUncachedGpuWithoutTransfer) {
  auto plan = valid_plan();
  plan.tasks[1].transferred = false;
  plan.pcie_busy = 0.0;
  EXPECT_FALSE(validate_plan(plan, matching_demands()).empty());
}

TEST(ValidatePlanTest, DetectsTransferredCachedExpert) {
  auto plan = valid_plan();
  auto demands = matching_demands();
  demands[1].cached = true;
  plan.tasks[1].was_cached = true;
  EXPECT_FALSE(validate_plan(plan, demands).empty());
}

TEST(ValidatePlanTest, DetectsOverlapOnDevice) {
  auto plan = valid_plan();
  ExpertTask extra;
  extra.expert = {2, 2};
  extra.load = 1;
  extra.device = kCpuDevice;
  extra.start = 1.0;  // overlaps [0,2) on the CPU
  extra.end = 2.5;
  plan.tasks.push_back(extra);
  plan.cpu_busy += 1.5;
  auto demands = matching_demands();
  demands.push_back({2, 1, false});
  EXPECT_FALSE(validate_plan(plan, demands).empty());
}

TEST(ValidatePlanTest, DetectsMakespanMismatch) {
  auto plan = valid_plan();
  plan.makespan = 10.0;
  EXPECT_FALSE(validate_plan(plan, matching_demands()).empty());
}

TEST(ValidatePlanTest, DetectsBusyMismatch) {
  auto plan = valid_plan();
  plan.cpu_busy = 5.0;
  EXPECT_FALSE(validate_plan(plan, matching_demands()).empty());
}

TEST(ValidatePlanTest, DetectsGpuStartInsideDensePhase) {
  auto plan = valid_plan();
  plan.gpu_offset = 3.5;  // GPU compute starts at 3.0 < offset
  plan.makespan = 4.0;
  EXPECT_FALSE(validate_plan(plan, matching_demands()).empty());
}

TEST(ValidatePlanTest, DetectsTransferBeforePcieOffset) {
  auto plan = valid_plan();
  plan.pcie_offset = 1.0;  // transfer starts at 0.0
  plan.pcie_end = 3.0;
  EXPECT_FALSE(validate_plan(plan, matching_demands()).empty());
}

TEST(LayerPlanTest, TransferredExpertsListed) {
  const auto plan = valid_plan();
  const auto transfers = plan.transferred_experts();
  ASSERT_EQ(transfers.size(), 1U);
  EXPECT_EQ(transfers[0], (moe::ExpertId{2, 1}));
}

TEST(LayerPlanTest, ToTimelinesRoundTrip) {
  const auto plan = valid_plan();
  const auto timelines = plan.to_timelines();
  EXPECT_DOUBLE_EQ(timelines.makespan(), plan.makespan);
  EXPECT_DOUBLE_EQ(timelines.cpu.busy_time(), plan.cpu_busy);
  EXPECT_DOUBLE_EQ(timelines.gpu.busy_time(), plan.gpu_busy);
  EXPECT_DOUBLE_EQ(timelines.pcie.busy_time(), plan.pcie_busy);
}

TEST(StageTest, Names) {
  EXPECT_STREQ(to_string(Stage::Prefill), "prefill");
  EXPECT_STREQ(to_string(Stage::Decode), "decode");
}

}  // namespace
}  // namespace hybrimoe::sched
