/// \file multi_device_test.cpp
/// Scheduler invariants on N-device plans: every routed expert placed
/// exactly once, per-link transfer orders consistent with device_order,
/// per-device resource exclusivity (validate_plan), single-pair equivalence
/// between MachineProfile- and Topology-built cost models, and the basic
/// DeviceId/DeviceSet/Topology algebra.

#include <gtest/gtest.h>

#include <vector>

#include "hw/topology.hpp"
#include "moe/model_config.hpp"
#include "sched/schedulers.hpp"
#include "sched/simulator.hpp"

namespace hybrimoe::sched {
namespace {

hw::CostModel multi_costs(std::size_t devices) {
  return {hw::Topology::replicated(hw::MachineProfile::unit_test_machine(), devices),
          moe::ModelConfig::tiny()};
}

/// A mixed workload: cached experts spread across devices plus CPU misses.
std::vector<ExpertDemand> mixed_demands(std::size_t devices) {
  std::vector<ExpertDemand> demands;
  for (std::uint16_t e = 0; e < 8; ++e) {
    ExpertDemand d;
    d.expert = e;
    d.load = static_cast<std::uint32_t>(1 + (e * 3) % 5);
    d.cached = e % 2 == 0;
    if (d.cached) d.cached_on = accelerator_device(static_cast<std::size_t>(e / 2) % devices);
    demands.push_back(d);
  }
  return demands;
}

TEST(DeviceId, Algebra) {
  EXPECT_TRUE(kCpuDevice.is_cpu());
  EXPECT_FALSE(kCpuDevice.is_accelerator());
  EXPECT_TRUE(kGpuDevice.is_accelerator());
  EXPECT_EQ(kGpuDevice.accel_index(), 0u);
  EXPECT_EQ(accelerator_device(3).accel_index(), 3u);
  EXPECT_EQ(to_string(kCpuDevice), "cpu");
  EXPECT_EQ(to_string(accelerator_device(1)), "gpu1");
  EXPECT_LT(kCpuDevice, kGpuDevice);
}

TEST(DeviceSet, ContainsExactlyItsDevices) {
  const DeviceSet set(3);
  EXPECT_EQ(set.num_accelerators(), 3u);
  EXPECT_EQ(set.size(), 4u);
  EXPECT_TRUE(set.contains(kCpuDevice));
  EXPECT_TRUE(set.contains(set.accelerator(2)));
  EXPECT_FALSE(set.contains(accelerator_device(3)));
}

TEST(Topology, ReplicatedAndSplit) {
  const auto topo = hw::Topology::replicated(hw::MachineProfile::a6000_xeon10(), 3);
  EXPECT_EQ(topo.num_accelerators(), 3u);
  EXPECT_EQ(topo.accelerators[2].name, "gpu2");
  const auto split = topo.split_cache_capacity(10);
  ASSERT_EQ(split.size(), 3u);
  EXPECT_EQ(split[0] + split[1] + split[2], 10u);
  // Equal shares, remainder to low indices.
  EXPECT_EQ(split[0], 4u);
  EXPECT_EQ(split[1], 3u);
  EXPECT_EQ(split[2], 3u);
}

TEST(Topology, RoundTripsThroughMachineProfile) {
  const auto machine = hw::MachineProfile::laptop_edge();
  const auto topo = hw::Topology::from_machine(machine);
  ASSERT_EQ(topo.num_accelerators(), 1u);
  const auto back = topo.primary_machine();
  EXPECT_EQ(back.gpu.flops, machine.gpu.flops);
  EXPECT_EQ(back.pcie.bandwidth, machine.pcie.bandwidth);
  EXPECT_EQ(back.cpu.flops, machine.cpu.flops);
}

TEST(MultiDeviceSimulator, EveryExpertPlacedExactlyOnceAndPlansValidate) {
  for (const std::size_t devices : {2u, 3u, 4u}) {
    const auto costs = multi_costs(devices);
    const auto demands = mixed_demands(devices);
    const LayerPlan plan = simulate_layer(0, Stage::Decode, demands, costs);
    const auto issues = validate_plan(plan, demands);
    EXPECT_TRUE(issues.empty()) << "devices=" << devices << ": " << issues.front();
    EXPECT_EQ(plan.tasks.size(), demands.size());
    EXPECT_EQ(plan.num_accel_devices(), devices);
    ASSERT_EQ(plan.link_ends.size(), devices);
  }
}

TEST(MultiDeviceSimulator, CachedExpertsComputeOnTheirResidentDevice) {
  const auto costs = multi_costs(2);
  // Cached experts only — no transfers, no CPU benefit: each must run where
  // its resident copy lives.
  std::vector<ExpertDemand> demands;
  for (std::uint16_t e = 0; e < 6; ++e)
    demands.push_back({e, 4, true, accelerator_device(e % 2)});
  SimOptions options;
  options.allow_cpu_steal = false;
  const LayerPlan plan = simulate_layer(0, Stage::Decode, demands, costs, options);
  EXPECT_TRUE(validate_plan(plan, demands).empty());
  for (const auto& t : plan.tasks)
    EXPECT_EQ(t.device, accelerator_device(t.expert.expert % 2)) << t.expert.to_string();
}

TEST(MultiDeviceSimulator, PerLinkTransferOrdersAreConsistentWithDeviceOrder) {
  const auto costs = multi_costs(3);
  // All uncached, GPU-only: every expert streams over some link.
  std::vector<ExpertDemand> demands;
  for (std::uint16_t e = 0; e < 9; ++e)
    demands.push_back({e, static_cast<std::uint32_t>(2 + e % 3), false});
  SimOptions options;
  options.allow_cpu = false;
  options.transfer_only_if_beneficial = false;
  const LayerPlan plan = simulate_layer(0, Stage::Prefill, demands, costs, options);
  EXPECT_TRUE(validate_plan(plan, demands).empty());

  std::size_t total_transfers = 0;
  for (std::size_t a = 0; a < 3; ++a) {
    const DeviceId dev = accelerator_device(a);
    const auto xfers = plan.transfer_order(dev);
    total_transfers += xfers.size();
    // FIFO per link: transfer windows are non-overlapping and ordered.
    for (std::size_t i = 1; i < xfers.size(); ++i)
      EXPECT_GE(plan.tasks[xfers[i]].transfer_start,
                plan.tasks[xfers[i - 1]].transfer_end - 1e-9);
    // Each transferred expert computes on the device its link feeds, after
    // its transfer completes.
    for (const std::size_t i : xfers) {
      EXPECT_EQ(plan.tasks[i].device, dev);
      EXPECT_LE(plan.tasks[i].transfer_end, plan.tasks[i].start + 1e-9);
    }
    // device_order and transfer_order agree on membership for this device.
    for (const std::size_t i : plan.device_order(dev))
      EXPECT_TRUE(plan.tasks[i].transferred);
  }
  EXPECT_EQ(total_transfers, demands.size());
  EXPECT_EQ(plan.transfer_order().size(), demands.size());
}

TEST(MultiDeviceSimulator, MoreDevicesNeverHurtTheMakespan) {
  const auto demands = mixed_demands(1);  // all cached copies on device 0
  const double one = simulate_layer(0, Stage::Decode, demands, multi_costs(1)).makespan;
  const double two = simulate_layer(0, Stage::Decode, demands, multi_costs(2)).makespan;
  const double four = simulate_layer(0, Stage::Decode, demands, multi_costs(4)).makespan;
  EXPECT_LE(two, one + 1e-9);
  EXPECT_LE(four, two + 1e-9);
  // With enough uncached work the extra links/devices must genuinely help.
  std::vector<ExpertDemand> heavy;
  for (std::uint16_t e = 0; e < 12; ++e) heavy.push_back({e, 6, false});
  SimOptions gpu_only;
  gpu_only.allow_cpu = false;
  gpu_only.transfer_only_if_beneficial = false;
  const double heavy_one =
      simulate_layer(0, Stage::Prefill, heavy, multi_costs(1), gpu_only).makespan;
  const double heavy_four =
      simulate_layer(0, Stage::Prefill, heavy, multi_costs(4), gpu_only).makespan;
  EXPECT_LT(heavy_four, heavy_one);
}

TEST(MultiDeviceSimulator, SingleDeviceTopologyMatchesMachineProfileBitForBit) {
  const auto machine = hw::MachineProfile::unit_test_machine();
  const hw::CostModel pair(machine, moe::ModelConfig::tiny());
  const hw::CostModel topo(hw::Topology::from_machine(machine), moe::ModelConfig::tiny());
  const auto demands = mixed_demands(1);
  SimOptions options;
  options.gpu_busy_until = 2.0;
  options.pcie_busy_until = 1.0;
  const LayerPlan a = simulate_layer(3, Stage::Decode, demands, pair, options);
  const LayerPlan b = simulate_layer(3, Stage::Decode, demands, topo, options);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].expert, b.tasks[i].expert);
    EXPECT_EQ(a.tasks[i].device, b.tasks[i].device);
    EXPECT_EQ(a.tasks[i].start, b.tasks[i].start);  // bitwise
    EXPECT_EQ(a.tasks[i].end, b.tasks[i].end);
    EXPECT_EQ(a.tasks[i].transfer_start, b.tasks[i].transfer_start);
    EXPECT_EQ(a.tasks[i].transfer_end, b.tasks[i].transfer_end);
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.pcie_end, b.pcie_end);
  EXPECT_EQ(a.cpu_busy, b.cpu_busy);
  EXPECT_EQ(a.gpu_busy, b.gpu_busy);
  EXPECT_EQ(a.pcie_busy, b.pcie_busy);
}

TEST(MultiDeviceSimulator, HybridSchedulerThreadsLinkCarryPerLink) {
  const auto costs = multi_costs(2);
  HybridScheduler scheduler;
  const auto demands = mixed_demands(2);
  const std::vector<double> carry{5.0, 0.0};
  const LayerPlan plan =
      scheduler.schedule(0, Stage::Decode, demands, costs, 1.0, carry[0], carry);
  EXPECT_TRUE(validate_plan(plan, demands).empty());
  ASSERT_EQ(plan.link_offsets.size(), 2u);
  EXPECT_EQ(plan.link_offsets[0], 5.0);
  EXPECT_EQ(plan.link_offsets[1], 0.0);
  // No transfer on link 0 may start before its carried occupancy ends.
  for (const std::size_t i : plan.transfer_order(kGpuDevice))
    EXPECT_GE(plan.tasks[i].transfer_start, 5.0 - 1e-9);
}

TEST(MultiDeviceSimulator, RejectsCachedOnOutsideTheTopology) {
  const auto costs = multi_costs(2);
  std::vector<ExpertDemand> demands{{0, 4, true, accelerator_device(2)}};
  EXPECT_THROW((void)simulate_layer(0, Stage::Decode, demands, costs),
               std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::sched
