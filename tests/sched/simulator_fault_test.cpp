#include "sched/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hybrimoe::sched {
namespace {

/// Two identical unit-cost accelerators: the smallest topology on which a
/// device can actually be lost (accelerator 0 hosts the dense pipeline and
/// must stay up).
class SimulatorFaultTest : public ::testing::Test {
 protected:
  moe::ModelConfig model_ = moe::ModelConfig::tiny();
  hw::CostModel costs_{
      hw::Topology::replicated(hw::MachineProfile::unit_test_machine(), 2),
      model_};
};

// -- Residency on a lost device --------------------------------------------

TEST_F(SimulatorFaultTest, CachedOnLostDeviceIsRejectedNotScheduled) {
  // Conservation invariant, input side: a demand claiming residency on a
  // device that is gone is a caller bug (the cache layer must invalidate
  // residency on loss), so the simulator refuses rather than silently
  // re-routing.
  costs_.set_accelerator_available(1, false);
  const std::vector<ExpertDemand> demands = {
      {0, 2, false}, {1, 3, true, accelerator_device(1)}};
  EXPECT_THROW((void)simulate_layer(0, Stage::Decode, demands, costs_),
               std::invalid_argument);
  // The same demands are fine while the device is up...
  costs_.set_accelerator_available(1, true);
  const auto plan = simulate_layer(0, Stage::Decode, demands, costs_);
  EXPECT_TRUE(validate_plan(plan, demands).empty());
  // ...and residency on the surviving accelerator is fine after the loss.
  costs_.set_accelerator_available(1, false);
  const std::vector<ExpertDemand> survivors = {
      {0, 2, false}, {1, 3, true, accelerator_device(0)}};
  const auto surviving_plan =
      simulate_layer(0, Stage::Decode, survivors, costs_);
  EXPECT_TRUE(validate_plan(surviving_plan, survivors).empty());
}

// -- Transfer targets ------------------------------------------------------

TEST_F(SimulatorFaultTest, LostDeviceIsNeverATransferTarget) {
  // Conservation invariant, output side: with accelerator 1 lost, heavy
  // uncached experts that would normally spread across both links must all
  // land on the CPU or accelerator 0 — no task or transfer may touch the
  // lost device.
  costs_.set_accelerator_available(1, false);
  const std::vector<ExpertDemand> demands = {
      {0, 9, false}, {1, 8, false}, {2, 7, false}, {3, 6, false},
      {4, 5, false}, {5, 1, false}};
  const auto plan = simulate_layer(0, Stage::Prefill, demands, costs_);
  EXPECT_TRUE(validate_plan(plan, demands).empty());
  const DeviceId lost = accelerator_device(1);
  bool any_transfer = false;
  for (const auto& t : plan.tasks) {
    EXPECT_NE(t.device, lost) << "expert " << t.expert.expert
                              << " scheduled on a lost device";
    any_transfer = any_transfer || t.transferred;
  }
  // The surviving link still promotes work — loss degrades, not disables.
  EXPECT_TRUE(any_transfer);
}

TEST_F(SimulatorFaultTest, HealthyTwinUsesBothDevicesOnTheSameInput) {
  // Counterfactual for the test above: the identical demand set on the
  // healthy topology does reach accelerator 1, proving the empty-device
  // plan is the fault's doing and not the workload's.
  const std::vector<ExpertDemand> demands = {
      {0, 9, false}, {1, 8, false}, {2, 7, false}, {3, 6, false},
      {4, 5, false}, {5, 1, false}};
  const auto plan = simulate_layer(0, Stage::Prefill, demands, costs_);
  EXPECT_TRUE(validate_plan(plan, demands).empty());
  bool uses_second = false;
  for (const auto& t : plan.tasks)
    uses_second = uses_second || t.device == accelerator_device(1);
  EXPECT_TRUE(uses_second);
}

// -- Cost-model health-state misuse ----------------------------------------

TEST_F(SimulatorFaultTest, CostModelRejectsHealthStateMisuse) {
  // Accelerator 0 hosts the dense pipeline: it can never be lost.
  EXPECT_THROW(costs_.set_accelerator_available(0, false),
               std::invalid_argument);
  // Loss and recovery are edges, not levels: repeating either throws.
  costs_.set_accelerator_available(1, false);
  EXPECT_THROW(costs_.set_accelerator_available(1, false),
               std::invalid_argument);
  costs_.set_accelerator_available(1, true);
  EXPECT_THROW(costs_.set_accelerator_available(1, true),
               std::invalid_argument);
  // Out-of-range devices and non-positive link scales are rejected.
  EXPECT_THROW((void)costs_.accelerator_available(2), std::invalid_argument);
  EXPECT_THROW(costs_.set_accelerator_available(2, false),
               std::invalid_argument);
  EXPECT_THROW(costs_.set_link_bandwidth_scale(1, 0.0), std::invalid_argument);
  EXPECT_THROW(costs_.set_link_bandwidth_scale(1, -0.5), std::invalid_argument);
  EXPECT_THROW((void)costs_.link_bandwidth_scale(2), std::invalid_argument);
}

TEST_F(SimulatorFaultTest, LinkScaleStretchesTransfersExactly) {
  // A 0.25x link makes every transfer over it exactly 4x longer; restoring
  // scale 1.0 restores the healthy float bit for bit.
  const double healthy = costs_.transfer_time(1);
  costs_.set_link_bandwidth_scale(1, 0.25);
  EXPECT_NEAR(costs_.transfer_time(1) / healthy, 4.0, 1e-9);
  // The other link is untouched.
  EXPECT_EQ(costs_.transfer_time(0), healthy);
  costs_.set_link_bandwidth_scale(1, 1.0);
  EXPECT_EQ(costs_.transfer_time(1), healthy);
}

}  // namespace
}  // namespace hybrimoe::sched
