#include "sched/schedulers.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hybrimoe::sched {
namespace {

class SchedulersTest : public ::testing::Test {
 protected:
  moe::ModelConfig model_ = moe::ModelConfig::tiny();
  hw::CostModel costs_{hw::MachineProfile::unit_test_machine(), model_};
  std::vector<ExpertDemand> demands_ = {
      {0, 1, false}, {1, 4, false}, {2, 2, true}, {3, 6, true}};
};

TEST_F(SchedulersTest, HybridProducesValidNamedPlans) {
  HybridScheduler sched;
  EXPECT_EQ(sched.name(), "hybrid");
  const auto plan = sched.schedule(1, Stage::Decode, demands_, costs_);
  EXPECT_EQ(plan.layer, 1);
  EXPECT_TRUE(validate_plan(plan, demands_).empty());
}

TEST_F(SchedulersTest, FixedMapDecodeMissesOnCpuHitsOnGpu) {
  FixedMapScheduler sched;
  const auto plan = sched.schedule(0, Stage::Decode, demands_, costs_);
  EXPECT_TRUE(validate_plan(plan, demands_).empty());
  for (const auto& t : plan.tasks) {
    if (t.was_cached) {
      EXPECT_EQ(t.device, kGpuDevice) << t.expert.to_string();
    } else {
      EXPECT_EQ(t.device, kCpuDevice) << t.expert.to_string();
    }
    EXPECT_FALSE(t.transferred);
  }
}

TEST_F(SchedulersTest, FixedMapPrefillStreamsMissesNoCpu) {
  // Paper Table I: kTransformers uses the CPU only during decode.
  FixedMapScheduler sched;
  const auto plan = sched.schedule(0, Stage::Prefill, demands_, costs_);
  EXPECT_TRUE(validate_plan(plan, demands_).empty());
  for (const auto& t : plan.tasks) {
    EXPECT_EQ(t.device, kGpuDevice);
    EXPECT_EQ(t.transferred, !t.was_cached);
  }
}

TEST_F(SchedulersTest, GpuCentricNeverUsesCpu) {
  GpuCentricScheduler sched;
  for (const auto stage : {Stage::Prefill, Stage::Decode}) {
    const auto plan = sched.schedule(0, stage, demands_, costs_);
    EXPECT_TRUE(validate_plan(plan, demands_).empty());
    for (const auto& t : plan.tasks) EXPECT_EQ(t.device, kGpuDevice);
  }
}

TEST_F(SchedulersTest, StaticLayerAllOrNothing) {
  StaticLayerScheduler sched(model_.num_layers, 0.5);
  EXPECT_EQ(sched.num_gpu_layers(), model_.num_layers / 2);
  std::size_t gpu_layers = 0;
  for (std::uint16_t l = 0; l < model_.num_layers; ++l) {
    const auto plan = sched.schedule(l, Stage::Decode, demands_, costs_);
    const bool on_gpu = sched.is_gpu_layer(l);
    gpu_layers += on_gpu ? 1 : 0;
    for (const auto& t : plan.tasks) {
      EXPECT_EQ(t.device, on_gpu ? kGpuDevice : kCpuDevice);
      EXPECT_FALSE(t.transferred);  // static mapping never moves weights
    }
  }
  EXPECT_EQ(gpu_layers, sched.num_gpu_layers());
}

TEST_F(SchedulersTest, StaticLayerFractionBounds) {
  StaticLayerScheduler none(8, 0.0);
  EXPECT_EQ(none.num_gpu_layers(), 0U);
  EXPECT_FALSE(none.is_gpu_layer(0));
  StaticLayerScheduler all(8, 1.0);
  EXPECT_EQ(all.num_gpu_layers(), 8U);
  EXPECT_TRUE(all.is_gpu_layer(7));
  EXPECT_THROW(StaticLayerScheduler(0, 0.5), std::invalid_argument);
  EXPECT_THROW(StaticLayerScheduler(8, 1.5), std::invalid_argument);
}

TEST_F(SchedulersTest, StaticLayerSpreadIsEven) {
  StaticLayerScheduler sched(10, 0.3);
  std::vector<std::uint16_t> gpu_layers;
  for (std::uint16_t l = 0; l < 10; ++l)
    if (sched.is_gpu_layer(l)) gpu_layers.push_back(l);
  ASSERT_EQ(gpu_layers.size(), 3U);
  // No two adjacent GPU layers when only 30% are mapped.
  for (std::size_t i = 1; i < gpu_layers.size(); ++i)
    EXPECT_GT(gpu_layers[i] - gpu_layers[i - 1], 1);
}

TEST_F(SchedulersTest, GpuBusyUntilThreadsThrough) {
  HybridScheduler hybrid;
  const auto plan = hybrid.schedule(0, Stage::Decode, demands_, costs_, 5.0, 1.0);
  EXPECT_DOUBLE_EQ(plan.gpu_offset, 5.0);
  EXPECT_DOUBLE_EQ(plan.pcie_offset, 1.0);
  EXPECT_GE(plan.makespan, 5.0);
  for (const auto& t : plan.tasks) {
    if (t.device == kGpuDevice) {
      EXPECT_GE(t.start, 5.0);
    }
  }
}

TEST_F(SchedulersTest, ImpactOptionsMatchSchedulerBehaviour) {
  HybridScheduler hybrid;
  EXPECT_TRUE(hybrid.impact_options().allow_transfers);
  GpuCentricScheduler gpu;
  EXPECT_FALSE(gpu.impact_options().allow_cpu);
  FixedMapScheduler fixed;
  EXPECT_FALSE(fixed.impact_options().allow_transfers);
}

TEST_F(SchedulersTest, SchedulersAgreeOnFullyCachedLayer) {
  // With everything cached, every scheduler (except llama.cpp CPU layers)
  // computes everything on the GPU with identical makespans.
  const std::vector<ExpertDemand> cached = {{0, 2, true}, {1, 3, true}};
  HybridScheduler hybrid;
  FixedMapScheduler fixed;
  GpuCentricScheduler gpu;
  SimOptions no_steal;
  no_steal.allow_cpu_steal = false;
  HybridScheduler hybrid_no_steal(no_steal);
  const double m_fixed = fixed.schedule(0, Stage::Decode, cached, costs_).makespan;
  const double m_gpu = gpu.schedule(0, Stage::Decode, cached, costs_).makespan;
  const double m_hybrid_ns =
      hybrid_no_steal.schedule(0, Stage::Decode, cached, costs_).makespan;
  EXPECT_DOUBLE_EQ(m_fixed, m_gpu);
  EXPECT_DOUBLE_EQ(m_fixed, m_hybrid_ns);
  // Full hybrid may steal one expert for the CPU and finish no later.
  EXPECT_LE(hybrid.schedule(0, Stage::Decode, cached, costs_).makespan,
            m_fixed + 1e-9);
}

}  // namespace
}  // namespace hybrimoe::sched
