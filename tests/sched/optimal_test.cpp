#include "sched/optimal.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hybrimoe::sched {
namespace {

class OptimalTest : public ::testing::Test {
 protected:
  moe::ModelConfig model_ = moe::ModelConfig::tiny();
  hw::CostModel costs_{hw::MachineProfile::unit_test_machine(), model_};
};

TEST_F(OptimalTest, SingleExpertChoosesCheaperDevice) {
  // Load 1 uncached: CPU (1s) beats transfer+GPU (4s).
  const std::vector<ExpertDemand> small = {{0, 1, false}};
  const auto r_small = optimal_layer_schedule(small, costs_);
  EXPECT_NEAR(r_small.makespan, 1.0, 1e-9);
  EXPECT_EQ(r_small.assignment[0], kCpuDevice);

  // Load 10 uncached: transfer+GPU (3+1) beats CPU (10s).
  const std::vector<ExpertDemand> big = {{0, 10, false}};
  const auto r_big = optimal_layer_schedule(big, costs_);
  EXPECT_NEAR(r_big.makespan, 4.0, 1e-9);
  EXPECT_EQ(r_big.assignment[0], kGpuDevice);
}

TEST_F(OptimalTest, Fig5InstanceOptimumIsFour) {
  const std::vector<ExpertDemand> demands = {
      {0, 1, false}, {1, 1, false}, {2, 3, false}, {3, 4, true}, {4, 1, true}};
  const auto result = optimal_layer_schedule(demands, costs_);
  // The greedy hybrid schedule reaches 4.0 on this instance — so does the
  // optimum (the greedy choice is exactly right here).
  EXPECT_NEAR(result.makespan, 4.0, 1e-9);
}

TEST_F(OptimalTest, RespectsFeatureSwitches) {
  const std::vector<ExpertDemand> demands = {{0, 10, false}};
  SimOptions no_transfers;
  no_transfers.allow_transfers = false;
  const auto r = optimal_layer_schedule(demands, costs_, no_transfers);
  EXPECT_EQ(r.assignment[0], kCpuDevice);  // GPU route forbidden
  EXPECT_NEAR(r.makespan, 10.0, 1e-9);

  SimOptions no_cpu;
  no_cpu.allow_cpu = false;
  const auto r2 = optimal_layer_schedule(demands, costs_, no_cpu);
  EXPECT_EQ(r2.assignment[0], kGpuDevice);
}

TEST_F(OptimalTest, NoStealKeepsCachedOnGpu) {
  const std::vector<ExpertDemand> demands = {{0, 1, true}, {1, 1, true}};
  SimOptions no_steal;
  no_steal.allow_cpu_steal = false;
  const auto r = optimal_layer_schedule(demands, costs_, no_steal);
  EXPECT_EQ(r.assignment[0], kGpuDevice);
  EXPECT_EQ(r.assignment[1], kGpuDevice);
  EXPECT_NEAR(r.makespan, 2.0, 1e-9);
  // With stealing allowed the CPU absorbs one and the optimum drops.
  const auto r2 = optimal_layer_schedule(demands, costs_);
  EXPECT_NEAR(r2.makespan, 1.0, 1e-9);
}

TEST_F(OptimalTest, OffsetsRespected) {
  const std::vector<ExpertDemand> demands = {{0, 1, true}};
  SimOptions opt;
  opt.gpu_busy_until = 7.0;
  const auto r = optimal_layer_schedule(demands, costs_, opt);
  // Either the GPU computes it after the dense phase (8) or the CPU steals
  // it (1): stealing wins, but the makespan still covers the dense phase.
  EXPECT_NEAR(r.makespan, 7.0, 1e-9);
}

TEST_F(OptimalTest, RejectsOversizedInstances) {
  std::vector<ExpertDemand> demands;
  for (std::uint16_t e = 0; e < 20; ++e) demands.push_back({e, 1, false});
  EXPECT_THROW((void)optimal_layer_schedule(demands, costs_), std::invalid_argument);
  EXPECT_THROW((void)optimal_layer_schedule({}, costs_), std::invalid_argument);
}

TEST_F(OptimalTest, OptimalNeverAboveGreedy) {
  util::Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const auto n = static_cast<std::uint16_t>(rng.uniform_index(8) + 1);
    std::vector<ExpertDemand> demands;
    for (std::uint16_t e = 0; e < n; ++e)
      demands.push_back({e, static_cast<std::uint32_t>(rng.uniform_index(12) + 1),
                         rng.bernoulli(0.5)});
    const double greedy =
        simulate_layer(0, Stage::Decode, demands, costs_).makespan;
    const double optimal = optimal_layer_schedule(demands, costs_).makespan;
    EXPECT_LE(optimal, greedy + 1e-9) << "trial " << trial;
  }
}

TEST_F(OptimalTest, GreedyGapSmallOnAverage) {
  // The claim behind §III Opportunity 2: simple priority rules land close
  // to the optimum. Bound the mean gap at 10% and the worst case at 60%.
  util::Rng rng(18);
  util::RunningStats gap;
  for (int trial = 0; trial < 300; ++trial) {
    const auto n = static_cast<std::uint16_t>(rng.uniform_index(8) + 2);
    std::vector<ExpertDemand> demands;
    for (std::uint16_t e = 0; e < n; ++e)
      demands.push_back({e, static_cast<std::uint32_t>(rng.uniform_index(12) + 1),
                         rng.bernoulli(0.5)});
    const double greedy =
        simulate_layer(0, Stage::Decode, demands, costs_).makespan;
    const double optimal = optimal_layer_schedule(demands, costs_).makespan;
    const double ratio = greedy / optimal;
    EXPECT_LT(ratio, 1.6) << "trial " << trial;
    gap.add(ratio);
  }
  EXPECT_LT(gap.mean(), 1.10);
}

TEST_F(OptimalTest, AssignmentMakespanMatchesBruteForceOrdering) {
  // Johnson's rule must beat or match a few arbitrary transfer orders.
  const std::vector<ExpertDemand> demands = {
      {0, 9, false}, {1, 2, false}, {2, 5, false}};
  const std::vector<DeviceId> all_gpu(3, kGpuDevice);
  const double johnson = assignment_makespan(demands, all_gpu, costs_);
  // Brute force: the flow-shop optimum over 3! orders computed by hand is
  // bounded below by total transfer time + last GPU job.
  const double xfer = costs_.transfer_time();
  EXPECT_GE(johnson, 3 * xfer);            // PCIe chain is serial
  EXPECT_LE(johnson, 3 * xfer + 3.0 + 1e-9);  // never worse than xfers + all GPU
}

TEST_F(OptimalTest, AssignmentLengthValidated) {
  const std::vector<ExpertDemand> demands = {{0, 1, false}};
  const std::vector<DeviceId> wrong(2, kCpuDevice);
  EXPECT_THROW((void)assignment_makespan(demands, wrong, costs_),
               std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::sched
