#include "sched/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace hybrimoe::sched {
namespace {

/// Unit-cost machine: cpu == load, gpu == 1 (flat), transfer == 3 — the
/// cost regime of the paper's Fig. 5 worked example.
class SimulatorTest : public ::testing::Test {
 protected:
  moe::ModelConfig model_ = moe::ModelConfig::tiny();
  hw::CostModel costs_{hw::MachineProfile::unit_test_machine(), model_};
};

const ExpertTask* find_task(const LayerPlan& plan, std::uint16_t expert) {
  for (const auto& t : plan.tasks)
    if (t.expert.expert == expert) return &t;
  return nullptr;
}

TEST_F(SimulatorTest, Fig5WorkedExample) {
  // A:1 B:1 C:3 uncached; D:4 E:1 cached. The hybrid schedule sends the
  // heavy uncached expert C through PCIe to the GPU instead of computing it
  // on the CPU (paper Fig. 5 steps 3-4), and the CPU handles the small
  // uncached experts A and B.
  const std::vector<ExpertDemand> demands = {
      {0, 1, false}, {1, 1, false}, {2, 3, false}, {3, 4, true}, {4, 1, true}};
  const auto plan = simulate_layer(0, Stage::Decode, demands, costs_);
  EXPECT_TRUE(validate_plan(plan, demands).empty());

  const auto* a = find_task(plan, 0);
  const auto* b = find_task(plan, 1);
  const auto* c = find_task(plan, 2);
  const auto* d = find_task(plan, 3);
  ASSERT_TRUE(a && b && c && d);
  EXPECT_EQ(a->device, kCpuDevice);
  EXPECT_EQ(b->device, kCpuDevice);
  EXPECT_EQ(c->device, kGpuDevice);
  EXPECT_TRUE(c->transferred);
  EXPECT_GE(c->start, c->transfer_end);
  EXPECT_EQ(d->device, kGpuDevice);
  EXPECT_FALSE(d->transferred);

  // Hybrid beats the no-transfer fixed mapping on this instance (4 vs 5).
  SimOptions fixed;
  fixed.allow_transfers = false;
  fixed.allow_cpu_steal = false;
  const auto fixed_plan = simulate_layer(0, Stage::Decode, demands, costs_, fixed);
  EXPECT_LT(plan.makespan, fixed_plan.makespan);
  EXPECT_NEAR(plan.makespan, 4.0, 1e-9);
  EXPECT_NEAR(fixed_plan.makespan, 5.0, 1e-9);
}

TEST_F(SimulatorTest, Fig5StealWithBusyGpu) {
  // With the GPU held by the shared expert (gpu_busy_until) the idle CPU
  // steals the low-load cached expert E — the paper's step 5.
  const std::vector<ExpertDemand> demands = {
      {0, 1, false}, {3, 4, true}, {4, 1, true}};
  SimOptions opt;
  opt.gpu_busy_until = 1.5;
  const auto plan = simulate_layer(0, Stage::Decode, demands, costs_, opt);
  EXPECT_TRUE(validate_plan(plan, demands).empty());
  const auto* e = find_task(plan, 4);
  ASSERT_TRUE(e != nullptr);
  EXPECT_EQ(e->device, kCpuDevice);  // stolen: CPU idle at t=1, GPU busy
  const auto* d = find_task(plan, 3);
  EXPECT_EQ(d->device, kGpuDevice);
  EXPECT_GE(d->start, 1.5);
}

TEST_F(SimulatorTest, GpuPriorityHighLoadFirst) {
  const std::vector<ExpertDemand> demands = {
      {0, 1, true}, {1, 5, true}, {2, 3, true}};
  SimOptions opt;
  opt.allow_cpu_steal = false;  // keep everything on the GPU
  const auto plan = simulate_layer(0, Stage::Decode, demands, costs_, opt);
  // GPU order: loads 5, 3, 1.
  std::vector<std::pair<double, std::uint32_t>> order;
  for (const auto& t : plan.tasks) order.emplace_back(t.start, t.load);
  std::sort(order.begin(), order.end());
  ASSERT_EQ(order.size(), 3U);
  EXPECT_EQ(order[0].second, 5U);
  EXPECT_EQ(order[1].second, 3U);
  EXPECT_EQ(order[2].second, 1U);
}

TEST_F(SimulatorTest, CpuPriorityLowLoadFirst) {
  const std::vector<ExpertDemand> demands = {
      {0, 4, false}, {1, 1, false}, {2, 2, false}};
  SimOptions opt;
  opt.allow_transfers = false;
  const auto plan = simulate_layer(0, Stage::Decode, demands, costs_, opt);
  std::vector<std::pair<double, std::uint32_t>> order;
  for (const auto& t : plan.tasks) order.emplace_back(t.start, t.load);
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order[0].second, 1U);
  EXPECT_EQ(order[1].second, 2U);
  EXPECT_EQ(order[2].second, 4U);
}

TEST_F(SimulatorTest, TransferPriorityHighLoadFirst) {
  // CPU disabled: every expert streams; high loads go first.
  const std::vector<ExpertDemand> demands = {
      {0, 1, false}, {1, 5, false}, {2, 3, false}};
  SimOptions opt;
  opt.allow_cpu = false;
  opt.transfer_only_if_beneficial = false;
  const auto plan = simulate_layer(0, Stage::Decode, demands, costs_, opt);
  EXPECT_TRUE(validate_plan(plan, demands).empty());
  std::vector<std::pair<double, std::uint32_t>> transfers;
  for (const auto& t : plan.tasks) {
    EXPECT_TRUE(t.transferred);
    transfers.emplace_back(t.transfer_start, t.load);
  }
  std::sort(transfers.begin(), transfers.end());
  EXPECT_EQ(transfers[0].second, 5U);
  EXPECT_EQ(transfers[1].second, 3U);
  EXPECT_EQ(transfers[2].second, 1U);
}

TEST_F(SimulatorTest, NoTransferWhenCpuIsFaster) {
  // One small uncached expert: CPU (1s) beats transfer+GPU (3+1s).
  const std::vector<ExpertDemand> demands = {{0, 1, false}};
  const auto plan = simulate_layer(0, Stage::Decode, demands, costs_);
  EXPECT_EQ(plan.tasks[0].device, kCpuDevice);
  EXPECT_EQ(plan.pcie_busy, 0.0);
}

TEST_F(SimulatorTest, GpuOffsetDelaysGpuNotCpu) {
  const std::vector<ExpertDemand> demands = {{0, 2, true}, {1, 1, false}};
  SimOptions opt;
  opt.gpu_busy_until = 10.0;
  const auto plan = simulate_layer(0, Stage::Decode, demands, costs_, opt);
  EXPECT_TRUE(validate_plan(plan, demands).empty());
  for (const auto& t : plan.tasks) {
    if (t.device == kGpuDevice) {
      EXPECT_GE(t.start, 10.0);
    }
  }
  const auto* cpu_task = find_task(plan, 1);
  ASSERT_TRUE(cpu_task != nullptr);
  EXPECT_EQ(cpu_task->device, kCpuDevice);
  EXPECT_DOUBLE_EQ(cpu_task->start, 0.0);
  EXPECT_GE(plan.makespan, 10.0);
}

TEST_F(SimulatorTest, PcieOffsetDelaysTransfers) {
  const std::vector<ExpertDemand> demands = {{0, 8, false}, {1, 8, false}};
  SimOptions opt;
  opt.pcie_busy_until = 2.0;
  const auto plan = simulate_layer(0, Stage::Decode, demands, costs_, opt);
  EXPECT_TRUE(validate_plan(plan, demands).empty());
  for (const auto& t : plan.tasks) {
    if (t.transferred) {
      EXPECT_GE(t.transfer_start, 2.0);
    }
  }
}

TEST_F(SimulatorTest, WarmupAppliedToFirstCpuTaskOnly) {
  moe::ModelConfig model = moe::ModelConfig::tiny();
  hw::MachineProfile machine = hw::MachineProfile::unit_test_machine();
  machine.cpu.warmup_penalty = 0.5;
  const hw::CostModel costs(machine, model);
  const std::vector<ExpertDemand> demands = {{0, 1, false}, {1, 1, false}};
  SimOptions opt;
  opt.allow_transfers = false;
  const auto plan = simulate_layer(0, Stage::Decode, demands, costs, opt);
  std::vector<double> durations;
  for (const auto& t : plan.tasks) durations.push_back(t.end - t.start);
  std::sort(durations.begin(), durations.end());
  EXPECT_NEAR(durations[0], 1.0, 1e-9);
  EXPECT_NEAR(durations[1], 1.5, 1e-9);  // cold first task

  SimOptions no_cold = opt;
  no_cold.cpu_cold_start = false;
  const auto warm_plan = simulate_layer(0, Stage::Decode, demands, costs, no_cold);
  EXPECT_NEAR(warm_plan.makespan, 2.0, 1e-9);
}

TEST_F(SimulatorTest, InputValidation) {
  const std::vector<ExpertDemand> empty;
  EXPECT_THROW((void)simulate_layer(0, Stage::Decode, empty, costs_),
               std::invalid_argument);
  const std::vector<ExpertDemand> zero_load = {{0, 0, false}};
  EXPECT_THROW((void)simulate_layer(0, Stage::Decode, zero_load, costs_),
               std::invalid_argument);
  const std::vector<ExpertDemand> duplicate = {{0, 1, false}, {0, 2, false}};
  EXPECT_THROW((void)simulate_layer(0, Stage::Decode, duplicate, costs_),
               std::invalid_argument);
  SimOptions bad;
  bad.allow_cpu = false;
  bad.allow_transfers = false;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST_F(SimulatorTest, Deterministic) {
  util::Rng rng(5);
  std::vector<ExpertDemand> demands;
  for (std::uint16_t e = 0; e < 8; ++e)
    demands.push_back({e, static_cast<std::uint32_t>(rng.uniform_index(9) + 1),
                       rng.bernoulli(0.5)});
  const auto p1 = simulate_layer(0, Stage::Prefill, demands, costs_);
  const auto p2 = simulate_layer(0, Stage::Prefill, demands, costs_);
  ASSERT_EQ(p1.tasks.size(), p2.tasks.size());
  EXPECT_EQ(p1.makespan, p2.makespan);
  for (std::size_t i = 0; i < p1.tasks.size(); ++i) {
    EXPECT_EQ(p1.tasks[i].expert, p2.tasks[i].expert);
    EXPECT_EQ(p1.tasks[i].start, p2.tasks[i].start);
  }
}

TEST_F(SimulatorTest, MakespanWithExtraCachedHelpsOnAggregate) {
  // Caching one more expert usually shortens the layer, but greedy list
  // scheduling has Graham-style anomalies: forcing an expert onto the GPU
  // queue can occasionally serialize work the CPU would have absorbed. The
  // prefetcher clamps negative impacts, so what matters is (a) regressions
  // are bounded and (b) the aggregate effect is clearly positive.
  util::Rng rng(6);
  double total_gain = 0.0;
  int cases = 0;
  int regressions = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ExpertDemand> demands;
    for (std::uint16_t e = 0; e < 6; ++e)
      demands.push_back({e, static_cast<std::uint32_t>(rng.uniform_index(8) + 1),
                         rng.bernoulli(0.4)});
    const double base = simulate_layer(0, Stage::Decode, demands, costs_).makespan;
    for (const auto& d : demands) {
      if (d.cached) continue;
      const double with =
          makespan_with_extra_cached(0, Stage::Decode, demands, d.expert, costs_);
      EXPECT_LE(with, base * 1.6 + 1e-9) << "expert " << d.expert;
      total_gain += base - with;
      ++cases;
      if (with > base + 1e-9) ++regressions;
    }
  }
  ASSERT_GT(cases, 0);
  EXPECT_GT(total_gain, 0.0);
  EXPECT_LT(static_cast<double>(regressions) / cases, 0.25);
}

/// Structural validity across randomized instances and every option set —
/// the central property test of the scheduling subsystem.
struct OptionCase {
  const char* name;
  SimOptions options;
};

class PlanValidityTest : public ::testing::TestWithParam<OptionCase> {};

TEST_P(PlanValidityTest, RandomInstancesAlwaysValid) {
  const auto& options = GetParam().options;
  const moe::ModelConfig model = moe::ModelConfig::tiny();
  const hw::CostModel costs(hw::MachineProfile::unit_test_machine(), model);
  util::Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const auto n = static_cast<std::uint16_t>(rng.uniform_index(12) + 1);
    std::vector<ExpertDemand> demands;
    for (std::uint16_t e = 0; e < n; ++e)
      demands.push_back({e, static_cast<std::uint32_t>(rng.uniform_index(16) + 1),
                         rng.bernoulli(0.5)});
    SimOptions opt = options;
    opt.gpu_busy_until = rng.bernoulli(0.5) ? rng.uniform(0.0, 3.0) : 0.0;
    opt.pcie_busy_until = rng.bernoulli(0.3) ? rng.uniform(0.0, 2.0) : 0.0;
    const auto plan = simulate_layer(3, Stage::Decode, demands, costs, opt);
    const auto issues = validate_plan(plan, demands);
    ASSERT_TRUE(issues.empty())
        << GetParam().name << " trial " << trial << ": " << issues.front();
  }
}

INSTANTIATE_TEST_SUITE_P(
    OptionSets, PlanValidityTest,
    ::testing::Values(
        OptionCase{"hybrid", SimOptions{}},
        OptionCase{"no_transfers",
                   SimOptions{.allow_transfers = false, .allow_cpu_steal = false}},
        OptionCase{"gpu_centric",
                   SimOptions{.allow_cpu = false, .transfer_only_if_beneficial = false}},
        OptionCase{"no_steal", SimOptions{.allow_cpu_steal = false}},
        OptionCase{"naive_transfers", SimOptions{.transfer_only_if_beneficial = false}},
        OptionCase{"greedy_cpu", SimOptions{.cpu_only_if_beneficial = false}}),
    [](const ::testing::TestParamInfo<OptionCase>& param_info) {
      return param_info.param.name;
    });

/// The hybrid schedule should rarely lose to restricted variants; assert it
/// never loses by more than a small factor and wins on aggregate.
TEST_F(SimulatorTest, HybridCompetitiveWithRestrictedVariants) {
  util::Rng rng(8);
  double hybrid_total = 0.0;
  double fixed_total = 0.0;
  double gpu_total = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<ExpertDemand> demands;
    const auto n = static_cast<std::uint16_t>(rng.uniform_index(10) + 2);
    for (std::uint16_t e = 0; e < n; ++e)
      demands.push_back({e, static_cast<std::uint32_t>(rng.uniform_index(12) + 1),
                         rng.bernoulli(0.5)});
    const double hybrid = simulate_layer(0, Stage::Decode, demands, costs_).makespan;
    SimOptions fixed;
    fixed.allow_transfers = false;
    fixed.allow_cpu_steal = false;
    const double no_move =
        simulate_layer(0, Stage::Decode, demands, costs_, fixed).makespan;
    SimOptions gpu_only;
    gpu_only.allow_cpu = false;
    gpu_only.transfer_only_if_beneficial = false;
    const double gpu =
        simulate_layer(0, Stage::Decode, demands, costs_, gpu_only).makespan;
    hybrid_total += hybrid;
    fixed_total += no_move;
    gpu_total += gpu;
    EXPECT_LE(hybrid, no_move * 1.35) << "trial " << trial;
  }
  EXPECT_LT(hybrid_total, fixed_total);
  EXPECT_LT(hybrid_total, gpu_total);
}

}  // namespace
}  // namespace hybrimoe::sched
