/// \file recorder_test.cpp
/// The trace::Recorder end to end through real serving runs: fixed-seed
/// determinism (byte-identical JSONL), schema versioning, the observer
/// guarantee (a recorded run reports the same metrics as an unrecorded one),
/// record conservation (per-step deltas sum to the run totals, and in
/// threaded mode to the CopyEngine's completed-job counters), and the
/// ScenarioDriver delegation that unifies scenario timelines with traces.

#include "trace/recorder.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "runtime/session.hpp"
#include "scenario/drivers.hpp"
#include "trace/schema.hpp"
#include "trace/sink.hpp"
#include "workload/request_stream.hpp"

namespace hybrimoe::trace {
namespace {

#if defined(__SANITIZE_THREAD__)
#define HYBRIMOE_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HYBRIMOE_TEST_TSAN 1
#endif
#endif
#if defined(HYBRIMOE_TEST_TSAN)
constexpr double kExecScale = 3e-3;
#else
constexpr double kExecScale = 3e-4;
#endif

runtime::ExperimentSpec make_spec() {
  runtime::ExperimentSpec spec;
  spec.model = moe::ModelConfig::tiny();
  spec.machine = hw::MachineProfile::unit_test_machine();
  spec.cache_ratio = 0.25;
  spec.trace.seed = 42;
  return spec;
}

std::vector<workload::RequestSpec> make_stream(std::size_t n = 8) {
  workload::RequestStreamParams stream;
  stream.num_requests = n;
  stream.arrival_rate = 4.0;
  stream.seed = 7;
  return workload::generate_request_stream(stream);
}

runtime::ServeOptions make_options() {
  runtime::ServeOptions options;
  options.max_batch = 4;
  options.max_prefill_chunk = 16;
  return options;
}

RecorderConfig make_config(const runtime::ExperimentHarness& harness,
                           TraceSink* sink) {
  RecorderConfig config;
  config.costs = &harness.costs();
  config.expert_bytes =
      static_cast<double>(harness.spec().model.routed_expert_bytes());
  config.sink = sink;
  config.stack = "HybriMoE";
  config.model = harness.spec().model.name;
  config.seed = 7;
  config.devices = harness.costs().num_accelerators();
  return config;
}

/// One recorded serving run; returns the sink's lines.
std::vector<std::string> traced_run() {
  runtime::ExperimentHarness harness(make_spec());
  VectorSink sink;
  Recorder recorder(make_config(harness, &sink));
  runtime::ServeOptions options = make_options();
  options.hook = &recorder;
  const auto metrics =
      harness.serve(runtime::Framework::HybriMoE, make_stream(), options);
  recorder.write_summary(metrics);
  return sink.lines();
}

TEST(RecorderTest, FixedSeedTraceIsByteIdenticalAcrossRuns) {
  const auto first = traced_run();
  const auto second = traced_run();
  ASSERT_GT(first.size(), 2u);  // header + steps/events + summary
  EXPECT_EQ(first, second);
}

TEST(RecorderTest, HeaderCarriesSchemaNameAndVersion) {
  const auto lines = traced_run();
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.front().find("\"kind\": \"header\""), std::string::npos);
  EXPECT_NE(lines.front().find("\"schema\": \"hybrimoe-trace\""),
            std::string::npos);
  EXPECT_NE(lines.front().find("\"version\": 1"), std::string::npos);
  EXPECT_NE(lines.back().find("\"kind\": \"summary\""), std::string::npos);
}

TEST(RecorderTest, RecordedRunReportsIdenticalMetrics) {
  // The recorder is an observer: same stream, same metrics, with or without.
  const auto specs = make_stream();
  runtime::ExperimentHarness plain_harness(make_spec());
  const auto plain =
      plain_harness.serve(runtime::Framework::HybriMoE, specs, make_options());

  runtime::ExperimentHarness traced_harness(make_spec());
  VectorSink sink;
  Recorder recorder(make_config(traced_harness, &sink));
  runtime::ServeOptions options = make_options();
  options.hook = &recorder;
  const auto traced =
      traced_harness.serve(runtime::Framework::HybriMoE, specs, options);

  EXPECT_EQ(plain.makespan, traced.makespan);
  EXPECT_EQ(plain.finished_count(), traced.finished_count());
  EXPECT_EQ(plain.total_generated_tokens(), traced.total_generated_tokens());
  EXPECT_EQ(plain.steps.transfers, traced.steps.transfers);
  EXPECT_EQ(plain.steps.prefetches, traced.steps.prefetches);
  EXPECT_EQ(plain.steps.maintenance, traced.steps.maintenance);
  EXPECT_EQ(plain.steps.cache.hits, traced.steps.cache.hits);
  EXPECT_EQ(plain.steps.cache.misses, traced.steps.cache.misses);
}

TEST(RecorderTest, PerStepDeltasSumToRunTotals) {
  runtime::ExperimentHarness harness(make_spec());
  Recorder recorder(make_config(harness, nullptr));
  runtime::ServeOptions options = make_options();
  options.hook = &recorder;
  const auto metrics =
      harness.serve(runtime::Framework::HybriMoE, make_stream(), options);

  ASSERT_FALSE(recorder.timeline().empty());
  std::size_t transfers = 0, prefetches = 0, maintenance = 0;
  std::vector<std::size_t> per_device;
  std::vector<double> bytes;
  for (const StepRecord& r : recorder.timeline()) {
    transfers += r.transfers;
    prefetches += r.prefetches;
    maintenance += r.maintenance;
    per_device.resize(std::max(per_device.size(), r.transfers_to_device.size()));
    bytes.resize(per_device.size(), 0.0);
    for (std::size_t a = 0; a < r.transfers_to_device.size(); ++a) {
      per_device[a] += r.transfers_to_device[a];
      bytes[a] += r.transferred_bytes[a];
    }
  }
  EXPECT_EQ(transfers, metrics.steps.transfers);
  EXPECT_EQ(prefetches, metrics.steps.prefetches);
  EXPECT_EQ(maintenance, metrics.steps.maintenance);
  ASSERT_EQ(per_device.size(), metrics.steps.device_transfers.size());
  const double expert_bytes =
      static_cast<double>(harness.spec().model.routed_expert_bytes());
  for (std::size_t a = 0; a < per_device.size(); ++a) {
    EXPECT_EQ(per_device[a], metrics.steps.device_transfers[a]) << "device " << a;
    EXPECT_DOUBLE_EQ(bytes[a], static_cast<double>(per_device[a]) * expert_bytes)
        << "device " << a;
  }
}

TEST(RecorderTest, TracedTransfersMatchCopyEngineCompletions) {
  // Threaded execution turns every accounted upload into one CopyEngine job
  // on its link, so the trace's per-device transfer counts must equal the
  // executor's completed-job counters — conservation between the modeled
  // records and the real execution backend.
  exec::ExecOptions exec_options;
  exec_options.workers = 2;
  exec_options.time_scale = kExecScale;
  auto executor = std::make_shared<exec::HybridExecutor>(exec_options);

  runtime::ExperimentHarness harness(make_spec());
  harness.set_execution(exec::ExecutionMode::Threaded, executor);
  Recorder recorder(make_config(harness, nullptr));
  runtime::ServeOptions options = make_options();
  options.hook = &recorder;
  const auto metrics =
      harness.serve(runtime::Framework::HybriMoE, make_stream(6), options);
  (void)metrics;

  std::vector<std::uint64_t> per_device;
  for (const StepRecord& r : recorder.timeline()) {
    per_device.resize(std::max(per_device.size(), r.transfers_to_device.size()));
    for (std::size_t a = 0; a < r.transfers_to_device.size(); ++a)
      per_device[a] += r.transfers_to_device[a];
  }
  ASSERT_FALSE(per_device.empty());
  ASSERT_EQ(executor->num_links(), per_device.size());
  std::uint64_t total = 0;
  for (std::size_t a = 0; a < per_device.size(); ++a) {
    EXPECT_EQ(executor->link_transfers_completed(a), per_device[a])
        << "link " << a;
    total += per_device[a];
  }
  EXPECT_GT(total, 0u);
}

TEST(RecorderTest, ScenarioDriverStreamsThroughExternalRecorder) {
  // The driver delegates recording: with an external recorder the scenario's
  // timeline and the streamed trace are one and the same data.
  runtime::ExperimentHarness harness(make_spec());
  VectorSink sink;
  Recorder recorder(make_config(harness, &sink));
  scenario::ScenarioSpec spec;
  spec.family = scenario::Family::StragglerLink;
  spec.accel = 0;
  spec.start_step = 2;
  spec.end_step = 5;
  spec.bandwidth_scale = 0.25;
  scenario::ScenarioDriver driver(spec, harness.mutable_costs(), &recorder);
  runtime::ServeOptions options = make_options();
  options.hook = &driver;
  const auto metrics =
      harness.serve(runtime::Framework::HybriMoE, make_stream(), options);
  recorder.write_summary(metrics);

  EXPECT_EQ(driver.timeline().size(), recorder.timeline().size());
  ASSERT_GT(driver.timeline().size(), 5u);
  // The straggler window must be visible in the shared records.
  EXPECT_DOUBLE_EQ(driver.timeline()[2].link_scale[0], 0.25);
  EXPECT_DOUBLE_EQ(driver.timeline()[5].link_scale[0], 1.0);
  // header + one line per step + per event + summary all reached the sink.
  EXPECT_EQ(sink.lines().size(),
            2 + recorder.timeline().size() + recorder.events().size());
}

}  // namespace
}  // namespace hybrimoe::trace
