/// \file compare_test.cpp
/// The comparator behind tools/hybrimoe_compare: artifact flattening (bench
/// JSON and JSONL traces), leaf-name threshold matching, the exact-equality
/// default, misalignment reporting, malformed-input errors, and the hard
/// abort on cross-schema-version trace comparison.

#include "trace/compare.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hybrimoe::trace {
namespace {

constexpr const char* kBenchA = R"({
  "bench": "demo",
  "model": "Tiny",
  "throughput_tok_s": 50,
  "flag": true,
  "points": [
    {"rate": 1, "tbt_p99_s": 0.5},
    {"rate": 2, "tbt_p99_s": 0.25}
  ]
}
)";

std::string make_trace(int version, double latency) {
  std::string text =
      "{\"kind\": \"header\", \"schema\": \"hybrimoe-trace\", \"version\": " +
      std::to_string(version) +
      ", \"stack\": \"HybriMoE\", \"model\": \"Tiny\", \"seed\": 7, "
      "\"devices\": 1}\n";
  text += "{\"kind\": \"event\", \"t_s\": 0.5, \"seq\": 0, \"type\": "
          "\"arrival\", \"request\": 0, \"payload\": 0}\n";
  text += "{\"kind\": \"event\", \"t_s\": 0.6, \"seq\": 1, \"type\": "
          "\"arrival\", \"request\": 1, \"payload\": 0}\n";
  text += "{\"kind\": \"step\", \"index\": 0, \"latency_s\": " +
          std::to_string(latency) +
          ", \"transfers_to_device\": [3], \"stage\": \"decode\"}\n";
  text += "{\"kind\": \"summary\", \"steps\": 1, \"makespan_s\": 2.5}\n";
  return text;
}

TEST(CompareTest, BenchFlattensToDottedAndIndexedPaths) {
  const Artifact a = parse_artifact(kBenchA, "baseline");
  EXPECT_EQ(a.kind, Artifact::Kind::Bench);
  std::vector<std::string> names;
  for (const Metric& m : a.metrics) names.push_back(m.name);
  EXPECT_EQ(names, (std::vector<std::string>{
                       "throughput_tok_s", "flag", "points[0].rate",
                       "points[0].tbt_p99_s", "points[1].rate",
                       "points[1].tbt_p99_s"}));
  EXPECT_DOUBLE_EQ(a.metrics[1].value, 1.0);  // booleans compare as 0/1
}

TEST(CompareTest, IdenticalArtifactsPassUnderExactDefault) {
  const Artifact a = parse_artifact(kBenchA, "baseline");
  const Artifact b = parse_artifact(kBenchA, "candidate");
  const CompareReport report = compare(a, b, Thresholds{});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.deltas.size(), 6u);
  EXPECT_EQ(report.violations, 0u);
}

TEST(CompareTest, AnyDeltaViolatesTheExactDefault) {
  std::string mutated = kBenchA;
  mutated.replace(mutated.find("50"), 2, "51");
  const Artifact a = parse_artifact(kBenchA, "baseline");
  const Artifact b = parse_artifact(mutated, "candidate");
  const CompareReport report = compare(a, b, Thresholds{});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.violations, 1u);
  const auto& d = report.deltas.front();
  EXPECT_EQ(d.name, "throughput_tok_s");
  EXPECT_TRUE(d.violated);
  EXPECT_DOUBLE_EQ(d.delta, 1.0);
  EXPECT_DOUBLE_EQ(d.limit, 0.0);
}

TEST(CompareTest, LeafNameThresholdGrantsSlackToEveryIndexedInstance) {
  std::string mutated = kBenchA;
  mutated.replace(mutated.find("0.25}"), 4, "0.26");
  const Artifact a = parse_artifact(kBenchA, "baseline");
  const Artifact b = parse_artifact(mutated, "candidate");
  const Thresholds thresholds = parse_thresholds(
      R"({"metrics": {"tbt_p99_s": {"abs": 0.02}}})");
  EXPECT_TRUE(compare(a, b, thresholds).ok());
  // The same delta without the rule is a violation.
  EXPECT_EQ(compare(a, b, Thresholds{}).violations, 1u);
}

TEST(CompareTest, RelativeSlackScalesWithMagnitude) {
  std::string mutated = kBenchA;
  mutated.replace(mutated.find("50"), 2, "52");
  const Artifact a = parse_artifact(kBenchA, "baseline");
  const Artifact b = parse_artifact(mutated, "candidate");
  EXPECT_TRUE(compare(a, b,
                      parse_thresholds(
                          R"({"metrics": {"throughput_tok_s": {"rel": 0.05}}})"))
                  .ok());
  EXPECT_FALSE(compare(a, b,
                       parse_thresholds(
                           R"({"metrics": {"throughput_tok_s": {"rel": 0.01}}})"))
                   .ok());
}

TEST(CompareTest, DefaultRuleAppliesToUnnamedMetrics) {
  std::string mutated = kBenchA;
  mutated.replace(mutated.find("50"), 2, "51");
  const Artifact a = parse_artifact(kBenchA, "baseline");
  const Artifact b = parse_artifact(mutated, "candidate");
  EXPECT_TRUE(
      compare(a, b, parse_thresholds(R"({"default": {"abs": 2.0}})")).ok());
}

TEST(CompareTest, MissingMetricsAreMisalignments) {
  constexpr const char* kSmaller = R"({"bench": "demo", "throughput_tok_s": 50}
)";
  const Artifact a = parse_artifact(kBenchA, "baseline");
  const Artifact b = parse_artifact(kSmaller, "candidate");
  const CompareReport report = compare(a, b, Thresholds{});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.violations, 0u);  // the aligned metric matches
  ASSERT_EQ(report.missing.size(), 5u);
  EXPECT_EQ(report.missing.front(), "baseline-only: flag");
}

TEST(CompareTest, TraceFlattensHeaderStepsEventsAndSummary) {
  const Artifact t = parse_artifact(make_trace(1, 0.125), "trace");
  EXPECT_EQ(t.kind, Artifact::Kind::Trace);
  EXPECT_EQ(t.schema, "hybrimoe-trace");
  EXPECT_EQ(t.version, 1u);
  auto value_of = [&](const std::string& name) -> double {
    for (const Metric& m : t.metrics)
      if (m.name == name) return m.value;
    ADD_FAILURE() << "metric not found: " << name;
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(value_of("header.seed"), 7.0);
  EXPECT_DOUBLE_EQ(value_of("step[0].latency_s"), 0.125);
  EXPECT_DOUBLE_EQ(value_of("step[0].transfers_to_device[0]"), 3.0);
  EXPECT_DOUBLE_EQ(value_of("summary.makespan_s"), 2.5);
  EXPECT_DOUBLE_EQ(value_of("events.arrival"), 2.0);  // per-type count
}

TEST(CompareTest, IdenticalTracesPassAndPerturbedTracesFail) {
  const Artifact a = parse_artifact(make_trace(1, 0.125), "baseline");
  const Artifact b = parse_artifact(make_trace(1, 0.125), "candidate");
  EXPECT_TRUE(compare(a, b, Thresholds{}).ok());
  const Artifact c = parse_artifact(make_trace(1, 0.5), "candidate");
  EXPECT_FALSE(compare(a, c, Thresholds{}).ok());
}

TEST(CompareDeathTest, SchemaVersionMismatchAborts) {
  const Artifact a = parse_artifact(make_trace(1, 0.125), "baseline");
  const Artifact b = parse_artifact(make_trace(2, 0.125), "candidate");
  EXPECT_DEATH((void)compare(a, b, Thresholds{}), "trace schema mismatch");
}

TEST(CompareTest, MalformedInputsThrowPositionStampedErrors) {
  EXPECT_THROW((void)parse_artifact("{\"open\": ", "baseline"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_artifact("{\"kind\": \"header\"}\n"
                                    "{\"kind\": \"mystery\"}\n",
                                    "trace"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_thresholds(R"({"metrics": {"x": {"abs": -1}}})"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_thresholds(R"({"metrics": {"x": {"typo": 1}}})"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_thresholds(R"({"bogus": {}})"),
               std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::trace
