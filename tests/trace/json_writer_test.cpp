/// \file json_writer_test.cpp
/// util::JsonWriter is a byte-level contract: the pretty artifact layout the
/// golden regression tests diff, the compact layout of trace JSONL lines,
/// and the two number formats (legacy six-digit vs exact round-trip). These
/// tests pin the exact bytes so refactoring an emitter onto the writer can
/// never silently reflow a committed artifact.

#include "util/json_writer.hpp"

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <vector>

namespace hybrimoe {
namespace {

TEST(JsonWriterTest, RootObjectLayoutMatchesArtifactConvention) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.field("tool").string("hybrimoe_run");
  w.field("cache_ratio").number(0.25);
  w.field("requests").number(std::size_t{12});
  w.field("ok").boolean(true);
  w.field("spec").raw("{\"scheduler\": \"hybrid\"}");
  w.finish();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"tool\": \"hybrimoe_run\",\n"
            "  \"cache_ratio\": 0.25,\n"
            "  \"requests\": 12,\n"
            "  \"ok\": true,\n"
            "  \"spec\": {\"scheduler\": \"hybrid\"}\n"
            "}\n");
}

TEST(JsonWriterTest, ArrayRowsAreCompactObjectsOnePerLine) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.field("bench").string("demo");
  w.field("points").begin_array();
  for (int i = 0; i < 2; ++i) {
    auto item = w.row();
    item.field("rate").number(i + 1);
    item.field("name").string(i == 0 ? "a" : "b");
    item.close();
  }
  w.end_array();
  w.finish();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"bench\": \"demo\",\n"
            "  \"points\": [\n"
            "    {\"rate\": 1, \"name\": \"a\"},\n"
            "    {\"rate\": 2, \"name\": \"b\"}\n"
            "  ]\n"
            "}\n");
}

TEST(JsonWriterTest, EmptyArrayAndPostArrayFields) {
  // exec_validation's shape: fields continue after the array closes.
  std::ostringstream os;
  util::JsonWriter w(os);
  w.field("runs").begin_array();
  w.end_array();
  w.field("digests_ok").boolean(false);
  w.finish();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"runs\": [\n"
            "  ],\n"
            "  \"digests_ok\": false\n"
            "}\n");
}

TEST(JsonWriterTest, InlineObjectEscapesAndLists) {
  std::ostringstream os;
  util::JsonWriter::Inline line(os);
  line.field("name").string("say \"hi\"\\");
  line.field("counts").count_list(std::array<std::size_t, 3>{1, 0, 2});
  line.field("scales").exact_list(std::vector<double>{1.0, 0.5});
  line.close();
  EXPECT_EQ(os.str(),
            "{\"name\": \"say \\\"hi\\\"\\\\\", "
            "\"counts\": [1, 0, 2], \"scales\": [1, 0.5]}");
}

TEST(JsonWriterTest, NumberFormatsAreDistinct) {
  // number(): the historical ostream default (six significant digits).
  // exact(): shortest form that round-trips the double bit for bit.
  std::ostringstream os;
  util::JsonWriter::Inline line(os);
  line.field("legacy").number(0.123456789);
  line.field("roundtrip").exact(0.123456789);
  line.field("negative").number(-3);
  line.close();
  EXPECT_EQ(os.str(),
            "{\"legacy\": 0.123457, \"roundtrip\": 0.123456789, "
            "\"negative\": -3}");
}

}  // namespace
}  // namespace hybrimoe
