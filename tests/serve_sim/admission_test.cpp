#include <gtest/gtest.h>

#include <vector>

#include "runtime/serve_engine.hpp"
#include "runtime/session.hpp"

namespace hybrimoe::serve_sim {
namespace {

using runtime::ExperimentHarness;
using runtime::ExperimentSpec;
using runtime::Framework;
using runtime::ServeMetrics;
using runtime::ServeOptions;

/// Round per-token bytes so footprints are easy to reason about in tests:
/// footprint = (prompt + decode) * 1000 bytes, budget_mb units of 1e6.
constexpr double kBytesPerToken = 1000.0;

ExperimentSpec tiny_spec(std::uint64_t seed = 91) {
  ExperimentSpec spec;
  spec.model = moe::ModelConfig::tiny(4, 8, 2);
  spec.machine = hw::MachineProfile::unit_test_machine();
  spec.cache_ratio = 0.25;
  spec.trace.seed = seed;
  spec.warmup_steps = 8;
  return spec;
}

ServeOptions kv_options(double budget_mb, AdmissionMode mode) {
  ServeOptions options;
  options.kv.budget_mb = budget_mb;
  options.kv.bytes_per_token = kBytesPerToken;
  options.kv.mode = mode;
  return options;
}

workload::RequestSpec make_request(std::uint64_t id, double arrival,
                                   std::size_t prompt, std::size_t decode,
                                   workload::Priority priority =
                                       workload::Priority::Standard) {
  workload::RequestSpec spec;
  spec.id = id;
  spec.arrival_time = arrival;
  spec.prompt_tokens = prompt;
  spec.decode_tokens = decode;
  spec.priority = priority;
  return spec;
}

workload::RequestStreamParams tiny_stream(double rate = 4.0) {
  workload::RequestStreamParams p;
  p.num_requests = 16;
  p.arrival_rate = rate;
  p.prompt_tokens_min = 3;
  p.prompt_tokens_max = 8;
  p.decode_tokens_min = 2;
  p.decode_tokens_max = 5;
  p.seed = 17;
  return p;
}

// -- Impossible fits ------------------------------------------------------

TEST(KvAdmissionTest, NearZeroBudgetRejectsEveryRequest) {
  // One byte of budget: every footprint is impossible, so every request is
  // shed at arrival regardless of the admission mode.
  const auto specs = workload::generate_request_stream(tiny_stream());
  for (const auto mode : {AdmissionMode::Queue, AdmissionMode::Reject,
                          AdmissionMode::EvictRequeue}) {
    ExperimentHarness harness(tiny_spec());
    const auto metrics =
        harness.serve(Framework::HybriMoE, specs, kv_options(1e-6, mode));
    EXPECT_EQ(metrics.finished_count(), 0U);
    EXPECT_EQ(metrics.rejected_count(), specs.size());
    EXPECT_EQ(metrics.kv.rejected, specs.size());
    EXPECT_EQ(metrics.kv.evictions, 0U);
    EXPECT_DOUBLE_EQ(metrics.kv.peak_bytes, 0.0);
    EXPECT_EQ(metrics.total_generated_tokens(), 0U);
  }
}

TEST(KvAdmissionTest, ExactFitIsAdmittedOneTokenOverIsNot) {
  // footprint = (4 + 4) * 1000 = 8000 bytes.
  const std::vector<workload::RequestSpec> specs{make_request(0, 0.0, 4, 4)};
  {
    ExperimentHarness harness(tiny_spec());
    const auto metrics = harness.serve(
        Framework::HybriMoE, specs, kv_options(0.008, AdmissionMode::Queue));
    EXPECT_EQ(metrics.finished_count(), 1U);
    EXPECT_DOUBLE_EQ(metrics.kv.peak_bytes, 8000.0);
    EXPECT_DOUBLE_EQ(metrics.kv.budget_bytes, 8000.0);
  }
  {
    ExperimentHarness harness(tiny_spec());
    const auto metrics = harness.serve(
        Framework::HybriMoE, specs, kv_options(0.007, AdmissionMode::Queue));
    EXPECT_EQ(metrics.finished_count(), 0U);
    EXPECT_EQ(metrics.kv.rejected, 1U);
  }
}

// -- Queue mode -----------------------------------------------------------

TEST(KvAdmissionTest, QueueModeFinishesEverythingWithinBudget) {
  const auto specs = workload::generate_request_stream(tiny_stream(50.0));
  ExperimentHarness harness(tiny_spec());
  // Budget for one max-size request (13 tokens): admission serialises but
  // nothing is lost.
  const auto metrics = harness.serve(Framework::HybriMoE, specs,
                                     kv_options(0.013, AdmissionMode::Queue));
  EXPECT_EQ(metrics.finished_count(), specs.size());
  EXPECT_EQ(metrics.rejected_count(), 0U);
  EXPECT_EQ(metrics.kv.rejected, 0U);
  EXPECT_LE(metrics.kv.peak_bytes, metrics.kv.budget_bytes);
  EXPECT_GT(metrics.kv.peak_bytes, 0.0);
}

TEST(KvAdmissionTest, DisabledAccountingIsBitIdenticalToNoKv) {
  const auto specs = workload::generate_request_stream(tiny_stream());
  ExperimentHarness a(tiny_spec());
  ExperimentHarness b(tiny_spec());
  const auto plain = a.serve(Framework::HybriMoE, specs);
  ServeOptions disabled;  // budget 0 = accounting off
  const auto gated = b.serve(Framework::HybriMoE, specs, disabled);
  ASSERT_EQ(plain.requests.size(), gated.requests.size());
  EXPECT_EQ(plain.makespan, gated.makespan);
  for (std::size_t i = 0; i < plain.requests.size(); ++i) {
    EXPECT_EQ(plain.requests[i].finish, gated.requests[i].finish);
    EXPECT_EQ(plain.requests[i].tbt, gated.requests[i].tbt);
  }
  EXPECT_DOUBLE_EQ(gated.kv.budget_bytes, 0.0);
}

// -- Reject mode ----------------------------------------------------------

TEST(KvAdmissionTest, RejectModeShedsExactlyWhatCannotFit) {
  const auto specs = workload::generate_request_stream(tiny_stream(200.0));
  ExperimentHarness harness(tiny_spec());
  const auto metrics = harness.serve(Framework::HybriMoE, specs,
                                     kv_options(0.020, AdmissionMode::Reject));
  EXPECT_GT(metrics.rejected_count(), 0U);
  EXPECT_GT(metrics.finished_count(), 0U);
  // KV is the only active admission-control policy, so its reject counter
  // accounts for every shed request.
  EXPECT_EQ(metrics.kv.rejected, metrics.rejected_count());
  EXPECT_EQ(metrics.kv.evictions, 0U);
}

// -- Evict-and-requeue mode -----------------------------------------------

ServeOptions evict_options() {
  // Budget fits two max-size requests; priority admission on so the tier
  // ladder drives both admission and eviction.
  ServeOptions options = kv_options(0.026, AdmissionMode::EvictRequeue);
  options.priority_admission = true;
  return options;
}

TEST(KvAdmissionTest, EvictRequeueIsDeterministicAndConservesTokens) {
  auto params = tiny_stream(100.0);
  params.vip_fraction = 0.3;
  params.best_effort_fraction = 0.4;
  const auto specs = workload::generate_request_stream(params);
  ExperimentHarness a(tiny_spec());
  ExperimentHarness b(tiny_spec());
  const auto ma = a.serve(Framework::HybriMoE, specs, evict_options());
  const auto mb = b.serve(Framework::HybriMoE, specs, evict_options());

  // Evict mode never sheds a feasible request: it blocks when it cannot
  // evict. Token conservation: every finished request re-emitted its full
  // budget even after losing progress to an eviction.
  EXPECT_EQ(ma.finished_count(), specs.size());
  for (std::size_t i = 0; i < ma.requests.size(); ++i) {
    const auto& r = ma.requests[i];
    const auto& spec = specs[r.id];
    EXPECT_EQ(r.generated_tokens,
              (spec.prompt_tokens > 0 ? 1 : 0) + spec.decode_tokens);
  }
  EXPECT_EQ(ma.eviction_count(), ma.kv.evictions);

  // Bit-for-bit reproducible across independent harnesses.
  ASSERT_EQ(ma.requests.size(), mb.requests.size());
  EXPECT_EQ(ma.makespan, mb.makespan);
  EXPECT_EQ(ma.kv.evictions, mb.kv.evictions);
  EXPECT_EQ(ma.kv.peak_bytes, mb.kv.peak_bytes);
  for (std::size_t i = 0; i < ma.requests.size(); ++i) {
    EXPECT_EQ(ma.requests[i].finish, mb.requests[i].finish);
    EXPECT_EQ(ma.requests[i].evictions, mb.requests[i].evictions);
    EXPECT_EQ(ma.requests[i].tbt, mb.requests[i].tbt);
  }
}

TEST(KvAdmissionTest, EvictionTargetsStrictlyLowerTiersNewestFirst) {
  // Three requests of one shape (footprint 68000 each), budget 137000: the
  // best-effort and standard requests are admitted at t=0 and decode for a
  // long time; when the VIP arrives (any instant after the t=0 admission)
  // it does not fit, and the only valid victim is the best-effort request —
  // never the same-or-higher standard one.
  const std::vector<workload::RequestSpec> specs{
      make_request(0, 0.0, 4, 64, workload::Priority::BestEffort),
      make_request(1, 0.0, 4, 64, workload::Priority::Standard),
      make_request(2, 1e-6, 4, 64, workload::Priority::Vip),
  };
  ExperimentHarness harness(tiny_spec());
  ServeOptions options = kv_options(0.137, AdmissionMode::EvictRequeue);
  options.priority_admission = true;
  const auto metrics = harness.serve(Framework::HybriMoE, specs, options);
  EXPECT_EQ(metrics.finished_count(), 3U);
  EXPECT_GE(metrics.requests[0].evictions, 1U);  // best-effort paid
  EXPECT_EQ(metrics.requests[1].evictions, 0U);  // standard untouched
  EXPECT_EQ(metrics.requests[2].evictions, 0U);  // vip never evicted
  EXPECT_EQ(metrics.kv.evictions, metrics.eviction_count());
}

TEST(KvAdmissionTest, EvictFallsBackToBlockingWhenNoLowerTierExists) {
  // All standard: nothing is strictly lower, so evict mode degrades to
  // queue-mode blocking — everything still finishes, nothing is evicted.
  const std::vector<workload::RequestSpec> specs{
      make_request(0, 0.0, 4, 8),
      make_request(1, 0.0, 4, 8),
      make_request(2, 0.0, 4, 8),
  };
  ExperimentHarness harness(tiny_spec());
  const auto metrics = harness.serve(
      Framework::HybriMoE, specs, kv_options(0.025, AdmissionMode::EvictRequeue));
  EXPECT_EQ(metrics.finished_count(), 3U);
  EXPECT_EQ(metrics.kv.evictions, 0U);
  EXPECT_EQ(metrics.kv.rejected, 0U);
}

// -- Option plumbing ------------------------------------------------------

TEST(KvAdmissionTest, EnabledBudgetRequiresResolvedBytesPerToken) {
  const std::vector<workload::RequestSpec> specs{make_request(0, 0.0, 4, 4)};
  ExperimentHarness harness(tiny_spec());
  ServeOptions options;
  options.kv.budget_mb = 1.0;  // bytes_per_token left unresolved
  EXPECT_THROW((void)harness.serve(Framework::HybriMoE, specs, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::serve_sim
