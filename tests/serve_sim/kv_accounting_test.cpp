#include "serve_sim/kv.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "hw/topology.hpp"
#include "moe/model_config.hpp"

namespace hybrimoe::serve_sim {
namespace {

KvSpec enabled_spec(double budget_mb = 1.0, double bytes_per_token = 512.0) {
  KvSpec spec;
  spec.budget_mb = budget_mb;
  spec.bytes_per_token = bytes_per_token;
  return spec;
}

// -- Spec grammar ---------------------------------------------------------

TEST(KvSpecTest, DefaultIsDisabledAndValid) {
  const KvSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_NO_THROW(spec.validate());
}

TEST(KvSpecTest, ValidateRejectsNegativeFields) {
  KvSpec spec = enabled_spec();
  spec.budget_mb = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = enabled_spec();
  spec.bytes_per_token = -0.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(KvSpecTest, ParseRoundTripsEveryMode) {
  for (const auto mode : {AdmissionMode::Queue, AdmissionMode::Reject,
                          AdmissionMode::EvictRequeue}) {
    KvSpec spec = enabled_spec(64.0, 2048.0);
    spec.mode = mode;
    EXPECT_EQ(parse_kv_spec(to_json(spec)), spec);
  }
}

TEST(KvSpecTest, UnknownKeyFailsWithSuggestion) {
  try {
    (void)parse_kv_spec(R"({"budget": 64})");
    FAIL() << "unknown key accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("budget_mb"), std::string::npos)
        << e.what();
  }
}

TEST(KvSpecTest, UnknownAdmissionNameFailsWithSuggestion) {
  try {
    (void)admission_from_name("quue");
    FAIL() << "unknown admission mode accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("queue"), std::string::npos) << e.what();
  }
  EXPECT_THROW((void)parse_kv_spec(R"({"admission": "drop"})"),
               std::invalid_argument);
}

TEST(KvSpecTest, ParseRejectsNegativeBudget) {
  EXPECT_THROW((void)parse_kv_spec(R"({"budget_mb": -3})"), std::invalid_argument);
}

TEST(KvSpecTest, AdmissionNamesRoundTrip) {
  EXPECT_EQ(admission_from_name("queue"), AdmissionMode::Queue);
  EXPECT_EQ(admission_from_name("reject"), AdmissionMode::Reject);
  EXPECT_EQ(admission_from_name("evict"), AdmissionMode::EvictRequeue);
  EXPECT_STREQ(to_string(AdmissionMode::EvictRequeue), "evict");
}

// -- Derived footprints ---------------------------------------------------

TEST(KvSpecTest, ModelBytesPerTokenIsTwoFp16RowsPerLayer) {
  const auto model = moe::ModelConfig::tiny();  // 4 layers, d_model 32
  EXPECT_DOUBLE_EQ(model_kv_bytes_per_token(model), 2.0 * 4.0 * 32.0 * 2.0);
}

TEST(KvSpecTest, DerivedBudgetScalesWithAccelerators) {
  const auto single =
      hw::Topology::from_machine(hw::MachineProfile::a6000_xeon10());
  EXPECT_DOUBLE_EQ(derived_kv_budget_mb(single), kKvMbPerAccelerator);
}

// -- Accountant ledger ----------------------------------------------------

TEST(KvAccountantTest, ExactFitIsAdmissible) {
  KvAccountant ledger(enabled_spec(1.0));  // 1e6 bytes
  EXPECT_TRUE(ledger.fits(1.0e6));
  EXPECT_FALSE(ledger.fits(1.0e6 + 1.0));
  EXPECT_FALSE(ledger.impossible(1.0e6));
  EXPECT_TRUE(ledger.impossible(1.0e6 + 1.0));
}

TEST(KvAccountantTest, ReserveReleaseTracksUsageAndPeak) {
  KvAccountant ledger(enabled_spec(1.0));
  ledger.reserve(4.0e5);
  ledger.reserve(5.0e5);
  EXPECT_DOUBLE_EQ(ledger.used(), 9.0e5);
  EXPECT_DOUBLE_EQ(ledger.peak(), 9.0e5);
  EXPECT_FALSE(ledger.fits(2.0e5));
  ledger.release(5.0e5);
  EXPECT_DOUBLE_EQ(ledger.used(), 4.0e5);
  EXPECT_DOUBLE_EQ(ledger.peak(), 9.0e5);  // high-water mark sticks
  EXPECT_TRUE(ledger.fits(6.0e5));
  ledger.release(4.0e5);
  EXPECT_DOUBLE_EQ(ledger.used(), 0.0);
}

TEST(KvAccountantTest, RequiresEnabledResolvedSpec) {
  EXPECT_THROW(KvAccountant{KvSpec{}}, std::invalid_argument);
  KvSpec unresolved;
  unresolved.budget_mb = 1.0;  // bytes_per_token left at 0
  EXPECT_THROW(KvAccountant{unresolved}, std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::serve_sim
