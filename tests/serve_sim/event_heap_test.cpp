#include "serve_sim/event.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hybrimoe::serve_sim {
namespace {

TEST(EventHeapTest, PopsInTimeOrder) {
  EventHeap heap;
  heap.push(EventKind::Finish, 3.0, 0);
  heap.push(EventKind::Arrival, 1.0, 1);
  heap.push(EventKind::DecodeStep, 2.0, 2);
  EXPECT_EQ(heap.size(), 3U);
  EXPECT_EQ(heap.pop().request, 1U);
  EXPECT_EQ(heap.pop().request, 2U);
  EXPECT_EQ(heap.pop().request, 0U);
  EXPECT_TRUE(heap.empty());
}

TEST(EventHeapTest, TiesBreakInPushOrder) {
  // Simultaneous events pop in the order they were posted — the seq stamp is
  // the determinism tie-break the whole sim core leans on.
  EventHeap heap;
  for (std::size_t i = 0; i < 16; ++i) heap.push(EventKind::Arrival, 1.5, i);
  for (std::size_t i = 0; i < 16; ++i) {
    const Event e = heap.pop();
    EXPECT_EQ(e.request, i);
    EXPECT_EQ(e.seq, i);
  }
}

TEST(EventHeapTest, InterleavedTiesStillRespectSeq) {
  EventHeap heap;
  heap.push(EventKind::PrefillChunk, 2.0, 0);  // seq 0
  heap.push(EventKind::Arrival, 1.0, 1);       // seq 1
  heap.push(EventKind::DecodeStep, 2.0, 2);    // seq 2
  heap.push(EventKind::Finish, 2.0, 3);        // seq 3
  EXPECT_EQ(heap.pop().request, 1U);
  EXPECT_EQ(heap.pop().kind, EventKind::PrefillChunk);
  EXPECT_EQ(heap.pop().kind, EventKind::DecodeStep);
  EXPECT_EQ(heap.pop().kind, EventKind::Finish);
}

TEST(EventHeapTest, TopPeeksWithoutPopping) {
  EventHeap heap;
  heap.push(EventKind::Arrival, 4.0, 7, 42);
  EXPECT_EQ(heap.top().request, 7U);
  EXPECT_EQ(heap.top().payload, 42U);
  EXPECT_EQ(heap.size(), 1U);
  EXPECT_EQ(heap.pop().payload, 42U);
}

TEST(EventHeapTest, PushedCountsLifetimePushes) {
  EventHeap heap;
  EXPECT_EQ(heap.pushed(), 0U);
  heap.push(EventKind::Arrival, 1.0, 0);
  heap.push(EventKind::Finish, 2.0, 0);
  (void)heap.pop();
  (void)heap.pop();
  heap.push(EventKind::Evict, 3.0, 1);
  EXPECT_EQ(heap.pushed(), 3U);
  // seq keeps rising monotonically even after the heap drained.
  EXPECT_EQ(heap.top().seq, 2U);
}

TEST(EventHeapTest, KindNamesAreStable) {
  EXPECT_STREQ(to_string(EventKind::Arrival), "arrival");
  EXPECT_STREQ(to_string(EventKind::PrefillChunk), "prefill_chunk");
  EXPECT_STREQ(to_string(EventKind::DecodeStep), "decode_step");
  EXPECT_STREQ(to_string(EventKind::TransferComplete), "transfer_complete");
  EXPECT_STREQ(to_string(EventKind::Finish), "finish");
  EXPECT_STREQ(to_string(EventKind::Evict), "evict");
}

}  // namespace
}  // namespace hybrimoe::serve_sim
