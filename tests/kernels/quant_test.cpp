#include "kernels/quant.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "kernels/ops.hpp"
#include "util/rng.hpp"

namespace hybrimoe::kernels {
namespace {

TEST(Q4StorageTest, BytesPerBlock) {
  // One block: 4-byte scale + 16 packed bytes.
  EXPECT_EQ(q4_storage_bytes(32), 20U);
  EXPECT_EQ(q4_storage_bytes(33), 40U);  // rounds up to two blocks
  EXPECT_EQ(q4_storage_bytes(64), 40U);
}

TEST(Q4StorageTest, EffectiveBits) {
  EXPECT_DOUBLE_EQ(q4_bits_per_value(), 5.0);  // 4 bits + fp32 scale / 32
}

TEST(Q4RoundTripTest, ErrorWithinBound) {
  util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> values(64);
    float amax = 0.0f;
    for (float& v : values) {
      v = static_cast<float>(rng.gaussian(0.0, 2.0));
      amax = std::max(amax, std::abs(v));
    }
    const auto blocks = q4_quantize_row(values);
    const auto back = q4_dequantize_row(blocks, values.size());
    const double bound = q4_error_bound(amax);
    for (std::size_t i = 0; i < values.size(); ++i)
      EXPECT_LE(std::abs(values[i] - back[i]), bound) << "index " << i;
  }
}

TEST(Q4RoundTripTest, ZerosStayZero) {
  const std::vector<float> values(40, 0.0f);
  const auto blocks = q4_quantize_row(values);
  const auto back = q4_dequantize_row(blocks, values.size());
  for (const float v : back) EXPECT_EQ(v, 0.0f);
}

TEST(Q4RoundTripTest, PartialTailBlock) {
  std::vector<float> values(37, 1.0f);
  const auto blocks = q4_quantize_row(values);
  EXPECT_EQ(blocks.size(), 2U);
  const auto back = q4_dequantize_row(blocks, values.size());
  EXPECT_EQ(back.size(), 37U);
  for (const float v : back) EXPECT_NEAR(v, 1.0f, q4_error_bound(1.0));
}

TEST(Q4RoundTripTest, ExtremesRepresentable) {
  // Values exactly at +-amax use codes 15 / 0.
  std::vector<float> values(32, 0.0f);
  values[0] = 8.0f;
  values[1] = -8.0f;
  const auto blocks = q4_quantize_row(values);
  const auto back = q4_dequantize_row(blocks, 32);
  EXPECT_NEAR(back[0], 7.0f, 1e-5);   // +amax clamps to code 15 = 7 * scale
  EXPECT_NEAR(back[1], -8.0f, 1e-5);  // -amax is exactly code 0
}

TEST(QuantizedMatrixTest, DequantizeShapeAndError) {
  util::Rng rng(12);
  const Tensor dense = Tensor::randn(rng, 8, 48);
  const auto q = QuantizedMatrix::quantize(dense);
  EXPECT_EQ(q.rows(), 8U);
  EXPECT_EQ(q.cols(), 48U);
  const Tensor back = q.dequantize();
  EXPECT_EQ(back.rows(), 8U);
  EXPECT_EQ(back.cols(), 48U);
  float amax = 0.0f;
  for (const float v : dense.flat()) amax = std::max(amax, std::abs(v));
  EXPECT_LT(max_abs_diff(dense.flat(), back.flat()), q4_error_bound(amax));
}

TEST(QuantizedMatrixTest, StorageMatchesFormula) {
  util::Rng rng(13);
  const Tensor dense = Tensor::randn(rng, 4, 64);
  const auto q = QuantizedMatrix::quantize(dense);
  EXPECT_EQ(q.storage_bytes(), 4 * q4_storage_bytes(64));
  // ~6.4x smaller than fp32 at these shapes (5 effective bits).
  EXPECT_LT(q.storage_bytes() * 6, dense.size() * sizeof(float));
}

TEST(QuantizedMatrixTest, GemvMatchesDequantizedGemv) {
  util::Rng rng(14);
  const Tensor dense = Tensor::randn(rng, 16, 96);
  const auto q = QuantizedMatrix::quantize(dense);
  std::vector<float> x(96);
  for (float& v : x) v = static_cast<float>(rng.gaussian());
  const auto direct = q.gemv(x);
  const auto via_dense = gemv(q.dequantize(), x);
  ASSERT_EQ(direct.size(), via_dense.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_NEAR(direct[i], via_dense[i], 1e-3);
}

TEST(QuantizedMatrixTest, GemvDimensionMismatchThrows) {
  util::Rng rng(15);
  const auto q = QuantizedMatrix::quantize(Tensor::randn(rng, 4, 32));
  const std::vector<float> x(16, 0.0f);
  EXPECT_THROW((void)q.gemv(x), std::invalid_argument);
}

/// Parameterized property: quantization error stays within bound across widths.
class Q4WidthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Q4WidthTest, RoundTripBound) {
  const std::size_t width = GetParam();
  util::Rng rng(width);
  std::vector<float> values(width);
  float amax = 0.0f;
  for (float& v : values) {
    v = static_cast<float>(rng.uniform(-3.0, 3.0));
    amax = std::max(amax, std::abs(v));
  }
  const auto back = q4_dequantize_row(q4_quantize_row(values), width);
  for (std::size_t i = 0; i < width; ++i)
    EXPECT_LE(std::abs(values[i] - back[i]), q4_error_bound(amax));
}

INSTANTIATE_TEST_SUITE_P(Widths, Q4WidthTest,
                         ::testing::Values(1, 31, 32, 33, 63, 64, 65, 127, 256));

}  // namespace
}  // namespace hybrimoe::kernels
