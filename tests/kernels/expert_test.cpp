#include "kernels/expert.hpp"

#include <gtest/gtest.h>

#include "kernels/ops.hpp"
#include "util/rng.hpp"

namespace hybrimoe::kernels {
namespace {

TEST(ExpertTest, ShapesAndDeterminism) {
  util::Rng rng1(21);
  util::Rng rng2(21);
  const auto w1 = ExpertWeights::random(rng1, 24, 48);
  const auto w2 = ExpertWeights::random(rng2, 24, 48);
  EXPECT_EQ(w1.d_model(), 24U);
  EXPECT_EQ(w1.d_ff(), 48U);
  EXPECT_EQ(w1.dense_bytes(), (3 * 24 * 48) * sizeof(float));

  std::vector<float> x(24);
  for (float& v : x) v = static_cast<float>(rng1.gaussian());
  const auto y1 = expert_forward(w1, x);
  const auto y2 = expert_forward(w2, x);
  ASSERT_EQ(y1.size(), 24U);
  EXPECT_EQ(max_abs_diff(y1, y2), 0.0);
}

TEST(ExpertTest, DimensionMismatchThrows) {
  util::Rng rng(22);
  const auto w = ExpertWeights::random(rng, 24, 48);
  const std::vector<float> x(16, 0.0f);
  EXPECT_THROW((void)expert_forward(w, x), std::invalid_argument);
}

TEST(ExpertTest, ZeroInputGivesZeroOutput) {
  util::Rng rng(23);
  const auto w = ExpertWeights::random(rng, 16, 32);
  const std::vector<float> x(16, 0.0f);
  const auto y = expert_forward(w, x);
  for (const float v : y) EXPECT_EQ(v, 0.0f);  // SiLU(0) * anything = 0
}

TEST(QuantizedExpertTest, CloseToDense) {
  util::Rng rng(24);
  const auto dense = ExpertWeights::random(rng, 32, 64);
  const QuantizedExpert q(dense);
  EXPECT_EQ(q.d_model(), 32U);
  EXPECT_EQ(q.d_ff(), 64U);

  std::vector<float> x(32);
  for (float& v : x) v = static_cast<float>(rng.gaussian());
  const auto y_dense = expert_forward(dense, x);
  const auto y_quant = q.forward(x);
  ASSERT_EQ(y_dense.size(), y_quant.size());
  // Relative error of a 3-matrix Q4 pipeline stays moderate.
  const double denom = l2_norm(y_dense) + 1e-9;
  std::vector<float> diff(y_dense.size());
  for (std::size_t i = 0; i < diff.size(); ++i) diff[i] = y_dense[i] - y_quant[i];
  EXPECT_LT(l2_norm(diff) / denom, 0.15);
}

TEST(QuantizedExpertTest, StorageIsRoughly6xSmaller) {
  util::Rng rng(25);
  const auto dense = ExpertWeights::random(rng, 64, 128);
  const QuantizedExpert q(dense);
  const double ratio =
      static_cast<double>(dense.dense_bytes()) / static_cast<double>(q.storage_bytes());
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 7.0);
}

TEST(QuantizedExpertTest, ForwardDimensionMismatchThrows) {
  util::Rng rng(26);
  const QuantizedExpert q(ExpertWeights::random(rng, 16, 32));
  const std::vector<float> x(8, 0.0f);
  EXPECT_THROW((void)q.forward(x), std::invalid_argument);
}

TEST(ExpertTest, BlobSerializationRoundTrips) {
  util::Rng rng(5);
  const auto w = ExpertWeights::random(rng, 8, 16);
  ASSERT_EQ(w.blob_floats(), 3u * 8 * 16);
  std::vector<float> blob(w.blob_floats());
  EXPECT_EQ(w.copy_blob_to(blob), w.blob_floats());
  // Layout contract: gate, up, down concatenated row-major.
  EXPECT_EQ(blob.front(), w.gate.flat().front());
  EXPECT_EQ(blob[w.gate.size()], w.up.flat().front());
  EXPECT_EQ(blob[w.gate.size() + w.up.size()], w.down.flat().front());
  EXPECT_EQ(blob.back(), w.down.flat().back());
  std::vector<float> small(w.blob_floats() - 1);
  EXPECT_THROW((void)w.copy_blob_to(small), std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::kernels
