/// SIMD-vs-scalar equivalence for every dispatched primitive in
/// kernels/simd.hpp: the AVX2 variants must agree with the portable scalar
/// loops to within the ulp bounds the header documents, across every length
/// 1..67 (straddling all vector-width remainders), on unaligned spans and on
/// denormal / negative-zero inputs. Both dispatch levels are exercised via
/// ForcedLevel; when the host lacks AVX2 the comparison cases skip (the
/// scalar path is then the only variant and is covered by ops/quant tests).

#include "kernels/simd.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "kernels/quant.hpp"
#include "util/rng.hpp"

namespace hybrimoe::kernels::simd {
namespace {

bool avx2_available() { return level_available(IsaLevel::Avx2); }

/// Map a float onto a monotonically ordered integer line so that adjacent
/// representable floats differ by exactly 1 (the classic ulp metric; +0 and
/// -0 coincide).
std::int64_t ordered(float f) {
  const auto bits = std::bit_cast<std::uint32_t>(f);
  return (bits & 0x8000'0000u) ? -static_cast<std::int64_t>(bits & 0x7FFF'FFFFu)
                               : static_cast<std::int64_t>(bits);
}

std::int64_t ulp_distance(float a, float b) {
  if (std::isnan(a) || std::isnan(b))
    return std::numeric_limits<std::int64_t>::max();
  return std::abs(ordered(a) - ordered(b));
}

/// The mixed equivalence criterion: within `max_ulp` ulp, or within an
/// absolute epsilon (needed where one variant flushes to a tiny value and the
/// other to zero — e.g. silu at large negative inputs, where the vector exp
/// clamps while libm overflows to inf).
void expect_close(float a, float b, std::int64_t max_ulp, double max_abs,
                  const char* what, std::size_t index) {
  EXPECT_TRUE(ulp_distance(a, b) <= max_ulp ||
              std::abs(static_cast<double>(a) - b) <= max_abs)
      << what << " diverges at index " << index << ": scalar=" << a
      << " simd=" << b << " (" << ulp_distance(a, b) << " ulp)";
}

/// Deterministic test vector with a mix of magnitudes and signs.
std::vector<float> make_values(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<float>(rng.gaussian(0.0, 1.0 + static_cast<double>(i % 5)));
  return v;
}

/// An unaligned view: one float past the vector's (typically 16/32-byte
/// aligned) base, so 256-bit loads cannot be aligned. All AVX2 paths must use
/// unaligned loads for this to pass under UBSan/ASan.
std::span<float> unaligned(std::vector<float>& storage, std::size_t n) {
  storage.assign(n + 1, 0.0f);
  return std::span<float>(storage).subspan(1);
}

/// Inputs that stress the edges of float: denormals, signed zeros, and
/// values around the vector-exp clamp range.
std::vector<float> edge_values() {
  return {0.0f,
          -0.0f,
          std::numeric_limits<float>::denorm_min(),
          -std::numeric_limits<float>::denorm_min(),
          1e-41f,
          -1e-41f,
          std::numeric_limits<float>::min(),
          -std::numeric_limits<float>::min(),
          1e-20f,
          -1e-20f,
          1.5f,
          -1.5f,
          30.0f,
          -30.0f,
          88.0f,
          -88.0f,
          100.0f,
          -100.0f};
}

// ---------------------------------------------------------------------------
// Dispatch plumbing

TEST(SimdDispatchTest, LevelNames) {
  EXPECT_STREQ(to_string(IsaLevel::Scalar), "scalar");
  EXPECT_STREQ(to_string(IsaLevel::Avx2), "avx2");
}

TEST(SimdDispatchTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(level_available(IsaLevel::Scalar));
  EXPECT_LE(static_cast<int>(detected_level()),
            static_cast<int>(compiled_level()));
}

TEST(SimdDispatchTest, ForcedLevelPinsAndRestores) {
  const IsaLevel before = active_level();
  {
    ForcedLevel pin(IsaLevel::Scalar);
    EXPECT_EQ(active_level(), IsaLevel::Scalar);
  }
  EXPECT_EQ(active_level(), before);
  if (avx2_available()) {
    ForcedLevel pin(IsaLevel::Avx2);
    EXPECT_EQ(active_level(), IsaLevel::Avx2);
  }
}

TEST(SimdDispatchTest, ForcingUnavailableLevelThrows) {
  if (avx2_available()) GTEST_SKIP() << "AVX2 available; nothing to reject";
  EXPECT_THROW(force_level(IsaLevel::Avx2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Per-primitive sweeps over every length 1..67 (covers all 16/8/4-lane
// remainders on both sides of a full 64-wide body).

class SimdSweepTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    if (!avx2_available())
      GTEST_SKIP() << "host has no AVX2; scalar is the only variant";
  }
};

TEST_P(SimdSweepTest, DotMatchesScalarWithinUlps) {
  const std::size_t n = GetParam();
  const auto a = make_values(n, 100 + n);
  const auto b = make_values(n, 200 + n);
  double scalar = 0.0, vectorized = 0.0;
  {
    ForcedLevel pin(IsaLevel::Scalar);
    scalar = dot(a, b);
  }
  {
    ForcedLevel pin(IsaLevel::Avx2);
    vectorized = dot(a, b);
  }
  // Both variants accumulate float products exactly in double; only the
  // association differs, so after rounding to float they agree to a few ulp.
  expect_close(static_cast<float>(scalar), static_cast<float>(vectorized), 4,
               1e-9, "dot", 0);
  EXPECT_NEAR(scalar, vectorized, 1e-10 * (1.0 + std::abs(scalar)));
}

TEST_P(SimdSweepTest, SiluMatchesScalarWithinUlps) {
  const std::size_t n = GetParam();
  const auto src = make_values(n, 300 + n);
  std::vector<float> scalar_out(src), simd_out(src);
  {
    ForcedLevel pin(IsaLevel::Scalar);
    silu(scalar_out);
  }
  {
    ForcedLevel pin(IsaLevel::Avx2);
    silu(simd_out);
  }
  for (std::size_t i = 0; i < n; ++i)
    expect_close(scalar_out[i], simd_out[i], 64, 1e-7, "silu", i);
}

TEST_P(SimdSweepTest, SwigluMatchesScalarWithinUlps) {
  const std::size_t n = GetParam();
  const auto gate = make_values(n, 400 + n);
  const auto up = make_values(n, 500 + n);
  std::vector<float> scalar_out(n), simd_out(n);
  {
    ForcedLevel pin(IsaLevel::Scalar);
    swiglu(gate, up, scalar_out);
  }
  {
    ForcedLevel pin(IsaLevel::Avx2);
    swiglu(gate, up, simd_out);
  }
  for (std::size_t i = 0; i < n; ++i)
    expect_close(scalar_out[i], simd_out[i], 64, 1e-6, "swiglu", i);
}

TEST_P(SimdSweepTest, RmsnormMatchesScalarWithinUlps) {
  const std::size_t n = GetParam();
  const auto src = make_values(n, 600 + n);
  std::vector<float> scalar_out(src), simd_out(src);
  {
    ForcedLevel pin(IsaLevel::Scalar);
    rmsnorm(scalar_out, 1e-6f);
  }
  {
    ForcedLevel pin(IsaLevel::Avx2);
    rmsnorm(simd_out, 1e-6f);
  }
  // Sum of squares is double-accumulated in both variants; the normalisation
  // multiply differs by at most one rounding.
  for (std::size_t i = 0; i < n; ++i)
    expect_close(scalar_out[i], simd_out[i], 4, 1e-9, "rmsnorm", i);
}

TEST_P(SimdSweepTest, Q4DotMatchesScalarWithinUlps) {
  const std::size_t n = GetParam();
  const auto weights = make_values(n, 700 + n);
  const auto x = make_values(n, 800 + n);
  const auto blocks = q4_quantize_row(weights);
  double scalar = 0.0, vectorized = 0.0;
  {
    ForcedLevel pin(IsaLevel::Scalar);
    scalar = q4_dot(blocks, x);
  }
  {
    ForcedLevel pin(IsaLevel::Avx2);
    vectorized = q4_dot(blocks, x);
  }
  expect_close(static_cast<float>(scalar), static_cast<float>(vectorized), 4,
               1e-9, "q4_dot", 0);
  EXPECT_NEAR(scalar, vectorized, 1e-10 * (1.0 + std::abs(scalar)));
}

INSTANTIATE_TEST_SUITE_P(Lengths1To67, SimdSweepTest,
                         ::testing::Range(std::size_t{1}, std::size_t{68}));

// ---------------------------------------------------------------------------
// Unaligned spans: every vector load/store must be alignment-agnostic.

TEST(SimdUnalignedTest, AllPrimitivesAcceptMisalignedSpans) {
  if (!avx2_available()) GTEST_SKIP() << "host has no AVX2";
  const std::size_t n = 53;  // odd length on top of the odd base offset
  const auto values = make_values(n, 42);
  const auto other = make_values(n, 43);

  std::vector<float> storage_a, storage_b, storage_out;
  const auto a = unaligned(storage_a, n);
  const auto b = unaligned(storage_b, n);
  const auto out = unaligned(storage_out, n);
  std::copy(values.begin(), values.end(), a.begin());
  std::copy(other.begin(), other.end(), b.begin());

  ForcedLevel pin(IsaLevel::Avx2);
  const double d = dot(a, b);
  EXPECT_TRUE(std::isfinite(d));
  swiglu(a, b, out);
  silu(a);
  rmsnorm(b, 1e-6f);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(std::isfinite(a[i]));
    EXPECT_TRUE(std::isfinite(b[i]));
    EXPECT_TRUE(std::isfinite(out[i]));
  }

  // And the unaligned results equal the aligned ones (same math, different
  // addresses).
  std::vector<float> aligned_a(values), aligned_b(other), aligned_out(n);
  EXPECT_EQ(dot(aligned_a, aligned_b), d);
  swiglu(aligned_a, aligned_b, aligned_out);
  silu(aligned_a);
  rmsnorm(aligned_b, 1e-6f);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(aligned_a[i], a[i]) << "silu aligned/unaligned mismatch at " << i;
    EXPECT_EQ(aligned_b[i], b[i]) << "rmsnorm aligned/unaligned mismatch at " << i;
    EXPECT_EQ(aligned_out[i], out[i]) << "swiglu aligned/unaligned mismatch at " << i;
  }
}

// ---------------------------------------------------------------------------
// Denormals, signed zeros and clamp-range extremes.

TEST(SimdEdgeInputTest, DotHandlesDenormalsAndSignedZeros) {
  const auto edges = edge_values();
  std::vector<float> ones(edges.size(), 1.0f);
  double scalar = 0.0;
  {
    ForcedLevel pin(IsaLevel::Scalar);
    scalar = dot(edges, ones);
    EXPECT_TRUE(std::isfinite(scalar));
  }
  if (!avx2_available()) return;
  ForcedLevel pin(IsaLevel::Avx2);
  const double vectorized = dot(edges, ones);
  EXPECT_NEAR(scalar, vectorized, 1e-10 * (1.0 + std::abs(scalar)));
}

TEST(SimdEdgeInputTest, SiluHandlesDenormalsAndClampRange) {
  const auto edges = edge_values();
  std::vector<float> scalar_out(edges), simd_out(edges);
  {
    ForcedLevel pin(IsaLevel::Scalar);
    silu(scalar_out);
  }
  for (std::size_t i = 0; i < edges.size(); ++i)
    EXPECT_TRUE(std::isfinite(scalar_out[i])) << "input " << edges[i];
  // silu(-0.0) = -0.0 / 2: the sign of zero must survive.
  EXPECT_TRUE(std::signbit(scalar_out[1]));
  if (!avx2_available()) return;
  {
    ForcedLevel pin(IsaLevel::Avx2);
    silu(simd_out);
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_TRUE(std::isfinite(simd_out[i])) << "input " << edges[i];
    // Large-|x| inputs hit the vector exp clamp, where one side flushes to
    // zero and the other to ~1e-37 — covered by the absolute term.
    expect_close(scalar_out[i], simd_out[i], 64, 1e-7, "silu-edge", i);
  }
}

TEST(SimdEdgeInputTest, RmsnormOfDenormalsStaysFinite) {
  // A vector of pure denormals: mean square underflows to ~0 and eps
  // dominates, so the result must stay finite (and tiny) at both levels.
  std::vector<float> scalar_vals(16, std::numeric_limits<float>::denorm_min());
  std::vector<float> simd_vals(scalar_vals);
  {
    ForcedLevel pin(IsaLevel::Scalar);
    rmsnorm(scalar_vals, 1e-6f);
  }
  for (const float v : scalar_vals) EXPECT_TRUE(std::isfinite(v));
  if (!avx2_available()) return;
  {
    ForcedLevel pin(IsaLevel::Avx2);
    rmsnorm(simd_vals, 1e-6f);
  }
  for (std::size_t i = 0; i < simd_vals.size(); ++i) {
    EXPECT_TRUE(std::isfinite(simd_vals[i]));
    expect_close(scalar_vals[i], simd_vals[i], 4, 1e-9, "rmsnorm-denormal", i);
  }
}

}  // namespace
}  // namespace hybrimoe::kernels::simd
