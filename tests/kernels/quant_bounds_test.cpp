/// Quantized-math error bounds on the hot path: QuantizedMatrix::gemv — at
/// BOTH dispatch levels — must stay within a bound *derived from
/// q4_error_bound* of the dense ops::gemv over the original weights, and must
/// match the gemv over its own dequantized weights to float-roundoff
/// accuracy. Round-trip accuracy is pinned at the block-boundary widths
/// 31/32/33 where padding and tail handling change shape.

#include "kernels/quant.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels/ops.hpp"
#include "kernels/simd.hpp"
#include "util/rng.hpp"

namespace hybrimoe::kernels {
namespace {

std::vector<float> random_vector(util::Rng& rng, std::size_t n, double sigma = 1.0) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.gaussian(0.0, sigma));
  return v;
}

/// Worst-case |(W_q - W) x| for one row, summed block by block: each block's
/// per-value quantization error is bounded by q4_error_bound(block amax), so
/// the row's gemv error is bounded by sum_b bound_b * sum_{i in b} |x_i|.
double row_gemv_bound(std::span<const float> row, std::span<const float> x) {
  double bound = 0.0;
  for (std::size_t start = 0; start < row.size(); start += Q4Block::kValues) {
    const std::size_t end = std::min(row.size(), start + Q4Block::kValues);
    float amax = 0.0f;
    double abs_x = 0.0;
    for (std::size_t i = start; i < end; ++i) {
      amax = std::max(amax, std::abs(row[i]));
      abs_x += std::abs(x[i]);
    }
    bound += q4_error_bound(amax) * abs_x;
  }
  return bound;
}

void check_gemv_within_derived_bound(std::size_t rows, std::size_t cols,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  const Tensor dense = Tensor::randn(rng, rows, cols);
  const auto q = QuantizedMatrix::quantize(dense);
  const auto x = random_vector(rng, cols);
  const auto exact = gemv(dense, x);

  for (const auto level :
       {simd::IsaLevel::Scalar, simd::IsaLevel::Avx2}) {
    if (!simd::level_available(level)) continue;
    simd::ForcedLevel pin(level);
    const auto approx = q.gemv(x);
    ASSERT_EQ(approx.size(), rows);
    for (std::size_t r = 0; r < rows; ++r) {
      const double bound = row_gemv_bound(dense.row(r), x) + 1e-5;
      EXPECT_LE(std::abs(approx[r] - exact[r]), bound)
          << "row " << r << " at level " << simd::to_string(level)
          << " for shape " << rows << "x" << cols;
    }
  }
}

TEST(QuantGemvBoundTest, WithinDerivedBoundOfDenseGemv) {
  check_gemv_within_derived_bound(16, 96, 21);
  check_gemv_within_derived_bound(8, 256, 22);
}

TEST(QuantGemvBoundTest, BlockBoundaryWidths) {
  // 31 (partial single block), 32 (exact block), 33 (one value spills into a
  // second block) — the widths where padding and tail handling change shape.
  check_gemv_within_derived_bound(8, 31, 31);
  check_gemv_within_derived_bound(8, 32, 32);
  check_gemv_within_derived_bound(8, 33, 33);
}

TEST(QuantGemvBoundTest, MatchesGemvOverOwnDequantizedWeights) {
  // Against its own dequantized weights the quantization error cancels:
  // only the accumulation differs (q4_dot decodes exactly the same values),
  // so both levels must agree with the dense gemv to float roundoff.
  util::Rng rng(23);
  const Tensor dense = Tensor::randn(rng, 12, 80);
  const auto q = QuantizedMatrix::quantize(dense);
  const auto x = random_vector(rng, 80);
  const auto via_dense = gemv(q.dequantize(), x);
  for (const auto level :
       {simd::IsaLevel::Scalar, simd::IsaLevel::Avx2}) {
    if (!simd::level_available(level)) continue;
    simd::ForcedLevel pin(level);
    const auto direct = q.gemv(x);
    ASSERT_EQ(direct.size(), via_dense.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
      EXPECT_NEAR(direct[i], via_dense[i], 2e-4)
          << "index " << i << " at level " << simd::to_string(level);
  }
}

TEST(QuantGemvBoundTest, GemvIntoEqualsGemv) {
  util::Rng rng(24);
  const auto q = QuantizedMatrix::quantize(Tensor::randn(rng, 6, 64));
  const auto x = random_vector(rng, 64);
  const auto allocated = q.gemv(x);
  std::vector<float> preallocated(6);
  q.gemv_into(x, preallocated);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_EQ(allocated[i], preallocated[i]) << "index " << i;
}

TEST(QuantRoundTripBoundaryTest, Widths31And32And33) {
  for (const std::size_t width : {std::size_t{31}, std::size_t{32}, std::size_t{33}}) {
    util::Rng rng(40 + width);
    std::vector<float> values(width);
    float amax = 0.0f;
    for (float& v : values) {
      v = static_cast<float>(rng.gaussian(0.0, 2.0));
      amax = std::max(amax, std::abs(v));
    }
    const auto blocks = q4_quantize_row(values);
    EXPECT_EQ(blocks.size(), width <= 32 ? 1U : 2U);
    const auto back = q4_dequantize_row(blocks, width);
    ASSERT_EQ(back.size(), width);
    const double bound = q4_error_bound(amax);
    for (std::size_t i = 0; i < width; ++i)
      EXPECT_LE(std::abs(values[i] - back[i]), bound)
          << "width " << width << " index " << i;
    // Padding codes past the logical width must decode to exactly zero so
    // gemv over padded blocks never picks up phantom contributions.
    const auto padded = q4_dequantize_row(blocks, blocks.size() * Q4Block::kValues);
    for (std::size_t i = width; i < padded.size(); ++i)
      EXPECT_EQ(padded[i], 0.0f) << "padding index " << i;
  }
}

}  // namespace
}  // namespace hybrimoe::kernels
