#include "kernels/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "kernels/tensor.hpp"
#include "util/rng.hpp"

namespace hybrimoe::kernels {
namespace {

TEST(TensorTest, ZerosAndAccess) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2U);
  EXPECT_EQ(t.cols(), 3U);
  EXPECT_EQ(t.size(), 6U);
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t.at(1, 2), 5.0f);
  EXPECT_EQ(t.row(1)[2], 5.0f);
}

TEST(TensorTest, OutOfRangeThrows) {
  Tensor t(2, 3);
  EXPECT_THROW((void)t.at(2, 0), std::invalid_argument);
  EXPECT_THROW((void)t.at(0, 3), std::invalid_argument);
  EXPECT_THROW((void)t.row(2), std::invalid_argument);
}

TEST(TensorTest, RandnIsDeterministicAndScaled) {
  util::Rng rng1(5);
  util::Rng rng2(5);
  const Tensor a = Tensor::randn(rng1, 20, 30);
  const Tensor b = Tensor::randn(rng2, 20, 30);
  EXPECT_EQ(max_abs_diff(a.flat(), b.flat()), 0.0);
  // fan-in init keeps row norms near 1.
  double sq = 0.0;
  for (const float v : a.flat()) sq += static_cast<double>(v) * v;
  EXPECT_NEAR(sq / 20.0, 1.0, 0.3);
}

TEST(GemvTest, KnownValues) {
  Tensor w(2, 3);
  // [[1,2,3],[4,5,6]] * [1,1,1] = [6,15]
  float vals[] = {1, 2, 3, 4, 5, 6};
  std::copy(std::begin(vals), std::end(vals), w.flat().begin());
  const std::vector<float> x{1.0f, 1.0f, 1.0f};
  const auto y = gemv(w, x);
  ASSERT_EQ(y.size(), 2U);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[1], 15.0f);
}

TEST(GemvTest, DimensionMismatchThrows) {
  Tensor w(2, 3);
  const std::vector<float> x{1.0f, 1.0f};
  EXPECT_THROW((void)gemv(w, x), std::invalid_argument);
}

TEST(GemmTest, MatchesGemvColumnwise) {
  util::Rng rng(7);
  const Tensor a = Tensor::randn(rng, 5, 4);
  const Tensor b = Tensor::randn(rng, 4, 3);
  const Tensor c = gemm(a, b);
  ASSERT_EQ(c.rows(), 5U);
  ASSERT_EQ(c.cols(), 3U);
  // Column j of C equals A * column j of B.
  for (std::size_t j = 0; j < 3; ++j) {
    std::vector<float> col(4);
    for (std::size_t k = 0; k < 4; ++k) col[k] = b.at(k, j);
    const auto expected = gemv(a, col);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(c.at(i, j), expected[i], 1e-4);
  }
}

TEST(GemmTest, IdentityIsNoOp) {
  util::Rng rng(8);
  const Tensor a = Tensor::randn(rng, 3, 3);
  Tensor eye(3, 3);
  for (std::size_t i = 0; i < 3; ++i) eye.at(i, i) = 1.0f;
  const Tensor c = gemm(a, eye);
  EXPECT_LT(max_abs_diff(a.flat(), c.flat()), 1e-6);
}

TEST(SoftmaxTest, SumsToOneAndOrders) {
  std::vector<float> v{1.0f, 3.0f, 2.0f};
  softmax_inplace(v);
  EXPECT_NEAR(std::accumulate(v.begin(), v.end(), 0.0), 1.0, 1e-6);
  EXPECT_GT(v[1], v[2]);
  EXPECT_GT(v[2], v[0]);
}

TEST(SoftmaxTest, ShiftInvariance) {
  std::vector<float> a{1.0f, 2.0f, 3.0f};
  std::vector<float> b{101.0f, 102.0f, 103.0f};
  softmax_inplace(a);
  softmax_inplace(b);
  EXPECT_LT(max_abs_diff(a, b), 1e-6);
}

TEST(SoftmaxTest, LargeInputsStable) {
  std::vector<float> v{1000.0f, 999.0f};
  softmax_inplace(v);
  EXPECT_TRUE(std::isfinite(v[0]));
  EXPECT_NEAR(v[0] + v[1], 1.0, 1e-6);
}

TEST(SoftmaxOverTest, RenormalisesOverSubset) {
  const std::vector<float> logits{0.0f, 1.0f, 2.0f, 3.0f};
  const std::vector<std::uint32_t> picks{3, 1};
  const auto w = softmax_over(logits, picks);
  ASSERT_EQ(w.size(), 2U);
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-6);
  EXPECT_NEAR(w[0] / w[1], std::exp(2.0), 1e-4);
}

TEST(TopkTest, MatchesSort) {
  util::Rng rng(9);
  std::vector<float> v(64);
  for (float& x : v) x = static_cast<float>(rng.gaussian());
  const auto top = topk_indices(v, 8);
  ASSERT_EQ(top.size(), 8U);
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(v[top[i - 1]], v[top[i]]);
  // None of the remaining values beats the k-th.
  for (std::size_t e = 0; e < v.size(); ++e) {
    if (std::find(top.begin(), top.end(), e) != top.end()) continue;
    EXPECT_LE(v[e], v[top.back()]);
  }
}

TEST(TopkTest, TieBreaksByIndex) {
  const std::vector<float> v{1.0f, 2.0f, 2.0f, 0.5f};
  const auto top = topk_indices(v, 2);
  EXPECT_EQ(top[0], 1U);
  EXPECT_EQ(top[1], 2U);
}

TEST(TopkTest, RejectsBadK) {
  const std::vector<float> v{1.0f};
  EXPECT_THROW((void)topk_indices(v, 0), std::invalid_argument);
  EXPECT_THROW((void)topk_indices(v, 2), std::invalid_argument);
}

TEST(SiluTest, KnownValues) {
  std::vector<float> v{0.0f, 100.0f, -100.0f};
  silu_inplace(v);
  EXPECT_FLOAT_EQ(v[0], 0.0f);
  EXPECT_NEAR(v[1], 100.0f, 1e-3);
  EXPECT_NEAR(v[2], 0.0f, 1e-3);
}

TEST(SwigluTest, CombinesGateAndUp) {
  const std::vector<float> gate{0.0f, 2.0f};
  const std::vector<float> up{5.0f, 3.0f};
  std::vector<float> out(2);
  swiglu_combine(gate, up, out);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  const float silu2 = 2.0f / (1.0f + std::exp(-2.0f));
  EXPECT_NEAR(out[1], silu2 * 3.0f, 1e-6);
}

TEST(RmsnormTest, ProducesUnitRms) {
  std::vector<float> v{3.0f, 4.0f};
  rmsnorm_inplace(v);
  double sq = 0.0;
  for (const float x : v) sq += static_cast<double>(x) * x;
  EXPECT_NEAR(sq / 2.0, 1.0, 1e-4);
}

TEST(NormTest, L2AndMaxDiff) {
  const std::vector<float> a{3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(l2_norm(a), 5.0);
  const std::vector<float> b{3.0f, 6.0f};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 2.0);
}

// Property sweep: gemm(a, b) columns always match gemv over random shapes.
class GemmShapeTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, ShapeAndConsistency) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(m * 1000 + k * 100 + n));
  const Tensor a = Tensor::randn(rng, m, k);
  const Tensor b = Tensor::randn(rng, k, n);
  const Tensor c = gemm(a, b);
  EXPECT_EQ(c.rows(), static_cast<std::size_t>(m));
  EXPECT_EQ(c.cols(), static_cast<std::size_t>(n));
  std::vector<float> col(static_cast<std::size_t>(k));
  for (std::size_t kk = 0; kk < col.size(); ++kk) col[kk] = b.at(kk, 0);
  const auto expected = gemv(a, col);
  for (std::size_t i = 0; i < c.rows(); ++i) EXPECT_NEAR(c.at(i, 0), expected[i], 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapeTest,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 8, 4},
                                           std::tuple{7, 3, 5}, std::tuple{16, 16, 16},
                                           std::tuple{31, 17, 9}));

}  // namespace
}  // namespace hybrimoe::kernels
