#include "scenario/scenario_spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/stack_spec.hpp"

namespace hybrimoe::scenario {
namespace {

// -- Presets and round-trips ----------------------------------------------

TEST(ScenarioSpecTest, RegistryHasOnePresetPerFamily) {
  const auto names = scenario_registry().names();
  ASSERT_EQ(names.size(), 4U);
  for (const char* name :
       {"straggler_link", "device_loss", "cache_thrash", "overload_storm"}) {
    const ScenarioSpec spec = scenario_registry().get(name);
    EXPECT_EQ(to_string(spec.family), name);
    EXPECT_NO_THROW(spec.validate());
  }
}

TEST(ScenarioSpecTest, EveryPresetRoundTripsThroughJson) {
  for (const auto& name : scenario_registry().names()) {
    const ScenarioSpec spec = scenario_registry().get(name);
    EXPECT_EQ(parse_scenario_spec(to_json(spec)), spec) << name;
  }
}

TEST(ScenarioSpecTest, OverridesApplyOnTopOfTheFamilyPreset) {
  const ScenarioSpec spec = parse_scenario_spec(
      R"({"family": "straggler_link", "accel": 2, "bandwidth_scale": 0.5})");
  EXPECT_EQ(spec.accel, 2U);
  EXPECT_DOUBLE_EQ(spec.bandwidth_scale, 0.5);
  // Untouched keys keep the preset's values.
  EXPECT_EQ(spec.start_step, scenario_registry().get("straggler_link").start_step);
  EXPECT_EQ(parse_scenario_spec(to_json(spec)), spec);
}

TEST(ScenarioSpecTest, FamilyAloneIsTheCanonicalPreset) {
  EXPECT_EQ(parse_scenario_spec(R"({"family": "device_loss"})"),
            scenario_registry().get("device_loss"));
}

// -- Misuse: unknown names get did-you-mean, bad shapes get offsets --------

TEST(ScenarioSpecTest, MisspelledFamilyGetsDidYouMean) {
  try {
    (void)parse_scenario_spec(R"({"family": "stragler_link"})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("straggler_link"), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioSpecTest, MisspelledKeyGetsDidYouMean) {
  try {
    (void)parse_scenario_spec(
        R"({"family": "straggler_link", "bandwith_scale": 0.5})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bandwidth_scale"), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioSpecTest, KeysOutsideTheirFamilyAreRejected) {
  // bandwidth_scale belongs to straggler_link, not device_loss.
  EXPECT_THROW((void)parse_scenario_spec(
                   R"({"family": "device_loss", "bandwidth_scale": 0.5})"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario_spec(
                   R"({"family": "overload_storm", "stride": 2})"),
               std::invalid_argument);
}

TEST(ScenarioSpecTest, StructuralMisuseIsRejected) {
  EXPECT_THROW((void)parse_scenario_spec("[]"), std::invalid_argument);
  EXPECT_THROW((void)parse_scenario_spec(R"({"seed": 1})"),
               std::invalid_argument);  // no family
  EXPECT_THROW((void)parse_scenario_spec(R"({"family": 3})"),
               std::invalid_argument);  // family must be a string
  EXPECT_THROW((void)parse_scenario_spec(
                   R"({"family": "cache_thrash", "stride": -1})"),
               std::invalid_argument);
}

TEST(ScenarioSpecTest, ValidateRejectsOutOfRangeParameters) {
  ScenarioSpec spec = scenario_registry().get("straggler_link");
  spec.bandwidth_scale = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = scenario_registry().get("straggler_link");
  spec.end_step = spec.start_step;  // empty window
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = scenario_registry().get("device_loss");
  spec.accel = 0;  // the primary accelerator cannot be lost
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = scenario_registry().get("device_loss");
  spec.recover_step = spec.lose_step;  // recovery must follow the loss
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = scenario_registry().get("overload_storm");
  spec.storm_requests = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

// -- CLI resolution --------------------------------------------------------

TEST(ScenarioSpecTest, ResolveAcceptsPresetNamesAndInlineJson) {
  EXPECT_EQ(resolve_scenario("cache_thrash"),
            scenario_registry().get("cache_thrash"));
  const ScenarioSpec inline_spec =
      resolve_scenario(R"({"family": "cache_thrash", "stride": 5})");
  EXPECT_EQ(inline_spec.stride, 5U);
  EXPECT_THROW((void)resolve_scenario(""), std::invalid_argument);
  EXPECT_THROW((void)resolve_scenario("@/nonexistent/scenario.json"),
               std::invalid_argument);
}

// -- Embedding in StackSpec ------------------------------------------------

TEST(ScenarioSpecTest, StackSpecEmbedsScenariosByNameAndInline) {
  const runtime::StackSpec by_name = runtime::parse_stack_spec(
      R"({"scheduler": "hybrid", "scenario": "overload_storm"})");
  ASSERT_TRUE(by_name.scenario.has_value());
  EXPECT_EQ(*by_name.scenario, scenario_registry().get("overload_storm"));

  const runtime::StackSpec inline_spec = runtime::parse_stack_spec(
      R"({"scenario": {"family": "straggler_link", "bandwidth_scale": 0.25}})");
  ASSERT_TRUE(inline_spec.scenario.has_value());
  EXPECT_DOUBLE_EQ(inline_spec.scenario->bandwidth_scale, 0.25);

  // Round-trip through the stack grammar preserves the embedded scenario.
  EXPECT_EQ(runtime::parse_stack_spec(runtime::to_json(inline_spec)),
            inline_spec);

  // Scenario errors surface through the stack parse with did-you-mean.
  EXPECT_THROW(
      (void)runtime::parse_stack_spec(R"({"scenario": "overload_strom"})"),
      std::invalid_argument);
  EXPECT_THROW((void)runtime::parse_stack_spec(
                   R"({"scenario": {"family": "device_loss", "stride": 2}})"),
               std::invalid_argument);
}

TEST(ScenarioSpecTest, ScenarioFreeStackSerialisationIsUnchanged) {
  // The "scenario" key must not appear unless a scenario is set — preset
  // stack specs stay byte-identical to their pre-scenario serialisations.
  const runtime::StackSpec spec = runtime::parse_stack_spec(R"({"name": "x"})");
  EXPECT_EQ(runtime::to_json(spec).find("scenario"), std::string::npos);
}

}  // namespace
}  // namespace hybrimoe::scenario
