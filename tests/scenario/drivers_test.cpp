#include "scenario/drivers.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "invariants.hpp"
#include "runtime/session.hpp"

namespace hybrimoe::scenario {
namespace {

using testing::check_deterministic;
using testing::check_no_starvation;
using testing::check_progress;
using testing::check_transfer_targets;

constexpr std::array<std::uint64_t, 8> kSeeds{3, 7, 11, 17, 23, 42, 101, 977};

runtime::ExperimentSpec tiny_spec(std::uint64_t seed) {
  runtime::ExperimentSpec spec;
  spec.model = moe::ModelConfig::tiny(4, 8, 2);
  spec.machine = hw::MachineProfile::unit_test_machine();
  spec.topology =
      hw::Topology::replicated(hw::MachineProfile::unit_test_machine(), 2);
  spec.cache_ratio = 0.25;
  spec.trace.seed = seed;
  spec.warmup_steps = 8;
  return spec;
}

std::vector<workload::RequestSpec> tiny_stream(std::uint64_t seed) {
  workload::RequestStreamParams p;
  p.num_requests = 8;
  p.arrival_rate = 400.0;  // arrivals overlap the sub-ms step timescale
  p.prompt_tokens_min = 4;
  p.prompt_tokens_max = 12;
  p.decode_tokens_min = 3;
  p.decode_tokens_max = 6;
  p.seed = seed;
  return workload::generate_request_stream(p);
}

struct ScenarioRun {
  std::vector<StepRecord> timeline;
  runtime::ServeMetrics metrics;
};

/// One seeded serving run under `scenario` (the shared shape of every test
/// below): the driver hooks into the engine's steps and the stream is
/// scenario-shaped before materialisation.
ScenarioRun run_scenario(const ScenarioSpec& scenario, std::uint64_t seed) {
  runtime::ExperimentHarness harness(tiny_spec(seed));
  ScenarioDriver driver(scenario, harness.mutable_costs());
  runtime::ServeOptions options;
  options.max_prefill_chunk = 4;
  options.hook = &driver;
  const auto specs = shape_stream(tiny_stream(seed), scenario);
  auto metrics = harness.serve(runtime::Framework::HybriMoE, specs, options);
  return {driver.timeline(), std::move(metrics)};
}

// -- Cross-family invariants, >= 8 seeds each ------------------------------

TEST(ScenarioDriversTest, AllFamiliesUpholdTheCoreInvariantsAcrossSeeds) {
  for (const auto& name : scenario_registry().names()) {
    ScenarioSpec scenario = scenario_registry().get(name);
    for (const std::uint64_t seed : kSeeds) {
      scenario.seed = seed;
      const ScenarioRun run = run_scenario(scenario, seed);
      SCOPED_TRACE(name + " seed " + std::to_string(seed));
      check_no_starvation(run.metrics);
      check_progress(run.timeline);
      check_transfer_targets(run.timeline);
      EXPECT_EQ(run.metrics.rejected_count(), 0U);  // no admission control on
    }
  }
}

TEST(ScenarioDriversTest, EveryFamilyIsDeterministicUnderAFixedSeed) {
  for (const auto& name : scenario_registry().names()) {
    const ScenarioSpec scenario = scenario_registry().get(name);
    const ScenarioRun a = run_scenario(scenario, 42);
    const ScenarioRun b = run_scenario(scenario, 42);
    SCOPED_TRACE(name);
    check_deterministic(a.timeline, b.timeline, a.metrics, b.metrics);
  }
}

// -- Per-family mechanics --------------------------------------------------

TEST(ScenarioDriversTest, StragglerScalesTheLinkExactlyInsideItsWindow) {
  const ScenarioSpec scenario = scenario_registry().get("straggler_link");
  const ScenarioRun run = run_scenario(scenario, 42);
  ASSERT_GT(run.timeline.size(), scenario.start_step);
  for (const StepRecord& step : run.timeline) {
    const bool in_window = step.index >= scenario.start_step &&
                           (scenario.end_step == 0 || step.index < scenario.end_step);
    EXPECT_DOUBLE_EQ(step.link_scale[scenario.accel],
                     in_window ? scenario.bandwidth_scale : 1.0)
        << "step " << step.index;
  }
}

TEST(ScenarioDriversTest, StragglerSlowsTransfersRelativeToHealthyRun) {
  ScenarioSpec scenario = scenario_registry().get("straggler_link");
  scenario.start_step = 0;
  scenario.end_step = 0;  // degraded for the whole run
  scenario.bandwidth_scale = 0.05;
  const ScenarioRun degraded = run_scenario(scenario, 42);

  // The healthy twin: same stream, a scale-1.0 straggler (exact no-op —
  // bandwidth * 1.0 is bit-identical to the unscaled cost model).
  scenario.bandwidth_scale = 1.0;
  const ScenarioRun healthy = run_scenario(scenario, 42);
  EXPECT_GT(degraded.metrics.makespan, healthy.metrics.makespan);
}

TEST(ScenarioDriversTest, DeviceLossWindowIsVisibleAndConserved) {
  const ScenarioSpec scenario = scenario_registry().get("device_loss");
  const ScenarioRun run = run_scenario(scenario, 42);
  ASSERT_GT(run.timeline.size(), scenario.lose_step);
  bool saw_loss = false;
  for (const StepRecord& step : run.timeline) {
    const bool lost = step.index >= scenario.lose_step &&
                      (scenario.recover_step == 0 || step.index < scenario.recover_step);
    EXPECT_EQ(step.device_available[scenario.accel], lost ? 0 : 1)
        << "step " << step.index;
    saw_loss = saw_loss || lost;
  }
  EXPECT_TRUE(saw_loss);
  check_transfer_targets(run.timeline);
}

TEST(ScenarioDriversTest, CacheThrashPerturbsTheRunObservably) {
  ScenarioSpec scenario = scenario_registry().get("cache_thrash");
  const ScenarioRun thrashed = run_scenario(scenario, 42);

  // stride rotations with offset 0 are no-ops; an honest baseline is the
  // same driver with a window that never opens.
  scenario.start_step = 1U << 20;
  const ScenarioRun untouched = run_scenario(scenario, 42);
  ASSERT_EQ(thrashed.timeline.size(), untouched.timeline.size());
  bool differs = false;
  for (std::size_t i = 0; i < thrashed.timeline.size(); ++i)
    differs = differs ||
              thrashed.timeline[i].latency != untouched.timeline[i].latency ||
              thrashed.timeline[i].transfers_to_device !=
                  untouched.timeline[i].transfers_to_device;
  EXPECT_TRUE(differs) << "rotation changed no step";
}

TEST(ScenarioDriversTest, OverloadStormAppendsItsBurstDeterministically) {
  const ScenarioSpec scenario = scenario_registry().get("overload_storm");
  const auto base = tiny_stream(42);
  const auto shaped = shape_stream(base, scenario);
  ASSERT_EQ(shaped.size(), base.size() + scenario.storm_requests);
  std::uint64_t max_base_id = 0;
  for (const auto& s : base) max_base_id = std::max(max_base_id, s.id);
  for (std::size_t i = base.size(); i < shaped.size(); ++i) {
    EXPECT_GT(shaped[i].id, max_base_id);
    EXPECT_DOUBLE_EQ(shaped[i].arrival_time, scenario.storm_time);
    EXPECT_EQ(shaped[i].priority, workload::Priority::BestEffort);
  }
  // Shaping is pure: same inputs, same burst.
  EXPECT_EQ(shape_stream(base, scenario), shaped);

  // Other families leave the stream untouched.
  EXPECT_EQ(shape_stream(base, scenario_registry().get("device_loss")), base);
}

// -- Misuse ----------------------------------------------------------------

TEST(ScenarioDriversTest, DriverRejectsTargetsOutsideTheTopology) {
  runtime::ExperimentHarness harness(tiny_spec(42));  // 2 accelerators
  ScenarioSpec scenario = scenario_registry().get("device_loss");
  scenario.accel = 7;
  EXPECT_THROW(ScenarioDriver(scenario, harness.mutable_costs()),
               std::invalid_argument);
}

TEST(ScenarioDriversTest, DriverValidatesItsSpec) {
  runtime::ExperimentHarness harness(tiny_spec(42));
  ScenarioSpec scenario = scenario_registry().get("straggler_link");
  scenario.bandwidth_scale = -1.0;
  EXPECT_THROW(ScenarioDriver(scenario, harness.mutable_costs()),
               std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::scenario
