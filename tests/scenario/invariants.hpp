#pragma once

/// \file invariants.hpp
/// Reusable property checkers for the adversarial scenario suite. Scenario
/// runs are seeded and deterministic but their timelines are not golden
/// values — what must hold are *invariants*, and every checker here is
/// shared between the per-family driver tests (drivers_test.cpp), the
/// priority serving tests and the tier-isolation bench story:
///
///  * no starvation  — every admitted request reaches Finished with a
///    monotone lifecycle (arrival <= admit <= first_token <= finish) and
///    full token accounting;
///  * progress       — the serving clock strictly advances across steps and
///    every composed step performs work (tokens flow, latency is positive);
///  * tier isolation — VIP p99 TBT under load stays within a bound of its
///    unloaded value;
///  * conservation   — no expert transfer targets an accelerator that was
///    unavailable while the step ran;
///  * determinism    — the same scenario over the same stream reproduces the
///    same timeline and per-request metrics, bit for bit.
///
/// Checkers use non-fatal EXPECT_* so one violated step doesn't hide the
/// rest of the timeline.

#include <gtest/gtest.h>

#include <vector>

#include "runtime/serve_metrics.hpp"
#include "scenario/drivers.hpp"

namespace hybrimoe::scenario::testing {

/// Every non-rejected request finished with a monotone lifecycle and
/// complete token accounting (first token + one gap per decode step).
inline void check_no_starvation(const runtime::ServeMetrics& metrics) {
  for (const auto& r : metrics.requests) {
    if (r.rejected) continue;
    EXPECT_GE(r.admit, r.arrival) << "request " << r.id;
    EXPECT_GE(r.first_token, r.admit) << "request " << r.id;
    EXPECT_GE(r.finish, r.first_token) << "request " << r.id;
    EXPECT_GT(r.generated_tokens, 0U) << "request " << r.id;
    EXPECT_EQ(r.generated_tokens, 1 + r.tbt.size()) << "request " << r.id;
  }
}

/// The run made progress: at least one step ran, clocks advance strictly
/// across the timeline, and every step did real work.
inline void check_progress(const std::vector<StepRecord>& timeline) {
  ASSERT_FALSE(timeline.empty());
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const StepRecord& step = timeline[i];
    EXPECT_EQ(step.index, i);
    EXPECT_GT(step.latency, 0.0) << "step " << i;
    EXPECT_GT(step.end_clock, step.start_clock) << "step " << i;
    EXPECT_GT(step.prefill_tokens + step.decode_tokens, 0U) << "step " << i;
    EXPECT_GT(step.active_requests, 0U) << "step " << i;
    if (i > 0)
      EXPECT_GE(step.start_clock, timeline[i - 1].end_clock) << "step " << i;
  }
}

/// Tier isolation: the loaded VIP p99 TBT stays within `bound` times the
/// baseline VIP p99 TBT (the bench's 1.25x criterion).
inline void check_tier_isolation(const runtime::ServeMetrics& baseline,
                                 const runtime::ServeMetrics& loaded,
                                 double bound) {
  const double before = baseline.tbt_tails(workload::Priority::Vip).p99;
  const double after = loaded.tbt_tails(workload::Priority::Vip).p99;
  ASSERT_GT(before, 0.0);
  EXPECT_LE(after, bound * before)
      << "VIP p99 TBT " << after << " vs unloaded " << before;
}

/// Conservation: a step that ran while an accelerator was unavailable must
/// not have uploaded a single expert to it.
inline void check_transfer_targets(const std::vector<StepRecord>& timeline) {
  for (const StepRecord& step : timeline) {
    ASSERT_EQ(step.transfers_to_device.size(), step.device_available.size());
    for (std::size_t a = 0; a < step.device_available.size(); ++a) {
      if (step.device_available[a]) continue;
      EXPECT_EQ(step.transfers_to_device[a], 0U)
          << "step " << step.index << " uploaded to lost accelerator " << a;
    }
  }
}

/// Determinism: two runs of the same scenario over the same stream agree on
/// every step record and every per-request latency, exactly.
inline void check_deterministic(const std::vector<StepRecord>& a,
                                const std::vector<StepRecord>& b,
                                const runtime::ServeMetrics& ma,
                                const runtime::ServeMetrics& mb) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_clock, b[i].start_clock) << "step " << i;
    EXPECT_EQ(a[i].end_clock, b[i].end_clock) << "step " << i;
    EXPECT_EQ(a[i].latency, b[i].latency) << "step " << i;
    EXPECT_EQ(a[i].prefill_tokens, b[i].prefill_tokens) << "step " << i;
    EXPECT_EQ(a[i].decode_tokens, b[i].decode_tokens) << "step " << i;
    EXPECT_EQ(a[i].transfers_to_device, b[i].transfers_to_device) << "step " << i;
    EXPECT_EQ(a[i].device_available, b[i].device_available) << "step " << i;
    EXPECT_EQ(a[i].link_scale, b[i].link_scale) << "step " << i;
  }
  ASSERT_EQ(ma.requests.size(), mb.requests.size());
  for (std::size_t i = 0; i < ma.requests.size(); ++i) {
    EXPECT_EQ(ma.requests[i].id, mb.requests[i].id);
    EXPECT_EQ(ma.requests[i].rejected, mb.requests[i].rejected);
    EXPECT_EQ(ma.requests[i].preemptions, mb.requests[i].preemptions);
    if (ma.requests[i].rejected || mb.requests[i].rejected) continue;
    EXPECT_EQ(ma.requests[i].first_token, mb.requests[i].first_token);
    EXPECT_EQ(ma.requests[i].finish, mb.requests[i].finish);
    EXPECT_EQ(ma.requests[i].tbt, mb.requests[i].tbt);
  }
  EXPECT_EQ(ma.makespan, mb.makespan);
}

}  // namespace hybrimoe::scenario::testing
