#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

namespace hybrimoe::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedResetsStream) {
  Rng a(77);
  const auto first = a();
  a.reseed(77);
  EXPECT_EQ(a(), first);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(6);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(RngTest, UniformIndexWithinBound) {
  Rng rng(8);
  std::array<int, 7> histogram{};
  for (int i = 0; i < 7000; ++i) ++histogram[rng.uniform_index(7)];
  for (const int count : histogram) EXPECT_GT(count, 700);  // roughly uniform
}

TEST(RngTest, UniformIndexOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.uniform_index(1), 0U);
}

TEST(RngTest, UniformIndexRejectsZeroBound) {
  Rng rng(10);
  EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(12);
  constexpr int kN = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(13);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.gaussian(10.0, 0.5);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(14);
  int heads = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i)
    if (rng.bernoulli(0.3)) ++heads;
  EXPECT_NEAR(static_cast<double>(heads) / kN, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(15);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> histogram{};
  for (int i = 0; i < 40000; ++i) ++histogram[rng.categorical(weights)];
  EXPECT_EQ(histogram[1], 0);
  EXPECT_NEAR(static_cast<double>(histogram[2]) / histogram[0], 3.0, 0.3);
}

TEST(RngTest, CategoricalRejectsBadInput) {
  Rng rng(16);
  const std::vector<double> empty;
  EXPECT_THROW((void)rng.categorical(empty), std::invalid_argument);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW((void)rng.categorical(negative), std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW((void)rng.categorical(zeros), std::invalid_argument);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(values.begin(), values.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(values, shuffled);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(18);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace hybrimoe::util
