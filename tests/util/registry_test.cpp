#include "util/registry.hpp"

#include <gtest/gtest.h>

namespace hybrimoe::util {
namespace {

TEST(EditDistanceTest, ClassicCases) {
  EXPECT_EQ(edit_distance("", ""), 0U);
  EXPECT_EQ(edit_distance("abc", "abc"), 0U);
  EXPECT_EQ(edit_distance("abc", ""), 3U);
  EXPECT_EQ(edit_distance("", "abc"), 3U);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3U);
  EXPECT_EQ(edit_distance("hybird", "hybrid"), 2U);  // transposition = 2 edits
  EXPECT_EQ(edit_distance("lru", "mrs"), 2U);
}

TEST(ClosestNameTest, PicksNearestWithinBudget) {
  const std::vector<std::string> names{"hybrid", "fixed-map", "gpu-centric"};
  EXPECT_EQ(closest_name("hybird", names), "hybrid");
  EXPECT_EQ(closest_name("fixed-mop", names), "fixed-map");
  // Nothing plausible: distance exceeds the typo budget.
  EXPECT_EQ(closest_name("belady", names), "");
}

TEST(UnknownNameMessageTest, MentionsSuggestionAndCatalog) {
  const std::vector<std::string> names{"impact", "next-layer", "none"};
  const std::string msg = unknown_name_message("prefetcher", "impct", names);
  EXPECT_NE(msg.find("unknown prefetcher 'impct'"), std::string::npos);
  EXPECT_NE(msg.find("did you mean 'impact'?"), std::string::npos);
  EXPECT_NE(msg.find("'next-layer'"), std::string::npos);
  EXPECT_NE(msg.find("'none'"), std::string::npos);
}

TEST(RegistryTest, AddGetContainsNames) {
  Registry<int> registry("widget");
  registry.add("beta", 2);
  registry.add("alpha", 1);
  EXPECT_TRUE(registry.contains("alpha"));
  EXPECT_FALSE(registry.contains("gamma"));
  EXPECT_EQ(registry.get("alpha"), 1);
  EXPECT_EQ(registry.get("beta"), 2);
  EXPECT_EQ(registry.size(), 2U);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(registry.family(), "widget");
}

TEST(RegistryTest, DuplicateAndEmptyNamesThrow) {
  Registry<int> registry("widget");
  registry.add("alpha", 1);
  EXPECT_THROW(registry.add("alpha", 2), std::invalid_argument);
  EXPECT_THROW(registry.add("", 3), std::invalid_argument);
}

TEST(RegistryTest, UnknownNameThrowsDidYouMean) {
  Registry<int> registry("widget");
  registry.add("alpha", 1);
  registry.add("align", 2);
  try {
    (void)registry.get("alpa");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown widget 'alpa'"), std::string::npos);
    EXPECT_NE(msg.find("did you mean 'alpha'?"), std::string::npos);
    EXPECT_NE(msg.find("'align'"), std::string::npos);
  }
}

}  // namespace
}  // namespace hybrimoe::util
