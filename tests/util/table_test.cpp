#include "util/table.hpp"

#include <gtest/gtest.h>

namespace hybrimoe::util {
namespace {

TEST(TextTableTest, RendersHeadersAndRows) {
  TextTable t("demo");
  t.set_headers({"name", "value"});
  t.begin_row().add_cell("alpha").add_cell(1.5, 1);
  t.begin_row().add_cell("beta").add_cell(std::size_t{7});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("7"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2U);
}

TEST(TextTableTest, AddCellBeforeRowThrows) {
  TextTable t;
  EXPECT_THROW(t.add_cell("x"), std::invalid_argument);
}

TEST(TextTableTest, ColumnsAlign) {
  TextTable t;
  t.set_headers({"a", "b"});
  t.begin_row().add_cell("long-cell-content").add_cell("x");
  const std::string out = t.to_string();
  // Every rendered line between rules should have the same width.
  std::size_t expected = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    const auto end = out.find('\n', start);
    const std::string line = out.substr(start, end - start);
    if (!line.empty() && (line.front() == '|' || line.front() == '+')) {
      if (expected == 0) expected = line.size();
      EXPECT_EQ(line.size(), expected) << line;
    }
    start = end == std::string::npos ? out.size() : end + 1;
  }
}

TEST(TextTableTest, CsvEscapesSpecials) {
  TextTable t;
  t.set_headers({"x"});
  t.begin_row().add_cell("a,b");
  t.begin_row().add_cell("say \"hi\"");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(FormatTest, Doubles) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(FormatTest, SecondsUnits) {
  EXPECT_EQ(format_seconds(2.5), "2.500 s");
  EXPECT_EQ(format_seconds(0.0025), "2.500 ms");
  EXPECT_EQ(format_seconds(2.5e-6), "2.50 us");
  EXPECT_EQ(format_seconds(2.5e-9), "2.5 ns");
}

TEST(FormatTest, Speedup) { EXPECT_EQ(format_speedup(1.333), "1.33x"); }

}  // namespace
}  // namespace hybrimoe::util
