#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hybrimoe::util {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (const double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_DOUBLE_EQ(s.total(), 31.0);
  // Sample variance computed by hand: sum((x-6.2)^2)/4.
  double sq = 0.0;
  for (const double x : xs) sq += (x - 6.2) * (x - 6.2);
  EXPECT_NEAR(s.variance(), sq / 4.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(sq / 4.0), 1e-12);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsNoOp) {
  RunningStats a;
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1U);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1U);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(PercentileTest, KnownValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(PercentileTest, UnsortedInput) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
}

TEST(PercentileTest, SingleElement) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 73.0), 42.0);
}

TEST(PercentileTest, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 50.0), std::invalid_argument);
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 101.0), std::invalid_argument);
}

TEST(PercentileTest, ServingTailShorthands) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p50(xs), percentile(xs, 50.0));
  EXPECT_DOUBLE_EQ(p95(xs), percentile(xs, 95.0));
  EXPECT_DOUBLE_EQ(p99(xs), percentile(xs, 99.0));
  EXPECT_DOUBLE_EQ(p50(xs), 50.5);
  EXPECT_GT(p99(xs), p95(xs));
  EXPECT_GT(p95(xs), p50(xs));
}

TEST(PercentileTest, ShorthandsRejectEmptyInput) {
  const std::vector<double> empty;
  EXPECT_THROW((void)p50(empty), std::invalid_argument);
  EXPECT_THROW((void)p95(empty), std::invalid_argument);
  EXPECT_THROW((void)p99(empty), std::invalid_argument);
}

TEST(MeanTest, Basics) {
  EXPECT_EQ(mean({}), 0.0);
  const std::vector<double> xs{2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
}

TEST(GeometricMeanTest, KnownValue) {
  const std::vector<double> xs{1.0, 4.0};
  EXPECT_DOUBLE_EQ(geometric_mean(xs), 2.0);
}

TEST(GeometricMeanTest, RejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW((void)geometric_mean(xs), std::invalid_argument);
}

TEST(GiniTest, UniformIsZero) {
  const std::vector<double> xs(10, 3.0);
  EXPECT_NEAR(gini(xs), 0.0, 1e-12);
}

TEST(GiniTest, FullyConcentratedApproachesOne) {
  std::vector<double> xs(100, 0.0);
  xs[0] = 1.0;
  EXPECT_GT(gini(xs), 0.95);
}

TEST(GiniTest, MoreSkewMeansHigherGini) {
  const std::vector<double> mild{4.0, 3.0, 2.0, 1.0};
  const std::vector<double> steep{10.0, 1.0, 1.0, 1.0};
  EXPECT_LT(gini(mild), gini(steep));
}

TEST(ConcentrationCdfTest, MonotoneAndEndsAtOne) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 1.0};
  const auto cdf = concentration_cdf(xs);
  ASSERT_EQ(cdf.size(), xs.size());
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_NEAR(cdf.back(), 1.0, 1e-12);
  EXPECT_NEAR(cdf.front(), 0.5, 1e-12);  // 5 of 10 total
}

TEST(PearsonTest, PerfectCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectAntiCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateSeriesIsZero) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

}  // namespace
}  // namespace hybrimoe::util
