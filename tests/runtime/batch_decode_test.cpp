#include <gtest/gtest.h>

#include "runtime/session.hpp"
#include "workload/generator.hpp"

/// Batched-decode integration: the engines must handle multi-token decode
/// steps (loads > 1 per expert) and the scheduling regime must shift from
/// CPU-miss computation toward GPU streaming as the batch grows.

namespace hybrimoe::runtime {
namespace {

class BatchDecodeEngineTest : public ::testing::Test {
 protected:
  BatchDecodeEngineTest()
      : model_(moe::ModelConfig::deepseek()),
        costs_(hw::MachineProfile::a6000_xeon10(), model_) {
    workload::TraceGenParams wparams;
    wparams.seed = 314;
    workload::TraceGenerator warmup(model_, wparams);
    info_.cache_ratio = 0.25;
    info_.warmup_frequencies =
        workload::activation_frequencies(warmup.generate_decode(16), model_);
  }

  workload::DecodeTrace batch_trace(std::size_t steps, std::size_t batch) {
    workload::TraceGenParams params;
    params.seed = 315;
    workload::TraceGenerator gen(model_, params);
    return gen.generate_decode_batch(steps, batch);
  }

  moe::ModelConfig model_;
  hw::CostModel costs_;
  EngineBuildInfo info_;
};

TEST_F(BatchDecodeEngineTest, AllFrameworksHandleBatchedSteps) {
  const auto trace = batch_trace(4, 6);
  for (const auto fw : kPaperFrameworks) {
    auto engine = make_engine(fw, costs_, info_);
    const auto metrics = engine->run_decode(trace);
    EXPECT_GT(metrics.total_latency, 0.0) << to_string(fw);
    EXPECT_EQ(metrics.per_forward.size(), 4U);
  }
}

TEST_F(BatchDecodeEngineTest, PerTokenLatencyImprovesWithBatching) {
  // Amortisation: 8 sessions decode together faster per token than alone.
  auto engine1 = make_engine(Framework::HybriMoE, costs_, info_);
  auto engine8 = make_engine(Framework::HybriMoE, costs_, info_);
  const auto single = engine1->run_decode(batch_trace(8, 1));
  const auto batched = engine8->run_decode(batch_trace(8, 8));
  const double per_token_single = single.total_latency / 8.0;
  const double per_token_batched = batched.total_latency / (8.0 * 8.0);
  EXPECT_LT(per_token_batched, per_token_single);
}

TEST_F(BatchDecodeEngineTest, LargeBatchesTriggerGpuStreaming) {
  // At batch 1 DeepSeek misses are cheapest on the CPU; at batch 16 the
  // per-expert loads push the hybrid scheduler toward PCIe streaming.
  auto small_engine = make_engine(Framework::HybriMoE, costs_, info_);
  auto large_engine = make_engine(Framework::HybriMoE, costs_, info_);
  const auto small = small_engine->run_decode(batch_trace(6, 1));
  const auto large = large_engine->run_decode(batch_trace(6, 16));
  const double small_rate =
      static_cast<double>(small.transfers) / static_cast<double>(small.cache.misses + 1);
  const double large_rate =
      static_cast<double>(large.transfers) / static_cast<double>(large.cache.misses + 1);
  EXPECT_GT(large_rate, small_rate);
}

TEST_F(BatchDecodeEngineTest, HybriMoEStillLeadsUnderBatching) {
  const auto trace = batch_trace(8, 4);
  auto ktrans = make_engine(Framework::KTransformers, costs_, info_);
  auto hybrimoe = make_engine(Framework::HybriMoE, costs_, info_);
  const double kt = ktrans->run_decode(trace).total_latency;
  const double hm = hybrimoe->run_decode(trace).total_latency;
  EXPECT_GT(kt / hm, 1.1);
}

}  // namespace
}  // namespace hybrimoe::runtime
