#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/serve_engine.hpp"
#include "runtime/session.hpp"

namespace hybrimoe::runtime {
namespace {

ExperimentSpec tiny_spec(std::uint64_t seed = 91) {
  ExperimentSpec spec;
  spec.model = moe::ModelConfig::tiny(4, 8, 2);
  spec.machine = hw::MachineProfile::unit_test_machine();
  spec.cache_ratio = 0.25;
  spec.trace.seed = seed;
  spec.warmup_steps = 8;
  return spec;
}

workload::RequestSpec make_request(std::uint64_t id, double arrival,
                                   std::size_t prompt, std::size_t decode,
                                   workload::Priority priority) {
  workload::RequestSpec r;
  r.id = id;
  r.arrival_time = arrival;
  r.prompt_tokens = prompt;
  r.decode_tokens = decode;
  r.priority = priority;
  return r;
}

const RequestMetrics& metrics_of(const ServeMetrics& m, std::uint64_t id) {
  for (const auto& r : m.requests)
    if (r.id == id) return r;
  throw std::logic_error("request id not in metrics");
}

// -- Priority admission ----------------------------------------------------

TEST(ServePriorityTest, VipJumpsTheAdmissionQueue) {
  // Three simultaneous arrivals, one slot: FIFO admits by id, priority
  // admission admits VIP > standard > best-effort regardless of id order.
  const std::vector<workload::RequestSpec> specs{
      make_request(0, 0.0, 6, 2, workload::Priority::BestEffort),
      make_request(1, 0.0, 6, 2, workload::Priority::Standard),
      make_request(2, 0.0, 6, 2, workload::Priority::Vip),
  };
  ServeOptions options;
  options.max_batch = 1;

  ExperimentHarness fifo_harness(tiny_spec());
  const auto fifo = fifo_harness.serve(Framework::HybriMoE, specs, options);
  EXPECT_LT(metrics_of(fifo, 0).first_token, metrics_of(fifo, 2).first_token);

  options.priority_admission = true;
  ExperimentHarness tiered_harness(tiny_spec());
  const auto tiered = tiered_harness.serve(Framework::HybriMoE, specs, options);
  EXPECT_LT(metrics_of(tiered, 2).first_token, metrics_of(tiered, 1).first_token);
  EXPECT_LT(metrics_of(tiered, 1).first_token, metrics_of(tiered, 0).first_token);
  // Every request still finishes — lower tiers are delayed, never dropped.
  EXPECT_EQ(tiered.finished_count(), specs.size());
}

TEST(ServePriorityTest, FifoTieBreaksEqualPrioritiesWithinPriorityAdmission) {
  // Same-tier requests keep (arrival, id) order even under priority
  // admission.
  const std::vector<workload::RequestSpec> specs{
      make_request(5, 0.0, 4, 2, workload::Priority::Standard),
      make_request(3, 0.0, 4, 2, workload::Priority::Standard),
      make_request(9, 0.0, 4, 2, workload::Priority::Standard),
  };
  ServeOptions options;
  options.max_batch = 1;
  options.priority_admission = true;
  ExperimentHarness harness(tiny_spec());
  const auto m = harness.serve(Framework::HybriMoE, specs, options);
  EXPECT_LT(metrics_of(m, 3).admit, metrics_of(m, 5).admit);
  EXPECT_LT(metrics_of(m, 5).admit, metrics_of(m, 9).admit);
}

// -- Bit-identical single-tier equivalence ---------------------------------

TEST(ServePriorityTest, SingleTierStreamIsBitIdenticalUnderTieredOptions) {
  // An all-standard stream must serve identically whether the tier machinery
  // is off (the pre-tier engine) or fully armed: priority admission cannot
  // reorder one tier and preemption never fires without a higher tier.
  workload::RequestStreamParams p;
  p.num_requests = 10;
  p.arrival_rate = 200.0;
  p.prompt_tokens_min = 4;
  p.prompt_tokens_max = 10;
  p.decode_tokens_min = 2;
  p.decode_tokens_max = 5;
  p.seed = 7;
  const auto specs = workload::generate_request_stream(p);

  ServeOptions plain;
  plain.max_prefill_chunk = 4;
  ServeOptions tiered = plain;
  tiered.priority_admission = true;
  tiered.preemption = true;
  tiered.tiers[workload::priority_index(workload::Priority::Vip)].tbt_slo = 1e-6;

  ExperimentHarness a(tiny_spec());
  ExperimentHarness b(tiny_spec());
  const auto ma = a.serve(Framework::HybriMoE, specs, plain);
  const auto mb = b.serve(Framework::HybriMoE, specs, tiered);
  ASSERT_EQ(ma.requests.size(), mb.requests.size());
  for (std::size_t i = 0; i < ma.requests.size(); ++i) {
    EXPECT_EQ(ma.requests[i].id, mb.requests[i].id);
    EXPECT_EQ(ma.requests[i].admit, mb.requests[i].admit);
    EXPECT_EQ(ma.requests[i].first_token, mb.requests[i].first_token);
    EXPECT_EQ(ma.requests[i].finish, mb.requests[i].finish);
    EXPECT_EQ(ma.requests[i].tbt, mb.requests[i].tbt);
    EXPECT_EQ(mb.requests[i].preemptions, 0U);
  }
  EXPECT_EQ(ma.makespan, mb.makespan);
  EXPECT_EQ(ma.steps.per_forward, mb.steps.per_forward);
}

// -- Preemption ------------------------------------------------------------

TEST(ServePriorityTest, TightVipSloPreemptsLowerTierPrefill) {
  // A VIP decode is in flight when a long best-effort prompt arrives. With a
  // TBT SLO far below the chunk latency, every chunk would breach it, so the
  // prefill defers until the no-starvation valve forces it through.
  //
  // Preemption arms only after both step regimes have been observed
  // (est_prefill from a chunked step, est_decode from a decode-only step),
  // so the best-effort arrival is placed a few decode gaps after the VIP's
  // first token — measured from a solo probe run, not hard-coded clock
  // values.
  const workload::RequestSpec vip =
      make_request(0, 0.0, 4, 40, workload::Priority::Vip);
  ExperimentHarness probe_harness(tiny_spec());
  const auto probe =
      probe_harness.serve(Framework::HybriMoE, std::vector{vip});
  const double arrival =
      metrics_of(probe, 0).first_token + 2.5 * metrics_of(probe, 0).tbt[0];

  const std::vector<workload::RequestSpec> specs{
      vip, make_request(1, arrival, 64, 2, workload::Priority::BestEffort)};
  ServeOptions options;
  options.max_prefill_chunk = 4;
  options.preemption = true;
  options.tiers[workload::priority_index(workload::Priority::Vip)].tbt_slo = 1e-9;

  ExperimentHarness harness(tiny_spec());
  const auto m = harness.serve(Framework::HybriMoE, specs, options);
  EXPECT_GT(metrics_of(m, 1).preemptions, 0U);
  EXPECT_EQ(metrics_of(m, 0).preemptions, 0U);  // VIP itself never preempted
  // The no-starvation valve: the best-effort request still finished.
  EXPECT_EQ(m.finished_count(), specs.size());
  EXPECT_EQ(metrics_of(m, 1).generated_tokens, 3U);
}

TEST(ServePriorityTest, PreemptionNeverFiresWithoutAnSloOrWithoutHigherTiers) {
  const std::vector<workload::RequestSpec> specs{
      make_request(0, 0.0, 4, 40, workload::Priority::Vip),
      make_request(1, 0.001, 64, 2, workload::Priority::BestEffort),
  };
  ServeOptions options;
  options.max_prefill_chunk = 4;
  options.preemption = true;  // armed, but no tier has an SLO
  ExperimentHarness harness(tiny_spec());
  const auto no_slo = harness.serve(Framework::HybriMoE, specs, options);
  for (const auto& r : no_slo.requests) EXPECT_EQ(r.preemptions, 0U);

  // The VIP is the *prefill* and the best-effort the decode: a lower-tier
  // decode never preempts a higher-tier prefill.
  const std::vector<workload::RequestSpec> inverted{
      make_request(0, 0.0, 4, 40, workload::Priority::BestEffort),
      make_request(1, 0.001, 64, 2, workload::Priority::Vip),
  };
  ServeOptions tight = options;
  tight.tiers[workload::priority_index(workload::Priority::BestEffort)].tbt_slo =
      1e-9;
  ExperimentHarness harness2(tiny_spec());
  const auto m = harness2.serve(Framework::HybriMoE, inverted, tight);
  for (const auto& r : m.requests) EXPECT_EQ(r.preemptions, 0U);
}

// -- Admission control: deadlines, capacity, rejection accounting ----------

TEST(ServePriorityTest, TtftDeadlineRejectsRequestsThatWaitedTooLong) {
  // One slot, a slow head-of-line request, and a tier deadline shorter than
  // its service time: the queued tail is rejected, not served late.
  std::vector<workload::RequestSpec> specs{
      make_request(0, 0.0, 32, 8, workload::Priority::Standard)};
  for (std::uint64_t id = 1; id <= 4; ++id)
    specs.push_back(make_request(id, 0.0, 4, 2, workload::Priority::Standard));
  ServeOptions options;
  options.max_batch = 1;
  options.tiers[workload::priority_index(workload::Priority::Standard)]
      .ttft_deadline = 1e-9;
  ExperimentHarness harness(tiny_spec());
  const auto m = harness.serve(Framework::HybriMoE, specs, options);
  EXPECT_EQ(m.finished_count(), 1U);  // only the head-of-line request ran
  EXPECT_EQ(m.rejected_count(), 4U);
  for (const auto& r : m.requests) {
    if (!r.rejected) continue;
    EXPECT_EQ(r.generated_tokens, 0U);
    EXPECT_THROW((void)r.ttft(), std::invalid_argument);
    EXPECT_THROW((void)r.e2e(), std::invalid_argument);
  }
}

TEST(ServePriorityTest, TierQueueCapacityDropsTheNewestOverflow) {
  // Capacity 1 on the best-effort queue, one slot busy: of three waiting
  // best-effort requests the two latest-arrived are rejected; the standard
  // tier is untouched.
  const std::vector<workload::RequestSpec> specs{
      make_request(0, 0.0, 16, 4, workload::Priority::Standard),
      make_request(1, 0.0, 4, 2, workload::Priority::BestEffort),
      make_request(2, 0.0, 4, 2, workload::Priority::BestEffort),
      make_request(3, 0.0, 4, 2, workload::Priority::BestEffort),
      make_request(4, 0.0, 4, 2, workload::Priority::Standard),
  };
  ServeOptions options;
  options.max_batch = 1;
  options.tiers[workload::priority_index(workload::Priority::BestEffort)]
      .queue_capacity = 1;
  ExperimentHarness harness(tiny_spec());
  const auto m = harness.serve(Framework::HybriMoE, specs, options);
  EXPECT_FALSE(metrics_of(m, 1).rejected);  // oldest best-effort survives
  EXPECT_TRUE(metrics_of(m, 2).rejected);
  EXPECT_TRUE(metrics_of(m, 3).rejected);
  EXPECT_FALSE(metrics_of(m, 0).rejected);
  EXPECT_FALSE(metrics_of(m, 4).rejected);
}

// -- Misuse ----------------------------------------------------------------

TEST(ServePriorityTest, RejectsMisuse) {
  ExperimentHarness harness(tiny_spec());
  const std::vector<workload::RequestSpec> specs{
      make_request(0, 0.0, 4, 2, workload::Priority::Standard)};

  // A zero-capacity tier queue admits nothing — configuration error.
  ServeOptions zero_cap;
  zero_cap.tiers[0].queue_capacity = 0;
  EXPECT_THROW((void)harness.serve(Framework::HybriMoE, specs, zero_cap),
               std::invalid_argument);

  ServeOptions no_valve;
  no_valve.preemption = true;
  no_valve.max_consecutive_preemptions = 0;  // would allow permanent starvation
  EXPECT_THROW((void)harness.serve(Framework::HybriMoE, specs, no_valve),
               std::invalid_argument);

  ServeOptions negative_slo;
  negative_slo.tiers[0].tbt_slo = -0.1;
  EXPECT_THROW((void)harness.serve(Framework::HybriMoE, specs, negative_slo),
               std::invalid_argument);

  // Request lifecycle misuse: preempting anything but a prefill, preempting
  // twice, resuming anything but a preempted request.
  Request r;
  EXPECT_THROW(r.preempt(0.0), std::invalid_argument);  // still Queued
  r.state = RequestState::Prefill;
  r.preempt(1.0);
  EXPECT_EQ(r.state, RequestState::Preempted);
  EXPECT_THROW(r.preempt(2.0), std::invalid_argument);  // already preempted
  r.resume(3.0);
  EXPECT_EQ(r.state, RequestState::Prefill);
  r.state = RequestState::Decode;
  EXPECT_THROW(r.resume(4.0), std::invalid_argument);
}

TEST(ServePriorityTest, PriorityNameParsingRejectsTyposWithDidYouMean) {
  EXPECT_EQ(workload::priority_from_name("vip"), workload::Priority::Vip);
  EXPECT_EQ(workload::priority_from_name("best-effort"),
            workload::Priority::BestEffort);
  try {
    (void)workload::priority_from_name("best_effort");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("best-effort"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace hybrimoe::runtime
