#include "runtime/session.hpp"

#include <gtest/gtest.h>

namespace hybrimoe::runtime {
namespace {

ExperimentSpec tiny_spec(std::uint64_t seed = 91) {
  ExperimentSpec spec;
  spec.model = moe::ModelConfig::tiny(4, 8, 2);
  spec.machine = hw::MachineProfile::unit_test_machine();
  spec.cache_ratio = 0.25;
  spec.trace.seed = seed;
  spec.warmup_steps = 8;
  return spec;
}

TEST(SessionTest, TracesAreSharedAcrossFrameworks) {
  ExperimentHarness harness(tiny_spec());
  const auto& t1 = harness.decode_trace(4);
  const auto& t2 = harness.decode_trace(4);
  EXPECT_EQ(&t1, &t2);  // cached, literally the same object
  const auto& p1 = harness.prefill_trace(8);
  const auto& p2 = harness.prefill_trace(8);
  EXPECT_EQ(&p1, &p2);
}

TEST(SessionTest, DeterministicAcrossHarnesses) {
  ExperimentHarness a(tiny_spec());
  ExperimentHarness b(tiny_spec());
  const auto ma = a.run_decode(Framework::HybriMoE, 4);
  const auto mb = b.run_decode(Framework::HybriMoE, 4);
  EXPECT_DOUBLE_EQ(ma.total_latency, mb.total_latency);
  EXPECT_EQ(ma.cache.hits, mb.cache.hits);
}

TEST(SessionTest, DifferentSeedsDifferentTraces) {
  ExperimentHarness a(tiny_spec(1));
  ExperimentHarness b(tiny_spec(2));
  const auto ma = a.run_decode(Framework::KTransformers, 6);
  const auto mb = b.run_decode(Framework::KTransformers, 6);
  EXPECT_NE(ma.total_latency, mb.total_latency);
}

TEST(SessionTest, WarmupFrequenciesIndependentOfEvaluationTrace) {
  ExperimentHarness harness(tiny_spec());
  const auto& freq = harness.warmup_frequencies();
  ASSERT_EQ(freq.size(), 4U);
  double total = 0.0;
  for (const auto& layer : freq)
    for (const double f : layer) total += f;
  // 8 warmup steps x 4 layers x top-2.
  EXPECT_DOUBLE_EQ(total, 8.0 * 4.0 * 2.0);
}

TEST(SessionTest, RunsEveryFrameworkAndConfig) {
  ExperimentHarness harness(tiny_spec());
  for (const auto fw : kPaperFrameworks) {
    EXPECT_GT(harness.run_prefill(fw, 8).ttft(), 0.0);
    EXPECT_GT(harness.run_decode(fw, 3).tbt_mean(), 0.0);
  }
  EXPECT_GT(harness.run_decode(core::HybriMoeConfig::full(), 3).tbt_mean(), 0.0);
  EXPECT_GT(harness.run_prefill(core::HybriMoeConfig::baseline(), 8).ttft(), 0.0);
}

TEST(SessionTest, FreshEnginePerRun) {
  // Two identical runs must not contaminate each other through cache state.
  ExperimentHarness harness(tiny_spec());
  const auto first = harness.run_decode(Framework::HybriMoE, 5);
  const auto second = harness.run_decode(Framework::HybriMoE, 5);
  EXPECT_DOUBLE_EQ(first.total_latency, second.total_latency);
}

}  // namespace
}  // namespace hybrimoe::runtime
