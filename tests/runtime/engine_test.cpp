#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "cache/classic_policies.hpp"
#include "cache/mrs_policy.hpp"
#include "workload/generator.hpp"

namespace hybrimoe::runtime {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : model_(moe::ModelConfig::tiny(4, 8, 2)),
        costs_(hw::MachineProfile::unit_test_machine(), model_) {}

  EngineComponents hybrid_components(std::size_t capacity) {
    EngineComponents c;
    c.name = "test-hybrid";
    c.scheduler = std::make_unique<sched::HybridScheduler>();
    c.cache = std::make_unique<cache::ExpertCache>(capacity,
                                                   std::make_unique<cache::MrsPolicy>());
    c.prefetcher = std::make_unique<core::ImpactDrivenPrefetcher>();
    c.dynamic_cache_inserts = true;
    c.update_policy_scores = true;
    c.cache_maintenance = true;
    return c;
  }

  workload::DecodeTrace decode_trace(std::size_t steps, std::uint64_t seed = 71) {
    workload::TraceGenParams params;
    params.seed = seed;
    workload::TraceGenerator gen(model_, params);
    return gen.generate_decode(steps);
  }

  workload::PrefillTrace prefill_trace(std::size_t tokens, std::uint64_t seed = 72) {
    workload::TraceGenParams params;
    params.seed = seed;
    workload::TraceGenerator gen(model_, params);
    return gen.generate_prefill(tokens);
  }

  moe::ModelConfig model_;
  hw::CostModel costs_;
};

TEST_F(EngineTest, RequiresComponents) {
  EngineComponents missing_sched;
  missing_sched.name = "x";
  missing_sched.cache =
      std::make_unique<cache::ExpertCache>(1, std::make_unique<cache::LruPolicy>());
  EXPECT_THROW(OffloadEngine(std::move(missing_sched), costs_), std::invalid_argument);

  EngineComponents missing_cache;
  missing_cache.name = "x";
  missing_cache.scheduler = std::make_unique<sched::HybridScheduler>();
  EXPECT_THROW(OffloadEngine(std::move(missing_cache), costs_), std::invalid_argument);
}

TEST_F(EngineTest, DecodeMetricsConsistency) {
  OffloadEngine engine(hybrid_components(8), costs_);
  const auto trace = decode_trace(6);
  const auto metrics = engine.run_decode(trace);

  EXPECT_EQ(metrics.stage, sched::Stage::Decode);
  EXPECT_EQ(metrics.tokens, 6U);
  ASSERT_EQ(metrics.per_forward.size(), 6U);
  double sum = 0.0;
  for (const double t : metrics.per_forward) {
    EXPECT_GT(t, 0.0);
    sum += t;
  }
  EXPECT_NEAR(sum, metrics.total_latency, 1e-9);
  EXPECT_NEAR(metrics.tbt_mean(), metrics.total_latency / 6.0, 1e-12);
  // Every activated expert produced exactly one lookup.
  std::size_t lookups = 0;
  for (const auto& step : trace.steps)
    for (const auto& layer : step.layers) lookups += layer.activated_count();
  EXPECT_EQ(metrics.cache.hits + metrics.cache.misses, lookups);
  // Busy time cannot exceed wall time per resource.
  EXPECT_LE(metrics.cpu_busy, metrics.total_latency + 1e-9);
  EXPECT_LE(metrics.gpu_busy, metrics.total_latency + 1e-9);
}

TEST_F(EngineTest, PrefillMetricsConsistency) {
  OffloadEngine engine(hybrid_components(8), costs_);
  const auto trace = prefill_trace(16);
  const auto metrics = engine.run_prefill(trace);
  EXPECT_EQ(metrics.stage, sched::Stage::Prefill);
  EXPECT_EQ(metrics.tokens, 16U);
  EXPECT_EQ(metrics.per_forward.size(), 1U);
  EXPECT_DOUBLE_EQ(metrics.ttft(), metrics.total_latency);
  EXPECT_GT(metrics.moe_time, 0.0);
}

TEST_F(EngineTest, SeedCacheRespectsCapacityAndPinning) {
  OffloadEngine engine(hybrid_components(3), costs_);
  const std::vector<moe::ExpertId> seeds = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  engine.seed_cache(seeds, /*pinned=*/true);
  EXPECT_EQ(engine.cache().size(), 3U);
  EXPECT_TRUE(engine.cache().is_pinned({0, 0}));
  EXPECT_FALSE(engine.cache().contains({1, 1}));
}

TEST_F(EngineTest, StaticCacheStaysStatic) {
  // kTransformers-style configuration: no dynamic inserts.
  EngineComponents c;
  c.name = "static";
  c.scheduler = std::make_unique<sched::FixedMapScheduler>();
  c.cache =
      std::make_unique<cache::ExpertCache>(4, std::make_unique<cache::LfuPolicy>());
  c.dynamic_cache_inserts = false;
  c.update_policy_scores = false;
  OffloadEngine engine(std::move(c), costs_);
  const std::vector<moe::ExpertId> seeds = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  engine.seed_cache(seeds, true);
  const auto before = engine.cache().residents();
  (void)engine.run_decode(decode_trace(8));
  EXPECT_EQ(engine.cache().residents(), before);
}

TEST_F(EngineTest, DynamicDecodeInsertsGrowCache) {
  OffloadEngine engine(hybrid_components(8), costs_);
  EXPECT_EQ(engine.cache().size(), 0U);
  const auto metrics = engine.run_decode(decode_trace(8));
  EXPECT_GT(engine.cache().size(), 0U);
  EXPECT_GT(metrics.transfers + metrics.maintenance + metrics.prefetches, 0U);
}

TEST_F(EngineTest, PrefillDoesNotMutateCacheContents) {
  OffloadEngine engine(hybrid_components(6), costs_);
  const std::vector<moe::ExpertId> seeds = {{0, 0}, {1, 1}, {2, 2}};
  engine.seed_cache(seeds, false);
  const auto before = engine.cache().residents();
  (void)engine.run_prefill(prefill_trace(12));
  EXPECT_EQ(engine.cache().residents(), before);  // transient buffers only
}

TEST_F(EngineTest, ZeroCapacityCacheStillRuns) {
  // llama.cpp-style: 0-capacity cache, static layer scheduler.
  EngineComponents c;
  c.name = "llama";
  c.scheduler = std::make_unique<sched::StaticLayerScheduler>(model_.num_layers, 0.5);
  c.cache =
      std::make_unique<cache::ExpertCache>(0, std::make_unique<cache::LruPolicy>());
  c.dynamic_cache_inserts = false;
  c.update_policy_scores = false;
  OffloadEngine engine(std::move(c), costs_);
  const auto metrics = engine.run_decode(decode_trace(4));
  EXPECT_GT(metrics.total_latency, 0.0);
  EXPECT_EQ(metrics.cache.hits, 0U);
}

TEST_F(EngineTest, PerLayerOverheadAddsUp) {
  auto with = hybrid_components(8);
  with.per_layer_overhead = 0.25;
  with.prefetcher = nullptr;  // keep runs otherwise identical
  with.cache_maintenance = false;
  auto without = hybrid_components(8);
  without.per_layer_overhead = 0.0;
  without.prefetcher = nullptr;
  without.cache_maintenance = false;
  OffloadEngine a(std::move(with), costs_);
  OffloadEngine b(std::move(without), costs_);
  const auto trace = decode_trace(2);
  const double da = a.run_decode(trace).total_latency;
  const double db = b.run_decode(trace).total_latency;
  // 2 steps x 4 layers x 0.25s.
  EXPECT_NEAR(da - db, 2.0, 1e-6);
}

TEST_F(EngineTest, TraceModelMismatchThrows) {
  OffloadEngine engine(hybrid_components(4), costs_);
  workload::TraceGenParams params;
  const auto other_model = moe::ModelConfig::tiny(7, 8, 2);  // different layers
  workload::TraceGenerator gen(other_model, params);
  const auto trace = gen.generate_decode(1);
  EXPECT_THROW((void)engine.run_decode(trace), std::invalid_argument);
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  const auto trace = decode_trace(5);
  OffloadEngine a(hybrid_components(8), costs_);
  OffloadEngine b(hybrid_components(8), costs_);
  const auto ma = a.run_decode(trace);
  const auto mb = b.run_decode(trace);
  EXPECT_DOUBLE_EQ(ma.total_latency, mb.total_latency);
  EXPECT_EQ(ma.cache.hits, mb.cache.hits);
  EXPECT_EQ(ma.prefetches, mb.prefetches);
}

}  // namespace
}  // namespace hybrimoe::runtime
