#include "runtime/stack_spec.hpp"

#include <gtest/gtest.h>

#include "exec/executor.hpp"
#include "runtime/session.hpp"
#include "runtime/stack_registry.hpp"

namespace hybrimoe::runtime {
namespace {

/// EXPECT_THROW plus a check that the message mentions every fragment —
/// the did-you-mean / precise-error contracts are part of the API.
template <typename Fn>
void expect_invalid(Fn&& fn, std::initializer_list<const char*> fragments) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const char* fragment : fragments)
      EXPECT_NE(msg.find(fragment), std::string::npos)
          << "message missing '" << fragment << "': " << msg;
  }
}

// ---------------------------------------------------------------------------
// Round trip.
// ---------------------------------------------------------------------------

TEST(StackSpecTest, DefaultSpecIsFullHybrimoeStack) {
  const StackSpec spec;
  EXPECT_EQ(spec.scheduler.policy, "hybrid");
  EXPECT_EQ(spec.cache.policy, "mrs");
  EXPECT_EQ(spec.prefetch.policy, "impact");
  EXPECT_TRUE(spec.dynamic_cache_inserts);
  EXPECT_TRUE(spec.update_policy_scores);
  EXPECT_TRUE(spec.cache_maintenance);
  EXPECT_EQ(spec.warmup, WarmupSeeding::Seeded);
  EXPECT_FALSE(spec.overhead_us.has_value());
  EXPECT_FALSE(spec.execution.has_value());
  EXPECT_EQ(spec.default_name(), "hybrid+mrs+impact");
}

TEST(StackSpecTest, PresetSpecsRoundTripThroughJson) {
  for (const Framework f : kAllFrameworks) {
    const StackSpec spec = preset_spec(f);
    EXPECT_EQ(spec.name, to_string(f));
    const std::string json = to_json(spec);
    EXPECT_EQ(parse_stack_spec(json), spec) << json;
  }
}

TEST(StackSpecTest, AblationSpecsRoundTripThroughJson) {
  for (const auto& config :
       {core::HybriMoeConfig::baseline(), core::HybriMoeConfig::scheduling_only(),
        core::HybriMoeConfig::prefetching_only(), core::HybriMoeConfig::caching_only(),
        core::HybriMoeConfig::full()}) {
    const StackSpec spec = ablation_spec(config);
    EXPECT_EQ(spec.name, config.label());
    EXPECT_EQ(parse_stack_spec(to_json(spec)), spec) << to_json(spec);
  }
}

TEST(StackSpecTest, FullyLoadedSpecRoundTrips) {
  StackSpec spec;
  spec.name = "kitchen-sink";
  spec.scheduler.policy = "static-layer";
  spec.scheduler.gpu_fraction = 0.375;
  spec.cache.policy = "mrs";
  spec.cache.ratio = 0.5;
  spec.cache.alpha = 0.45;
  spec.cache.top_p_factor = 3;
  spec.prefetch.policy = "impact";
  spec.prefetch.depth = 2;
  spec.prefetch.confidence_decay = 0.8;
  spec.prefetch.max_per_layer = 4;
  spec.dynamic_cache_inserts = false;
  spec.update_policy_scores = true;
  spec.cache_maintenance = false;
  spec.overhead_us = 62.5;
  spec.warmup = WarmupSeeding::Pinned;
  spec.execution = exec::ExecutionMode::Threaded;
  EXPECT_EQ(parse_stack_spec(to_json(spec)), spec) << to_json(spec);
}

TEST(StackSpecTest, PerformanceExecutionModeRoundTrips) {
  StackSpec spec;
  spec.execution = exec::ExecutionMode::Performance;
  const std::string json = to_json(spec);
  EXPECT_NE(json.find("\"exec\": \"performance\""), std::string::npos) << json;
  EXPECT_EQ(parse_stack_spec(json), spec);
  const StackSpec parsed = parse_stack_spec(R"({"exec": "performance"})");
  ASSERT_TRUE(parsed.execution.has_value());
  EXPECT_EQ(*parsed.execution, exec::ExecutionMode::Performance);
}

TEST(StackSpecTest, ShorthandStringsEqualPolicyOnlyObjects) {
  const StackSpec a = parse_stack_spec(
      R"({"scheduler": "hybrid", "cache": "lru", "prefetch": "none"})");
  const StackSpec b = parse_stack_spec(
      R"({"scheduler": {"policy": "hybrid"}, "cache": {"policy": "lru"},
          "prefetch": {"policy": "none"}})");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.default_name(), "hybrid+lru");
}

TEST(StackSpecTest, NumbersParseExactly) {
  const StackSpec spec = parse_stack_spec(
      R"({"cache": {"policy": "mrs", "ratio": 0.25, "alpha": 3e-1},
          "overhead_us": 120})");
  EXPECT_EQ(spec.cache.ratio, 0.25);
  EXPECT_EQ(spec.cache.alpha, 0.3);
  EXPECT_EQ(spec.overhead_us, 120.0);
}

// ---------------------------------------------------------------------------
// Parse errors.
// ---------------------------------------------------------------------------

TEST(StackSpecTest, UnknownTopLevelKeySuggests) {
  expect_invalid([] { (void)parse_stack_spec(R"({"sheduler": "hybrid"})"); },
                 {"unknown spec key 'sheduler'", "did you mean 'scheduler'?"});
}

TEST(StackSpecTest, UnknownComponentOptionSuggests) {
  expect_invalid(
      [] { (void)parse_stack_spec(R"({"cache": {"policy": "mrs", "ratioo": 0.5}})"); },
      {"unknown cache option 'ratioo'", "did you mean 'ratio'?"});
  expect_invalid(
      [] { (void)parse_stack_spec(R"({"prefetch": {"policy": "impact", "dept": 2}})"); },
      {"unknown prefetch option 'dept'", "did you mean 'depth'?"});
}

TEST(StackSpecTest, MalformedDocumentsFailWithOffsets) {
  expect_invalid([] { (void)parse_stack_spec("42"); },
                 {"must be a JSON object"});
  expect_invalid([] { (void)parse_stack_spec(R"({"scheduler": "hybrid")"); },
                 {"unterminated object"});
  expect_invalid([] { (void)parse_stack_spec(R"({"scheduler": "hybrid"} trailing)"); },
                 {"trailing characters"});
  expect_invalid([] { (void)parse_stack_spec(R"({"name": "a", "name": "b"})"); },
                 {"duplicate key 'name'"});
  expect_invalid([] { (void)parse_stack_spec(R"({"overhead_us": "forty"})"); },
                 {"'overhead_us' must be a number"});
  expect_invalid([] { (void)parse_stack_spec(R"({"dynamic_inserts": 1})"); },
                 {"'dynamic_inserts' must be true or false"});
  expect_invalid(
      [] { (void)parse_stack_spec(R"({"cache": {"policy": "mrs", "top_p_factor": 1.5}})"); },
      {"'top_p_factor' must be a non-negative integer"});
  expect_invalid([] { (void)parse_stack_spec(R"({"warmup": "pined"})"); },
                 {"unknown warmup seeding 'pined'", "did you mean 'pinned'?"});
  expect_invalid([] { (void)parse_stack_spec(R"({"exec": "treaded"})"); },
                 {"unknown execution mode 'treaded'", "did you mean 'threaded'?"});
}

// ---------------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------------

TEST(StackSpecTest, UnknownComponentNamesFailWithDidYouMean) {
  StackSpec spec;
  spec.scheduler.policy = "hybird";
  expect_invalid([&] { spec.validate(); },
                 {"unknown scheduler 'hybird'", "did you mean 'hybrid'?",
                  "'fixed-map'", "'gpu-centric'", "'static-layer'"});

  spec = StackSpec{};
  spec.cache.policy = "mrss";
  expect_invalid([&] { spec.validate(); },
                 {"unknown cache policy 'mrss'", "did you mean 'mrs'?", "'lru'"});

  spec = StackSpec{};
  spec.prefetch.policy = "impct";
  expect_invalid([&] { spec.validate(); },
                 {"unknown prefetcher 'impct'", "did you mean 'impact'?", "'none'"});
}

TEST(StackSpecTest, OptionPolicyCoherenceEnforced) {
  StackSpec spec;
  spec.scheduler.gpu_fraction = 0.5;  // policy is "hybrid"
  expect_invalid([&] { spec.validate(); },
                 {"'gpu_fraction' only applies to policy 'static-layer'"});

  spec = StackSpec{};
  spec.cache.policy = "lru";
  spec.cache.alpha = 0.3;
  expect_invalid([&] { spec.validate(); }, {"only apply to policy 'mrs'"});

  spec = StackSpec{};
  spec.prefetch.policy = "none";
  spec.prefetch.depth = 3;
  expect_invalid([&] { spec.validate(); },
                 {"'depth'/'confidence_decay' only apply to policy 'impact'"});

  spec = StackSpec{};
  spec.prefetch.policy = "none";
  spec.prefetch.max_per_layer = 4;
  expect_invalid([&] { spec.validate(); },
                 {"'max_per_layer' requires a prefetching policy"});
}

TEST(StackSpecTest, OutOfRangeOptionsRejected) {
  StackSpec spec;
  spec.cache.ratio = 1.5;
  expect_invalid([&] { spec.validate(); }, {"cache 'ratio' must be in [0, 1]"});

  spec = StackSpec{};
  spec.cache.alpha = 0.0;
  expect_invalid([&] { spec.validate(); }, {"alpha"});

  spec = StackSpec{};
  spec.prefetch.confidence_decay = 2.0;
  expect_invalid([&] { spec.validate(); }, {"confidence_decay"});

  spec = StackSpec{};
  spec.overhead_us = -1.0;
  expect_invalid([&] { spec.validate(); }, {"'overhead_us' must be >= 0"});

  spec = StackSpec{};
  spec.scheduler.policy = "static-layer";
  spec.scheduler.gpu_fraction = -0.1;
  expect_invalid([&] { spec.validate(); }, {"'gpu_fraction' must be in [0, 1]"});
}

// ---------------------------------------------------------------------------
// Framework name lookups route through the preset registry.
// ---------------------------------------------------------------------------

TEST(StackSpecTest, FrameworkFromNameRoundTripsAndSuggests) {
  for (const Framework f : kAllFrameworks)
    EXPECT_EQ(framework_from_name(to_string(f)), f);
  EXPECT_EQ(preset_names().size(), kAllFrameworks.size());
  expect_invalid([] { (void)framework_from_name("HybriMoe"); },
                 {"unknown framework preset 'HybriMoe'", "did you mean 'HybriMoE'?"});
  expect_invalid([] { (void)preset_spec("KTransformer"); },
                 {"did you mean 'KTransformers'?"});
}

// ---------------------------------------------------------------------------
// Assembly through make_engine / the harness.
// ---------------------------------------------------------------------------

class StackSpecEngineTest : public ::testing::Test {
 protected:
  StackSpecEngineTest() {
    spec_.model = moe::ModelConfig::tiny(4, 8, 2);
    spec_.machine = hw::MachineProfile::unit_test_machine();
    spec_.cache_ratio = 0.25;
    spec_.trace.seed = 91;
    spec_.warmup_steps = 8;
  }

  ExperimentSpec spec_;
};

TEST_F(StackSpecEngineTest, CustomStacksBuildAndRun) {
  ExperimentHarness harness(spec_);
  for (const char* json :
       {R"({"scheduler": "hybrid", "cache": "lru", "prefetch": "none"})",
        R"({"scheduler": "gpu-centric", "cache": "mrs"})",
        R"({"scheduler": "fixed-map", "cache": "fifo", "prefetch": "next-layer",
            "dynamic_inserts": false, "warmup": "pinned"})",
        R"({"scheduler": "hybrid", "cache": "random", "prefetch": "impact",
            "overhead_us": 0})"}) {
    const StackSpec stack = parse_stack_spec(json);
    EXPECT_GT(harness.run_decode(stack, 4).total_latency, 0.0) << json;
    EXPECT_GT(harness.run_prefill(stack, 8).ttft(), 0.0) << json;
  }
}

TEST_F(StackSpecEngineTest, EngineNameFollowsSpecName) {
  ExperimentHarness harness(spec_);
  StackSpec stack;
  stack.cache.policy = "lru";
  EXPECT_EQ(harness.build(stack)->name(), "hybrid+lru+impact");
  stack.name = "my-stack";
  EXPECT_EQ(harness.build(stack)->name(), "my-stack");
}

TEST_F(StackSpecEngineTest, SpecCacheRatioOverridesBuildInfo) {
  ExperimentHarness harness(spec_);
  StackSpec stack;
  // 4 layers x 8 experts; build-info ratio 0.25 -> capacity 8.
  EXPECT_EQ(harness.build(stack)->cache().capacity(), 8U);
  stack.cache.ratio = 0.5;
  EXPECT_EQ(harness.build(stack)->cache().capacity(), 16U);
  stack.cache.ratio = 0.0;
  EXPECT_EQ(harness.build(stack)->cache().capacity(), 0U);
}

TEST_F(StackSpecEngineTest, ThreadedExecutionOverrideRequiresExecutor) {
  ExperimentHarness harness(spec_);
  StackSpec stack;
  stack.execution = exec::ExecutionMode::Threaded;
  // The engine constructor enforces the executor contract.
  EXPECT_THROW((void)harness.build(stack), std::invalid_argument);
}

TEST_F(StackSpecEngineTest, MakeEngineValidatesSpec) {
  ExperimentHarness harness(spec_);
  StackSpec stack;
  stack.cache.policy = "belady";
  expect_invalid([&] { (void)harness.build(stack); },
                 {"unknown cache policy 'belady'"});
}

TEST_F(StackSpecEngineTest, ServeAcceptsSpecs) {
  ExperimentHarness harness(spec_);
  workload::RequestStreamParams stream;
  stream.num_requests = 3;
  stream.arrival_rate = 5.0;
  stream.prompt_tokens_min = 4;
  stream.prompt_tokens_max = 8;
  stream.decode_tokens_min = 2;
  stream.decode_tokens_max = 4;
  stream.seed = 5;
  const auto requests = workload::generate_request_stream(stream);

  const auto preset = harness.serve(Framework::HybriMoE, requests);
  const auto spec_run = harness.serve(preset_spec(Framework::HybriMoE), requests);
  ASSERT_EQ(preset.requests.size(), spec_run.requests.size());
  EXPECT_EQ(preset.makespan, spec_run.makespan);
  EXPECT_EQ(preset.steps.total_latency, spec_run.steps.total_latency);
}

TEST(StackSpecTest, TopologySectionRoundTrips) {
  StackSpec named;
  named.topology.preset = "dual_a6000";
  EXPECT_EQ(parse_stack_spec(to_json(named)), named);
  EXPECT_NE(to_json(named).find("\"topology\": \"dual_a6000\""), std::string::npos);

  StackSpec with_devices;
  with_devices.topology.preset = "a6000_xeon10";
  with_devices.topology.devices = 4;
  EXPECT_EQ(parse_stack_spec(to_json(with_devices)), with_devices);

  // Shorthand string and object forms agree.
  const auto a = parse_stack_spec(R"({"topology": "quad_sim"})");
  const auto b = parse_stack_spec(R"({"topology": {"preset": "quad_sim"}})");
  EXPECT_EQ(a, b);

  // Default specs carry no topology section at all (byte-stable presets).
  EXPECT_TRUE(StackSpec{}.topology.empty());
  EXPECT_EQ(to_json(StackSpec{}).find("topology"), std::string::npos);
}

TEST(StackSpecTest, TopologyValidationAndResolution) {
  StackSpec unknown;
  unknown.topology.preset = "dual_a600";  // typo
  try {
    unknown.validate();
    FAIL() << "expected did-you-mean failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("dual_a6000"), std::string::npos);
  }

  StackSpec zero;
  zero.topology.preset = "quad_sim";
  zero.topology.devices = 0;
  EXPECT_THROW(zero.validate(), std::invalid_argument);

  // resolve_topology: presets resolve, the devices override replicates.
  EXPECT_EQ(resolve_topology({}).num_accelerators(), 1u);
  TopologySpec quad{.preset = "quad_sim", .devices = {}};
  EXPECT_EQ(resolve_topology(quad).num_accelerators(), 4u);
  TopologySpec scaled{.preset = "a6000_xeon10", .devices = 3};
  const auto topo = resolve_topology(scaled);
  EXPECT_EQ(topo.num_accelerators(), 3u);
  EXPECT_EQ(topo.accelerators[2].name, "gpu2");
}

TEST_F(StackSpecEngineTest, TopologyMismatchWithCostModelIsRejected) {
  ExperimentHarness harness(spec_);
  StackSpec spec;
  spec.topology.preset = "dual_a6000";  // 2 accelerators
  // The fixture's harness cost model is the single-pair unit machine.
  EXPECT_THROW((void)harness.build(spec), std::invalid_argument);
}

TEST_F(StackSpecEngineTest, MultiDeviceHarnessBuildsAndSplitsTheCache) {
  spec_.topology = hw::Topology::replicated(hw::MachineProfile::unit_test_machine(), 2);
  ExperimentHarness harness(spec_);
  StackSpec spec;  // HybriMoE components, no explicit topology section
  auto engine = harness.build(spec);
  ASSERT_EQ(engine->num_devices(), 2u);
  const std::size_t total =
      engine->device_cache(0).capacity() + engine->device_cache(1).capacity();
  EXPECT_EQ(total, cache::ExpertCache::capacity_for_ratio(spec_.model, 0.25));
  // The run must produce finite, validated metrics on both devices.
  const auto metrics = harness.run_decode(spec, 6);
  EXPECT_GT(metrics.total_latency, 0.0);
  EXPECT_EQ(metrics.per_forward.size(), 6u);
}

}  // namespace
}  // namespace hybrimoe::runtime
