#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "runtime/serve_engine.hpp"
#include "runtime/session.hpp"

namespace hybrimoe::runtime {
namespace {

ExperimentSpec tiny_spec(std::uint64_t seed = 91) {
  ExperimentSpec spec;
  spec.model = moe::ModelConfig::tiny(4, 8, 2);
  spec.machine = hw::MachineProfile::unit_test_machine();
  spec.cache_ratio = 0.25;
  spec.trace.seed = seed;
  spec.warmup_steps = 8;
  return spec;
}

workload::RequestSpec make_request(std::uint64_t id, double arrival,
                                   std::size_t prompt, std::size_t decode) {
  workload::RequestSpec r;
  r.id = id;
  r.arrival_time = arrival;
  r.prompt_tokens = prompt;
  r.decode_tokens = decode;
  return r;
}

// -- Arrival exactly at a step boundary ------------------------------------

TEST(ServeEdgeCasesTest, ArrivalExactlyAtAStepBoundaryIsAdmittedThatInstant) {
  // Surface-at-boundary semantics: an arrival_time equal to the serving
  // clock after a step (<=, not <) joins the very next batch with zero
  // queueing delay. The boundary instant comes from a probe run, so the
  // equality is exact — same floats, not an epsilon.
  const auto first = make_request(0, 0.0, 4, 6);
  ExperimentHarness probe(tiny_spec());
  const auto solo = probe.serve(Framework::HybriMoE, std::vector{first});
  const double boundary = solo.requests[0].first_token;

  const std::vector<workload::RequestSpec> specs{
      first, make_request(1, boundary, 4, 3)};
  ExperimentHarness harness(tiny_spec());
  const auto m = harness.serve(Framework::HybriMoE, specs);
  EXPECT_EQ(m.requests[1].arrival, boundary);
  EXPECT_EQ(m.requests[1].admit, boundary);
  EXPECT_DOUBLE_EQ(m.requests[1].queueing_delay(), 0.0);
  EXPECT_EQ(m.finished_count(), 2U);
}

// -- Every request exceeds the context budget ------------------------------

TEST(ServeEdgeCasesTest, AllRequestsOverContextBudgetRejectsWithoutStepping) {
  const std::vector<workload::RequestSpec> specs{
      make_request(0, 0.0, 32, 8),
      make_request(1, 0.5, 16, 16),
      make_request(2, 1.0, 64, 1),
  };
  ServeOptions options;
  options.max_context_tokens = 8;  // every prompt + decode budget is larger
  ExperimentHarness harness(tiny_spec());
  const auto m = harness.serve(Framework::HybriMoE, specs, options);
  EXPECT_EQ(m.rejected_count(), specs.size());
  EXPECT_EQ(m.finished_count(), 0U);
  EXPECT_TRUE(m.steps.per_forward.empty());  // no step ever composed
  EXPECT_EQ(m.total_generated_tokens(), 0U);
  EXPECT_DOUBLE_EQ(m.throughput(), 0.0);
  // Latency distributions over an all-rejected run are guarded, not NaN.
  EXPECT_THROW((void)m.ttft_tails(), std::invalid_argument);
  EXPECT_THROW((void)m.tbt_tails(), std::invalid_argument);
}

TEST(ServeEdgeCasesTest, ContextBudgetRejectsOnlyTheOversizedRequests) {
  const std::vector<workload::RequestSpec> specs{
      make_request(0, 0.0, 4, 2),    // 6 tokens: fits
      make_request(1, 0.0, 32, 8),   // 40 tokens: rejected
      make_request(2, 0.0, 6, 2),    // 8 tokens: fits exactly (budget is <=)
  };
  ServeOptions options;
  options.max_context_tokens = 8;
  ExperimentHarness harness(tiny_spec());
  const auto m = harness.serve(Framework::HybriMoE, specs, options);
  EXPECT_EQ(m.rejected_count(), 1U);
  EXPECT_TRUE(m.requests[1].rejected);
  EXPECT_EQ(m.finished_count(), 2U);
}

// -- Arrival-timestamp tie-break -------------------------------------------

TEST(ServeEdgeCasesTest, SimultaneousArrivalsServeInIdOrderRegardlessOfInput) {
  // The documented tie-break (request.hpp): equal arrival timestamps order
  // by ascending id. Feeding the same requests in three input orders must
  // produce identical metrics — the sort is the contract, not the caller's
  // array order.
  std::vector<workload::RequestSpec> specs{
      make_request(4, 0.0, 4, 2), make_request(1, 0.0, 5, 3),
      make_request(3, 0.0, 6, 2), make_request(2, 0.0, 4, 4)};

  const auto serve_order = [&](std::vector<workload::RequestSpec> order) {
    ExperimentHarness harness(tiny_spec());
    return harness.serve(Framework::HybriMoE, order);
  };
  const auto a = serve_order(specs);
  std::reverse(specs.begin(), specs.end());
  const auto b = serve_order(specs);
  std::swap(specs[0], specs[2]);
  const auto c = serve_order(specs);

  // Metrics come back in (arrival, id) order: ids ascending here.
  for (std::size_t i = 1; i < a.requests.size(); ++i)
    EXPECT_LT(a.requests[i - 1].id, a.requests[i].id);
  for (const auto* m : {&b, &c}) {
    ASSERT_EQ(m->requests.size(), a.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
      EXPECT_EQ(m->requests[i].id, a.requests[i].id);
      EXPECT_EQ(m->requests[i].admit, a.requests[i].admit);
      EXPECT_EQ(m->requests[i].first_token, a.requests[i].first_token);
      EXPECT_EQ(m->requests[i].finish, a.requests[i].finish);
      EXPECT_EQ(m->requests[i].tbt, a.requests[i].tbt);
    }
    EXPECT_EQ(m->makespan, a.makespan);
  }
}

// -- Request lifecycle bookkeeping -----------------------------------------

TEST(ServeEdgeCasesTest, PreemptionCountersSurviveIntoMetrics) {
  Request r;
  r.state = RequestState::Prefill;
  r.preempt(1.0);
  r.resume(2.0);
  r.preempt(3.0);
  EXPECT_EQ(r.preemptions, 2U);
  EXPECT_EQ(r.state, RequestState::Preempted);
  // resume() clears the consecutive-defer streak, not the lifetime count.
  r.resume(4.0);
  EXPECT_EQ(r.preempt_streak, 0U);
  EXPECT_EQ(r.preemptions, 2U);
}

TEST(ServeEdgeCasesTest, StateNamesCoverTheLifecycle) {
  EXPECT_STREQ(to_string(RequestState::Queued), "queued");
  EXPECT_STREQ(to_string(RequestState::Prefill), "prefill");
  EXPECT_STREQ(to_string(RequestState::Preempted), "preempted");
  EXPECT_STREQ(to_string(RequestState::Decode), "decode");
  EXPECT_STREQ(to_string(RequestState::Finished), "finished");
  EXPECT_STREQ(to_string(RequestState::Rejected), "rejected");
}

}  // namespace
}  // namespace hybrimoe::runtime
