#include "runtime/serve_engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/session.hpp"

namespace hybrimoe::runtime {
namespace {

ExperimentSpec tiny_spec(std::uint64_t seed = 91) {
  ExperimentSpec spec;
  spec.model = moe::ModelConfig::tiny(4, 8, 2);
  spec.machine = hw::MachineProfile::unit_test_machine();
  spec.cache_ratio = 0.25;
  spec.trace.seed = seed;
  spec.warmup_steps = 8;
  return spec;
}

workload::RequestStreamParams tiny_stream(double rate = 1.0) {
  workload::RequestStreamParams p;
  p.num_requests = 8;
  p.arrival_rate = rate;
  p.prompt_tokens_min = 3;
  p.prompt_tokens_max = 8;
  p.decode_tokens_min = 2;
  p.decode_tokens_max = 5;
  p.seed = 17;
  return p;
}

// -- Equivalence: the harness adapter reproduces the direct engine runs ----

TEST(ServeEngineTest, AdapterReproducesDirectPrefillBitForBit) {
  ExperimentHarness harness(tiny_spec());
  for (const auto fw : kPaperFrameworks) {
    const auto direct = harness.build(fw)->run_prefill(harness.prefill_trace(8));
    const auto adapted = harness.run_prefill(fw, 8);
    EXPECT_EQ(adapted.stage, sched::Stage::Prefill);
    EXPECT_EQ(adapted.tokens, direct.tokens);
    EXPECT_DOUBLE_EQ(adapted.total_latency, direct.total_latency);
    ASSERT_EQ(adapted.per_forward.size(), direct.per_forward.size());
    EXPECT_DOUBLE_EQ(adapted.ttft(), direct.ttft());
    EXPECT_EQ(adapted.cache.hits, direct.cache.hits);
    EXPECT_EQ(adapted.cache.misses, direct.cache.misses);
    EXPECT_EQ(adapted.transfers, direct.transfers);
    EXPECT_EQ(adapted.prefetches, direct.prefetches);
    EXPECT_EQ(adapted.maintenance, direct.maintenance);
    EXPECT_DOUBLE_EQ(adapted.cpu_busy, direct.cpu_busy);
    EXPECT_DOUBLE_EQ(adapted.gpu_busy, direct.gpu_busy);
    EXPECT_DOUBLE_EQ(adapted.pcie_busy, direct.pcie_busy);
  }
}

TEST(ServeEngineTest, AdapterReproducesDirectDecodeBitForBit) {
  ExperimentHarness harness(tiny_spec());
  for (const auto fw : kPaperFrameworks) {
    const auto direct = harness.build(fw)->run_decode(harness.decode_trace(6));
    const auto adapted = harness.run_decode(fw, 6);
    EXPECT_EQ(adapted.stage, sched::Stage::Decode);
    EXPECT_EQ(adapted.tokens, direct.tokens);
    EXPECT_DOUBLE_EQ(adapted.total_latency, direct.total_latency);
    ASSERT_EQ(adapted.per_forward.size(), direct.per_forward.size());
    for (std::size_t i = 0; i < direct.per_forward.size(); ++i)
      EXPECT_DOUBLE_EQ(adapted.per_forward[i], direct.per_forward[i]);
    EXPECT_DOUBLE_EQ(adapted.tbt_mean(), direct.tbt_mean());
    EXPECT_EQ(adapted.cache.hits, direct.cache.hits);
    EXPECT_EQ(adapted.cache.misses, direct.cache.misses);
    EXPECT_EQ(adapted.transfers, direct.transfers);
    EXPECT_EQ(adapted.prefetches, direct.prefetches);
    EXPECT_EQ(adapted.maintenance, direct.maintenance);
  }
}

// -- Determinism ----------------------------------------------------------

TEST(ServeEngineTest, SameStreamSeedSamePerRequestMetrics) {
  const auto specs = workload::generate_request_stream(tiny_stream());
  ExperimentHarness a(tiny_spec());
  ExperimentHarness b(tiny_spec());
  const auto ma = a.serve(Framework::HybriMoE, specs);
  const auto mb = b.serve(Framework::HybriMoE, specs);
  ASSERT_EQ(ma.requests.size(), mb.requests.size());
  for (std::size_t i = 0; i < ma.requests.size(); ++i) {
    EXPECT_EQ(ma.requests[i].id, mb.requests[i].id);
    EXPECT_DOUBLE_EQ(ma.requests[i].ttft(), mb.requests[i].ttft());
    EXPECT_DOUBLE_EQ(ma.requests[i].e2e(), mb.requests[i].e2e());
    ASSERT_EQ(ma.requests[i].tbt.size(), mb.requests[i].tbt.size());
    for (std::size_t t = 0; t < ma.requests[i].tbt.size(); ++t)
      EXPECT_DOUBLE_EQ(ma.requests[i].tbt[t], mb.requests[i].tbt[t]);
  }
  EXPECT_DOUBLE_EQ(ma.makespan, mb.makespan);
}

TEST(ServeEngineTest, MaterializationIsDeterministicAndMatchesSpecs) {
  const auto specs = workload::generate_request_stream(tiny_stream());
  workload::TraceGenParams params;
  params.seed = 91;
  const auto model = moe::ModelConfig::tiny(4, 8, 2);
  workload::TraceGenerator g1(model, params);
  workload::TraceGenerator g2(model, params);
  const auto r1 = materialize_requests(g1, specs);
  const auto r2 = materialize_requests(g2, specs);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    ASSERT_EQ(r1[i].prefill_chunks.size(), 1U);
    EXPECT_EQ(r1[i].prefill_chunks[0].prompt_tokens, specs[i].prompt_tokens);
    EXPECT_EQ(r1[i].decode.num_steps(), specs[i].decode_tokens);
    // Identical routing for the same request id across generators.
    const auto& la = r1[i].decode.steps[0].layers[0].loads;
    const auto& lb = r2[i].decode.steps[0].layers[0].loads;
    EXPECT_EQ(la, lb);
  }
}

// -- Continuous-batching invariants ---------------------------------------

TEST(ServeEngineTest, NoRequestStarvesUnderTightBatchCap) {
  // High arrival rate + max_batch 2 forces a deep queue; FIFO admission must
  // still drain every request.
  auto stream = tiny_stream(/*rate=*/50.0);
  stream.num_requests = 12;
  const auto specs = workload::generate_request_stream(stream);
  ExperimentHarness harness(tiny_spec());
  ServeOptions options;
  options.max_batch = 2;
  const auto m = harness.serve(Framework::HybriMoE, specs, options);
  ASSERT_EQ(m.requests.size(), specs.size());
  for (const auto& r : m.requests) {
    EXPECT_GE(r.admit, r.arrival);
    EXPECT_GE(r.first_token, r.admit);
    EXPECT_GE(r.finish, r.first_token);
    EXPECT_EQ(r.generated_tokens, 1 + r.tbt.size());  // first token + decode gaps
  }
}

TEST(ServeEngineTest, AdmissionIsFifoByArrival) {
  auto stream = tiny_stream(/*rate=*/50.0);
  stream.num_requests = 12;
  const auto specs = workload::generate_request_stream(stream);
  ExperimentHarness harness(tiny_spec());
  ServeOptions options;
  options.max_batch = 3;
  const auto m = harness.serve(Framework::KTransformers, specs, options);
  for (std::size_t i = 1; i < m.requests.size(); ++i)
    EXPECT_GE(m.requests[i].admit, m.requests[i - 1].admit);
}

TEST(ServeEngineTest, DecodeOrderPreservedForSimultaneousIdenticalRequests) {
  // Four identical requests arriving together decode in lockstep: earlier
  // admissions never fall behind later ones.
  std::vector<workload::RequestSpec> specs(4);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].id = i;
    specs[i].arrival_time = 0.0;
    specs[i].prompt_tokens = 4;
    specs[i].decode_tokens = 3;
  }
  ExperimentHarness harness(tiny_spec());
  const auto m = harness.serve(Framework::HybriMoE, specs);
  for (std::size_t i = 1; i < m.requests.size(); ++i) {
    EXPECT_LE(m.requests[i - 1].first_token, m.requests[i].first_token);
    EXPECT_LE(m.requests[i - 1].finish, m.requests[i].finish);
  }
}

TEST(ServeEngineTest, ChunkedPrefillCoversThePromptAndDelaysTtft) {
  std::vector<workload::RequestSpec> specs(1);
  specs[0].id = 0;
  specs[0].prompt_tokens = 10;
  specs[0].decode_tokens = 2;
  ExperimentHarness whole(tiny_spec());
  ExperimentHarness chunked(tiny_spec());
  ServeOptions chunk_options;
  chunk_options.max_prefill_chunk = 4;  // 4 + 4 + 2 tokens
  const auto mw = whole.serve(Framework::HybriMoE, specs);
  const auto mc = chunked.serve(Framework::HybriMoE, specs, chunk_options);
  EXPECT_EQ(mw.steps.per_forward.size(), 3U);  // 1 prefill + 2 decode steps
  EXPECT_EQ(mc.steps.per_forward.size(), 5U);  // 3 chunks + 2 decode steps
  EXPECT_EQ(mw.total_generated_tokens(), 3U);
  EXPECT_EQ(mc.total_generated_tokens(), 3U);
}

TEST(ServeEngineTest, ConcurrencyActuallyHappensUnderLoad) {
  // With simultaneous arrivals the serving clock must beat sequential
  // (one-request-at-a-time) execution: steps are shared.
  std::vector<workload::RequestSpec> specs(4);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].id = i;
    specs[i].arrival_time = 0.0;
    specs[i].prompt_tokens = 4;
    specs[i].decode_tokens = 4;
  }
  ExperimentHarness harness(tiny_spec());
  const auto batched = harness.serve(Framework::HybriMoE, specs);
  ServeOptions serial;
  serial.max_batch = 1;
  ExperimentHarness harness2(tiny_spec());
  const auto sequential = harness2.serve(Framework::HybriMoE, specs, serial);
  EXPECT_LT(batched.makespan, sequential.makespan);
  EXPECT_LT(batched.steps.per_forward.size(), sequential.steps.per_forward.size());
}

TEST(ServeEngineTest, IdleGapsAccrueToMakespanNotBusyTime) {
  std::vector<workload::RequestSpec> specs(2);
  specs[0] = {0, 0.0, 4, 2};
  specs[1] = {1, 1e6, 4, 2};  // arrives eons after the first finishes
  ExperimentHarness harness(tiny_spec());
  const auto m = harness.serve(Framework::HybriMoE, specs);
  EXPECT_GE(m.makespan, 1e6);
  EXPECT_LT(m.steps.total_latency, 1e6);
  EXPECT_DOUBLE_EQ(m.requests[1].queueing_delay(), 0.0);
}

// -- Misuse guards --------------------------------------------------------

TEST(ServeEngineTest, RejectsMisuse) {
  ExperimentHarness harness(tiny_spec());
  ServeEngine engine(harness.build(Framework::HybriMoE));
  EXPECT_THROW((void)engine.run({}), std::invalid_argument);

  std::vector<workload::RequestSpec> specs(1);
  specs[0].prompt_tokens = 4;
  specs[0].decode_tokens = 2;
  ServeOptions bad;
  bad.max_batch = 0;
  EXPECT_THROW((void)harness.serve(Framework::HybriMoE, specs, bad),
               std::invalid_argument);

  // A request whose traces don't match its spec is rejected.
  workload::TraceGenParams params;
  params.seed = 91;
  workload::TraceGenerator gen(moe::ModelConfig::tiny(4, 8, 2), params);
  auto requests = materialize_requests(gen, specs);
  requests[0].spec.decode_tokens = 99;
  ServeEngine engine2(harness.build(Framework::HybriMoE));
  EXPECT_THROW((void)engine2.run(std::move(requests)), std::invalid_argument);

  // Requests materialised with a coarser chunking than the run options
  // promise are rejected, not silently served whole.
  auto whole = materialize_requests(gen, specs);  // one 4-token chunk
  ServeOptions chunked;
  chunked.max_prefill_chunk = 2;
  ServeEngine engine3(harness.build(Framework::HybriMoE));
  EXPECT_THROW((void)engine3.run(std::move(whole), chunked), std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::runtime
