#include "runtime/frameworks.hpp"

#include <gtest/gtest.h>

#include "runtime/session.hpp"

namespace hybrimoe::runtime {
namespace {

class FrameworksTest : public ::testing::Test {
 protected:
  FrameworksTest()
      : model_(moe::ModelConfig::tiny(4, 8, 2)),
        costs_(hw::MachineProfile::unit_test_machine(), model_) {
    info_.cache_ratio = 0.25;
    // Simple warmup frequencies: expert e of layer l has frequency e.
    info_.warmup_frequencies.assign(model_.num_layers,
                                    std::vector<double>(model_.num_routed_experts));
    for (auto& layer : info_.warmup_frequencies)
      for (std::size_t e = 0; e < layer.size(); ++e)
        layer[e] = static_cast<double>(e);
  }

  moe::ModelConfig model_;
  hw::CostModel costs_;
  EngineBuildInfo info_;
};

TEST_F(FrameworksTest, NamesAndPaperSet) {
  EXPECT_STREQ(to_string(Framework::HybriMoE), "HybriMoE");
  EXPECT_STREQ(to_string(Framework::KTransformers), "KTransformers");
  EXPECT_STREQ(to_string(Framework::AdapMoE), "AdapMoE");
  EXPECT_STREQ(to_string(Framework::LlamaCpp), "llama.cpp");
  EXPECT_STREQ(to_string(Framework::OnDemand), "OnDemand");
  EXPECT_EQ(kPaperFrameworks.size(), 4U);
  EXPECT_EQ(kPaperFrameworks.back(), Framework::HybriMoE);
}

TEST_F(FrameworksTest, AllFrameworksBuildAndRun) {
  workload::TraceGenParams params;
  params.seed = 81;
  workload::TraceGenerator gen(model_, params);
  const auto decode = gen.generate_decode(4);
  const auto prefill = gen.generate_prefill(8);
  for (const auto fw : {Framework::LlamaCpp, Framework::AdapMoE,
                        Framework::KTransformers, Framework::HybriMoE,
                        Framework::OnDemand}) {
    auto engine = make_engine(fw, costs_, info_);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), to_string(fw));
    EXPECT_GT(engine->run_decode(decode).total_latency, 0.0);
    EXPECT_GT(engine->run_prefill(prefill).ttft(), 0.0);
  }
}

TEST_F(FrameworksTest, KTransformersSeedsPinnedHotExperts) {
  auto engine = make_engine(Framework::KTransformers, costs_, info_);
  // Capacity = 25% of 4*8 = 8; the hottest experts are e=7 of each layer etc.
  EXPECT_EQ(engine->cache().size(), 8U);
  EXPECT_TRUE(engine->cache().contains({0, 7}));
  EXPECT_TRUE(engine->cache().is_pinned({0, 7}));
}

TEST_F(FrameworksTest, HybriMoESeedsUnpinned) {
  auto engine = make_engine(Framework::HybriMoE, costs_, info_);
  EXPECT_EQ(engine->cache().size(), 8U);
  EXPECT_TRUE(engine->cache().contains({0, 7}));
  EXPECT_FALSE(engine->cache().is_pinned({0, 7}));
}

TEST_F(FrameworksTest, LlamaCppHasNoCache) {
  auto engine = make_engine(Framework::LlamaCpp, costs_, info_);
  EXPECT_EQ(engine->cache().capacity(), 0U);
}

TEST_F(FrameworksTest, AblationLabels) {
  EXPECT_EQ(core::HybriMoeConfig::baseline().label(), "Baseline");
  EXPECT_EQ(core::HybriMoeConfig::scheduling_only().label(), "Baseline+Scheduling");
  EXPECT_EQ(core::HybriMoeConfig::prefetching_only().label(), "Baseline+Prefetching");
  EXPECT_EQ(core::HybriMoeConfig::caching_only().label(), "Baseline+Caching");
  EXPECT_EQ(core::HybriMoeConfig::full().label(), "All");
}

TEST_F(FrameworksTest, AblationEnginesBuildAndRun) {
  workload::TraceGenParams params;
  params.seed = 82;
  workload::TraceGenerator gen(model_, params);
  const auto decode = gen.generate_decode(4);
  for (const auto& config :
       {core::HybriMoeConfig::baseline(), core::HybriMoeConfig::scheduling_only(),
        core::HybriMoeConfig::prefetching_only(), core::HybriMoeConfig::caching_only(),
        core::HybriMoeConfig::full()}) {
    auto engine = make_ablation_engine(config, costs_, info_);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), config.label());
    EXPECT_GT(engine->run_decode(decode).total_latency, 0.0);
  }
}

TEST_F(FrameworksTest, BaselineAblationEqualsKTransformersPolicy) {
  // The ablation baseline should behave like the kTransformers engine up to
  // the per-layer overhead constant (the ablation pins overhead at the
  // baseline level for every variant).
  workload::TraceGenParams params;
  params.seed = 83;
  workload::TraceGenerator gen(model_, params);
  const auto decode = gen.generate_decode(6);
  auto ktrans = make_engine(Framework::KTransformers, costs_, info_);
  auto baseline = make_ablation_engine(core::HybriMoeConfig::baseline(), costs_, info_);
  const auto mk = ktrans->run_decode(decode);
  const auto mb = baseline->run_decode(decode);
  EXPECT_NEAR(mk.total_latency, mb.total_latency, 1e-9);
  EXPECT_EQ(mk.cache.hits, mb.cache.hits);
}

TEST_F(FrameworksTest, EmptyWarmupFrequenciesHandled) {
  EngineBuildInfo no_warmup;
  no_warmup.cache_ratio = 0.25;
  auto engine = make_engine(Framework::HybriMoE, costs_, no_warmup);
  EXPECT_EQ(engine->cache().size(), 0U);  // nothing seeded
  workload::TraceGenParams params;
  workload::TraceGenerator gen(model_, params);
  EXPECT_GT(engine->run_decode(gen.generate_decode(2)).total_latency, 0.0);
}

}  // namespace
}  // namespace hybrimoe::runtime
