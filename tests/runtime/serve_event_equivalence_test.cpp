/// \file serve_event_equivalence_test.cpp
/// The bit-identity contract of the discrete-event rebuild: ServeEngine
/// (event heap + drain/dispatch loop, serve_sim/sim_core.cpp) must reproduce
/// the pre-event *step-loop* engine's ServeMetrics exactly — every clock,
/// every latency sample, every counter — for every stream the old engine
/// could serve (KV accounting off; it did not exist). The reference below is
/// a frozen copy of the step-loop ServeEngine::run as it stood before the
/// event core landed; it must not be "fixed" to track the library — drift
/// here is the regression this test exists to catch.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "runtime/serve_engine.hpp"
#include "runtime/session.hpp"

namespace hybrimoe::runtime {
namespace {

/// Frozen pre-event-core serving loop (the lockstep step engine).
ServeMetrics reference_step_loop_run(OffloadEngine& engine,
                                     std::vector<Request> requests,
                                     const ServeOptions& options) {
  options.validate();
  HYBRIMOE_REQUIRE(!requests.empty(), "serving an empty request stream");
  std::stable_sort(requests.begin(), requests.end(), [](const Request& a,
                                                        const Request& b) {
    if (a.spec.arrival_time != b.spec.arrival_time)
      return a.spec.arrival_time < b.spec.arrival_time;
    return a.spec.id < b.spec.id;
  });

  ServeMetrics metrics;
  metrics.requests.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    RequestMetrics& m = metrics.requests[i];
    m.id = requests[i].spec.id;
    m.priority = requests[i].spec.priority;
    m.arrival = requests[i].spec.arrival_time;
    m.prompt_tokens = requests[i].spec.prompt_tokens;
  }
  StageMetrics& steps = metrics.steps;
  engine.cache().reset_stats();

  double clock = 0.0;
  std::size_t next_arrival = 0;
  std::size_t terminal = 0;
  bool any_decode = false;
  std::vector<Request*> waiting;
  std::vector<Request*> active;
  std::vector<const workload::ForwardTrace*> parts;
  std::vector<Request*> decoding;
  double est_prefill = -1.0;
  double est_decode = -1.0;
  const auto index_of = [&](const Request* r) {
    return static_cast<std::size_t>(r - requests.data());
  };
  const auto tier_of = [&](const Request* r) -> const TierPolicy& {
    return options.tiers[workload::priority_index(r->spec.priority)];
  };
  const auto reject = [&](Request& r) {
    r.state = RequestState::Rejected;
    metrics.requests[index_of(&r)].rejected = true;
    ++terminal;
  };

  while (terminal < requests.size()) {
    while (next_arrival < requests.size() &&
           requests[next_arrival].spec.arrival_time <= clock) {
      Request& r = requests[next_arrival++];
      if (options.max_context_tokens > 0 &&
          r.spec.prompt_tokens + r.spec.decode_tokens > options.max_context_tokens) {
        reject(r);
        continue;
      }
      waiting.push_back(&r);
    }

    std::erase_if(waiting, [&](Request* r) {
      const TierPolicy& tier = tier_of(r);
      if (tier.ttft_deadline <= 0.0 ||
          clock <= r->spec.arrival_time + tier.ttft_deadline)
        return false;
      reject(*r);
      return true;
    });

    for (std::size_t t = 0; t < options.tiers.size(); ++t) {
      if (!options.tiers[t].queue_capacity.has_value()) continue;
      const std::size_t cap = *options.tiers[t].queue_capacity;
      std::size_t count = 0;
      for (const Request* r : waiting)
        count += workload::priority_index(r->spec.priority) == t ? 1 : 0;
      for (std::size_t i = waiting.size(); count > cap && i-- > 0;) {
        if (workload::priority_index(waiting[i]->spec.priority) != t) continue;
        reject(*waiting[i]);
        waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(i));
        --count;
      }
    }

    while (!waiting.empty() && active.size() < options.max_batch) {
      std::size_t pick = 0;
      if (options.priority_admission) {
        for (std::size_t i = 1; i < waiting.size(); ++i)
          if (waiting[i]->spec.priority > waiting[pick]->spec.priority) pick = i;
      }
      Request& r = *waiting[pick];
      waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(pick));
      r.admit_time = clock;
      r.state = r.prefill_chunks.empty() ? RequestState::Decode : RequestState::Prefill;
      metrics.requests[index_of(&r)].admit = clock;
      active.push_back(&r);
    }
    if (active.empty()) {
      if (terminal == requests.size()) break;
      HYBRIMOE_ASSERT(next_arrival < requests.size(), "serve loop stalled");
      clock = std::max(clock, requests[next_arrival].spec.arrival_time);
      continue;
    }

    Request* candidate = nullptr;
    for (Request* r : active) {
      if (r->state == RequestState::Prefill || r->state == RequestState::Preempted) {
        candidate = r;
        break;
      }
    }
    bool defer = false;
    if (options.preemption && candidate != nullptr && est_prefill > 0.0 &&
        est_decode > 0.0 && est_decode < est_prefill &&
        candidate->preempt_streak < options.max_consecutive_preemptions) {
      for (const Request* d : active) {
        if (d->state != RequestState::Decode) continue;
        if (!(d->spec.priority > candidate->spec.priority)) continue;
        const TierPolicy& tier = tier_of(d);
        if (tier.tbt_slo <= 0.0) continue;
        if (d->prefill_chunks.empty() && d->next_step == 0) continue;
        if ((clock - d->last_token_time) + est_prefill > tier.tbt_slo) {
          defer = true;
          break;
        }
      }
    }
    if (candidate != nullptr) {
      if (defer) {
        if (candidate->state == RequestState::Prefill) candidate->preempt(clock);
        ++candidate->preempt_streak;
        metrics.requests[index_of(candidate)].preemptions = candidate->preemptions;
      } else if (candidate->state == RequestState::Preempted) {
        candidate->resume(clock);
      }
    }

    parts.clear();
    decoding.clear();
    Request* prefilling = nullptr;
    std::size_t prefill_tokens = 0;
    std::size_t decode_tokens = 0;
    for (Request* r : active) {
      if (r->state == RequestState::Prefill) {
        if (r != candidate || defer || prefilling != nullptr) continue;
        prefilling = r;
        const workload::ForwardTrace& chunk = r->prefill_chunks[r->next_chunk].forward;
        parts.push_back(&chunk);
        prefill_tokens += chunk.tokens;
      } else if (r->state == RequestState::Decode) {
        const workload::ForwardTrace& step = r->decode.steps[r->next_step];
        parts.push_back(&step);
        decode_tokens += step.tokens;
        decoding.push_back(r);
      }
    }
    HYBRIMOE_ASSERT(!parts.empty(), "composed an empty step");
    const sched::Stage stage = sched::dominant_stage(prefill_tokens, decode_tokens);
    if (!decoding.empty()) any_decode = true;

    double latency;
    if (parts.size() == 1) {
      latency = engine.run_step(*parts.front(), stage, steps);
    } else {
      const workload::ForwardTrace merged = workload::merge_forward_traces(parts);
      latency = engine.run_step(merged, stage, steps);
    }
    steps.per_forward.push_back(latency);
    steps.total_latency += latency;
    steps.tokens += prefill_tokens + decode_tokens;
    clock += latency;
    if (prefilling != nullptr) {
      est_prefill = latency;
    } else {
      est_decode = latency;
    }

    if (prefilling != nullptr) {
      ++prefilling->next_chunk;
      if (prefilling->next_chunk == prefilling->prefill_chunks.size()) {
        RequestMetrics& m = metrics.requests[index_of(prefilling)];
        prefilling->first_token_time = clock;
        prefilling->last_token_time = clock;
        m.first_token = clock;
        ++m.generated_tokens;
        if (prefilling->decode.num_steps() > 0) {
          prefilling->state = RequestState::Decode;
        } else {
          prefilling->state = RequestState::Finished;
          prefilling->finish_time = clock;
          m.finish = clock;
          ++terminal;
        }
      }
    }
    for (Request* r : decoding) {
      RequestMetrics& m = metrics.requests[index_of(r)];
      if (r->prefill_chunks.empty() && r->next_step == 0) {
        r->first_token_time = clock;
        m.first_token = clock;
      } else {
        m.tbt.push_back(clock - r->last_token_time);
      }
      r->last_token_time = clock;
      ++m.generated_tokens;
      ++r->next_step;
      if (r->next_step == r->decode.num_steps()) {
        r->state = RequestState::Finished;
        r->finish_time = clock;
        m.finish = clock;
        ++terminal;
      }
    }
    std::erase_if(active,
                  [](const Request* r) { return r->state == RequestState::Finished; });
  }

  metrics.makespan = clock;
  steps.stage = any_decode ? sched::Stage::Decode : sched::Stage::Prefill;
  cache::CacheStats stats = engine.cache().stats();
  stats.hits += steps.cache.hits;
  steps.cache = stats;

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& r = requests[i];
    if (r.state == RequestState::Rejected) continue;
    metrics.requests[i].preemptions = r.preemptions;
  }
  return metrics;
}

ExperimentSpec tiny_spec(std::uint64_t seed = 91) {
  ExperimentSpec spec;
  spec.model = moe::ModelConfig::tiny(4, 8, 2);
  spec.machine = hw::MachineProfile::unit_test_machine();
  spec.cache_ratio = 0.25;
  spec.trace.seed = seed;
  spec.warmup_steps = 8;
  return spec;
}

/// Exact ServeMetrics comparison — EXPECT_EQ on doubles is deliberate: the
/// contract is bit-identity, not tolerance.
void expect_identical(const ServeMetrics& event, const ServeMetrics& reference) {
  ASSERT_EQ(event.requests.size(), reference.requests.size());
  for (std::size_t i = 0; i < event.requests.size(); ++i) {
    const RequestMetrics& a = event.requests[i];
    const RequestMetrics& b = reference.requests[i];
    EXPECT_EQ(a.id, b.id) << "request " << i;
    EXPECT_EQ(a.rejected, b.rejected) << "request " << i;
    EXPECT_EQ(a.arrival, b.arrival) << "request " << i;
    EXPECT_EQ(a.admit, b.admit) << "request " << i;
    EXPECT_EQ(a.first_token, b.first_token) << "request " << i;
    EXPECT_EQ(a.finish, b.finish) << "request " << i;
    EXPECT_EQ(a.generated_tokens, b.generated_tokens) << "request " << i;
    EXPECT_EQ(a.preemptions, b.preemptions) << "request " << i;
    EXPECT_EQ(a.tbt, b.tbt) << "request " << i;
  }
  EXPECT_EQ(event.makespan, reference.makespan);
  EXPECT_EQ(event.steps.per_forward, reference.steps.per_forward);
  EXPECT_EQ(event.steps.total_latency, reference.steps.total_latency);
  EXPECT_EQ(event.steps.tokens, reference.steps.tokens);
  EXPECT_EQ(event.steps.transfers, reference.steps.transfers);
  EXPECT_EQ(event.steps.prefetches, reference.steps.prefetches);
  EXPECT_EQ(event.steps.maintenance, reference.steps.maintenance);
  EXPECT_EQ(event.steps.cache.hits, reference.steps.cache.hits);
  EXPECT_EQ(event.steps.cache.misses, reference.steps.cache.misses);
  EXPECT_EQ(event.steps.stage, reference.steps.stage);
}

void expect_engines_agree(const workload::RequestStreamParams& params,
                          const ServeOptions& options) {
  const auto specs = workload::generate_request_stream(params);
  ExperimentHarness harness(tiny_spec());
  const auto requests = harness.materialize(specs, options.max_prefill_chunk);

  auto reference_engine = harness.build(Framework::HybriMoE);
  const auto reference =
      reference_step_loop_run(*reference_engine, requests, options);

  ServeEngine event_engine(harness.build(Framework::HybriMoE));
  const auto event = event_engine.run(requests, options);

  expect_identical(event, reference);
}

workload::RequestStreamParams base_stream(double rate) {
  workload::RequestStreamParams p;
  p.num_requests = 24;
  p.arrival_rate = rate;
  p.prompt_tokens_min = 3;
  p.prompt_tokens_max = 12;
  p.decode_tokens_min = 2;
  p.decode_tokens_max = 6;
  p.seed = 17;
  return p;
}

TEST(ServeEventEquivalenceTest, SingleTierFifoStream) {
  expect_engines_agree(base_stream(4.0), ServeOptions{});
}

TEST(ServeEventEquivalenceTest, ChunkedPrefillsUnderTightBatchCap) {
  ServeOptions options;
  options.max_batch = 3;
  options.max_prefill_chunk = 4;
  expect_engines_agree(base_stream(8.0), options);
}

TEST(ServeEventEquivalenceTest, BurstArrivals) {
  auto params = base_stream(16.0);
  params.process = workload::ArrivalProcess::Burst;
  params.burst_size = 6;
  expect_engines_agree(params, ServeOptions{});
}

TEST(ServeEventEquivalenceTest, DiurnalArrivals) {
  auto params = base_stream(8.0);
  params.process = workload::ArrivalProcess::Diurnal;
  params.diurnal_period = 2.0;
  params.diurnal_amplitude = 0.8;
  expect_engines_agree(params, ServeOptions{});
}

TEST(ServeEventEquivalenceTest, PriorityTiersWithPreemptionAndSlos) {
  auto params = base_stream(32.0);
  params.vip_fraction = 0.25;
  params.best_effort_fraction = 0.25;
  ServeOptions options;
  options.max_prefill_chunk = 4;
  options.priority_admission = true;
  options.preemption = true;
  options.tiers[workload::priority_index(workload::Priority::Vip)].tbt_slo = 0.05;
  expect_engines_agree(params, options);
}

TEST(ServeEventEquivalenceTest, AdmissionControlRejectionPaths) {
  auto params = base_stream(64.0);
  params.vip_fraction = 0.25;
  params.best_effort_fraction = 0.5;
  ServeOptions options;
  options.max_batch = 2;
  options.priority_admission = true;
  options.max_context_tokens = 16;  // rejects the longest requests outright
  auto& best_effort =
      options.tiers[workload::priority_index(workload::Priority::BestEffort)];
  best_effort.ttft_deadline = 0.5;
  best_effort.queue_capacity = 3;
  expect_engines_agree(params, options);
}

}  // namespace
}  // namespace hybrimoe::runtime
