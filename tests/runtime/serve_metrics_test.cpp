#include "runtime/serve_metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hybrimoe::runtime {
namespace {

RequestMetrics finished_request(std::uint64_t id, double arrival, double first_token,
                                double finish, std::vector<double> tbt) {
  RequestMetrics r;
  r.id = id;
  r.arrival = arrival;
  r.admit = arrival;
  r.first_token = first_token;
  r.finish = finish;
  r.prompt_tokens = 8;
  r.generated_tokens = 1 + tbt.size();
  r.tbt = std::move(tbt);
  return r;
}

TEST(RequestMetricsTest, DerivedLatencies) {
  const auto r = finished_request(0, 1.0, 3.0, 7.0, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(r.ttft(), 2.0);
  EXPECT_DOUBLE_EQ(r.e2e(), 6.0);
  EXPECT_DOUBLE_EQ(r.queueing_delay(), 0.0);
  EXPECT_DOUBLE_EQ(r.tbt_mean(), 2.0);
}

TEST(RequestMetricsTest, GuardsAgainstEmptyAccounting) {
  RequestMetrics r;
  EXPECT_THROW((void)r.ttft(), std::invalid_argument);   // emitted no tokens
  EXPECT_THROW((void)r.tbt_mean(), std::invalid_argument);  // no decode gaps
  r.arrival = 5.0;
  r.finish = 1.0;  // never finished (finish < arrival)
  EXPECT_THROW((void)r.e2e(), std::invalid_argument);
}

TEST(RequestMetricsTest, TbtSloSemantics) {
  const auto r = finished_request(0, 0.0, 1.0, 5.0, {1.0, 1.0, 4.0});
  EXPECT_THROW((void)r.meets_tbt_slo(0.0), std::invalid_argument);
  EXPECT_FALSE(r.meets_tbt_slo(1.5));  // p95 dominated by the 4.0 stall
  EXPECT_TRUE(r.meets_tbt_slo(4.0));
  // Prefill-only requests trivially meet any SLO.
  const auto prefill_only = finished_request(1, 0.0, 1.0, 1.0, {});
  EXPECT_TRUE(prefill_only.meets_tbt_slo(0.001));
}

TEST(ServeMetricsTest, EmptyStreamIsGuardedNotDivided) {
  const ServeMetrics m;
  EXPECT_DOUBLE_EQ(m.throughput(), 0.0);          // no 0/0
  EXPECT_DOUBLE_EQ(m.request_throughput(), 0.0);
  EXPECT_DOUBLE_EQ(m.goodput(0.1), 0.0);
  EXPECT_EQ(m.total_generated_tokens(), 0U);
  EXPECT_THROW((void)m.ttft_p(95.0), std::invalid_argument);
  EXPECT_THROW((void)m.tbt_p(95.0), std::invalid_argument);
  EXPECT_THROW((void)m.e2e_p(95.0), std::invalid_argument);
}

TEST(ServeMetricsTest, TailsUsePooledSamples) {
  ServeMetrics m;
  m.makespan = 10.0;
  m.requests.push_back(finished_request(0, 0.0, 1.0, 4.0, {1.0, 2.0}));
  m.requests.push_back(finished_request(1, 1.0, 2.0, 9.0, {3.0, 4.0}));
  EXPECT_DOUBLE_EQ(m.ttft_p(50.0), 1.0);  // both TTFTs are 1.0
  EXPECT_DOUBLE_EQ(m.tbt_p(0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.tbt_p(100.0), 4.0);
  EXPECT_DOUBLE_EQ(m.tbt_p(50.0), 2.5);  // pooled {1,2,3,4}
  EXPECT_DOUBLE_EQ(m.e2e_p(100.0), 8.0);
  EXPECT_EQ(m.total_generated_tokens(), 6U);
  EXPECT_DOUBLE_EQ(m.throughput(), 0.6);
  EXPECT_DOUBLE_EQ(m.request_throughput(), 0.2);
}

TEST(ServeMetricsTest, TailSummariesMatchTheGenericAccessors) {
  ServeMetrics m;
  m.makespan = 10.0;
  for (int i = 0; i < 20; ++i)
    m.requests.push_back(finished_request(static_cast<std::uint64_t>(i), 0.0,
                                          0.1 * (i + 1), 1.0 + i,
                                          {0.2 * (i + 1), 0.3 * (i + 1)}));
  const auto ttft = m.ttft_tails();
  EXPECT_DOUBLE_EQ(ttft.p50, m.ttft_p(50.0));
  EXPECT_DOUBLE_EQ(ttft.p95, m.ttft_p(95.0));
  EXPECT_DOUBLE_EQ(ttft.p99, m.ttft_p(99.0));
  const auto tbt = m.tbt_tails();
  EXPECT_DOUBLE_EQ(tbt.p95, m.tbt_p(95.0));
  EXPECT_LE(tbt.p50, tbt.p95);
  EXPECT_LE(tbt.p95, tbt.p99);
  const ServeMetrics empty;
  EXPECT_THROW((void)empty.ttft_tails(), std::invalid_argument);
  EXPECT_THROW((void)empty.tbt_tails(), std::invalid_argument);
  EXPECT_THROW((void)empty.e2e_tails(), std::invalid_argument);
}

// -- Tier filters and rejection accounting ---------------------------------

TEST(ServeMetricsTest, TierFiltersPartitionTheDistributions) {
  ServeMetrics m;
  m.makespan = 10.0;
  auto vip = finished_request(0, 0.0, 1.0, 4.0, {1.0, 2.0});
  vip.priority = workload::Priority::Vip;
  auto standard = finished_request(1, 0.0, 2.0, 9.0, {3.0, 4.0});
  standard.priority = workload::Priority::Standard;
  auto best_effort = finished_request(2, 0.0, 3.0, 9.5, {5.0, 6.0});
  best_effort.priority = workload::Priority::BestEffort;
  m.requests = {vip, standard, best_effort};

  EXPECT_EQ(m.tier_count(workload::Priority::Vip), 1U);
  EXPECT_EQ(m.tbts(workload::Priority::Vip), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(m.tbts(workload::Priority::BestEffort),
            (std::vector<double>{5.0, 6.0}));
  EXPECT_DOUBLE_EQ(m.tbt_p(100.0, workload::Priority::Vip), 2.0);
  EXPECT_DOUBLE_EQ(m.ttft_p(50.0, workload::Priority::Standard), 2.0);
  // The unfiltered pool is the union of the tiers.
  EXPECT_EQ(m.tbts().size(), 6U);
  // A tier with no requests is guarded like an empty stream.
  ServeMetrics only_vip;
  only_vip.requests = {vip};
  EXPECT_THROW((void)only_vip.tbt_tails(workload::Priority::Standard),
               std::invalid_argument);
}

TEST(ServeMetricsTest, SingleTierAggregatesIgnoreTheFilterMachinery) {
  // Regression guard for the pre-tier contract: on an all-default-priority
  // stream, filtered-by-Standard and unfiltered accessors walk the same
  // requests in the same order — bit-identical results.
  ServeMetrics m;
  m.makespan = 10.0;
  for (int i = 0; i < 12; ++i)
    m.requests.push_back(finished_request(static_cast<std::uint64_t>(i), 0.0,
                                          0.1 * (i + 1), 1.0 + i,
                                          {0.2 * (i + 1), 0.3 * (i + 1)}));
  EXPECT_EQ(m.tbts(), m.tbts(workload::Priority::Standard));
  EXPECT_EQ(m.ttfts(), m.ttfts(workload::Priority::Standard));
  const auto unfiltered = m.tbt_tails();
  const auto filtered = m.tbt_tails(workload::Priority::Standard);
  EXPECT_EQ(unfiltered.p50, filtered.p50);
  EXPECT_EQ(unfiltered.p95, filtered.p95);
  EXPECT_EQ(unfiltered.p99, filtered.p99);
}

TEST(ServeMetricsTest, RejectedRequestsAreExcludedFromEveryDistribution) {
  ServeMetrics m;
  m.makespan = 10.0;
  m.requests.push_back(finished_request(0, 0.0, 1.0, 4.0, {1.0, 2.0}));
  RequestMetrics rejected;
  rejected.id = 1;
  rejected.rejected = true;
  rejected.arrival = 0.5;
  m.requests.push_back(rejected);

  EXPECT_EQ(m.finished_count(), 1U);
  EXPECT_EQ(m.rejected_count(), 1U);
  EXPECT_EQ(m.ttfts().size(), 1U);
  EXPECT_EQ(m.tbts().size(), 2U);
  EXPECT_DOUBLE_EQ(m.request_throughput(), 0.1);  // rejected doesn't count
  EXPECT_DOUBLE_EQ(m.goodput(10.0), 0.3);
  EXPECT_THROW((void)m.requests[1].ttft(), std::invalid_argument);
  EXPECT_THROW((void)m.requests[1].queueing_delay(), std::invalid_argument);
}

TEST(ServeMetricsTest, GoodputCountsOnlySloMeetingRequests) {
  ServeMetrics m;
  m.makespan = 10.0;
  m.requests.push_back(finished_request(0, 0.0, 1.0, 4.0, {1.0, 1.0}));   // meets 2.0
  m.requests.push_back(finished_request(1, 1.0, 2.0, 9.0, {5.0, 5.0}));  // misses 2.0
  EXPECT_DOUBLE_EQ(m.goodput(2.0), 0.3);   // 3 of 6 tokens within SLO
  EXPECT_DOUBLE_EQ(m.goodput(10.0), 0.6);  // everything within a loose SLO
  EXPECT_THROW((void)m.goodput(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::runtime
