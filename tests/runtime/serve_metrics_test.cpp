#include "runtime/serve_metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hybrimoe::runtime {
namespace {

RequestMetrics finished_request(std::uint64_t id, double arrival, double first_token,
                                double finish, std::vector<double> tbt) {
  RequestMetrics r;
  r.id = id;
  r.arrival = arrival;
  r.admit = arrival;
  r.first_token = first_token;
  r.finish = finish;
  r.prompt_tokens = 8;
  r.generated_tokens = 1 + tbt.size();
  r.tbt = std::move(tbt);
  return r;
}

TEST(RequestMetricsTest, DerivedLatencies) {
  const auto r = finished_request(0, 1.0, 3.0, 7.0, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(r.ttft(), 2.0);
  EXPECT_DOUBLE_EQ(r.e2e(), 6.0);
  EXPECT_DOUBLE_EQ(r.queueing_delay(), 0.0);
  EXPECT_DOUBLE_EQ(r.tbt_mean(), 2.0);
}

TEST(RequestMetricsTest, GuardsAgainstEmptyAccounting) {
  RequestMetrics r;
  EXPECT_THROW((void)r.ttft(), std::invalid_argument);   // emitted no tokens
  EXPECT_THROW((void)r.tbt_mean(), std::invalid_argument);  // no decode gaps
  r.arrival = 5.0;
  r.finish = 1.0;  // never finished (finish < arrival)
  EXPECT_THROW((void)r.e2e(), std::invalid_argument);
}

TEST(RequestMetricsTest, TbtSloSemantics) {
  const auto r = finished_request(0, 0.0, 1.0, 5.0, {1.0, 1.0, 4.0});
  EXPECT_THROW((void)r.meets_tbt_slo(0.0), std::invalid_argument);
  EXPECT_FALSE(r.meets_tbt_slo(1.5));  // p95 dominated by the 4.0 stall
  EXPECT_TRUE(r.meets_tbt_slo(4.0));
  // Prefill-only requests trivially meet any SLO.
  const auto prefill_only = finished_request(1, 0.0, 1.0, 1.0, {});
  EXPECT_TRUE(prefill_only.meets_tbt_slo(0.001));
}

TEST(ServeMetricsTest, EmptyStreamIsGuardedNotDivided) {
  const ServeMetrics m;
  EXPECT_DOUBLE_EQ(m.throughput(), 0.0);          // no 0/0
  EXPECT_DOUBLE_EQ(m.request_throughput(), 0.0);
  EXPECT_DOUBLE_EQ(m.goodput(0.1), 0.0);
  EXPECT_EQ(m.total_generated_tokens(), 0U);
  EXPECT_THROW((void)m.ttft_p(95.0), std::invalid_argument);
  EXPECT_THROW((void)m.tbt_p(95.0), std::invalid_argument);
  EXPECT_THROW((void)m.e2e_p(95.0), std::invalid_argument);
}

TEST(ServeMetricsTest, TailsUsePooledSamples) {
  ServeMetrics m;
  m.makespan = 10.0;
  m.requests.push_back(finished_request(0, 0.0, 1.0, 4.0, {1.0, 2.0}));
  m.requests.push_back(finished_request(1, 1.0, 2.0, 9.0, {3.0, 4.0}));
  EXPECT_DOUBLE_EQ(m.ttft_p(50.0), 1.0);  // both TTFTs are 1.0
  EXPECT_DOUBLE_EQ(m.tbt_p(0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.tbt_p(100.0), 4.0);
  EXPECT_DOUBLE_EQ(m.tbt_p(50.0), 2.5);  // pooled {1,2,3,4}
  EXPECT_DOUBLE_EQ(m.e2e_p(100.0), 8.0);
  EXPECT_EQ(m.total_generated_tokens(), 6U);
  EXPECT_DOUBLE_EQ(m.throughput(), 0.6);
  EXPECT_DOUBLE_EQ(m.request_throughput(), 0.2);
}

TEST(ServeMetricsTest, TailSummariesMatchTheGenericAccessors) {
  ServeMetrics m;
  m.makespan = 10.0;
  for (int i = 0; i < 20; ++i)
    m.requests.push_back(finished_request(static_cast<std::uint64_t>(i), 0.0,
                                          0.1 * (i + 1), 1.0 + i,
                                          {0.2 * (i + 1), 0.3 * (i + 1)}));
  const auto ttft = m.ttft_tails();
  EXPECT_DOUBLE_EQ(ttft.p50, m.ttft_p(50.0));
  EXPECT_DOUBLE_EQ(ttft.p95, m.ttft_p(95.0));
  EXPECT_DOUBLE_EQ(ttft.p99, m.ttft_p(99.0));
  const auto tbt = m.tbt_tails();
  EXPECT_DOUBLE_EQ(tbt.p95, m.tbt_p(95.0));
  EXPECT_LE(tbt.p50, tbt.p95);
  EXPECT_LE(tbt.p95, tbt.p99);
  const ServeMetrics empty;
  EXPECT_THROW((void)empty.ttft_tails(), std::invalid_argument);
  EXPECT_THROW((void)empty.tbt_tails(), std::invalid_argument);
  EXPECT_THROW((void)empty.e2e_tails(), std::invalid_argument);
}

TEST(ServeMetricsTest, GoodputCountsOnlySloMeetingRequests) {
  ServeMetrics m;
  m.makespan = 10.0;
  m.requests.push_back(finished_request(0, 0.0, 1.0, 4.0, {1.0, 1.0}));   // meets 2.0
  m.requests.push_back(finished_request(1, 1.0, 2.0, 9.0, {5.0, 5.0}));  // misses 2.0
  EXPECT_DOUBLE_EQ(m.goodput(2.0), 0.3);   // 3 of 6 tokens within SLO
  EXPECT_DOUBLE_EQ(m.goodput(10.0), 0.6);  // everything within a loose SLO
  EXPECT_THROW((void)m.goodput(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::runtime
