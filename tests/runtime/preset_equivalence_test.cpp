/// \file preset_equivalence_test.cpp
/// The declarative configuration layer's regression anchor: a verbatim
/// frozen copy of the pre-registry closed factory (the switch-based
/// make_engine / make_ablation_engine this repository shipped before the
/// StackSpec redesign) builds every framework preset and every Table III
/// ablation variant, and the spec-based path must reproduce its
/// run_prefill / run_decode metrics *bit for bit* — including, in Threaded
/// execution mode, the wall-clock-independent layer-output digests. If an
/// assembly detail drifts (a default parameter, a flag, an overhead
/// constant, seeding pinnedness), these tests point at the exact metric.

#include <gtest/gtest.h>

#include <memory>

#include "cache/classic_policies.hpp"
#include "cache/mrs_policy.hpp"
#include "core/warmup.hpp"
#include "exec/executor.hpp"
#include "runtime/frameworks.hpp"
#include "workload/generator.hpp"

namespace hybrimoe::runtime {
namespace {

// ---------------------------------------------------------------------------
// Frozen legacy factory (pre-StackSpec), kept verbatim apart from the
// `legacy_` prefixes. Do not "fix" or modernise this code — its only job is
// to pin down what the closed factory built.
// ---------------------------------------------------------------------------

constexpr double kPythonOverhead = 150e-6;   // AdapMoE-style PyTorch loop
constexpr double kKTransOverhead = 120e-6;   // Python frontend + C++ kernels
constexpr double kLlamaCppOverhead = 60e-6;  // native C++ graph walk
constexpr double kHybriMoeOverhead = 40e-6;  // in-kernel task allocation

std::unique_ptr<cache::ExpertCache> legacy_make_cache(
    const moe::ModelConfig& model, double ratio,
    std::unique_ptr<cache::CachePolicy> policy) {
  const std::size_t capacity = cache::ExpertCache::capacity_for_ratio(model, ratio);
  return std::make_unique<cache::ExpertCache>(capacity, std::move(policy));
}

void legacy_seed_from_warmup(OffloadEngine& engine, const EngineBuildInfo& info,
                             bool pinned) {
  if (info.warmup_frequencies.empty()) return;
  const auto hottest =
      core::hottest_experts(info.warmup_frequencies, engine.cache().capacity());
  engine.seed_cache(hottest, pinned);
}

std::unique_ptr<OffloadEngine> legacy_make_engine(Framework framework,
                                                  const hw::CostModel& costs,
                                                  const EngineBuildInfo& info) {
  const moe::ModelConfig& model = costs.model();
  EngineComponents c;
  bool pin_seed = false;

  switch (framework) {
    case Framework::HybriMoE: {
      c.name = to_string(framework);
      sched::SimOptions hybrid_options;  // all features on
      c.scheduler = std::make_unique<sched::HybridScheduler>(hybrid_options);
      c.cache = legacy_make_cache(model, info.cache_ratio,
                                  std::make_unique<cache::MrsPolicy>());
      c.prefetcher = std::make_unique<core::ImpactDrivenPrefetcher>(
          core::ImpactDrivenPrefetcher::Params{}, hybrid_options);
      c.dynamic_cache_inserts = true;
      c.update_policy_scores = true;
      c.cache_maintenance = true;
      c.per_layer_overhead = kHybriMoeOverhead;
      break;
    }
    case Framework::KTransformers: {
      c.name = to_string(framework);
      c.scheduler = std::make_unique<sched::FixedMapScheduler>();
      c.cache = legacy_make_cache(model, info.cache_ratio,
                                  std::make_unique<cache::LfuPolicy>());
      c.prefetcher = nullptr;
      c.dynamic_cache_inserts = false;  // static placement
      c.update_policy_scores = false;
      c.cache_maintenance = false;
      c.per_layer_overhead = kKTransOverhead;
      pin_seed = true;
      break;
    }
    case Framework::AdapMoE: {
      c.name = to_string(framework);
      c.scheduler = std::make_unique<sched::GpuCentricScheduler>();
      c.cache = legacy_make_cache(model, info.cache_ratio,
                                  std::make_unique<cache::LruPolicy>());
      c.prefetcher = std::make_unique<core::NextLayerTopPrefetcher>();
      c.dynamic_cache_inserts = true;
      c.update_policy_scores = false;
      c.cache_maintenance = false;
      c.per_layer_overhead = kPythonOverhead;
      break;
    }
    case Framework::LlamaCpp: {
      c.name = to_string(framework);
      c.scheduler =
          std::make_unique<sched::StaticLayerScheduler>(model.num_layers, info.cache_ratio);
      // llama.cpp has no expert cache; residency is the static layer split.
      c.cache = std::make_unique<cache::ExpertCache>(0, std::make_unique<cache::LruPolicy>());
      c.prefetcher = nullptr;
      c.dynamic_cache_inserts = false;
      c.update_policy_scores = false;
      c.cache_maintenance = false;
      c.per_layer_overhead = kLlamaCppOverhead;
      break;
    }
    case Framework::OnDemand: {
      c.name = to_string(framework);
      c.scheduler = std::make_unique<sched::GpuCentricScheduler>();
      c.cache = legacy_make_cache(model, info.cache_ratio,
                                  std::make_unique<cache::LruPolicy>());
      c.prefetcher = nullptr;
      c.dynamic_cache_inserts = true;
      c.update_policy_scores = false;
      c.cache_maintenance = false;
      c.per_layer_overhead = kPythonOverhead;
      break;
    }
  }

  c.execution_mode = info.execution_mode;
  c.executor = info.executor;
  auto engine = std::make_unique<OffloadEngine>(std::move(c), costs);
  if (framework != Framework::LlamaCpp) legacy_seed_from_warmup(*engine, info, pin_seed);
  return engine;
}

std::unique_ptr<OffloadEngine> legacy_make_ablation_engine(
    const core::HybriMoeConfig& config, const hw::CostModel& costs,
    const EngineBuildInfo& info) {
  const moe::ModelConfig& model = costs.model();
  EngineComponents c;
  c.name = config.label();
  // Fixed baseline-level dispatch overhead across all ablation variants: the
  // ablation isolates the three techniques, not the C++ reimplementation.
  c.per_layer_overhead = kKTransOverhead;

  sched::SimOptions hybrid_options;
  if (config.hybrid_scheduling) {
    c.scheduler = std::make_unique<sched::HybridScheduler>(hybrid_options);
  } else {
    c.scheduler = std::make_unique<sched::FixedMapScheduler>();
  }

  bool pin_seed;
  if (config.score_aware_caching) {
    c.cache = legacy_make_cache(model, info.cache_ratio,
                                std::make_unique<cache::MrsPolicy>(config.mrs));
    c.dynamic_cache_inserts = true;
    c.update_policy_scores = true;
    c.cache_maintenance = true;
    pin_seed = false;
  } else {
    c.cache = legacy_make_cache(model, info.cache_ratio,
                                std::make_unique<cache::LfuPolicy>());
    c.dynamic_cache_inserts = config.hybrid_scheduling || config.impact_prefetching;
    c.update_policy_scores = false;
    c.cache_maintenance = false;
    pin_seed = !c.dynamic_cache_inserts;
  }

  if (config.impact_prefetching) {
    const sched::SimOptions impact = config.hybrid_scheduling
                                         ? hybrid_options
                                         : c.scheduler->impact_options();
    c.prefetcher =
        std::make_unique<core::ImpactDrivenPrefetcher>(config.prefetch, impact);
  }

  c.execution_mode = info.execution_mode;
  c.executor = info.executor;
  auto engine = std::make_unique<OffloadEngine>(std::move(c), costs);
  legacy_seed_from_warmup(*engine, info, pin_seed);
  return engine;
}

// ---------------------------------------------------------------------------
// Bitwise comparison of everything an engine run reports.
// ---------------------------------------------------------------------------

void expect_identical(const StageMetrics& legacy, const StageMetrics& spec,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(legacy.stage, spec.stage);
  EXPECT_EQ(legacy.tokens, spec.tokens);
  EXPECT_EQ(legacy.total_latency, spec.total_latency);  // bitwise, no tolerance
  EXPECT_EQ(legacy.per_forward, spec.per_forward);
  EXPECT_EQ(legacy.attention_time, spec.attention_time);
  EXPECT_EQ(legacy.shared_time, spec.shared_time);
  EXPECT_EQ(legacy.moe_time, spec.moe_time);
  EXPECT_EQ(legacy.cpu_busy, spec.cpu_busy);
  EXPECT_EQ(legacy.gpu_busy, spec.gpu_busy);
  EXPECT_EQ(legacy.pcie_busy, spec.pcie_busy);
  EXPECT_EQ(legacy.cache.hits, spec.cache.hits);
  EXPECT_EQ(legacy.cache.misses, spec.cache.misses);
  EXPECT_EQ(legacy.transfers, spec.transfers);
  EXPECT_EQ(legacy.prefetches, spec.prefetches);
  EXPECT_EQ(legacy.maintenance, spec.maintenance);
  EXPECT_EQ(legacy.exec_digest, spec.exec_digest);
}

#if defined(__SANITIZE_THREAD__)
#define HYBRIMOE_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HYBRIMOE_TEST_TSAN 1
#endif
#endif
#if defined(HYBRIMOE_TEST_TSAN)
constexpr double kExecScale = 3e-3;
#else
constexpr double kExecScale = 3e-4;
#endif

class PresetEquivalenceTest : public ::testing::Test {
 protected:
  PresetEquivalenceTest()
      : model_(moe::ModelConfig::tiny(4, 8, 2)),
        costs_(hw::MachineProfile::unit_test_machine(), model_) {
    info_.cache_ratio = 0.25;
    info_.seed = 17;
    info_.warmup_frequencies.assign(model_.num_layers,
                                    std::vector<double>(model_.num_routed_experts));
    for (std::size_t l = 0; l < info_.warmup_frequencies.size(); ++l)
      for (std::size_t e = 0; e < info_.warmup_frequencies[l].size(); ++e)
        info_.warmup_frequencies[l][e] = static_cast<double>((e * 7 + l) % 11);

    workload::TraceGenParams params;
    params.seed = 29;
    workload::TraceGenerator gen(model_, params);
    prefill_ = std::make_unique<workload::PrefillTrace>(gen.generate_prefill(24));
    decode_ = std::make_unique<workload::DecodeTrace>(gen.generate_decode(12));
  }

  moe::ModelConfig model_;
  hw::CostModel costs_;
  EngineBuildInfo info_;
  std::unique_ptr<workload::PrefillTrace> prefill_;
  std::unique_ptr<workload::DecodeTrace> decode_;
};

TEST_F(PresetEquivalenceTest, AllPresetsReproduceLegacyFactoryBitForBit) {
  for (const Framework framework : kAllFrameworks) {
    auto legacy = legacy_make_engine(framework, costs_, info_);
    auto spec = make_engine(preset_spec(framework), costs_, info_);
    EXPECT_EQ(legacy->name(), spec->name());
    EXPECT_EQ(legacy->cache().capacity(), spec->cache().capacity());
    expect_identical(legacy->run_prefill(*prefill_), spec->run_prefill(*prefill_),
                     std::string(to_string(framework)) + " prefill");
    expect_identical(legacy->run_decode(*decode_), spec->run_decode(*decode_),
                     std::string(to_string(framework)) + " decode");
  }
}

TEST_F(PresetEquivalenceTest, PresetsReproduceLegacyWithoutWarmup) {
  EngineBuildInfo no_warmup = info_;
  no_warmup.warmup_frequencies.clear();
  for (const Framework framework : kAllFrameworks) {
    auto legacy = legacy_make_engine(framework, costs_, no_warmup);
    auto spec = make_engine(preset_spec(framework), costs_, no_warmup);
    expect_identical(legacy->run_decode(*decode_), spec->run_decode(*decode_),
                     std::string(to_string(framework)) + " decode, no warmup");
  }
}

TEST_F(PresetEquivalenceTest, AblationVariantsReproduceLegacyBitForBit) {
  core::HybriMoeConfig tweaked = core::HybriMoeConfig::full();
  tweaked.mrs.alpha = 0.42;
  tweaked.prefetch.depth = 2;
  tweaked.prefetch.max_per_layer = 4;
  for (const auto& config :
       {core::HybriMoeConfig::baseline(), core::HybriMoeConfig::scheduling_only(),
        core::HybriMoeConfig::prefetching_only(), core::HybriMoeConfig::caching_only(),
        core::HybriMoeConfig::full(), tweaked}) {
    auto legacy = legacy_make_ablation_engine(config, costs_, info_);
    auto spec = make_engine(ablation_spec(config), costs_, info_);
    EXPECT_EQ(legacy->name(), spec->name());
    expect_identical(legacy->run_prefill(*prefill_), spec->run_prefill(*prefill_),
                     config.label() + " prefill");
    expect_identical(legacy->run_decode(*decode_), spec->run_decode(*decode_),
                     config.label() + " decode");
  }
}

TEST_F(PresetEquivalenceTest, SingleDeviceTopologyReproducesPresetsBitForBit) {
  // The acceptance bar of the multi-device generalization: a one-accelerator
  // hw::Topology must be *indistinguishable* from the historical
  // MachineProfile pair — same plans, same metrics, bit for bit — for every
  // preset, through the whole engine loop (caches, prefetcher, maintenance).
  const hw::CostModel topo_costs(
      hw::Topology::from_machine(hw::MachineProfile::unit_test_machine()), model_);
  for (const Framework framework : kAllFrameworks) {
    auto pair_engine = make_engine(preset_spec(framework), costs_, info_);
    auto topo_engine = make_engine(preset_spec(framework), topo_costs, info_);
    EXPECT_EQ(topo_engine->num_devices(), 1u);
    expect_identical(pair_engine->run_prefill(*prefill_),
                     topo_engine->run_prefill(*prefill_),
                     std::string(to_string(framework)) + " prefill (topology)");
    expect_identical(pair_engine->run_decode(*decode_),
                     topo_engine->run_decode(*decode_),
                     std::string(to_string(framework)) + " decode (topology)");
  }
}

TEST_F(PresetEquivalenceTest, SingleDeviceTopologyReproducesThreadedDigests) {
  exec::ExecOptions options;
  options.workers = 2;
  options.time_scale = kExecScale;
  info_.execution_mode = exec::ExecutionMode::Threaded;
  info_.executor = std::make_shared<exec::HybridExecutor>(options);

  const hw::CostModel topo_costs(
      hw::Topology::from_machine(hw::MachineProfile::unit_test_machine()), model_);
  for (const Framework framework : {Framework::HybriMoE, Framework::AdapMoE}) {
    SCOPED_TRACE(to_string(framework));
    auto pair_engine = make_engine(preset_spec(framework), costs_, info_);
    const auto pair_metrics = pair_engine->run_decode(*decode_);
    auto topo_engine = make_engine(preset_spec(framework), topo_costs, info_);
    const auto topo_metrics = topo_engine->run_decode(*decode_);
    EXPECT_NE(topo_metrics.exec_digest, 0U);
    EXPECT_EQ(pair_metrics.exec_digest, topo_metrics.exec_digest);
    EXPECT_EQ(pair_metrics.total_latency, topo_metrics.total_latency);
    EXPECT_EQ(pair_metrics.per_forward, topo_metrics.per_forward);
  }
}

TEST_F(PresetEquivalenceTest, MultiDeviceEngineDigestsMatchAcrossExecutionModes) {
  // Dual-accelerator engine, simulated-with-executor vs threaded: the device
  // assignment moves computation across lanes but must never change the
  // result (the digest) or any modeled metric.
  const hw::CostModel dual_costs(
      hw::Topology::replicated(hw::MachineProfile::unit_test_machine(), 2), model_);
  StackSpec spec = preset_spec(Framework::HybriMoE);

  exec::ExecOptions options;
  options.workers = 2;
  options.time_scale = kExecScale;

  EngineBuildInfo simulated = info_;
  simulated.execution_mode = exec::ExecutionMode::Simulated;
  simulated.executor = std::make_shared<exec::HybridExecutor>(options);
  auto sim_engine = make_engine(spec, dual_costs, simulated);
  EXPECT_EQ(sim_engine->num_devices(), 2u);
  const auto sim_metrics = sim_engine->run_decode(*decode_);

  EngineBuildInfo threaded = info_;
  threaded.execution_mode = exec::ExecutionMode::Threaded;
  threaded.executor = std::make_shared<exec::HybridExecutor>(options);
  auto thr_engine = make_engine(spec, dual_costs, threaded);
  const auto thr_metrics = thr_engine->run_decode(*decode_);

  EXPECT_NE(sim_metrics.exec_digest, 0U);
  EXPECT_EQ(sim_metrics.exec_digest, thr_metrics.exec_digest);
  EXPECT_EQ(sim_metrics.total_latency, thr_metrics.total_latency);
  EXPECT_EQ(sim_metrics.per_forward, thr_metrics.per_forward);
  EXPECT_GT(thr_metrics.measured_latency, 0.0);
}

TEST_F(PresetEquivalenceTest, ThreadedExecutionDigestsMatchLegacy) {
  exec::ExecOptions options;
  options.workers = 2;
  options.time_scale = kExecScale;
  // One shared executor: a shared deterministic weight store makes digests
  // comparable across engines; engines run strictly sequentially.
  info_.execution_mode = exec::ExecutionMode::Threaded;
  info_.executor = std::make_shared<exec::HybridExecutor>(options);

  for (const Framework framework : kAllFrameworks) {
    SCOPED_TRACE(to_string(framework));
    auto legacy = legacy_make_engine(framework, costs_, info_);
    const auto legacy_metrics = legacy->run_decode(*decode_);
    auto spec = make_engine(preset_spec(framework), costs_, info_);
    const auto spec_metrics = spec->run_decode(*decode_);
    // Wall clock (measured_latency) legitimately varies run to run; the
    // digest and every modeled metric must not.
    EXPECT_NE(spec_metrics.exec_digest, 0U);
    EXPECT_EQ(legacy_metrics.exec_digest, spec_metrics.exec_digest);
    EXPECT_EQ(legacy_metrics.total_latency, spec_metrics.total_latency);
    EXPECT_EQ(legacy_metrics.per_forward, spec_metrics.per_forward);
    EXPECT_GT(spec_metrics.measured_latency, 0.0);
  }
}

}  // namespace
}  // namespace hybrimoe::runtime
