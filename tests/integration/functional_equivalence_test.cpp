#include <gtest/gtest.h>

#include "hw/cost_model.hpp"
#include "kernels/ops.hpp"
#include "moe/moe_layer.hpp"
#include "sched/simulator.hpp"
#include "util/rng.hpp"

/// Functional equivalence: whatever partition a scheduler chooses, executing
/// the experts per that partition and recombining must reproduce the
/// reference single-device forward bit-for-bit (fp32) — scheduling decides
/// *where*, never *what*.

namespace hybrimoe {
namespace {

std::vector<float> random_input(util::Rng& rng, std::size_t dim) {
  std::vector<float> x(dim);
  for (float& v : x) v = static_cast<float>(rng.gaussian());
  return x;
}

/// Execute a plan against a functional layer: each task contributes its
/// expert's weighted output regardless of assigned device.
std::vector<float> execute_plan(const moe::MoeLayer& layer,
                                const sched::LayerPlan& plan,
                                const moe::TokenRouting& routing,
                                std::span<const float> x) {
  std::vector<float> y(x.size(), 0.0f);
  for (const auto& task : plan.tasks) {
    double weight = 0.0;
    for (std::size_t k = 0; k < routing.experts.size(); ++k)
      if (routing.experts[k] == task.expert.expert) weight = routing.weights[k];
    const auto out = layer.expert_output(task.expert.expert, x);
    for (std::size_t i = 0; i < y.size(); ++i)
      y[i] += static_cast<float>(weight) * out[i];
  }
  // Shared experts always execute on the GPU.
  const auto shared = layer.forward_with_routing(x, moe::TokenRouting{});
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += shared[i];
  return y;
}

class FunctionalEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FunctionalEquivalenceTest, SchedulerPartitionPreservesForward) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  constexpr std::size_t kExperts = 8;
  constexpr std::size_t kTopK = 3;
  constexpr std::size_t kDModel = 24;
  const moe::MoeLayer layer(rng, kExperts, kTopK, kDModel, 48, /*num_shared=*/1);
  const auto x = random_input(rng, kDModel);

  const auto routing = layer.route(x);
  const auto reference = layer.forward(x);

  const moe::ModelConfig model = moe::ModelConfig::tiny(1, kExperts, kTopK);
  const hw::CostModel costs(hw::MachineProfile::unit_test_machine(), model);

  // Random cached subset; try every scheduling option set.
  std::vector<sched::ExpertDemand> demands;
  for (const auto e : routing.experts)
    demands.push_back({static_cast<std::uint16_t>(e), 1, rng.bernoulli(0.5)});

  const sched::SimOptions option_sets[] = {
      {},                                                        // hybrid
      {.allow_transfers = false, .allow_cpu_steal = false},      // fixed map
      {.allow_cpu = false, .transfer_only_if_beneficial = false} // gpu centric
  };
  for (const auto& options : option_sets) {
    const auto plan = sched::simulate_layer(0, sched::Stage::Decode, demands,
                                            costs, options);
    ASSERT_TRUE(validate_plan(plan, demands).empty());
    const auto combined = execute_plan(layer, plan, routing, x);
    EXPECT_LT(kernels::max_abs_diff(reference, combined), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FunctionalEquivalenceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(FunctionalQuantizedTest, QuantizedPartitionMatchesQuantizedReference) {
  util::Rng rng(99);
  const moe::MoeLayer layer(rng, 8, 2, 32, 64, 1, /*quantized=*/true);
  const auto x = random_input(rng, 32);
  const auto routing = layer.route(x);
  const auto reference = layer.forward(x);

  const moe::ModelConfig model = moe::ModelConfig::tiny(1, 8, 2);
  const hw::CostModel costs(hw::MachineProfile::unit_test_machine(), model);
  std::vector<sched::ExpertDemand> demands;
  for (const auto e : routing.experts)
    demands.push_back({static_cast<std::uint16_t>(e), 1, e % 2 == 0});
  const auto plan = sched::simulate_layer(0, sched::Stage::Decode, demands, costs);
  const auto combined = execute_plan(layer, plan, routing, x);
  // Quantized path is still deterministic: same kernels on both "devices".
  EXPECT_LT(kernels::max_abs_diff(reference, combined), 1e-5);
}

}  // namespace
}  // namespace hybrimoe
