#include <gtest/gtest.h>

#include <memory>

#include "cache/classic_policies.hpp"
#include "cache/mrs_policy.hpp"
#include "runtime/session.hpp"

/// The paper-shape regression suite: the qualitative results of the
/// evaluation section, asserted end-to-end with reduced step counts. If one
/// of these fails after a change, the reproduction no longer tells the
/// paper's story.

namespace hybrimoe::runtime {
namespace {

ExperimentSpec spec_for(const moe::ModelConfig& model, double ratio) {
  ExperimentSpec spec;
  spec.model = model;
  spec.machine = hw::MachineProfile::a6000_xeon10();
  spec.cache_ratio = ratio;
  spec.trace.seed = 20250408;
  spec.warmup_steps = 32;
  return spec;
}

double replay_hit_rate(const workload::DecodeTrace& trace, const moe::ModelConfig& model,
                       cache::ExpertCache& cache, bool feed_scores) {
  for (const auto& step : trace.steps) {
    for (std::size_t l = 0; l < step.layers.size(); ++l) {
      const auto layer = static_cast<std::uint16_t>(l);
      if (feed_scores) cache.update_scores(layer, step.layers[l].scores, model.top_k);
      for (const auto e : step.layers[l].activated()) {
        const moe::ExpertId id{layer, static_cast<std::uint16_t>(e)};
        if (!cache.lookup(id)) (void)cache.insert(id);
      }
    }
  }
  return cache.stats().hit_rate();
}

// --- Fig. 7 / Fig. 8 headline orderings ----------------------------------

TEST(PaperShapesTest, HybriMoEWinsDecodeOnEveryModelAt25) {
  for (const auto& model : moe::paper_models()) {
    ExperimentHarness harness(spec_for(model, 0.25));
    const double ktrans = harness.run_decode(Framework::KTransformers, 24).tbt_mean();
    const double hybrimoe = harness.run_decode(Framework::HybriMoE, 24).tbt_mean();
    EXPECT_GT(ktrans / hybrimoe, 1.15) << model.name;  // paper: ~1.5-1.9
  }
}

TEST(PaperShapesTest, HybriMoEWinsPrefillOnEveryModelAt25) {
  for (const auto& model : moe::paper_models()) {
    ExperimentHarness harness(spec_for(model, 0.25));
    const double ktrans = harness.run_prefill(Framework::KTransformers, 128).ttft();
    const double hybrimoe = harness.run_prefill(Framework::HybriMoE, 128).ttft();
    EXPECT_GT(ktrans / hybrimoe, 1.05) << model.name;  // paper avg: 1.33
  }
}

TEST(PaperShapesTest, LlamaCppTerribleAtPrefillDecentAtDecode) {
  // "llama.cpp exhibits significantly higher prefill latency ... [but]
  // demonstrates relatively strong performance in [decode]" (§VI-B).
  ExperimentHarness qwen(spec_for(moe::ModelConfig::qwen2(), 0.5));
  const double llama_prefill = qwen.run_prefill(Framework::LlamaCpp, 128).ttft();
  const double ktrans_prefill = qwen.run_prefill(Framework::KTransformers, 128).ttft();
  EXPECT_GT(llama_prefill, 2.5 * ktrans_prefill);

  ExperimentHarness deepseek(spec_for(moe::ModelConfig::deepseek(), 0.5));
  const double llama_decode =
      deepseek.run_decode(Framework::LlamaCpp, 16).tbt_mean();
  const double ktrans_decode =
      deepseek.run_decode(Framework::KTransformers, 16).tbt_mean();
  EXPECT_LT(llama_decode, 2.0 * ktrans_decode);  // competitive, not 3x+ off
}

TEST(PaperShapesTest, AdapMoESuffersInDecodeAtLowCache) {
  // GPU-centric on-demand loading stalls on PCIe when the cache is small.
  ExperimentHarness harness(spec_for(moe::ModelConfig::mixtral(), 0.25));
  const double adap = harness.run_decode(Framework::AdapMoE, 16).tbt_mean();
  const double hybrimoe = harness.run_decode(Framework::HybriMoE, 16).tbt_mean();
  EXPECT_GT(adap, 1.5 * hybrimoe);
}

TEST(PaperShapesTest, SpeedupShrinksAsCacheGrows) {
  // Fig. 8: the HybriMoE advantage is largest at small cache ratios.
  const auto model = moe::ModelConfig::deepseek();
  auto speedup_at = [&](double ratio) {
    ExperimentHarness harness(spec_for(model, ratio));
    const double ktrans = harness.run_decode(Framework::KTransformers, 24).tbt_mean();
    const double hybrimoe = harness.run_decode(Framework::HybriMoE, 24).tbt_mean();
    return ktrans / hybrimoe;
  };
  EXPECT_GT(speedup_at(0.25), speedup_at(0.75) - 0.05);
}

// --- Table III ablation orderings -----------------------------------------

TEST(PaperShapesTest, AblationOrderingDecode) {
  ExperimentHarness harness(spec_for(moe::ModelConfig::qwen2(), 0.25));
  const double base =
      harness.run_decode(core::HybriMoeConfig::baseline(), 16).total_latency;
  const double sched =
      harness.run_decode(core::HybriMoeConfig::scheduling_only(), 16).total_latency;
  const double pref =
      harness.run_decode(core::HybriMoeConfig::prefetching_only(), 16).total_latency;
  const double cach =
      harness.run_decode(core::HybriMoeConfig::caching_only(), 16).total_latency;
  const double all = harness.run_decode(core::HybriMoeConfig::full(), 16).total_latency;

  // Every technique helps; scheduling is the largest single win; the full
  // system is fastest (paper Table III).
  EXPECT_LT(sched, base);
  EXPECT_LT(pref, base);
  EXPECT_LT(cach, base);
  EXPECT_LT(sched, pref);
  EXPECT_LT(sched, cach);
  EXPECT_LE(all, sched * 1.02);
}

TEST(PaperShapesTest, AblationOrderingPrefill) {
  ExperimentHarness harness(spec_for(moe::ModelConfig::qwen2(), 0.25));
  const double base =
      harness.run_prefill(core::HybriMoeConfig::baseline(), 128).total_latency;
  const double sched =
      harness.run_prefill(core::HybriMoeConfig::scheduling_only(), 128).total_latency;
  const double all =
      harness.run_prefill(core::HybriMoeConfig::full(), 128).total_latency;
  EXPECT_LT(sched, base);
  EXPECT_LE(all, base);
}

// --- Fig. 9 cache shapes ---------------------------------------------------

TEST(PaperShapesTest, MrsBeatsLruEverywhereGapNarrowsWithCapacity) {
  for (const auto& model : moe::paper_models()) {
    workload::TraceGenParams params;
    params.seed = 20250408;
    workload::TraceGenerator gen(model, params);
    const auto trace = gen.generate_decode(160);

    auto hit_rate = [&](double ratio, bool mrs) {
      const std::size_t capacity = cache::ExpertCache::capacity_for_ratio(model, ratio);
      std::unique_ptr<cache::CachePolicy> policy;
      if (mrs) {
        policy = std::make_unique<cache::MrsPolicy>();
      } else {
        policy = std::make_unique<cache::LruPolicy>();
      }
      cache::ExpertCache cache(capacity, std::move(policy));
      return replay_hit_rate(trace, model, cache, mrs);
    };

    const double gap_low = hit_rate(0.25, true) - hit_rate(0.25, false);
    const double gap_high = hit_rate(0.75, true) - hit_rate(0.75, false);
    EXPECT_GT(gap_low, 0.0) << model.name;
    EXPECT_GT(gap_high, -0.01) << model.name;
    EXPECT_GT(gap_low, gap_high - 0.01) << model.name;  // narrowing gap
  }
}

TEST(PaperShapesTest, HitRatesInPaperBand) {
  // Paper Fig. 9 at 25% capacity: LRU 30-48%, MRS 36-53%. Allow generous
  // bands — the shape, not the digit, is the target.
  const auto model = moe::ModelConfig::deepseek();
  workload::TraceGenParams params;
  params.seed = 20250408;
  workload::TraceGenerator gen(model, params);
  const auto trace = gen.generate_decode(160);
  const std::size_t capacity = cache::ExpertCache::capacity_for_ratio(model, 0.25);
  cache::ExpertCache lru(capacity, std::make_unique<cache::LruPolicy>());
  const double lru_rate = replay_hit_rate(trace, model, lru, false);
  EXPECT_GT(lru_rate, 0.30);
  EXPECT_LT(lru_rate, 0.60);
}

// --- Fig. 3 motivation shapes ----------------------------------------------

TEST(PaperShapesTest, NoSingleBaselineWinsEverywhere) {
  // Fig. 3(d): the best existing framework depends on the scenario.
  std::set<Framework> winners;
  struct Scenario {
    moe::ModelConfig model;
    bool prefill;
  };
  const Scenario scenarios[] = {
      {moe::ModelConfig::qwen2(), true},
      {moe::ModelConfig::mixtral(), false},
      {moe::ModelConfig::deepseek(), false},
  };
  for (const auto& sc : scenarios) {
    ExperimentHarness harness(spec_for(sc.model, 0.5));
    double best = 1e300;
    Framework winner = Framework::LlamaCpp;
    for (const auto fw : {Framework::LlamaCpp, Framework::AdapMoE,
                          Framework::KTransformers}) {
      const double latency = sc.prefill
                                 ? harness.run_prefill(fw, 64).ttft()
                                 : harness.run_decode(fw, 12).tbt_mean();
      if (latency < best) {
        best = latency;
        winner = fw;
      }
    }
    winners.insert(winner);
  }
  EXPECT_GE(winners.size(), 2U);  // at least two distinct winners
}

}  // namespace
}  // namespace hybrimoe::runtime
