#include <gtest/gtest.h>

#include "runtime/session.hpp"

/// End-to-end integration on the real paper models (small step counts to
/// stay fast): every framework completes both stages, metrics are coherent,
/// and the engines interact with cache/prefetch machinery as designed.

namespace hybrimoe::runtime {
namespace {

ExperimentSpec spec_for(const moe::ModelConfig& model, double ratio,
                        std::uint64_t seed = 1001) {
  ExperimentSpec spec;
  spec.model = model;
  spec.machine = hw::MachineProfile::a6000_xeon10();
  spec.cache_ratio = ratio;
  spec.trace.seed = seed;
  spec.warmup_steps = 16;
  return spec;
}

TEST(EndToEndTest, AllModelsAllFrameworksComplete) {
  for (const auto& model : moe::paper_models()) {
    ExperimentHarness harness(spec_for(model, 0.5));
    for (const auto fw : kPaperFrameworks) {
      const auto prefill = harness.run_prefill(fw, 32);
      const auto decode = harness.run_decode(fw, 8);
      EXPECT_GT(prefill.ttft(), 0.0) << model.name << " " << to_string(fw);
      EXPECT_GT(decode.tbt_mean(), 0.0) << model.name << " " << to_string(fw);
      EXPECT_LE(decode.cache.hit_rate(), 1.0);
    }
  }
}

TEST(EndToEndTest, HybriMoEUsesAllThreeMechanisms) {
  ExperimentHarness harness(spec_for(moe::ModelConfig::deepseek(), 0.25));
  const auto metrics = harness.run_decode(Framework::HybriMoE, 24);
  EXPECT_GT(metrics.prefetches, 0U);
  EXPECT_GT(metrics.maintenance, 0U);
  EXPECT_GT(metrics.cpu_busy, 0.0);
  EXPECT_GT(metrics.gpu_busy, 0.0);
  EXPECT_GT(metrics.pcie_busy, 0.0);
}

TEST(EndToEndTest, KTransformersNeverTouchesPcieInDecode) {
  ExperimentHarness harness(spec_for(moe::ModelConfig::deepseek(), 0.25));
  const auto metrics = harness.run_decode(Framework::KTransformers, 8);
  EXPECT_EQ(metrics.transfers, 0U);
  EXPECT_EQ(metrics.prefetches, 0U);
  EXPECT_EQ(metrics.maintenance, 0U);
  EXPECT_EQ(metrics.pcie_busy, 0.0);
}

TEST(EndToEndTest, AdapMoENeverUsesCpuForExperts) {
  ExperimentHarness harness(spec_for(moe::ModelConfig::deepseek(), 0.25));
  const auto metrics = harness.run_decode(Framework::AdapMoE, 8);
  EXPECT_EQ(metrics.cpu_busy, 0.0);
  EXPECT_GT(metrics.transfers, 0U);
}

TEST(EndToEndTest, LlamaCppBusySplitFollowsLayerMapping) {
  ExperimentHarness harness(spec_for(moe::ModelConfig::deepseek(), 0.5));
  const auto metrics = harness.run_decode(Framework::LlamaCpp, 8);
  EXPECT_GT(metrics.cpu_busy, 0.0);   // CPU layers
  EXPECT_GT(metrics.gpu_busy, 0.0);   // GPU layers + dense phases
  EXPECT_EQ(metrics.transfers, 0U);   // static mapping never moves weights
}

TEST(EndToEndTest, CacheRatioImprovesEveryCachingFramework) {
  for (const auto fw : {Framework::AdapMoE, Framework::KTransformers,
                        Framework::HybriMoE}) {
    ExperimentHarness low(spec_for(moe::ModelConfig::deepseek(), 0.25));
    ExperimentHarness high(spec_for(moe::ModelConfig::deepseek(), 0.75));
    const double tbt_low = low.run_decode(fw, 16).tbt_mean();
    const double tbt_high = high.run_decode(fw, 16).tbt_mean();
    EXPECT_LT(tbt_high, tbt_low) << to_string(fw);
  }
}

TEST(EndToEndTest, PrefillLatencyGrowsWithPromptLength) {
  ExperimentHarness harness(spec_for(moe::ModelConfig::qwen2(), 0.5));
  double prev = 0.0;
  for (const std::size_t tokens : {32UL, 128UL, 512UL}) {
    const double ttft = harness.run_prefill(Framework::HybriMoE, tokens).ttft();
    EXPECT_GT(ttft, prev);
    prev = ttft;
  }
}

TEST(EndToEndTest, MixtralHasNoSharedExpertTime) {
  ExperimentHarness harness(spec_for(moe::ModelConfig::mixtral(), 0.5));
  const auto metrics = harness.run_decode(Framework::HybriMoE, 4);
  EXPECT_EQ(metrics.shared_time, 0.0);
  ExperimentHarness ds(spec_for(moe::ModelConfig::deepseek(), 0.5));
  EXPECT_GT(ds.run_decode(Framework::HybriMoE, 4).shared_time, 0.0);
}

TEST(EndToEndTest, FailureInjectionExtremeRatios) {
  // Degenerate cache ratios must not crash any framework.
  for (const double ratio : {0.0, 1.0}) {
    ExperimentHarness harness(spec_for(moe::ModelConfig::deepseek(), ratio, 77));
    for (const auto fw : kPaperFrameworks) {
      EXPECT_GT(harness.run_decode(fw, 3).tbt_mean(), 0.0)
          << to_string(fw) << " ratio " << ratio;
    }
  }
}

TEST(EndToEndTest, FullyCachedDecodeHasAlmostNoMisses) {
  ExperimentHarness harness(spec_for(moe::ModelConfig::deepseek(), 1.0));
  const auto metrics = harness.run_decode(Framework::HybriMoE, 8);
  // Capacity covers every expert; after warmup seeding everything hits.
  EXPECT_GT(metrics.cache.hit_rate(), 0.95);
}

TEST(EndToEndTest, SingleLayerAndSingleStepEdgeCases) {
  ExperimentSpec spec;
  spec.model = moe::ModelConfig::tiny(1, 4, 1);
  spec.machine = hw::MachineProfile::unit_test_machine();
  spec.cache_ratio = 0.5;
  spec.trace.seed = 5;
  spec.warmup_steps = 2;
  ExperimentHarness harness(spec);
  for (const auto fw : kPaperFrameworks) {
    EXPECT_GT(harness.run_decode(fw, 1).tbt_mean(), 0.0) << to_string(fw);
    EXPECT_GT(harness.run_prefill(fw, 1).ttft(), 0.0) << to_string(fw);
  }
}

}  // namespace
}  // namespace hybrimoe::runtime
