#include "core/warmup.hpp"

#include <gtest/gtest.h>

namespace hybrimoe::core {
namespace {

TEST(HottestExpertsTest, OrdersByFrequencyWithDeterministicTies) {
  const std::vector<std::vector<double>> freq = {
      {5.0, 1.0, 3.0},
      {3.0, 7.0, 0.0},
  };
  const auto hottest = hottest_experts(freq, 3);
  ASSERT_EQ(hottest.size(), 3U);
  EXPECT_EQ(hottest[0], (moe::ExpertId{1, 1}));  // 7
  EXPECT_EQ(hottest[1], (moe::ExpertId{0, 0}));  // 5
  // Tie at 3.0 between (0,2) and (1,0): lower id first.
  EXPECT_EQ(hottest[2], (moe::ExpertId{0, 2}));
}

TEST(HottestExpertsTest, CountClamped) {
  const std::vector<std::vector<double>> freq = {{1.0, 2.0}};
  EXPECT_EQ(hottest_experts(freq, 10).size(), 2U);
  EXPECT_TRUE(hottest_experts(freq, 0).empty());
  EXPECT_TRUE(hottest_experts({}, 5).empty());
}

TEST(RunWarmupTest, ProducesCalibratedProfileAndFrequencies) {
  const auto model = moe::ModelConfig::deepseek();
  const hw::CostModel truth(hw::MachineProfile::a6000_xeon10(), model);
  workload::TraceGenParams params;
  params.seed = 55;
  workload::TraceGenerator generator(model, params);
  util::Rng rng(56);

  const auto result = run_warmup(truth, generator, 16, rng, 0.02);
  EXPECT_NO_THROW(result.fitted_machine.validate());
  ASSERT_EQ(result.expert_frequencies.size(), model.num_layers);

  // The fitted machine reproduces the ground-truth timings within tolerance.
  const hw::CostModel fitted(result.fitted_machine, model);
  EXPECT_NEAR(fitted.transfer_time(), truth.transfer_time(),
              truth.transfer_time() * 0.15);
  EXPECT_NEAR(fitted.cpu_expert_time(128), truth.cpu_expert_time(128),
              truth.cpu_expert_time(128) * 0.25);

  // Frequencies cover 16 steps x top_k activations per layer.
  for (const auto& layer : result.expert_frequencies) {
    double total = 0.0;
    for (const double f : layer) total += f;
    EXPECT_DOUBLE_EQ(total, 16.0 * static_cast<double>(model.top_k));
  }
}

TEST(RunWarmupTest, RejectsZeroSteps) {
  const auto model = moe::ModelConfig::tiny();
  const hw::CostModel truth(hw::MachineProfile::unit_test_machine(), model);
  workload::TraceGenParams params;
  workload::TraceGenerator generator(model, params);
  util::Rng rng(1);
  EXPECT_THROW((void)run_warmup(truth, generator, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::core
