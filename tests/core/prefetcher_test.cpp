#include "core/prefetcher.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "cache/classic_policies.hpp"

namespace hybrimoe::core {
namespace {

using moe::ExpertId;

/// Builds a two-layer forward trace with hand-written routing/predictions:
/// layer 1 will activate experts {0: load 8, 1: load 6}; the prediction seen
/// from layer 0 matches it exactly. Loads are large enough that caching
/// either expert shortens layer 1 under the unit cost model.
workload::ForwardTrace make_trace(std::size_t experts = 8) {
  workload::ForwardTrace trace;
  trace.tokens = 1;
  trace.layers.resize(2);
  trace.predictions.resize(2);
  for (auto& layer : trace.layers) {
    layer.loads.assign(experts, 0);
    layer.scores.assign(experts, 0.0f);
    layer.total_tokens = 1;
  }
  trace.layers[0].loads[2] = 1;
  trace.layers[0].scores[2] = 1.0f;
  trace.layers[1].loads[0] = 8;
  trace.layers[1].loads[1] = 6;
  trace.layers[1].scores[0] = 0.6f;
  trace.layers[1].scores[1] = 0.3f;
  trace.predictions[0].push_back(trace.layers[1]);  // perfect prediction
  return trace;
}

class PrefetcherTest : public ::testing::Test {
 protected:
  moe::ModelConfig model_ = moe::ModelConfig::tiny();
  hw::CostModel costs_{hw::MachineProfile::unit_test_machine(), model_};
  cache::ExpertCache cache_{4, std::make_unique<cache::LruPolicy>()};
};

TEST_F(PrefetcherTest, ParamsValidate) {
  ImpactDrivenPrefetcher::Params p;
  p.depth = 0;
  EXPECT_THROW((ImpactDrivenPrefetcher{p, sched::SimOptions{}}), std::invalid_argument);
  p = {};
  p.confidence_decay = 0.0;
  EXPECT_THROW((ImpactDrivenPrefetcher{p, sched::SimOptions{}}), std::invalid_argument);
  p = {};
  p.max_per_layer = 0;
  EXPECT_THROW((ImpactDrivenPrefetcher{p, sched::SimOptions{}}), std::invalid_argument);
}

TEST_F(PrefetcherTest, PicksHighestImpactExpert) {
  ImpactDrivenPrefetcher prefetcher;
  const auto trace = make_trace();
  // Budget for exactly one transfer (transfer == 3s on the unit machine).
  const auto decisions =
      prefetcher.plan(trace, 0, sched::Stage::Decode, cache_, costs_, 2.0);
  ASSERT_EQ(decisions.size(), 1U);
  // Expert (1,0) carries the larger load — caching it avoids the larger job.
  EXPECT_EQ(decisions[0].expert, (ExpertId{1, 0}));
  EXPECT_GT(decisions[0].impact, 0.0);
}

TEST_F(PrefetcherTest, BudgetLimitsDecisions) {
  ImpactDrivenPrefetcher prefetcher;
  const auto trace = make_trace();
  EXPECT_TRUE(
      prefetcher.plan(trace, 0, sched::Stage::Decode, cache_, costs_, 0.0).empty());
  EXPECT_TRUE(
      prefetcher.plan(trace, 0, sched::Stage::Decode, cache_, costs_, -1.0).empty());
  // A window of 4s allows two starts (0 and 3).
  const auto two =
      prefetcher.plan(trace, 0, sched::Stage::Decode, cache_, costs_, 4.0);
  EXPECT_EQ(two.size(), 2U);
}

TEST_F(PrefetcherTest, SkipsCachedAndTransientExperts) {
  ImpactDrivenPrefetcher prefetcher;
  const auto trace = make_trace();
  (void)cache_.insert({1, 0});
  auto decisions =
      prefetcher.plan(trace, 0, sched::Stage::Decode, cache_, costs_, 2.0);
  ASSERT_EQ(decisions.size(), 1U);
  EXPECT_EQ(decisions[0].expert, (ExpertId{1, 1}));  // next best

  std::unordered_set<ExpertId> transient{{ExpertId{1, 1}}};
  decisions = prefetcher.plan(trace, 0, sched::Stage::Decode, cache_, costs_, 2.0,
                              &transient);
  EXPECT_TRUE(decisions.empty());
}

TEST_F(PrefetcherTest, NoPredictionsNoDecisions) {
  ImpactDrivenPrefetcher prefetcher;
  auto trace = make_trace();
  trace.predictions[0].clear();
  EXPECT_TRUE(
      prefetcher.plan(trace, 0, sched::Stage::Decode, cache_, costs_, 10.0).empty());
  // Last layer has nothing ahead.
  EXPECT_TRUE(
      prefetcher.plan(trace, 1, sched::Stage::Decode, cache_, costs_, 10.0).empty());
}

TEST_F(PrefetcherTest, ZeroCapacityCacheNoDecisions) {
  cache::ExpertCache empty(0, std::make_unique<cache::LruPolicy>());
  ImpactDrivenPrefetcher prefetcher;
  const auto trace = make_trace();
  EXPECT_TRUE(
      prefetcher.plan(trace, 0, sched::Stage::Decode, empty, costs_, 10.0).empty());
}

TEST_F(PrefetcherTest, ConfidenceDecayPrefersNearLayers) {
  // Two target layers with identical predicted work: the near one wins.
  workload::ForwardTrace trace;
  trace.tokens = 1;
  trace.layers.resize(3);
  trace.predictions.resize(3);
  for (auto& layer : trace.layers) {
    layer.loads.assign(8, 0);
    layer.scores.assign(8, 0.0f);
    layer.total_tokens = 1;
  }
  trace.layers[1].loads[3] = 4;
  trace.layers[2].loads[5] = 4;
  trace.predictions[0].push_back(trace.layers[1]);
  trace.predictions[0].push_back(trace.layers[2]);

  ImpactDrivenPrefetcher::Params p;
  p.depth = 2;
  p.confidence_decay = 0.5;
  ImpactDrivenPrefetcher prefetcher(p, sched::SimOptions{});
  const auto decisions =
      prefetcher.plan(trace, 0, sched::Stage::Decode, cache_, costs_, 2.0);
  ASSERT_EQ(decisions.size(), 1U);
  EXPECT_EQ(decisions[0].expert, (ExpertId{1, 3}));
}

TEST_F(PrefetcherTest, MaxPerLayerCapRespected) {
  workload::ForwardTrace trace = make_trace();
  // Give layer 1 many activated experts.
  for (std::uint32_t e = 0; e < 8; ++e) trace.layers[1].loads[e] = 2;
  trace.predictions[0][0] = trace.layers[1];
  ImpactDrivenPrefetcher::Params p;
  p.max_per_layer = 3;
  ImpactDrivenPrefetcher prefetcher(p, sched::SimOptions{});
  const auto decisions =
      prefetcher.plan(trace, 0, sched::Stage::Decode, cache_, costs_, 1000.0);
  EXPECT_LE(decisions.size(), 3U);
}

TEST_F(PrefetcherTest, NextLayerTopRanksByScore) {
  NextLayerTopPrefetcher prefetcher;
  EXPECT_EQ(prefetcher.name(), "next-layer-top");
  const auto trace = make_trace();
  const auto decisions =
      prefetcher.plan(trace, 0, sched::Stage::Decode, cache_, costs_, 10.0);
  ASSERT_EQ(decisions.size(), 2U);
  EXPECT_EQ(decisions[0].expert, (ExpertId{1, 0}));  // score 0.6 first
  EXPECT_EQ(decisions[1].expert, (ExpertId{1, 1}));
}

TEST_F(PrefetcherTest, NextLayerTopSkipsResident) {
  NextLayerTopPrefetcher prefetcher;
  const auto trace = make_trace();
  (void)cache_.insert({1, 0});
  const auto decisions =
      prefetcher.plan(trace, 0, sched::Stage::Decode, cache_, costs_, 10.0);
  ASSERT_EQ(decisions.size(), 1U);
  EXPECT_EQ(decisions[0].expert, (ExpertId{1, 1}));
}

}  // namespace
}  // namespace hybrimoe::core
