#include "cache/expert_cache.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "cache/classic_policies.hpp"
#include "cache/mrs_policy.hpp"
#include "util/rng.hpp"

namespace hybrimoe::cache {
namespace {

using moe::ExpertId;

ExpertId id(std::uint16_t layer, std::uint16_t e) { return ExpertId{layer, e}; }

std::unique_ptr<ExpertCache> make_lru(std::size_t capacity) {
  return std::make_unique<ExpertCache>(capacity, std::make_unique<LruPolicy>());
}

TEST(ExpertCacheTest, RequiresPolicy) {
  EXPECT_THROW(ExpertCache(4, nullptr), std::invalid_argument);
}

TEST(ExpertCacheTest, CapacityForRatio) {
  const auto model = moe::ModelConfig::deepseek();  // 26 * 64 = 1664
  EXPECT_EQ(ExpertCache::capacity_for_ratio(model, 0.25), 416U);
  EXPECT_EQ(ExpertCache::capacity_for_ratio(model, 0.0), 0U);
  EXPECT_EQ(ExpertCache::capacity_for_ratio(model, 1.0), 1664U);
  EXPECT_THROW((void)ExpertCache::capacity_for_ratio(model, 1.5), std::invalid_argument);
}

TEST(ExpertCacheTest, LookupHitMiss) {
  auto cache = make_lru(2);
  EXPECT_FALSE(cache->lookup(id(0, 1)));
  (void)cache->insert(id(0, 1));
  EXPECT_TRUE(cache->lookup(id(0, 1)));
  EXPECT_EQ(cache->stats().hits, 1U);
  EXPECT_EQ(cache->stats().misses, 1U);
  EXPECT_NEAR(cache->stats().hit_rate(), 0.5, 1e-12);
}

TEST(ExpertCacheTest, CapacityNeverExceeded) {
  auto cache = make_lru(3);
  for (std::uint16_t e = 0; e < 20; ++e) {
    const auto r = cache->insert(id(0, e));
    EXPECT_TRUE(r.inserted);
    EXPECT_LE(cache->size(), 3U);
  }
  EXPECT_EQ(cache->stats().evictions, 17U);
}

TEST(ExpertCacheTest, InsertExistingIsIdempotent) {
  auto cache = make_lru(2);
  (void)cache->insert(id(0, 1));
  const auto r = cache->insert(id(0, 1));
  EXPECT_TRUE(r.inserted);
  EXPECT_FALSE(r.evicted.has_value());
  EXPECT_EQ(cache->size(), 1U);
}

TEST(ExpertCacheTest, ZeroCapacityRejectsEverything) {
  auto cache = make_lru(0);
  const auto r = cache->insert(id(0, 1));
  EXPECT_FALSE(r.inserted);
  EXPECT_EQ(cache->stats().rejected_insertions, 1U);
  EXPECT_FALSE(cache->lookup(id(0, 1)));
}

TEST(ExpertCacheTest, PinnedEntriesNeverEvicted) {
  auto cache = make_lru(2);
  cache->insert_pinned(id(0, 1));
  (void)cache->insert(id(0, 2));
  for (std::uint16_t e = 3; e < 10; ++e) (void)cache->insert(id(0, e));
  EXPECT_TRUE(cache->contains(id(0, 1)));
  EXPECT_TRUE(cache->is_pinned(id(0, 1)));
}

TEST(ExpertCacheTest, AllPinnedInsertFails) {
  auto cache = make_lru(2);
  cache->insert_pinned(id(0, 1));
  cache->insert_pinned(id(0, 2));
  const auto r = cache->insert(id(0, 3));
  EXPECT_FALSE(r.inserted);
  EXPECT_EQ(cache->stats().rejected_insertions, 1U);
  EXPECT_THROW(cache->insert_pinned(id(0, 4)), std::invalid_argument);
}

TEST(ExpertCacheTest, DoNotEvictProtection) {
  auto cache = make_lru(2);
  (void)cache->insert(id(0, 1));
  (void)cache->insert(id(0, 2));
  // Protect the LRU victim (0,1): eviction must take (0,2) instead.
  const std::vector<ExpertId> protected_ids{id(0, 1)};
  const auto r = cache->insert(id(0, 3), protected_ids);
  EXPECT_TRUE(r.inserted);
  ASSERT_TRUE(r.evicted.has_value());
  EXPECT_EQ(*r.evicted, id(0, 2));
  EXPECT_TRUE(cache->contains(id(0, 1)));
}

TEST(ExpertCacheTest, AllProtectedInsertFails) {
  auto cache = make_lru(1);
  (void)cache->insert(id(0, 1));
  const std::vector<ExpertId> protected_ids{id(0, 1)};
  const auto r = cache->insert(id(0, 2), protected_ids);
  EXPECT_FALSE(r.inserted);
  EXPECT_TRUE(cache->contains(id(0, 1)));
}

TEST(ExpertCacheTest, EraseRemovesAndNotifies) {
  auto cache = make_lru(2);
  (void)cache->insert(id(0, 1));
  EXPECT_TRUE(cache->erase(id(0, 1)));
  EXPECT_FALSE(cache->contains(id(0, 1)));
  EXPECT_FALSE(cache->erase(id(0, 1)));
}

TEST(ExpertCacheTest, ResidentsSortedAndComplete) {
  auto cache = make_lru(4);
  (void)cache->insert(id(1, 2));
  (void)cache->insert(id(0, 3));
  (void)cache->insert(id(1, 1));
  const auto residents = cache->residents();
  ASSERT_EQ(residents.size(), 3U);
  EXPECT_EQ(residents[0], id(0, 3));
  EXPECT_EQ(residents[1], id(1, 1));
  EXPECT_EQ(residents[2], id(1, 2));
}

TEST(ExpertCacheTest, PeekVictimMatchesPolicyWithoutEvicting) {
  auto cache = make_lru(2);
  (void)cache->insert(id(0, 1));
  (void)cache->insert(id(0, 2));
  const auto victim = cache->peek_victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, id(0, 1));  // oldest
  EXPECT_EQ(cache->size(), 2U);
}

TEST(ExpertCacheTest, PeekVictimEmptyWhenAllPinned) {
  auto cache = make_lru(1);
  cache->insert_pinned(id(0, 1));
  EXPECT_FALSE(cache->peek_victim().has_value());
}

TEST(ExpertCacheTest, StatsResetKeepsContents) {
  auto cache = make_lru(2);
  (void)cache->insert(id(0, 1));
  (void)cache->lookup(id(0, 1));
  cache->reset_stats();
  EXPECT_EQ(cache->stats().hits, 0U);
  EXPECT_TRUE(cache->contains(id(0, 1)));
}

TEST(ExpertCacheTest, UpdateScoresRoutesToPolicy) {
  ExpertCache cache(2, std::make_unique<MrsPolicy>());
  const std::vector<float> scores{0.9f, 0.1f};
  cache.update_scores(0, scores, 1);
  EXPECT_GT(cache.policy().priority(id(0, 0)), 0.0);
}

/// Property: under random workloads, invariants hold for every policy.
class CacheInvariantTest : public ::testing::TestWithParam<std::string> {
 protected:
  static std::unique_ptr<CachePolicy> make_policy(const std::string& name) {
    if (name == "LRU") return std::make_unique<LruPolicy>();
    if (name == "LFU") return std::make_unique<LfuPolicy>();
    if (name == "FIFO") return std::make_unique<FifoPolicy>();
    if (name == "Random") return std::make_unique<RandomPolicy>(1);
    return std::make_unique<MrsPolicy>();
  }
};

TEST_P(CacheInvariantTest, SizeBoundedAndStatsConsistent) {
  util::Rng rng(99);
  ExpertCache cache(8, make_policy(GetParam()));
  std::size_t lookups = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto key = id(static_cast<std::uint16_t>(rng.uniform_index(4)),
                        static_cast<std::uint16_t>(rng.uniform_index(16)));
    if (rng.bernoulli(0.1)) {
      const std::vector<float> scores(16, 0.0625f);
      cache.update_scores(key.layer, scores, 4);
      continue;
    }
    ++lookups;
    if (!cache.lookup(key)) (void)cache.insert(key);
    ASSERT_LE(cache.size(), 8U);
  }
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, lookups);
  EXPECT_EQ(cache.size(), cache.residents().size());
  EXPECT_GE(cache.stats().insertions, cache.stats().evictions);
}

INSTANTIATE_TEST_SUITE_P(Policies, CacheInvariantTest,
                         ::testing::Values("LRU", "LFU", "FIFO", "Random", "MRS"));

}  // namespace
}  // namespace hybrimoe::cache
