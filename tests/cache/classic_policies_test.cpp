#include "cache/classic_policies.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "cache/expert_cache.hpp"

namespace hybrimoe::cache {
namespace {

using moe::ExpertId;

ExpertId id(std::uint16_t e) { return ExpertId{0, e}; }

TEST(LruPolicyTest, EvictsOldestAccess) {
  LruPolicy lru;
  lru.on_insert(id(1));
  lru.on_insert(id(2));
  lru.on_insert(id(3));
  lru.on_hit(id(1));  // 2 is now the oldest
  const std::vector<ExpertId> candidates{id(1), id(2), id(3)};
  EXPECT_EQ(lru.choose_victim(candidates), id(2));
}

TEST(LruPolicyTest, PriorityTracksRecency) {
  LruPolicy lru;
  lru.on_insert(id(1));
  lru.on_insert(id(2));
  EXPECT_GT(lru.priority(id(2)), lru.priority(id(1)));
  lru.on_hit(id(1));
  EXPECT_GT(lru.priority(id(1)), lru.priority(id(2)));
}

TEST(LfuPolicyTest, EvictsLeastFrequent) {
  LfuPolicy lfu;
  lfu.on_insert(id(1));
  lfu.on_insert(id(2));
  lfu.on_hit(id(1));
  lfu.on_hit(id(1));
  lfu.on_hit(id(2));
  const std::vector<ExpertId> candidates{id(1), id(2)};
  EXPECT_EQ(lfu.choose_victim(candidates), id(2));
  EXPECT_GT(lfu.priority(id(1)), lfu.priority(id(2)));
}

TEST(LfuPolicyTest, FrequencyPersistsAcrossResidency) {
  LfuPolicy lfu;
  lfu.on_insert(id(1));
  lfu.on_hit(id(1));
  lfu.on_evict(id(1));
  lfu.on_insert(id(1));  // frequency counter keeps history
  lfu.on_insert(id(2));
  const std::vector<ExpertId> candidates{id(1), id(2)};
  EXPECT_EQ(lfu.choose_victim(candidates), id(2));
}

TEST(LfuPolicyTest, TieBreaksByRecency) {
  LfuPolicy lfu;
  lfu.on_insert(id(1));
  lfu.on_insert(id(2));  // equal counts; 1 is older
  const std::vector<ExpertId> candidates{id(1), id(2)};
  EXPECT_EQ(lfu.choose_victim(candidates), id(1));
}

TEST(FifoPolicyTest, EvictsInInsertionOrderIgnoringHits) {
  FifoPolicy fifo;
  fifo.on_insert(id(1));
  fifo.on_insert(id(2));
  fifo.on_hit(id(1));  // must not refresh
  const std::vector<ExpertId> candidates{id(1), id(2)};
  EXPECT_EQ(fifo.choose_victim(candidates), id(1));
}

TEST(RandomPolicyTest, DeterministicForSeedAndWithinCandidates) {
  RandomPolicy a(9);
  RandomPolicy b(9);
  const std::vector<ExpertId> candidates{id(1), id(2), id(3), id(4)};
  for (int i = 0; i < 20; ++i) {
    const auto va = a.choose_victim(candidates);
    EXPECT_EQ(va, b.choose_victim(candidates));
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), va), candidates.end());
  }
}

TEST(BeladyPolicyTest, EvictsFarthestNextUse) {
  // Reference string: 1 2 3 1 2 3 ... expert 3 used last after position 2.
  const std::vector<ExpertId> refs{id(1), id(2), id(3), id(1), id(2), id(3)};
  BeladyPolicy belady(refs);
  belady.on_reference(id(1));
  belady.on_reference(id(2));
  belady.on_reference(id(3));
  // Next uses now: 1 -> pos3, 2 -> pos4, 3 -> pos5.
  const std::vector<ExpertId> candidates{id(1), id(2), id(3)};
  EXPECT_EQ(belady.choose_victim(candidates), id(3));
}

TEST(BeladyPolicyTest, NeverUsedAgainEvictedFirst) {
  const std::vector<ExpertId> refs{id(1), id(2), id(1)};
  BeladyPolicy belady(refs);
  belady.on_reference(id(1));
  belady.on_reference(id(2));
  const std::vector<ExpertId> candidates{id(1), id(2)};
  EXPECT_EQ(belady.choose_victim(candidates), id(2));  // 2 never recurs
}

TEST(BeladyPolicyTest, DivergingStreamThrows) {
  const std::vector<ExpertId> refs{id(1), id(2)};
  BeladyPolicy belady(refs);
  belady.on_reference(id(1));
  EXPECT_THROW(belady.on_reference(id(3)), std::invalid_argument);
}

TEST(PolicyTest, EmptyCandidatesThrowEverywhere) {
  const std::vector<ExpertId> empty;
  LruPolicy lru;
  EXPECT_THROW((void)lru.choose_victim(empty), std::invalid_argument);
  LfuPolicy lfu;
  EXPECT_THROW((void)lfu.choose_victim(empty), std::invalid_argument);
  FifoPolicy fifo;
  EXPECT_THROW((void)fifo.choose_victim(empty), std::invalid_argument);
  RandomPolicy rnd;
  EXPECT_THROW((void)rnd.choose_victim(empty), std::invalid_argument);
  BeladyPolicy belady({});
  EXPECT_THROW((void)belady.choose_victim(empty), std::invalid_argument);
}

/// Belady is optimal: on any reference string its hit rate is >= LRU's.
/// (Classic result; checked empirically on deterministic pseudo-random
/// strings across several capacities.)
class BeladyOptimalityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BeladyOptimalityTest, BeatsOrMatchesLru) {
  const std::size_t capacity = GetParam();
  util::Rng rng(capacity * 7919);
  std::vector<ExpertId> refs;
  for (int i = 0; i < 2000; ++i)
    refs.push_back(id(static_cast<std::uint16_t>(rng.uniform_index(24))));

  auto run = [&](std::unique_ptr<CachePolicy> policy) {
    ExpertCache cache(capacity, std::move(policy));
    for (const auto& r : refs)
      if (!cache.lookup(r)) (void)cache.insert(r);
    return cache.stats().hit_rate();
  };
  const double lru = run(std::make_unique<LruPolicy>());
  const double belady = run(std::make_unique<BeladyPolicy>(refs));
  EXPECT_GE(belady, lru - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Capacities, BeladyOptimalityTest,
                         ::testing::Values(2, 4, 8, 12, 16, 20));

/// LRU is a stack algorithm: hit rate is monotone in capacity.
TEST(LruStackPropertyTest, HitRateMonotoneInCapacity) {
  util::Rng rng(4242);
  std::vector<ExpertId> refs;
  for (int i = 0; i < 3000; ++i)
    refs.push_back(id(static_cast<std::uint16_t>(rng.uniform_index(32))));
  double prev = -1.0;
  for (const std::size_t capacity : {2UL, 4UL, 8UL, 16UL, 24UL, 32UL}) {
    ExpertCache cache(capacity, std::make_unique<LruPolicy>());
    for (const auto& r : refs)
      if (!cache.lookup(r)) (void)cache.insert(r);
    const double rate = cache.stats().hit_rate();
    EXPECT_GE(rate, prev - 1e-12) << "capacity " << capacity;
    prev = rate;
  }
}

}  // namespace
}  // namespace hybrimoe::cache
