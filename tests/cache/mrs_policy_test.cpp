#include "cache/mrs_policy.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hybrimoe::cache {
namespace {

using moe::ExpertId;

TEST(MrsParamsTest, Validation) {
  MrsPolicy::Params p;
  p.alpha = 0.0;
  EXPECT_THROW(MrsPolicy{p}, std::invalid_argument);
  p.alpha = 1.1;
  EXPECT_THROW(MrsPolicy{p}, std::invalid_argument);
  p = {};
  p.top_p_factor = 0;
  EXPECT_THROW(MrsPolicy{p}, std::invalid_argument);
  EXPECT_NO_THROW(MrsPolicy{MrsPolicy::Params{}});
}

TEST(MrsPolicyTest, Eq3UpdateMath) {
  MrsPolicy::Params p;
  p.alpha = 0.5;
  p.top_p_factor = 2;  // with top_k = 1 -> p = 2
  MrsPolicy mrs(p);
  const std::vector<float> scores{0.6f, 0.3f, 0.1f};
  mrs.on_scores(0, scores, /*top_k=*/1);
  // Top-2 kept: experts 0 and 1; expert 2 zeroed.
  EXPECT_NEAR(mrs.score({0, 0}), 0.5 * 0.6, 1e-6);
  EXPECT_NEAR(mrs.score({0, 1}), 0.5 * 0.3, 1e-6);
  EXPECT_NEAR(mrs.score({0, 2}), 0.0, 1e-9);
  // Second iteration with different scores: EMA decay applies everywhere.
  const std::vector<float> scores2{0.1f, 0.6f, 0.3f};
  mrs.on_scores(0, scores2, 1);
  EXPECT_NEAR(mrs.score({0, 0}), 0.5 * 0.0 + 0.5 * 0.30, 1e-6);  // dropped out of top-p
  EXPECT_NEAR(mrs.score({0, 1}), 0.5 * 0.6 + 0.5 * 0.15, 1e-6);
  EXPECT_NEAR(mrs.score({0, 2}), 0.5 * 0.3 + 0.5 * 0.0, 1e-6);
}

TEST(MrsPolicyTest, TopPKeepsExactlyPEntriesUnderTies) {
  MrsPolicy::Params p;
  p.alpha = 1.0;  // S == TopP(s)
  p.top_p_factor = 1;
  MrsPolicy mrs(p);
  // Four equal scores, top_k = 2 -> p = 2: exactly two keep their score.
  const std::vector<float> scores{0.25f, 0.25f, 0.25f, 0.25f};
  mrs.on_scores(3, scores, 2);
  int kept = 0;
  for (std::uint16_t e = 0; e < 4; ++e)
    if (mrs.score({3, e}) > 0.0) ++kept;
  EXPECT_EQ(kept, 2);
  // Ties admitted in index order.
  EXPECT_GT(mrs.score({3, 0}), 0.0);
  EXPECT_GT(mrs.score({3, 1}), 0.0);
}

TEST(MrsPolicyTest, MixedTiesAboveThresholdAllKept) {
  MrsPolicy::Params p;
  p.alpha = 1.0;
  p.top_p_factor = 1;
  MrsPolicy mrs(p);
  // p = 2; one strictly-greater entry late in the array plus two ties.
  const std::vector<float> scores{0.3f, 0.3f, 0.9f};
  mrs.on_scores(0, scores, 2);
  EXPECT_GT(mrs.score({0, 2}), 0.0);  // strictly above threshold always kept
  const int kept = (mrs.score({0, 0}) > 0.0) + (mrs.score({0, 1}) > 0.0) +
                   (mrs.score({0, 2}) > 0.0);
  EXPECT_EQ(kept, 2);
}

TEST(MrsPolicyTest, VictimIsMinimumScore) {
  MrsPolicy mrs;
  const std::vector<float> scores{0.5f, 0.3f, 0.15f, 0.05f};
  mrs.on_scores(0, scores, 1);  // p = 2: experts 0,1 scored; 2,3 zero
  const std::vector<ExpertId> candidates{{0, 0}, {0, 1}, {0, 2}};
  EXPECT_EQ(mrs.choose_victim(candidates), (ExpertId{0, 2}));
  const std::vector<ExpertId> top_two{{0, 0}, {0, 1}};
  EXPECT_EQ(mrs.choose_victim(top_two), (ExpertId{0, 1}));
}

TEST(MrsPolicyTest, ScoresAreLayerLocal) {
  MrsPolicy mrs;
  const std::vector<float> scores{0.9f, 0.1f};
  mrs.on_scores(2, scores, 1);
  EXPECT_GT(mrs.score({2, 0}), 0.0);
  EXPECT_EQ(mrs.score({3, 0}), 0.0);  // other layer untouched
}

TEST(MrsPolicyTest, UnseenExpertScoresZero) {
  MrsPolicy mrs;
  EXPECT_EQ(mrs.score({7, 7}), 0.0);
  EXPECT_EQ(mrs.priority({7, 7}), 0.0);
}

TEST(MrsPolicyTest, HighScoreNotActivatedStillRetained) {
  // The paper's key observation: an expert with a high score that was NOT
  // activated should outrank a low-score expert that was. MRS sees scores,
  // not activations, so this falls out of Eq. 3.
  MrsPolicy mrs;
  // top_k = 2, p = 4. Expert 2 scores just below the activation cut
  // repeatedly; expert 3 scores low.
  const std::vector<float> scores{0.4f, 0.3f, 0.25f, 0.05f};
  for (int i = 0; i < 5; ++i) mrs.on_scores(0, scores, 2);
  EXPECT_GT(mrs.score({0, 2}), mrs.score({0, 3}));
  const std::vector<ExpertId> candidates{{0, 2}, {0, 3}};
  EXPECT_EQ(mrs.choose_victim(candidates), (ExpertId{0, 3}));
}

TEST(MrsPolicyTest, AlphaControlsMemoryLength) {
  MrsPolicy::Params fast;
  fast.alpha = 0.9;
  MrsPolicy::Params slow;
  slow.alpha = 0.1;
  MrsPolicy mrs_fast(fast);
  MrsPolicy mrs_slow(slow);
  const std::vector<float> high{0.9f, 0.1f};
  const std::vector<float> low{0.1f, 0.9f};
  mrs_fast.on_scores(0, high, 1);
  mrs_slow.on_scores(0, high, 1);
  mrs_fast.on_scores(0, low, 1);
  mrs_slow.on_scores(0, low, 1);
  // After the flip, the fast policy forgot expert 0's history more.
  EXPECT_LT(mrs_fast.score({0, 0}) / mrs_fast.score({0, 1}),
            mrs_slow.score({0, 0}) / mrs_slow.score({0, 1}));
}

TEST(MrsPolicyTest, OnScoresValidatesTopK) {
  MrsPolicy mrs;
  const std::vector<float> scores{0.5f, 0.5f};
  EXPECT_THROW(mrs.on_scores(0, scores, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hybrimoe::cache
