/// \file ablation_design.cpp
/// Design-choice ablations beyond the paper's Table III — the knobs
/// DESIGN.md calls out:
///   1. MRS parameter sensitivity: EMA coefficient alpha and the TopP factor
///      (the paper fixes p = 2*top_k; we sweep it);
///   2. prefetch lookahead depth 0..4 (the paper uses 3);
///   3. replacement-policy zoo on the end-to-end engine, including the
///      Belady oracle replayed offline as an upper bound;
///   4. beneficial-transfer check on/off (naive PCIe priority vs simulated);
///   5. greedy scheduling optimality gap vs the exact exhaustive optimum.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "cache/classic_policies.hpp"
#include "cache/mrs_policy.hpp"
#include "core/warmup.hpp"
#include "sched/optimal.hpp"

namespace {

using namespace hybrimoe;
using namespace hybrimoe::bench;

double replay_hit_rate(const workload::DecodeTrace& trace, const moe::ModelConfig& model,
                       cache::ExpertCache& cache, bool feed_scores) {
  for (const auto& step : trace.steps) {
    for (std::size_t l = 0; l < step.layers.size(); ++l) {
      const auto layer = static_cast<std::uint16_t>(l);
      if (feed_scores) cache.update_scores(layer, step.layers[l].scores, model.top_k);
      for (const auto e : step.layers[l].activated()) {
        const moe::ExpertId id{layer, static_cast<std::uint16_t>(e)};
        if (!cache.lookup(id)) (void)cache.insert(id);
      }
    }
  }
  return cache.stats().hit_rate();
}

}  // namespace

int main() {
  const auto model = moe::ModelConfig::deepseek();
  constexpr double kRatio = 0.25;
  constexpr std::size_t kSteps = 256;

  // ------------------------------------------------------------- (1) MRS
  print_header("MRS parameter sensitivity (DeepSeek @ 25%, replay hit rate %)",
               "DESIGN.md ablation 1 / paper Eq. 3 defaults");
  {
    workload::TraceGenParams params;
    params.seed = kBenchSeed;
    workload::TraceGenerator gen(model, params);
    const auto trace = gen.generate_decode(kSteps);
    const std::size_t capacity = cache::ExpertCache::capacity_for_ratio(model, kRatio);

    util::TextTable table("hit rate by alpha (rows) and top-p factor (cols)");
    table.set_headers({"alpha \\ p/k", "1", "2 (paper)", "3", "4"});
    for (const double alpha : {0.1, 0.2, 0.3, 0.5, 0.8}) {
      table.begin_row().add_cell(util::format_double(alpha, 1));
      for (const std::size_t factor : {1UL, 2UL, 3UL, 4UL}) {
        cache::MrsPolicy::Params p;
        p.alpha = alpha;
        p.top_p_factor = factor;
        cache::ExpertCache cache(capacity, std::make_unique<cache::MrsPolicy>(p));
        table.add_cell(util::format_double(
            replay_hit_rate(trace, model, cache, true) * 100.0, 1));
      }
    }
    table.print(std::cout);
  }

  // -------------------------------------------------- (2) prefetch depth
  print_header("Prefetch lookahead depth (DeepSeek @ 25%, decode TBT)",
               "DESIGN.md ablation 2 / paper uses depth 3");
  {
    util::TextTable table("decode TBT by lookahead depth");
    table.set_headers({"depth", "TBT", "hit rate", "prefetches", "speedup vs depth 0"});
    double base_tbt = 0.0;
    for (const std::size_t depth : {0UL, 1UL, 2UL, 3UL, 4UL}) {
      auto spec = make_spec(model, kRatio);
      spec.trace.lookahead = std::max<std::size_t>(depth, 1);
      runtime::ExperimentHarness harness(spec);
      core::HybriMoeConfig config;  // full HybriMoE
      config.prefetch.depth = std::max<std::size_t>(depth, 1);
      if (depth == 0) config.impact_prefetching = false;
      const auto metrics = harness.run_decode(config, kDecodeSteps);
      const double tbt = metrics.tbt_mean();
      if (depth == 0) base_tbt = tbt;
      table.begin_row()
          .add_cell(std::to_string(depth))
          .add_cell(util::format_seconds(tbt))
          .add_cell(util::format_double(metrics.cache.hit_rate() * 100.0, 1) + "%")
          .add_cell(metrics.prefetches)
          .add_cell(util::format_speedup(base_tbt / tbt));
    }
    table.print(std::cout);
  }

  // ------------------------------------------------------ (3) policy zoo
  print_header("Replacement-policy zoo (DeepSeek @ 25%, replay hit rate %)",
               "DESIGN.md ablation 3");
  {
    workload::TraceGenParams params;
    params.seed = kBenchSeed ^ 0xF00D;
    workload::TraceGenerator gen(model, params);
    const auto trace = gen.generate_decode(kSteps);
    const std::size_t capacity = cache::ExpertCache::capacity_for_ratio(model, kRatio);

    // Flatten the reference string for the Belady oracle.
    std::vector<moe::ExpertId> refs;
    for (const auto& step : trace.steps)
      for (std::size_t l = 0; l < step.layers.size(); ++l)
        for (const auto e : step.layers[l].activated())
          refs.push_back({static_cast<std::uint16_t>(l), static_cast<std::uint16_t>(e)});

    util::TextTable table("policies at 25% capacity");
    table.set_headers({"policy", "hit rate (%)", "of Belady"});
    struct Row {
      std::string name;
      std::unique_ptr<cache::CachePolicy> policy;
      bool scores;
    };
    std::vector<Row> rows;
    rows.push_back({"Random", std::make_unique<cache::RandomPolicy>(5), false});
    rows.push_back({"FIFO", std::make_unique<cache::FifoPolicy>(), false});
    rows.push_back({"LRU", std::make_unique<cache::LruPolicy>(), false});
    rows.push_back({"LFU", std::make_unique<cache::LfuPolicy>(), false});
    rows.push_back({"MRS", std::make_unique<cache::MrsPolicy>(), true});
    rows.push_back({"Belady", std::make_unique<cache::BeladyPolicy>(refs), false});

    double belady = 0.0;
    std::vector<std::pair<std::string, double>> results;
    for (auto& row : rows) {
      cache::ExpertCache cache(capacity, std::move(row.policy));
      const double rate = replay_hit_rate(trace, model, cache, row.scores);
      if (row.name == "Belady") belady = rate;
      results.emplace_back(row.name, rate);
    }
    for (const auto& [name, rate] : results) {
      table.begin_row()
          .add_cell(name)
          .add_cell(util::format_double(rate * 100.0, 1))
          .add_cell(util::format_double(rate / belady * 100.0, 0) + "%");
    }
    table.print(std::cout);
  }

  // ------------------------------- (4) beneficial-transfer check on/off
  print_header("Beneficial-transfer simulation vs naive PCIe priority",
               "DESIGN.md ablation 4 / §IV-B simulation phase");
  {
    util::TextTable table("decode TBT with and without the simulated commit check");
    table.set_headers({"model", "naive transfers", "simulated check", "gain"});
    for (const auto& m : moe::paper_models()) {
      runtime::ExperimentHarness harness(make_spec(m, kRatio));

      auto run_with = [&](bool check) {
        sched::SimOptions options;
        options.transfer_only_if_beneficial = check;
        runtime::EngineComponents c;
        c.name = check ? "checked" : "naive";
        c.scheduler = std::make_unique<sched::HybridScheduler>(options);
        c.cache = std::make_unique<cache::ExpertCache>(
            cache::ExpertCache::capacity_for_ratio(m, kRatio),
            std::make_unique<cache::MrsPolicy>());
        c.dynamic_cache_inserts = true;
        c.update_policy_scores = true;
        c.cache_maintenance = true;
        runtime::OffloadEngine engine(std::move(c), harness.costs());
        const auto hottest = core::hottest_experts(harness.warmup_frequencies(),
                                                   engine.cache().capacity());
        engine.seed_cache(hottest, /*pinned=*/false);
        return engine.run_decode(harness.decode_trace(kDecodeSteps)).tbt_mean();
      };
      const double naive = run_with(false);
      const double checked = run_with(true);
      table.begin_row()
          .add_cell(m.name)
          .add_cell(util::format_seconds(naive))
          .add_cell(util::format_seconds(checked))
          .add_cell(util::format_speedup(naive / checked));
    }
    table.print(std::cout);
    std::cout << "\nThe simulated commit check should never lose; it wins most where\n"
                 "CPU compute is cheaper than a transfer (small experts).\n";
  }

  // -------------------------------------- (5) greedy vs exact optimum
  print_header("Greedy scheduling optimality gap (decode layers, real cost model)",
               "DESIGN.md ablation 5 / §III Opportunity 2");
  {
    util::TextTable table("greedy makespan / exact optimum, per model");
    table.set_headers({"model", "layers sampled", "mean gap", "p95 gap", "max gap"});
    for (const auto& m : moe::paper_models()) {
      // Mixtral activates <= 8+ experts per decode layer; the 64-expert
      // models activate ~top_k (6-8): all within exhaustive reach.
      const hw::CostModel costs(hw::MachineProfile::a6000_xeon10(), m);
      workload::TraceGenParams params;
      params.seed = kBenchSeed ^ 0x0991;
      workload::TraceGenerator gen(m, params);
      const auto trace = gen.generate_decode(16);
      util::Rng cached_rng(3);

      std::vector<double> gaps;
      for (const auto& step : trace.steps) {
        for (std::size_t l = 0; l < step.layers.size(); ++l) {
          std::vector<sched::ExpertDemand> demands;
          for (const auto e : step.layers[l].activated())
            demands.push_back({static_cast<std::uint16_t>(e),
                               step.layers[l].loads[e], cached_rng.bernoulli(0.4)});
          if (demands.empty() || demands.size() > 12) continue;
          const double greedy =
              sched::simulate_layer(static_cast<std::uint16_t>(l),
                                    sched::Stage::Decode, demands, costs)
                  .makespan;
          const double optimal =
              sched::optimal_layer_schedule(demands, costs).makespan;
          gaps.push_back(greedy / optimal);
        }
      }
      table.begin_row()
          .add_cell(m.name)
          .add_cell(gaps.size())
          .add_cell(util::format_speedup(util::mean(gaps)))
          .add_cell(util::format_speedup(util::percentile(gaps, 95.0)))
          .add_cell(util::format_speedup(
              *std::max_element(gaps.begin(), gaps.end())));
    }
    table.print(std::cout);
    std::cout << "\nThe priority-rule greedy stays within a few percent of the exact\n"
                 "optimum — the quantitative backing for the paper's decision to\n"
                 "schedule with rules instead of search.\n";
  }

  return 0;
}
