/// \file priority_isolation.cpp
/// Tier-isolation bench: does VIP tail latency survive a best-effort flood?
/// Three serving runs on the same engine configuration:
///
///   1. baseline — VIP + standard foreground with a best-effort background,
///      priority admission + SLO-aware preemption on;
///   2. loaded   — identical foreground, best-effort load DOUBLED, same
///      serving policy;
///   3. fifo     — the loaded stream again but with plain FIFO admission and
///      no preemption (the counterfactual: what the tiers buy).
///
/// The machine-checked isolation invariant (also a CTest case, see
/// tests/scenario/invariants.hpp): loaded VIP p99 TBT <= 1.25x the baseline
/// VIP p99 TBT. Exit 1 on violation. Optional positional argument: path for
/// a machine-readable JSON summary (BENCH_priority_isolation.json in CI).

#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "workload/request_stream.hpp"

namespace {

using namespace hybrimoe;

/// Loaded-over-baseline VIP p99 TBT bound (the ISSUE's isolation criterion).
constexpr double kIsolationBound = 1.25;
/// Best-effort background size; the loaded run doubles it.
constexpr std::size_t kBackground = 6;

/// Deterministic tiered stream: a fixed VIP + standard foreground and a
/// best-effort background of `background` long-prompt requests. Hand-built
/// (not generate_request_stream) so the foreground is *identical* across
/// load levels — only the background grows.
std::vector<workload::RequestSpec> make_stream(std::size_t background) {
  std::vector<workload::RequestSpec> specs;
  std::uint64_t id = 0;
  auto add = [&](double arrival, std::size_t prompt, std::size_t decode,
                 workload::Priority priority) {
    workload::RequestSpec r;
    r.id = id++;
    r.arrival_time = arrival;
    r.prompt_tokens = prompt;
    r.decode_tokens = decode;
    r.priority = priority;
    specs.push_back(r);
  };
  // Foreground: short interactive VIP requests arriving while the flood is
  // still in flight (Tiny-model steps are sub-millisecond, so the whole run
  // plays out over tens of milliseconds), plus a standard mid-weight tier.
  for (std::size_t i = 0; i < 4; ++i)
    add(0.005 + 0.010 * static_cast<double>(i), 24, 16,
        workload::Priority::Vip);
  for (std::size_t i = 0; i < 4; ++i)
    add(0.008 + 0.010 * static_cast<double>(i), 32, 10,
        workload::Priority::Standard);
  // Background: a front-loaded burst of long best-effort prompts — they are
  // all queued before the first VIP arrives, so admission order (not just
  // arrival order) decides who waits.
  for (std::size_t i = 0; i < background; ++i)
    add(0.0002 * static_cast<double>(i), 96 + 16 * (i % 3), 8,
        workload::Priority::BestEffort);
  return specs;
}

runtime::ServeOptions tiered_options() {
  runtime::ServeOptions options;
  options.max_batch = 4;
  options.max_prefill_chunk = 16;  // preemption needs chunk boundaries
  options.priority_admission = true;
  options.preemption = true;
  options.tiers[workload::priority_index(workload::Priority::Vip)].tbt_slo =
      0.050;
  return options;
}

struct Row {
  std::string label;
  runtime::ServeMetrics::TailSummary vip_tbt;
  runtime::ServeMetrics::TailSummary vip_ttft;
  double throughput = 0.0;
  std::size_t finished = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hybrimoe::bench;

  const StackArgs args = parse_stack_args(
      argc, argv, std::array{runtime::Framework::HybriMoE});

  print_header("Priority-tier isolation (VIP tails under a best-effort flood)",
               "serving extension; tier-isolation invariant of the scenario "
               "suite");

  const auto model = moe::ModelConfig::tiny();
  runtime::ExperimentHarness harness(make_spec(model, 0.25));
  const runtime::StackSpec stack = args.stacks.front();
  const runtime::ServeOptions tiered = tiered_options();

  auto serve = [&](std::size_t background, const runtime::ServeOptions& opt) {
    return harness.serve(stack, make_stream(background), opt);
  };

  const auto baseline = serve(kBackground, tiered);
  const auto loaded = serve(2 * kBackground, tiered);
  runtime::ServeOptions fifo = tiered;
  fifo.priority_admission = false;
  fifo.preemption = false;
  const auto counterfactual = serve(2 * kBackground, fifo);

  const auto row_of = [](const std::string& label,
                         const runtime::ServeMetrics& m) {
    Row row;
    row.label = label;
    row.vip_tbt = m.tbt_tails(workload::Priority::Vip);
    row.vip_ttft = m.ttft_tails(workload::Priority::Vip);
    row.throughput = m.throughput();
    row.finished = m.finished_count();
    return row;
  };
  const std::vector<Row> rows{
      row_of("tiered, 1x best-effort", baseline),
      row_of("tiered, 2x best-effort", loaded),
      row_of("fifo,   2x best-effort", counterfactual),
  };

  util::TextTable table(model.name + " — " + stack.display_name() +
                        ", foreground 4 VIP + 4 standard, background " +
                        std::to_string(kBackground) + " -> " +
                        std::to_string(2 * kBackground) + " best-effort");
  table.set_headers({"run", "VIP p50/p99 TBT", "VIP p99 TTFT", "tok/s",
                     "finished"});
  for (const Row& row : rows) {
    table.begin_row()
        .add_cell(row.label)
        .add_cell(util::format_seconds(row.vip_tbt.p50) + " / " +
                  util::format_seconds(row.vip_tbt.p99))
        .add_cell(util::format_seconds(row.vip_ttft.p99))
        .add_cell(util::format_double(row.throughput, 1))
        .add_cell(std::to_string(row.finished));
  }
  table.print(std::cout);

  const double ratio = rows[1].vip_tbt.p99 / rows[0].vip_tbt.p99;
  const bool violated = ratio > kIsolationBound;
  std::cout << "\nVIP p99 TBT ratio (2x / 1x best-effort): "
            << util::format_double(ratio, 3) << " (bound "
            << util::format_double(kIsolationBound, 2) << ") — "
            << (violated ? "FAIL" : "ok") << "\n";

  if (!args.positional.empty()) {
    std::ofstream json(args.positional.front());
    util::JsonWriter w(json);
    w.field("bench").string("priority_isolation");
    w.field("model").string(model.name);
    w.field("stack").string(stack.display_name());
    w.field("isolation_bound").number(kIsolationBound);
    w.field("vip_p99_tbt_ratio").number(ratio);
    w.field("isolation_held").boolean(!violated);
    w.field("runs").begin_array();
    for (const Row& row : rows) {
      auto item = w.row();
      item.field("run").string(row.label);
      item.field("vip_tbt_p50_s").number(row.vip_tbt.p50);
      item.field("vip_tbt_p99_s").number(row.vip_tbt.p99);
      item.field("vip_ttft_p99_s").number(row.vip_ttft.p99);
      item.field("throughput_tok_s").number(row.throughput);
      item.field("finished").number(row.finished);
      item.close();
    }
    w.end_array();
    w.finish();
    std::cout << "Wrote " << args.positional.front() << "\n";
  }

  std::cout << "\nPriority admission + chunk-boundary preemption keep the VIP\n"
               "tail flat while the best-effort background doubles; the FIFO\n"
               "row shows the tail without tiers.\n";
  return violated ? 1 : 0;
}
