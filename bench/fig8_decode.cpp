/// \file fig8_decode.cpp
/// Reproduces Fig. 8: decode-stage TBT of the four frameworks on the three
/// models across cache ratios {25,50,75}%. The paper's headline is an
/// average 1.70x throughput improvement of HybriMoE over KTransformers; it
/// also notes llama.cpp is comparatively strong in this stage.
///
/// `--stacks` swaps the evaluated stacks for any preset/custom spec list
/// (the KTransformers reference is always computed); `--list-stacks` prints
/// what is available.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hybrimoe;
  using namespace hybrimoe::bench;

  const StackArgs args = parse_stack_args(argc, argv, runtime::kPaperFrameworks);

  print_header("Decode stage performance (TBT, seconds/token)", "paper Fig. 8");

  util::RunningStats hybrimoe_speedup;
  for (const auto& model : moe::paper_models()) {
    util::TextTable table(model.name + " — decode latency by cached expert ratio");
    std::vector<std::string> headers{"stack"};
    for (const double ratio : kCacheRatios)
      headers.push_back(pct(ratio) + " TBT / speedup / hit");
    table.set_headers(std::move(headers));

    // One harness per ratio, shared by all stacks (identical traces).
    std::vector<std::unique_ptr<runtime::ExperimentHarness>> harnesses;
    for (const double ratio : kCacheRatios)
      harnesses.push_back(
          std::make_unique<runtime::ExperimentHarness>(make_spec(model, ratio)));

    std::vector<double> ktrans_tbt;
    for (auto& harness : harnesses)
      ktrans_tbt.push_back(
          harness->run_decode(runtime::Framework::KTransformers, kDecodeSteps).tbt_mean());

    for (const auto& stack : args.stacks) {
      table.begin_row().add_cell(stack.display_name());
      for (std::size_t r = 0; r < kCacheRatios.size(); ++r) {
        const auto metrics = harnesses[r]->run_decode(stack, kDecodeSteps);
        const double speedup = ktrans_tbt[r] / metrics.tbt_mean();
        table.add_cell(util::format_seconds(metrics.tbt_mean()) + " / " +
                       util::format_speedup(speedup) + " / " +
                       util::format_double(metrics.cache.hit_rate() * 100.0, 1) + "%");
        if (stack.display_name() == runtime::to_string(runtime::Framework::HybriMoE))
          hybrimoe_speedup.add(speedup);
      }
    }
    table.print(std::cout);
  }

  if (hybrimoe_speedup.count() > 0)
    std::cout << "\nHybriMoE average decode speedup vs KTransformers: "
              << util::format_speedup(hybrimoe_speedup.mean())
              << "   (paper reports 1.70x)\n";
  return 0;
}
