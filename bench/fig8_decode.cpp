/// \file fig8_decode.cpp
/// Reproduces Fig. 8: decode-stage TBT of the four frameworks on the three
/// models across cache ratios {25,50,75}%. The paper's headline is an
/// average 1.70x throughput improvement of HybriMoE over KTransformers; it
/// also notes llama.cpp is comparatively strong in this stage.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace hybrimoe;
  using namespace hybrimoe::bench;

  print_header("Decode stage performance (TBT, seconds/token)", "paper Fig. 8");

  util::RunningStats hybrimoe_speedup;
  for (const auto& model : moe::paper_models()) {
    util::TextTable table(model.name + " — decode latency by cached expert ratio");
    std::vector<std::string> headers{"framework"};
    for (const double ratio : kCacheRatios)
      headers.push_back(pct(ratio) + " TBT / speedup / hit");
    table.set_headers(std::move(headers));

    // One harness per ratio, shared by all frameworks (identical traces).
    std::vector<std::unique_ptr<runtime::ExperimentHarness>> harnesses;
    for (const double ratio : kCacheRatios)
      harnesses.push_back(
          std::make_unique<runtime::ExperimentHarness>(make_spec(model, ratio)));

    std::vector<double> ktrans_tbt;
    for (auto& harness : harnesses)
      ktrans_tbt.push_back(
          harness->run_decode(runtime::Framework::KTransformers, kDecodeSteps).tbt_mean());

    for (const auto framework : runtime::kPaperFrameworks) {
      table.begin_row().add_cell(runtime::to_string(framework));
      for (std::size_t r = 0; r < kCacheRatios.size(); ++r) {
        const auto metrics = harnesses[r]->run_decode(framework, kDecodeSteps);
        const double speedup = ktrans_tbt[r] / metrics.tbt_mean();
        table.add_cell(util::format_seconds(metrics.tbt_mean()) + " / " +
                       util::format_speedup(speedup) + " / " +
                       util::format_double(metrics.cache.hit_rate() * 100.0, 1) + "%");
        if (framework == runtime::Framework::HybriMoE) hybrimoe_speedup.add(speedup);
      }
    }
    table.print(std::cout);
  }

  std::cout << "\nHybriMoE average decode speedup vs KTransformers: "
            << util::format_speedup(hybrimoe_speedup.mean())
            << "   (paper reports 1.70x)\n";
  return 0;
}
