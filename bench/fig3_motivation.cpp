/// \file fig3_motivation.cpp
/// Reproduces the paper's Fig. 3 motivation panels:
///  (a) cumulative activation-frequency CDF: neuron-level sparsity (OPT) is
///      heavily concentrated; MoE expert activations are far flatter;
///  (b) expert reuse probability decreases with the expert's score rank —
///      the signal MRS exploits;
///  (c) expert workload distribution within one prefill forward is uneven;
///  (d) latency of the three existing frameworks on Qwen2-prefill-128,
///      Mixtral-prefill-128 and Mixtral-decode-10 — no single winner;
///  (e) CPU vs GPU time for 1..7 experts at fixed load (CPU warmup visible
///      on the first task, then faster);
///  (f) CPU time grows linearly with workload size while GPU time stays
///      nearly flat.

#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "workload/sparsity.hpp"

int main() {
  using namespace hybrimoe;
  using namespace hybrimoe::bench;

  // ---------------------------------------------------------------- (a)
  print_header("(a) Activation-frequency CDF: neurons vs experts", "Fig. 3a");
  {
    const auto neuron_freq = workload::zipf_frequencies(4096);

    auto expert_freq_flat = [&](const moe::ModelConfig& model) {
      workload::TraceGenParams params;
      params.seed = kBenchSeed;
      workload::TraceGenerator gen(model, params);
      const auto trace = gen.generate_decode(256);
      const auto freq = workload::activation_frequencies(trace, model);
      std::vector<double> flat;
      for (const auto& layer : freq)
        flat.insert(flat.end(), layer.begin(), layer.end());
      return flat;
    };
    const auto mixtral = expert_freq_flat(moe::ModelConfig::mixtral());
    const auto deepseek = expert_freq_flat(moe::ModelConfig::deepseek());

    util::TextTable table("share of activations captured by the top X% of units");
    table.set_headers({"top %", "OPT neurons", "Mixtral experts", "DeepSeek experts"});
    for (const double frac : {0.05, 0.10, 0.20, 0.40, 0.60, 0.80}) {
      table.begin_row()
          .add_cell(pct(frac))
          .add_cell(util::format_double(workload::top_share(neuron_freq, frac) * 100, 1))
          .add_cell(util::format_double(workload::top_share(mixtral, frac) * 100, 1))
          .add_cell(util::format_double(workload::top_share(deepseek, frac) * 100, 1));
    }
    table.print(std::cout);
    std::cout << "gini: neurons " << util::format_double(util::gini(neuron_freq), 2)
              << ", Mixtral " << util::format_double(util::gini(mixtral), 2)
              << ", DeepSeek " << util::format_double(util::gini(deepseek), 2)
              << "  (neurons far more concentrated)\n";
  }

  // ---------------------------------------------------------------- (b)
  print_header("(b) Expert reuse probability by score rank", "Fig. 3b");
  {
    const auto model = moe::ModelConfig::deepseek();
    workload::TraceGenParams params;
    params.seed = kBenchSeed;
    workload::TraceGenerator gen(model, params);
    const auto trace = gen.generate_decode(384);

    // reuse[rank] = P(expert with score rank `rank` at step t is activated
    // at step t+1), averaged over steps and layers.
    std::vector<double> reused(model.num_routed_experts, 0.0);
    std::vector<double> total(model.num_routed_experts, 0.0);
    for (std::size_t s = 0; s + 1 < trace.steps.size(); ++s) {
      for (std::size_t l = 0; l < model.num_layers; ++l) {
        const auto& now = trace.steps[s].layers[l];
        const auto& next = trace.steps[s + 1].layers[l];
        std::vector<std::uint32_t> order(model.num_routed_experts);
        std::iota(order.begin(), order.end(), 0U);
        std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
          return now.scores[a] > now.scores[b];
        });
        for (std::size_t rank = 0; rank < order.size(); ++rank) {
          total[rank] += 1.0;
          if (next.loads[order[rank]] > 0) reused[rank] += 1.0;
        }
      }
    }
    util::TextTable table("reuse probability at step t+1 by score rank at step t");
    table.set_headers({"score rank", "reuse probability"});
    for (const std::size_t rank : {0UL, 1UL, 3UL, 5UL, 7UL, 11UL, 15UL, 23UL, 31UL, 47UL, 63UL}) {
      table.begin_row()
          .add_cell("#" + std::to_string(rank + 1))
          .add_cell(reused[rank] / total[rank], 3);
    }
    table.print(std::cout);
    std::cout << "random baseline = top_k/N = "
              << util::format_double(
                     static_cast<double>(model.top_k) /
                         static_cast<double>(model.num_routed_experts), 3)
              << "; monotone decay in rank justifies score-aware caching.\n";
  }

  // ---------------------------------------------------------------- (c)
  print_header("(c) Expert workload distribution in one prefill forward", "Fig. 3c");
  {
    const auto model = moe::ModelConfig::deepseek();
    workload::TraceGenParams params;
    params.seed = kBenchSeed;
    workload::TraceGenerator gen(model, params);
    const auto prefill = gen.generate_prefill(128);
    const auto& routing = prefill.forward.layers[model.num_layers / 2];

    std::vector<std::uint32_t> loads = routing.loads;
    std::sort(loads.begin(), loads.end(), std::greater<>());
    util::TextTable table("per-expert token loads (DeepSeek, 128-token prefill, middle layer)");
    table.set_headers({"percentile", "load (tokens)"});
    const std::size_t n = loads.size();
    for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      const auto idx = std::min(n - 1, static_cast<std::size_t>(q * static_cast<double>(n - 1)));
      table.begin_row()
          .add_cell("p" + util::format_double((1.0 - q) * 100, 0))
          .add_cell(std::to_string(loads[idx]));
    }
    table.print(std::cout);
    std::vector<double> loadsd(loads.begin(), loads.end());
    std::cout << "max/mean ratio = "
              << util::format_double(loadsd.front() / util::mean(loadsd), 2)
              << " — heavily unbalanced, so fixed mappings leave resources idle.\n";
  }

  // ---------------------------------------------------------------- (d)
  print_header("(d) No single existing strategy wins everywhere", "Fig. 3d");
  {
    util::TextTable table("per-scenario latency (s) of existing frameworks, 50% cache");
    table.set_headers({"scenario", "llama.cpp", "AdapMoE", "KTransformers", "best"});
    struct Scenario {
      std::string name;
      moe::ModelConfig model;
      bool prefill;
    };
    const Scenario scenarios[] = {
        {"Qwen2 prefill-128", moe::ModelConfig::qwen2(), true},
        {"Mixtral prefill-128", moe::ModelConfig::mixtral(), true},
        {"Mixtral decode-10", moe::ModelConfig::mixtral(), false},
    };
    for (const auto& sc : scenarios) {
      runtime::ExperimentHarness harness(make_spec(sc.model, 0.50));
      std::vector<std::pair<std::string, double>> results;
      for (const auto fw : {runtime::Framework::LlamaCpp, runtime::Framework::AdapMoE,
                            runtime::Framework::KTransformers}) {
        const double latency = sc.prefill
                                   ? harness.run_prefill(fw, 128).ttft()
                                   : harness.run_decode(fw, 10).total_latency;
        results.emplace_back(runtime::to_string(fw), latency);
      }
      const auto best = std::min_element(results.begin(), results.end(),
                                         [](const auto& a, const auto& b) {
                                           return a.second < b.second;
                                         });
      table.begin_row().add_cell(sc.name);
      for (const auto& [name, latency] : results) table.add_cell(latency, 3);
      table.add_cell(best->first);
    }
    table.print(std::cout);
  }

  // ---------------------------------------------------------------- (e)
  print_header("(e) CPU vs GPU time for varying numbers of experts", "Fig. 3e");
  {
    const auto model = moe::ModelConfig::deepseek();
    const hw::CostModel costs(hw::MachineProfile::a6000_xeon10(), model);
    util::TextTable table("time to compute N experts at fixed load (decode, 1 token)");
    table.set_headers({"experts", "CPU (first cold)", "GPU"});
    for (std::size_t n = 1; n <= 7; ++n) {
      double cpu = costs.cpu_expert_time(1, /*warm=*/false);
      for (std::size_t i = 1; i < n; ++i) cpu += costs.cpu_expert_time(1, /*warm=*/true);
      const double gpu = static_cast<double>(n) * costs.gpu_expert_time(1);
      table.begin_row()
          .add_cell(std::to_string(n))
          .add_cell(util::format_seconds(cpu))
          .add_cell(util::format_seconds(gpu));
    }
    table.print(std::cout);
    std::cout << "CPU pays a one-off warmup, then overlaps well; both scale linearly\n"
                 "in expert count at fixed load.\n";
  }

  // ---------------------------------------------------------------- (f)
  print_header("(f) CPU vs GPU time across workload sizes", "Fig. 3f");
  {
    const auto model = moe::ModelConfig::deepseek();
    const hw::CostModel costs(hw::MachineProfile::a6000_xeon10(), model);
    util::TextTable table("single-expert time vs token load");
    table.set_headers({"tokens", "CPU", "GPU", "CPU/GPU"});
    for (const std::size_t tokens : {1UL, 8UL, 32UL, 128UL, 256UL, 512UL, 1024UL}) {
      const double cpu = costs.cpu_expert_time(tokens);
      const double gpu = costs.gpu_expert_time(tokens);
      table.begin_row()
          .add_cell(std::to_string(tokens))
          .add_cell(util::format_seconds(cpu))
          .add_cell(util::format_seconds(gpu))
          .add_cell(cpu / gpu, 1);
    }
    table.print(std::cout);
    std::cout << "GPU stays near-flat (launch + weight streaming dominate); CPU grows\n"
                 "linearly once compute-bound — the asymmetry hybrid scheduling exploits.\n";
  }

  return 0;
}
