/// \file micro_kernels.cpp
/// The kernel performance gate: scalar-vs-SIMD timings of the dispatched
/// hot-path kernels (gemv, silu, swiglu, rmsnorm, Q4 gemv) on plain
/// std::chrono, with a self-enforcing speedup floor on the large gemv and a
/// cross-check that both dispatch levels agree numerically. Always built —
/// no Google Benchmark required — so CI measures on every host; the legacy
/// google-benchmark suite (scheduler/cache/router micro-latencies) remains
/// available behind `--gbench` when the library was found at configure time.
///
///   bench_micro_kernels results/BENCH_kernels.json   # gate + artifact
///   bench_micro_kernels --meta meta.json             # metadata only (no
///                                                    # timings; byte-stable
///                                                    # for CI double runs)
///   bench_micro_kernels --min-speedup 1.5            # override the floor
///   bench_micro_kernels --gbench [gbench flags]      # legacy suite
///
/// The speedup floor defaults to 2.0 on the large gemv, overridable via
/// --min-speedup or HYBRIMOE_KERNEL_MIN_SPEEDUP; on hosts without AVX2 the
/// gate is skipped (there is nothing to compare). Exit codes: 0 pass,
/// 1 gate/equivalence failure, 2 usage error.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernels/ops.hpp"
#include "kernels/quant.hpp"
#include "kernels/simd.hpp"
#include "kernels/tensor.hpp"
#include "util/rng.hpp"

namespace {

using namespace hybrimoe;

/// Keep `p`'s pointee alive past the optimizer (no Google Benchmark needed).
inline void keep(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

/// Noise-robust ns/iteration on a single-core host: calibrate the batch size
/// to ~1 ms, then take the best of 7 batches (minimum wall time — external
/// interference only ever adds time).
template <typename Fn>
double best_ns_per_iter(Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  std::size_t iters = 1;
  double batch_s = 0.0;
  for (;;) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    batch_s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (batch_s >= 1e-3 || iters >= (std::size_t{1} << 26)) break;
    iters *= 4;
  }
  double best = batch_s / static_cast<double>(iters);
  for (int rep = 0; rep < 6; ++rep) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    best = std::min(best, s / static_cast<double>(iters));
  }
  return best * 1e9;
}

struct KernelResult {
  std::string name;
  std::size_t rows = 0;  ///< 0 for elementwise kernels
  std::size_t cols = 0;  ///< vector length for elementwise kernels
  double scalar_ns = 0.0;
  double simd_ns = 0.0;
  double speedup = 1.0;
  double max_abs_diff = 0.0;  ///< scalar-vs-SIMD output disagreement
};

std::vector<float> random_vector(util::Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

/// Time `fn` at both dispatch levels (SIMD timing falls back to the scalar
/// number when AVX2 is unavailable) and cross-check the per-level outputs.
template <typename Fn, typename Out>
KernelResult measure(const std::string& name, std::size_t rows, std::size_t cols,
                     Fn&& fn, Out&& output) {
  KernelResult r;
  r.name = name;
  r.rows = rows;
  r.cols = cols;
  std::vector<float> scalar_out;
  {
    kernels::simd::ForcedLevel pin(kernels::simd::IsaLevel::Scalar);
    fn();
    scalar_out = output();
    r.scalar_ns = best_ns_per_iter(fn);
  }
  if (kernels::simd::level_available(kernels::simd::IsaLevel::Avx2)) {
    kernels::simd::ForcedLevel pin(kernels::simd::IsaLevel::Avx2);
    fn();
    r.max_abs_diff = kernels::max_abs_diff(scalar_out, output());
    r.simd_ns = best_ns_per_iter(fn);
  } else {
    r.simd_ns = r.scalar_ns;
  }
  r.speedup = r.scalar_ns / r.simd_ns;
  return r;
}

/// The measured kernel set; `timings` off emits shapes only (--meta mode).
std::vector<KernelResult> run_kernels(bool timings) {
  util::Rng rng(bench::kBenchSeed);
  std::vector<KernelResult> results;

  // Large gemv: the gate's subject — long rows where vectorization pays.
  const auto w_large = kernels::Tensor::randn(rng, 256, 1024);
  const auto x_large = random_vector(rng, 1024);
  std::vector<float> y_large(256);
  // Hot-path-sized gemv: the executor's default expert projection shape.
  const auto w_small = kernels::Tensor::randn(rng, 64, 32);
  const auto x_small = random_vector(rng, 32);
  std::vector<float> y_small(64);
  // Elementwise kernels at a mid-size activation length.
  const std::size_t n = 4096;
  const auto act_src = random_vector(rng, n);
  std::vector<float> act(n);
  const auto gate = random_vector(rng, n);
  const auto up = random_vector(rng, n);
  std::vector<float> combined(n);
  // Q4 gemv over the same large shape as the dense gate subject.
  const auto q_large = kernels::QuantizedMatrix::quantize(w_large);
  std::vector<float> yq_large(256);

  struct Case {
    const char* name;
    std::size_t rows, cols;
    std::function<void()> run;
    std::function<std::vector<float>()> out;
  };
  const std::vector<Case> cases{
      {"gemv", 256, 1024,
       [&] { kernels::gemv_into(w_large, x_large, y_large); keep(y_large.data()); },
       [&] { return y_large; }},
      {"gemv_small", 64, 32,
       [&] { kernels::gemv_into(w_small, x_small, y_small); keep(y_small.data()); },
       [&] { return y_small; }},
      {"silu", 0, n,
       [&] {
         std::copy(act_src.begin(), act_src.end(), act.begin());
         kernels::silu_inplace(act);
         keep(act.data());
       },
       [&] { return act; }},
      {"swiglu", 0, n,
       [&] { kernels::swiglu_combine(gate, up, combined); keep(combined.data()); },
       [&] { return combined; }},
      {"rmsnorm", 0, n,
       [&] {
         std::copy(act_src.begin(), act_src.end(), act.begin());
         kernels::rmsnorm_inplace(act);
         keep(act.data());
       },
       [&] { return act; }},
      {"q4_gemv", 256, 1024,
       [&] { q_large.gemv_into(x_large, yq_large); keep(yq_large.data()); },
       [&] { return yq_large; }},
  };

  for (const Case& c : cases) {
    if (timings) {
      results.push_back(measure(c.name, c.rows, c.cols, c.run, c.out));
    } else {
      KernelResult r;
      r.name = c.name;
      r.rows = c.rows;
      r.cols = c.cols;
      results.push_back(r);
    }
  }
  return results;
}

void write_artifact(std::ostream& os, const std::vector<KernelResult>& results,
                    double min_speedup, bool gate_enforced, bool gate_passed,
                    double gemv_speedup, bool timings) {
  util::JsonWriter w(os);
  w.field("bench").string("micro_kernels");
  w.field("isa_compiled").string(kernels::simd::to_string(kernels::simd::compiled_level()));
  w.field("isa_detected").string(kernels::simd::to_string(kernels::simd::detected_level()));
  w.field("min_speedup_gate").number(min_speedup);
  w.field("gate_enforced").boolean(gate_enforced);
  if (timings) {
    w.field("gate_passed").boolean(gate_passed);
    w.field("gemv_speedup_x").number(gemv_speedup);
  }
  w.field("kernels").begin_array();
  for (const KernelResult& r : results) {
    auto item = w.row();
    item.field("name").string(r.name);
    item.field("rows").number(static_cast<double>(r.rows));
    item.field("cols").number(static_cast<double>(r.cols));
    if (timings) {
      item.field("scalar_ns").number(r.scalar_ns);
      item.field("simd_ns").number(r.simd_ns);
      item.field("speedup_x").number(r.speedup);
      item.field("max_abs_diff").number(r.max_abs_diff);
    }
    item.close();
  }
  w.end_array();
  w.finish();
}

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "bench_micro_kernels: " << message
            << "\nusage: bench_micro_kernels [out.json] [--meta PATH] "
               "[--min-speedup X] [--gbench ...]\n";
  std::exit(2);
}

}  // namespace

#ifdef HYBRIMOE_HAVE_GBENCH
int run_gbench_suite(int argc, char** argv);
#endif

int main(int argc, char** argv) {
  std::string out_path;
  std::string meta_path;
  double min_speedup = 2.0;
  if (const char* env = std::getenv("HYBRIMOE_KERNEL_MIN_SPEEDUP"))
    min_speedup = std::atof(env);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gbench") {
#ifdef HYBRIMOE_HAVE_GBENCH
      // Hand the remaining argv to google-benchmark verbatim.
      std::vector<char*> rest;
      rest.push_back(argv[0]);
      for (int j = i + 1; j < argc; ++j) rest.push_back(argv[j]);
      return run_gbench_suite(static_cast<int>(rest.size()), rest.data());
#else
      std::cerr << "bench_micro_kernels: built without Google Benchmark — "
                   "the --gbench suite is unavailable (the chrono gate below "
                   "runs regardless)\n";
      return 2;
#endif
    } else if (arg == "--meta") {
      if (i + 1 >= argc) usage_error("--meta requires a path");
      meta_path = argv[++i];
    } else if (arg == "--min-speedup") {
      if (i + 1 >= argc) usage_error("--min-speedup requires a value");
      min_speedup = std::atof(argv[++i]);
    } else if (!arg.empty() && arg.front() == '-') {
      usage_error("unknown option '" + arg + "'");
    } else if (out_path.empty()) {
      out_path = arg;
    } else {
      usage_error("unexpected argument '" + arg + "'");
    }
  }

  // --meta: emit byte-stable metadata (no timings) and exit — what CI
  // byte-diffs across a double run to prove the artifact schema is
  // deterministic.
  if (!meta_path.empty()) {
    std::ofstream meta(meta_path);
    if (!meta) usage_error("cannot write '" + meta_path + "'");
    write_artifact(meta, run_kernels(/*timings=*/false), min_speedup,
                   /*gate_enforced=*/false, /*gate_passed=*/true,
                   /*gemv_speedup=*/0.0, /*timings=*/false);
    std::cout << "Wrote " << meta_path << "\n";
    return 0;
  }

  bench::print_header("micro-kernel gate: scalar vs SIMD hot paths",
                      "the §V claim that kernel-level execution, not Python "
                      "orchestration, should set the pace");
  std::cout << "isa: compiled=" << kernels::simd::to_string(kernels::simd::compiled_level())
            << " detected=" << kernels::simd::to_string(kernels::simd::detected_level())
            << "\n\n";

  const auto results = run_kernels(/*timings=*/true);

  util::TextTable table("kernel timings (best of 7)");
  table.set_headers({"kernel", "shape", "scalar ns", "simd ns", "speedup", "max |diff|"});
  for (const KernelResult& r : results) {
    const std::string shape = r.rows > 0
                                  ? std::to_string(r.rows) + "x" + std::to_string(r.cols)
                                  : "n=" + std::to_string(r.cols);
    table.begin_row()
        .add_cell(r.name)
        .add_cell(shape)
        .add_cell(util::format_double(r.scalar_ns, 0))
        .add_cell(util::format_double(r.simd_ns, 0))
        .add_cell(util::format_double(r.speedup, 2) + "x")
        .add_cell(util::format_double(r.max_abs_diff, 7));
  }
  table.print(std::cout);

  // Equivalence cross-check: both dispatch levels must agree to well under
  // any tolerance the functional tests use (the dedicated ulp-level suite
  // lives in tests/kernels/simd_equivalence_test.cpp).
  bool ok = true;
  for (const KernelResult& r : results) {
    if (r.max_abs_diff > 1e-4) {
      std::cerr << "\nFAIL: " << r.name << " scalar/SIMD outputs diverge by "
                << r.max_abs_diff << " (> 1e-4)\n";
      ok = false;
    }
  }

  // The gate: large-gemv SIMD speedup must clear the floor. Skipped without
  // AVX2 — there is no second path to race.
  const bool gate_enforced =
      kernels::simd::level_available(kernels::simd::IsaLevel::Avx2);
  const auto gemv = std::find_if(results.begin(), results.end(),
                                 [](const KernelResult& r) { return r.name == "gemv"; });
  const double gemv_speedup = gemv != results.end() ? gemv->speedup : 0.0;
  bool gate_passed = true;
  if (gate_enforced) {
    gate_passed = gemv_speedup >= min_speedup;
    std::cout << "\ngate: gemv speedup " << util::format_double(gemv_speedup, 2)
              << "x vs floor " << util::format_double(min_speedup, 2) << "x — "
              << (gate_passed ? "PASS" : "FAIL") << "\n";
    if (!gate_passed) ok = false;
  } else {
    std::cout << "\ngate: skipped (no AVX2 on this host)\n";
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) usage_error("cannot write '" + out_path + "'");
    write_artifact(out, results, min_speedup, gate_enforced, gate_passed,
                   gemv_speedup, /*timings=*/true);
    std::cout << "Wrote " << out_path << "\n";
  }
  return ok ? 0 : 1;
}

#ifdef HYBRIMOE_HAVE_GBENCH

#include <benchmark/benchmark.h>

#include <memory>

#include "cache/expert_cache.hpp"
#include "cache/mrs_policy.hpp"
#include "kernels/expert.hpp"
#include "moe/router.hpp"
#include "sched/simulator.hpp"
#include "workload/generator.hpp"

namespace {

std::vector<sched::ExpertDemand> random_demands(util::Rng& rng, std::size_t count,
                                                std::uint32_t max_load,
                                                double cached_fraction) {
  std::vector<sched::ExpertDemand> demands;
  demands.reserve(count);
  for (std::size_t e = 0; e < count; ++e) {
    demands.push_back({static_cast<std::uint16_t>(e),
                       static_cast<std::uint32_t>(rng.uniform_index(max_load) + 1),
                       rng.bernoulli(cached_fraction)});
  }
  return demands;
}

void BM_HybridScheduleDecode(benchmark::State& state) {
  const auto model = moe::ModelConfig::deepseek();
  const hw::CostModel costs(hw::MachineProfile::a6000_xeon10(), model);
  util::Rng rng(1);
  const auto demands = random_demands(rng, static_cast<std::size_t>(state.range(0)), 1, 0.5);
  for (auto _ : state) {
    auto plan = sched::simulate_layer(0, sched::Stage::Decode, demands, costs);
    benchmark::DoNotOptimize(plan.makespan);
  }
}
BENCHMARK(BM_HybridScheduleDecode)->Arg(6)->Arg(8)->Arg(16);

void BM_HybridSchedulePrefill(benchmark::State& state) {
  const auto model = moe::ModelConfig::qwen2();
  const hw::CostModel costs(hw::MachineProfile::a6000_xeon10(), model);
  util::Rng rng(2);
  const auto demands =
      random_demands(rng, static_cast<std::size_t>(state.range(0)), 32, 0.25);
  for (auto _ : state) {
    auto plan = sched::simulate_layer(0, sched::Stage::Prefill, demands, costs);
    benchmark::DoNotOptimize(plan.makespan);
  }
}
BENCHMARK(BM_HybridSchedulePrefill)->Arg(16)->Arg(32)->Arg(64);

void BM_CacheLookupInsert(benchmark::State& state) {
  const auto model = moe::ModelConfig::deepseek();
  cache::ExpertCache cache(cache::ExpertCache::capacity_for_ratio(model, 0.25),
                           std::make_unique<cache::MrsPolicy>());
  util::Rng rng(3);
  for (auto _ : state) {
    const moe::ExpertId id{
        static_cast<std::uint16_t>(rng.uniform_index(model.num_layers)),
        static_cast<std::uint16_t>(rng.uniform_index(model.num_routed_experts))};
    if (!cache.lookup(id)) benchmark::DoNotOptimize(cache.insert(id));
  }
}
BENCHMARK(BM_CacheLookupInsert);

void BM_MrsScoreUpdate(benchmark::State& state) {
  cache::MrsPolicy policy;
  util::Rng rng(4);
  std::vector<float> scores(64);
  for (float& s : scores) s = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    policy.on_scores(0, scores, 6);
    benchmark::DoNotOptimize(policy.score({0, 0}));
  }
}
BENCHMARK(BM_MrsScoreUpdate);

void BM_RouterBatch(benchmark::State& state) {
  const auto tokens = static_cast<std::size_t>(state.range(0));
  moe::Router router(64, 6);
  util::Rng rng(5);
  std::vector<float> logits(tokens * 64);
  for (float& v : logits) v = static_cast<float>(rng.gaussian());
  for (auto _ : state) {
    auto routing = router.route_batch(logits, tokens);
    benchmark::DoNotOptimize(routing.loads.data());
  }
}
BENCHMARK(BM_RouterBatch)->Arg(1)->Arg(32)->Arg(128);

void BM_Q4ExpertForward(benchmark::State& state) {
  util::Rng rng(6);
  const auto dense = kernels::ExpertWeights::random(rng, 128, 256);
  const kernels::QuantizedExpert expert(dense);
  std::vector<float> x(128);
  for (float& v : x) v = static_cast<float>(rng.gaussian());
  for (auto _ : state) {
    auto y = expert.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Q4ExpertForward);

void BM_TraceGenerationDecodeStep(benchmark::State& state) {
  const auto model = moe::ModelConfig::deepseek();
  workload::TraceGenParams params;
  params.seed = 7;
  workload::TraceGenerator gen(model, params);
  for (auto _ : state) {
    auto trace = gen.generate_decode(1);
    benchmark::DoNotOptimize(trace.steps.front().layers.front().loads.data());
  }
}
BENCHMARK(BM_TraceGenerationDecodeStep);

}  // namespace

int run_gbench_suite(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

#endif  // HYBRIMOE_HAVE_GBENCH
