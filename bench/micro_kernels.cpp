/// \file micro_kernels.cpp
/// google-benchmark microbenchmarks of the hot paths: the scheduler's greedy
/// simulation (runs once per layer per forward — §V stresses that decision
/// overhead must stay negligible), cache operations, the router, and the Q4
/// kernels backing the functional path.

#include <benchmark/benchmark.h>

#include <memory>

#include "cache/expert_cache.hpp"
#include "cache/mrs_policy.hpp"
#include "kernels/expert.hpp"
#include "kernels/ops.hpp"
#include "moe/router.hpp"
#include "sched/simulator.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace hybrimoe;

std::vector<sched::ExpertDemand> random_demands(util::Rng& rng, std::size_t count,
                                                std::uint32_t max_load,
                                                double cached_fraction) {
  std::vector<sched::ExpertDemand> demands;
  demands.reserve(count);
  for (std::size_t e = 0; e < count; ++e) {
    demands.push_back({static_cast<std::uint16_t>(e),
                       static_cast<std::uint32_t>(rng.uniform_index(max_load) + 1),
                       rng.bernoulli(cached_fraction)});
  }
  return demands;
}

void BM_HybridScheduleDecode(benchmark::State& state) {
  const auto model = moe::ModelConfig::deepseek();
  const hw::CostModel costs(hw::MachineProfile::a6000_xeon10(), model);
  util::Rng rng(1);
  const auto demands = random_demands(rng, static_cast<std::size_t>(state.range(0)), 1, 0.5);
  for (auto _ : state) {
    auto plan = sched::simulate_layer(0, sched::Stage::Decode, demands, costs);
    benchmark::DoNotOptimize(plan.makespan);
  }
}
BENCHMARK(BM_HybridScheduleDecode)->Arg(6)->Arg(8)->Arg(16);

void BM_HybridSchedulePrefill(benchmark::State& state) {
  const auto model = moe::ModelConfig::qwen2();
  const hw::CostModel costs(hw::MachineProfile::a6000_xeon10(), model);
  util::Rng rng(2);
  const auto demands =
      random_demands(rng, static_cast<std::size_t>(state.range(0)), 32, 0.25);
  for (auto _ : state) {
    auto plan = sched::simulate_layer(0, sched::Stage::Prefill, demands, costs);
    benchmark::DoNotOptimize(plan.makespan);
  }
}
BENCHMARK(BM_HybridSchedulePrefill)->Arg(16)->Arg(32)->Arg(64);

void BM_CacheLookupInsert(benchmark::State& state) {
  const auto model = moe::ModelConfig::deepseek();
  cache::ExpertCache cache(cache::ExpertCache::capacity_for_ratio(model, 0.25),
                           std::make_unique<cache::MrsPolicy>());
  util::Rng rng(3);
  for (auto _ : state) {
    const moe::ExpertId id{
        static_cast<std::uint16_t>(rng.uniform_index(model.num_layers)),
        static_cast<std::uint16_t>(rng.uniform_index(model.num_routed_experts))};
    if (!cache.lookup(id)) benchmark::DoNotOptimize(cache.insert(id));
  }
}
BENCHMARK(BM_CacheLookupInsert);

void BM_MrsScoreUpdate(benchmark::State& state) {
  cache::MrsPolicy policy;
  util::Rng rng(4);
  std::vector<float> scores(64);
  for (float& s : scores) s = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    policy.on_scores(0, scores, 6);
    benchmark::DoNotOptimize(policy.score({0, 0}));
  }
}
BENCHMARK(BM_MrsScoreUpdate);

void BM_RouterBatch(benchmark::State& state) {
  const auto tokens = static_cast<std::size_t>(state.range(0));
  moe::Router router(64, 6);
  util::Rng rng(5);
  std::vector<float> logits(tokens * 64);
  for (float& v : logits) v = static_cast<float>(rng.gaussian());
  for (auto _ : state) {
    auto routing = router.route_batch(logits, tokens);
    benchmark::DoNotOptimize(routing.loads.data());
  }
}
BENCHMARK(BM_RouterBatch)->Arg(1)->Arg(32)->Arg(128);

void BM_Q4ExpertForward(benchmark::State& state) {
  util::Rng rng(6);
  const auto dense = kernels::ExpertWeights::random(rng, 128, 256);
  const kernels::QuantizedExpert expert(dense);
  std::vector<float> x(128);
  for (float& v : x) v = static_cast<float>(rng.gaussian());
  for (auto _ : state) {
    auto y = expert.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Q4ExpertForward);

void BM_TraceGenerationDecodeStep(benchmark::State& state) {
  const auto model = moe::ModelConfig::deepseek();
  workload::TraceGenParams params;
  params.seed = 7;
  workload::TraceGenerator gen(model, params);
  for (auto _ : state) {
    auto trace = gen.generate_decode(1);
    benchmark::DoNotOptimize(trace.steps.front().layers.front().loads.data());
  }
}
BENCHMARK(BM_TraceGenerationDecodeStep);

}  // namespace

BENCHMARK_MAIN();
