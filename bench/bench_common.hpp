#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the figure/table reproduction harnesses: canonical
/// experiment specs (fixed seeds — tables must be identical run-to-run) and
/// small formatting helpers.

#include <iostream>
#include <string>

#include "runtime/session.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/datasets.hpp"

namespace hybrimoe::bench {

/// The evaluation's fixed seed; all harnesses derive their streams from it.
inline constexpr std::uint64_t kBenchSeed = 20250408;  // arXiv date of the paper

/// Canonical spec for one (model, cache-ratio) cell of the evaluation grid.
inline runtime::ExperimentSpec make_spec(const moe::ModelConfig& model,
                                         double cache_ratio,
                                         std::uint64_t seed = kBenchSeed) {
  runtime::ExperimentSpec spec;
  spec.model = model;
  spec.machine = hw::MachineProfile::a6000_xeon10();
  spec.cache_ratio = cache_ratio;
  spec.trace.seed = seed;
  return spec;
}

/// The paper's cache-ratio grid (Figs. 7/8).
inline constexpr std::array<double, 3> kCacheRatios{0.25, 0.50, 0.75};

/// Decode steps used for TBT measurements.
inline constexpr std::size_t kDecodeSteps = 64;

inline std::string pct(double ratio) {
  return util::format_double(ratio * 100.0, 0) + "%";
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=====================================================================\n"
            << title << "\n(reproduces " << paper_ref << ")\n"
            << "=====================================================================\n";
}

}  // namespace hybrimoe::bench
