#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the figure/table reproduction harnesses: canonical
/// experiment specs (fixed seeds — tables must be identical run-to-run),
/// small formatting helpers, and the shared stack-selection CLI: every bench
/// that loops over frameworks accepts `--stacks` (a ';'-separated list of
/// preset names, inline JSON specs or @files) and `--list-stacks` (print the
/// registered presets and component families, then exit), so any point of
/// the scheduler x cache x prefetcher cross-product can be benchmarked
/// without recompiling.
///
/// Bench JSON artifacts are written through util::JsonWriter (re-exported
/// here) — one escaping/formatting path shared with `hybrimoe_run --json`
/// and the trace subsystem, so hybrimoe_compare can align any of them.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/session.hpp"
#include "runtime/stack_registry.hpp"
#include "util/json_writer.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/datasets.hpp"

namespace hybrimoe::bench {

/// The evaluation's fixed seed; all harnesses derive their streams from it.
inline constexpr std::uint64_t kBenchSeed = 20250408;  // arXiv date of the paper

/// Canonical spec for one (model, cache-ratio) cell of the evaluation grid.
inline runtime::ExperimentSpec make_spec(const moe::ModelConfig& model,
                                         double cache_ratio,
                                         std::uint64_t seed = kBenchSeed) {
  runtime::ExperimentSpec spec;
  spec.model = model;
  spec.machine = hw::MachineProfile::a6000_xeon10();
  spec.cache_ratio = cache_ratio;
  spec.trace.seed = seed;
  return spec;
}

/// The paper's cache-ratio grid (Figs. 7/8).
inline constexpr std::array<double, 3> kCacheRatios{0.25, 0.50, 0.75};

/// Decode steps used for TBT measurements.
inline constexpr std::size_t kDecodeSteps = 64;

inline std::string pct(double ratio) {
  return util::format_double(ratio * 100.0, 0) + "%";
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=====================================================================\n"
            << title << "\n(reproduces " << paper_ref << ")\n"
            << "=====================================================================\n";
}

// ---------------------------------------------------------------------------
// Shared stack-selection CLI (--stacks / --list-stacks). Argument resolution
// (preset name | inline JSON | @file) and the catalogue live in the library:
// runtime::resolve_stack / runtime::print_stack_catalog.
// ---------------------------------------------------------------------------

/// Split a --stacks list on ';' separators that sit *outside* JSON string
/// and object context, so inline specs may contain ';' in names.
inline std::vector<std::string> split_stack_list(const std::string& list) {
  std::vector<std::string> items;
  std::string current;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : list) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
    } else if (c == ';' && depth == 0) {
      if (!current.empty()) items.push_back(std::move(current));
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (!current.empty()) items.push_back(std::move(current));
  return items;
}

/// Parsed shared bench flags.
struct StackArgs {
  std::vector<runtime::StackSpec> stacks;  ///< selected (or default) stacks
  std::vector<std::string> positional;     ///< non-flag arguments (e.g. JSON path)
};

/// Parse argv: `--stacks a;b;c` (repeatable, also `--stacks=a;b;c`) selects
/// stacks, `--list-stacks` prints the catalogue and exits(0); any other
/// `--flag` is rejected (exit 2 — a typo must not silently run the default
/// sweep); everything else stays positional. With no --stacks, `defaults`
/// is used. Malformed specs print their did-you-mean error and exit(2).
inline StackArgs parse_stack_args(int argc, char** argv,
                                  std::span<const runtime::Framework> defaults) {
  StackArgs args;
  std::vector<std::string> stack_items;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-stacks") {
      runtime::print_stack_catalog(std::cout);
      std::cout << "Join several with ';' or repeat --stacks.\n";
      std::exit(0);
    }
    std::string list;
    if (arg == "--stacks") {
      if (i + 1 >= argc) {
        std::cerr << "--stacks requires an argument (see --list-stacks)\n";
        std::exit(2);
      }
      list = argv[++i];
    } else if (arg.rfind("--stacks=", 0) == 0) {
      list = arg.substr(std::string("--stacks=").size());
    } else if (arg.rfind("-", 0) == 0 && arg != "-") {
      std::cerr << "unknown flag '" << arg
                << "' (this bench takes --stacks, --list-stacks and positional "
                   "arguments)\n";
      std::exit(2);
    } else {
      args.positional.push_back(arg);
      continue;
    }
    for (auto& item : split_stack_list(list)) stack_items.push_back(std::move(item));
  }

  try {
    for (const auto& item : stack_items) {
      runtime::StackSpec spec = runtime::resolve_stack(item);
      spec.validate();
      args.stacks.push_back(std::move(spec));
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << "invalid --stacks argument: " << e.what() << "\n";
    std::exit(2);
  }
  if (args.stacks.empty())
    for (const runtime::Framework f : defaults)
      args.stacks.push_back(runtime::preset_spec(f));
  return args;
}

}  // namespace hybrimoe::bench
