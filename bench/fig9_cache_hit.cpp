/// \file fig9_cache_hit.cpp
/// Reproduces Fig. 9: expert-cache hit rate of MRS (Minus Recent Score)
/// versus LRU across cached-expert percentages 30..70% on all three models.
/// The paper reports MRS ahead by 6-8 points at low capacity (e.g. Mixtral
/// 36.2% vs 30.2% at 25%) with the gap narrowing as capacity grows
/// (Mixtral 83.3% vs 80.6% at 75%).
///
/// Methodology matches the paper's: a pure cache replay — every activated
/// expert is looked up; misses are loaded and admitted; the policy decides
/// evictions. Scheduling plays no role here.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "cache/classic_policies.hpp"
#include "cache/mrs_policy.hpp"

namespace {

using namespace hybrimoe;

double replay_hit_rate(const workload::DecodeTrace& trace, const moe::ModelConfig& model,
                       cache::ExpertCache& cache, bool feed_scores) {
  for (const auto& step : trace.steps) {
    for (std::size_t l = 0; l < step.layers.size(); ++l) {
      const auto layer = static_cast<std::uint16_t>(l);
      if (feed_scores) cache.update_scores(layer, step.layers[l].scores, model.top_k);
      for (const auto e : step.layers[l].activated()) {
        const moe::ExpertId id{layer, static_cast<std::uint16_t>(e)};
        if (!cache.lookup(id)) (void)cache.insert(id);
      }
    }
  }
  return cache.stats().hit_rate();
}

}  // namespace

int main() {
  using namespace hybrimoe::bench;

  print_header("Cache hit rate, MRS vs LRU (percent)", "paper Fig. 9");

  constexpr std::size_t kReplaySteps = 384;
  const double capacities[] = {0.25, 0.30, 0.40, 0.50, 0.60, 0.70, 0.75};

  util::TextTable table("hit rate (%) by cached expert percentage");
  std::vector<std::string> headers{"model", "policy"};
  for (const double c : capacities) headers.push_back(pct(c));
  table.set_headers(std::move(headers));

  for (const auto& model : moe::paper_models()) {
    workload::TraceGenParams params;
    params.seed = kBenchSeed;
    workload::TraceGenerator generator(model, params);
    const auto trace = generator.generate_decode(kReplaySteps);

    for (const bool use_mrs : {false, true}) {
      table.begin_row().add_cell(model.name).add_cell(use_mrs ? "MRS" : "LRU");
      for (const double c : capacities) {
        const std::size_t capacity = cache::ExpertCache::capacity_for_ratio(model, c);
        std::unique_ptr<cache::CachePolicy> policy;
        if (use_mrs) {
          policy = std::make_unique<cache::MrsPolicy>();
        } else {
          policy = std::make_unique<cache::LruPolicy>();
        }
        cache::ExpertCache cache(capacity, std::move(policy));
        const double rate = replay_hit_rate(trace, model, cache, use_mrs);
        table.add_cell(util::format_double(rate * 100.0, 1));
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: MRS above LRU everywhere, the gap widest at low\n"
               "capacity and narrowing as the cache grows (paper: +6-8 points at\n"
               "25%, ~+2.7 at 75%).\n";
  return 0;
}
