/// \file fig1_timeline.cpp
/// Reproduces the paper's Fig. 1 execution timelines for one MoE layer with
/// six experts:
///  (a) on-demand loading — every uncached expert streams over PCIe before
///      the GPU can compute it;
///  (b) unbalanced hybrid — misses run on the CPU, but with a fixed mapping
///      one side finishes long before the other;
///  (c) balanced hybrid — HybriMoE's scheduling overlaps CPU, GPU and PCIe
///      so both devices finish together ("expected speedup" arrows).

#include <iostream>

#include "bench_common.hpp"
#include "hw/timeline.hpp"
#include "sched/simulator.hpp"

int main() {
  using namespace hybrimoe;
  using namespace hybrimoe::bench;

  print_header("Execution timelines: on-demand vs hybrid CPU-GPU", "paper Fig. 1");

  // Six experts, two cached — a decode-ish layer on the unit-cost machine
  // (cpu = load, gpu = 1, transfer = 3) with mixed loads.
  const moe::ModelConfig model = moe::ModelConfig::tiny();
  const hw::CostModel costs(hw::MachineProfile::unit_test_machine(), model);
  const std::vector<sched::ExpertDemand> demands = {
      {1, 2, true},  {2, 2, true},  {3, 1, false},
      {4, 2, false}, {5, 3, false}, {6, 5, false}};

  struct Scenario {
    const char* name;
    sched::SimOptions options;
  };
  const Scenario scenarios[] = {
      {"(a) on-demand loading",
       {.allow_cpu = false, .transfer_only_if_beneficial = false}},
      {"(b) unbalanced hybrid (fixed mapping)",
       {.allow_transfers = false, .allow_cpu_steal = false}},
      {"(c) balanced hybrid (HybriMoE)", {}},
  };

  double first = 0.0;
  for (const auto& sc : scenarios) {
    const auto plan =
        sched::simulate_layer(0, sched::Stage::Decode, demands, costs, sc.options);
    if (first == 0.0) first = plan.makespan;
    std::cout << "\n" << sc.name << " — makespan "
              << util::format_double(plan.makespan, 2) << " units (speedup vs (a): "
              << util::format_speedup(first / plan.makespan) << ")\n"
              << hw::render_gantt(plan.to_timelines());
  }
  std::cout << "\nBalanced scheduling overlaps all three resources — the paper's\n"
               "motivating observation.\n";
  return 0;
}
