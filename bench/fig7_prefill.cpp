/// \file fig7_prefill.cpp
/// Reproduces Fig. 7: prefill TTFT of llama.cpp / AdapMoE / KTransformers /
/// HybriMoE on the three models, across prompt lengths {32,128,512,1024} and
/// GPU expert cache ratios {25,50,75}%. Per-cell speedups are relative to
/// KTransformers, matching the paper's right axis; the paper's headline is
/// an average 1.33x speedup of HybriMoE over KTransformers.
///
/// `--stacks` swaps the evaluated stacks for any preset/custom spec list
/// (the KTransformers reference row is always computed); `--list-stacks`
/// prints what is available.

#include <iostream>
#include <map>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hybrimoe;
  using namespace hybrimoe::bench;

  const StackArgs args = parse_stack_args(argc, argv, runtime::kPaperFrameworks);

  print_header("Prefill stage performance (TTFT, seconds)", "paper Fig. 7");

  util::RunningStats hybrimoe_speedup;
  for (const auto& model : moe::paper_models()) {
    for (const double ratio : kCacheRatios) {
      runtime::ExperimentHarness harness(make_spec(model, ratio));

      util::TextTable table(model.name + " with " + pct(ratio) + " cache ratio");
      table.set_headers({"stack", "32", "128", "512", "1024", "avg",
                         "speedup vs KTrans"});

      // KTransformers reference row computed first (shared traces).
      std::map<std::size_t, double> ktrans;
      for (const std::size_t len : workload::kPaperPrefillLengths)
        ktrans[len] = harness.run_prefill(runtime::Framework::KTransformers, len).ttft();

      for (const auto& stack : args.stacks) {
        double sum = 0.0;
        double ktrans_sum = 0.0;
        table.begin_row().add_cell(stack.display_name());
        for (const std::size_t len : workload::kPaperPrefillLengths) {
          const double ttft = harness.run_prefill(stack, len).ttft();
          sum += ttft;
          ktrans_sum += ktrans[len];
          table.add_cell(ttft, 3);
        }
        const double avg = sum / static_cast<double>(workload::kPaperPrefillLengths.size());
        const double speedup = ktrans_sum / sum;
        table.add_cell(avg, 3).add_cell(util::format_speedup(speedup));
        if (stack.display_name() == runtime::to_string(runtime::Framework::HybriMoE))
          hybrimoe_speedup.add(speedup);
      }
      table.print(std::cout);
    }
  }

  if (hybrimoe_speedup.count() > 0)
    std::cout << "\nHybriMoE average prefill speedup vs KTransformers: "
              << util::format_speedup(hybrimoe_speedup.mean())
              << "   (paper reports 1.33x)\n";
  return 0;
}
