/// \file fig7_prefill.cpp
/// Reproduces Fig. 7: prefill TTFT of llama.cpp / AdapMoE / KTransformers /
/// HybriMoE on the three models, across prompt lengths {32,128,512,1024} and
/// GPU expert cache ratios {25,50,75}%. Per-cell speedups are relative to
/// KTransformers, matching the paper's right axis; the paper's headline is
/// an average 1.33x speedup of HybriMoE over KTransformers.

#include <iostream>
#include <map>

#include "bench_common.hpp"

int main() {
  using namespace hybrimoe;
  using namespace hybrimoe::bench;

  print_header("Prefill stage performance (TTFT, seconds)", "paper Fig. 7");

  util::RunningStats hybrimoe_speedup;
  for (const auto& model : moe::paper_models()) {
    for (const double ratio : kCacheRatios) {
      runtime::ExperimentHarness harness(make_spec(model, ratio));

      util::TextTable table(model.name + " with " + pct(ratio) + " cache ratio");
      table.set_headers({"framework", "32", "128", "512", "1024", "avg",
                         "speedup vs KTrans"});

      // KTransformers reference row computed first (shared traces).
      std::map<std::size_t, double> ktrans;
      for (const std::size_t len : workload::kPaperPrefillLengths)
        ktrans[len] = harness.run_prefill(runtime::Framework::KTransformers, len).ttft();

      for (const auto framework : runtime::kPaperFrameworks) {
        double sum = 0.0;
        double ktrans_sum = 0.0;
        table.begin_row().add_cell(runtime::to_string(framework));
        for (const std::size_t len : workload::kPaperPrefillLengths) {
          const double ttft = harness.run_prefill(framework, len).ttft();
          sum += ttft;
          ktrans_sum += ktrans[len];
          table.add_cell(ttft, 3);
        }
        const double avg = sum / static_cast<double>(workload::kPaperPrefillLengths.size());
        const double speedup = ktrans_sum / sum;
        table.add_cell(avg, 3).add_cell(util::format_speedup(speedup));
        if (framework == runtime::Framework::HybriMoE) hybrimoe_speedup.add(speedup);
      }
      table.print(std::cout);
    }
  }

  std::cout << "\nHybriMoE average prefill speedup vs KTransformers: "
            << util::format_speedup(hybrimoe_speedup.mean())
            << "   (paper reports 1.33x)\n";
  return 0;
}
