/// \file platform_scaling.cpp
/// The paper evaluates "on various platforms" (§VI-A.1) by varying the GPU
/// expert cache bound; this harness additionally swaps the whole machine: the
/// A6000+Xeon testbed versus a bandwidth-starved laptop-class edge box. The
/// expectation: HybriMoE's advantage persists across machines, and grows
/// where the PCIe link is slower (transfers are costlier, so dynamic
/// balancing and caching matter more).

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace hybrimoe;
  using namespace hybrimoe::bench;

  print_header("Platform scaling: decode TBT across machines", "§VI-A.1 platforms");

  const hw::MachineProfile machines[] = {hw::MachineProfile::a6000_xeon10(),
                                         hw::MachineProfile::laptop_edge()};

  for (const auto& machine : machines) {
    util::TextTable table(machine.name + " — decode @ 25% cache");
    table.set_headers({"model", "KTransformers TBT", "HybriMoE TBT", "speedup",
                       "hit (KT)", "hit (HM)"});
    for (const auto& model : moe::paper_models()) {
      auto spec = make_spec(model, 0.25);
      spec.machine = machine;
      runtime::ExperimentHarness harness(spec);
      const auto kt = harness.run_decode(runtime::Framework::KTransformers, 48);
      const auto hm = harness.run_decode(runtime::Framework::HybriMoE, 48);
      table.begin_row()
          .add_cell(model.name)
          .add_cell(util::format_seconds(kt.tbt_mean()))
          .add_cell(util::format_seconds(hm.tbt_mean()))
          .add_cell(util::format_speedup(kt.tbt_mean() / hm.tbt_mean()))
          .add_cell(util::format_double(kt.cache.hit_rate() * 100.0, 1) + "%")
          .add_cell(util::format_double(hm.cache.hit_rate() * 100.0, 1) + "%");
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected: HybriMoE leads on both machines; gains persist (or\n"
               "grow) on the bandwidth-starved edge box.\n";
  return 0;
}
