/// \file table3_ablation.cpp
/// Reproduces Table III: speedup breakdown of HybriMoE's techniques on
/// Qwen2 at 25% expert cache ratio. The baseline is the kTransformers-style
/// engine; each row enables one technique (or all) on top of it.
///
/// Paper values — prefill: scheduling 1.26x, prefetching 1.06x, all 1.31x;
/// decode: scheduling 1.46x, prefetching 1.15x, caching 1.38x, all 1.86x.
/// The caching row is decode-only, as in the paper (within a single prefill
/// forward there is no cross-iteration reuse for a cache policy to exploit).

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace hybrimoe;
  using namespace hybrimoe::bench;

  print_header("Ablation: speedup breakdown on Qwen2 @ 25% cache", "paper Table III");

  constexpr std::size_t kPrefillTokens = 128;

  runtime::ExperimentHarness harness(make_spec(moe::ModelConfig::qwen2(), 0.25));

  const core::HybriMoeConfig prefill_variants[] = {
      core::HybriMoeConfig::baseline(),
      core::HybriMoeConfig::scheduling_only(),
      core::HybriMoeConfig::prefetching_only(),
      core::HybriMoeConfig::full(),
  };
  const core::HybriMoeConfig decode_variants[] = {
      core::HybriMoeConfig::baseline(),
      core::HybriMoeConfig::scheduling_only(),
      core::HybriMoeConfig::prefetching_only(),
      core::HybriMoeConfig::caching_only(),
      core::HybriMoeConfig::full(),
  };

  util::TextTable table("MoE inference speedup breakdown");
  table.set_headers({"stage", "technique", "latency (s)", "speedup"});

  double prefill_base = 0.0;
  for (const auto& config : prefill_variants) {
    const double latency = harness.run_prefill(config, kPrefillTokens).ttft();
    if (config.label() == "Baseline") prefill_base = latency;
    table.begin_row()
        .add_cell("Prefill")
        .add_cell(config.label())
        .add_cell(latency, 3)
        .add_cell(util::format_speedup(prefill_base / latency));
  }

  double decode_base = 0.0;
  for (const auto& config : decode_variants) {
    const double latency = harness.run_decode(config, kDecodeSteps).total_latency;
    if (config.label() == "Baseline") decode_base = latency;
    table.begin_row()
        .add_cell("Decode")
        .add_cell(config.label())
        .add_cell(latency, 3)
        .add_cell(util::format_speedup(decode_base / latency));
  }
  table.print(std::cout);

  std::cout << "\nExpected ordering per stage: every technique >= 1.0x, scheduling the\n"
               "largest single contribution, All the fastest (paper: prefill 1.31x,\n"
               "decode 1.86x).\n";
  return 0;
}
