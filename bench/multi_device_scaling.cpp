/// \file multi_device_scaling.cpp
/// N-device scaling sweep: the same decode workload scheduled by HybriMoE's
/// hybrid stack and by the GPU-centric baseline (AdapMoE's component set) on
/// 1, 2 and 4 simulated A6000-class accelerators, each with a dedicated
/// host link (hw::Topology::replicated). Two claims are checked:
///
///  * at *every* device count, HybriMoE's mean decode-step makespan is
///    strictly below GPU-centric's — the hybrid policy's advantage does not
///    evaporate when devices multiply (exit 1 if it does);
///  * adding devices does not slow HybriMoE down (non-increasing TBT as the
///    device count grows — reported, and checked with a small tolerance).
///
/// The per-device expert-cache budget is held constant (total ratio scales
/// with the device count, capped at 75%), modeling the real situation where
/// each extra GPU brings its own VRAM.
///
/// `--stacks` replaces the two contenders; optional positional argument:
/// JSON summary path (BENCH_multi_device.json in CI).

#include <array>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hybrimoe;
  using namespace hybrimoe::bench;

  constexpr std::array<runtime::Framework, 2> kDefaults{
      runtime::Framework::HybriMoE, runtime::Framework::AdapMoE};
  const StackArgs args = parse_stack_args(argc, argv, kDefaults);

  print_header("Multi-device scaling: hybrid vs GPU-centric on 1/2/4 accelerators",
               "ROADMAP north-star: N-device topologies beyond the paper's pair");

  constexpr std::size_t kScalingDecodeSteps = 32;
  constexpr std::array<std::size_t, 3> kDeviceCounts{1, 2, 4};

  const auto model = moe::ModelConfig::deepseek();

  struct Cell {
    std::size_t devices = 0;
    std::string stack;
    double tbt = 0.0;
    double hit_rate = 0.0;
    std::size_t transfers = 0;
  };
  std::vector<Cell> cells;

  util::TextTable table(model.name + " — decode " +
                        std::to_string(kScalingDecodeSteps) +
                        " steps, per-device cache budget held constant");
  table.set_headers({"devices", "stack", "TBT", "hit rate", "xfers"});

  bool fail = false;
  std::vector<double> hybrid_tbts;
  for (const std::size_t n : kDeviceCounts) {
    runtime::TopologySpec topo_spec;
    topo_spec.preset = "a6000_xeon10";
    topo_spec.devices = n;

    runtime::ExperimentSpec spec =
        make_spec(model, std::min(0.25 * static_cast<double>(n), 0.75));
    spec.topology = runtime::resolve_topology(topo_spec);
    runtime::ExperimentHarness harness(spec);

    double first_tbt = 0.0;
    for (std::size_t s = 0; s < args.stacks.size(); ++s) {
      runtime::StackSpec stack = args.stacks[s];
      stack.topology = topo_spec;
      const auto decode = harness.run_decode(stack, kScalingDecodeSteps);

      Cell cell;
      cell.devices = n;
      cell.stack = stack.display_name();
      cell.tbt = decode.tbt_mean();
      cell.hit_rate = decode.cache.hit_rate();
      cell.transfers = decode.transfers;
      cells.push_back(cell);
      if (s == 0) {
        first_tbt = cell.tbt;
        hybrid_tbts.push_back(cell.tbt);
      }

      table.begin_row()
          .add_cell(n)
          .add_cell(cell.stack)
          .add_cell(util::format_seconds(cell.tbt))
          .add_cell(util::format_double(cell.hit_rate * 100.0, 1) + "%")
          .add_cell(cell.transfers);

      // The headline check: the first stack (HybriMoE by default) must beat
      // every other contender strictly at this device count.
      if (s > 0 && !(first_tbt < cell.tbt)) {
        std::cout << "FAIL: " << args.stacks.front().display_name() << " TBT "
                  << first_tbt << "s is not strictly below " << cell.stack
                  << " TBT " << cell.tbt << "s at " << n << " device(s)\n";
        fail = true;
      }
    }
  }
  table.print(std::cout);

  // Scaling sanity on the hybrid stack itself: more devices must not hurt
  // (1% tolerance absorbs cache-admission noise between topologies).
  for (std::size_t i = 1; i < hybrid_tbts.size(); ++i) {
    if (hybrid_tbts[i] > hybrid_tbts[i - 1] * 1.01) {
      std::cout << "FAIL: " << args.stacks.front().display_name()
                << " TBT regressed from " << hybrid_tbts[i - 1] << "s at "
                << kDeviceCounts[i - 1] << " device(s) to " << hybrid_tbts[i]
                << "s at " << kDeviceCounts[i] << "\n";
      fail = true;
    }
  }
  if (hybrid_tbts.size() >= 2)
    std::cout << "\n" << args.stacks.front().display_name() << " speedup 1->"
              << kDeviceCounts.back() << " devices: "
              << util::format_double(hybrid_tbts.front() / hybrid_tbts.back(), 2)
              << "x\n";

  if (!args.positional.empty()) {
    std::ofstream json(args.positional.front());
    util::JsonWriter w(json);
    w.field("bench").string("multi_device_scaling");
    w.field("model").string(model.name);
    w.field("decode_steps").number(kScalingDecodeSteps);
    w.field("pass").boolean(!fail);
    w.field("cells").begin_array();
    for (const Cell& c : cells) {
      auto item = w.row();
      item.field("devices").number(c.devices);
      item.field("stack").string(c.stack);
      item.field("tbt_s").number(c.tbt);
      item.field("hit_rate").number(c.hit_rate);
      item.field("transfers").number(c.transfers);
      item.close();
    }
    w.end_array();
    w.finish();
    std::cout << "Wrote " << args.positional.front() << "\n";
  }

  std::cout << (fail ? "\nRESULT: FAIL\n" : "\nRESULT: PASS\n");
  return fail ? 1 : 0;
}
