/// \file stack_matrix.cpp
/// Cross-product sweep over the declarative stack space — the scenario
/// matrix the closed Framework factory could not reach: every combination
/// of scheduler {hybrid, fixed-map, gpu-centric} x cache policy {mrs, lru,
/// lfu} x prefetcher {impact, none} runs the same prefill/decode traces on
/// DeepSeek @ 25% cache with identical engine flags and dispatch overhead,
/// so differences isolate the *policy cross-product* (the paper's §VI-A.3
/// isolation argument, extended off-preset: e.g. hybrid scheduling with an
/// LRU cache, or a GPU-only scheduler with MRS caching).
///
/// Combinations whose component triple coincides with a Framework preset
/// are marked; the bench requires at least 4 off-preset stacks to build and
/// run (exit 1 otherwise) — the acceptance check that the spec API actually
/// opened the cross-product.
///
/// `--stacks` replaces the matrix with an explicit list; `--list-stacks`
/// prints the catalogue. Optional positional argument: JSON summary path
/// (BENCH_stack_matrix.json in CI).

#include <fstream>
#include <iostream>

#include "bench_common.hpp"

namespace {

struct Row {
  hybrimoe::runtime::StackSpec spec;
  bool off_preset = true;
  double ttft = 0.0;
  double tbt = 0.0;
  double hit_rate = 0.0;
  std::size_t transfers = 0;
  std::size_t prefetches = 0;
  std::size_t maintenance = 0;
};

/// Does this spec's component triple coincide with a Framework preset's?
bool matches_a_preset(const hybrimoe::runtime::StackSpec& spec) {
  using namespace hybrimoe::runtime;
  for (const Framework f : kAllFrameworks) {
    const StackSpec preset = preset_spec(f);
    if (preset.scheduler.policy == spec.scheduler.policy &&
        preset.cache.policy == spec.cache.policy &&
        preset.prefetch.policy == spec.prefetch.policy)
      return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hybrimoe;
  using namespace hybrimoe::bench;

  const StackArgs args = parse_stack_args(argc, argv, {});

  print_header("Stack matrix: scheduler x cache x prefetcher cross-product",
               "§VI-A.3 component isolation, extended off-preset");

  constexpr std::size_t kPrefillTokens = 64;
  constexpr std::size_t kMatrixDecodeSteps = 32;

  std::vector<runtime::StackSpec> stacks = args.stacks;
  if (stacks.empty()) {
    for (const char* scheduler : {"hybrid", "fixed-map", "gpu-centric"})
      for (const char* cache : {"mrs", "lru", "lfu"})
        for (const char* prefetch : {"impact", "none"}) {
          runtime::StackSpec spec;  // flags/overhead at their shared defaults
          spec.scheduler.policy = scheduler;
          spec.cache.policy = cache;
          spec.prefetch.policy = prefetch;
          stacks.push_back(std::move(spec));
        }
  }

  const auto model = moe::ModelConfig::deepseek();
  runtime::ExperimentHarness harness(make_spec(model, 0.25));

  util::TextTable table(model.name + " @ 25% cache — prefill " +
                        std::to_string(kPrefillTokens) + " tokens, decode " +
                        std::to_string(kMatrixDecodeSteps) + " steps");
  table.set_headers({"stack", "TTFT", "TBT", "hit rate", "xfers", "prefetch",
                     "maint", "preset?"});

  std::vector<Row> rows;
  std::size_t off_preset_runs = 0;
  for (const auto& spec : stacks) {
    Row row;
    row.spec = spec;
    row.off_preset = !matches_a_preset(spec);
    row.ttft = harness.run_prefill(spec, kPrefillTokens).ttft();
    const auto decode = harness.run_decode(spec, kMatrixDecodeSteps);
    row.tbt = decode.tbt_mean();
    row.hit_rate = decode.cache.hit_rate();
    row.transfers = decode.transfers;
    row.prefetches = decode.prefetches;
    row.maintenance = decode.maintenance;
    if (row.off_preset) ++off_preset_runs;
    rows.push_back(row);

    table.begin_row()
        .add_cell(spec.display_name())
        .add_cell(util::format_seconds(row.ttft))
        .add_cell(util::format_seconds(row.tbt))
        .add_cell(util::format_double(row.hit_rate * 100.0, 1) + "%")
        .add_cell(row.transfers)
        .add_cell(row.prefetches)
        .add_cell(row.maintenance)
        .add_cell(row.off_preset ? "off-preset" : "~preset");
  }
  table.print(std::cout);

  if (!args.positional.empty()) {
    std::ofstream json(args.positional.front());
    util::JsonWriter w(json);
    w.field("bench").string("stack_matrix");
    w.field("model").string(model.name);
    w.field("cache_ratio").number(0.25);
    w.field("prefill_tokens").number(kPrefillTokens);
    w.field("decode_steps").number(kMatrixDecodeSteps);
    w.field("stacks").begin_array();
    for (const Row& r : rows) {
      auto item = w.row();
      item.field("stack").string(r.spec.display_name());
      item.field("scheduler").string(r.spec.scheduler.policy);
      item.field("cache").string(r.spec.cache.policy);
      item.field("prefetch").string(r.spec.prefetch.policy);
      item.field("off_preset").boolean(r.off_preset);
      item.field("ttft_s").number(r.ttft);
      item.field("tbt_s").number(r.tbt);
      item.field("hit_rate").number(r.hit_rate);
      item.field("transfers").number(r.transfers);
      item.field("prefetches").number(r.prefetches);
      item.field("maintenance").number(r.maintenance);
      item.close();
    }
    w.end_array();
    w.finish();
    std::cout << "\nWrote " << args.positional.front() << "\n";
  }

  std::cout << "\nOff-preset stacks run: " << off_preset_runs
            << " (the declarative spec API must open at least 4 beyond the "
               "factory presets).\n";
  if (off_preset_runs < 4 && args.stacks.empty()) {
    std::cout << "FAIL: expected >= 4 off-preset stacks in the default matrix\n";
    return 1;
  }
  return 0;
}
