/// \file serving_load.cpp
/// Serving trajectory bench (beyond the paper's single-stream figures): a
/// Poisson arrival-rate sweep across the evaluated stacks, measuring the
/// request-level serving metrics — p95 TTFT / TBT, output throughput and
/// goodput under a TBT SLO — plus the mean composed-step makespan. The
/// OnDemand baseline (Fig. 1(a) reference) rides along as the sanity floor:
/// HybriMoE's mean step makespan must never exceed it at equal load
/// (checked whenever both stacks are in the sweep).
///
/// `--stacks` swaps the evaluated stacks (presets, inline JSON, @files);
/// `--list-stacks` prints what is available. Optional positional argument:
/// path to emit a machine-readable JSON summary (BENCH_serving.json in CI)
/// to continue the serving perf trajectory.

#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "workload/request_stream.hpp"

namespace {

/// TBT SLO for goodput: a generous bound around the single-stream decode
/// regime of the A6000 profile (Fig. 8 is ~tens of ms per token).
constexpr double kTbtSlo = 0.100;  // seconds

struct Point {
  double rate = 0.0;
  std::string stack;
  double throughput = 0.0;
  double goodput = 0.0;
  hybrimoe::runtime::ServeMetrics::TailSummary ttft;
  hybrimoe::runtime::ServeMetrics::TailSummary tbt;
  double mean_step_makespan = 0.0;
};

double mean_step_makespan(const hybrimoe::runtime::ServeMetrics& m) {
  return m.steps.total_latency / static_cast<double>(m.steps.per_forward.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hybrimoe;
  using namespace hybrimoe::bench;

  // Paper legend order plus the on-demand floor.
  const StackArgs args = parse_stack_args(argc, argv, runtime::kAllFrameworks);

  print_header("Serving under load (request streams, continuous batching)",
               "serving extension; frameworks of Figs. 7/8");

  const auto model = moe::ModelConfig::deepseek();
  runtime::ExperimentHarness harness(make_spec(model, 0.25));

  workload::RequestStreamParams stream;
  stream.num_requests = 12;
  stream.prompt_tokens_min = 16;
  stream.prompt_tokens_max = 48;
  stream.decode_tokens_min = 6;
  stream.decode_tokens_max = 12;
  stream.seed = kBenchSeed;

  std::vector<Point> points;
  bool makespan_floor_violated = false;
  bool floor_checked = false;

  for (const double rate : {0.5, 1.0, 2.0}) {
    stream.arrival_rate = rate;
    const auto specs = workload::generate_request_stream(stream);
    // Traces are stack-independent: materialise once, serve copies.
    const auto requests = harness.materialize(specs);

    util::TextTable table(model.name + " — " + util::format_double(rate, 2) +
                          " req/s, " + std::to_string(stream.num_requests) +
                          " requests, goodput SLO p95 TBT <= " +
                          util::format_seconds(kTbtSlo));
    table.set_headers({"stack", "tok/s", "goodput tok/s", "p95 TTFT", "p95 TBT",
                       "mean step makespan"});

    double hybrimoe_makespan = -1.0;
    double ondemand_makespan = -1.0;
    for (const auto& stack : args.stacks) {
      const auto metrics = harness.serve(stack, requests);
      Point point;
      point.rate = rate;
      point.stack = stack.display_name();
      point.throughput = metrics.throughput();
      point.goodput = metrics.goodput(kTbtSlo);
      point.ttft = metrics.ttft_tails();
      point.tbt = metrics.tbt_tails();
      point.mean_step_makespan = mean_step_makespan(metrics);
      points.push_back(point);

      if (point.stack == runtime::to_string(runtime::Framework::HybriMoE))
        hybrimoe_makespan = point.mean_step_makespan;
      if (point.stack == runtime::to_string(runtime::Framework::OnDemand))
        ondemand_makespan = point.mean_step_makespan;

      table.begin_row()
          .add_cell(point.stack)
          .add_cell(util::format_double(point.throughput, 1))
          .add_cell(util::format_double(point.goodput, 1))
          .add_cell(util::format_seconds(point.ttft.p95))
          .add_cell(util::format_seconds(point.tbt.p95))
          .add_cell(util::format_seconds(point.mean_step_makespan));
    }
    table.print(std::cout);

    if (hybrimoe_makespan >= 0.0 && ondemand_makespan >= 0.0) {
      floor_checked = true;
      if (hybrimoe_makespan > ondemand_makespan) {
        makespan_floor_violated = true;
        std::cout << "FAIL: HybriMoE mean step makespan "
                  << util::format_seconds(hybrimoe_makespan) << " exceeds OnDemand "
                  << util::format_seconds(ondemand_makespan) << " at " << rate
                  << " req/s\n";
      }
    }
  }

  if (!args.positional.empty()) {
    std::ofstream json(args.positional.front());
    util::JsonWriter w(json);
    w.field("bench").string("serving_load");
    w.field("model").string(model.name);
    w.field("tbt_slo").number(kTbtSlo);
    w.field("points").begin_array();
    for (const Point& p : points) {
      auto item = w.row();
      item.field("rate").number(p.rate);
      item.field("framework").string(p.stack);
      item.field("throughput_tok_s").number(p.throughput);
      item.field("goodput_tok_s").number(p.goodput);
      item.field("ttft_p50_s").number(p.ttft.p50);
      item.field("ttft_p95_s").number(p.ttft.p95);
      item.field("ttft_p99_s").number(p.ttft.p99);
      item.field("tbt_p50_s").number(p.tbt.p50);
      item.field("tbt_p95_s").number(p.tbt.p95);
      item.field("tbt_p99_s").number(p.tbt.p99);
      item.field("mean_step_makespan_s").number(p.mean_step_makespan);
      item.close();
    }
    w.end_array();
    w.finish();
    std::cout << "\nWrote " << args.positional.front() << "\n";
  }

  std::cout << "\nHybriMoE's hybrid scheduling pays off most where queueing\n"
               "amplifies every per-step saving; the OnDemand floor check "
            << (makespan_floor_violated ? "FAILED"
                                        : (floor_checked ? "held" : "was skipped"))
            << ".\n";
  return makespan_floor_violated ? 1 : 0;
}
