/// \file load_sweep.cpp
/// Million-user load harness: the discrete-event serving core pushed through
/// a Poisson / burst / diurnal arrival-shape sweep across load levels, with
/// KV-cache accounting enabled (reject admission under a deliberately tight
/// budget) so the shed behaviour under memory pressure is measured, not just
/// the latency tails. Per (shape, rate) cell it reports the LoadSummary row:
/// p50/p99 TTFT and TBT, reject rate, output throughput and goodput under a
/// TBT SLO — the pass criteria every later scheduling/caching PR is judged
/// against.
///
/// Scale: the Poisson sweep serves >= 100k requests at default settings
/// (40k per load level x 3 levels); burst and diurnal ride at a fifth of
/// that per cell. The tiny model keeps a full run in minutes — the sweep
/// exercises queueing dynamics, not kernel arithmetic. Trace memory stays
/// bounded via ServeEngine::serve_stream's lazy materialisation. Set
/// HYBRIMOE_LOAD_SWEEP_REQUESTS to override the per-cell Poisson count
/// (CI's smoke job runs a short sweep this way).
///
/// Determinism is a checked invariant, not an aspiration: the first cell of
/// every shape is served twice and the two LoadSummary rows must agree bit
/// for bit (exit 1 otherwise), and the JSON artifact is seed-stable — the
/// same binary writes the same bytes run to run (CI byte-diffs it).
///
/// `--stacks` swaps the evaluated stack (single stack per run — the sweep is
/// about load response, not stack comparison); optional positional argument:
/// path to emit the JSON artifact (BENCH_load_sweep.json, committed under
/// bench/results/ to keep the perf trajectory diffable).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "serve_sim/kv.hpp"
#include "workload/request_stream.hpp"

namespace {

using hybrimoe::runtime::ServeMetrics;

/// TBT SLO for goodput, matching bench_serving_load's bound.
constexpr double kTbtSlo = 0.100;  // seconds

/// Offered-load levels (requests/second): under-saturated, near-saturated,
/// and overloaded for the tiny model at max_batch 8.
constexpr std::array<double, 3> kRates{250.0, 750.0, 1500.0};

/// Default Poisson requests per load level (3 levels -> 120k total >= the
/// 100k acceptance floor). Burst/diurnal cells run at a fifth of this.
constexpr std::size_t kPoissonRequestsPerCell = 40000;

/// KV budget in tokens of full context: six max-size requests — below the
/// max_batch of 8, so saturated cells actually shed under reject admission
/// while under-saturated cells (active set of 1-2) never feel it.
constexpr std::size_t kKvBudgetTokens = 6 * (48 + 12);

/// Per-cell Poisson request count, overridable for CI smoke runs.
std::size_t poisson_requests_per_cell() {
  if (const char* env = std::getenv("HYBRIMOE_LOAD_SWEEP_REQUESTS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
    std::cerr << "ignoring invalid HYBRIMOE_LOAD_SWEEP_REQUESTS='" << env << "'\n";
  }
  return kPoissonRequestsPerCell;
}

bool rows_identical(const ServeMetrics::LoadSummary& a,
                    const ServeMetrics::LoadSummary& b) {
  return a.shape == b.shape && a.arrival_rate == b.arrival_rate &&
         a.tbt_slo == b.tbt_slo && a.requests == b.requests &&
         a.finished == b.finished && a.rejected == b.rejected &&
         a.evictions == b.evictions && a.reject_rate == b.reject_rate &&
         a.ttft_p50 == b.ttft_p50 && a.ttft_p99 == b.ttft_p99 &&
         a.tbt_p50 == b.tbt_p50 && a.tbt_p99 == b.tbt_p99 &&
         a.throughput == b.throughput && a.goodput == b.goodput &&
         a.makespan == b.makespan;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hybrimoe;
  using namespace hybrimoe::bench;

  const StackArgs args =
      parse_stack_args(argc, argv, std::array{runtime::Framework::HybriMoE});
  if (args.stacks.size() != 1) {
    std::cerr << "bench_load_sweep sweeps load for exactly one stack; got "
              << args.stacks.size() << "\n";
    return 2;
  }
  const runtime::StackSpec& stack = args.stacks.front();

  print_header("Load sweep (arrival shapes x load levels, KV accounting on)",
               "serving extension; ROADMAP 'millions of users' harness");

  const auto model = moe::ModelConfig::tiny();
  runtime::ExperimentHarness harness(make_spec(model, 0.25));

  const double bytes_per_token = serve_sim::model_kv_bytes_per_token(model);

  runtime::ServeOptions options;
  options.max_batch = 8;
  options.max_prefill_chunk = 16;
  options.kv.budget_mb =
      static_cast<double>(kKvBudgetTokens) * bytes_per_token / 1.0e6;
  options.kv.bytes_per_token = bytes_per_token;
  options.kv.mode = serve_sim::AdmissionMode::Reject;

  const std::size_t poisson_n = poisson_requests_per_cell();
  const std::size_t other_n = std::max<std::size_t>(poisson_n / 5, 100);

  constexpr std::array<workload::ArrivalProcess, 3> kShapes{
      workload::ArrivalProcess::Poisson, workload::ArrivalProcess::Burst,
      workload::ArrivalProcess::Diurnal};

  std::vector<ServeMetrics::LoadSummary> rows;
  bool determinism_held = true;

  for (const auto shape : kShapes) {
    const std::size_t n =
        shape == workload::ArrivalProcess::Poisson ? poisson_n : other_n;

    util::TextTable table(std::string(to_string(shape)) + " arrivals — " +
                          model.name + ", " + std::to_string(n) +
                          " requests/cell, KV " +
                          util::format_double(options.kv.budget_mb, 3) +
                          " MB reject admission, goodput SLO p95 TBT <= " +
                          util::format_seconds(kTbtSlo));
    table.set_headers({"req/s", "finished", "rejected", "reject rate",
                       "p99 TTFT", "p99 TBT", "tok/s", "goodput tok/s"});

    for (std::size_t li = 0; li < kRates.size(); ++li) {
      const double rate = kRates[li];
      workload::RequestStreamParams stream;
      stream.num_requests = n;
      stream.arrival_rate = rate;
      stream.process = shape;
      stream.prompt_tokens_min = 16;
      stream.prompt_tokens_max = 48;
      stream.decode_tokens_min = 6;
      stream.decode_tokens_max = 12;
      stream.diurnal_period = 10.0;  // several day/night swings per cell
      stream.seed = kBenchSeed;

      const auto specs = workload::generate_request_stream(stream);
      const auto metrics = harness.serve_stream(stack, specs, options);
      auto row = metrics.summarize(to_string(shape), rate, kTbtSlo);

      // Determinism gate: the first cell of every shape runs twice; the
      // event core must reproduce the summary bit for bit.
      if (li == 0) {
        const auto again = harness.serve_stream(stack, specs, options)
                               .summarize(to_string(shape), rate, kTbtSlo);
        if (!rows_identical(row, again)) {
          determinism_held = false;
          std::cout << "FAIL: " << to_string(shape) << " @ " << rate
                    << " req/s is not deterministic across reruns\n";
        }
      }

      table.begin_row()
          .add_cell(util::format_double(rate, 0))
          .add_cell(std::to_string(row.finished))
          .add_cell(std::to_string(row.rejected))
          .add_cell(pct(row.reject_rate))
          .add_cell(util::format_seconds(row.ttft_p99))
          .add_cell(util::format_seconds(row.tbt_p99))
          .add_cell(util::format_double(row.throughput, 1))
          .add_cell(util::format_double(row.goodput, 1));
      rows.push_back(std::move(row));
    }
    table.print(std::cout);
  }

  if (!args.positional.empty()) {
    std::ofstream json(args.positional.front());
    util::JsonWriter w(json);
    w.field("bench").string("load_sweep");
    w.field("model").string(model.name);
    w.field("stack").string(stack.display_name());
    w.field("tbt_slo").number(kTbtSlo);
    w.field("kv_budget_mb").number(options.kv.budget_mb);
    w.field("admission").string(to_string(options.kv.mode));
    w.field("points").begin_array();
    for (const auto& r : rows) {
      auto item = w.row();
      item.field("shape").string(r.shape);
      item.field("rate").number(r.arrival_rate);
      item.field("requests").number(r.requests);
      item.field("finished").number(r.finished);
      item.field("rejected").number(r.rejected);
      item.field("evictions").number(r.evictions);
      item.field("reject_rate").number(r.reject_rate);
      item.field("ttft_p50_s").number(r.ttft_p50);
      item.field("ttft_p99_s").number(r.ttft_p99);
      item.field("tbt_p50_s").number(r.tbt_p50);
      item.field("tbt_p99_s").number(r.tbt_p99);
      item.field("throughput_tok_s").number(r.throughput);
      item.field("goodput_tok_s").number(r.goodput);
      item.field("makespan_s").number(r.makespan);
      item.close();
    }
    w.end_array();
    w.finish();
    std::cout << "\nWrote " << args.positional.front() << "\n";
  }

  std::cout << "\nDeterminism check "
            << (determinism_held ? "held" : "FAILED — event core is not seeded")
            << "; rerunning with the same seed must reproduce every row.\n";
  return determinism_held ? 0 : 1;
}
