/// \file exec_validation.cpp
/// Modeled-vs-measured validation of the threaded execution backend — the
/// repository's stand-in for the paper's §V real-system claim: hybrid
/// scheduling hides transfer latency in *wall-clock* time, not only in the
/// analytical model. The same decode trace runs through every framework
/// twice — once purely simulated, once lowered onto real threads (worker
/// pool + copy engine + GPU lane, paced to the calibrated cost model) — and
/// the bench reports the per-framework makespan error plus the bitwise
/// layer-output digests that certify both modes computed the same thing.
///
/// Pass criteria (exit code 1 on violation):
///  * HybriMoE modeled-vs-measured makespan error <= 25%;
///  * threaded digests identical to the simulated reference at 1, 2 and 8
///    workers (and across frameworks — scheduling must not change results).
///
/// Optional argv[1]: path to emit a JSON summary (BENCH_exec_validation.json
/// in CI).

#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "exec/executor.hpp"

namespace {

constexpr std::size_t kSteps = 8;
constexpr std::size_t kThreadedWorkers = 4;
/// Wall-clock budget per threaded run; sets the pacing scale so the whole
/// bench stays CI-friendly while task durations dwarf sleep overshoot.
constexpr double kTargetWallSeconds = 0.6;
constexpr double kHybriMoeErrorBound = 0.25;

struct Row {
  std::string framework;
  std::size_t workers = 0;
  double modeled = 0.0;
  double measured = 0.0;
  std::uint64_t digest = 0;

  [[nodiscard]] double error() const {
    return modeled > 0.0 ? std::abs(measured - modeled) / modeled : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hybrimoe;
  using namespace hybrimoe::bench;

  print_header("Execution-backend validation (simulated vs threaded wall clock)",
               "§V: C++ task allocation / real-time overlap claim");

  const auto model = moe::ModelConfig::deepseek();
  runtime::ExperimentHarness harness(make_spec(model, 0.25));

  // ---- Pass 1: simulated reference — modeled makespans + output digests.
  auto reference_executor = std::make_shared<exec::HybridExecutor>();
  std::vector<Row> simulated;
  for (const auto framework : runtime::kPaperFrameworks) {
    harness.set_execution(exec::ExecutionMode::Simulated, reference_executor);
    const auto metrics = harness.run_decode(framework, kSteps);
    Row row;
    row.framework = runtime::to_string(framework);
    row.modeled = metrics.total_latency;
    row.digest = metrics.exec_digest;
    simulated.push_back(row);
  }

  // ---- Pacing scale: wall-budget-driven, floored by host calibration so
  // every modeled task still dominates real kernel + wakeup times.
  double hybrimoe_modeled = 0.0;
  for (const Row& s : simulated)
    if (s.framework == runtime::to_string(runtime::Framework::HybriMoE))
      hybrimoe_modeled = s.modeled;
  exec::ExecOptions exec_options;
  const double calibrated =
      reference_executor->calibrate_time_scale(harness.costs(), 4.0);
  exec_options.time_scale =
      std::max(kTargetWallSeconds / hybrimoe_modeled, calibrated);
  exec_options.workers = kThreadedWorkers;
  std::cout << "pacing: " << util::format_double(exec_options.time_scale, 1)
            << "x wall per modeled second (calibration floor "
            << util::format_double(calibrated, 1) << "x)\n";

  // ---- Pass 2: threaded execution per framework, plus the HybriMoE
  // worker-count sweep for the determinism criterion.
  struct Run {
    runtime::Framework framework;
    std::size_t workers;
  };
  std::vector<Run> runs;
  for (const auto framework : runtime::kPaperFrameworks)
    runs.push_back({framework, kThreadedWorkers});
  for (const std::size_t workers : {1u, 2u, 8u})
    runs.push_back({runtime::Framework::HybriMoE, workers});

  // One measurement attempt per run; a run whose wall clock got preempted by
  // unrelated system load (the usual perf-bench hazard on shared CI hosts)
  // is retried once and keeps its better attempt.
  auto measure = [&](const Run& run) {
    exec::ExecOptions options = exec_options;
    options.workers = run.workers;
    harness.set_execution(exec::ExecutionMode::Threaded,
                          std::make_shared<exec::HybridExecutor>(options));
    const auto metrics = harness.run_decode(run.framework, kSteps);
    Row row;
    row.framework = runtime::to_string(run.framework);
    row.workers = run.workers;
    row.modeled = metrics.total_latency;
    row.measured = metrics.measured_latency;
    row.digest = metrics.exec_digest;
    return row;
  };
  std::vector<Row> threaded;
  for (const auto& run : runs) {
    Row row = measure(run);
    if (row.error() > kHybriMoeErrorBound) {
      const Row retry = measure(run);
      if (retry.error() < row.error()) row = retry;
    }
    threaded.push_back(row);
  }

  // ---- Report + pass criteria.
  util::TextTable table(model.name + " — decode, " + std::to_string(kSteps) +
                        " steps, modeled vs measured makespan");
  table.set_headers({"framework", "workers", "modeled", "measured", "error",
                     "digest ok"});
  bool digests_ok = true;
  bool hybrimoe_ok = true;
  for (std::size_t i = 0; i < threaded.size(); ++i) {
    const Row& row = threaded[i];
    const Row* ref = nullptr;
    for (const Row& s : simulated)
      if (s.framework == row.framework) ref = &s;
    const bool digest_match = ref != nullptr && ref->digest == row.digest;
    digests_ok = digests_ok && digest_match;
    if (row.framework == "HybriMoE" && row.error() > kHybriMoeErrorBound)
      hybrimoe_ok = false;
    table.begin_row()
        .add_cell(row.framework)
        .add_cell(std::to_string(row.workers))
        .add_cell(util::format_seconds(row.modeled))
        .add_cell(util::format_seconds(row.measured))
        .add_cell(util::format_double(row.error() * 100.0, 1) + "%")
        .add_cell(digest_match ? "yes" : "MISMATCH");
  }
  table.print(std::cout);

  // Scheduling must not change results: every framework sees the same trace,
  // so the simulated digests must agree with each other too.
  for (const Row& s : simulated)
    if (s.digest != simulated.front().digest) digests_ok = false;

  if (argc > 1) {
    std::ofstream json(argv[1]);
    util::JsonWriter w(json);
    w.field("bench").string("exec_validation");
    w.field("model").string(model.name);
    w.field("decode_steps").number(kSteps);
    w.field("time_scale").number(exec_options.time_scale);
    w.field("error_bound").number(kHybriMoeErrorBound);
    w.field("runs").begin_array();
    for (const Row& row : threaded) {
      auto item = w.row();
      item.field("framework").string(row.framework);
      item.field("workers").number(row.workers);
      item.field("modeled_s").number(row.modeled);
      item.field("measured_s").number(row.measured);
      item.field("error").number(row.error());
      item.close();
    }
    w.end_array();
    w.field("digests_ok").boolean(digests_ok);
    w.field("hybrimoe_within_bound").boolean(hybrimoe_ok);
    w.finish();
    std::cout << "\nWrote " << argv[1] << "\n";
  }

  std::cout << "\nDigest check (bitwise layer outputs, all modes/workers/policies): "
            << (digests_ok ? "PASS" : "FAIL")
            << "\nHybriMoE makespan error <= "
            << util::format_double(kHybriMoeErrorBound * 100.0, 0)
            << "%: " << (hybrimoe_ok ? "PASS" : "FAIL") << "\n";
  return digests_ok && hybrimoe_ok ? 0 : 1;
}
