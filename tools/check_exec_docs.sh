#!/usr/bin/env sh
# Doc-coverage gate for the execution backend's public headers (CI job).
#
# Rule: every public declaration at namespace scope in src/exec/*.hpp —
# classes, structs, enums, free functions, and public member functions /
# constructors inside `public:` sections — must be immediately preceded by a
# Doxygen `///` comment line (or share a line with one). The backend is the
# most concurrency-dense code in the repository; undocumented thread-safety
# assumptions are how it would rot.
#
# Usage: tools/check_exec_docs.sh [dir]   (default: src/exec)
# Exits non-zero listing undocumented declarations.

set -eu
dir="${1:-src/exec}"

fail=0
for header in "$dir"/*.hpp; do
  out=$(awk '
    # Track public sections inside class bodies (structs default public).
    /^ *public:/    { access = "public" }
    /^ *private:/   { access = "private" }
    /^ *protected:/ { access = "private" }
    /^(class|struct) /       { access = "public" }
    # A declaration line: class/struct/enum at col 0, or a function-ish line
    # (ends in "(" args..., contains "(") at col 0 or 2, that is not a macro,
    # comment, control keyword, or continuation.
    {
      line = $0
      is_decl = 0
      if (line ~ /^(class|struct|enum class|template) [A-Za-z_]/) is_decl = 1
      else if (line ~ /^ ? ?(\[\[nodiscard\]\] |inline |constexpr |static |explicit |virtual |friend )*[A-Za-z_:<>,&* ]*[A-Za-z_]+ *\(/ \
               && line !~ /^ *(if|for|while|switch|return)\b/ \
               && line !~ /^ *\/\// && line !~ /^#/ \
               && line !~ /^ *}/ && line !~ /=.*;$/) is_decl = 2
      if (is_decl == 2 && access == "private") is_decl = 0
      # Deleted/defaulted special members and operators need no docs.
      if (line ~ /= *(delete|default) *;/) is_decl = 0
      if (line ~ /operator/) is_decl = 0
      if (is_decl && prev !~ /^ *\/\/\// && line !~ /\/\/\//)
        printf "%s:%d: undocumented public declaration: %s\n", FILENAME, FNR, line
      if (line !~ /^ *$/) prev = line
    }
  ' "$header")
  if [ -n "$out" ]; then
    echo "$out"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo 'FAIL: public declarations lack /// doc comments (add \brief + thread-safety notes).'
  exit 1
fi
echo "OK: every public declaration in $dir/*.hpp is documented."
