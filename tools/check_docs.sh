#!/usr/bin/env sh
# Documentation gate (CI job), two checks in one:
#
# 1. Doc-comment coverage. Every public declaration at namespace scope in the
#    checked headers — classes, structs, enums, free functions, and public
#    member functions / constructors inside `public:` sections — must be
#    immediately preceded by a Doxygen `///` comment line (or share a line
#    with one). Checked: src/exec/*.hpp (the most concurrency-dense code in
#    the repository; undocumented thread-safety assumptions are how it would
#    rot), the fault-injection headers (src/scenario/*.hpp — scenario specs
#    are user-facing configuration; an undocumented knob is an unusable one),
#    the discrete-event serving core (src/serve_sim/*.hpp — its event
#    ordering and KV-accounting invariants are the bit-identity contract the
#    equivalence tests pin down), the trace subsystem (src/trace/*.hpp — its
#    schema and comparator semantics are the regression-gate contract) plus
#    the device-topology headers (src/hw/topology.hpp, src/sched/device.hpp —
#    the vocabulary every layer of the stack now speaks), and the SIMD
#    dispatch header (src/kernels/simd.hpp — its ulp-equivalence and
#    dispatch-determinism contract is what keeps digests stable).
#
# 2. Relative links. Every `[text](path)` link in docs/*.md, README.md and
#    bench/README.md that is not an absolute URL or a pure fragment must
#    resolve to an existing file, relative to the linking document.
#
# Usage: tools/check_docs.sh        (from the repository root)
# Exits non-zero listing undocumented declarations / broken links.

set -eu

fail=0

# ---------------------------------------------------------------------------
# 1. Doc-comment coverage.
# ---------------------------------------------------------------------------
doc_headers="src/exec/*.hpp src/scenario/*.hpp src/serve_sim/*.hpp src/trace/*.hpp src/hw/topology.hpp src/sched/device.hpp src/kernels/simd.hpp"
for header in $doc_headers; do
  out=$(awk '
    # Track public sections inside class bodies (structs default public).
    /^ *public:/    { access = "public" }
    /^ *private:/   { access = "private" }
    /^ *protected:/ { access = "private" }
    /^(class|struct) /       { access = "public" }
    # A declaration line: class/struct/enum at col 0, or a function-ish line
    # (ends in "(" args..., contains "(") at col 0 or 2, that is not a macro,
    # comment, control keyword, or continuation.
    {
      line = $0
      is_decl = 0
      if (line ~ /^(class|struct|enum class|template) [A-Za-z_]/) is_decl = 1
      else if (line ~ /^ ? ?(\[\[nodiscard\]\] |inline |constexpr |static |explicit |virtual |friend )*[A-Za-z_:<>,&* ]*[A-Za-z_]+ *\(/ \
               && line !~ /^ *(if|for|while|switch|return)[ (]/ \
               && line !~ /^ *\/\// && line !~ /^#/ && line !~ /^   / \
               && line !~ /^ *}/ && line !~ /^ *:/ && line !~ /=.*;$/) is_decl = 2
      if (is_decl == 2 && access == "private") is_decl = 0
      # Deleted/defaulted special members and operators need no docs.
      if (line ~ /= *(delete|default) *;/) is_decl = 0
      if (line ~ /operator/) is_decl = 0
      if (is_decl && prev !~ /^ *\/\/\// && line !~ /\/\/\//)
        printf "%s:%d: undocumented public declaration: %s\n", FILENAME, FNR, line
      if (line !~ /^ *$/) prev = line
    }
  ' "$header")
  if [ -n "$out" ]; then
    echo "$out"
    fail=1
  fi
done

# ---------------------------------------------------------------------------
# 2. Relative links in the docs.
# ---------------------------------------------------------------------------
for doc in docs/*.md README.md bench/README.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Extract (path) of every [text](path); strip #fragments; skip URLs.
  links=$(grep -o '\[[^]]*\]([^)]*)' "$doc" 2>/dev/null |
          sed 's/.*](\([^)]*\))/\1/' | sed 's/#.*$//' |
          grep -v '^[a-z][a-z0-9+.-]*:' | grep -v '^$' || true)
  for link in $links; do
    if [ ! -e "$dir/$link" ]; then
      echo "$doc: broken relative link: $link"
      fail=1
    fi
  done
done

if [ "$fail" -ne 0 ]; then
  echo 'FAIL: undocumented public declarations or broken doc links (see above).'
  exit 1
fi
echo "OK: public declarations documented ($doc_headers) and doc links resolve."
