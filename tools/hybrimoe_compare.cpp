/// \file hybrimoe_compare.cpp
/// Regression comparator over run artifacts: aligns two traces (from
/// `hybrimoe_run --trace`) or two bench/CLI JSON files by metric name and
/// judges every delta against a thresholds file — the CI gate that turns
/// "the numbers moved" into a failing build.
///
///   hybrimoe_compare baseline.trace candidate.trace
///   hybrimoe_compare bench/results/load_sweep.json new.json \
///       --thresholds tools/compare_thresholds.json
///
/// With no thresholds file every metric must match exactly (the right gate
/// for fixed-seed simulated runs). A thresholds file grants named metrics
/// slack: |delta| <= abs + rel * max(|baseline|, |candidate|), keyed by leaf
/// name (`tbt_p99_s` covers every `points[i].tbt_p99_s`). Exit codes:
/// 0 within thresholds, 1 violations or misaligned metrics, 2 usage or
/// malformed input. Comparing traces of different schema versions aborts —
/// cross-version deltas would be fabricated.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "trace/compare.hpp"

namespace {

constexpr const char* kUsage =
    R"(usage: hybrimoe_compare BASELINE CANDIDATE [--thresholds FILE]

  BASELINE, CANDIDATE   run artifacts: JSONL traces (hybrimoe_run --trace)
                        or bench/CLI JSON files (hybrimoe_run --json,
                        bench_* --json). Both sides must be comparable runs
                        (same tool, same configuration).
  --thresholds FILE     per-metric tolerance table:
                        {"default": {"abs": A, "rel": R},
                         "metrics": {"name": {"abs": A, "rel": R}, ...}}
                        (default: exact equality for every metric)

exit: 0 all metrics within thresholds; 1 violations; 2 usage/malformed input
)";

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "hybrimoe_compare: " << message << "\n" << kUsage;
  std::exit(2);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage_error("cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, candidate_path, thresholds_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--thresholds") {
      if (i + 1 >= argc) usage_error("--thresholds requires an argument");
      thresholds_path = argv[++i];
    } else if (!arg.empty() && arg.front() == '-') {
      usage_error("unknown option '" + arg + "'");
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      usage_error("unexpected argument '" + arg + "'");
    }
  }
  if (candidate_path.empty())
    usage_error("expected BASELINE and CANDIDATE artifacts");

  using hybrimoe::trace::Artifact;
  try {
    hybrimoe::trace::Thresholds thresholds;
    if (!thresholds_path.empty())
      thresholds = hybrimoe::trace::parse_thresholds(slurp(thresholds_path));
    const Artifact baseline =
        hybrimoe::trace::parse_artifact(slurp(baseline_path), "baseline");
    const Artifact candidate =
        hybrimoe::trace::parse_artifact(slurp(candidate_path), "candidate");

    const auto report = hybrimoe::trace::compare(baseline, candidate, thresholds);
    for (const auto& d : report.deltas) {
      if (!d.violated) continue;
      std::cout << "VIOLATION " << d.name << ": baseline " << d.baseline
                << " candidate " << d.candidate << " (delta " << d.delta
                << ", limit " << d.limit << ")\n";
    }
    for (const auto& name : report.missing)
      std::cout << "MISALIGNED " << name << "\n";
    std::cout << report.deltas.size() << " metrics compared, "
              << report.violations << " violation(s), " << report.missing.size()
              << " misaligned\n";
    return report.ok() ? 0 : 1;
  } catch (const std::invalid_argument& e) {
    std::cerr << "hybrimoe_compare: " << e.what() << "\n";
    return 2;
  }
}
