/// \file hybrimoe_run.cpp
/// Serve a request stream with any declarative stack — the CLI face of the
/// StackSpec API. The stack comes from a preset name, an inline JSON spec
/// or a spec file; the tool materialises a seeded request stream, serves it
/// with continuous batching and reports the request-level serving metrics
/// (TTFT/TBT tails, throughput, goodput under a TBT SLO).
///
///   hybrimoe_run HybriMoE --requests 16 --rate 2
///   hybrimoe_run '{"scheduler": "hybrid", "cache": "lru", "prefetch": "none"}'
///   hybrimoe_run @examples/stacks/hybrid_lru.json --model qwen2 --json out.json
///
/// `--list-stacks` prints the registered presets and component families;
/// `--print-spec` echoes the canonical JSON of the resolved stack (useful as
/// a starting point for a custom spec file). Exit codes: 0 success, 2 usage
/// or spec error.

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/session.hpp"
#include "runtime/stack_registry.hpp"
#include "scenario/drivers.hpp"
#include "trace/recorder.hpp"
#include "trace/sink.hpp"
#include "util/json_writer.hpp"
#include "util/table.hpp"
#include "workload/request_stream.hpp"

namespace {

using namespace hybrimoe;

constexpr const char* kUsage = R"(usage: hybrimoe_run [stack] [options]

  stack                 preset name (see --list-stacks), inline JSON spec
                        ('{...}'), or @path to a spec file
                        (default: HybriMoE)

options:
  --model NAME          deepseek | qwen2 | mixtral | tiny   (default deepseek)
  --topology NAME[:N]   topology preset, optional device-count override
                        (default: the spec's topology, else a6000_xeon10)
  --cache-ratio R       GPU expert cache ratio in [0,1]     (default 0.25)
  --requests N          number of requests in the stream    (default 12)
  --rate R              mean arrival rate, requests/second  (default 1.0)
  --burst               burst arrivals instead of Poisson
  --arrival SHAPE       arrival process: poisson | burst | diurnal
                        (default poisson; overrides --burst)
  --diurnal-period S    diurnal sinusoid period in seconds  (default 60)
  --diurnal-amplitude A relative diurnal rate swing in [0,1) (default 0.5)
  --seed N              stream + trace seed                 (default 42)
  --max-batch N         continuous-batching admission cap   (default 8)
  --chunk N             max prefill chunk tokens, 0 = whole (default 0)
  --slo S               TBT SLO in seconds for goodput      (default 0.1)
  --scenario ARG        fault-injection scenario: preset name (straggler_link,
                        device_loss, cache_thrash, overload_storm), inline
                        JSON ('{...}') or @path; overrides the spec's own
                        "scenario" entry
  --vip-frac F          fraction of requests drawn as VIP tier   (default 0)
  --be-frac F           fraction drawn as best-effort tier       (default 0)
  --priority            priority-aware admission (VIP before standard
                        before best-effort)
  --preempt             allow preempting a long prefill chunk when a
                        higher-tier decode would miss its TBT SLO
  --vip-slo S           VIP tier TBT SLO in seconds (enables SLO-aware
                        preemption; 0 = unset)
  --kv-budget MB|auto   enable KV-cache accounting with this budget in MB;
                        'auto' derives it from the resolved topology
                        (overrides the spec's "kv" entry)
  --kv-bytes-per-token B per-token KV footprint in bytes
                        (default: derived from the model)
  --admission MODE      KV admission policy: queue | reject | evict
                        (default queue; requires KV accounting)
  --exec MODE           execution backend: simulated | threaded | performance
                        (default: the spec's "exec" entry, else simulated).
                        threaded/performance attach a real executor; threaded
                        calibrates pacing to this host, performance runs the
                        kernels unpaced (measured latency = real wall time)
  --json PATH           write a machine-readable summary
  --trace PATH          stream a per-step JSONL trace of the run (schema
                        hybrimoe-trace v1; compare runs with
                        hybrimoe_compare)
  --print-spec          echo the canonical spec JSON and exit
  --list-stacks         list presets and registered components, then exit
  --help                this text
)";

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "hybrimoe_run: " << message << "\n" << kUsage;
  std::exit(2);
}

exec::ExecutionMode exec_mode_from_flag(const std::string& name) {
  if (name == "simulated") return exec::ExecutionMode::Simulated;
  if (name == "threaded") return exec::ExecutionMode::Threaded;
  if (name == "performance") return exec::ExecutionMode::Performance;
  throw std::invalid_argument(util::unknown_name_message(
      "execution mode", name, {"simulated", "threaded", "performance"}));
}

moe::ModelConfig model_from_name(const std::string& name) {
  if (name == "deepseek") return moe::ModelConfig::deepseek();
  if (name == "qwen2") return moe::ModelConfig::qwen2();
  if (name == "mixtral") return moe::ModelConfig::mixtral();
  if (name == "tiny") return moe::ModelConfig::tiny();
  throw std::invalid_argument(util::unknown_name_message(
      "model", name, {"deepseek", "mixtral", "qwen2", "tiny"}));
}

struct Options {
  std::string stack_arg = "HybriMoE";
  std::string model = "deepseek";
  std::string topology;  ///< "preset" or "preset:N"; empty = spec's choice
  double cache_ratio = 0.25;
  std::size_t requests = 12;
  double rate = 1.0;
  bool burst = false;
  std::string arrival;  ///< empty = --burst flag decides (back-compat)
  double diurnal_period = 60.0;
  double diurnal_amplitude = 0.5;
  std::uint64_t seed = 42;
  std::size_t max_batch = 8;
  std::size_t chunk = 0;
  double slo = 0.1;
  std::string scenario;  ///< empty = the spec's own "scenario" entry, if any
  double vip_frac = 0.0;
  double be_frac = 0.0;
  bool priority = false;
  bool preempt = false;
  double vip_slo = 0.0;
  std::string kv_budget;  ///< "" = off, "auto" = topology-derived, else MB
  double kv_bytes_per_token = 0.0;
  std::string admission;  ///< "" = queue (only meaningful with KV accounting)
  std::string exec;       ///< "" = the spec's "exec" entry, else simulated
  std::string json_path;
  std::string trace_path;
  bool print_spec = false;
};

Options parse_options(int argc, char** argv) {
  Options opts;
  bool stack_set = false;
  auto next = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) usage_error(std::string(flag) + " requires an argument");
    return argv[++i];
  };
  // Numeric flags: a malformed value is a usage error (exit 2), not an
  // uncaught std::sto* exception.
  auto numeric = [&](const char* flag, const std::string& value, auto parse) {
    try {
      std::size_t consumed = 0;
      const auto parsed = parse(value, &consumed);
      if (consumed != value.size()) throw std::invalid_argument(value);
      return parsed;
    } catch (const std::exception&) {
      usage_error(std::string(flag) + " got non-numeric value '" + value + "'");
    }
  };
  auto to_double = [&](const char* flag, const std::string& v) {
    return numeric(flag, v, [](const std::string& s, std::size_t* n) {
      return std::stod(s, n);
    });
  };
  auto to_count = [&](const char* flag, const std::string& v) -> std::size_t {
    return numeric(flag, v, [](const std::string& s, std::size_t* n) {
      return std::stoul(s, n);
    });
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else if (arg == "--list-stacks") {
      runtime::print_stack_catalog(std::cout);
      std::exit(0);
    } else if (arg == "--print-spec") {
      opts.print_spec = true;
    } else if (arg == "--burst") {
      opts.burst = true;
    } else if (arg == "--arrival") {
      opts.arrival = next(i, "--arrival");
    } else if (arg == "--diurnal-period") {
      opts.diurnal_period = to_double("--diurnal-period", next(i, "--diurnal-period"));
    } else if (arg == "--diurnal-amplitude") {
      opts.diurnal_amplitude =
          to_double("--diurnal-amplitude", next(i, "--diurnal-amplitude"));
    } else if (arg == "--model") {
      opts.model = next(i, "--model");
    } else if (arg == "--topology") {
      opts.topology = next(i, "--topology");
    } else if (arg == "--cache-ratio") {
      opts.cache_ratio = to_double("--cache-ratio", next(i, "--cache-ratio"));
    } else if (arg == "--requests") {
      opts.requests = to_count("--requests", next(i, "--requests"));
    } else if (arg == "--rate") {
      opts.rate = to_double("--rate", next(i, "--rate"));
    } else if (arg == "--seed") {
      opts.seed = numeric("--seed", next(i, "--seed"),
                          [](const std::string& s, std::size_t* n) {
                            return std::stoull(s, n);
                          });
    } else if (arg == "--max-batch") {
      opts.max_batch = to_count("--max-batch", next(i, "--max-batch"));
    } else if (arg == "--chunk") {
      opts.chunk = to_count("--chunk", next(i, "--chunk"));
    } else if (arg == "--slo") {
      opts.slo = to_double("--slo", next(i, "--slo"));
    } else if (arg == "--scenario") {
      opts.scenario = next(i, "--scenario");
    } else if (arg == "--vip-frac") {
      opts.vip_frac = to_double("--vip-frac", next(i, "--vip-frac"));
    } else if (arg == "--be-frac") {
      opts.be_frac = to_double("--be-frac", next(i, "--be-frac"));
    } else if (arg == "--priority") {
      opts.priority = true;
    } else if (arg == "--preempt") {
      opts.preempt = true;
    } else if (arg == "--vip-slo") {
      opts.vip_slo = to_double("--vip-slo", next(i, "--vip-slo"));
    } else if (arg == "--kv-budget") {
      opts.kv_budget = next(i, "--kv-budget");
      if (opts.kv_budget != "auto")
        (void)to_double("--kv-budget", opts.kv_budget);
    } else if (arg == "--kv-bytes-per-token") {
      opts.kv_bytes_per_token =
          to_double("--kv-bytes-per-token", next(i, "--kv-bytes-per-token"));
    } else if (arg == "--admission") {
      opts.admission = next(i, "--admission");
    } else if (arg == "--exec") {
      opts.exec = next(i, "--exec");
    } else if (arg == "--json") {
      opts.json_path = next(i, "--json");
    } else if (arg == "--trace") {
      opts.trace_path = next(i, "--trace");
    } else if (arg == "--stack") {
      opts.stack_arg = next(i, "--stack");
      stack_set = true;
    } else if (!arg.empty() && arg.front() == '-') {
      usage_error("unknown option '" + arg + "'");
    } else if (!stack_set) {
      opts.stack_arg = arg;
      stack_set = true;
    } else {
      usage_error("unexpected argument '" + arg + "'");
    }
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts = parse_options(argc, argv);

  runtime::StackSpec stack;
  try {
    stack = runtime::resolve_stack(opts.stack_arg);
    if (!opts.scenario.empty())
      stack.scenario = scenario::resolve_scenario(opts.scenario);
    stack.validate();
  } catch (const std::invalid_argument& e) {
    std::cerr << "hybrimoe_run: " << e.what() << "\n";
    return 2;
  }

  if (opts.print_spec) {
    std::cout << runtime::to_json(stack) << "\n";
    return 0;
  }

  try {
    // Device complement: --topology overrides the spec's own topology
    // section; either way the cost model is built from the resolved result.
    if (!opts.topology.empty()) {
      runtime::TopologySpec topo;
      const auto colon = opts.topology.find(':');
      topo.preset = opts.topology.substr(0, colon);
      if (colon != std::string::npos) {
        const std::string count = opts.topology.substr(colon + 1);
        try {
          std::size_t consumed = 0;
          topo.devices = std::stoul(count, &consumed);
          if (consumed != count.size()) throw std::invalid_argument(count);
        } catch (const std::exception&) {
          throw std::invalid_argument("--topology device count '" + count +
                                      "' is not a number");
        }
      }
      stack.topology = topo;
    }
    runtime::ExperimentSpec spec;
    spec.model = model_from_name(opts.model);
    spec.machine = hw::MachineProfile::a6000_xeon10();
    spec.topology = runtime::resolve_topology(stack.topology);
    spec.cache_ratio = opts.cache_ratio;
    spec.trace.seed = opts.seed;
    runtime::ExperimentHarness harness(spec);

    // --exec overrides the spec's "exec" entry. Threaded/Performance need a
    // real executor, which a declarative spec alone cannot carry — build one
    // here and attach it before the harness builds any engine.
    if (!opts.exec.empty()) stack.execution = exec_mode_from_flag(opts.exec);
    const exec::ExecutionMode exec_mode =
        stack.execution.value_or(exec::ExecutionMode::Simulated);
    if (exec_mode != exec::ExecutionMode::Simulated) {
      exec::ExecOptions exec_options;
      if (exec_mode == exec::ExecutionMode::Threaded) {
        // Pacing must dominate real kernel time on this host: probe with a
        // default-built executor, then bake the calibrated scale in.
        exec::HybridExecutor probe;
        exec_options.time_scale = probe.calibrate_time_scale(harness.costs(), 4.0);
      }
      harness.set_execution(exec_mode,
                            std::make_shared<exec::HybridExecutor>(exec_options));
    }

    workload::RequestStreamParams stream;
    stream.num_requests = opts.requests;
    stream.arrival_rate = opts.rate;
    stream.process = opts.burst ? workload::ArrivalProcess::Burst
                                : workload::ArrivalProcess::Poisson;
    if (!opts.arrival.empty())
      stream.process = workload::arrival_from_name(opts.arrival);
    stream.diurnal_period = opts.diurnal_period;
    stream.diurnal_amplitude = opts.diurnal_amplitude;
    stream.seed = opts.seed;
    stream.vip_fraction = opts.vip_frac;
    stream.best_effort_fraction = opts.be_frac;
    auto request_specs = workload::generate_request_stream(stream);
    if (stack.scenario.has_value())
      request_specs =
          scenario::shape_stream(std::move(request_specs), *stack.scenario);

    runtime::ServeOptions serve_options;
    serve_options.max_batch = opts.max_batch;
    serve_options.max_prefill_chunk = opts.chunk;
    serve_options.priority_admission = opts.priority;
    serve_options.preemption = opts.preempt;
    if (opts.vip_slo > 0.0)
      serve_options.tiers[workload::priority_index(workload::Priority::Vip)]
          .tbt_slo = opts.vip_slo;

    // KV accounting: --kv-budget overrides the spec's "kv" entry; 'auto'
    // derives the budget from the resolved topology. The mode/footprint
    // flags refine whichever KvSpec is in force.
    if (!opts.kv_budget.empty()) {
      serve_sim::KvSpec kv;
      kv.budget_mb = opts.kv_budget == "auto"
                         ? serve_sim::derived_kv_budget_mb(*spec.topology)
                         : std::stod(opts.kv_budget);
      stack.kv = kv;
    }
    if (!opts.admission.empty() || opts.kv_bytes_per_token > 0.0) {
      if (!stack.kv.has_value())
        throw std::invalid_argument(
            "--admission/--kv-bytes-per-token need KV accounting — pass "
            "--kv-budget or a spec with a \"kv\" entry");
      if (!opts.admission.empty())
        stack.kv->mode = serve_sim::admission_from_name(opts.admission);
      if (opts.kv_bytes_per_token > 0.0)
        stack.kv->bytes_per_token = opts.kv_bytes_per_token;
    }

    // --trace: stream the run's per-step/per-event records as JSONL. The
    // recorder is an observer, so traced and untraced runs report identical
    // metrics; without --trace and without a scenario the hook stays null
    // and the serving core keeps its bit-identical fast path.
    std::ofstream trace_stream;
    std::optional<trace::OstreamSink> trace_sink;
    std::optional<trace::Recorder> recorder;
    if (!opts.trace_path.empty()) {
      trace_stream.open(opts.trace_path);
      if (!trace_stream) {
        std::cerr << "hybrimoe_run: cannot write '" << opts.trace_path << "'\n";
        return 2;
      }
      trace_sink.emplace(trace_stream);
      trace::RecorderConfig config;
      config.costs = &harness.costs();
      config.expert_bytes = static_cast<double>(spec.model.routed_expert_bytes());
      config.sink = &*trace_sink;
      config.stack = stack.display_name();
      config.model = spec.model.name;
      config.seed = opts.seed;
      config.devices = spec.topology->num_accelerators();
      recorder.emplace(std::move(config));
    }

    // The scenario driver shares the harness's cost model with the engines
    // the harness builds, so its before_step mutations are seen by the run.
    // With both a scenario and --trace, the driver delegates its recording
    // to the streaming recorder — one hook, one trace.
    std::optional<scenario::ScenarioDriver> driver;
    if (stack.scenario.has_value()) {
      driver.emplace(*stack.scenario, harness.mutable_costs(),
                     recorder.has_value() ? &*recorder : nullptr);
      serve_options.hook = &*driver;
    } else if (recorder.has_value()) {
      serve_options.hook = &*recorder;
    }

    std::cout << "stack   : " << stack.display_name() << "\n"
              << "spec    : " << runtime::to_json(stack) << "\n"
              << "model   : " << spec.model.name << " @ "
              << opts.cache_ratio * 100 << "% cache\n"
              << "topology: " << spec.topology->name << " ("
              << spec.topology->num_accelerators() << " accelerator(s))\n"
              << "stream  : " << opts.requests << " requests, "
              << to_string(stream.process) << " arrivals @ " << opts.rate
              << " req/s, seed " << opts.seed << "\n";
    if (stack.scenario.has_value())
      std::cout << "scenario: " << scenario::to_json(*stack.scenario) << "\n";
    std::cout << "\n";

    const auto metrics = harness.serve(stack, request_specs, serve_options);

    // A fully shed stream (tight KV budget under reject admission) has no
    // latency samples — report zeros instead of tripping the accessors'
    // preconditions.
    runtime::ServeMetrics::TailSummary ttft{};
    runtime::ServeMetrics::TailSummary tbt{};
    if (metrics.finished_count() > 0) ttft = metrics.ttft_tails();
    if (!metrics.tbts().empty()) tbt = metrics.tbt_tails();
    util::TextTable table("serving results — " + stack.display_name());
    table.set_headers({"metric", "value"});
    auto row = [&table](const std::string& k, const std::string& v) {
      table.begin_row().add_cell(k).add_cell(v);
    };
    row("requests finished", std::to_string(metrics.finished_count()));
    if (metrics.rejected_count() > 0)
      row("requests rejected", std::to_string(metrics.rejected_count()));
    row("output tokens", std::to_string(metrics.total_generated_tokens()));
    row("makespan", util::format_seconds(metrics.makespan));
    row("throughput", util::format_double(metrics.throughput(), 2) + " tok/s");
    row("goodput (p95 TBT <= " + util::format_seconds(opts.slo) + ")",
        util::format_double(metrics.goodput(opts.slo), 2) + " tok/s");
    row("TTFT p50/p95/p99", util::format_seconds(ttft.p50) + " / " +
                                util::format_seconds(ttft.p95) + " / " +
                                util::format_seconds(ttft.p99));
    row("TBT p50/p95/p99", util::format_seconds(tbt.p50) + " / " +
                               util::format_seconds(tbt.p95) + " / " +
                               util::format_seconds(tbt.p99));
    if (metrics.kv.budget_bytes > 0.0) {
      row("KV budget / peak",
          util::format_double(metrics.kv.budget_bytes / 1e6, 1) + " MB / " +
              util::format_double(metrics.kv.peak_bytes / 1e6, 1) + " MB");
      row("KV rejects / evictions", std::to_string(metrics.kv.rejected) + " / " +
                                        std::to_string(metrics.kv.evictions));
    }
    row("cache hit rate",
        util::format_double(metrics.steps.cache.hit_rate() * 100.0, 1) + "%");
    row("transfers / prefetches / maintenance",
        std::to_string(metrics.steps.transfers) + " / " +
            std::to_string(metrics.steps.prefetches) + " / " +
            std::to_string(metrics.steps.maintenance));
    std::ostringstream digest_hex;
    digest_hex << "0x" << std::hex << std::uppercase << metrics.steps.exec_digest;
    if (exec_mode != exec::ExecutionMode::Simulated) {
      row("exec mode", exec::to_string(exec_mode));
      row("measured latency", util::format_seconds(metrics.steps.measured_latency));
      row("exec digest", digest_hex.str());
    }
    table.print(std::cout);

    if (recorder.has_value()) {
      recorder->write_summary(metrics);
      std::cout << "\nWrote " << opts.trace_path << "\n";
    }

    if (!opts.json_path.empty()) {
      std::ofstream json(opts.json_path);
      if (!json) {
        std::cerr << "hybrimoe_run: cannot write '" << opts.json_path << "'\n";
        return 2;
      }
      util::JsonWriter w(json);
      w.field("tool").string("hybrimoe_run");
      w.field("stack").string(stack.display_name());
      w.field("spec").raw(runtime::to_json(stack));
      w.field("model").string(spec.model.name);
      w.field("cache_ratio").number(opts.cache_ratio);
      w.field("requests").number(metrics.finished_count());
      w.field("output_tokens").number(metrics.total_generated_tokens());
      w.field("makespan_s").number(metrics.makespan);
      w.field("throughput_tok_s").number(metrics.throughput());
      w.field("goodput_tok_s").number(metrics.goodput(opts.slo));
      w.field("tbt_slo_s").number(opts.slo);
      w.field("ttft_p50_s").number(ttft.p50);
      w.field("ttft_p95_s").number(ttft.p95);
      w.field("ttft_p99_s").number(ttft.p99);
      w.field("tbt_p50_s").number(tbt.p50);
      w.field("tbt_p95_s").number(tbt.p95);
      w.field("tbt_p99_s").number(tbt.p99);
      w.field("cache_hit_rate").number(metrics.steps.cache.hit_rate());
      // New fields are gated so KV-free (and diurnal-free) artifacts stay
      // byte-identical to the pre-event-engine schema bench_priority_isolation
      // and the golden regression tests consume.
      if (stream.process == workload::ArrivalProcess::Diurnal) {
        w.field("arrival").string("diurnal");
        w.field("diurnal_period_s").number(stream.diurnal_period);
        w.field("diurnal_amplitude").number(stream.diurnal_amplitude);
      }
      if (metrics.kv.budget_bytes > 0.0) {
        w.field("requests_rejected").number(metrics.rejected_count());
        w.field("kv_budget_mb").number(metrics.kv.budget_bytes / 1e6);
        w.field("kv_peak_mb").number(metrics.kv.peak_bytes / 1e6);
        w.field("kv_rejected").number(metrics.kv.rejected);
        w.field("kv_evictions").number(metrics.kv.evictions);
        w.field("admission").string(serve_sim::to_string(stack.kv->mode));
      }
      // Execution fields are gated the same way: simulated-mode artifacts
      // (every committed golden) stay byte-identical to the prior schema.
      if (exec_mode != exec::ExecutionMode::Simulated) {
        w.field("exec").string(exec::to_string(exec_mode));
        w.field("measured_latency_s").number(metrics.steps.measured_latency);
        w.field("exec_digest").string(digest_hex.str());
      }
      w.finish();
      std::cout << "\nWrote " << opts.json_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "hybrimoe_run: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
