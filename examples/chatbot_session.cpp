/// \file chatbot_session.cpp
/// A realistic serving scenario: a multi-turn chat session against an
/// offloaded Qwen2-57B-A14B. Each turn samples a prompt length from the
/// ChatGPT-Prompts distribution, prefills it, then decodes a reply. The
/// example reports per-turn TTFT / TBT for HybriMoE vs kTransformers —
/// the user-facing latencies an edge deployment cares about.

#include <iostream>

#include "runtime/session.hpp"
#include "util/table.hpp"
#include "workload/datasets.hpp"

int main() {
  using namespace hybrimoe;

  runtime::ExperimentSpec spec;
  spec.model = moe::ModelConfig::qwen2();
  spec.machine = hw::MachineProfile::a6000_xeon10();
  spec.cache_ratio = 0.50;
  spec.trace.seed = 7;

  constexpr std::size_t kTurns = 4;
  constexpr std::size_t kReplyTokens = 24;

  std::cout << "Chat session: " << spec.model.name << " @ "
            << spec.cache_ratio * 100 << "% cache, prompts ~ "
            << workload::to_string(workload::Dataset::ChatGptPrompts) << "\n\n";

  runtime::ExperimentHarness harness(spec);
  util::Rng length_rng(spec.trace.seed);

  util::TextTable table("per-turn latency, HybriMoE vs KTransformers");
  table.set_headers({"turn", "prompt", "TTFT ktrans", "TTFT hybrimoe", "TBT ktrans",
                     "TBT hybrimoe", "TTFT speedup", "TBT speedup"});

  double ttft_gain = 0.0;
  double tbt_gain = 0.0;
  for (std::size_t turn = 0; turn < kTurns; ++turn) {
    const std::size_t prompt =
        workload::sample_prompt_length(workload::Dataset::ChatGptPrompts, length_rng);

    const auto kt_prefill = harness.run_prefill(runtime::Framework::KTransformers, prompt);
    const auto hm_prefill = harness.run_prefill(runtime::Framework::HybriMoE, prompt);
    const auto kt_decode =
        harness.run_decode(runtime::Framework::KTransformers, kReplyTokens + turn);
    const auto hm_decode =
        harness.run_decode(runtime::Framework::HybriMoE, kReplyTokens + turn);

    const double sp_ttft = kt_prefill.ttft() / hm_prefill.ttft();
    const double sp_tbt = kt_decode.tbt_mean() / hm_decode.tbt_mean();
    ttft_gain += sp_ttft;
    tbt_gain += sp_tbt;

    table.begin_row()
        .add_cell(std::to_string(turn + 1))
        .add_cell(std::to_string(prompt) + " tok")
        .add_cell(util::format_seconds(kt_prefill.ttft()))
        .add_cell(util::format_seconds(hm_prefill.ttft()))
        .add_cell(util::format_seconds(kt_decode.tbt_mean()))
        .add_cell(util::format_seconds(hm_decode.tbt_mean()))
        .add_cell(util::format_speedup(sp_ttft))
        .add_cell(util::format_speedup(sp_tbt));
  }
  table.print(std::cout);

  std::cout << "\nsession average: TTFT " << util::format_speedup(ttft_gain / kTurns)
            << ", TBT " << util::format_speedup(tbt_gain / kTurns)
            << " vs KTransformers\n";
  return 0;
}
