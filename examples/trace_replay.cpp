/// \file trace_replay.cpp
/// Record / replay workflow: capture a routing trace to a file, reload it,
/// and evaluate several scheduling policies against the *identical* expert
/// activations — how one A/B-tests cache and scheduling changes offline
/// without re-running a model.

#include <cstdio>
#include <iostream>

#include "core/warmup.hpp"
#include "runtime/frameworks.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"
#include "workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace hybrimoe;

  const std::string path =
      argc > 1 ? argv[1] : std::string("/tmp/hybrimoe_recorded_trace.txt");
  const auto model = moe::ModelConfig::deepseek();

  // --- Record: generate a 32-step decode trace and persist it.
  workload::TraceGenParams params;
  params.seed = 1234;
  workload::TraceGenerator generator(model, params);
  const auto recorded = generator.generate_decode(32);
  workload::save_trace(path, recorded);
  std::cout << "recorded " << recorded.num_steps() << "-step decode trace of "
            << model.name << " to " << path << "\n";

  // --- Replay: reload and evaluate every framework on the same trace.
  const auto replayed = workload::load_decode_trace(path);
  std::cout << "reloaded " << replayed.num_steps() << " steps; replaying...\n\n";

  const hw::CostModel costs(hw::MachineProfile::a6000_xeon10(), model);
  workload::TraceGenParams wparams = params;
  wparams.gate_seed = params.effective_gate_seed();
  wparams.seed = params.seed ^ 0x5151;
  workload::TraceGenerator warmup_gen(model, wparams);
  runtime::EngineBuildInfo info;
  info.cache_ratio = 0.25;
  info.warmup_frequencies =
      workload::activation_frequencies(warmup_gen.generate_decode(32), model);

  util::TextTable table("replay results @ 25% cache");
  table.set_headers({"framework", "TBT", "hit rate", "transfers", "prefetches"});
  for (const auto fw : runtime::kPaperFrameworks) {
    auto engine = runtime::make_engine(fw, costs, info);
    const auto metrics = engine->run_decode(replayed);
    table.begin_row()
        .add_cell(runtime::to_string(fw))
        .add_cell(util::format_seconds(metrics.tbt_mean()))
        .add_cell(util::format_double(metrics.cache.hit_rate() * 100.0, 1) + "%")
        .add_cell(metrics.transfers)
        .add_cell(metrics.prefetches);
  }
  table.print(std::cout);

  std::remove(path.c_str());
  std::cout << "\n(temporary trace file removed)\n";
  return 0;
}
