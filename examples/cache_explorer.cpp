/// \file cache_explorer.cpp
/// Standalone cache-policy playground: replays one decode trace through the
/// expert cache under every replacement policy (including the Belady oracle
/// upper bound) across a sweep of capacities. This isolates §IV-D from
/// scheduling entirely — the same methodology as the paper's Fig. 9.

#include <functional>
#include <iostream>
#include <memory>

#include "cache/classic_policies.hpp"
#include "cache/expert_cache.hpp"
#include "cache/mrs_policy.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace {

using namespace hybrimoe;

/// Flatten a decode trace into the per-reference access string, with the
/// score vectors interleaved so score-aware policies stay informed.
struct Replay {
  std::vector<moe::ExpertId> references;

  static Replay from(const workload::DecodeTrace& trace) {
    Replay r;
    for (const auto& step : trace.steps)
      for (std::size_t l = 0; l < step.layers.size(); ++l)
        for (const auto e : step.layers[l].activated())
          r.references.push_back(
              {static_cast<std::uint16_t>(l), static_cast<std::uint16_t>(e)});
    return r;
  }
};

double replay_hit_rate(const workload::DecodeTrace& trace, const moe::ModelConfig& model,
                       cache::ExpertCache& cache, bool feed_scores) {
  for (const auto& step : trace.steps) {
    for (std::size_t l = 0; l < step.layers.size(); ++l) {
      const auto layer = static_cast<std::uint16_t>(l);
      if (feed_scores) cache.update_scores(layer, step.layers[l].scores, model.top_k);
      for (const auto e : step.layers[l].activated()) {
        const moe::ExpertId id{layer, static_cast<std::uint16_t>(e)};
        if (!cache.lookup(id)) (void)cache.insert(id);  // miss -> load & admit
      }
    }
  }
  return cache.stats().hit_rate();
}

}  // namespace

int main() {
  const moe::ModelConfig model = moe::ModelConfig::deepseek();
  workload::TraceGenParams params;
  params.seed = 11;
  workload::TraceGenerator generator(model, params);
  const auto trace = generator.generate_decode(256);
  const auto replay = Replay::from(trace);

  std::cout << "Cache policy explorer: " << model.name << ", 256 decode steps, "
            << replay.references.size() << " expert references\n\n";

  using PolicyFactory = std::function<std::unique_ptr<cache::CachePolicy>()>;
  const std::vector<std::pair<std::string, PolicyFactory>> policies = {
      {"Random", [] { return std::make_unique<cache::RandomPolicy>(3); }},
      {"FIFO", [] { return std::make_unique<cache::FifoPolicy>(); }},
      {"LRU", [] { return std::make_unique<cache::LruPolicy>(); }},
      {"LFU", [] { return std::make_unique<cache::LfuPolicy>(); }},
      {"MRS", [] { return std::make_unique<cache::MrsPolicy>(); }},
      {"Belady", [&] { return std::make_unique<cache::BeladyPolicy>(replay.references); }},
  };

  util::TextTable table("expert cache hit rate (%) by policy and capacity");
  std::vector<std::string> headers = {"capacity"};
  for (const auto& [name, _] : policies) headers.push_back(name);
  table.set_headers(std::move(headers));

  for (const double ratio : {0.15, 0.25, 0.40, 0.55, 0.70}) {
    const std::size_t capacity = cache::ExpertCache::capacity_for_ratio(model, ratio);
    table.begin_row().add_cell(util::format_double(ratio * 100.0, 0) + "% (" +
                               std::to_string(capacity) + ")");
    for (const auto& [name, make_policy] : policies) {
      cache::ExpertCache cache(capacity, make_policy());
      const double rate = replay_hit_rate(trace, model, cache, name == "MRS");
      table.add_cell(util::format_double(rate * 100.0, 1));
    }
  }
  table.print(std::cout);

  std::cout << "\nMRS (score-aware, Eq. 3) should sit between LRU and the Belady "
               "oracle at low capacity.\n";
  return 0;
}
