/// \file quickstart.cpp
/// Minimal end-to-end tour of the public API:
///   1. pick a model (DeepSeek-V2-Lite, paper Table II) and a machine;
///   2. build the experiment harness (trace generation + warmup);
///   3. run prefill and decode under every framework;
///   4. print TTFT / TBT with speedups relative to kTransformers —
///      the comparison the paper's headline numbers (1.33x / 1.70x) make.

#include <iostream>

#include "runtime/session.hpp"
#include "util/table.hpp"

int main() {
  using namespace hybrimoe;

  runtime::ExperimentSpec spec;
  spec.model = moe::ModelConfig::deepseek();
  spec.machine = hw::MachineProfile::a6000_xeon10();
  spec.cache_ratio = 0.25;  // 25% of routed experts fit on the GPU
  spec.trace.seed = 2025;

  std::cout << "HybriMoE quickstart\n"
            << "  model   : " << spec.model.name << " (" << spec.model.num_layers
            << " layers, " << spec.model.num_routed_experts << " routed experts, top-"
            << spec.model.top_k << ")\n"
            << "  machine : " << spec.machine.name << "\n"
            << "  cache   : " << spec.cache_ratio * 100 << "% of routed experts\n\n";

  runtime::ExperimentHarness harness(spec);

  constexpr std::size_t kPromptTokens = 128;
  constexpr std::size_t kDecodeSteps = 32;

  const auto ktrans_prefill =
      harness.run_prefill(runtime::Framework::KTransformers, kPromptTokens);
  const auto ktrans_decode =
      harness.run_decode(runtime::Framework::KTransformers, kDecodeSteps);

  util::TextTable table("prefill 128 tokens / decode 32 tokens, DeepSeek @ 25% cache");
  table.set_headers({"framework", "TTFT", "TBT", "hit rate", "xfers", "prefetch",
                     "maint", "speedup(prefill)", "speedup(decode)"});
  for (const auto framework : runtime::kPaperFrameworks) {
    const auto prefill = harness.run_prefill(framework, kPromptTokens);
    const auto decode = harness.run_decode(framework, kDecodeSteps);
    table.begin_row()
        .add_cell(runtime::to_string(framework))
        .add_cell(util::format_seconds(prefill.ttft()))
        .add_cell(util::format_seconds(decode.tbt_mean()))
        .add_cell(util::format_double(decode.cache.hit_rate() * 100.0, 1) + "%")
        .add_cell(decode.transfers)
        .add_cell(decode.prefetches)
        .add_cell(decode.maintenance)
        .add_cell(util::format_speedup(ktrans_prefill.ttft() / prefill.ttft()))
        .add_cell(util::format_speedup(ktrans_decode.tbt_mean() / decode.tbt_mean()));
  }
  table.print(std::cout);

  std::cout << "\nDone. See bench/ for the full paper reproduction harnesses.\n";
  return 0;
}
