/// \file quickstart.cpp
/// Minimal end-to-end tour of the public API:
///   1. pick a model (DeepSeek-V2-Lite, paper Table II) and a machine;
///   2. build the experiment harness (trace generation + warmup);
///   3. run prefill and decode under every framework;
///   4. print TTFT / TBT with speedups relative to kTransformers —
///      the comparison the paper's headline numbers (1.33x / 1.70x) make.
///
/// With `--threaded`, a second pass runs the decode comparison through the
/// real execution backend (src/exec): the same plans are dispatched onto
/// worker threads / the copy engine and the modeled makespan is compared to
/// measured wall clock (see docs/EXECUTION.md and bench_exec_validation).

#include <cmath>
#include <cstring>
#include <iostream>
#include <memory>

#include "exec/executor.hpp"
#include "runtime/session.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hybrimoe;
  const bool threaded = argc > 1 && std::strcmp(argv[1], "--threaded") == 0;

  runtime::ExperimentSpec spec;
  spec.model = moe::ModelConfig::deepseek();
  spec.machine = hw::MachineProfile::a6000_xeon10();
  spec.cache_ratio = 0.25;  // 25% of routed experts fit on the GPU
  spec.trace.seed = 2025;

  std::cout << "HybriMoE quickstart\n"
            << "  model   : " << spec.model.name << " (" << spec.model.num_layers
            << " layers, " << spec.model.num_routed_experts << " routed experts, top-"
            << spec.model.top_k << ")\n"
            << "  machine : " << spec.machine.name << "\n"
            << "  cache   : " << spec.cache_ratio * 100 << "% of routed experts\n\n";

  runtime::ExperimentHarness harness(spec);

  constexpr std::size_t kPromptTokens = 128;
  constexpr std::size_t kDecodeSteps = 32;

  const auto ktrans_prefill =
      harness.run_prefill(runtime::Framework::KTransformers, kPromptTokens);
  const auto ktrans_decode =
      harness.run_decode(runtime::Framework::KTransformers, kDecodeSteps);

  util::TextTable table("prefill 128 tokens / decode 32 tokens, DeepSeek @ 25% cache");
  table.set_headers({"framework", "TTFT", "TBT", "hit rate", "xfers", "prefetch",
                     "maint", "speedup(prefill)", "speedup(decode)"});
  for (const auto framework : runtime::kPaperFrameworks) {
    const auto prefill = harness.run_prefill(framework, kPromptTokens);
    const auto decode = harness.run_decode(framework, kDecodeSteps);
    table.begin_row()
        .add_cell(runtime::to_string(framework))
        .add_cell(util::format_seconds(prefill.ttft()))
        .add_cell(util::format_seconds(decode.tbt_mean()))
        .add_cell(util::format_double(decode.cache.hit_rate() * 100.0, 1) + "%")
        .add_cell(decode.transfers)
        .add_cell(decode.prefetches)
        .add_cell(decode.maintenance)
        .add_cell(util::format_speedup(ktrans_prefill.ttft() / prefill.ttft()))
        .add_cell(util::format_speedup(ktrans_decode.tbt_mean() / decode.tbt_mean()));
  }
  table.print(std::cout);

  // Off-preset stacks are one JSON string away (see docs/ARCHITECTURE.md §9
  // and tools/hybrimoe_run): here, HybriMoE's scheduler with the classic LRU
  // cache and no prefetching — a combination no Framework preset offers.
  const runtime::StackSpec custom = runtime::parse_stack_spec(
      R"({"name": "hybrid-lru", "scheduler": "hybrid", "cache": "lru",
          "prefetch": "none", "update_scores": false, "cache_maintenance": false})");
  const auto custom_decode = harness.run_decode(custom, kDecodeSteps);
  std::cout << "\ncustom stack " << custom.display_name() << " (declarative spec): TBT "
            << util::format_seconds(custom_decode.tbt_mean()) << ", speedup vs KTrans "
            << util::format_speedup(ktrans_decode.tbt_mean() / custom_decode.tbt_mean())
            << "\n";

  if (threaded) {
    // Re-run a short decode with plans lowered onto real threads. The pacing
    // scale targets ~0.4s of wall clock per framework but never drops below
    // the host calibration floor (modeled task durations must dominate real
    // kernel times and sleep overshoot for the comparison to mean anything).
    constexpr std::size_t kExecSteps = 8;
    const auto hybrimoe_decode =
        harness.run_decode(runtime::Framework::HybriMoE, kExecSteps);
    exec::ExecOptions options;
    options.workers = 4;
    {
      exec::HybridExecutor probe(options);  // calibration only
      options.time_scale = std::max(0.4 / hybrimoe_decode.total_latency,
                                    probe.calibrate_time_scale(harness.costs()));
    }
    // One executor for every framework: engines run sequentially, and the
    // shared weight store keeps output digests comparable across them.
    harness.set_execution(exec::ExecutionMode::Threaded,
                          std::make_shared<exec::HybridExecutor>(options));
    util::TextTable exec_table(
        "threaded execution backend — decode, modeled vs measured wall clock");
    exec_table.set_headers({"framework", "modeled", "measured", "error"});
    for (const auto framework : runtime::kPaperFrameworks) {
      const auto decode = harness.run_decode(framework, kExecSteps);
      const double error =
          std::abs(decode.measured_latency - decode.total_latency) /
          decode.total_latency;
      exec_table.begin_row()
          .add_cell(runtime::to_string(framework))
          .add_cell(util::format_seconds(decode.total_latency))
          .add_cell(util::format_seconds(decode.measured_latency))
          .add_cell(util::format_double(error * 100.0, 1) + "%");
    }
    exec_table.print(std::cout);
    std::cout << "\n(measured = wall clock / time_scale; run "
                 "bench_exec_validation for the full A/B with digests)\n";
  }

  std::cout << "\nDone. See bench/ for the full paper reproduction harnesses.\n";
  return 0;
}
