/// \file schedule_trace.cpp
/// Reproduces the paper's Fig. 5 worked scheduling example as an ASCII Gantt
/// chart: five experts (A..E), expert E cached on the GPU alongside D, the
/// CPU computing the small uncached experts A and B, PCIe promoting the
/// heavy uncached expert C, and the idle CPU stealing the cached low-load
/// expert E.
///
/// Costs use the unit-test machine: CPU time == load, GPU time == 1 per
/// expert, transfer == 3 — the units of the figure.

#include <iostream>

#include "hw/timeline.hpp"
#include "sched/simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace hybrimoe;

  const moe::ModelConfig model = moe::ModelConfig::tiny();
  const hw::CostModel costs(hw::MachineProfile::unit_test_machine(), model);

  // The figure's expert set: A:1 B:1 C:3 uncached, D:4 E:1 cached.
  const std::vector<sched::ExpertDemand> demands = {
      {0, 1, false},  // A
      {1, 1, false},  // B
      {2, 3, false},  // C
      {3, 4, true},   // D
      {4, 1, true},   // E
  };
  const char* names[] = {"A", "B", "C", "D", "E"};

  std::cout << "Fig. 5 worked example — unit costs: cpu=load, gpu=1, transfer=3\n\n";

  auto report = [&](const char* title, const sched::SimOptions& options) {
    const auto plan =
        sched::simulate_layer(0, sched::Stage::Decode, demands, costs, options);
    std::cout << "== " << title << " (makespan " << util::format_double(plan.makespan, 2)
              << ") ==\n";
    util::TextTable table;
    table.set_headers({"expert", "load", "device", "transferred", "start", "end"});
    for (const auto& t : plan.tasks) {
      table.begin_row()
          .add_cell(names[t.expert.expert])
          .add_cell(std::to_string(t.load))
          .add_cell(t.device == sched::kCpuDevice ? "CPU" : "GPU")
          .add_cell(t.transferred ? "yes" : "no")
          .add_cell(t.start, 2)
          .add_cell(t.end, 2);
    }
    table.print(std::cout);
    std::cout << hw::render_gantt(plan.to_timelines()) << '\n';
  };

  sched::SimOptions hybrid;  // all rules active — HybriMoE
  report("HybriMoE hybrid schedule", hybrid);

  sched::SimOptions fixed;  // no transfers, no stealing — fixed mapping
  fixed.allow_transfers = false;
  fixed.allow_cpu_steal = false;
  report("Fixed mapping (kTransformers-style)", fixed);

  sched::SimOptions gpu_only;  // on-demand loading, CPU unused
  gpu_only.allow_cpu = false;
  gpu_only.transfer_only_if_beneficial = false;
  report("On-demand loading (GPU only)", gpu_only);

  return 0;
}
