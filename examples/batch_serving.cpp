/// \file batch_serving.cpp
/// Extension beyond the paper's single-stream decode: request-level serving
/// with continuous batching. A Poisson stream of mixed-size requests flows
/// through the admission queue; each step composes at most one prefill chunk
/// plus every active decode, so rising load raises per-expert loads (toward
/// the prefill regime) and shifts the hybrid scheduler from "CPU computes
/// misses" toward "stream misses to the GPU" automatically.
///
/// The warmup statistics, engines and per-request traces all come from one
/// ExperimentHarness, so both frameworks serve byte-identical traffic.

#include <iostream>

#include "runtime/session.hpp"
#include "util/table.hpp"

int main() {
  using namespace hybrimoe;

  runtime::ExperimentSpec spec;
  spec.model = moe::ModelConfig::deepseek();
  spec.cache_ratio = 0.25;
  spec.trace.seed = 4242;
  runtime::ExperimentHarness harness(spec);

  workload::RequestStreamParams stream;
  stream.num_requests = 12;
  stream.prompt_tokens_min = 16;
  stream.prompt_tokens_max = 48;
  stream.decode_tokens_min = 6;
  stream.decode_tokens_max = 12;
  stream.seed = 4242;

  std::cout << "Continuous-batching serving: " << spec.model.name << " @ "
            << spec.cache_ratio * 100 << "% cache, " << stream.num_requests
            << " Poisson requests per rate\n\n";

  util::TextTable table("serving latency by arrival rate (KTransformers vs HybriMoE)");
  table.set_headers({"req/s", "KT p95 TBT", "HM p95 TBT", "TBT speedup",
                     "HM p95 TTFT", "HM tok/s", "HM transfers/step"});

  for (const double rate : {0.25, 0.5, 1.0, 2.0}) {
    stream.arrival_rate = rate;
    const auto specs = workload::generate_request_stream(stream);
    // Traces are framework-independent: materialise once, serve copies.
    const auto requests = harness.materialize(specs);

    const auto kt = harness.serve(runtime::Framework::KTransformers, requests);
    const auto hm = harness.serve(runtime::Framework::HybriMoE, requests);

    const double kt_tbt = kt.tbt_tails().p95;
    const double hm_tbt = hm.tbt_tails().p95;
    const auto steps = static_cast<double>(hm.steps.per_forward.size());
    table.begin_row()
        .add_cell(util::format_double(rate, 2))
        .add_cell(util::format_seconds(kt_tbt))
        .add_cell(util::format_seconds(hm_tbt))
        .add_cell(util::format_speedup(kt_tbt / hm_tbt))
        .add_cell(util::format_seconds(hm.ttft_tails().p95))
        .add_cell(util::format_double(hm.throughput(), 1))
        .add_cell(util::format_double(static_cast<double>(hm.steps.transfers) / steps, 1));
  }
  table.print(std::cout);

  std::cout << "\nAs the arrival rate grows, batches deepen: per-expert loads rise\n"
               "and HybriMoE starts streaming heavy misses to the GPU\n"
               "(transfers/step climbs) — the same machinery that wins prefill.\n";
  return 0;
}
