/// \file batch_serving.cpp
/// Extension beyond the paper's single-stream decode: continuous-batching
/// serving, where several sessions decode one token per step. Larger batches
/// raise per-expert loads (toward the prefill regime), which shifts the
/// hybrid scheduler's decisions from "CPU computes misses" toward "stream
/// misses to the GPU" automatically — no configuration change needed.

#include <iostream>

#include "core/warmup.hpp"
#include "runtime/frameworks.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace hybrimoe;

  const auto model = moe::ModelConfig::deepseek();
  const hw::CostModel costs(hw::MachineProfile::a6000_xeon10(), model);
  constexpr double kCacheRatio = 0.25;
  constexpr std::size_t kSteps = 24;

  std::cout << "Batched decode serving: " << model.name << " @ "
            << kCacheRatio * 100 << "% cache, " << kSteps << " steps\n\n";

  workload::TraceGenParams params;
  params.seed = 4242;
  workload::TraceGenerator generator(model, params);
  // Warmup frequencies from a single-stream trace.
  workload::TraceGenParams wparams = params;
  wparams.gate_seed = params.effective_gate_seed();
  wparams.seed = params.seed ^ 0xABCDEF;
  workload::TraceGenerator warmup_gen(model, wparams);
  const auto warmup_freq =
      workload::activation_frequencies(warmup_gen.generate_decode(32), model);

  util::TextTable table("per-token decode latency by batch size");
  table.set_headers({"batch", "KTransformers TBT/token", "HybriMoE TBT/token",
                     "speedup", "HybriMoE transfers/step"});

  for (const std::size_t batch : {1UL, 2UL, 4UL, 8UL, 16UL}) {
    generator.reset(params.seed + batch);
    const auto trace = generator.generate_decode_batch(kSteps, batch);

    runtime::EngineBuildInfo info;
    info.cache_ratio = kCacheRatio;
    info.warmup_frequencies = warmup_freq;

    auto ktrans = runtime::make_engine(runtime::Framework::KTransformers, costs, info);
    auto hybrimoe = runtime::make_engine(runtime::Framework::HybriMoE, costs, info);
    const auto mk = ktrans->run_decode(trace);
    const auto mh = hybrimoe->run_decode(trace);

    // Per generated token: batch tokens per step.
    const auto tokens = static_cast<double>(kSteps * batch);
    const double kt = mk.total_latency / tokens;
    const double hm = mh.total_latency / tokens;
    table.begin_row()
        .add_cell(std::to_string(batch))
        .add_cell(util::format_seconds(kt))
        .add_cell(util::format_seconds(hm))
        .add_cell(util::format_speedup(kt / hm))
        .add_cell(util::format_double(
            static_cast<double>(mh.transfers) / static_cast<double>(kSteps), 1));
  }
  table.print(std::cout);

  std::cout << "\nAs the batch grows, per-expert loads rise and HybriMoE starts\n"
               "streaming heavy misses to the GPU (transfers/step climbs) —\n"
               "the same machinery that wins the prefill stage.\n";
  return 0;
}
