/// \file functional_moe.cpp
/// End-to-end functional check at small scale: builds a real (tiny) MoE
/// layer with SwiGLU experts, routes a token, partitions the activated
/// experts exactly as the hybrid scheduler assigns them to CPU/GPU, computes
/// each partition separately and verifies the recombined output matches the
/// single-device reference forward — i.e. offload scheduling never changes
/// the math. Also demonstrates the Q4 quantized path and its error bound.

#include <iostream>

#include "hw/cost_model.hpp"
#include "kernels/ops.hpp"
#include "moe/moe_layer.hpp"
#include "sched/simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace hybrimoe;

  constexpr std::size_t kExperts = 8;
  constexpr std::size_t kTopK = 2;
  constexpr std::size_t kDModel = 48;
  constexpr std::size_t kDff = 96;

  util::Rng rng(123);
  const moe::MoeLayer layer(rng, kExperts, kTopK, kDModel, kDff, /*num_shared=*/1);

  // A random input token.
  std::vector<float> x(kDModel);
  for (float& v : x) v = static_cast<float>(rng.gaussian());

  // Reference forward (single device).
  const auto reference = layer.forward(x);
  const auto routing = layer.route(x);

  std::cout << "functional MoE layer: " << kExperts << " experts, top-" << kTopK
            << ", d_model=" << kDModel << "\n\nrouted to:";
  for (std::size_t k = 0; k < routing.experts.size(); ++k)
    std::cout << "  E" << routing.experts[k] << " (w="
              << util::format_double(routing.weights[k], 3) << ")";
  std::cout << "\n\n";

  // Schedule those experts with the hybrid scheduler (expert 0..3 "cached").
  const moe::ModelConfig model = moe::ModelConfig::tiny(1, kExperts, kTopK);
  const hw::CostModel costs(hw::MachineProfile::unit_test_machine(), model);
  std::vector<sched::ExpertDemand> demands;
  for (const auto e : routing.experts)
    demands.push_back({static_cast<std::uint16_t>(e), 1, e < kExperts / 2});
  const auto plan = sched::simulate_layer(0, sched::Stage::Decode, demands, costs);

  // Compute each device's partition separately, then recombine.
  std::vector<float> combined(kDModel, 0.0f);
  util::TextTable table("hybrid plan and per-device partial results");
  table.set_headers({"expert", "device", "weight", "|partial|"});
  for (const auto& task : plan.tasks) {
    // Find the routing weight of this expert.
    double weight = 0.0;
    for (std::size_t k = 0; k < routing.experts.size(); ++k)
      if (routing.experts[k] == task.expert.expert) weight = routing.weights[k];
    const auto partial = layer.expert_output(task.expert.expert, x);
    for (std::size_t i = 0; i < combined.size(); ++i)
      combined[i] += static_cast<float>(weight) * partial[i];
    table.begin_row()
        .add_cell("E" + std::to_string(task.expert.expert))
        .add_cell(task.device == sched::kCpuDevice ? "CPU" : "GPU")
        .add_cell(weight, 3)
        .add_cell(kernels::l2_norm(partial), 3);
  }
  // Shared expert runs on the GPU for every token.
  const moe::TokenRouting no_routed{};  // shared-only contribution
  const auto shared_only = layer.forward_with_routing(x, no_routed);
  for (std::size_t i = 0; i < combined.size(); ++i) combined[i] += shared_only[i];
  table.print(std::cout);

  const double err = kernels::max_abs_diff(reference, combined);
  std::cout << "\nmax |reference - scheduled-recombination| = " << err << '\n';
  if (err > 1e-5) {
    std::cout << "MISMATCH — offload partitioning changed the math!\n";
    return 1;
  }
  std::cout << "offload partitioning preserves the forward exactly.\n";

  // Quantized path.
  util::Rng qrng(123);
  const moe::MoeLayer qlayer(qrng, kExperts, kTopK, kDModel, kDff, 1, /*quantized=*/true);
  const auto qout = qlayer.forward(x);
  std::cout << "Q4 forward |y - y_fp32| max = "
            << kernels::max_abs_diff(qout, reference)
            << "  (expected small but non-zero: 4-bit weights)\n";
  return 0;
}
