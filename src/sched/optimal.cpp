#include "sched/optimal.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace hybrimoe::sched {

namespace {

/// Johnson's rule for the two-machine flow shop (PCIe -> GPU): jobs whose
/// first-machine time is <= second-machine time go first (ascending first
/// time), the rest go last (descending second time). Optimal for F2.
std::vector<std::size_t> johnson_order(const std::vector<double>& pcie_times,
                                       const std::vector<double>& gpu_times) {
  std::vector<std::size_t> first;
  std::vector<std::size_t> last;
  for (std::size_t j = 0; j < pcie_times.size(); ++j) {
    if (pcie_times[j] <= gpu_times[j]) {
      first.push_back(j);
    } else {
      last.push_back(j);
    }
  }
  std::sort(first.begin(), first.end(), [&](std::size_t a, std::size_t b) {
    if (pcie_times[a] != pcie_times[b]) return pcie_times[a] < pcie_times[b];
    return a < b;
  });
  std::sort(last.begin(), last.end(), [&](std::size_t a, std::size_t b) {
    if (gpu_times[a] != gpu_times[b]) return gpu_times[a] > gpu_times[b];
    return a < b;
  });
  first.insert(first.end(), last.begin(), last.end());
  return first;
}

}  // namespace

double assignment_makespan(std::span<const ExpertDemand> demands,
                           std::span<const DeviceId> assignment,
                           const hw::CostModel& costs, const SimOptions& options) {
  HYBRIMOE_REQUIRE(demands.size() == assignment.size(),
                   "assignment length mismatch");
  const double xfer = costs.transfer_time();

  // CPU side: serial; one cold-start penalty on the first task.
  double cpu_total = 0.0;
  bool cpu_used = false;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (assignment[i] != kCpuDevice) continue;
    const bool warm = cpu_used || !options.cpu_cold_start;
    cpu_total += costs.cpu_expert_time(demands[i].load, warm);
    cpu_used = true;
  }

  // GPU side: cached experts first (head start), then transferred experts
  // as a PCIe->GPU flow shop in Johnson's order.
  double gpu_t = options.gpu_busy_until;
  std::vector<double> pcie_times;
  std::vector<double> gpu_times;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (assignment[i] != kGpuDevice) continue;
    if (demands[i].cached) {
      gpu_t += costs.gpu_expert_time(demands[i].load);
    } else {
      pcie_times.push_back(xfer);
      gpu_times.push_back(costs.gpu_expert_time(demands[i].load));
    }
  }
  double pcie_t = options.pcie_busy_until;
  for (const std::size_t j : johnson_order(pcie_times, gpu_times)) {
    pcie_t += pcie_times[j];
    gpu_t = std::max(gpu_t, pcie_t) + gpu_times[j];
  }
  return std::max({cpu_total, gpu_t, options.gpu_busy_until});
}

OptimalResult optimal_layer_schedule(std::span<const ExpertDemand> demands,
                                     const hw::CostModel& costs,
                                     const SimOptions& options,
                                     std::size_t max_exhaustive_experts) {
  HYBRIMOE_REQUIRE(!demands.empty(), "optimal_layer_schedule with no demands");
  HYBRIMOE_REQUIRE(demands.size() <= max_exhaustive_experts,
                   "instance too large for exhaustive search");
  options.validate();

  const std::size_t n = demands.size();
  OptimalResult best;
  best.makespan = std::numeric_limits<double>::infinity();
  std::vector<DeviceId> assignment(n);

  for (std::uint32_t mask = 0; mask < (1U << n); ++mask) {
    bool feasible = true;
    for (std::size_t i = 0; i < n && feasible; ++i) {
      const bool on_gpu = (mask >> i) & 1U;
      assignment[i] = on_gpu ? kGpuDevice : kCpuDevice;
      if (on_gpu && !demands[i].cached && !options.allow_transfers) feasible = false;
      if (!on_gpu && !options.allow_cpu) feasible = false;
      if (!on_gpu && demands[i].cached && !options.allow_cpu_steal) feasible = false;
    }
    if (!feasible) continue;
    const double makespan = assignment_makespan(demands, assignment, costs, options);
    if (makespan < best.makespan) {
      best.makespan = makespan;
      best.assignment = assignment;
    }
  }
  HYBRIMOE_ASSERT(!best.assignment.empty(), "no feasible assignment found");
  return best;
}

}  // namespace hybrimoe::sched
