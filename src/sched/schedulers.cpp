#include "sched/schedulers.hpp"

#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace hybrimoe::sched {

HybridScheduler::HybridScheduler(SimOptions options) : options_(options) {
  options_.validate();
}

LayerPlan HybridScheduler::schedule(std::uint16_t layer, Stage stage,
                                    std::span<const ExpertDemand> demands,
                                    const hw::CostModel& costs,
                                    double gpu_busy_until, double pcie_busy_until,
                                    std::span<const double> link_busy) {
  SimOptions opt = options_;
  opt.gpu_busy_until = gpu_busy_until;
  opt.pcie_busy_until = pcie_busy_until;
  opt.link_busy_until.assign(link_busy.begin(), link_busy.end());
  return simulate_layer(layer, stage, demands, costs, opt);
}

SimOptions FixedMapScheduler::impact_options() const {
  // Impact of caching an extra expert under the fixed mapping (used when
  // ablations attach a prefetcher to the kTransformers baseline).
  SimOptions opt;
  opt.allow_cpu_steal = false;
  opt.allow_transfers = false;
  return opt;
}

LayerPlan FixedMapScheduler::schedule(std::uint16_t layer, Stage stage,
                                      std::span<const ExpertDemand> demands,
                                      const hw::CostModel& costs,
                                      double gpu_busy_until, double pcie_busy_until,
                                      std::span<const double> link_busy) {
  SimOptions opt;
  opt.gpu_busy_until = gpu_busy_until;
  opt.pcie_busy_until = pcie_busy_until;
  opt.link_busy_until.assign(link_busy.begin(), link_busy.end());
  if (stage == Stage::Decode) {
    // Decode: hits on GPU, misses on CPU, nothing moves.
    opt.allow_cpu = true;
    opt.allow_transfers = false;
    opt.allow_cpu_steal = false;
  } else {
    // Prefill: kTransformers streams misses to the GPU; the CPU is not used
    // for expert computation in this stage (paper Table I).
    opt.allow_cpu = false;
    opt.allow_transfers = true;
    opt.allow_cpu_steal = false;
    opt.transfer_only_if_beneficial = false;
  }
  return simulate_layer(layer, stage, demands, costs, opt);
}

SimOptions GpuCentricScheduler::impact_options() const {
  SimOptions opt;
  opt.allow_cpu = false;
  opt.allow_transfers = true;
  opt.transfer_only_if_beneficial = false;
  return opt;
}

LayerPlan GpuCentricScheduler::schedule(std::uint16_t layer, Stage stage,
                                        std::span<const ExpertDemand> demands,
                                        const hw::CostModel& costs,
                                        double gpu_busy_until, double pcie_busy_until,
                                        std::span<const double> link_busy) {
  SimOptions opt = impact_options();
  opt.gpu_busy_until = gpu_busy_until;
  opt.pcie_busy_until = pcie_busy_until;
  opt.link_busy_until.assign(link_busy.begin(), link_busy.end());
  return simulate_layer(layer, stage, demands, costs, opt);
}

StaticLayerScheduler::StaticLayerScheduler(std::size_t num_layers, double gpu_fraction)
    : num_layers_(num_layers) {
  HYBRIMOE_REQUIRE(num_layers > 0, "StaticLayerScheduler needs layers");
  HYBRIMOE_REQUIRE(gpu_fraction >= 0.0 && gpu_fraction <= 1.0,
                   "gpu_fraction must be in [0,1]");
  gpu_layers_ = static_cast<std::size_t>(
      std::llround(gpu_fraction * static_cast<double>(num_layers)));
}

bool StaticLayerScheduler::is_gpu_layer(std::uint16_t layer) const {
  HYBRIMOE_REQUIRE(layer < num_layers_, "layer out of range");
  if (gpu_layers_ == 0) return false;
  if (gpu_layers_ >= num_layers_) return true;
  // Even spread: layer l is a GPU layer when its bucket index advances.
  const std::size_t l = layer;
  return (l * gpu_layers_) / num_layers_ != ((l + 1) * gpu_layers_) / num_layers_;
}

LayerPlan StaticLayerScheduler::schedule(std::uint16_t layer, Stage stage,
                                         std::span<const ExpertDemand> demands,
                                         const hw::CostModel& costs,
                                         double gpu_busy_until, double pcie_busy_until,
                                         std::span<const double> link_busy) {
  // Residency is the static assignment, not the dynamic cache. GPU layers
  // spread their experts across the topology's accelerators keyed by expert
  // id — a *stable* placement: the same expert lands on the same device in
  // every step, as a real static split would.
  std::vector<ExpertDemand> adjusted(demands.begin(), demands.end());
  const bool on_gpu = is_gpu_layer(layer);
  const std::size_t num_accels = costs.num_accelerators();
  for (auto& d : adjusted) {
    d.cached = on_gpu;
    if (on_gpu) d.cached_on = accelerator_device(d.expert % num_accels);
  }

  SimOptions opt;
  opt.gpu_busy_until = gpu_busy_until;
  opt.pcie_busy_until = pcie_busy_until;
  opt.link_busy_until.assign(link_busy.begin(), link_busy.end());
  opt.allow_transfers = false;
  opt.allow_cpu_steal = false;
  opt.allow_cpu = !on_gpu;
  if (on_gpu) {
    // Nothing to do on CPU; disable it so the options validate either way.
    opt.allow_cpu = false;
    opt.allow_transfers = true;  // vacuous: every expert is resident
  }
  return simulate_layer(layer, stage, adjusted, costs, opt);
}

}  // namespace hybrimoe::sched
