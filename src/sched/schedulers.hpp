#pragma once

/// \file schedulers.hpp
/// The per-layer scheduling policies compared in the paper's evaluation.
/// All four run against the same simulator/cost model so that end-to-end
/// differences isolate the *policy*, exactly as the paper intends:
///
///  * HybridScheduler      — HybriMoE §IV-B (dynamic CPU/GPU/PCIe balancing);
///  * FixedMapScheduler    — kTransformers: static frequency mapping, CPU
///                           computes misses during decode only (Table I);
///  * GpuCentricScheduler  — AdapMoE: everything on the GPU, misses loaded
///                           on demand;
///  * StaticLayerScheduler — llama.cpp: whole layers pinned to a device.

#include <memory>
#include <string>

#include "sched/simulator.hpp"

namespace hybrimoe::sched {

/// Produces a LayerPlan for each MoE layer's activated experts.
class LayerScheduler {
 public:
  virtual ~LayerScheduler() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// `gpu_busy_until`: accelerator occupancy by the layer's dense phase
  /// (attention + shared experts); routed accelerator work is appended after
  /// it. `pcie_busy_until`: in-flight transfers carried over from previous
  /// layers on every link; `link_busy` optionally carries per-link values
  /// (one entry per accelerator of the cost model's topology) and overrides
  /// the scalar when non-empty.
  [[nodiscard]] virtual LayerPlan schedule(std::uint16_t layer, Stage stage,
                                           std::span<const ExpertDemand> demands,
                                           const hw::CostModel& costs,
                                           double gpu_busy_until = 0.0,
                                           double pcie_busy_until = 0.0,
                                           std::span<const double> link_busy = {}) = 0;
  /// Simulation options a prefetcher should use when estimating the impact
  /// of caching an extra expert under this scheduler.
  [[nodiscard]] virtual SimOptions impact_options() const { return SimOptions{}; }
};

/// HybriMoE's dynamic hybrid scheduling (§IV-B): all priority rules active.
class HybridScheduler final : public LayerScheduler {
 public:
  explicit HybridScheduler(SimOptions options = {});
  [[nodiscard]] std::string name() const override { return "hybrid"; }
  [[nodiscard]] LayerPlan schedule(std::uint16_t layer, Stage stage,
                                   std::span<const ExpertDemand> demands,
                                   const hw::CostModel& costs,
                                   double gpu_busy_until = 0.0,
                                   double pcie_busy_until = 0.0,
                                   std::span<const double> link_busy = {}) override;
  [[nodiscard]] SimOptions impact_options() const override { return options_; }

 private:
  SimOptions options_;
};

/// kTransformers-style fixed mapping: cached experts on the GPU, misses on
/// the CPU — but only in decode; during prefill misses are streamed to the
/// GPU (Table I: "CPU Computation: Decode"). No dynamic rebalancing, no
/// work stealing, no beneficial-transfer search.
class FixedMapScheduler final : public LayerScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "fixed-map"; }
  [[nodiscard]] LayerPlan schedule(std::uint16_t layer, Stage stage,
                                   std::span<const ExpertDemand> demands,
                                   const hw::CostModel& costs,
                                   double gpu_busy_until = 0.0,
                                   double pcie_busy_until = 0.0,
                                   std::span<const double> link_busy = {}) override;
  [[nodiscard]] SimOptions impact_options() const override;
};

/// AdapMoE-style GPU-centric scheduling: the CPU never computes experts;
/// every miss is transferred (highest load first) and computed on the GPU.
class GpuCentricScheduler final : public LayerScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "gpu-centric"; }
  [[nodiscard]] LayerPlan schedule(std::uint16_t layer, Stage stage,
                                   std::span<const ExpertDemand> demands,
                                   const hw::CostModel& costs,
                                   double gpu_busy_until = 0.0,
                                   double pcie_busy_until = 0.0,
                                   std::span<const double> link_busy = {}) override;
  [[nodiscard]] SimOptions impact_options() const override;
};

/// llama.cpp-style static mapping: a fixed fraction of layers is fully GPU
/// resident, every other layer computes all experts on the CPU. The cached
/// flags of the demands are ignored — residency is the layer assignment.
class StaticLayerScheduler final : public LayerScheduler {
 public:
  /// Distributes round(gpu_fraction * num_layers) GPU layers evenly.
  StaticLayerScheduler(std::size_t num_layers, double gpu_fraction);

  [[nodiscard]] std::string name() const override { return "static-layer"; }
  [[nodiscard]] bool is_gpu_layer(std::uint16_t layer) const;
  [[nodiscard]] std::size_t num_gpu_layers() const noexcept { return gpu_layers_; }
  [[nodiscard]] LayerPlan schedule(std::uint16_t layer, Stage stage,
                                   std::span<const ExpertDemand> demands,
                                   const hw::CostModel& costs,
                                   double gpu_busy_until = 0.0,
                                   double pcie_busy_until = 0.0,
                                   std::span<const double> link_busy = {}) override;

 private:
  std::size_t num_layers_;
  std::size_t gpu_layers_;
};

}  // namespace hybrimoe::sched
