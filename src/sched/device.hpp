#pragma once

/// \file device.hpp
/// The scheduler's device model: a compact DeviceId handle plus the DeviceSet
/// complement a scheduler plans over. Device 0 is always the host CPU;
/// devices 1..N are the accelerators of the machine's hw::Topology, in
/// topology order (DeviceId{1} is accelerator index 0, the "primary GPU" of
/// the historical CPU+GPU pair). Every layer of the stack — plans, the
/// greedy simulation, the caches, the prefetcher, the threaded executor —
/// addresses compute resources through these ids, so adding an accelerator
/// to the topology needs no scheduler code changes.

#include <cstddef>
#include <cstdint>
#include <string>

namespace hybrimoe::sched {

/// Compact handle for one schedulable compute device (0 = host CPU,
/// 1..N = accelerators). Trivially copyable; totally ordered so plans and
/// tests can sort by device.
struct DeviceId {
  std::uint8_t value = 0;

  /// True for the host CPU (device 0).
  [[nodiscard]] constexpr bool is_cpu() const noexcept { return value == 0; }
  /// True for any accelerator (devices 1..N).
  [[nodiscard]] constexpr bool is_accelerator() const noexcept { return value != 0; }
  /// Topology accelerator index (value - 1). Precondition: is_accelerator().
  [[nodiscard]] constexpr std::size_t accel_index() const noexcept {
    return static_cast<std::size_t>(value) - 1u;
  }

  friend constexpr auto operator<=>(DeviceId, DeviceId) noexcept = default;
};

/// The host CPU (always present).
inline constexpr DeviceId kCpuDevice{0};
/// The primary accelerator — the "GPU" of the historical CPU+GPU pair.
inline constexpr DeviceId kGpuDevice{1};

/// DeviceId of accelerator `accel_index` (topology order).
[[nodiscard]] constexpr DeviceId accelerator_device(std::size_t accel_index) noexcept {
  return DeviceId{static_cast<std::uint8_t>(accel_index + 1)};
}

/// Human-readable device name: "cpu", "gpu0", "gpu1", ...
[[nodiscard]] inline std::string to_string(DeviceId id) {
  if (id.is_cpu()) return "cpu";
  return "gpu" + std::to_string(id.accel_index());
}

/// The device complement one scheduling decision ranges over: the host CPU
/// plus `num_accelerators` accelerators (at least one). Derived from the
/// cost model's hw::Topology; the simulator uses it to validate that every
/// demand's residency device exists before filling its per-device queues,
/// and it is the membership test for any DeviceId arriving from outside.
class DeviceSet {
 public:
  /// A CPU plus `num_accelerators` accelerators (must be >= 1).
  constexpr explicit DeviceSet(std::size_t num_accelerators = 1) noexcept
      : num_accelerators_(num_accelerators == 0 ? 1 : num_accelerators) {}

  /// Accelerator count N (excludes the CPU).
  [[nodiscard]] constexpr std::size_t num_accelerators() const noexcept {
    return num_accelerators_;
  }
  /// Total schedulable devices (N + 1, including the CPU).
  [[nodiscard]] constexpr std::size_t size() const noexcept {
    return num_accelerators_ + 1;
  }
  /// DeviceId of accelerator `i` (0-based topology index, i < N).
  [[nodiscard]] constexpr DeviceId accelerator(std::size_t i) const noexcept {
    return accelerator_device(i);
  }
  /// True when `id` names the CPU or an accelerator of this set.
  [[nodiscard]] constexpr bool contains(DeviceId id) const noexcept {
    return id.is_cpu() || id.accel_index() < num_accelerators_;
  }

 private:
  std::size_t num_accelerators_;
};

}  // namespace hybrimoe::sched
