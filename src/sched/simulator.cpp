#include "sched/simulator.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>
#include <vector>

#include "util/assert.hpp"

namespace hybrimoe::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A pending expert inside the simulation.
struct Pending {
  std::uint16_t expert = 0;
  std::uint32_t load = 0;
  bool cached = false;       ///< resident before the layer started
  bool transferred = false;  ///< promoted by PCIe during this layer
  double arrival = 0.0;      ///< earliest GPU start (transfer completion)
  double transfer_start = 0.0;
};

/// Simulation state: three clocks plus the two priority queues.
struct SimState {
  // GPU side: cached + transferred experts awaiting GPU compute,
  // kept sorted by descending load (paper: high-load first).
  std::vector<Pending> gpu_side;
  // CPU side: uncached experts, kept sorted by ascending load.
  std::vector<Pending> cpu_side;
  double cpu_t = 0.0;
  double gpu_t = 0.0;
  double pcie_t = 0.0;
  bool cpu_used = false;  ///< warmup tracking
};

void insert_gpu_sorted(std::vector<Pending>& gpu_side, Pending p) {
  const auto pos = std::find_if(gpu_side.begin(), gpu_side.end(),
                                [&](const Pending& q) { return q.load < p.load; });
  gpu_side.insert(pos, p);
}

/// Total GPU compute time of everything currently queued on the GPU side.
double gpu_backlog(const std::vector<Pending>& gpu_side, const hw::CostModel& costs) {
  double total = 0.0;
  for (const auto& p : gpu_side) total += costs.gpu_expert_time(p.load);
  return total;
}

/// Total CPU compute time of the whole CPU queue (warm-path estimate).
double cpu_backlog(const std::vector<Pending>& cpu_side, const hw::CostModel& costs) {
  double total = 0.0;
  for (const auto& p : cpu_side) total += costs.cpu_expert_time(p.load, /*warm=*/true);
  return total;
}

}  // namespace

void SimOptions::validate() const {
  HYBRIMOE_REQUIRE(allow_cpu || allow_transfers,
                   "uncached experts need either CPU compute or transfers");
  HYBRIMOE_REQUIRE(gpu_busy_until >= 0.0, "gpu_busy_until must be non-negative");
  HYBRIMOE_REQUIRE(pcie_busy_until >= 0.0, "pcie_busy_until must be non-negative");
}

LayerPlan simulate_layer(std::uint16_t layer, Stage stage,
                         std::span<const ExpertDemand> demands,
                         const hw::CostModel& costs, const SimOptions& options) {
  options.validate();
  HYBRIMOE_REQUIRE(!demands.empty(), "simulate_layer with no demands");
  {
    std::unordered_set<std::uint16_t> seen;
    for (const auto& d : demands) {
      HYBRIMOE_REQUIRE(d.load > 0, "expert demand with zero load");
      HYBRIMOE_REQUIRE(seen.insert(d.expert).second, "duplicate expert in demands");
    }
  }

  SimState st;
  st.gpu_t = options.gpu_busy_until;
  st.pcie_t = options.pcie_busy_until;
  for (const auto& d : demands) {
    Pending p{.expert = d.expert, .load = d.load, .cached = d.cached};
    if (d.cached) {
      insert_gpu_sorted(st.gpu_side, p);
    } else {
      st.cpu_side.push_back(p);
    }
  }
  std::sort(st.cpu_side.begin(), st.cpu_side.end(),
            [](const Pending& a, const Pending& b) {
              if (a.load != b.load) return a.load < b.load;
              return a.expert < b.expert;  // deterministic tie-break
            });

  LayerPlan plan;
  plan.layer = layer;
  plan.stage = stage;
  plan.gpu_offset = options.gpu_busy_until;
  plan.pcie_offset = options.pcie_busy_until;
  plan.pcie_end = options.pcie_busy_until;
  plan.tasks.reserve(demands.size());

  const double xfer = costs.transfer_time();

  auto emit_cpu = [&](const Pending& p) {
    const bool warm = st.cpu_used || !options.cpu_cold_start;
    const double dur = costs.cpu_expert_time(p.load, warm);
    ExpertTask t;
    t.expert = {layer, p.expert};
    t.load = p.load;
    t.device = ComputeDevice::Cpu;
    t.was_cached = p.cached;
    t.start = st.cpu_t;
    t.end = st.cpu_t + dur;
    st.cpu_t = t.end;
    st.cpu_used = true;
    plan.cpu_busy += dur;
    plan.tasks.push_back(t);
  };

  auto emit_gpu = [&](const Pending& p) {
    const double dur = costs.gpu_expert_time(p.load);
    ExpertTask t;
    t.expert = {layer, p.expert};
    t.load = p.load;
    t.device = ComputeDevice::Gpu;
    t.was_cached = p.cached;
    t.transferred = p.transferred;
    t.transfer_start = p.transfer_start;
    t.transfer_end = p.arrival;
    t.start = std::max(st.gpu_t, p.arrival);
    t.end = t.start + dur;
    st.gpu_t = t.end;
    plan.gpu_busy += dur;
    if (p.transferred) plan.pcie_busy += p.arrival - p.transfer_start;
    plan.tasks.push_back(t);
  };

  while (!st.gpu_side.empty() || !st.cpu_side.empty()) {
    // ---- Enumerate feasible actions with their resource-availability time.
    // GPU: prefer the highest-load *ready* item; else wait for the earliest
    // arrival. gpu_side is load-descending, so the first ready item wins.
    double gpu_when = kInf;
    std::size_t gpu_pick = 0;
    if (!st.gpu_side.empty()) {
      std::size_t earliest = 0;
      bool found_ready = false;
      for (std::size_t i = 0; i < st.gpu_side.size(); ++i) {
        if (st.gpu_side[i].arrival <= st.gpu_t) {
          gpu_pick = i;
          found_ready = true;
          break;
        }
        if (st.gpu_side[i].arrival < st.gpu_side[earliest].arrival) earliest = i;
      }
      if (!found_ready) gpu_pick = earliest;
      gpu_when = std::max(st.gpu_t, st.gpu_side[gpu_pick].arrival);
    }

    // CPU: front of its own queue; else steal the lowest-load cached expert
    // from the GPU side when that finishes sooner than the GPU would get
    // to it (it is last in GPU priority order).
    double cpu_when = kInf;
    bool cpu_steals = false;
    std::size_t steal_pick = 0;
    if (options.allow_cpu) {
      if (!st.cpu_side.empty()) {
        bool take = true;
        if (options.allow_transfers && options.cpu_only_if_beneficial) {
          // Simulation-evaluated assignment: would the lowest-load uncached
          // expert finish sooner on the CPU than streamed at the tail of the
          // PCIe chain? The 1.5x margin hedges the chain-length estimate,
          // which shrinks as the CPU keeps draining the queue.
          const Pending& cand = st.cpu_side.front();
          const bool warm = st.cpu_used || !options.cpu_cold_start;
          const double cpu_finish =
              st.cpu_t + 1.5 * costs.cpu_expert_time(cand.load, warm);
          const double arrival =
              st.pcie_t + xfer * static_cast<double>(st.cpu_side.size());
          const double gpu_finish =
              std::max(arrival, st.gpu_t + gpu_backlog(st.gpu_side, costs)) +
              costs.gpu_expert_time(cand.load);
          take = cpu_finish <= gpu_finish;
        }
        if (take) cpu_when = st.cpu_t;
      } else if (options.allow_cpu_steal && !st.gpu_side.empty()) {
        // Lowest load == last element (load-descending order); skip
        // transferred items: their upload cost is already sunk.
        bool found = false;
        for (std::size_t i = st.gpu_side.size(); i-- > 0;) {
          if (!st.gpu_side[i].transferred) {
            steal_pick = i;
            found = true;
            break;
          }
        }
        if (found) {
          const Pending& cand = st.gpu_side[steal_pick];
          const bool warm = st.cpu_used || !options.cpu_cold_start;
          const double cpu_finish = st.cpu_t + costs.cpu_expert_time(cand.load, warm);
          const double gpu_finish =
              st.gpu_t + gpu_backlog(st.gpu_side, costs);  // it is served last
          if (cpu_finish < gpu_finish) {
            cpu_when = st.cpu_t;
            cpu_steals = true;
          }
        }
      }
    }

    // PCIe: highest-load uncached expert (back of the CPU queue), committed
    // only when the simulated completion via the GPU wins.
    double pcie_when = kInf;
    if (options.allow_transfers && !st.cpu_side.empty()) {
      const Pending& cand = st.cpu_side.back();
      bool beneficial = true;
      if (options.allow_cpu && options.transfer_only_if_beneficial) {
        const double arrival = st.pcie_t + xfer;
        const double gpu_finish = std::max(arrival, st.gpu_t + gpu_backlog(st.gpu_side, costs)) +
                                  costs.gpu_expert_time(cand.load);
        const double cpu_finish = st.cpu_t + cpu_backlog(st.cpu_side, costs);
        // Ties go to the GPU route: it frees the CPU for other work and the
        // uploaded expert warms the cache.
        beneficial = gpu_finish <= cpu_finish;
      }
      if (beneficial) pcie_when = st.pcie_t;
    }

    // Both marginal checks can decline at once (each route looks worse than
    // the other's estimate). Forcing the CPU (or, CPU disabled, the link)
    // to take its priority item keeps the greedy loop live.
    if (gpu_when == kInf && cpu_when == kInf && pcie_when == kInf &&
        !st.cpu_side.empty()) {
      if (options.allow_cpu) {
        cpu_when = st.cpu_t;
      } else {
        pcie_when = st.pcie_t;
      }
    }

    HYBRIMOE_ASSERT(gpu_when < kInf || cpu_when < kInf || pcie_when < kInf,
                    "scheduling deadlock: no feasible action");

    // ---- Commit the action on the earliest-available resource
    // (tie-break: GPU, then CPU, then PCIe).
    if (gpu_when <= cpu_when && gpu_when <= pcie_when) {
      const Pending p = st.gpu_side[gpu_pick];
      st.gpu_side.erase(st.gpu_side.begin() + static_cast<std::ptrdiff_t>(gpu_pick));
      emit_gpu(p);
    } else if (cpu_when <= pcie_when) {
      if (cpu_steals) {
        const Pending p = st.gpu_side[steal_pick];
        st.gpu_side.erase(st.gpu_side.begin() + static_cast<std::ptrdiff_t>(steal_pick));
        emit_cpu(p);
      } else {
        const Pending p = st.cpu_side.front();
        st.cpu_side.erase(st.cpu_side.begin());
        emit_cpu(p);
      }
    } else {
      Pending p = st.cpu_side.back();
      st.cpu_side.pop_back();
      p.transferred = true;
      p.transfer_start = st.pcie_t;
      st.pcie_t += xfer;
      p.arrival = st.pcie_t;
      insert_gpu_sorted(st.gpu_side, p);
    }
  }

  plan.makespan = options.gpu_busy_until;
  for (const auto& t : plan.tasks) plan.makespan = std::max(plan.makespan, t.end);
  plan.pcie_end = st.pcie_t;
  return plan;
}

double makespan_with_extra_cached(std::uint16_t layer, Stage stage,
                                  std::span<const ExpertDemand> demands,
                                  std::uint16_t extra_cached, const hw::CostModel& costs,
                                  const SimOptions& options) {
  std::vector<ExpertDemand> adjusted(demands.begin(), demands.end());
  for (auto& d : adjusted)
    if (d.expert == extra_cached) d.cached = true;
  return simulate_layer(layer, stage, adjusted, costs, options).makespan;
}

}  // namespace hybrimoe::sched
