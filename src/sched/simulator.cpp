#include "sched/simulator.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>
#include <vector>

#include "util/assert.hpp"

namespace hybrimoe::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A pending expert inside the simulation.
struct Pending {
  std::uint16_t expert = 0;
  std::uint32_t load = 0;
  bool cached = false;       ///< resident before the layer started
  bool transferred = false;  ///< promoted over a link during this layer
  double arrival = 0.0;      ///< earliest accelerator start (transfer completion)
  double transfer_start = 0.0;
};

/// Simulation state: one clock per device and link plus the priority queues.
struct SimState {
  // Accelerator side, one queue per device: cached + transferred experts
  // awaiting compute, kept sorted by descending load (paper: high-load first).
  std::vector<std::vector<Pending>> accel_side;
  // CPU side: uncached experts, kept sorted by ascending load.
  std::vector<Pending> cpu_side;
  double cpu_t = 0.0;
  std::vector<double> accel_t;  ///< per-accelerator compute clock
  std::vector<double> link_t;   ///< per-link transfer clock
  bool cpu_used = false;        ///< warmup tracking
};

void insert_gpu_sorted(std::vector<Pending>& gpu_side, Pending p) {
  const auto pos = std::find_if(gpu_side.begin(), gpu_side.end(),
                                [&](const Pending& q) { return q.load < p.load; });
  gpu_side.insert(pos, p);
}

/// Total compute time of everything currently queued on accelerator `accel`.
double gpu_backlog(const std::vector<Pending>& gpu_side, const hw::CostModel& costs,
                   std::size_t accel) {
  double total = 0.0;
  for (const auto& p : gpu_side) total += costs.gpu_expert_time(p.load, accel);
  return total;
}

/// Total CPU compute time of the whole CPU queue (warm-path estimate).
double cpu_backlog(const std::vector<Pending>& cpu_side, const hw::CostModel& costs) {
  double total = 0.0;
  for (const auto& p : cpu_side) total += costs.cpu_expert_time(p.load, /*warm=*/true);
  return total;
}

}  // namespace

void SimOptions::validate() const {
  HYBRIMOE_REQUIRE(allow_cpu || allow_transfers,
                   "uncached experts need either CPU compute or transfers");
  HYBRIMOE_REQUIRE(gpu_busy_until >= 0.0, "gpu_busy_until must be non-negative");
  HYBRIMOE_REQUIRE(pcie_busy_until >= 0.0, "pcie_busy_until must be non-negative");
  for (const double t : link_busy_until)
    HYBRIMOE_REQUIRE(t >= 0.0, "link_busy_until entries must be non-negative");
}

LayerPlan simulate_layer(std::uint16_t layer, Stage stage,
                         std::span<const ExpertDemand> demands,
                         const hw::CostModel& costs, const SimOptions& options) {
  options.validate();
  HYBRIMOE_REQUIRE(!demands.empty(), "simulate_layer with no demands");
  const std::size_t num_accels = costs.num_accelerators();
  HYBRIMOE_REQUIRE(options.link_busy_until.empty() ||
                       options.link_busy_until.size() == num_accels,
                   "link_busy_until must have one entry per accelerator");
  {
    const DeviceSet devices(num_accels);
    std::unordered_set<std::uint16_t> seen;
    for (const auto& d : demands) {
      HYBRIMOE_REQUIRE(d.load > 0, "expert demand with zero load");
      HYBRIMOE_REQUIRE(seen.insert(d.expert).second, "duplicate expert in demands");
      HYBRIMOE_REQUIRE(!d.cached ||
                           (d.cached_on.is_accelerator() && devices.contains(d.cached_on)),
                       "cached_on must name an accelerator of the topology");
      HYBRIMOE_REQUIRE(!d.cached || costs.accelerator_available(d.cached_on.accel_index()),
                       "expert demand cached on an unavailable accelerator — "
                       "residency on a lost device must be invalidated");
    }
  }

  SimState st;
  st.accel_side.resize(num_accels);
  st.accel_t.assign(num_accels, options.gpu_busy_until);
  st.link_t = options.link_busy_until.empty()
                  ? std::vector<double>(num_accels, options.pcie_busy_until)
                  : options.link_busy_until;
  for (const auto& d : demands) {
    Pending p{.expert = d.expert, .load = d.load, .cached = d.cached};
    if (d.cached) {
      insert_gpu_sorted(st.accel_side[d.cached_on.accel_index()], p);
    } else {
      st.cpu_side.push_back(p);
    }
  }
  std::sort(st.cpu_side.begin(), st.cpu_side.end(),
            [](const Pending& a, const Pending& b) {
              if (a.load != b.load) return a.load < b.load;
              return a.expert < b.expert;  // deterministic tie-break
            });

  LayerPlan plan;
  plan.layer = layer;
  plan.stage = stage;
  plan.gpu_offset = options.gpu_busy_until;
  plan.link_offsets = st.link_t;
  plan.pcie_offset = st.link_t.front();
  plan.pcie_end = st.link_t.front();
  plan.tasks.reserve(demands.size());

  std::vector<double> xfer(num_accels);
  for (std::size_t a = 0; a < num_accels; ++a) xfer[a] = costs.transfer_time(a);

  auto emit_cpu = [&](const Pending& p) {
    const bool warm = st.cpu_used || !options.cpu_cold_start;
    const double dur = costs.cpu_expert_time(p.load, warm);
    ExpertTask t;
    t.expert = {layer, p.expert};
    t.load = p.load;
    t.device = kCpuDevice;
    t.was_cached = p.cached;
    t.start = st.cpu_t;
    t.end = st.cpu_t + dur;
    st.cpu_t = t.end;
    st.cpu_used = true;
    plan.cpu_busy += dur;
    plan.tasks.push_back(t);
  };

  auto emit_gpu = [&](const Pending& p, std::size_t accel) {
    const double dur = costs.gpu_expert_time(p.load, accel);
    ExpertTask t;
    t.expert = {layer, p.expert};
    t.load = p.load;
    t.device = accelerator_device(accel);
    t.was_cached = p.cached;
    t.transferred = p.transferred;
    t.transfer_start = p.transfer_start;
    t.transfer_end = p.arrival;
    t.start = std::max(st.accel_t[accel], p.arrival);
    t.end = t.start + dur;
    st.accel_t[accel] = t.end;
    plan.gpu_busy += dur;
    if (p.transferred) plan.pcie_busy += p.arrival - p.transfer_start;
    plan.tasks.push_back(t);
  };

  auto any_accel_pending = [&st] {
    for (const auto& side : st.accel_side)
      if (!side.empty()) return true;
    return false;
  };

  while (any_accel_pending() || !st.cpu_side.empty()) {
    // ---- Enumerate feasible actions with their resource-availability time.
    // Accelerators: per device, prefer the highest-load *ready* item; else
    // wait for the earliest arrival (each queue is load-descending, so the
    // first ready item wins). Across devices, the earliest-available action
    // wins (tie: lowest device index).
    double gpu_when = kInf;
    std::size_t gpu_dev = 0;
    std::size_t gpu_pick = 0;
    for (std::size_t a = 0; a < num_accels; ++a) {
      const auto& side = st.accel_side[a];
      if (side.empty()) continue;
      std::size_t pick = 0;
      std::size_t earliest = 0;
      bool found_ready = false;
      for (std::size_t i = 0; i < side.size(); ++i) {
        if (side[i].arrival <= st.accel_t[a]) {
          pick = i;
          found_ready = true;
          break;
        }
        if (side[i].arrival < side[earliest].arrival) earliest = i;
      }
      if (!found_ready) pick = earliest;
      const double when = std::max(st.accel_t[a], side[pick].arrival);
      if (when < gpu_when) {
        gpu_when = when;
        gpu_dev = a;
        gpu_pick = pick;
      }
    }

    // CPU: front of its own queue; else steal the lowest-load cached expert
    // across the accelerator queues when that finishes sooner than its
    // device would get to it (it is last in that device's priority order).
    double cpu_when = kInf;
    bool cpu_steals = false;
    std::size_t steal_dev = 0;
    std::size_t steal_pick = 0;
    if (options.allow_cpu) {
      if (!st.cpu_side.empty()) {
        bool take = true;
        if (options.allow_transfers && options.cpu_only_if_beneficial) {
          // Simulation-evaluated assignment: would the lowest-load uncached
          // expert finish sooner on the CPU than streamed at the tail of the
          // best link's chain? The 1.5x margin hedges the chain-length
          // estimate, which shrinks as the CPU keeps draining the queue.
          const Pending& cand = st.cpu_side.front();
          const bool warm = st.cpu_used || !options.cpu_cold_start;
          const double cpu_finish =
              st.cpu_t + 1.5 * costs.cpu_expert_time(cand.load, warm);
          double gpu_finish = kInf;
          for (std::size_t a = 0; a < num_accels; ++a) {
            if (!costs.accelerator_available(a)) continue;
            const double arrival =
                st.link_t[a] + xfer[a] * static_cast<double>(st.cpu_side.size());
            const double finish =
                std::max(arrival,
                         st.accel_t[a] + gpu_backlog(st.accel_side[a], costs, a)) +
                costs.gpu_expert_time(cand.load, a);
            gpu_finish = std::min(gpu_finish, finish);
          }
          take = cpu_finish <= gpu_finish;
        }
        if (take) cpu_when = st.cpu_t;
      } else if (options.allow_cpu_steal) {
        // Lowest load == last element of each load-descending queue; skip
        // transferred items: their upload cost is already sunk. Across
        // devices the smallest-load candidate wins (tie: lowest device).
        bool found = false;
        for (std::size_t a = 0; a < num_accels; ++a) {
          const auto& side = st.accel_side[a];
          for (std::size_t i = side.size(); i-- > 0;) {
            if (side[i].transferred) continue;
            if (!found || side[i].load < st.accel_side[steal_dev][steal_pick].load) {
              steal_dev = a;
              steal_pick = i;
              found = true;
            }
            break;
          }
        }
        if (found) {
          const Pending& cand = st.accel_side[steal_dev][steal_pick];
          const bool warm = st.cpu_used || !options.cpu_cold_start;
          const double cpu_finish = st.cpu_t + costs.cpu_expert_time(cand.load, warm);
          const double gpu_finish =
              st.accel_t[steal_dev] +
              gpu_backlog(st.accel_side[steal_dev], costs, steal_dev);  // served last
          if (cpu_finish < gpu_finish) {
            cpu_when = st.cpu_t;
            cpu_steals = true;
          }
        }
      }
    }

    // Transfer: highest-load uncached expert (back of the CPU queue) to the
    // accelerator with the earliest simulated completion, committed only
    // when that completion wins against the CPU route.
    double pcie_when = kInf;
    std::size_t xfer_dev = 0;
    if (options.allow_transfers && !st.cpu_side.empty()) {
      const Pending& cand = st.cpu_side.back();
      double best_finish = kInf;
      // A lost device is never a transfer target (conservation invariant);
      // accelerator 0 cannot be lost, so a target always exists.
      for (std::size_t a = 0; a < num_accels; ++a) {
        if (!costs.accelerator_available(a)) continue;
        const double arrival = st.link_t[a] + xfer[a];
        const double finish =
            std::max(arrival, st.accel_t[a] + gpu_backlog(st.accel_side[a], costs, a)) +
            costs.gpu_expert_time(cand.load, a);
        if (finish < best_finish) {
          best_finish = finish;
          xfer_dev = a;
        }
      }
      bool beneficial = true;
      if (options.allow_cpu && options.transfer_only_if_beneficial) {
        const double cpu_finish = st.cpu_t + cpu_backlog(st.cpu_side, costs);
        // Ties go to the accelerator route: it frees the CPU for other work
        // and the uploaded expert warms the cache.
        beneficial = best_finish <= cpu_finish;
      }
      if (beneficial) pcie_when = st.link_t[xfer_dev];
    }

    // Both marginal checks can decline at once (each route looks worse than
    // the other's estimate). Forcing the CPU (or, CPU disabled, the link)
    // to take its priority item keeps the greedy loop live.
    if (gpu_when == kInf && cpu_when == kInf && pcie_when == kInf &&
        !st.cpu_side.empty()) {
      if (options.allow_cpu) {
        cpu_when = st.cpu_t;
      } else {
        pcie_when = st.link_t[xfer_dev];
      }
    }

    HYBRIMOE_ASSERT(gpu_when < kInf || cpu_when < kInf || pcie_when < kInf,
                    "scheduling deadlock: no feasible action");

    // ---- Commit the action on the earliest-available resource
    // (tie-break: accelerator, then CPU, then link).
    if (gpu_when <= cpu_when && gpu_when <= pcie_when) {
      auto& side = st.accel_side[gpu_dev];
      const Pending p = side[gpu_pick];
      side.erase(side.begin() + static_cast<std::ptrdiff_t>(gpu_pick));
      emit_gpu(p, gpu_dev);
    } else if (cpu_when <= pcie_when) {
      if (cpu_steals) {
        auto& side = st.accel_side[steal_dev];
        const Pending p = side[steal_pick];
        side.erase(side.begin() + static_cast<std::ptrdiff_t>(steal_pick));
        emit_cpu(p);
      } else {
        const Pending p = st.cpu_side.front();
        st.cpu_side.erase(st.cpu_side.begin());
        emit_cpu(p);
      }
    } else {
      Pending p = st.cpu_side.back();
      st.cpu_side.pop_back();
      p.transferred = true;
      p.transfer_start = st.link_t[xfer_dev];
      st.link_t[xfer_dev] += xfer[xfer_dev];
      p.arrival = st.link_t[xfer_dev];
      insert_gpu_sorted(st.accel_side[xfer_dev], p);
    }
  }

  plan.makespan = options.gpu_busy_until;
  for (const auto& t : plan.tasks) plan.makespan = std::max(plan.makespan, t.end);
  plan.link_ends = st.link_t;
  plan.pcie_end = st.link_t.front();
  return plan;
}

double makespan_with_extra_cached(std::uint16_t layer, Stage stage,
                                  std::span<const ExpertDemand> demands,
                                  std::uint16_t extra_cached, const hw::CostModel& costs,
                                  const SimOptions& options) {
  std::vector<ExpertDemand> adjusted(demands.begin(), demands.end());
  for (auto& d : adjusted)
    if (d.expert == extra_cached) d.cached = true;  // cached_on: primary device
  return simulate_layer(layer, stage, adjusted, costs, options).makespan;
}

}  // namespace hybrimoe::sched
