#pragma once

/// \file optimal.hpp
/// Exact reference scheduler for small instances (single-pair oracle: the
/// enumeration covers the CPU and the *primary* accelerator only — it bounds
/// the greedy scheduler on the historical CPU+GPU pair, not on N-device
/// topologies).
///
/// The paper argues the per-layer mapping problem is NP-hard in general and
/// settles for priority-rule greedy simulation (§IV-B). For instances of up
/// to ~16 experts we can afford the exact optimum under the same model:
///
///  * enumerate every CPU/GPU assignment (2^n);
///  * CPU cost is order-independent (serial sum + one cold-start penalty);
///  * the GPU side is a two-machine flow shop (PCIe then GPU) for the
///    transferred experts, with cached experts forming a GPU head start —
///    ordered optimally by Johnson's rule.
///
/// Tests and the design-ablation bench use this to bound the greedy
/// scheduler's optimality gap — the quantitative justification for the
/// paper's "predefined scheduling rules" opportunity (§III, Opportunity 2).

#include <span>

#include "hw/cost_model.hpp"
#include "sched/plan.hpp"
#include "sched/simulator.hpp"

namespace hybrimoe::sched {

struct OptimalResult {
  double makespan = 0.0;
  /// Device per demand (parallel to the input span; kCpuDevice or
  /// kGpuDevice — the oracle is pair-only).
  std::vector<DeviceId> assignment;
};

/// Exact minimum makespan over all assignments and transfer orders, under
/// the same constraints the greedy simulation observes (warmup, offsets,
/// feature switches). Instances above `max_exhaustive_experts` are rejected.
[[nodiscard]] OptimalResult optimal_layer_schedule(
    std::span<const ExpertDemand> demands, const hw::CostModel& costs,
    const SimOptions& options = {}, std::size_t max_exhaustive_experts = 16);

/// Makespan of one fixed assignment (exposed for tests): cached-on-GPU
/// experts run first, transferred experts follow in Johnson's order.
[[nodiscard]] double assignment_makespan(std::span<const ExpertDemand> demands,
                                         std::span<const DeviceId> assignment,
                                         const hw::CostModel& costs,
                                         const SimOptions& options = {});

}  // namespace hybrimoe::sched
