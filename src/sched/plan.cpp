#include "sched/plan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

namespace hybrimoe::sched {

namespace {
constexpr double kTimeEps = 1e-9;
}

Stage dominant_stage(std::size_t prefill_tokens, std::size_t decode_tokens) noexcept {
  if (prefill_tokens == 0) return Stage::Decode;
  if (decode_tokens == 0) return Stage::Prefill;
  return prefill_tokens >= decode_tokens ? Stage::Prefill : Stage::Decode;
}

std::size_t LayerPlan::num_accel_devices() const {
  std::size_t n = std::max<std::size_t>(1, std::max(link_offsets.size(), link_ends.size()));
  for (const auto& t : tasks)
    if (t.device.is_accelerator()) n = std::max(n, t.device.accel_index() + 1);
  return n;
}

double LayerPlan::link_offset(std::size_t accel) const {
  if (accel < link_offsets.size()) return link_offsets[accel];
  return pcie_offset;
}

double LayerPlan::link_end(std::size_t accel) const {
  if (accel < link_ends.size()) return link_ends[accel];
  return pcie_end;
}

std::vector<moe::ExpertId> LayerPlan::transferred_experts() const {
  std::vector<moe::ExpertId> out;
  for (const auto& t : tasks)
    if (t.transferred) out.push_back(t.expert);
  return out;
}

std::vector<std::size_t> LayerPlan::device_order(DeviceId device) const {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    if (tasks[i].device == device) order.push_back(i);
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return tasks[a].start < tasks[b].start;
  });
  return order;
}

std::vector<std::size_t> LayerPlan::transfer_order() const {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    if (tasks[i].transferred) order.push_back(i);
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return tasks[a].transfer_start < tasks[b].transfer_start;
  });
  return order;
}

std::vector<std::size_t> LayerPlan::transfer_order(DeviceId device) const {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    if (tasks[i].transferred && tasks[i].device == device) order.push_back(i);
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return tasks[a].transfer_start < tasks[b].transfer_start;
  });
  return order;
}

hw::TimelineSet LayerPlan::to_timelines() const {
  hw::TimelineSet set;
  // Collect intervals per resource in start order, then replay.
  struct Item {
    double start, end;
    hw::OpKind kind;
    moe::ExpertId expert;
    std::uint32_t load;
    hw::Resource resource;
  };
  std::vector<Item> items;
  for (const auto& t : tasks) {
    if (t.transferred)
      items.push_back({t.transfer_start, t.transfer_end, hw::OpKind::Transfer, t.expert,
                       t.load, hw::Resource::Pcie});
    items.push_back({t.start, t.end,
                     t.device.is_cpu() ? hw::OpKind::CpuCompute : hw::OpKind::GpuCompute,
                     t.expert, t.load,
                     t.device.is_cpu() ? hw::Resource::Cpu : hw::Resource::Gpu});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.start < b.start; });
  for (const auto& it : items)
    set.of(it.resource).schedule(it.start, it.end - it.start, it.kind, it.expert, it.load);
  return set;
}

std::vector<std::string> validate_plan(const LayerPlan& plan,
                                       std::span<const ExpertDemand> demands) {
  std::vector<std::string> issues;
  auto complain = [&issues](const std::string& what) { issues.push_back(what); };

  const std::size_t num_accels = plan.num_accel_devices();

  std::unordered_map<std::uint16_t, const ExpertTask*> by_expert;
  for (const auto& t : plan.tasks) {
    if (t.expert.layer != plan.layer)
      complain("task " + t.expert.to_string() + " belongs to another layer");
    if (!by_expert.emplace(t.expert.expert, &t).second)
      complain("expert " + t.expert.to_string() + " computed more than once");
  }

  for (const auto& d : demands) {
    const auto it = by_expert.find(d.expert);
    if (it == by_expert.end()) {
      complain("demanded expert E" + std::to_string(d.expert) + " never computed");
      continue;
    }
    const ExpertTask& t = *it->second;
    if (t.load != d.load)
      complain("expert " + t.expert.to_string() + " load mismatch: plan " +
               std::to_string(t.load) + " vs demand " + std::to_string(d.load));
    if (t.was_cached != d.cached)
      complain("expert " + t.expert.to_string() + " cached flag mismatch");
    if (d.cached && t.was_cached && !t.transferred && t.device.is_accelerator() &&
        t.device != d.cached_on)
      complain("cached expert " + t.expert.to_string() + " computed on " +
               to_string(t.device) + " but resident on " + to_string(d.cached_on));
  }
  if (by_expert.size() != demands.size())
    complain("plan computes " + std::to_string(by_expert.size()) + " experts, demands " +
             std::to_string(demands.size()));

  if (plan.gpu_offset < 0.0) complain("negative gpu_offset");
  if (plan.pcie_offset < 0.0) complain("negative pcie_offset");
  if (plan.pcie_end < plan.pcie_offset - kTimeEps)
    complain("pcie_end before pcie_offset");
  if (!plan.link_offsets.empty() &&
      std::abs(plan.link_offsets.front() - plan.pcie_offset) > kTimeEps)
    complain("link_offsets[0] does not mirror pcie_offset");
  if (!plan.link_ends.empty() &&
      std::abs(plan.link_ends.front() - plan.pcie_end) > kTimeEps)
    complain("link_ends[0] does not mirror pcie_end");
  for (std::size_t a = 0; a < num_accels; ++a)
    if (plan.link_end(a) < plan.link_offset(a) - kTimeEps)
      complain("link_end before link_offset on " + to_string(accelerator_device(a)));

  double latest_end = plan.gpu_offset;
  double cpu = 0.0;
  double gpu = 0.0;
  double pcie = 0.0;
  for (const auto& t : plan.tasks) {
    if (t.end < t.start - kTimeEps)
      complain("expert " + t.expert.to_string() + " has negative compute duration");
    if (t.device.is_accelerator() && t.start < plan.gpu_offset - kTimeEps)
      complain("expert " + t.expert.to_string() +
               " starts on an accelerator during the dense phase");
    latest_end = std::max(latest_end, t.end);
    (t.device.is_cpu() ? cpu : gpu) += t.end - t.start;

    if (t.transferred) {
      if (t.was_cached)
        complain("cached expert " + t.expert.to_string() + " was transferred");
      if (!t.device.is_accelerator()) {
        complain("transferred expert " + t.expert.to_string() +
                 " not computed on an accelerator");
      } else if (t.transfer_start <
                 plan.link_offset(t.device.accel_index()) - kTimeEps) {
        complain("expert " + t.expert.to_string() +
                 " transferred while the link was still carrying earlier work");
      }
      if (t.transfer_end > t.start + kTimeEps)
        complain("expert " + t.expert.to_string() + " computed before its transfer ended");
      if (t.transfer_end < t.transfer_start - kTimeEps)
        complain("expert " + t.expert.to_string() + " has negative transfer duration");
      pcie += t.transfer_end - t.transfer_start;
    } else if (!t.was_cached && t.device.is_accelerator()) {
      complain("uncached expert " + t.expert.to_string() +
               " computed on an accelerator without a transfer");
    }
  }

  // Resource exclusivity, per device and per link.
  auto check_overlap = [&](const std::string& what, auto interval_of) {
    std::vector<std::pair<double, double>> spans;
    for (const auto& t : plan.tasks) {
      const auto iv = interval_of(t);
      if (iv.second > iv.first) spans.push_back(iv);
    }
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i)
      if (spans[i].first < spans[i - 1].second - kTimeEps) {
        complain("overlapping intervals on " + what);
        return;
      }
  };
  check_overlap("CPU", [](const ExpertTask& t) {
    return t.device.is_cpu() ? std::pair{t.start, t.end} : std::pair{0.0, 0.0};
  });
  for (std::size_t a = 0; a < num_accels; ++a) {
    const DeviceId dev = accelerator_device(a);
    check_overlap(to_string(dev), [dev](const ExpertTask& t) {
      return t.device == dev ? std::pair{t.start, t.end} : std::pair{0.0, 0.0};
    });
    check_overlap("link of " + to_string(dev), [dev](const ExpertTask& t) {
      return t.transferred && t.device == dev
                 ? std::pair{t.transfer_start, t.transfer_end}
                 : std::pair{0.0, 0.0};
    });
  }

  if (std::abs(plan.makespan - latest_end) > kTimeEps * (1.0 + latest_end))
    complain("makespan " + std::to_string(plan.makespan) +
             " != latest compute end " + std::to_string(latest_end));
  auto close = [](double a, double b) {
    return std::abs(a - b) <= kTimeEps * (1.0 + std::max(std::abs(a), std::abs(b)));
  };
  if (!close(plan.cpu_busy, cpu)) complain("cpu_busy mismatch");
  if (!close(plan.gpu_busy, gpu)) complain("gpu_busy mismatch");
  if (!close(plan.pcie_busy, pcie)) complain("pcie_busy mismatch");

  return issues;
}

}  // namespace hybrimoe::sched
