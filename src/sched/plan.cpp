#include "sched/plan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

namespace hybrimoe::sched {

namespace {
constexpr double kTimeEps = 1e-9;
}

Stage dominant_stage(std::size_t prefill_tokens, std::size_t decode_tokens) noexcept {
  if (prefill_tokens == 0) return Stage::Decode;
  if (decode_tokens == 0) return Stage::Prefill;
  return prefill_tokens >= decode_tokens ? Stage::Prefill : Stage::Decode;
}

std::vector<moe::ExpertId> LayerPlan::transferred_experts() const {
  std::vector<moe::ExpertId> out;
  for (const auto& t : tasks)
    if (t.transferred) out.push_back(t.expert);
  return out;
}

std::vector<std::size_t> LayerPlan::device_order(ComputeDevice device) const {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    if (tasks[i].device == device) order.push_back(i);
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return tasks[a].start < tasks[b].start;
  });
  return order;
}

std::vector<std::size_t> LayerPlan::transfer_order() const {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    if (tasks[i].transferred) order.push_back(i);
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return tasks[a].transfer_start < tasks[b].transfer_start;
  });
  return order;
}

hw::TimelineSet LayerPlan::to_timelines() const {
  hw::TimelineSet set;
  // Collect intervals per resource in start order, then replay.
  struct Item {
    double start, end;
    hw::OpKind kind;
    moe::ExpertId expert;
    std::uint32_t load;
    hw::Resource resource;
  };
  std::vector<Item> items;
  for (const auto& t : tasks) {
    if (t.transferred)
      items.push_back({t.transfer_start, t.transfer_end, hw::OpKind::Transfer, t.expert,
                       t.load, hw::Resource::Pcie});
    items.push_back({t.start, t.end,
                     t.device == ComputeDevice::Cpu ? hw::OpKind::CpuCompute
                                                    : hw::OpKind::GpuCompute,
                     t.expert, t.load,
                     t.device == ComputeDevice::Cpu ? hw::Resource::Cpu
                                                    : hw::Resource::Gpu});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.start < b.start; });
  for (const auto& it : items)
    set.of(it.resource).schedule(it.start, it.end - it.start, it.kind, it.expert, it.load);
  return set;
}

std::vector<std::string> validate_plan(const LayerPlan& plan,
                                       std::span<const ExpertDemand> demands) {
  std::vector<std::string> issues;
  auto complain = [&issues](const std::string& what) { issues.push_back(what); };

  std::unordered_map<std::uint16_t, const ExpertTask*> by_expert;
  for (const auto& t : plan.tasks) {
    if (t.expert.layer != plan.layer)
      complain("task " + t.expert.to_string() + " belongs to another layer");
    if (!by_expert.emplace(t.expert.expert, &t).second)
      complain("expert " + t.expert.to_string() + " computed more than once");
  }

  for (const auto& d : demands) {
    const auto it = by_expert.find(d.expert);
    if (it == by_expert.end()) {
      complain("demanded expert E" + std::to_string(d.expert) + " never computed");
      continue;
    }
    const ExpertTask& t = *it->second;
    if (t.load != d.load)
      complain("expert " + t.expert.to_string() + " load mismatch: plan " +
               std::to_string(t.load) + " vs demand " + std::to_string(d.load));
    if (t.was_cached != d.cached)
      complain("expert " + t.expert.to_string() + " cached flag mismatch");
  }
  if (by_expert.size() != demands.size())
    complain("plan computes " + std::to_string(by_expert.size()) + " experts, demands " +
             std::to_string(demands.size()));

  if (plan.gpu_offset < 0.0) complain("negative gpu_offset");
  if (plan.pcie_offset < 0.0) complain("negative pcie_offset");
  if (plan.pcie_end < plan.pcie_offset - kTimeEps)
    complain("pcie_end before pcie_offset");

  double latest_end = plan.gpu_offset;
  double cpu = 0.0;
  double gpu = 0.0;
  double pcie = 0.0;
  for (const auto& t : plan.tasks) {
    if (t.end < t.start - kTimeEps)
      complain("expert " + t.expert.to_string() + " has negative compute duration");
    if (t.device == ComputeDevice::Gpu && t.start < plan.gpu_offset - kTimeEps)
      complain("expert " + t.expert.to_string() +
               " starts on the GPU during the dense phase");
    latest_end = std::max(latest_end, t.end);
    (t.device == ComputeDevice::Cpu ? cpu : gpu) += t.end - t.start;

    if (t.transferred) {
      if (t.was_cached)
        complain("cached expert " + t.expert.to_string() + " was transferred");
      if (t.transfer_start < plan.pcie_offset - kTimeEps)
        complain("expert " + t.expert.to_string() +
                 " transferred while the link was still carrying earlier work");
      if (t.device != ComputeDevice::Gpu)
        complain("transferred expert " + t.expert.to_string() + " not computed on GPU");
      if (t.transfer_end > t.start + kTimeEps)
        complain("expert " + t.expert.to_string() + " computed before its transfer ended");
      if (t.transfer_end < t.transfer_start - kTimeEps)
        complain("expert " + t.expert.to_string() + " has negative transfer duration");
      pcie += t.transfer_end - t.transfer_start;
    } else if (!t.was_cached && t.device == ComputeDevice::Gpu) {
      complain("uncached expert " + t.expert.to_string() +
               " computed on GPU without a transfer");
    }
  }

  // Resource exclusivity.
  auto check_overlap = [&](hw::Resource res, auto interval_of) {
    std::vector<std::pair<double, double>> spans;
    for (const auto& t : plan.tasks) {
      const auto iv = interval_of(t);
      if (iv.second > iv.first) spans.push_back(iv);
    }
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i)
      if (spans[i].first < spans[i - 1].second - kTimeEps) {
        complain(std::string("overlapping intervals on ") + hw::to_string(res));
        return;
      }
  };
  check_overlap(hw::Resource::Cpu, [](const ExpertTask& t) {
    return t.device == ComputeDevice::Cpu ? std::pair{t.start, t.end}
                                          : std::pair{0.0, 0.0};
  });
  check_overlap(hw::Resource::Gpu, [](const ExpertTask& t) {
    return t.device == ComputeDevice::Gpu ? std::pair{t.start, t.end}
                                          : std::pair{0.0, 0.0};
  });
  check_overlap(hw::Resource::Pcie, [](const ExpertTask& t) {
    return t.transferred ? std::pair{t.transfer_start, t.transfer_end}
                         : std::pair{0.0, 0.0};
  });

  if (std::abs(plan.makespan - latest_end) > kTimeEps * (1.0 + latest_end))
    complain("makespan " + std::to_string(plan.makespan) +
             " != latest compute end " + std::to_string(latest_end));
  auto close = [](double a, double b) {
    return std::abs(a - b) <= kTimeEps * (1.0 + std::max(std::abs(a), std::abs(b)));
  };
  if (!close(plan.cpu_busy, cpu)) complain("cpu_busy mismatch");
  if (!close(plan.gpu_busy, gpu)) complain("gpu_busy mismatch");
  if (!close(plan.pcie_busy, pcie)) complain("pcie_busy mismatch");

  return issues;
}

}  // namespace hybrimoe::sched
