#pragma once

/// \file plan.hpp
/// The unit the schedulers produce: a per-layer execution plan assigning every
/// activated expert to a device, with transfer and compute intervals on the
/// per-device resource timelines (CPU, each accelerator, each host link).
/// Plans are checked by validate_plan — every scheduler in the test suite
/// must produce structurally valid plans on every input.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hw/timeline.hpp"
#include "moe/expert_id.hpp"
#include "sched/device.hpp"

namespace hybrimoe::sched {

/// Inference stage; some baselines schedule the two differently
/// (kTransformers uses the CPU only during decode — paper Table I).
enum class Stage : std::uint8_t { Prefill, Decode };

/// Printable stage name ("prefill" / "decode").
[[nodiscard]] constexpr const char* to_string(Stage s) noexcept {
  return s == Stage::Prefill ? "prefill" : "decode";
}

/// Batch-composition entry point for the serving layer: which scheduling
/// regime a *mixed* continuous-batching step (one prefill chunk plus the
/// active decode tokens) runs under. The stage is decided by which kind of
/// work carries the step's token mass — a chunk of 128 prompt tokens next to
/// three decode tokens schedules like prefill (stream misses to the GPU), a
/// two-token tail chunk amid a full decode batch schedules like decode.
[[nodiscard]] Stage dominant_stage(std::size_t prefill_tokens,
                                   std::size_t decode_tokens) noexcept;

/// One activated expert of the current layer as the scheduler sees it.
struct ExpertDemand {
  std::uint16_t expert = 0;
  std::uint32_t load = 0;  ///< tokens routed to this expert (> 0)
  bool cached = false;     ///< resident in some accelerator's expert cache
  /// Which accelerator holds the resident copy (meaningful when `cached`).
  /// Defaults to the primary accelerator, so single-device call sites that
  /// aggregate-initialize {expert, load, cached} are unchanged.
  DeviceId cached_on = kGpuDevice;
};

/// Where/when one expert was computed (and transferred, if it was).
struct ExpertTask {
  moe::ExpertId expert;
  std::uint32_t load = 0;
  DeviceId device = kCpuDevice;  ///< computing device (CPU or an accelerator)
  bool was_cached = false;
  bool transferred = false;  ///< uploaded on demand before accelerator compute
  double transfer_start = 0.0;
  double transfer_end = 0.0;
  double start = 0.0;
  double end = 0.0;
};

/// The scheduler's output for one MoE layer.
struct LayerPlan {
  std::uint16_t layer = 0;
  Stage stage = Stage::Decode;
  std::vector<ExpertTask> tasks;
  /// Accelerator occupancy by the layer's dense phase (SimOptions::
  /// gpu_busy_until, charged to every accelerator — the dense pipeline is
  /// replicated); no accelerator expert task starts before it.
  double gpu_offset = 0.0;
  /// Primary-link occupancy carried in from previous layers' in-flight
  /// transfers; no transfer on link 0 starts before it. Per-link values for
  /// the other links live in `link_offsets`.
  double pcie_offset = 0.0;
  /// When the primary link frees up after this plan's transfers
  /// (>= pcie_offset; the prefetcher starts its uploads here). Per-link
  /// values for the other links live in `link_ends`.
  double pcie_end = 0.0;
  /// Layer latency: dense phase plus the routed-expert phase
  /// (max of gpu_offset and the latest compute end).
  double makespan = 0.0;
  double cpu_busy = 0.0;
  double gpu_busy = 0.0;   ///< summed across accelerators
  double pcie_busy = 0.0;  ///< summed across links
  /// Per-link occupancy carried in / left behind, one entry per accelerator
  /// link in topology order. Empty on hand-built single-link plans — the
  /// scalar pcie_offset/pcie_end fields are then authoritative; when
  /// non-empty, entry 0 mirrors the scalars.
  std::vector<double> link_offsets;
  /// Per-link busy-until times after this plan's transfers (see link_offsets).
  std::vector<double> link_ends;

  /// Number of accelerator devices this plan spans (>= 1): the larger of the
  /// per-link vectors and the highest task device id.
  [[nodiscard]] std::size_t num_accel_devices() const;

  /// Occupancy carried into accelerator link `accel` (scalar fallback).
  [[nodiscard]] double link_offset(std::size_t accel) const;
  /// Busy-until of accelerator link `accel` after this plan (scalar fallback).
  [[nodiscard]] double link_end(std::size_t accel) const;

  /// Experts uploaded on demand (they enter their device's cache on
  /// completion).
  [[nodiscard]] std::vector<moe::ExpertId> transferred_experts() const;

  /// Indices of the tasks computed on `device`, in compute-start order —
  /// the serial occupation order of that resource lane. The execution
  /// backend lowers each lane into a chain of real tasks in this order.
  [[nodiscard]] std::vector<std::size_t> device_order(DeviceId device) const;

  /// Indices of all transferred tasks in transfer-start order — the combined
  /// FIFO service order across links (equals the single link's order on
  /// one-accelerator plans).
  [[nodiscard]] std::vector<std::size_t> transfer_order() const;

  /// Indices of the tasks transferred over `device`'s link in transfer-start
  /// order — the FIFO submission order of that link's copy engine.
  [[nodiscard]] std::vector<std::size_t> transfer_order(DeviceId device) const;

  /// Rebuild the three-lane resource timelines (for Gantt rendering and
  /// validation). Accelerator tasks of every device share the GPU lane and
  /// transfers of every link share the PCIe lane, so the chart is only
  /// non-overlapping for single-accelerator plans.
  [[nodiscard]] hw::TimelineSet to_timelines() const;
};

/// Structural validation; returns human-readable violations (empty == valid):
///  * every demanded expert computed exactly once, with matching load;
///  * an uncached expert computed on an accelerator must have a completed
///    transfer (over that device's link) that ends before its compute starts;
///  * cached experts are never transferred;
///  * no two intervals overlap on the same resource (CPU, each accelerator,
///    each link);
///  * makespan equals the latest compute end and busy sums match intervals.
[[nodiscard]] std::vector<std::string> validate_plan(
    const LayerPlan& plan, std::span<const ExpertDemand> demands);

}  // namespace hybrimoe::sched
