#pragma once

/// \file plan.hpp
/// The unit the schedulers produce: a per-layer execution plan assigning every
/// activated expert to a device, with transfer and compute intervals on the
/// three resource timelines. Plans are checked by validate_plan — every
/// scheduler in the test suite must produce structurally valid plans on every
/// input.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hw/timeline.hpp"
#include "moe/expert_id.hpp"

namespace hybrimoe::sched {

/// Inference stage; some baselines schedule the two differently
/// (kTransformers uses the CPU only during decode — paper Table I).
enum class Stage : std::uint8_t { Prefill, Decode };

[[nodiscard]] constexpr const char* to_string(Stage s) noexcept {
  return s == Stage::Prefill ? "prefill" : "decode";
}

/// Batch-composition entry point for the serving layer: which scheduling
/// regime a *mixed* continuous-batching step (one prefill chunk plus the
/// active decode tokens) runs under. The stage is decided by which kind of
/// work carries the step's token mass — a chunk of 128 prompt tokens next to
/// three decode tokens schedules like prefill (stream misses to the GPU), a
/// two-token tail chunk amid a full decode batch schedules like decode.
[[nodiscard]] Stage dominant_stage(std::size_t prefill_tokens,
                                   std::size_t decode_tokens) noexcept;

enum class ComputeDevice : std::uint8_t { Cpu, Gpu };

/// One activated expert of the current layer as the scheduler sees it.
struct ExpertDemand {
  std::uint16_t expert = 0;
  std::uint32_t load = 0;  ///< tokens routed to this expert (> 0)
  bool cached = false;     ///< resident in the GPU expert cache
};

/// Where/when one expert was computed (and transferred, if it was).
struct ExpertTask {
  moe::ExpertId expert;
  std::uint32_t load = 0;
  ComputeDevice device = ComputeDevice::Cpu;
  bool was_cached = false;
  bool transferred = false;  ///< uploaded on demand before GPU compute
  double transfer_start = 0.0;
  double transfer_end = 0.0;
  double start = 0.0;
  double end = 0.0;
};

/// The scheduler's output for one MoE layer.
struct LayerPlan {
  std::uint16_t layer = 0;
  Stage stage = Stage::Decode;
  std::vector<ExpertTask> tasks;
  /// GPU occupancy by the layer's dense phase (SimOptions::gpu_busy_until);
  /// no GPU expert task starts before it.
  double gpu_offset = 0.0;
  /// PCIe occupancy carried in from previous layers' in-flight transfers;
  /// no transfer starts before it.
  double pcie_offset = 0.0;
  /// When the PCIe link frees up after this plan's transfers (>= pcie_offset;
  /// the prefetcher starts its uploads here).
  double pcie_end = 0.0;
  /// Layer latency: dense phase plus the routed-expert phase
  /// (max of gpu_offset and the latest compute end).
  double makespan = 0.0;
  double cpu_busy = 0.0;
  double gpu_busy = 0.0;
  double pcie_busy = 0.0;

  /// Experts uploaded on demand (they enter the cache on completion).
  [[nodiscard]] std::vector<moe::ExpertId> transferred_experts() const;

  /// Indices of the tasks computed on `device`, in compute-start order —
  /// the serial occupation order of that resource lane. The execution
  /// backend lowers each lane into a chain of real tasks in this order.
  [[nodiscard]] std::vector<std::size_t> device_order(ComputeDevice device) const;

  /// Indices of the transferred tasks in transfer-start order — the FIFO
  /// service order of the PCIe lane (the copy engine's submission order).
  [[nodiscard]] std::vector<std::size_t> transfer_order() const;

  /// Rebuild resource timelines (for Gantt rendering and validation).
  [[nodiscard]] hw::TimelineSet to_timelines() const;
};

/// Structural validation; returns human-readable violations (empty == valid):
///  * every demanded expert computed exactly once, with matching load;
///  * an uncached expert computed on the GPU must have a completed transfer
///    that ends before its compute starts;
///  * cached experts are never transferred;
///  * no two intervals overlap on the same resource;
///  * makespan equals the latest compute end and busy sums match intervals.
[[nodiscard]] std::vector<std::string> validate_plan(
    const LayerPlan& plan, std::span<const ExpertDemand> demands);

}  // namespace hybrimoe::sched
