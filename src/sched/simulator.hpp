#pragma once

/// \file simulator.hpp
/// The greedy timeline-filling simulation at the heart of HybriMoE (§IV-B).
///
/// The paper reduces per-layer scheduling to an allocation problem
/// (Eq. 2: minimise max(CPU_TIME, GPU_TIME)) constrained by three priority
/// rules, then *simulates* execution to pick the allocation:
///
///  * GPU priority  — cached experts, highest load first;
///  * CPU priority  — uncached experts, lowest load first; when its queue is
///                    empty the CPU steals low-load cached experts;
///  * Transfer      — PCIe promotes the highest-load uncached expert to the
///                    GPU when the simulated completion via GPU beats leaving
///                    it on the CPU.
///
/// Each simulation step advances the resource timeline with the earliest
/// availability and commits its priority-selected operation. The committed
/// trace *is* the schedule: in our discrete-event world, executing a plan is
/// re-running this simulation, so the returned LayerPlan carries both the
/// allocation and the timing.
///
/// The same routine — with features disabled through SimOptions — also
/// implements the baseline scheduling policies (kTransformers fixed mapping,
/// AdapMoE GPU-centric, llama.cpp static layers), so that framework
/// comparisons isolate policy differences only.

#include <span>

#include "hw/cost_model.hpp"
#include "sched/plan.hpp"

namespace hybrimoe::sched {

/// Feature switches of the greedy simulation.
struct SimOptions {
  /// CPU may compute uncached experts.
  bool allow_cpu = true;
  /// PCIe may promote uncached experts to the GPU.
  bool allow_transfers = true;
  /// Idle CPU may steal low-load *cached* experts from the GPU queue.
  bool allow_cpu_steal = true;
  /// Commit a transfer only when its simulated GPU completion beats the CPU
  /// completion (the paper's simulation-evaluated choice). When allow_cpu is
  /// false this check is vacuous — transfers are the only way to make
  /// progress on uncached experts.
  bool transfer_only_if_beneficial = true;
  /// Symmetric check on the CPU side: the CPU takes its lowest-load uncached
  /// expert only when finishing it there beats streaming it over PCIe at the
  /// tail of the transfer chain. Keeps the CPU out of high-load prefill
  /// work the GPU route would finish sooner. Vacuous when transfers are
  /// disabled (the CPU is then the only route).
  bool cpu_only_if_beneficial = true;
  /// First CPU task of the layer pays the cold-start warmup penalty
  /// (paper Fig. 3e).
  bool cpu_cold_start = true;
  /// The GPU is occupied until this time by the layer's dense work
  /// (attention + shared experts — see Fig. 5, where the shared expert block
  /// precedes routed experts on the GPU). The CPU starts at time zero, which
  /// is exactly how hybrid frameworks hide CPU misses under the dense phase.
  double gpu_busy_until = 0.0;
  /// The PCIe link is occupied until this time by transfers still in flight
  /// from previous layers (prefetches issued asynchronously). On-demand
  /// transfers queue behind them — so aggressive prefetching *delays*
  /// on-demand loads, a trade-off the beneficial-transfer check sees.
  double pcie_busy_until = 0.0;

  void validate() const;
};

/// Run the greedy simulation for one layer.
///
/// Preconditions: demands non-empty, loads positive, expert ids unique;
/// if allow_cpu is false, allow_transfers must be true.
[[nodiscard]] LayerPlan simulate_layer(std::uint16_t layer, Stage stage,
                                       std::span<const ExpertDemand> demands,
                                       const hw::CostModel& costs,
                                       const SimOptions& options = {});

/// Makespan the simulation would reach if `extra_cached` were already
/// resident — the counterfactual the impact-driven prefetcher evaluates.
[[nodiscard]] double makespan_with_extra_cached(std::uint16_t layer, Stage stage,
                                                std::span<const ExpertDemand> demands,
                                                std::uint16_t extra_cached,
                                                const hw::CostModel& costs,
                                                const SimOptions& options = {});

}  // namespace hybrimoe::sched
