#pragma once

/// \file simulator.hpp
/// The greedy timeline-filling simulation at the heart of HybriMoE (§IV-B),
/// generalized from the paper's CPU/GPU pair to one CPU plus N accelerator
/// devices (the cost model's hw::Topology).
///
/// The paper reduces per-layer scheduling to an allocation problem
/// (Eq. 2: minimise max(CPU_TIME, GPU_TIME)) constrained by three priority
/// rules, then *simulates* execution to pick the allocation:
///
///  * GPU priority  — cached experts, highest load first, on the device
///                    holding the resident copy;
///  * CPU priority  — uncached experts, lowest load first; when its queue is
///                    empty the CPU steals low-load cached experts;
///  * Transfer      — a link promotes the highest-load uncached expert to
///                    the accelerator where the simulated completion is
///                    earliest, when that beats leaving it on the CPU.
///
/// Each simulation step advances the resource timeline (one clock per
/// device, one per link) with the earliest availability and commits its
/// priority-selected operation. The committed trace *is* the schedule: in
/// our discrete-event world, executing a plan is re-running this simulation,
/// so the returned LayerPlan carries both the allocation and the timing.
/// On a single-accelerator topology every decision and every float reduces
/// to the historical pair formulation — plans are bit-identical.
///
/// The same routine — with features disabled through SimOptions — also
/// implements the baseline scheduling policies (kTransformers fixed mapping,
/// AdapMoE GPU-centric, llama.cpp static layers), so that framework
/// comparisons isolate policy differences only.

#include <span>
#include <vector>

#include "hw/cost_model.hpp"
#include "sched/plan.hpp"

namespace hybrimoe::sched {

/// Feature switches of the greedy simulation.
struct SimOptions {
  /// CPU may compute uncached experts.
  bool allow_cpu = true;
  /// Links may promote uncached experts to an accelerator.
  bool allow_transfers = true;
  /// Idle CPU may steal low-load *cached* experts from accelerator queues.
  bool allow_cpu_steal = true;
  /// Commit a transfer only when its simulated accelerator completion beats
  /// the CPU completion (the paper's simulation-evaluated choice). When
  /// allow_cpu is false this check is vacuous — transfers are the only way
  /// to make progress on uncached experts.
  bool transfer_only_if_beneficial = true;
  /// Symmetric check on the CPU side: the CPU takes its lowest-load uncached
  /// expert only when finishing it there beats streaming it at the tail of
  /// the best link's transfer chain. Keeps the CPU out of high-load prefill
  /// work an accelerator route would finish sooner. Vacuous when transfers
  /// are disabled (the CPU is then the only route).
  bool cpu_only_if_beneficial = true;
  /// First CPU task of the layer pays the cold-start warmup penalty
  /// (paper Fig. 3e).
  bool cpu_cold_start = true;
  /// Every accelerator is occupied until this time by the layer's dense work
  /// (attention + shared experts — see Fig. 5, where the shared expert block
  /// precedes routed experts on the GPU; the dense pipeline is replicated
  /// across devices). The CPU starts at time zero, which is exactly how
  /// hybrid frameworks hide CPU misses under the dense phase.
  double gpu_busy_until = 0.0;
  /// Every link is occupied until this time by transfers still in flight
  /// from previous layers (prefetches issued asynchronously) — unless
  /// link_busy_until provides per-link values. On-demand transfers queue
  /// behind them — so aggressive prefetching *delays* on-demand loads, a
  /// trade-off the beneficial-transfer check sees.
  double pcie_busy_until = 0.0;
  /// Per-link carried occupancy, one entry per accelerator in topology
  /// order. Empty: every link starts at pcie_busy_until. Non-empty: must
  /// match the cost model's accelerator count.
  std::vector<double> link_busy_until{};

  /// Throws std::invalid_argument on inconsistent switches or negative times.
  void validate() const;
};

/// Run the greedy simulation for one layer.
///
/// Preconditions: demands non-empty, loads positive, expert ids unique,
/// cached_on names an accelerator of the cost model's topology;
/// if allow_cpu is false, allow_transfers must be true.
[[nodiscard]] LayerPlan simulate_layer(std::uint16_t layer, Stage stage,
                                       std::span<const ExpertDemand> demands,
                                       const hw::CostModel& costs,
                                       const SimOptions& options = {});

/// Makespan the simulation would reach if `extra_cached` were already
/// resident on the primary accelerator — the counterfactual the
/// impact-driven prefetcher evaluates. (The engine may route the actual
/// upload to a less busy link; the primary-device counterfactual is the
/// prefetcher's documented approximation on multi-device topologies.)
[[nodiscard]] double makespan_with_extra_cached(std::uint16_t layer, Stage stage,
                                                std::span<const ExpertDemand> demands,
                                                std::uint16_t extra_cached,
                                                const hw::CostModel& costs,
                                                const SimOptions& options = {});

}  // namespace hybrimoe::sched
