#include "workload/trace_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace hybrimoe::workload {

namespace {

void write_routing(std::ostream& os, const moe::LayerRouting& routing) {
  os << "routing tokens=" << routing.total_tokens << " experts="
     << routing.loads.size() << "\nloads";
  for (const auto l : routing.loads) os << ' ' << l;
  os << "\nscores" << std::setprecision(9);
  for (const auto s : routing.scores) os << ' ' << s;
  os << '\n';
}

void write_forward(std::ostream& os, const ForwardTrace& forward) {
  os << "forward tokens=" << forward.tokens << " layers=" << forward.num_layers()
     << '\n';
  for (std::size_t l = 0; l < forward.num_layers(); ++l) {
    os << "layer " << l << '\n';
    write_routing(os, forward.layers[l]);
    os << "predictions " << forward.predictions[l].size() << '\n';
    for (const auto& pred : forward.predictions[l]) write_routing(os, pred);
  }
}

[[noreturn]] void malformed(const std::string& what) {
  throw std::invalid_argument("malformed trace: " + what);
}

std::string expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  if (!(is >> token)) malformed("unexpected end of input, wanted '" + expected + "'");
  if (!expected.empty() && token != expected)
    malformed("expected '" + expected + "', got '" + token + "'");
  return token;
}

std::size_t expect_kv(std::istream& is, const std::string& key) {
  std::string token;
  if (!(is >> token)) malformed("unexpected end of input, wanted " + key);
  const auto eq = token.find('=');
  if (eq == std::string::npos || token.substr(0, eq) != key)
    malformed("expected " + key + "=<n>, got '" + token + "'");
  try {
    return std::stoull(token.substr(eq + 1));
  } catch (const std::exception&) {
    malformed("bad number in '" + token + "'");
  }
}

moe::LayerRouting read_routing(std::istream& is) {
  expect_token(is, "routing");
  moe::LayerRouting routing;
  routing.total_tokens = expect_kv(is, "tokens");
  const std::size_t experts = expect_kv(is, "experts");
  expect_token(is, "loads");
  routing.loads.resize(experts);
  for (auto& l : routing.loads)
    if (!(is >> l)) malformed("truncated loads");
  expect_token(is, "scores");
  routing.scores.resize(experts);
  for (auto& s : routing.scores)
    if (!(is >> s)) malformed("truncated scores");
  return routing;
}

ForwardTrace read_forward(std::istream& is) {
  expect_token(is, "forward");
  ForwardTrace forward;
  forward.tokens = expect_kv(is, "tokens");
  const std::size_t layers = expect_kv(is, "layers");
  forward.layers.reserve(layers);
  forward.predictions.resize(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    expect_token(is, "layer");
    std::size_t index = 0;
    if (!(is >> index) || index != l) malformed("layer index mismatch");
    forward.layers.push_back(read_routing(is));
    expect_token(is, "predictions");
    std::size_t count = 0;
    if (!(is >> count)) malformed("missing prediction count");
    for (std::size_t d = 0; d < count; ++d)
      forward.predictions[l].push_back(read_routing(is));
  }
  return forward;
}

void write_header(std::ostream& os, const char* kind) {
  os << "HYBRIMOE-TRACE v" << kTraceFormatVersion << ' ' << kind << '\n';
}

void read_header(std::istream& is, const std::string& kind) {
  expect_token(is, "HYBRIMOE-TRACE");
  const std::string version = expect_token(is, "");
  if (version != "v" + std::to_string(kTraceFormatVersion))
    malformed("unsupported version '" + version + "'");
  expect_token(is, kind);
}

}  // namespace

void write_trace(std::ostream& os, const DecodeTrace& trace) {
  write_header(os, "decode");
  os << "steps " << trace.num_steps() << '\n';
  for (const auto& step : trace.steps) write_forward(os, step);
}

void write_trace(std::ostream& os, const PrefillTrace& trace) {
  write_header(os, "prefill");
  os << "prompt " << trace.prompt_tokens << '\n';
  write_forward(os, trace.forward);
}

DecodeTrace read_decode_trace(std::istream& is) {
  read_header(is, "decode");
  expect_token(is, "steps");
  std::size_t steps = 0;
  if (!(is >> steps)) malformed("missing step count");
  DecodeTrace trace;
  trace.steps.reserve(steps);
  for (std::size_t s = 0; s < steps; ++s) trace.steps.push_back(read_forward(is));
  return trace;
}

PrefillTrace read_prefill_trace(std::istream& is) {
  read_header(is, "prefill");
  expect_token(is, "prompt");
  PrefillTrace trace;
  if (!(is >> trace.prompt_tokens)) malformed("missing prompt length");
  trace.forward = read_forward(is);
  return trace;
}

std::string to_string(const DecodeTrace& trace) {
  std::ostringstream os;
  write_trace(os, trace);
  return os.str();
}

std::string to_string(const PrefillTrace& trace) {
  std::ostringstream os;
  write_trace(os, trace);
  return os.str();
}

DecodeTrace decode_trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_decode_trace(is);
}

PrefillTrace prefill_trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_prefill_trace(is);
}

namespace {

template <typename Trace>
void save_impl(const std::string& path, const Trace& trace) {
  std::ofstream os(path);
  HYBRIMOE_REQUIRE(os.good(), "cannot open '" + path + "' for writing");
  write_trace(os, trace);
  HYBRIMOE_REQUIRE(os.good(), "write to '" + path + "' failed");
}

}  // namespace

void save_trace(const std::string& path, const DecodeTrace& trace) {
  save_impl(path, trace);
}

void save_trace(const std::string& path, const PrefillTrace& trace) {
  save_impl(path, trace);
}

DecodeTrace load_decode_trace(const std::string& path) {
  std::ifstream is(path);
  HYBRIMOE_REQUIRE(is.good(), "cannot open '" + path + "' for reading");
  return read_decode_trace(is);
}

PrefillTrace load_prefill_trace(const std::string& path) {
  std::ifstream is(path);
  HYBRIMOE_REQUIRE(is.good(), "cannot open '" + path + "' for reading");
  return read_prefill_trace(is);
}

}  // namespace hybrimoe::workload
