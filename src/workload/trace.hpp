#pragma once

/// \file trace.hpp
/// Routing traces consumed by the inference engines. A trace is everything
/// an offloading framework observes at runtime: per-layer expert loads and
/// routing scores for each forward pass, plus — for prefetch-capable
/// frameworks — the *predicted* routings of upcoming layers obtained by
/// evaluating their gates on the current hidden state (the paper's Fig. 6
/// mechanism: "reusing the gating information from those layers").

#include <cstddef>
#include <span>
#include <vector>

#include "moe/model_config.hpp"
#include "moe/router.hpp"
#include "util/assert.hpp"

namespace hybrimoe::workload {

/// One forward pass through every MoE layer (a decode step, or the whole
/// prefill batch).
struct ForwardTrace {
  std::size_t tokens = 0;
  /// Actual routing per layer (size = num_layers).
  std::vector<moe::LayerRouting> layers;
  /// predictions[l][d] = routing of layer l+d+1 as predicted from the hidden
  /// state available at layer l. Rows are trimmed near the last layers.
  std::vector<std::vector<moe::LayerRouting>> predictions;

  [[nodiscard]] std::size_t num_layers() const noexcept { return layers.size(); }

  /// Predicted routing for `target` layer as seen from `from` layer, or
  /// nullptr when the trace holds no such prediction.
  [[nodiscard]] const moe::LayerRouting* prediction(std::size_t from,
                                                    std::size_t target) const {
    if (from >= predictions.size() || target <= from) return nullptr;
    const std::size_t d = target - from - 1;
    if (d >= predictions[from].size()) return nullptr;
    return &predictions[from][d];
  }
};

/// A prefill request: one (multi-token) forward pass.
struct PrefillTrace {
  std::size_t prompt_tokens = 0;
  ForwardTrace forward;
};

/// A decode phase: one single-token forward per generated token.
struct DecodeTrace {
  std::vector<ForwardTrace> steps;

  [[nodiscard]] std::size_t num_steps() const noexcept { return steps.size(); }
};

/// Compose one forward pass from several concurrent ones — the serving
/// layer's continuous-batching step (one prefill chunk plus every active
/// decode token runs through the layers together). Per-layer loads add up
/// into the combined expert multiset, scores merge as the token-weighted
/// mean (the batch-mean softmax of the union batch), and predictions merge
/// likewise up to the shallowest common lookahead. All parts must come from
/// the same model (equal layer/expert counts).
[[nodiscard]] ForwardTrace merge_forward_traces(
    std::span<const ForwardTrace* const> parts);

/// Aggregate per-expert activation counts over a decode trace — the raw
/// material of the paper's Fig. 3(a) CDF and the kTransformers-style static
/// frequency pinning.
[[nodiscard]] std::vector<std::vector<double>> activation_frequencies(
    const DecodeTrace& trace, const moe::ModelConfig& model);

}  // namespace hybrimoe::workload
