#pragma once

/// \file trace_io.hpp
/// Record / replay for routing traces. Real deployments capture gate outputs
/// from production serving and replay them offline against candidate
/// scheduling policies; this module provides the same workflow for synthetic
/// traces. The format is line-oriented text — diffable, versioned, and
/// stable across platforms (values are printed with full float precision).

#include <iosfwd>
#include <string>

#include "workload/trace.hpp"

namespace hybrimoe::workload {

/// Current format version; parsers reject anything else.
inline constexpr int kTraceFormatVersion = 1;

void write_trace(std::ostream& os, const DecodeTrace& trace);
void write_trace(std::ostream& os, const PrefillTrace& trace);

/// Parse a decode trace; throws std::invalid_argument on malformed input.
[[nodiscard]] DecodeTrace read_decode_trace(std::istream& is);
/// Parse a prefill trace; throws std::invalid_argument on malformed input.
[[nodiscard]] PrefillTrace read_prefill_trace(std::istream& is);

/// Convenience string round-trips.
[[nodiscard]] std::string to_string(const DecodeTrace& trace);
[[nodiscard]] std::string to_string(const PrefillTrace& trace);
[[nodiscard]] DecodeTrace decode_trace_from_string(const std::string& text);
[[nodiscard]] PrefillTrace prefill_trace_from_string(const std::string& text);

/// File helpers (throw std::invalid_argument on I/O failure).
void save_trace(const std::string& path, const DecodeTrace& trace);
void save_trace(const std::string& path, const PrefillTrace& trace);
[[nodiscard]] DecodeTrace load_decode_trace(const std::string& path);
[[nodiscard]] PrefillTrace load_prefill_trace(const std::string& path);

}  // namespace hybrimoe::workload
