#pragma once

/// \file request_stream.hpp
/// Deterministic request-arrival streams for the serving layer. A stream is
/// the workload-side half of a serving experiment: *when* requests arrive
/// and *how big* they are (prompt length, decode budget). The routing
/// content of each request is materialised separately from the same trace
/// generator the stage experiments use, so every framework serves the
/// identical traffic.
///
/// Three arrival processes cover the regimes the serving bench sweeps:
///  * Poisson — i.i.d. exponential inter-arrival gaps at `arrival_rate`
///    requests per second (open-loop steady traffic);
///  * Burst   — requests arrive in simultaneous groups of `burst_size`,
///    with exponential gaps between groups scaled so the *mean* request
///    rate still equals `arrival_rate` (flash-crowd traffic);
///  * Diurnal — a non-homogeneous Poisson process whose instantaneous rate
///    follows a sinusoid, rate(t) = arrival_rate x (1 + diurnal_amplitude x
///    sin(2*pi*t / diurnal_period)), realised by thinning (candidates at the
///    peak rate, accepted with probability rate(t)/peak) so the mean rate
///    over whole periods stays `arrival_rate` (day/night traffic swings).
///
/// Like TraceGenParams, everything is seeded: the same params produce the
/// same stream, byte for byte, run to run.

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace hybrimoe::workload {

enum class ArrivalProcess : std::uint8_t { Poisson, Burst, Diurnal };

[[nodiscard]] constexpr const char* to_string(ArrivalProcess p) noexcept {
  switch (p) {
    case ArrivalProcess::Poisson: return "poisson";
    case ArrivalProcess::Burst: return "burst";
    case ArrivalProcess::Diurnal: return "diurnal";
  }
  return "?";
}

/// Name -> ArrivalProcess ("poisson" / "burst" / "diurnal"); throws
/// std::invalid_argument with a did-you-mean suggestion on unknown names.
[[nodiscard]] ArrivalProcess arrival_from_name(std::string_view name);

/// Request priority class for tiered serving. Ordered so that a larger
/// enumerator value means a more important request — admission policies may
/// compare tiers directly (`a > b` == "a outranks b").
enum class Priority : std::uint8_t { BestEffort = 0, Standard = 1, Vip = 2 };

/// Number of priority tiers (array-of-tier-policies sizing).
inline constexpr std::size_t kNumPriorities = 3;

/// Tier index for per-tier tables (BestEffort=0, Standard=1, Vip=2).
[[nodiscard]] constexpr std::size_t priority_index(Priority p) noexcept {
  return static_cast<std::size_t>(p);
}

[[nodiscard]] constexpr const char* to_string(Priority p) noexcept {
  switch (p) {
    case Priority::BestEffort: return "best-effort";
    case Priority::Standard: return "standard";
    case Priority::Vip: return "vip";
  }
  return "?";
}

/// Name -> Priority ("vip" / "standard" / "best-effort"); throws
/// std::invalid_argument with a did-you-mean suggestion on unknown names.
[[nodiscard]] Priority priority_from_name(std::string_view name);

/// One request as the admission queue sees it: identity, arrival instant,
/// size and priority tier. Prompt/decode lengths are in tokens;
/// `decode_tokens` is the decode budget — the number of single-token decode
/// steps after the prefill.
struct RequestSpec {
  std::uint64_t id = 0;
  double arrival_time = 0.0;
  std::size_t prompt_tokens = 0;
  std::size_t decode_tokens = 0;
  Priority priority = Priority::Standard;

  bool operator==(const RequestSpec&) const = default;
};

struct RequestStreamParams {
  std::size_t num_requests = 16;
  double arrival_rate = 2.0;  ///< mean requests per second
  ArrivalProcess process = ArrivalProcess::Poisson;
  std::size_t burst_size = 4;  ///< requests per group (Burst only)
  /// Sinusoid period in seconds (Diurnal only) — one simulated "day".
  double diurnal_period = 60.0;
  /// Relative swing of the diurnal rate in [0, 1): rate(t) ranges over
  /// arrival_rate x [1 - amplitude, 1 + amplitude]. Strictly below 1 so the
  /// rate never touches zero and the thinning always terminates.
  double diurnal_amplitude = 0.5;
  /// Mixed request sizes: lengths are drawn uniformly from these inclusive
  /// ranges, so a stream interleaves short interactive requests with long
  /// prompts — the batch compositions that shift per-expert loads between
  /// the decode and prefill regimes.
  std::size_t prompt_tokens_min = 16;
  std::size_t prompt_tokens_max = 96;
  std::size_t decode_tokens_min = 8;
  std::size_t decode_tokens_max = 24;
  /// Tier mix: each request independently draws VIP with probability
  /// `vip_fraction`, best-effort with `best_effort_fraction`, standard
  /// otherwise. Both zero (the default) keeps the stream single-tier AND
  /// byte-identical to pre-tier streams: the priority draw is skipped
  /// entirely, so the RNG sequence feeding arrival gaps and lengths is
  /// unchanged.
  double vip_fraction = 0.0;
  double best_effort_fraction = 0.0;
  std::uint64_t seed = 42;

  void validate() const;
};

/// Generate the stream: `num_requests` specs with non-decreasing arrival
/// times and ids 0..n-1 in arrival order. Deterministic in `params`.
[[nodiscard]] std::vector<RequestSpec> generate_request_stream(
    const RequestStreamParams& params);

}  // namespace hybrimoe::workload
