#pragma once

/// \file request_stream.hpp
/// Deterministic request-arrival streams for the serving layer. A stream is
/// the workload-side half of a serving experiment: *when* requests arrive
/// and *how big* they are (prompt length, decode budget). The routing
/// content of each request is materialised separately from the same trace
/// generator the stage experiments use, so every framework serves the
/// identical traffic.
///
/// Two arrival processes cover the regimes the serving bench sweeps:
///  * Poisson — i.i.d. exponential inter-arrival gaps at `arrival_rate`
///    requests per second (open-loop steady traffic);
///  * Burst   — requests arrive in simultaneous groups of `burst_size`,
///    with exponential gaps between groups scaled so the *mean* request
///    rate still equals `arrival_rate` (flash-crowd traffic).
///
/// Like TraceGenParams, everything is seeded: the same params produce the
/// same stream, byte for byte, run to run.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace hybrimoe::workload {

enum class ArrivalProcess : std::uint8_t { Poisson, Burst };

[[nodiscard]] constexpr const char* to_string(ArrivalProcess p) noexcept {
  return p == ArrivalProcess::Poisson ? "poisson" : "burst";
}

/// One request as the admission queue sees it: identity, arrival instant and
/// size. Prompt/decode lengths are in tokens; `decode_tokens` is the decode
/// budget — the number of single-token decode steps after the prefill.
struct RequestSpec {
  std::uint64_t id = 0;
  double arrival_time = 0.0;
  std::size_t prompt_tokens = 0;
  std::size_t decode_tokens = 0;
};

struct RequestStreamParams {
  std::size_t num_requests = 16;
  double arrival_rate = 2.0;  ///< mean requests per second
  ArrivalProcess process = ArrivalProcess::Poisson;
  std::size_t burst_size = 4;  ///< requests per group (Burst only)
  /// Mixed request sizes: lengths are drawn uniformly from these inclusive
  /// ranges, so a stream interleaves short interactive requests with long
  /// prompts — the batch compositions that shift per-expert loads between
  /// the decode and prefill regimes.
  std::size_t prompt_tokens_min = 16;
  std::size_t prompt_tokens_max = 96;
  std::size_t decode_tokens_min = 8;
  std::size_t decode_tokens_max = 24;
  std::uint64_t seed = 42;

  void validate() const;
};

/// Generate the stream: `num_requests` specs with non-decreasing arrival
/// times and ids 0..n-1 in arrival order. Deterministic in `params`.
[[nodiscard]] std::vector<RequestSpec> generate_request_stream(
    const RequestStreamParams& params);

}  // namespace hybrimoe::workload
