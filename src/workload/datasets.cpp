#include "workload/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace hybrimoe::workload {

namespace {

struct LengthModel {
  double log_mean;   ///< mean of ln(length)
  double log_sigma;  ///< stddev of ln(length)
  std::size_t min_len;
  std::size_t max_len;
};

/// Log-normal parameters fitted to the public prompt-length histograms.
constexpr LengthModel model_for(Dataset d) noexcept {
  switch (d) {
    case Dataset::MtBench:  // two-turn judge prompts, mostly 30-200 tokens
      return {4.36, 0.55, 16, 1536};   // median ~78
    case Dataset::VicunaBench:  // single-turn questions, short
      return {4.04, 0.45, 12, 768};    // median ~57
    case Dataset::ChatGptPrompts:  // persona instructions, wide spread
      return {4.78, 0.70, 16, 2048};   // median ~119
  }
  return {4.5, 0.5, 16, 1024};
}

}  // namespace

std::size_t sample_prompt_length(Dataset dataset, util::Rng& rng) {
  const LengthModel m = model_for(dataset);
  const double ln_len = rng.gaussian(m.log_mean, m.log_sigma);
  const auto len = static_cast<std::size_t>(std::llround(std::exp(ln_len)));
  return std::clamp(len, m.min_len, m.max_len);
}

std::size_t sample_bucketed_length(Dataset dataset, std::size_t bucket, util::Rng& rng) {
  HYBRIMOE_REQUIRE(bucket >= 8, "bucket too small");
  // Keep the dataset flavour via a mild per-dataset skew inside the +/-10%
  // window (MT-Bench prompts cluster low in a bucket, ChatGPT prompts high).
  double skew = 0.0;
  switch (dataset) {
    case Dataset::MtBench: skew = -0.03; break;
    case Dataset::VicunaBench: skew = 0.0; break;
    case Dataset::ChatGptPrompts: skew = 0.03; break;
  }
  const double factor = 1.0 + skew + rng.uniform(-0.10, 0.10);
  const auto len = static_cast<std::size_t>(
      std::llround(static_cast<double>(bucket) * factor));
  return std::max<std::size_t>(8, len);
}

}  // namespace hybrimoe::workload
