#pragma once

/// \file generator.hpp
/// Latent-state synthetic trace generator — the substitute for routing real
/// prompts through real model weights.
///
/// Model: every token carries a unit-norm latent vector h. Across decode
/// steps (and prompt positions) h follows an AR(1) process with coefficient
/// `token_rho` — semantic continuity makes consecutive tokens route
/// similarly, which is what gives caching its temporal signal (paper
/// Fig. 3b). Within a forward pass, h drifts by `layer_drift` noise between
/// layers — the residual stream changes slowly, which is what makes
/// evaluating layer l+d's gate on layer l's hidden state a useful prediction
/// (paper Fig. 6) without being perfect.
///
/// Each layer owns a fixed random gate (moe::GateSet). Sharpness of the
/// routing distribution is controlled by `gate_temperature`; lower values
/// concentrate activations (MoE models sit far flatter than neuron-sparse
/// models — compare Fig. 3a).

#include <cstdint>

#include "moe/gating.hpp"
#include "workload/trace.hpp"

namespace hybrimoe::workload {

struct TraceGenParams {
  std::size_t d_latent = 32;
  double token_rho = 0.975;        ///< AR(1) coefficient across decode steps
  double prompt_rho = 0.82;       ///< AR(1) coefficient across prompt positions
  double layer_drift = 0.04;      ///< hidden-state noise per layer crossing
  double gate_temperature = 0.22; ///< softmax temperature of the gates
  /// Stddev of a fixed per-(layer, expert) logit bias — stable expert
  /// popularity. Kept mild: the paper's Fig. 3(a) shows MoE activations are
  /// near-uniform (nothing like neuron-level hot spots), yet a little skew
  /// is what frequency-based placements (kTransformers) exploit.
  double expert_bias_std = 0.15;
  std::size_t lookahead = 3;      ///< prediction depth stored in traces
  std::uint64_t seed = 42;
  /// Seed of the gate matrices ("which model instance"); 0 derives it from
  /// `seed`. Keep it fixed while varying `seed` to replay different token
  /// streams through the same model (e.g. warmup vs evaluation traces).
  std::uint64_t gate_seed = 0;

  [[nodiscard]] std::uint64_t effective_gate_seed() const noexcept {
    return gate_seed != 0 ? gate_seed : (seed ^ 0xC0FFEEULL);
  }

  void validate() const;
};

/// Deterministic generator for one (model, params) pair.
class TraceGenerator {
 public:
  TraceGenerator(const moe::ModelConfig& model, TraceGenParams params);

  [[nodiscard]] const moe::ModelConfig& model() const noexcept { return model_; }
  [[nodiscard]] const TraceGenParams& params() const noexcept { return params_; }
  [[nodiscard]] const moe::GateSet& gates() const noexcept { return gates_; }

  /// One prefill forward of `tokens` prompt positions.
  [[nodiscard]] PrefillTrace generate_prefill(std::size_t tokens);

  /// `steps` single-token decode forwards continuing the latent process.
  [[nodiscard]] DecodeTrace generate_decode(std::size_t steps);

  /// Batched decode: `batch` independent sessions advance one token per
  /// step (continuous-batching serving). Each session carries its own AR(1)
  /// latent, so expert loads per layer range over [top_k, batch*top_k] —
  /// the workload regime the paper's prefill/decode dichotomy brackets.
  [[nodiscard]] DecodeTrace generate_decode_batch(std::size_t steps,
                                                  std::size_t batch);

  /// Reset the latent process (fresh conversation), keeping the gates fixed.
  void reset(std::uint64_t seed);

 private:
  /// Evolve the persistent token latent by one AR(1) step.
  void advance_token_latent(double rho);
  /// Run one token's latent through all layers; returns per-layer hiddens.
  [[nodiscard]] std::vector<std::vector<float>> roll_layers(
      const std::vector<float>& h0);
  /// Build a ForwardTrace from per-token, per-layer hidden states.
  [[nodiscard]] ForwardTrace trace_from_hiddens(
      const std::vector<std::vector<std::vector<float>>>& hiddens);

  moe::ModelConfig model_;
  TraceGenParams params_;
  moe::GateSet gates_;
  moe::Router router_;
  util::Rng rng_;
  std::vector<float> token_latent_;  ///< persistent AR(1) state
  /// biases_[layer][expert]: fixed popularity offsets added to gate logits.
  std::vector<std::vector<float>> biases_;
};

}  // namespace hybrimoe::workload
