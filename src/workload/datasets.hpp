#pragma once

/// \file datasets.hpp
/// Prompt-length models for the three datasets the paper samples (§VI-A.5):
/// MT-Bench, Vicuna-Bench and ChatGPT-Prompts. Only prompt lengths matter to
/// an offloading benchmark (content is abstracted by the trace generator), so
/// each dataset is a clipped log-normal fit of its public length histogram.

#include <array>
#include <cstddef>
#include <string>

#include "util/rng.hpp"

namespace hybrimoe::workload {

enum class Dataset : std::uint8_t { MtBench, VicunaBench, ChatGptPrompts };

[[nodiscard]] constexpr const char* to_string(Dataset d) noexcept {
  switch (d) {
    case Dataset::MtBench: return "MT-Bench";
    case Dataset::VicunaBench: return "Vicuna-Bench";
    case Dataset::ChatGptPrompts: return "ChatGPT-Prompts";
  }
  return "?";
}

/// All datasets in paper order.
inline constexpr std::array<Dataset, 3> kAllDatasets{
    Dataset::MtBench, Dataset::VicunaBench, Dataset::ChatGptPrompts};

/// The four prefill bucket lengths of the paper's Fig. 7.
inline constexpr std::array<std::size_t, 4> kPaperPrefillLengths{32, 128, 512, 1024};

/// Draw a prompt length (tokens) from the dataset's length distribution.
[[nodiscard]] std::size_t sample_prompt_length(Dataset dataset, util::Rng& rng);

/// Draw a prompt length near a target bucket: the paper samples "traces of
/// different lengths ... around 32, 128, 512 and 1024 tokens". Returns a
/// length within ±10% of the bucket, dataset-flavoured.
[[nodiscard]] std::size_t sample_bucketed_length(Dataset dataset, std::size_t bucket,
                                                 util::Rng& rng);

}  // namespace hybrimoe::workload
