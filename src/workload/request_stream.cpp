#include "workload/request_stream.hpp"

#include <cmath>
#include <numbers>

#include "util/assert.hpp"
#include "util/registry.hpp"

namespace hybrimoe::workload {

ArrivalProcess arrival_from_name(std::string_view name) {
  if (name == "poisson") return ArrivalProcess::Poisson;
  if (name == "burst") return ArrivalProcess::Burst;
  if (name == "diurnal") return ArrivalProcess::Diurnal;
  static const std::vector<std::string> kNames{"burst", "diurnal", "poisson"};
  throw std::invalid_argument(
      util::unknown_name_message("arrival process", name, kNames));
}

Priority priority_from_name(std::string_view name) {
  if (name == "best-effort") return Priority::BestEffort;
  if (name == "standard") return Priority::Standard;
  if (name == "vip") return Priority::Vip;
  static const std::vector<std::string> kNames{"best-effort", "standard", "vip"};
  throw std::invalid_argument(util::unknown_name_message("priority", name, kNames));
}

void RequestStreamParams::validate() const {
  HYBRIMOE_REQUIRE(num_requests > 0, "stream needs at least one request");
  HYBRIMOE_REQUIRE(arrival_rate > 0.0, "arrival_rate must be positive");
  HYBRIMOE_REQUIRE(burst_size > 0, "burst_size must be positive");
  HYBRIMOE_REQUIRE(diurnal_period > 0.0, "diurnal_period must be positive");
  HYBRIMOE_REQUIRE(diurnal_amplitude >= 0.0 && diurnal_amplitude < 1.0,
                   "diurnal_amplitude must be in [0, 1) — an amplitude of 1 "
                   "lets the instantaneous rate touch zero");
  HYBRIMOE_REQUIRE(prompt_tokens_min >= 1, "requests need at least one prompt token");
  HYBRIMOE_REQUIRE(prompt_tokens_min <= prompt_tokens_max,
                   "prompt token range is inverted");
  HYBRIMOE_REQUIRE(decode_tokens_min <= decode_tokens_max,
                   "decode token range is inverted");
  HYBRIMOE_REQUIRE(vip_fraction >= 0.0 && best_effort_fraction >= 0.0,
                   "tier fractions must be non-negative");
  HYBRIMOE_REQUIRE(vip_fraction + best_effort_fraction <= 1.0,
                   "tier fractions must sum to at most 1");
}

namespace {

/// Exponential inter-arrival gap with the given rate (events per second).
double exponential_gap(util::Rng& rng, double rate) {
  // uniform() is in [0, 1), so log1p(-u) is finite.
  return -std::log1p(-rng.uniform()) / rate;
}

std::size_t uniform_length(util::Rng& rng, std::size_t lo, std::size_t hi) {
  return static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
}

/// Next arrival of the sinusoid-modulated Poisson process by thinning
/// (Lewis-Shedler): candidate gaps at the peak rate, each accepted with
/// probability rate(t)/peak. The amplitude is < 1, so rate(t) > 0 and a
/// candidate is eventually accepted.
double diurnal_gap(util::Rng& rng, double clock, const RequestStreamParams& p) {
  const double peak = p.arrival_rate * (1.0 + p.diurnal_amplitude);
  double t = clock;
  for (;;) {
    t += exponential_gap(rng, peak);
    const double rate =
        p.arrival_rate *
        (1.0 + p.diurnal_amplitude *
                   std::sin(2.0 * std::numbers::pi_v<double> * t / p.diurnal_period));
    if (rng.uniform() * peak < rate) return t - clock;
  }
}

}  // namespace

std::vector<RequestSpec> generate_request_stream(const RequestStreamParams& params) {
  params.validate();
  util::Rng rng(params.seed);
  std::vector<RequestSpec> stream;
  stream.reserve(params.num_requests);
  double clock = 0.0;
  for (std::size_t i = 0; i < params.num_requests; ++i) {
    switch (params.process) {
      case ArrivalProcess::Poisson:
        clock += exponential_gap(rng, params.arrival_rate);
        break;
      case ArrivalProcess::Burst:
        // One gap per group, scaled so the mean request rate is unchanged:
        // groups of `burst_size` arrive at rate arrival_rate / burst_size.
        if (i % params.burst_size == 0)
          clock += exponential_gap(
              rng, params.arrival_rate / static_cast<double>(params.burst_size));
        break;
      case ArrivalProcess::Diurnal:
        clock += diurnal_gap(rng, clock, params);
        break;
    }
    RequestSpec spec;
    spec.id = i;
    spec.arrival_time = clock;
    spec.prompt_tokens =
        uniform_length(rng, params.prompt_tokens_min, params.prompt_tokens_max);
    spec.decode_tokens =
        uniform_length(rng, params.decode_tokens_min, params.decode_tokens_max);
    // Single-tier streams skip the priority draw entirely, keeping their RNG
    // sequence (and therefore the stream) byte-identical to pre-tier output.
    if (params.vip_fraction + params.best_effort_fraction > 0.0) {
      const double u = rng.uniform();
      if (u < params.vip_fraction) {
        spec.priority = Priority::Vip;
      } else if (u < params.vip_fraction + params.best_effort_fraction) {
        spec.priority = Priority::BestEffort;
      }
    }
    stream.push_back(spec);
  }
  return stream;
}

}  // namespace hybrimoe::workload
