#pragma once

/// \file sparsity.hpp
/// Neuron-level activation-frequency baseline for the paper's Fig. 3(a):
/// ReLU-family dense models (the OPT curve) concentrate activations on a few
/// hot neurons — the property PowerInfer exploits — whereas MoE expert
/// activations are far flatter. We model the neuron frequencies with a
/// Zipf-Mandelbrot law, the standard empirical fit for hot-neuron skew.

#include <cstddef>
#include <vector>

namespace hybrimoe::workload {

/// Frequencies f_i ∝ 1/(i + q)^s for i = 1..n, normalised to sum to 1.
/// s ≈ 1.0-1.5 reproduces the "top 10% of neurons take ~80-90% of
/// activations" shape reported for OPT-style models.
[[nodiscard]] std::vector<double> zipf_frequencies(std::size_t n, double s = 1.15,
                                                   double q = 2.0);

/// Share of total mass captured by the top `fraction` of items (items need
/// not be sorted). fraction in [0,1].
[[nodiscard]] double top_share(const std::vector<double>& frequencies, double fraction);

}  // namespace hybrimoe::workload
