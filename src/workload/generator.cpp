#include "workload/generator.hpp"

#include <cmath>

#include "kernels/ops.hpp"

namespace hybrimoe::workload {

std::vector<std::vector<double>> activation_frequencies(const DecodeTrace& trace,
                                                        const moe::ModelConfig& model) {
  std::vector<std::vector<double>> freq(model.num_layers,
                                        std::vector<double>(model.num_routed_experts, 0.0));
  for (const auto& step : trace.steps) {
    HYBRIMOE_REQUIRE(step.layers.size() == model.num_layers,
                     "trace/model layer count mismatch");
    for (std::size_t l = 0; l < step.layers.size(); ++l) {
      const auto& routing = step.layers[l];
      for (std::size_t e = 0; e < routing.loads.size(); ++e)
        if (routing.loads[e] > 0) freq[l][e] += 1.0;
    }
  }
  return freq;
}

namespace {

/// Token-weighted union of concurrent routings of the same layer.
moe::LayerRouting merge_layer_routing(std::span<const moe::LayerRouting* const> rows) {
  const std::size_t experts = rows[0]->loads.size();
  moe::LayerRouting merged;
  merged.loads.assign(experts, 0);
  std::vector<double> score_acc(experts, 0.0);
  std::size_t tokens = 0;
  for (const moe::LayerRouting* row : rows) {
    HYBRIMOE_REQUIRE(row->loads.size() == experts && row->scores.size() == experts,
                     "merging traces of different models");
    for (std::size_t e = 0; e < experts; ++e) {
      merged.loads[e] += row->loads[e];
      score_acc[e] +=
          static_cast<double>(row->scores[e]) * static_cast<double>(row->total_tokens);
    }
    tokens += row->total_tokens;
  }
  HYBRIMOE_ASSERT(tokens > 0, "merged layer routing has no tokens");
  merged.total_tokens = tokens;
  merged.scores.resize(experts);
  for (std::size_t e = 0; e < experts; ++e)
    merged.scores[e] = static_cast<float>(score_acc[e] / static_cast<double>(tokens));
  return merged;
}

}  // namespace

ForwardTrace merge_forward_traces(std::span<const ForwardTrace* const> parts) {
  HYBRIMOE_REQUIRE(!parts.empty(), "nothing to merge");
  if (parts.size() == 1) return *parts[0];
  const std::size_t layers = parts[0]->num_layers();
  ForwardTrace merged;
  merged.layers.reserve(layers);
  merged.predictions.resize(layers);
  for (const ForwardTrace* part : parts) {
    HYBRIMOE_REQUIRE(part->num_layers() == layers,
                     "merging traces of different models");
    merged.tokens += part->tokens;
  }
  std::vector<const moe::LayerRouting*> rows(parts.size());
  for (std::size_t l = 0; l < layers; ++l) {
    for (std::size_t p = 0; p < parts.size(); ++p) rows[p] = &parts[p]->layers[l];
    merged.layers.push_back(merge_layer_routing(rows));
    // Predictions merge up to the shallowest lookahead any part carries.
    // Rows may be absent entirely (predictions shorter than layers is a
    // valid trace per ForwardTrace::prediction's own guard).
    auto lookahead = [l](const ForwardTrace& t) {
      return l < t.predictions.size() ? t.predictions[l].size() : std::size_t{0};
    };
    std::size_t depth = lookahead(*parts[0]);
    for (const ForwardTrace* part : parts) depth = std::min(depth, lookahead(*part));
    merged.predictions[l].reserve(depth);
    for (std::size_t d = 0; d < depth; ++d) {
      for (std::size_t p = 0; p < parts.size(); ++p)
        rows[p] = &parts[p]->predictions[l][d];
      merged.predictions[l].push_back(merge_layer_routing(rows));
    }
  }
  return merged;
}

void TraceGenParams::validate() const {
  HYBRIMOE_REQUIRE(d_latent >= 4, "d_latent too small for meaningful gates");
  HYBRIMOE_REQUIRE(token_rho >= 0.0 && token_rho < 1.0, "token_rho must be in [0,1)");
  HYBRIMOE_REQUIRE(prompt_rho >= 0.0 && prompt_rho < 1.0, "prompt_rho must be in [0,1)");
  HYBRIMOE_REQUIRE(layer_drift >= 0.0, "layer_drift must be non-negative");
  HYBRIMOE_REQUIRE(gate_temperature > 0.0, "gate_temperature must be positive");
  HYBRIMOE_REQUIRE(expert_bias_std >= 0.0, "expert_bias_std must be non-negative");
}

namespace {

void normalize(std::vector<float>& v) {
  const double norm = hybrimoe::kernels::l2_norm(v);
  if (norm <= 0.0) return;
  const auto inv = static_cast<float>(1.0 / norm);
  for (float& x : v) x *= inv;
}

}  // namespace

TraceGenerator::TraceGenerator(const moe::ModelConfig& model, TraceGenParams params)
    : model_(model),
      params_(params),
      gates_(model, params.d_latent, params.effective_gate_seed()),
      router_(model.num_routed_experts, model.top_k),
      rng_(params.seed) {
  params_.validate();
  model_.validate();
  // Popularity biases belong to the model instance, not the token stream:
  // derive them from the gate seed so reset() keeps them fixed.
  util::Rng bias_rng(params_.effective_gate_seed() ^ 0xB1A5ULL);
  biases_.resize(model_.num_layers);
  for (auto& layer_bias : biases_) {
    layer_bias.resize(model_.num_routed_experts);
    for (float& b : layer_bias)
      b = static_cast<float>(bias_rng.gaussian(0.0, params_.expert_bias_std));
  }
  token_latent_.resize(params_.d_latent);
  for (float& x : token_latent_) x = static_cast<float>(rng_.gaussian());
  normalize(token_latent_);
}

void TraceGenerator::reset(std::uint64_t seed) {
  rng_.reseed(seed);
  for (float& x : token_latent_) x = static_cast<float>(rng_.gaussian());
  normalize(token_latent_);
}

void TraceGenerator::advance_token_latent(double rho) {
  const double innovation = std::sqrt(std::max(0.0, 1.0 - rho * rho));
  for (float& x : token_latent_)
    x = static_cast<float>(rho * x + innovation * rng_.gaussian());
  normalize(token_latent_);
}

std::vector<std::vector<float>> TraceGenerator::roll_layers(const std::vector<float>& h0) {
  std::vector<std::vector<float>> hiddens;
  hiddens.reserve(model_.num_layers);
  std::vector<float> h = h0;
  for (std::size_t l = 0; l < model_.num_layers; ++l) {
    hiddens.push_back(h);
    for (float& x : h) x += static_cast<float>(params_.layer_drift * rng_.gaussian());
    normalize(h);
  }
  return hiddens;
}

ForwardTrace TraceGenerator::trace_from_hiddens(
    const std::vector<std::vector<std::vector<float>>>& hiddens) {
  const std::size_t tokens = hiddens.size();
  HYBRIMOE_ASSERT(tokens > 0, "trace_from_hiddens needs at least one token");
  const std::size_t layers = model_.num_layers;
  const std::size_t experts = model_.num_routed_experts;

  ForwardTrace trace;
  trace.tokens = tokens;
  trace.layers.reserve(layers);
  trace.predictions.resize(layers);

  // Gather per-layer logits of every token, then aggregate via the router.
  std::vector<float> logits_buffer(tokens * experts);
  auto batch_route = [&](std::size_t gate_layer, std::size_t hidden_layer) {
    const auto& bias = biases_[gate_layer];
    for (std::size_t t = 0; t < tokens; ++t) {
      auto logits = gates_.logits(gate_layer, hiddens[t][hidden_layer],
                                  params_.gate_temperature);
      for (std::size_t e = 0; e < experts; ++e) logits[e] += bias[e];
      std::copy(logits.begin(), logits.end(),
                logits_buffer.begin() + static_cast<std::ptrdiff_t>(t * experts));
    }
    return router_.route_batch(logits_buffer, tokens);
  };

  for (std::size_t l = 0; l < layers; ++l) {
    trace.layers.push_back(batch_route(l, l));
    const std::size_t depth = std::min(params_.lookahead, layers - 1 - l);
    trace.predictions[l].reserve(depth);
    for (std::size_t d = 1; d <= depth; ++d) {
      // Layer l+d's gate evaluated on the hidden state available at layer l.
      trace.predictions[l].push_back(batch_route(l + d, l));
    }
  }
  return trace;
}

PrefillTrace TraceGenerator::generate_prefill(std::size_t tokens) {
  HYBRIMOE_REQUIRE(tokens > 0, "prefill needs at least one token");
  std::vector<std::vector<std::vector<float>>> hiddens;
  hiddens.reserve(tokens);
  for (std::size_t t = 0; t < tokens; ++t) {
    advance_token_latent(params_.prompt_rho);
    hiddens.push_back(roll_layers(token_latent_));
  }
  PrefillTrace trace;
  trace.prompt_tokens = tokens;
  trace.forward = trace_from_hiddens(hiddens);
  return trace;
}

DecodeTrace TraceGenerator::generate_decode(std::size_t steps) {
  HYBRIMOE_REQUIRE(steps > 0, "decode needs at least one step");
  DecodeTrace trace;
  trace.steps.reserve(steps);
  for (std::size_t s = 0; s < steps; ++s) {
    advance_token_latent(params_.token_rho);
    std::vector<std::vector<std::vector<float>>> hiddens;
    hiddens.push_back(roll_layers(token_latent_));
    trace.steps.push_back(trace_from_hiddens(hiddens));
  }
  return trace;
}

DecodeTrace TraceGenerator::generate_decode_batch(std::size_t steps, std::size_t batch) {
  HYBRIMOE_REQUIRE(steps > 0, "decode needs at least one step");
  HYBRIMOE_REQUIRE(batch > 0, "batch must be positive");
  // Independent per-session latents seeded from this generator's stream.
  std::vector<std::vector<float>> latents(batch,
                                          std::vector<float>(params_.d_latent));
  for (auto& h : latents) {
    for (float& x : h) x = static_cast<float>(rng_.gaussian());
    normalize(h);
  }
  const double rho = params_.token_rho;
  const double innovation = std::sqrt(std::max(0.0, 1.0 - rho * rho));

  DecodeTrace trace;
  trace.steps.reserve(steps);
  for (std::size_t s = 0; s < steps; ++s) {
    std::vector<std::vector<std::vector<float>>> hiddens;
    hiddens.reserve(batch);
    for (auto& h : latents) {
      for (float& x : h)
        x = static_cast<float>(rho * x + innovation * rng_.gaussian());
      normalize(h);
      hiddens.push_back(roll_layers(h));
    }
    trace.steps.push_back(trace_from_hiddens(hiddens));
  }
  return trace;
}

}  // namespace hybrimoe::workload
