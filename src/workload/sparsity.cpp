#include "workload/sparsity.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "util/assert.hpp"

namespace hybrimoe::workload {

std::vector<double> zipf_frequencies(std::size_t n, double s, double q) {
  HYBRIMOE_REQUIRE(n > 0, "zipf_frequencies requires n > 0");
  HYBRIMOE_REQUIRE(s > 0.0, "zipf exponent must be positive");
  HYBRIMOE_REQUIRE(q >= 0.0, "zipf offset must be non-negative");
  std::vector<double> freq(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    freq[i] = 1.0 / std::pow(static_cast<double>(i + 1) + q, s);
    total += freq[i];
  }
  for (double& f : freq) f /= total;
  return freq;
}

double top_share(const std::vector<double>& frequencies, double fraction) {
  HYBRIMOE_REQUIRE(!frequencies.empty(), "top_share of empty vector");
  HYBRIMOE_REQUIRE(fraction >= 0.0 && fraction <= 1.0, "fraction must be in [0,1]");
  std::vector<double> sorted = frequencies;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const auto take = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(sorted.size())));
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total <= 0.0) return 0.0;
  return std::accumulate(sorted.begin(),
                         sorted.begin() + static_cast<std::ptrdiff_t>(take), 0.0) /
         total;
}

}  // namespace hybrimoe::workload
