#pragma once

/// \file gating.hpp
/// Per-layer gate networks. Each layer owns a fixed random projection from a
/// latent hidden-state space to expert logits; because LLM residual streams
/// drift slowly across layers, evaluating layer l's gate on an *earlier*
/// hidden state approximates layer l's eventual routing — exactly the signal
/// the paper's impact-driven prefetcher exploits (§IV-C, Fig. 6).

#include <cstddef>
#include <span>
#include <vector>

#include "kernels/tensor.hpp"
#include "moe/model_config.hpp"

namespace hybrimoe::moe {

/// The gate matrices of every layer of one model instance.
class GateSet {
 public:
  /// Deterministically initialised from `seed`; `d_latent` is the dimension of
  /// the synthetic hidden-state space (small on purpose — gate statistics, not
  /// model quality, are what matters here).
  GateSet(const ModelConfig& config, std::size_t d_latent, std::uint64_t seed);

  [[nodiscard]] std::size_t d_latent() const noexcept { return d_latent_; }
  [[nodiscard]] std::size_t num_layers() const noexcept { return gates_.size(); }
  [[nodiscard]] std::size_t num_experts() const noexcept { return num_experts_; }

  /// Expert logits of `layer`'s gate evaluated on hidden state `h`.
  /// `temperature` sharpens (<1) or flattens (>1) the distribution.
  [[nodiscard]] std::vector<float> logits(std::size_t layer, std::span<const float> h,
                                          double temperature = 1.0) const;

 private:
  std::size_t d_latent_;
  std::size_t num_experts_;
  std::vector<kernels::Tensor> gates_;  ///< one [num_experts x d_latent] per layer
};

}  // namespace hybrimoe::moe
