#include "moe/router.hpp"

#include <algorithm>

#include "kernels/ops.hpp"

namespace hybrimoe::moe {

std::vector<std::uint32_t> LayerRouting::activated() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t e = 0; e < loads.size(); ++e)
    if (loads[e] > 0) out.push_back(e);
  return out;
}

std::size_t LayerRouting::activated_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(loads.begin(), loads.end(), [](std::uint32_t l) { return l > 0; }));
}

Router::Router(std::size_t num_experts, std::size_t top_k)
    : num_experts_(num_experts), top_k_(top_k) {
  HYBRIMOE_REQUIRE(num_experts > 0, "router needs at least one expert");
  HYBRIMOE_REQUIRE(top_k > 0 && top_k <= num_experts, "top_k out of range");
}

TokenRouting Router::route_token(std::span<const float> logits) const {
  HYBRIMOE_REQUIRE(logits.size() == num_experts_, "router logits size mismatch");
  TokenRouting r;
  r.experts = kernels::topk_indices(logits, top_k_);
  r.weights = kernels::softmax_over(logits, r.experts);
  return r;
}

std::vector<float> Router::full_scores(std::span<const float> logits) const {
  HYBRIMOE_REQUIRE(logits.size() == num_experts_, "router logits size mismatch");
  std::vector<float> scores(logits.begin(), logits.end());
  kernels::softmax_inplace(scores);
  return scores;
}

LayerRouting Router::route_batch(std::span<const float> logits, std::size_t tokens) const {
  HYBRIMOE_REQUIRE(tokens > 0, "route_batch requires at least one token");
  HYBRIMOE_REQUIRE(logits.size() == tokens * num_experts_,
                   "route_batch logits size mismatch");
  LayerRouting out;
  out.loads.assign(num_experts_, 0);
  out.scores.assign(num_experts_, 0.0f);
  out.total_tokens = tokens;
  for (std::size_t t = 0; t < tokens; ++t) {
    const auto row = logits.subspan(t * num_experts_, num_experts_);
    const auto routing = route_token(row);
    for (const auto e : routing.experts) ++out.loads[e];
    const auto scores = full_scores(row);
    for (std::size_t e = 0; e < num_experts_; ++e) out.scores[e] += scores[e];
  }
  const auto inv = 1.0f / static_cast<float>(tokens);
  for (float& s : out.scores) s *= inv;
  return out;
}

}  // namespace hybrimoe::moe
