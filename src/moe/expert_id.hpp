#pragma once

/// \file expert_id.hpp
/// Strongly-typed (layer, expert) key used by the cache, the schedulers and
/// the prefetcher. Kept trivially copyable and hashable so it can index flat
/// maps on hot paths.

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace hybrimoe::moe {

struct ExpertId {
  std::uint16_t layer = 0;
  std::uint16_t expert = 0;

  friend constexpr auto operator<=>(const ExpertId&, const ExpertId&) = default;

  /// Dense encoding, usable as an array index when bounds are known.
  [[nodiscard]] constexpr std::uint32_t encode() const noexcept {
    return (static_cast<std::uint32_t>(layer) << 16) | expert;
  }
  [[nodiscard]] static constexpr ExpertId decode(std::uint32_t code) noexcept {
    return ExpertId{static_cast<std::uint16_t>(code >> 16),
                    static_cast<std::uint16_t>(code & 0xFFFF)};
  }

  [[nodiscard]] std::string to_string() const {
    return "L" + std::to_string(layer) + "/E" + std::to_string(expert);
  }
};

}  // namespace hybrimoe::moe

template <>
struct std::hash<hybrimoe::moe::ExpertId> {
  [[nodiscard]] std::size_t operator()(const hybrimoe::moe::ExpertId& id) const noexcept {
    // encode() is already a perfect hash for realistic model sizes.
    return std::hash<std::uint32_t>{}(id.encode());
  }
};
