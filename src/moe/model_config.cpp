#include "moe/model_config.hpp"

#include "util/assert.hpp"

namespace hybrimoe::moe {

void ModelConfig::validate() const {
  HYBRIMOE_REQUIRE(!name.empty(), "model name must be set");
  HYBRIMOE_REQUIRE(num_layers > 0, "model must have at least one layer");
  HYBRIMOE_REQUIRE(num_routed_experts > 0, "model must have routed experts");
  HYBRIMOE_REQUIRE(top_k > 0 && top_k <= num_routed_experts,
                   "top_k must be in [1, num_routed_experts]");
  HYBRIMOE_REQUIRE(routed.valid(), "routed expert shape must be set");
  HYBRIMOE_REQUIRE(num_shared_experts == 0 || shared.valid(),
                   "shared expert shape must be set when shared experts exist");
  HYBRIMOE_REQUIRE(bits_per_weight > 0.0 && bits_per_weight <= 32.0,
                   "bits_per_weight out of range");
}

ModelConfig ModelConfig::mixtral() {
  ModelConfig c;
  c.name = "Mixtral";
  c.num_layers = 32;
  c.num_shared_experts = 0;
  c.num_routed_experts = 8;
  c.top_k = 2;
  c.routed = {4096, 14336};
  c.shared = {};
  return c;
}

ModelConfig ModelConfig::qwen2() {
  ModelConfig c;
  c.name = "Qwen2";
  c.num_layers = 28;
  c.num_shared_experts = 1;
  c.num_routed_experts = 64;
  c.top_k = 8;
  c.routed = {3584, 18944};  // as published in Table II
  c.shared = {3584, 20480};
  return c;
}

ModelConfig ModelConfig::deepseek() {
  ModelConfig c;
  c.name = "DeepSeek";
  c.num_layers = 26;
  c.num_shared_experts = 2;
  c.num_routed_experts = 64;
  c.top_k = 6;
  c.routed = {2048, 1408};
  c.shared = {2048, 1408};
  return c;
}

ModelConfig ModelConfig::tiny(std::size_t layers, std::size_t experts, std::size_t top_k,
                              std::size_t d_model, std::size_t d_ff) {
  ModelConfig c;
  c.name = "Tiny";
  c.num_layers = layers;
  c.num_shared_experts = 1;
  c.num_routed_experts = experts;
  c.top_k = top_k;
  c.routed = {d_model, d_ff};
  c.shared = {d_model, d_ff};
  c.validate();
  return c;
}

const std::array<ModelConfig, 3>& paper_models() {
  static const std::array<ModelConfig, 3> models = {
      ModelConfig::mixtral(), ModelConfig::qwen2(), ModelConfig::deepseek()};
  return models;
}

}  // namespace hybrimoe::moe
