#include "moe/moe_layer.hpp"

#include "kernels/ops.hpp"

namespace hybrimoe::moe {

MoeLayer::MoeLayer(util::Rng& rng, std::size_t num_experts, std::size_t top_k,
                   std::size_t d_model, std::size_t d_ff, std::size_t num_shared,
                   bool quantized)
    : router_(num_experts, top_k),
      gate_(kernels::Tensor::randn(rng, num_experts, d_model)),
      quantized_(quantized) {
  experts_.reserve(num_experts);
  for (std::size_t e = 0; e < num_experts; ++e)
    experts_.push_back(kernels::ExpertWeights::random(rng, d_model, d_ff));
  if (quantized_) {
    quantized_experts_.reserve(num_experts);
    for (const auto& w : experts_) quantized_experts_.emplace_back(w);
  }
  shared_.reserve(num_shared);
  for (std::size_t s = 0; s < num_shared; ++s)
    shared_.push_back(kernels::ExpertWeights::random(rng, d_model, d_ff));
}

std::vector<float> MoeLayer::gate_logits(std::span<const float> x) const {
  return kernels::gemv(gate_, x);
}

TokenRouting MoeLayer::route(std::span<const float> x) const {
  return router_.route_token(gate_logits(x));
}

std::vector<float> MoeLayer::expert_output(std::size_t expert,
                                           std::span<const float> x) const {
  HYBRIMOE_REQUIRE(expert < experts_.size(), "expert index out of range");
  if (quantized_) return quantized_experts_[expert].forward(x);
  return kernels::expert_forward(experts_[expert], x);
}

std::vector<float> MoeLayer::forward_with_routing(std::span<const float> x,
                                                  const TokenRouting& routing) const {
  HYBRIMOE_REQUIRE(routing.experts.size() == routing.weights.size(),
                   "routing experts/weights length mismatch");
  std::vector<float> y(x.size(), 0.0f);
  for (std::size_t k = 0; k < routing.experts.size(); ++k) {
    const auto out = expert_output(routing.experts[k], x);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] += routing.weights[k] * out[i];
  }
  for (const auto& s : shared_) {
    const auto out = kernels::expert_forward(s, x);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] += out[i];
  }
  return y;
}

std::vector<float> MoeLayer::forward(std::span<const float> x) const {
  return forward_with_routing(x, route(x));
}

}  // namespace hybrimoe::moe
