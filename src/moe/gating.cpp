#include "moe/gating.hpp"

#include <cmath>

#include "kernels/ops.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace hybrimoe::moe {

GateSet::GateSet(const ModelConfig& config, std::size_t d_latent, std::uint64_t seed)
    : d_latent_(d_latent), num_experts_(config.num_routed_experts) {
  HYBRIMOE_REQUIRE(d_latent > 0, "d_latent must be positive");
  config.validate();
  util::Rng rng(seed);
  gates_.reserve(config.num_layers);
  for (std::size_t l = 0; l < config.num_layers; ++l) {
    // Unit-variance rows: logits on a unit-norm hidden state are O(1), which
    // keeps softmax temperatures comparable across d_latent choices.
    gates_.push_back(kernels::Tensor::randn(rng, num_experts_, d_latent,
                                            1.0 / std::sqrt(static_cast<double>(d_latent))));
  }
}

std::vector<float> GateSet::logits(std::size_t layer, std::span<const float> h,
                                   double temperature) const {
  HYBRIMOE_REQUIRE(layer < gates_.size(), "gate layer out of range");
  HYBRIMOE_REQUIRE(h.size() == d_latent_, "hidden state dimension mismatch");
  HYBRIMOE_REQUIRE(temperature > 0.0, "temperature must be positive");
  auto out = kernels::gemv(gates_[layer], h);
  if (temperature != 1.0) {
    const auto inv = static_cast<float>(1.0 / temperature);
    for (float& v : out) v *= inv;
  }
  return out;
}

}  // namespace hybrimoe::moe
