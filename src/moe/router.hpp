#pragma once

/// \file router.hpp
/// Gating math of Eq. 1: per-token top-k selection with softmax-renormalised
/// weights, plus the batch-level aggregates (per-expert loads, full softmax
/// scores) that the schedulers and the MRS cache consume.

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace hybrimoe::moe {

/// Routing of a single token: the chosen experts and their combine weights.
struct TokenRouting {
  std::vector<std::uint32_t> experts;  ///< top-k expert indices, score-descending
  std::vector<float> weights;          ///< softmax over the selected logits
};

/// Aggregate routing of one layer over a token batch.
struct LayerRouting {
  std::vector<std::uint32_t> loads;  ///< tokens assigned to each expert (size = N)
  std::vector<float> scores;         ///< batch-mean full softmax over experts (size = N)
  std::size_t total_tokens = 0;

  /// Experts with a non-zero load.
  [[nodiscard]] std::vector<std::uint32_t> activated() const;
  /// Number of experts with a non-zero load.
  [[nodiscard]] std::size_t activated_count() const noexcept;
};

/// Stateless top-k router over expert logits.
class Router {
 public:
  Router(std::size_t num_experts, std::size_t top_k);

  [[nodiscard]] std::size_t num_experts() const noexcept { return num_experts_; }
  [[nodiscard]] std::size_t top_k() const noexcept { return top_k_; }

  /// Route one token given its gate logits.
  [[nodiscard]] TokenRouting route_token(std::span<const float> logits) const;

  /// Full softmax over all expert logits (the score vector `s` of Eq. 3).
  [[nodiscard]] std::vector<float> full_scores(std::span<const float> logits) const;

  /// Aggregate a batch of per-token logits into loads + mean scores.
  /// `logits` holds `tokens` contiguous rows of `num_experts` values.
  [[nodiscard]] LayerRouting route_batch(std::span<const float> logits,
                                         std::size_t tokens) const;

 private:
  std::size_t num_experts_;
  std::size_t top_k_;
};

}  // namespace hybrimoe::moe
