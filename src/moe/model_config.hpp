#pragma once

/// \file model_config.hpp
/// Static description of an MoE model — exactly the quantities the paper's
/// Table II publishes and the cost model consumes: layer count, shared/routed
/// expert counts, top-k, and per-expert matrix shapes.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace hybrimoe::moe {

/// Geometry of one expert FFN: three [d_model x d_ff]-sized projections
/// (gate, up, down) as in SwiGLU experts.
struct ExpertShape {
  std::size_t d_model = 0;
  std::size_t d_ff = 0;

  /// Parameter count of the three projection matrices.
  [[nodiscard]] constexpr std::size_t params() const noexcept {
    return 3 * d_model * d_ff;
  }
  /// Weight bytes at `bits_per_weight` bits (default 4-bit + scales, as with
  /// the Marlin / Q4 kernels the paper deploys).
  [[nodiscard]] constexpr std::size_t bytes(double bits_per_weight) const noexcept {
    return static_cast<std::size_t>(static_cast<double>(params()) * bits_per_weight / 8.0);
  }
  /// FLOPs to push `tokens` tokens through the expert (2 flops per MAC).
  [[nodiscard]] constexpr double flops(std::size_t tokens) const noexcept {
    return 2.0 * static_cast<double>(params()) * static_cast<double>(tokens);
  }
  [[nodiscard]] constexpr bool valid() const noexcept { return d_model > 0 && d_ff > 0; }
};

/// Full model description (paper Table II).
struct ModelConfig {
  std::string name;
  std::size_t num_layers = 0;
  std::size_t num_shared_experts = 0;
  std::size_t num_routed_experts = 0;
  std::size_t top_k = 0;  ///< routed experts activated per token
  ExpertShape routed;
  ExpertShape shared;  ///< zero-initialised when the model has no shared experts
  /// Effective stored bits per weight. Q4 blocks carry an fp32 scale per 32
  /// values, i.e. 4 + 32/32 = 4.25 effective bits (kernels::q4_bits_per_value).
  double bits_per_weight = 4.25;

  [[nodiscard]] std::size_t total_routed_experts() const noexcept {
    return num_layers * num_routed_experts;
  }
  [[nodiscard]] std::size_t routed_expert_bytes() const noexcept {
    return routed.bytes(bits_per_weight);
  }
  [[nodiscard]] std::size_t shared_expert_bytes() const noexcept {
    return shared.valid() ? shared.bytes(bits_per_weight) : 0;
  }
  /// FLOPs of the dense (attention + norms) part per token per layer; the
  /// standard 4 d^2 projection cost with d = routed.d_model.
  [[nodiscard]] double attention_flops_per_token() const noexcept {
    const auto d = static_cast<double>(routed.d_model);
    return 2.0 * 4.0 * d * d;
  }
  /// Bytes of the attention projections per layer at `bits_per_weight`.
  [[nodiscard]] std::size_t attention_bytes() const noexcept {
    const auto d = static_cast<double>(routed.d_model);
    return static_cast<std::size_t>(4.0 * d * d * bits_per_weight / 8.0);
  }

  /// Throws std::invalid_argument when structurally inconsistent.
  void validate() const;

  // ---- Table II presets -------------------------------------------------
  /// Mixtral-8x7B-Instruct: 32 layers, 8 routed / 2 active, no shared expert.
  [[nodiscard]] static ModelConfig mixtral();
  /// Qwen2-57B-A14B-Instruct: 28 layers, 64 routed / 8 active, 1 shared.
  [[nodiscard]] static ModelConfig qwen2();
  /// DeepSeek-V2-Lite-Chat: 26 layers, 64 routed / 6 active, 2 shared.
  [[nodiscard]] static ModelConfig deepseek();
  /// Small synthetic model for tests and the functional runner.
  [[nodiscard]] static ModelConfig tiny(std::size_t layers = 4,
                                        std::size_t experts = 8,
                                        std::size_t top_k = 2,
                                        std::size_t d_model = 32,
                                        std::size_t d_ff = 64);
};

/// All three evaluated models in paper order.
[[nodiscard]] const std::array<ModelConfig, 3>& paper_models();

}  // namespace hybrimoe::moe
