#pragma once

/// \file moe_layer.hpp
/// Functional MoE layer (Eq. 1) for small-scale end-to-end verification:
/// a real gate, real SwiGLU experts (dense or Q4-quantized) and shared
/// experts added unconditionally. The offloading engines never run this —
/// they run the cost model — but tests use it to prove that every scheduler's
/// expert partitioning computes exactly the same function as a reference
/// single-device forward.

#include <cstddef>
#include <span>
#include <vector>

#include "kernels/expert.hpp"
#include "moe/router.hpp"

namespace hybrimoe::moe {

/// One functional MoE block: router + routed experts + shared experts.
class MoeLayer {
 public:
  /// Builds random experts and a random gate; deterministic in `rng`.
  MoeLayer(util::Rng& rng, std::size_t num_experts, std::size_t top_k,
           std::size_t d_model, std::size_t d_ff, std::size_t num_shared = 0,
           bool quantized = false);

  [[nodiscard]] std::size_t num_experts() const noexcept { return experts_.size(); }
  [[nodiscard]] std::size_t d_model() const noexcept { return gate_.cols(); }

  /// Gate logits for an input vector.
  [[nodiscard]] std::vector<float> gate_logits(std::span<const float> x) const;

  /// Per-token routing decision.
  [[nodiscard]] TokenRouting route(std::span<const float> x) const;

  /// Reference forward: y = sum_k w_k E_k(x) + sum_shared S_j(x).
  [[nodiscard]] std::vector<float> forward(std::span<const float> x) const;

  /// Forward with an externally supplied routing — lets tests replay the same
  /// token through an arbitrary expert partition (e.g. the subset a scheduler
  /// assigned to "CPU") and check the combined result matches forward().
  [[nodiscard]] std::vector<float> forward_with_routing(std::span<const float> x,
                                                        const TokenRouting& routing) const;

  /// Output of a single routed expert (no gate weighting).
  [[nodiscard]] std::vector<float> expert_output(std::size_t expert,
                                                 std::span<const float> x) const;

 private:
  Router router_;
  kernels::Tensor gate_;  ///< [num_experts x d_model]
  std::vector<kernels::ExpertWeights> experts_;
  std::vector<kernels::QuantizedExpert> quantized_experts_;
  std::vector<kernels::ExpertWeights> shared_;
  bool quantized_ = false;
};

}  // namespace hybrimoe::moe
