#pragma once

/// \file quant.hpp
/// 4-bit block quantization in the style of llama.cpp's Q4_0 / the Marlin
/// kernels the paper builds on (§V): values are grouped into blocks of 32,
/// each block stores one fp32 scale and 32 unsigned 4-bit codes centred at 8.
///
/// The scheduling system uses this only to size experts (bytes-per-expert at
/// 4-bit feeds the cost model); the functional path uses it to run real
/// quantized expert math and to bound quantization error in tests.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "kernels/tensor.hpp"

namespace hybrimoe::kernels {

/// One Q4 block: 32 values packed as 16 bytes plus an fp32 scale.
struct Q4Block {
  static constexpr std::size_t kValues = 32;
  float scale = 0.0f;
  std::array<std::uint8_t, kValues / 2> packed{};
};

/// Bytes used to store `count` values in Q4 blocks (includes scales).
[[nodiscard]] constexpr std::size_t q4_storage_bytes(std::size_t count) noexcept {
  const std::size_t blocks = (count + Q4Block::kValues - 1) / Q4Block::kValues;
  return blocks * (sizeof(float) + Q4Block::kValues / 2);
}

/// Effective bits per value of the Q4 format (4 bits + amortised scale).
[[nodiscard]] constexpr double q4_bits_per_value() noexcept {
  return (sizeof(float) * 8.0 + Q4Block::kValues * 4.0) / Q4Block::kValues;
}

/// Row-major matrix stored in Q4 blocks; rows are padded to a whole block.
class QuantizedMatrix {
 public:
  QuantizedMatrix() = default;

  /// Quantize a dense matrix row-by-row.
  [[nodiscard]] static QuantizedMatrix quantize(const Tensor& dense);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t storage_bytes() const noexcept {
    return blocks_.size() * (sizeof(float) + Q4Block::kValues / 2);
  }

  /// Reconstruct the dense matrix (padding trimmed).
  [[nodiscard]] Tensor dequantize() const;

  /// y = W * x computed directly on quantized blocks.
  [[nodiscard]] std::vector<float> gemv(std::span<const float> x) const;

  /// y = W * x into a caller-provided output of length rows()
  /// (the allocation-free form the execution hot path uses).
  void gemv_into(std::span<const float> x, std::span<float> y) const;

  /// Blocks of one row (blocks-per-row spans, row padded to whole blocks).
  [[nodiscard]] std::span<const Q4Block> row_blocks(std::size_t r) const noexcept {
    return {blocks_.data() + r * blocks_per_row_, blocks_per_row_};
  }

  /// All blocks, row-major (rows() * blocks-per-row entries); the raw payload
  /// a copy engine ships when experts run quantized.
  [[nodiscard]] std::span<const Q4Block> blocks() const noexcept { return blocks_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t blocks_per_row_ = 0;
  std::vector<Q4Block> blocks_;
};

/// Quantize a single span into blocks (exposed for tests).
[[nodiscard]] std::vector<Q4Block> q4_quantize_row(std::span<const float> values);

/// Reconstruct `count` values from blocks (exposed for tests).
[[nodiscard]] std::vector<float> q4_dequantize_row(std::span<const Q4Block> blocks,
                                                   std::size_t count);

/// Worst-case absolute error of Q4 on a span with max-abs `amax`. Interior
/// values round to within half a step (scale/2), but the asymmetric code
/// range [-8, 7] clamps +amax to 7*scale — a full-step error of amax/8.
[[nodiscard]] constexpr double q4_error_bound(double amax) noexcept {
  return amax / 8.0 * 1.0001 + 1e-7;
}

}  // namespace hybrimoe::kernels
