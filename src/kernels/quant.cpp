#include "kernels/quant.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/simd.hpp"

namespace hybrimoe::kernels {

namespace {

/// Quantize exactly one block of up to kValues entries (missing tail = 0).
Q4Block quantize_block(std::span<const float> values) {
  Q4Block block;
  float amax = 0.0f;
  for (const float v : values) amax = std::max(amax, std::abs(v));
  // Q4_0 convention: codes in [0,15] represent q-8 in [-8,7] times scale.
  block.scale = amax / 8.0f;
  const float inv = block.scale > 0.0f ? 1.0f / block.scale : 0.0f;
  for (std::size_t i = 0; i < Q4Block::kValues; ++i) {
    const float v = i < values.size() ? values[i] : 0.0f;
    const int q = std::clamp(static_cast<int>(std::lround(v * inv)) + 8, 0, 15);
    const auto code = static_cast<std::uint8_t>(q);
    if (i % 2 == 0) {
      block.packed[i / 2] = code;
    } else {
      block.packed[i / 2] = static_cast<std::uint8_t>(block.packed[i / 2] | (code << 4));
    }
  }
  return block;
}

float decode(const Q4Block& block, std::size_t i) {
  const std::uint8_t byte = block.packed[i / 2];
  const int code = (i % 2 == 0) ? (byte & 0x0F) : (byte >> 4);
  return static_cast<float>(code - 8) * block.scale;
}

}  // namespace

std::vector<Q4Block> q4_quantize_row(std::span<const float> values) {
  const std::size_t blocks = (values.size() + Q4Block::kValues - 1) / Q4Block::kValues;
  std::vector<Q4Block> out;
  out.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * Q4Block::kValues;
    const std::size_t len = std::min(Q4Block::kValues, values.size() - begin);
    out.push_back(quantize_block(values.subspan(begin, len)));
  }
  return out;
}

std::vector<float> q4_dequantize_row(std::span<const Q4Block> blocks, std::size_t count) {
  HYBRIMOE_REQUIRE(blocks.size() * Q4Block::kValues >= count,
                   "q4_dequantize_row: not enough blocks");
  std::vector<float> out(count);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = decode(blocks[i / Q4Block::kValues], i % Q4Block::kValues);
  return out;
}

QuantizedMatrix QuantizedMatrix::quantize(const Tensor& dense) {
  QuantizedMatrix q;
  q.rows_ = dense.rows();
  q.cols_ = dense.cols();
  q.blocks_per_row_ = (dense.cols() + Q4Block::kValues - 1) / Q4Block::kValues;
  q.blocks_.reserve(q.rows_ * q.blocks_per_row_);
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    auto row_blocks = q4_quantize_row(dense.row(r));
    q.blocks_.insert(q.blocks_.end(), row_blocks.begin(), row_blocks.end());
  }
  return q;
}

Tensor QuantizedMatrix::dequantize() const {
  Tensor dense(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::span<const Q4Block> row_blocks{blocks_.data() + r * blocks_per_row_,
                                              blocks_per_row_};
    auto values = q4_dequantize_row(row_blocks, cols_);
    std::copy(values.begin(), values.end(), dense.row(r).begin());
  }
  return dense;
}

std::vector<float> QuantizedMatrix::gemv(std::span<const float> x) const {
  std::vector<float> y(rows_, 0.0f);
  gemv_into(x, y);
  return y;
}

void QuantizedMatrix::gemv_into(std::span<const float> x, std::span<float> y) const {
  HYBRIMOE_REQUIRE(x.size() == cols_, "quantized gemv dimension mismatch");
  HYBRIMOE_REQUIRE(y.size() == rows_, "quantized gemv output dimension mismatch");
  for (std::size_t r = 0; r < rows_; ++r)
    y[r] = static_cast<float>(simd::q4_dot(row_blocks(r), x));
}

}  // namespace hybrimoe::kernels
