#pragma once

/// \file ops.hpp
/// Dense primitives for the functional MoE path: GEMV/GEMM, softmax, top-k,
/// SiLU/SwiGLU and RMSNorm — the same operator set an expert FFN layer needs
/// in llama.cpp-style inference, at reproduction scale.

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/tensor.hpp"

namespace hybrimoe::kernels {

/// y = W * x, with W of shape [m x n] and x of length n.
[[nodiscard]] std::vector<float> gemv(const Tensor& w, std::span<const float> x);

/// y = W * x written into a caller-provided output of length w.rows()
/// (the allocation-free form the execution hot path uses).
void gemv_into(const Tensor& w, std::span<const float> x, std::span<float> y);

/// C = A * B with A [m x k], B [k x n].
[[nodiscard]] Tensor gemm(const Tensor& a, const Tensor& b);

/// Numerically stable in-place softmax.
void softmax_inplace(std::span<float> values);

/// Numerically stable softmax over only the given indices of `values`
/// (the renormalised routing weights of Eq. 1); returns one weight per index.
[[nodiscard]] std::vector<float> softmax_over(std::span<const float> values,
                                              std::span<const std::uint32_t> indices);

/// Indices of the k largest values, ordered by descending value
/// (ties broken by lower index, which keeps routing deterministic).
[[nodiscard]] std::vector<std::uint32_t> topk_indices(std::span<const float> values,
                                                      std::size_t k);

/// x * sigmoid(x), applied elementwise in place.
void silu_inplace(std::span<float> values);

/// out[i] = silu(gate[i]) * up[i]; spans must have equal length.
void swiglu_combine(std::span<const float> gate, std::span<const float> up,
                    std::span<float> out);

/// RMSNorm with unit gain: x / sqrt(mean(x^2) + eps).
void rmsnorm_inplace(std::span<float> values, float eps = 1e-6f);

/// Euclidean norm.
[[nodiscard]] double l2_norm(std::span<const float> values) noexcept;

/// Max absolute elementwise difference between two equal-length spans.
[[nodiscard]] double max_abs_diff(std::span<const float> a, std::span<const float> b);

}  // namespace hybrimoe::kernels
