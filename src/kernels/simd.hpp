#pragma once

/// \file simd.hpp
/// Runtime-dispatched SIMD primitives behind the hot `kernels::ops` paths and
/// the quantized GEMV. Every primitive has a portable scalar implementation
/// and (on x86-64 GCC/Clang builds) an AVX2+FMA variant compiled with
/// per-function target attributes, so one binary runs everywhere and picks
/// the fastest available path at runtime via cpuid. Dispatch is process-wide
/// and can be pinned for tests (`force_level`), which is how CI exercises
/// both paths on any host.
///
/// Numeric contract: the scalar and AVX2 variants of each primitive are
/// *equivalent within documented ulp bounds*, not bitwise identical — vector
/// accumulation reorders float/double sums and the vectorized exp uses a
/// polynomial instead of libm. Within one process the dispatched result is
/// deterministic (same level, same association every call), which is what
/// keeps execution digests bit-identical across execution modes and worker
/// counts. The bounds are pinned by tests/kernels/simd_equivalence_test.cpp:
///  * dot / rmsnorm / q4_dot: double accumulation in both variants, only the
///    association differs — a few ulp after the final rounding to float;
///  * silu / swiglu: the AVX2 exp polynomial is accurate to ~2 ulp over the
///    clamped range [-87.3, 88.7], so outputs agree to ~1e-6 relative.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "kernels/quant.hpp"

namespace hybrimoe::kernels::simd {

/// Instruction-set level a dispatched primitive can run at.
enum class IsaLevel : std::uint8_t {
  Scalar,  ///< portable C++ loops (always available)
  Avx2,    ///< 256-bit AVX2 + FMA vector paths (x86-64 GCC/Clang builds)
};

/// Printable name of a level ("scalar" / "avx2").
[[nodiscard]] const char* to_string(IsaLevel level) noexcept;

/// Highest level this binary carries code for (compile-time property).
[[nodiscard]] IsaLevel compiled_level() noexcept;

/// Highest compiled level the running CPU also supports (cached cpuid
/// probe; always at least Scalar, never above compiled_level()).
[[nodiscard]] IsaLevel detected_level() noexcept;

/// True when `level` can execute on this build and host.
[[nodiscard]] bool level_available(IsaLevel level) noexcept;

/// Level the dispatched primitives below actually use right now: the forced
/// override when one is set, detected_level() otherwise.
[[nodiscard]] IsaLevel active_level() noexcept;

/// Test hook: pin dispatch to `level` process-wide (std::nullopt restores
/// auto-detection). Throws std::invalid_argument when the level is not
/// available on this build/host. Thread-safe, but intended for test setup —
/// flipping it concurrently with kernel calls changes which variant later
/// calls pick (never the safety of any call).
void force_level(std::optional<IsaLevel> level);

/// RAII dispatch pin: forces `level` on construction, restores
/// auto-detection on destruction. The unit-test idiom for covering both
/// variants on one host.
class ForcedLevel {
 public:
  /// Pins dispatch to `level` (throws std::invalid_argument if unavailable).
  explicit ForcedLevel(IsaLevel level) { force_level(level); }
  /// Restores auto-detected dispatch.
  ~ForcedLevel() { force_level(std::nullopt); }
  ForcedLevel(const ForcedLevel&) = delete;
  ForcedLevel& operator=(const ForcedLevel&) = delete;
};

/// Dot product of two equal-length spans, accumulated in double (the
/// reproducible-small-scale-math convention of ops::gemv). Dispatched.
[[nodiscard]] double dot(std::span<const float> a, std::span<const float> b);

/// In-place SiLU: v <- v / (1 + exp(-v)). Dispatched.
void silu(std::span<float> values);

/// out[i] = silu(gate[i]) * up[i]; all spans must have equal length.
/// Dispatched.
void swiglu(std::span<const float> gate, std::span<const float> up,
            std::span<float> out);

/// In-place RMSNorm with unit gain: v <- v / sqrt(mean(v^2) + eps), with the
/// sum of squares accumulated in double. Dispatched.
void rmsnorm(std::span<float> values, float eps);

/// One quantized GEMV row: sum of code-decoded Q4 values times `x`, with
/// per-block double accumulation scaled by the block scale (the same
/// structure as the scalar QuantizedMatrix::gemv inner loop). `blocks` must
/// cover at least x.size() values; values past x.size() are ignored.
/// Dispatched.
[[nodiscard]] double q4_dot(std::span<const Q4Block> blocks,
                            std::span<const float> x);

}  // namespace hybrimoe::kernels::simd
