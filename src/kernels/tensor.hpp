#pragma once

/// \file tensor.hpp
/// Minimal row-major dense matrix used by the functional MoE path.
///
/// The scheduling/caching system never touches weight values — it operates on
/// the cost model — but the functional runner, the quantization kernels and
/// several tests execute real expert math at small dimensions. This type keeps
/// that path simple, owning, and bounds-checked in debug contract mode.

#include <cstddef>
#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace hybrimoe::kernels {

/// Owning row-major 2-D float matrix.
class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// All-zero matrix.
  [[nodiscard]] static Tensor zeros(std::size_t rows, std::size_t cols) {
    return Tensor(rows, cols);
  }

  /// i.i.d. Gaussian entries scaled by `stddev` (default 1/sqrt(cols), the
  /// usual fan-in init so activations stay O(1)).
  [[nodiscard]] static Tensor randn(util::Rng& rng, std::size_t rows, std::size_t cols,
                                    double stddev = -1.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] float& at(std::size_t r, std::size_t c) {
    HYBRIMOE_REQUIRE(r < rows_ && c < cols_, "Tensor::at out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const {
    HYBRIMOE_REQUIRE(r < rows_ && c < cols_, "Tensor::at out of range");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<float> row(std::size_t r) {
    HYBRIMOE_REQUIRE(r < rows_, "Tensor::row out of range");
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const {
    HYBRIMOE_REQUIRE(r < rows_, "Tensor::row out of range");
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<float> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const float> flat() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace hybrimoe::kernels
