#include "kernels/expert.hpp"

#include <cstring>

#include "kernels/ops.hpp"

namespace hybrimoe::kernels {

ExpertWeights ExpertWeights::random(util::Rng& rng, std::size_t d_model, std::size_t d_ff) {
  ExpertWeights w;
  w.gate = Tensor::randn(rng, d_ff, d_model);
  w.up = Tensor::randn(rng, d_ff, d_model);
  w.down = Tensor::randn(rng, d_model, d_ff);
  return w;
}

std::size_t ExpertWeights::copy_blob_to(std::span<float> dst) const {
  const std::size_t floats = blob_floats();
  HYBRIMOE_REQUIRE(dst.size() >= floats, "blob destination too small");
  float* out = dst.data();
  for (const Tensor* t : {&gate, &up, &down}) {
    std::memcpy(out, t->flat().data(), t->size() * sizeof(float));
    out += t->size();
  }
  return floats;
}

std::vector<float> expert_forward(const ExpertWeights& w, std::span<const float> x) {
  HYBRIMOE_REQUIRE(x.size() == w.d_model(), "expert_forward dimension mismatch");
  const auto gate = gemv(w.gate, x);
  const auto up = gemv(w.up, x);
  std::vector<float> hidden(gate.size());
  swiglu_combine(gate, up, hidden);
  return gemv(w.down, hidden);
}

QuantizedExpert::QuantizedExpert(const ExpertWeights& dense)
    : gate_(QuantizedMatrix::quantize(dense.gate)),
      up_(QuantizedMatrix::quantize(dense.up)),
      down_(QuantizedMatrix::quantize(dense.down)) {}

std::vector<float> QuantizedExpert::forward(std::span<const float> x) const {
  HYBRIMOE_REQUIRE(x.size() == d_model(), "QuantizedExpert::forward dimension mismatch");
  const auto gate = gate_.gemv(x);
  const auto up = up_.gemv(x);
  std::vector<float> hidden(gate.size());
  swiglu_combine(gate, up, hidden);
  return down_.gemv(hidden);
}

}  // namespace hybrimoe::kernels
