#include "kernels/expert.hpp"

#include <cstring>

#include "kernels/ops.hpp"

namespace hybrimoe::kernels {

ExpertWeights ExpertWeights::random(util::Rng& rng, std::size_t d_model, std::size_t d_ff) {
  ExpertWeights w;
  w.gate = Tensor::randn(rng, d_ff, d_model);
  w.up = Tensor::randn(rng, d_ff, d_model);
  w.down = Tensor::randn(rng, d_model, d_ff);
  return w;
}

std::size_t ExpertWeights::copy_blob_to(std::span<float> dst) const {
  const std::size_t floats = blob_floats();
  HYBRIMOE_REQUIRE(dst.size() >= floats, "blob destination too small");
  float* out = dst.data();
  for (const Tensor* t : {&gate, &up, &down}) {
    std::memcpy(out, t->flat().data(), t->size() * sizeof(float));
    out += t->size();
  }
  return floats;
}

std::vector<float> expert_forward(const ExpertWeights& w, std::span<const float> x) {
  ForwardScratch scratch;
  return expert_forward(w, x, scratch);
}

std::vector<float> expert_forward(const ExpertWeights& w, std::span<const float> x,
                                  ForwardScratch& scratch) {
  HYBRIMOE_REQUIRE(x.size() == w.d_model(), "expert_forward dimension mismatch");
  scratch.gate.resize(w.d_ff());
  scratch.up.resize(w.d_ff());
  scratch.hidden.resize(w.d_ff());
  gemv_into(w.gate, x, scratch.gate);
  gemv_into(w.up, x, scratch.up);
  swiglu_combine(scratch.gate, scratch.up, scratch.hidden);
  std::vector<float> out(w.d_model());
  gemv_into(w.down, scratch.hidden, out);
  return out;
}

QuantizedExpert::QuantizedExpert(const ExpertWeights& dense)
    : gate_(QuantizedMatrix::quantize(dense.gate)),
      up_(QuantizedMatrix::quantize(dense.up)),
      down_(QuantizedMatrix::quantize(dense.down)) {}

std::vector<float> QuantizedExpert::forward(std::span<const float> x) const {
  ForwardScratch scratch;
  return forward(x, scratch);
}

std::vector<float> QuantizedExpert::forward(std::span<const float> x,
                                            ForwardScratch& scratch) const {
  HYBRIMOE_REQUIRE(x.size() == d_model(), "QuantizedExpert::forward dimension mismatch");
  scratch.gate.resize(d_ff());
  scratch.up.resize(d_ff());
  scratch.hidden.resize(d_ff());
  gate_.gemv_into(x, scratch.gate);
  up_.gemv_into(x, scratch.up);
  swiglu_combine(scratch.gate, scratch.up, scratch.hidden);
  std::vector<float> out(d_model());
  down_.gemv_into(scratch.hidden, out);
  return out;
}

}  // namespace hybrimoe::kernels
