#include "kernels/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "kernels/simd.hpp"

namespace hybrimoe::kernels {

Tensor Tensor::randn(util::Rng& rng, std::size_t rows, std::size_t cols, double stddev) {
  Tensor t(rows, cols);
  const double scale = stddev > 0.0 ? stddev : 1.0 / std::sqrt(static_cast<double>(cols));
  for (float& v : t.flat()) v = static_cast<float>(rng.gaussian(0.0, scale));
  return t;
}

std::vector<float> gemv(const Tensor& w, std::span<const float> x) {
  std::vector<float> y(w.rows(), 0.0f);
  gemv_into(w, x, y);
  return y;
}

void gemv_into(const Tensor& w, std::span<const float> x, std::span<float> y) {
  HYBRIMOE_REQUIRE(w.cols() == x.size(), "gemv dimension mismatch");
  HYBRIMOE_REQUIRE(w.rows() == y.size(), "gemv output dimension mismatch");
  // Rows accumulate in double for reproducible small-scale math; simd::dot
  // keeps that contract in both its scalar and vector variants.
  for (std::size_t r = 0; r < w.rows(); ++r)
    y[r] = static_cast<float>(simd::dot(w.row(r), x));
}

Tensor gemm(const Tensor& a, const Tensor& b) {
  HYBRIMOE_REQUIRE(a.cols() == b.rows(), "gemm dimension mismatch");
  Tensor c(a.rows(), b.cols());
  // ikj ordering: unit-stride access on both B and C rows.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto a_row = a.row(i);
    const auto c_row = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a_row[k];
      if (aik == 0.0f) continue;
      const auto b_row = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) c_row[j] += aik * b_row[j];
    }
  }
  return c;
}

void softmax_inplace(std::span<float> values) {
  if (values.empty()) return;
  const float max_v = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (float& v : values) {
    v = std::exp(v - max_v);
    sum += v;
  }
  const auto inv = static_cast<float>(1.0 / sum);
  for (float& v : values) v *= inv;
}

std::vector<float> softmax_over(std::span<const float> values,
                                std::span<const std::uint32_t> indices) {
  HYBRIMOE_REQUIRE(!indices.empty(), "softmax_over requires at least one index");
  float max_v = -std::numeric_limits<float>::infinity();
  for (const auto idx : indices) {
    HYBRIMOE_REQUIRE(idx < values.size(), "softmax_over index out of range");
    max_v = std::max(max_v, values[idx]);
  }
  std::vector<float> weights(indices.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    weights[i] = std::exp(values[indices[i]] - max_v);
    sum += weights[i];
  }
  const auto inv = static_cast<float>(1.0 / sum);
  for (float& w : weights) w *= inv;
  return weights;
}

std::vector<std::uint32_t> topk_indices(std::span<const float> values, std::size_t k) {
  HYBRIMOE_REQUIRE(k > 0 && k <= values.size(), "topk k out of range");
  std::vector<std::uint32_t> order(values.size());
  std::iota(order.begin(), order.end(), 0U);
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::uint32_t a, std::uint32_t b) {
                      if (values[a] != values[b]) return values[a] > values[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

void silu_inplace(std::span<float> values) { simd::silu(values); }

void swiglu_combine(std::span<const float> gate, std::span<const float> up,
                    std::span<float> out) {
  HYBRIMOE_REQUIRE(gate.size() == up.size() && gate.size() == out.size(),
                   "swiglu_combine length mismatch");
  simd::swiglu(gate, up, out);
}

void rmsnorm_inplace(std::span<float> values, float eps) {
  if (values.empty()) return;
  simd::rmsnorm(values, eps);
}

double l2_norm(std::span<const float> values) noexcept {
  double sq = 0.0;
  for (const float v : values) sq += static_cast<double>(v) * v;
  return std::sqrt(sq);
}

double max_abs_diff(std::span<const float> a, std::span<const float> b) {
  HYBRIMOE_REQUIRE(a.size() == b.size(), "max_abs_diff length mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(static_cast<double>(a[i]) - b[i]));
  return worst;
}

}  // namespace hybrimoe::kernels
