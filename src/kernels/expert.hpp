#pragma once

/// \file expert.hpp
/// A SwiGLU expert FFN — the unit of work every scheduler in this repository
/// moves between devices. Dense (fp32) and Q4-quantized variants share the
/// same forward semantics:
///
///   y = W_down( SiLU(W_gate x) ⊙ (W_up x) )
///
/// which is the expert structure of Mixtral, Qwen2 and DeepSeek alike.

#include <span>
#include <vector>

#include "kernels/quant.hpp"
#include "kernels/tensor.hpp"

namespace hybrimoe::kernels {

/// Dense expert weights: gate/up are [d_ff x d_model], down is [d_model x d_ff].
struct ExpertWeights {
  Tensor gate;
  Tensor up;
  Tensor down;

  /// Random expert with fan-in init.
  [[nodiscard]] static ExpertWeights random(util::Rng& rng, std::size_t d_model,
                                            std::size_t d_ff);

  [[nodiscard]] std::size_t d_model() const noexcept { return gate.cols(); }
  [[nodiscard]] std::size_t d_ff() const noexcept { return gate.rows(); }

  /// fp32 storage footprint.
  [[nodiscard]] std::size_t dense_bytes() const noexcept {
    return (gate.size() + up.size() + down.size()) * sizeof(float);
  }

  /// Total float count of the three projections (the transfer blob size).
  [[nodiscard]] std::size_t blob_floats() const noexcept {
    return gate.size() + up.size() + down.size();
  }

  /// Serialize the three projections (gate, up, down — row-major,
  /// concatenated) into `dst`, which must hold at least blob_floats()
  /// values. This is the weight blob the execution backend's copy engine
  /// moves per simulated PCIe transfer. Returns the floats written.
  std::size_t copy_blob_to(std::span<float> dst) const;
};

/// Reusable intermediate buffers for expert forward passes. A caller that
/// keeps one scratch per worker thread takes the gate/up/hidden allocations
/// off the per-token loop; results are identical to the allocating forms.
struct ForwardScratch {
  std::vector<float> gate;
  std::vector<float> up;
  std::vector<float> hidden;
};

/// Forward pass through a dense expert.
[[nodiscard]] std::vector<float> expert_forward(const ExpertWeights& w,
                                                std::span<const float> x);

/// Forward pass through a dense expert reusing `scratch` for intermediates.
[[nodiscard]] std::vector<float> expert_forward(const ExpertWeights& w,
                                                std::span<const float> x,
                                                ForwardScratch& scratch);

/// Q4-quantized expert: same forward contract, ~8x smaller weights.
class QuantizedExpert {
 public:
  QuantizedExpert() = default;
  explicit QuantizedExpert(const ExpertWeights& dense);

  [[nodiscard]] std::vector<float> forward(std::span<const float> x) const;

  /// Forward pass reusing `scratch` for intermediates.
  [[nodiscard]] std::vector<float> forward(std::span<const float> x,
                                           ForwardScratch& scratch) const;

  [[nodiscard]] std::size_t storage_bytes() const noexcept {
    return gate_.storage_bytes() + up_.storage_bytes() + down_.storage_bytes();
  }
  [[nodiscard]] std::size_t d_model() const noexcept { return gate_.cols(); }
  [[nodiscard]] std::size_t d_ff() const noexcept { return gate_.rows(); }

  /// Quantized gate projection [d_ff x d_model].
  [[nodiscard]] const QuantizedMatrix& gate() const noexcept { return gate_; }
  /// Quantized up projection [d_ff x d_model].
  [[nodiscard]] const QuantizedMatrix& up() const noexcept { return up_; }
  /// Quantized down projection [d_model x d_ff].
  [[nodiscard]] const QuantizedMatrix& down() const noexcept { return down_; }

 private:
  QuantizedMatrix gate_;
  QuantizedMatrix up_;
  QuantizedMatrix down_;
};

}  // namespace hybrimoe::kernels
