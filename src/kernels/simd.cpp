#include "kernels/simd.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/assert.hpp"

// AVX2 variants are compiled with per-function target attributes, so the
// translation unit builds at the default architecture and one binary carries
// both paths. Only attempted on x86-64 GCC/Clang, where the attribute and
// __builtin_cpu_supports are reliable.
#if (defined(__GNUC__) || defined(__clang__)) && defined(__x86_64__)
#define HYBRIMOE_SIMD_AVX2 1
#include <immintrin.h>
#else
#define HYBRIMOE_SIMD_AVX2 0
#endif

namespace hybrimoe::kernels::simd {

namespace {

// -1 = auto-detect, otherwise the forced IsaLevel (test hook).
std::atomic<int> g_forced{-1};

IsaLevel probe_host() noexcept {
#if HYBRIMOE_SIMD_AVX2
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return IsaLevel::Avx2;
#endif
  return IsaLevel::Scalar;
}

// ---------------------------------------------------------------------------
// Scalar variants — the portable ground truth (and the reference the
// equivalence suite pins the vector paths against).
// ---------------------------------------------------------------------------

double dot_scalar(const float* a, const float* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  return acc;
}

void silu_scalar(float* v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) v[i] = v[i] / (1.0f + std::exp(-v[i]));
}

void swiglu_scalar(const float* gate, const float* up, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float g = gate[i] / (1.0f + std::exp(-gate[i]));
    out[i] = g * up[i];
  }
}

void rmsnorm_scalar(float* v, std::size_t n, float eps) {
  if (n == 0) return;
  double sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) sq += static_cast<double>(v[i]) * v[i];
  const auto inv =
      static_cast<float>(1.0 / std::sqrt(sq / static_cast<double>(n) + eps));
  for (std::size_t i = 0; i < n; ++i) v[i] *= inv;
}

/// Decode value `i` of a block to its integer code minus 8.
inline int q4_code(const Q4Block& block, std::size_t i) {
  const std::uint8_t byte = block.packed[i / 2];
  return ((i % 2 == 0) ? (byte & 0x0F) : (byte >> 4)) - 8;
}

double q4_dot_scalar(const Q4Block* blocks, const float* x, std::size_t n) {
  double acc = 0.0;
  const std::size_t num_blocks = (n + Q4Block::kValues - 1) / Q4Block::kValues;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const Q4Block& block = blocks[b];
    const std::size_t base = b * Q4Block::kValues;
    const std::size_t len = std::min(Q4Block::kValues, n - base);
    double block_acc = 0.0;
    for (std::size_t i = 0; i < len; ++i)
      block_acc += static_cast<double>(q4_code(block, i)) * x[base + i];
    acc += block_acc * block.scale;
  }
  return acc;
}

// ---------------------------------------------------------------------------
// AVX2 + FMA variants. Accumulating primitives (dot, rmsnorm, q4_dot) widen
// every product to double before accumulating — a float*float product is
// exact in double, so the only difference from the scalar path is the
// association of the sum (a few ulp after rounding back to float). The exp
// in silu/swiglu is a Cephes-style degree-5 polynomial over the clamped
// range, accurate to ~2 ulp.
// ---------------------------------------------------------------------------
#if HYBRIMOE_SIMD_AVX2

#define HYBRIMOE_AVX2_FN __attribute__((target("avx2,fma")))

/// Fixed-order horizontal sum of a 4-lane double accumulator.
HYBRIMOE_AVX2_FN inline double hsum_pd(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

HYBRIMOE_AVX2_FN double dot_avx2(const float* a, const float* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 va0 = _mm256_loadu_ps(a + i);
    const __m256 vb0 = _mm256_loadu_ps(b + i);
    const __m256 va1 = _mm256_loadu_ps(a + i + 8);
    const __m256 vb1 = _mm256_loadu_ps(b + i + 8);
    acc0 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va0)),
                           _mm256_cvtps_pd(_mm256_castps256_ps128(vb0)), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va0, 1)),
                           _mm256_cvtps_pd(_mm256_extractf128_ps(vb0, 1)), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va1)),
                           _mm256_cvtps_pd(_mm256_castps256_ps128(vb1)), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va1, 1)),
                           _mm256_cvtps_pd(_mm256_extractf128_ps(vb1, 1)), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    acc0 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va)),
                           _mm256_cvtps_pd(_mm256_castps256_ps128(vb)), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
                           _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1)), acc1);
  }
  double acc = hsum_pd(_mm256_add_pd(_mm256_add_pd(acc0, acc1),
                                     _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  return acc;
}

/// Cephes-style expf over 8 lanes: 2^k * p(r) with the input clamped to the
/// finite range of float exp. ~2 ulp over the clamped range.
HYBRIMOE_AVX2_FN inline __m256 exp256_ps(__m256 x) {
  const __m256 hi = _mm256_set1_ps(88.3762626647949f);
  const __m256 lo = _mm256_set1_ps(-87.3365478515625f);
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 c1 = _mm256_set1_ps(0.693359375f);
  const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 one = _mm256_set1_ps(1.0f);

  x = _mm256_min_ps(_mm256_max_ps(x, lo), hi);
  const __m256 fx = _mm256_floor_ps(
      _mm256_fmadd_ps(x, log2e, _mm256_set1_ps(0.5f)));
  // r = x - fx * ln2, in two steps for accuracy.
  x = _mm256_fnmadd_ps(fx, c1, x);
  x = _mm256_fnmadd_ps(fx, c2, x);

  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, _mm256_mul_ps(x, x), _mm256_add_ps(x, one));

  // Scale by 2^fx through the exponent bits.
  const __m256i k = _mm256_add_epi32(_mm256_cvttps_epi32(fx),
                                     _mm256_set1_epi32(127));
  return _mm256_mul_ps(y, _mm256_castsi256_ps(_mm256_slli_epi32(k, 23)));
}

HYBRIMOE_AVX2_FN void silu_avx2(float* v, std::size_t n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(v + i);
    const __m256 denom = _mm256_add_ps(one, exp256_ps(_mm256_sub_ps(zero, x)));
    _mm256_storeu_ps(v + i, _mm256_div_ps(x, denom));
  }
  for (; i < n; ++i) v[i] = v[i] / (1.0f + std::exp(-v[i]));
}

HYBRIMOE_AVX2_FN void swiglu_avx2(const float* gate, const float* up, float* out,
                                  std::size_t n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 g = _mm256_loadu_ps(gate + i);
    const __m256 denom = _mm256_add_ps(one, exp256_ps(_mm256_sub_ps(zero, g)));
    const __m256 s = _mm256_div_ps(g, denom);
    _mm256_storeu_ps(out + i, _mm256_mul_ps(s, _mm256_loadu_ps(up + i)));
  }
  for (; i < n; ++i) {
    const float g = gate[i] / (1.0f + std::exp(-gate[i]));
    out[i] = g * up[i];
  }
}

HYBRIMOE_AVX2_FN void rmsnorm_avx2(float* v, std::size_t n, float eps) {
  if (n == 0) return;
  const double sq = dot_avx2(v, v, n);
  const auto inv =
      static_cast<float>(1.0 / std::sqrt(sq / static_cast<double>(n) + eps));
  const __m256 vinv = _mm256_set1_ps(inv);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(v + i, _mm256_mul_ps(_mm256_loadu_ps(v + i), vinv));
  for (; i < n; ++i) v[i] *= inv;
}

/// Multiply-accumulate 8 decoded codes (low 8 bytes of `codes8`) against 8
/// floats at `xp`, widening to double into the two accumulator halves.
HYBRIMOE_AVX2_FN inline void q4_mac8(__m128i codes8, const float* xp,
                                     __m256d& acc0, __m256d& acc1) {
  const __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(codes8));
  const __m256 xv = _mm256_loadu_ps(xp);
  acc0 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(f)),
                         _mm256_cvtps_pd(_mm256_castps256_ps128(xv)), acc0);
  acc1 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(f, 1)),
                         _mm256_cvtps_pd(_mm256_extractf128_ps(xv, 1)), acc1);
}

HYBRIMOE_AVX2_FN double q4_dot_avx2(const Q4Block* blocks, const float* x,
                                    std::size_t n) {
  const __m128i nibble_mask = _mm_set1_epi8(0x0F);
  const __m128i bias = _mm_set1_epi8(8);
  double acc = 0.0;
  const std::size_t num_blocks = (n + Q4Block::kValues - 1) / Q4Block::kValues;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const Q4Block& block = blocks[b];
    const std::size_t base = b * Q4Block::kValues;
    const std::size_t len = std::min(Q4Block::kValues, n - base);
    double block_acc;
    if (len == Q4Block::kValues) {
      // Unpack 32 codes: byte i holds value 2i in its low nibble and value
      // 2i+1 in its high nibble, so interleaving lo/hi restores value order.
      const __m128i raw =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(block.packed.data()));
      const __m128i lo = _mm_and_si128(raw, nibble_mask);
      const __m128i hi = _mm_and_si128(_mm_srli_epi16(raw, 4), nibble_mask);
      const __m128i v0 = _mm_sub_epi8(_mm_unpacklo_epi8(lo, hi), bias);
      const __m128i v1 = _mm_sub_epi8(_mm_unpackhi_epi8(lo, hi), bias);
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      q4_mac8(v0, x + base, acc0, acc1);
      q4_mac8(_mm_srli_si128(v0, 8), x + base + 8, acc0, acc1);
      q4_mac8(v1, x + base + 16, acc0, acc1);
      q4_mac8(_mm_srli_si128(v1, 8), x + base + 24, acc0, acc1);
      block_acc = hsum_pd(_mm256_add_pd(acc0, acc1));
    } else {
      block_acc = 0.0;
      for (std::size_t i = 0; i < len; ++i)
        block_acc += static_cast<double>(q4_code(block, i)) * x[base + i];
    }
    acc += block_acc * block.scale;
  }
  return acc;
}

#endif  // HYBRIMOE_SIMD_AVX2

}  // namespace

const char* to_string(IsaLevel level) noexcept {
  return level == IsaLevel::Avx2 ? "avx2" : "scalar";
}

IsaLevel compiled_level() noexcept {
#if HYBRIMOE_SIMD_AVX2
  return IsaLevel::Avx2;
#else
  return IsaLevel::Scalar;
#endif
}

IsaLevel detected_level() noexcept {
  static const IsaLevel level = probe_host();
  return level;
}

bool level_available(IsaLevel level) noexcept {
  return level == IsaLevel::Scalar || detected_level() == IsaLevel::Avx2;
}

IsaLevel active_level() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  return forced >= 0 ? static_cast<IsaLevel>(forced) : detected_level();
}

void force_level(std::optional<IsaLevel> level) {
  if (!level.has_value()) {
    g_forced.store(-1, std::memory_order_relaxed);
    return;
  }
  if (!level_available(*level))
    throw std::invalid_argument(std::string("SIMD level '") + to_string(*level) +
                                "' is not available on this build/host");
  g_forced.store(static_cast<int>(*level), std::memory_order_relaxed);
}

double dot(std::span<const float> a, std::span<const float> b) {
  HYBRIMOE_REQUIRE(a.size() == b.size(), "simd::dot length mismatch");
#if HYBRIMOE_SIMD_AVX2
  if (active_level() == IsaLevel::Avx2) return dot_avx2(a.data(), b.data(), a.size());
#endif
  return dot_scalar(a.data(), b.data(), a.size());
}

void silu(std::span<float> values) {
#if HYBRIMOE_SIMD_AVX2
  if (active_level() == IsaLevel::Avx2) {
    silu_avx2(values.data(), values.size());
    return;
  }
#endif
  silu_scalar(values.data(), values.size());
}

void swiglu(std::span<const float> gate, std::span<const float> up,
            std::span<float> out) {
  HYBRIMOE_REQUIRE(gate.size() == up.size() && gate.size() == out.size(),
                   "simd::swiglu length mismatch");
#if HYBRIMOE_SIMD_AVX2
  if (active_level() == IsaLevel::Avx2) {
    swiglu_avx2(gate.data(), up.data(), out.data(), gate.size());
    return;
  }
#endif
  swiglu_scalar(gate.data(), up.data(), out.data(), gate.size());
}

void rmsnorm(std::span<float> values, float eps) {
#if HYBRIMOE_SIMD_AVX2
  if (active_level() == IsaLevel::Avx2) {
    rmsnorm_avx2(values.data(), values.size(), eps);
    return;
  }
#endif
  rmsnorm_scalar(values.data(), values.size(), eps);
}

double q4_dot(std::span<const Q4Block> blocks, std::span<const float> x) {
  HYBRIMOE_REQUIRE(blocks.size() * Q4Block::kValues >= x.size(),
                   "simd::q4_dot: not enough blocks");
#if HYBRIMOE_SIMD_AVX2
  if (active_level() == IsaLevel::Avx2)
    return q4_dot_avx2(blocks.data(), x.data(), x.size());
#endif
  return q4_dot_scalar(blocks.data(), x.data(), x.size());
}

}  // namespace hybrimoe::kernels::simd
