#pragma once

/// \file scenario_spec.hpp
/// Declarative fault-injection scenarios for serving experiments. A
/// ScenarioSpec names one of four adversarial conditions and the parameters
/// that shape it; scenario::make_driver (drivers.hpp) turns the spec into a
/// runtime::StepHook that perturbs the engine mid-run. Everything is seeded
/// and deterministic: the same spec against the same stream produces the
/// same step timeline, byte for byte, so scenario tests assert *invariants*
/// (no starvation, progress, tier isolation, transfer conservation) rather
/// than golden values.
///
/// The four scenario families (docs/SCENARIOS.md has the catalogue):
///  * straggler_link — one accelerator's PCIe bandwidth is scaled by
///    `bandwidth_scale` for steps [start_step, end_step);
///  * device_loss   — a non-primary accelerator disappears at `lose_step`
///    (its cached experts are invalidated, no transfer may target it) and
///    optionally returns, cold, at `recover_step`;
///  * cache_thrash  — expert routing is rotated by a seeded stride each step
///    in [start_step, end_step), so the cache's learned residency and the
///    prefetcher's predictions go stale at once;
///  * overload_storm — `storm_requests` best-effort requests all arrive at
///    `storm_time`, flooding the admission queue (a workload-shaping
///    scenario: it stresses tiered admission, not the topology).
///
/// Specs round-trip through the same JSON subset as StackSpec:
///
///   {"family": "straggler_link", "accel": 0, "start_step": 8,
///    "end_step": 24, "bandwidth_scale": 0.1}
///
/// Unknown keys and unknown family names fail with a did-you-mean error;
/// keys that do not apply to the named family are rejected outright.
/// parse_scenario_spec(to_json(s)) == s for every valid spec.

#include <cstdint>
#include <string>
#include <string_view>

#include "util/registry.hpp"

namespace hybrimoe::util::json {
/// Forward declaration (util/json.hpp) — keeps the JSON dep out of the header.
struct Value;
}

namespace hybrimoe::scenario {

/// The four adversarial scenario families.
enum class Family : std::uint8_t {
  StragglerLink,
  DeviceLoss,
  CacheThrash,
  OverloadStorm,
};

/// Printable family name ("straggler_link", "device_loss", ...).
[[nodiscard]] constexpr const char* to_string(Family f) noexcept {
  switch (f) {
    case Family::StragglerLink: return "straggler_link";
    case Family::DeviceLoss: return "device_loss";
    case Family::CacheThrash: return "cache_thrash";
    case Family::OverloadStorm: return "overload_storm";
  }
  return "?";
}

/// One fully-parameterised scenario. A flat value type: every family reads
/// the subset of fields that applies to it (the parser rejects the rest).
struct ScenarioSpec {
  Family family = Family::StragglerLink;
  /// Determinism seed: shapes the cache-thrash rotation and stamps the run.
  std::uint64_t seed = 42;

  // -- straggler_link + device_loss: which accelerator -------------------
  /// Accelerator index (0-based). device_loss requires >= 1: accelerator 0
  /// hosts the dense pipeline and cannot be lost.
  std::size_t accel = 0;

  // -- straggler_link + cache_thrash: the active window ------------------
  std::size_t start_step = 0;  ///< first perturbed engine step
  std::size_t end_step = 0;    ///< one past the last perturbed step; 0 = open

  // -- straggler_link -----------------------------------------------------
  /// Multiplier on the degraded link's bandwidth (0 < scale; 1.0 = healthy).
  double bandwidth_scale = 1.0;

  // -- device_loss --------------------------------------------------------
  std::size_t lose_step = 0;     ///< step at which the accelerator vanishes
  std::size_t recover_step = 0;  ///< step at which it returns; 0 = never

  // -- cache_thrash -------------------------------------------------------
  /// Per-step rotation stride applied to expert routing (>= 1).
  std::size_t stride = 1;

  // -- overload_storm -----------------------------------------------------
  double storm_time = 0.0;          ///< arrival instant of the storm burst
  std::size_t storm_requests = 1;   ///< burst size (best-effort requests)

  bool operator==(const ScenarioSpec&) const = default;

  /// \brief Range checks for the named family; throws std::invalid_argument
  /// on violations (non-positive bandwidth_scale, device_loss of accelerator
  /// 0, an empty active window, recovery at or before the loss, ...).
  void validate() const;
};

/// \brief The named scenario presets ("straggler_link", "device_loss",
/// "cache_thrash", "overload_storm" — one canonical preset per family).
/// Unknown names fail with the registry's did-you-mean message.
[[nodiscard]] util::Registry<ScenarioSpec>& scenario_registry();

/// \brief Parse the JSON-subset scenario grammar documented above. The
/// "family" key is required and resolved first (through the registry, so a
/// misspelled family gets a did-you-mean); remaining keys override the
/// family preset and must apply to that family. Throws std::invalid_argument
/// with the offset on all violations.
[[nodiscard]] ScenarioSpec parse_scenario_spec(std::string_view text);

/// \brief Build a ScenarioSpec from an already-parsed JSON object — the
/// entry point for grammars that embed scenarios (StackSpec's "scenario"
/// key). Errors are stamped with the *enclosing* document's context and
/// offsets.
[[nodiscard]] ScenarioSpec scenario_from_json(const util::json::Value& value);

/// \brief Canonical JSON form (family-relevant keys only);
/// parse_scenario_spec(to_json(s)) == s.
[[nodiscard]] std::string to_json(const ScenarioSpec& spec);

/// \brief Resolve a command-line scenario argument: a registered preset
/// name, inline JSON (starts with '{'), or "@file" to read a spec file.
[[nodiscard]] ScenarioSpec resolve_scenario(std::string_view arg);

}  // namespace hybrimoe::scenario
