#pragma once

/// \file drivers.hpp
/// ScenarioSpec -> runtime::StepHook: the driver that injects one scenario's
/// faults into a serving run. One ScenarioDriver instance covers all four
/// families (it switches on the spec) and additionally records a per-step
/// timeline — clocks, latencies, per-device transfer deltas, device health —
/// that the invariant checkers (tests/scenario/invariants.hpp) assert over.
///
/// Family mechanics:
///  * straggler_link — before step `start_step` the target link's bandwidth
///    is scaled by `bandwidth_scale`; before `end_step` it is restored.
///  * device_loss — before `lose_step` the target accelerator is marked
///    unavailable and its cached experts are erased (residency on a lost
///    device is gone, not stale); before `recover_step` it returns with a
///    cold cache.
///  * cache_thrash — each step in [start_step, end_step) the merged trace's
///    per-layer expert loads/scores are rotated by a seeded stride, so the
///    actual routing drifts away from both the cache's learned residency
///    and the (un-rotated) prefetch predictions — a deliberate adversarial
///    mismatch.
///  * overload_storm — a workload-shaping scenario: shape_stream appends
///    `storm_requests` best-effort requests all arriving at `storm_time`;
///    the step hook itself is a pure observer.
///
/// Determinism: a driver holds no hidden state beyond the spec and the
/// timelines it records; the same spec over the same stream reproduces the
/// same timelines exactly.
///
/// Since the serving core went event-driven the driver also records the
/// simulation's *event* timeline (on_sim_event): every arrival, per-part
/// completion, transfer landing, finish and KV eviction the core pops, in
/// (time, seq) order — the raw feed the per-step StepRecords are a rollup
/// of. Scenario drivers observe events; they still perturb runs through the
/// before_step/transform_step seams, which keeps hook-free serving
/// bit-identical.
///
/// Recording is delegated to a trace::Recorder — the same machinery behind
/// `hybrimoe_run --trace` — so scenario timelines and streamed traces are
/// one format. A driver owns a private in-memory recorder by default; pass
/// an external one to additionally stream the run's trace to a sink.

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/cost_model.hpp"
#include "runtime/serve_engine.hpp"
#include "scenario/scenario_spec.hpp"
#include "trace/recorder.hpp"
#include "workload/request_stream.hpp"

namespace hybrimoe::scenario {

/// One recorded serving step — the shared trace-stream record (the scenario
/// invariant checkers consume the same struct the trace subsystem emits).
using StepRecord = trace::StepRecord;

/// The fault injector. Mutates the *cost model* (shared with the engine) in
/// before_step and the merged trace in transform_step; requires mutable
/// access to the same hw::CostModel the engine charges against (e.g.
/// ExperimentHarness::mutable_costs()).
class ScenarioDriver final : public runtime::StepHook {
 public:
  /// \brief Bind the driver to its scenario and the run's cost model (which
  /// must outlive the driver). Validates the spec. With no external
  /// recorder the driver records into a private in-memory trace::Recorder;
  /// an external `recorder` (not owned, must outlive the driver) receives
  /// the records instead — e.g. one with a TraceSink attached.
  ScenarioDriver(ScenarioSpec spec, hw::CostModel& costs,
                 trace::Recorder* recorder = nullptr);

  /// The validated scenario this driver injects.
  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }
  /// Per-step timeline recorded so far (one entry per completed step).
  [[nodiscard]] const std::vector<StepRecord>& timeline() const noexcept {
    return recorder_->timeline();
  }
  /// Raw simulation events recorded so far, in (time, seq) pop order.
  [[nodiscard]] const std::vector<serve_sim::Event>& events() const noexcept {
    return recorder_->events();
  }

  /// Apply window-edge fault transitions (straggle/restore, lose/recover),
  /// then let the recorder observe the engine.
  void before_step(std::size_t step_index, double clock,
                   runtime::OffloadEngine& engine) override;
  /// Rotate the merged trace's routing inside a cache-thrash window.
  void transform_step(std::size_t step_index,
                      workload::ForwardTrace& merged) override;
  /// Delegate this step's record to the trace recorder.
  void after_step(const runtime::StepInfo& info,
                  const runtime::StageMetrics& steps) override;
  /// Delegate the popped event to the trace recorder.
  void on_sim_event(const serve_sim::Event& event) override {
    recorder_->on_sim_event(event);
  }

 private:
  /// Window-edge fault transitions for the step about to run.
  void apply_faults(std::size_t step_index, runtime::OffloadEngine& engine);

  ScenarioSpec spec_;
  hw::CostModel& costs_;
  std::unique_ptr<trace::Recorder> owned_recorder_;  ///< when none was passed
  trace::Recorder* recorder_;  ///< the active recorder (owned or external)
  bool fault_active_ = false;  ///< straggler applied / device currently lost
};

/// \brief Apply a scenario's workload shaping to a request stream:
/// overload_storm appends `storm_requests` best-effort requests (ids
/// continuing after the stream's maximum) all arriving at `storm_time`;
/// every other family returns the stream unchanged.
[[nodiscard]] std::vector<workload::RequestSpec> shape_stream(
    std::vector<workload::RequestSpec> specs, const ScenarioSpec& scenario);

}  // namespace hybrimoe::scenario
