#pragma once

/// \file drivers.hpp
/// ScenarioSpec -> runtime::StepHook: the driver that injects one scenario's
/// faults into a serving run. One ScenarioDriver instance covers all four
/// families (it switches on the spec) and additionally records a per-step
/// timeline — clocks, latencies, per-device transfer deltas, device health —
/// that the invariant checkers (tests/scenario/invariants.hpp) assert over.
///
/// Family mechanics:
///  * straggler_link — before step `start_step` the target link's bandwidth
///    is scaled by `bandwidth_scale`; before `end_step` it is restored.
///  * device_loss — before `lose_step` the target accelerator is marked
///    unavailable and its cached experts are erased (residency on a lost
///    device is gone, not stale); before `recover_step` it returns with a
///    cold cache.
///  * cache_thrash — each step in [start_step, end_step) the merged trace's
///    per-layer expert loads/scores are rotated by a seeded stride, so the
///    actual routing drifts away from both the cache's learned residency
///    and the (un-rotated) prefetch predictions — a deliberate adversarial
///    mismatch.
///  * overload_storm — a workload-shaping scenario: shape_stream appends
///    `storm_requests` best-effort requests all arriving at `storm_time`;
///    the step hook itself is a pure observer.
///
/// Determinism: a driver holds no hidden state beyond the spec and the
/// timelines it records; the same spec over the same stream reproduces the
/// same timelines exactly.
///
/// Since the serving core went event-driven the driver also records the
/// simulation's *event* timeline (on_sim_event): every arrival, per-part
/// completion, transfer landing, finish and KV eviction the core pops, in
/// (time, seq) order — the raw feed the per-step StepRecords are a rollup
/// of. Scenario drivers observe events; they still perturb runs through the
/// before_step/transform_step seams, which keeps hook-free serving
/// bit-identical.

#include <cstdint>
#include <vector>

#include "hw/cost_model.hpp"
#include "runtime/serve_engine.hpp"
#include "scenario/scenario_spec.hpp"
#include "workload/request_stream.hpp"

namespace hybrimoe::scenario {

/// One recorded serving step (appended by after_step).
struct StepRecord {
  std::size_t index = 0;
  double start_clock = 0.0;
  double end_clock = 0.0;
  double latency = 0.0;
  std::size_t prefill_tokens = 0;
  std::size_t decode_tokens = 0;
  std::size_t active_requests = 0;
  /// Expert uploads targeting each accelerator *during this step* (delta of
  /// the engine's cumulative per-device counters).
  std::vector<std::size_t> transfers_to_device;
  /// Device health while the step ran (after before_step's mutations).
  std::vector<std::uint8_t> device_available;
  /// Link bandwidth scale while the step ran.
  std::vector<double> link_scale;
};

/// The fault injector. Mutates the *cost model* (shared with the engine) in
/// before_step and the merged trace in transform_step; requires mutable
/// access to the same hw::CostModel the engine charges against (e.g.
/// ExperimentHarness::mutable_costs()).
class ScenarioDriver final : public runtime::StepHook {
 public:
  /// \brief Bind the driver to its scenario and the run's cost model (which
  /// must outlive the driver). Validates the spec.
  ScenarioDriver(ScenarioSpec spec, hw::CostModel& costs);

  /// The validated scenario this driver injects.
  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }
  /// Per-step timeline recorded so far (one entry per completed step).
  [[nodiscard]] const std::vector<StepRecord>& timeline() const noexcept {
    return timeline_;
  }
  /// Raw simulation events recorded so far, in (time, seq) pop order.
  [[nodiscard]] const std::vector<serve_sim::Event>& events() const noexcept {
    return events_;
  }

  /// Apply window-edge fault transitions (straggle/restore, lose/recover).
  void before_step(std::size_t step_index, double clock,
                   runtime::OffloadEngine& engine) override;
  /// Rotate the merged trace's routing inside a cache-thrash window.
  void transform_step(std::size_t step_index,
                      workload::ForwardTrace& merged) override;
  /// Append this step's StepRecord to the timeline.
  void after_step(const runtime::StepInfo& info,
                  const runtime::StageMetrics& steps) override;
  /// Record the popped event into the event timeline.
  void on_sim_event(const serve_sim::Event& event) override {
    events_.push_back(event);
  }

 private:
  ScenarioSpec spec_;
  hw::CostModel& costs_;
  std::vector<StepRecord> timeline_;
  std::vector<serve_sim::Event> events_;
  std::vector<std::size_t> prev_transfers_;  ///< cumulative counters last step
  bool fault_active_ = false;  ///< straggler applied / device currently lost
};

/// \brief Apply a scenario's workload shaping to a request stream:
/// overload_storm appends `storm_requests` best-effort requests (ids
/// continuing after the stream's maximum) all arriving at `storm_time`;
/// every other family returns the stream unchanged.
[[nodiscard]] std::vector<workload::RequestSpec> shape_stream(
    std::vector<workload::RequestSpec> specs, const ScenarioSpec& scenario);

}  // namespace hybrimoe::scenario
