#include "scenario/drivers.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hybrimoe::scenario {

ScenarioDriver::ScenarioDriver(ScenarioSpec spec, hw::CostModel& costs,
                               trace::Recorder* recorder)
    : spec_(spec), costs_(costs), recorder_(recorder) {
  spec_.validate();
  if (spec_.family == Family::StragglerLink || spec_.family == Family::DeviceLoss)
    HYBRIMOE_REQUIRE(spec_.accel < costs_.num_accelerators(),
                     "scenario targets an accelerator outside the topology");
  if (recorder_ == nullptr) {
    trace::RecorderConfig config;
    config.costs = &costs_;
    owned_recorder_ = std::make_unique<trace::Recorder>(std::move(config));
    recorder_ = owned_recorder_.get();
  }
}

void ScenarioDriver::before_step(std::size_t step_index, double clock,
                                 runtime::OffloadEngine& engine) {
  // Faults first, so the recorder snapshots the topology the step will
  // actually run under.
  apply_faults(step_index, engine);
  recorder_->before_step(step_index, clock, engine);
}

void ScenarioDriver::apply_faults(std::size_t step_index,
                                  runtime::OffloadEngine& engine) {
  switch (spec_.family) {
    case Family::StragglerLink: {
      const bool in_window = step_index >= spec_.start_step &&
                             (spec_.end_step == 0 || step_index < spec_.end_step);
      if (in_window && !fault_active_) {
        costs_.set_link_bandwidth_scale(spec_.accel, spec_.bandwidth_scale);
        fault_active_ = true;
      } else if (!in_window && fault_active_) {
        costs_.set_link_bandwidth_scale(spec_.accel, 1.0);
        fault_active_ = false;
      }
      break;
    }
    case Family::DeviceLoss: {
      if (!fault_active_ && step_index >= spec_.lose_step &&
          (spec_.recover_step == 0 || step_index < spec_.recover_step)) {
        costs_.set_accelerator_available(spec_.accel, false);
        // Residency on a lost device is gone, not stale: every cached
        // expert (pinned included) is dropped so no lookup, steal or
        // maintenance decision can reference it.
        cache::ExpertCache& cache = engine.device_cache(spec_.accel);
        for (const moe::ExpertId id : cache.residents()) (void)cache.erase(id);
        fault_active_ = true;
      } else if (fault_active_ && spec_.recover_step > 0 &&
                 step_index >= spec_.recover_step) {
        costs_.set_accelerator_available(spec_.accel, true);  // cold cache
        fault_active_ = false;
      }
      break;
    }
    case Family::CacheThrash:
    case Family::OverloadStorm:
      break;  // no topology mutation
  }
}

void ScenarioDriver::transform_step(std::size_t step_index,
                                    workload::ForwardTrace& merged) {
  if (spec_.family != Family::CacheThrash) return;
  if (step_index < spec_.start_step) return;
  if (spec_.end_step != 0 && step_index >= spec_.end_step) return;
  // Rotate each layer's actual routing by a seeded, step-varying offset.
  // Predictions are deliberately left in place: the prefetcher keeps
  // planning for the un-rotated routing, so its uploads land on experts the
  // rotated step never activates — the worst case for learned residency.
  for (moe::LayerRouting& routing : merged.layers) {
    const std::size_t n = routing.loads.size();
    if (n == 0) continue;
    const std::size_t offset =
        (spec_.seed % n + step_index * spec_.stride) % n;
    if (offset == 0) continue;
    std::vector<std::uint32_t> loads(n);
    std::vector<float> scores(n);
    for (std::size_t e = 0; e < n; ++e) {
      loads[(e + offset) % n] = routing.loads[e];
      scores[(e + offset) % n] = routing.scores[e];
    }
    routing.loads = std::move(loads);
    routing.scores = std::move(scores);
  }
}

void ScenarioDriver::after_step(const runtime::StepInfo& info,
                                const runtime::StageMetrics& steps) {
  recorder_->after_step(info, steps);
}

std::vector<workload::RequestSpec> shape_stream(
    std::vector<workload::RequestSpec> specs, const ScenarioSpec& scenario) {
  if (scenario.family != Family::OverloadStorm) return specs;
  scenario.validate();
  std::uint64_t next_id = 0;
  for (const auto& s : specs) next_id = std::max(next_id, s.id + 1);
  specs.reserve(specs.size() + scenario.storm_requests);
  for (std::size_t i = 0; i < scenario.storm_requests; ++i) {
    workload::RequestSpec s;
    s.id = next_id + i;
    s.arrival_time = scenario.storm_time;
    // Deterministic size jitter without an RNG dependency: small prompts,
    // short decodes — storm traffic is interactive chatter, not long jobs.
    s.prompt_tokens = 16 + (scenario.seed + i) % 17;
    s.decode_tokens = 4 + (scenario.seed + i) % 5;
    s.priority = workload::Priority::BestEffort;
    specs.push_back(s);
  }
  return specs;
}

}  // namespace hybrimoe::scenario
