#include "scenario/scenario_spec.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <variant>
#include <vector>

#include "util/assert.hpp"
#include "util/json.hpp"

namespace hybrimoe::scenario {

namespace {

using JsonValue = util::json::Value;
using JsonObject = util::json::Object;
using util::json::as_count;
using util::json::as_number;
using util::json::as_string;
using util::json::format_number;
using util::json::FieldWriter;

/// Every key the grammar accepts, sorted (for did-you-mean suggestions).
const std::vector<std::string> kAllKeys{
    "accel",      "bandwidth_scale", "end_step",       "family",
    "lose_step",  "recover_step",    "seed",           "start_step",
    "storm_requests", "storm_time",  "stride"};

/// Which parameter keys apply to which family ("family" and "seed" always
/// apply). A key outside its family is a hard error, not silently ignored —
/// a spec that sets "bandwidth_scale" on device_loss is a confused spec.
bool key_applies(Family family, std::string_view key) {
  if (key == "family" || key == "seed") return true;
  switch (family) {
    case Family::StragglerLink:
      return key == "accel" || key == "start_step" || key == "end_step" ||
             key == "bandwidth_scale";
    case Family::DeviceLoss:
      return key == "accel" || key == "lose_step" || key == "recover_step";
    case Family::CacheThrash:
      return key == "start_step" || key == "end_step" || key == "stride";
    case Family::OverloadStorm:
      return key == "storm_time" || key == "storm_requests";
  }
  return false;
}

}  // namespace

void ScenarioSpec::validate() const {
  switch (family) {
    case Family::StragglerLink:
      HYBRIMOE_REQUIRE(bandwidth_scale > 0.0,
                       "scenario 'bandwidth_scale' must be positive");
      HYBRIMOE_REQUIRE(end_step == 0 || end_step > start_step,
                       "scenario 'end_step' must be 0 (open) or after 'start_step'");
      break;
    case Family::DeviceLoss:
      HYBRIMOE_REQUIRE(accel >= 1,
                       "scenario 'device_loss' cannot target accelerator 0 "
                       "(the primary accelerator hosts the dense pipeline)");
      HYBRIMOE_REQUIRE(recover_step == 0 || recover_step > lose_step,
                       "scenario 'recover_step' must be 0 (never) or after "
                       "'lose_step'");
      break;
    case Family::CacheThrash:
      HYBRIMOE_REQUIRE(stride >= 1, "scenario 'stride' must be >= 1");
      HYBRIMOE_REQUIRE(end_step == 0 || end_step > start_step,
                       "scenario 'end_step' must be 0 (open) or after 'start_step'");
      break;
    case Family::OverloadStorm:
      HYBRIMOE_REQUIRE(storm_time >= 0.0, "scenario 'storm_time' must be >= 0");
      HYBRIMOE_REQUIRE(storm_requests >= 1,
                       "scenario 'storm_requests' must be >= 1");
      break;
  }
}

util::Registry<ScenarioSpec>& scenario_registry() {
  static util::Registry<ScenarioSpec>* registry = [] {
    auto* r = new util::Registry<ScenarioSpec>("scenario");
    {
      ScenarioSpec s;
      s.family = Family::StragglerLink;
      s.accel = 0;
      s.start_step = 8;
      s.end_step = 24;
      s.bandwidth_scale = 0.1;
      r->add("straggler_link", s);
    }
    {
      ScenarioSpec s;
      s.family = Family::DeviceLoss;
      s.accel = 1;
      s.lose_step = 8;
      s.recover_step = 24;
      r->add("device_loss", s);
    }
    {
      ScenarioSpec s;
      s.family = Family::CacheThrash;
      s.start_step = 4;
      s.end_step = 0;  // thrash until the run ends
      s.stride = 3;
      r->add("cache_thrash", s);
    }
    {
      ScenarioSpec s;
      s.family = Family::OverloadStorm;
      s.storm_time = 0.05;
      s.storm_requests = 32;
      r->add("overload_storm", s);
    }
    return r;
  }();
  return *registry;
}

ScenarioSpec parse_scenario_spec(std::string_view text) {
  return scenario_from_json(
      util::json::Parser(text, "scenario spec").parse_document());
}

ScenarioSpec scenario_from_json(const util::json::Value& document) {
  if (!document.is_object())
    util::json::error_at(document, "a scenario must be a JSON object");
  const auto& object = std::get<JsonObject>(document.value);

  // Pass 1: the family is required and seeds the defaults — every other key
  // overrides the family preset, so {"family": "device_loss"} alone is the
  // canonical device-loss scenario.
  ScenarioSpec spec;
  bool family_seen = false;
  for (const auto& [key, value] : object) {
    if (key != "family") continue;
    const std::string& name = as_string(value, key);
    try {
      spec = scenario_registry().get(name);
    } catch (const std::invalid_argument& e) {
      util::json::error(value.context, value.offset, e.what());
    }
    family_seen = true;
  }
  if (!family_seen)
    util::json::error_at(document, "a scenario requires a 'family' key");

  // Pass 2: overrides, each checked against the family's key set.
  for (const auto& [key, value] : object) {
    if (key == "family") continue;
    const bool known =
        std::find(kAllKeys.begin(), kAllKeys.end(), key) != kAllKeys.end();
    if (!known)
      util::json::error(value.context, value.offset,
                        util::unknown_name_message("scenario key", key, kAllKeys));
    if (!key_applies(spec.family, key))
      util::json::error(value.context, value.offset,
                        "key '" + key + "' does not apply to scenario '" +
                            std::string(to_string(spec.family)) + "'");
    if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(as_count(value, key));
    } else if (key == "accel") {
      spec.accel = as_count(value, key);
    } else if (key == "start_step") {
      spec.start_step = as_count(value, key);
    } else if (key == "end_step") {
      spec.end_step = as_count(value, key);
    } else if (key == "bandwidth_scale") {
      spec.bandwidth_scale = as_number(value, key);
    } else if (key == "lose_step") {
      spec.lose_step = as_count(value, key);
    } else if (key == "recover_step") {
      spec.recover_step = as_count(value, key);
    } else if (key == "stride") {
      spec.stride = as_count(value, key);
    } else if (key == "storm_time") {
      spec.storm_time = as_number(value, key);
    } else if (key == "storm_requests") {
      spec.storm_requests = as_count(value, key);
    }
  }
  spec.validate();
  return spec;
}

std::string to_json(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "{";
  FieldWriter w(os);
  w.field("family") << util::json::quote(to_string(spec.family));
  w.field("seed") << spec.seed;
  switch (spec.family) {
    case Family::StragglerLink:
      w.field("accel") << spec.accel;
      w.field("start_step") << spec.start_step;
      w.field("end_step") << spec.end_step;
      w.field("bandwidth_scale") << format_number(spec.bandwidth_scale);
      break;
    case Family::DeviceLoss:
      w.field("accel") << spec.accel;
      w.field("lose_step") << spec.lose_step;
      w.field("recover_step") << spec.recover_step;
      break;
    case Family::CacheThrash:
      w.field("start_step") << spec.start_step;
      w.field("end_step") << spec.end_step;
      w.field("stride") << spec.stride;
      break;
    case Family::OverloadStorm:
      w.field("storm_time") << format_number(spec.storm_time);
      w.field("storm_requests") << spec.storm_requests;
      break;
  }
  os << "}";
  return os.str();
}

ScenarioSpec resolve_scenario(std::string_view arg) {
  HYBRIMOE_REQUIRE(!arg.empty(), "scenario argument must be non-empty");
  if (arg.front() == '{') return parse_scenario_spec(arg);
  if (arg.front() == '@') {
    const std::string path(arg.substr(1));
    std::ifstream in(path);
    HYBRIMOE_REQUIRE(in.good(), "cannot read scenario file '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return parse_scenario_spec(text.str());
  }
  ScenarioSpec spec = scenario_registry().get(arg);
  spec.validate();
  return spec;
}

}  // namespace hybrimoe::scenario
