#pragma once

/// \file warmup.hpp
/// The warmup phase of §IV-A: before serving, HybriMoE (i) measures the
/// machine — CPU/GPU speeds, transfer latency — and (ii) observes expert
/// activation statistics. The fitted profile feeds every scheduling decision;
/// the frequencies seed the cache (and, for the kTransformers baseline, the
/// static pinning).

#include <vector>

#include "hw/calibration.hpp"
#include "moe/expert_id.hpp"
#include "workload/generator.hpp"

namespace hybrimoe::core {

struct WarmupResult {
  hw::MachineProfile fitted_machine;
  /// frequencies[layer][expert] = activation count over the warmup run.
  std::vector<std::vector<double>> expert_frequencies;
};

/// Run the warmup: calibrate against `ground_truth` (noisy measurements) and
/// collect activation statistics from `warmup_steps` decode steps.
[[nodiscard]] WarmupResult run_warmup(const hw::CostModel& ground_truth,
                                      workload::TraceGenerator& generator,
                                      std::size_t warmup_steps, util::Rng& rng,
                                      double measurement_noise = 0.03);

/// The `count` (layer, expert) pairs with the highest warmup frequency —
/// the kTransformers static placement, with shared experts handled
/// separately by the engine. Ties break toward lower ids (deterministic).
[[nodiscard]] std::vector<moe::ExpertId> hottest_experts(
    const std::vector<std::vector<double>>& frequencies, std::size_t count);

}  // namespace hybrimoe::core
