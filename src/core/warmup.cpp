#include "core/warmup.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hybrimoe::core {

WarmupResult run_warmup(const hw::CostModel& ground_truth,
                        workload::TraceGenerator& generator, std::size_t warmup_steps,
                        util::Rng& rng, double measurement_noise) {
  HYBRIMOE_REQUIRE(warmup_steps > 0, "warmup needs at least one step");
  WarmupResult result;
  const auto samples =
      hw::simulate_measurements(ground_truth, rng, /*repetitions=*/8, measurement_noise);
  result.fitted_machine =
      hw::fit_machine_profile(samples, ground_truth.model(), "warmup-fit");
  const auto trace = generator.generate_decode(warmup_steps);
  result.expert_frequencies = workload::activation_frequencies(trace, ground_truth.model());
  return result;
}

std::vector<moe::ExpertId> hottest_experts(
    const std::vector<std::vector<double>>& frequencies, std::size_t count) {
  std::vector<std::pair<double, moe::ExpertId>> ranked;
  for (std::size_t l = 0; l < frequencies.size(); ++l)
    for (std::size_t e = 0; e < frequencies[l].size(); ++e)
      ranked.emplace_back(frequencies[l][e],
                          moe::ExpertId{static_cast<std::uint16_t>(l),
                                        static_cast<std::uint16_t>(e)});
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<moe::ExpertId> out;
  out.reserve(std::min(count, ranked.size()));
  for (std::size_t i = 0; i < ranked.size() && out.size() < count; ++i)
    out.push_back(ranked[i].second);
  return out;
}

}  // namespace hybrimoe::core
