#pragma once

/// \file ablation.hpp
/// Feature toggles for the Table III ablation: HybriMoE's three techniques
/// can be enabled independently on top of the kTransformers-style baseline.
/// All off == the paper's "Baseline"; all on == full HybriMoE.

#include <string>

#include "cache/mrs_policy.hpp"
#include "core/prefetcher.hpp"

namespace hybrimoe::core {

struct HybriMoeConfig {
  /// §IV-B dynamic hybrid scheduling (off: fixed mapping).
  bool hybrid_scheduling = true;
  /// §IV-C impact-driven prefetching (off: none).
  bool impact_prefetching = true;
  /// §IV-D MRS score-aware dynamic caching (off: static frequency pinning).
  bool score_aware_caching = true;

  cache::MrsPolicy::Params mrs;
  ImpactDrivenPrefetcher::Params prefetch;

  [[nodiscard]] static HybriMoeConfig full() { return {}; }
  [[nodiscard]] static HybriMoeConfig baseline() {
    HybriMoeConfig c;
    c.hybrid_scheduling = c.impact_prefetching = c.score_aware_caching = false;
    return c;
  }
  [[nodiscard]] static HybriMoeConfig scheduling_only() {
    HybriMoeConfig c = baseline();
    c.hybrid_scheduling = true;
    return c;
  }
  [[nodiscard]] static HybriMoeConfig prefetching_only() {
    HybriMoeConfig c = baseline();
    c.impact_prefetching = true;
    return c;
  }
  [[nodiscard]] static HybriMoeConfig caching_only() {
    HybriMoeConfig c = baseline();
    c.score_aware_caching = true;
    return c;
  }

  [[nodiscard]] std::string label() const {
    if (hybrid_scheduling && impact_prefetching && score_aware_caching) return "All";
    if (!hybrid_scheduling && !impact_prefetching && !score_aware_caching)
      return "Baseline";
    std::string s = "Baseline";
    if (hybrid_scheduling) s += "+Scheduling";
    if (impact_prefetching) s += "+Prefetching";
    if (score_aware_caching) s += "+Caching";
    return s;
  }
};

}  // namespace hybrimoe::core
