#pragma once

/// \file prefetcher.hpp
/// Inter-layer expert prefetching (§IV-C). While layer l computes, the PCIe
/// link is (partially) idle; a prefetcher spends that idle time uploading
/// experts predicted to be activated by upcoming layers. Predictions reuse
/// the gate networks of those layers evaluated on the current hidden state
/// (Fig. 6) and are provided by the trace.
///
/// Two strategies:
///  * ImpactDrivenPrefetcher — the paper's contribution: before committing a
///    prefetch, *simulate* the target layer's schedule with and without the
///    candidate resident and rank candidates by discounted makespan
///    reduction (on multi-device topologies the counterfactual assumes
///    primary-device residency and link-0 transfer cost — a documented
///    approximation; the engine routes the actual upload to the least-busy
///    link);
///  * NextLayerTopPrefetcher — the AdapMoE-style baseline: upload the
///    highest-score predicted experts of the next layer, no simulation.

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "cache/expert_cache.hpp"
#include "hw/cost_model.hpp"
#include "sched/simulator.hpp"
#include "workload/trace.hpp"

namespace hybrimoe::core {

/// One planned speculative upload.
struct PrefetchDecision {
  moe::ExpertId expert;
  double impact = 0.0;  ///< expected discounted makespan reduction (seconds)
};

/// Strategy interface. `budget_seconds` is the PCIe idle time available
/// while the current layer computes; each decision consumes one expert
/// transfer from it. `extra_resident` lists experts already uploaded outside
/// the cache (prefill-stage transient buffers) that must not be re-fetched.
class Prefetcher {
 public:
  virtual ~Prefetcher() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::vector<PrefetchDecision> plan(
      const workload::ForwardTrace& trace, std::size_t layer, sched::Stage stage,
      const cache::ExpertCache& cache, const hw::CostModel& costs,
      double budget_seconds,
      const std::unordered_set<moe::ExpertId>* extra_resident = nullptr) = 0;
};

/// The paper's impact-driven strategy (§IV-C).
class ImpactDrivenPrefetcher final : public Prefetcher {
 public:
  struct Params {
    std::size_t depth = 3;          ///< lookahead layers (paper: next three)
    double confidence_decay = 0.7;  ///< per-layer prediction-confidence discount
    std::size_t max_per_layer = 8;  ///< cap on uploads hidden under one layer
    void validate() const;
  };

  ImpactDrivenPrefetcher();  // default parameters, hybrid impact options
  /// `impact_options` are the simulation options of the scheduler the
  /// prefetches will eventually benefit (usually HybridScheduler's).
  ImpactDrivenPrefetcher(Params params, sched::SimOptions impact_options);

  [[nodiscard]] std::string name() const override { return "impact-driven"; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

  [[nodiscard]] std::vector<PrefetchDecision> plan(
      const workload::ForwardTrace& trace, std::size_t layer, sched::Stage stage,
      const cache::ExpertCache& cache, const hw::CostModel& costs,
      double budget_seconds,
      const std::unordered_set<moe::ExpertId>* extra_resident = nullptr) override;

 private:
  Params params_;
  sched::SimOptions impact_options_;
};

/// AdapMoE-style baseline: highest predicted scores of the next layer first.
class NextLayerTopPrefetcher final : public Prefetcher {
 public:
  explicit NextLayerTopPrefetcher(std::size_t max_per_layer = 8)
      : max_per_layer_(max_per_layer) {}

  [[nodiscard]] std::string name() const override { return "next-layer-top"; }

  [[nodiscard]] std::vector<PrefetchDecision> plan(
      const workload::ForwardTrace& trace, std::size_t layer, sched::Stage stage,
      const cache::ExpertCache& cache, const hw::CostModel& costs,
      double budget_seconds,
      const std::unordered_set<moe::ExpertId>* extra_resident = nullptr) override;

 private:
  std::size_t max_per_layer_;
};

}  // namespace hybrimoe::core
