#include "core/prefetcher.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/assert.hpp"

namespace hybrimoe::core {

namespace {

/// Demands of a predicted layer routing, with residency taken from the cache
/// plus the prefetches already committed this round.
std::vector<sched::ExpertDemand> predicted_demands(
    const moe::LayerRouting& routing, std::uint16_t layer,
    const cache::ExpertCache& cache,
    const std::unordered_set<moe::ExpertId>& committed,
    const std::unordered_set<moe::ExpertId>* extra_resident) {
  std::vector<sched::ExpertDemand> demands;
  for (std::uint32_t e = 0; e < routing.loads.size(); ++e) {
    if (routing.loads[e] == 0) continue;
    const moe::ExpertId id{layer, static_cast<std::uint16_t>(e)};
    const bool resident = cache.probe(id) || committed.contains(id) ||
                          (extra_resident != nullptr && extra_resident->contains(id));
    demands.push_back({static_cast<std::uint16_t>(e), routing.loads[e], resident});
  }
  return demands;
}

}  // namespace

void ImpactDrivenPrefetcher::Params::validate() const {
  HYBRIMOE_REQUIRE(depth >= 1, "prefetch depth must be >= 1");
  HYBRIMOE_REQUIRE(confidence_decay > 0.0 && confidence_decay <= 1.0,
                   "confidence_decay must be in (0,1]");
  HYBRIMOE_REQUIRE(max_per_layer >= 1, "max_per_layer must be >= 1");
}

ImpactDrivenPrefetcher::ImpactDrivenPrefetcher()
    : ImpactDrivenPrefetcher(Params{}, sched::SimOptions{}) {}

ImpactDrivenPrefetcher::ImpactDrivenPrefetcher(Params params,
                                               sched::SimOptions impact_options)
    : params_(params), impact_options_(impact_options) {
  params_.validate();
  impact_options_.validate();
}

std::vector<PrefetchDecision> ImpactDrivenPrefetcher::plan(
    const workload::ForwardTrace& trace, std::size_t layer, sched::Stage stage,
    const cache::ExpertCache& cache, const hw::CostModel& costs,
    double budget_seconds, const std::unordered_set<moe::ExpertId>* extra_resident) {
  std::vector<PrefetchDecision> decisions;
  if (cache.capacity() == 0) return decisions;
  const double xfer = costs.transfer_time();
  std::unordered_set<moe::ExpertId> committed;

  // `budget_seconds` is the window in which a transfer may *start* (the link
  // keeps running across layer boundaries), so we issue while any window
  // remains; each decision occupies the link for one transfer.
  while (budget_seconds > 0.0 && decisions.size() < params_.max_per_layer) {
    PrefetchDecision best;
    bool found = false;

    for (std::size_t d = 1; d <= params_.depth; ++d) {
      const std::size_t target = layer + d;
      if (target >= trace.num_layers()) break;
      const moe::LayerRouting* pred = trace.prediction(layer, target);
      if (pred == nullptr) continue;

      const auto tgt_layer = static_cast<std::uint16_t>(target);
      const auto demands =
          predicted_demands(*pred, tgt_layer, cache, committed, extra_resident);
      if (demands.empty()) continue;

      // The target layer's dense phase occupies its GPU head just like the
      // engine will schedule it.
      sched::SimOptions sim = impact_options_;
      sim.gpu_busy_until = costs.attention_time(pred->total_tokens) +
                           costs.shared_experts_time(pred->total_tokens);

      const double base =
          sched::simulate_layer(tgt_layer, stage, demands, costs, sim).makespan;
      const double discount = std::pow(params_.confidence_decay, static_cast<double>(d));

      for (const auto& dem : demands) {
        if (dem.cached) continue;
        const double with_expert = sched::makespan_with_extra_cached(
            tgt_layer, stage, demands, dem.expert, costs, sim);
        const double impact = (base - with_expert) * discount;
        if (impact > best.impact) {
          best.expert = {tgt_layer, dem.expert};
          best.impact = impact;
          found = true;
        }
      }
    }

    if (!found || best.impact <= 0.0) break;
    decisions.push_back(best);
    committed.insert(best.expert);
    budget_seconds -= xfer;
  }
  return decisions;
}

std::vector<PrefetchDecision> NextLayerTopPrefetcher::plan(
    const workload::ForwardTrace& trace, std::size_t layer, sched::Stage /*stage*/,
    const cache::ExpertCache& cache, const hw::CostModel& costs,
    double budget_seconds, const std::unordered_set<moe::ExpertId>* extra_resident) {
  std::vector<PrefetchDecision> decisions;
  if (cache.capacity() == 0) return decisions;
  const std::size_t target = layer + 1;
  if (target >= trace.num_layers()) return decisions;
  const moe::LayerRouting* pred = trace.prediction(layer, target);
  if (pred == nullptr) return decisions;

  // Predicted-activated experts ranked by predicted score, misses only.
  std::vector<std::pair<float, std::uint16_t>> ranked;
  for (std::uint32_t e = 0; e < pred->loads.size(); ++e) {
    if (pred->loads[e] == 0) continue;
    const moe::ExpertId id{static_cast<std::uint16_t>(target),
                           static_cast<std::uint16_t>(e)};
    if (cache.probe(id)) continue;
    if (extra_resident != nullptr && extra_resident->contains(id)) continue;
    ranked.emplace_back(pred->scores[e], static_cast<std::uint16_t>(e));
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  const double xfer = costs.transfer_time();
  double budget = budget_seconds;
  for (const auto& [score, e] : ranked) {
    if (budget <= 0.0 || decisions.size() >= max_per_layer_) break;
    decisions.push_back(
        {moe::ExpertId{static_cast<std::uint16_t>(target), e}, static_cast<double>(score)});
    budget -= xfer;
  }
  return decisions;
}

}  // namespace hybrimoe::core
