#include "cache/expert_cache.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace hybrimoe::cache {

ExpertCache::ExpertCache(std::size_t capacity, std::unique_ptr<CachePolicy> policy)
    : capacity_(capacity), policy_(std::move(policy)) {
  HYBRIMOE_REQUIRE(policy_ != nullptr, "ExpertCache requires a policy");
}

std::size_t ExpertCache::capacity_for_ratio(const moe::ModelConfig& model, double ratio) {
  HYBRIMOE_REQUIRE(ratio >= 0.0 && ratio <= 1.0, "cache ratio must be in [0,1]");
  return static_cast<std::size_t>(
      std::llround(ratio * static_cast<double>(model.total_routed_experts())));
}

bool ExpertCache::lookup(moe::ExpertId id) {
  policy_->on_reference(id);
  const bool hit = resident_.contains(id);
  if (hit) {
    ++stats_.hits;
    policy_->on_hit(id);
  } else {
    ++stats_.misses;
  }
  return hit;
}

void ExpertCache::record_miss(moe::ExpertId id) {
  policy_->on_reference(id);
  ++stats_.misses;
}

std::vector<moe::ExpertId> ExpertCache::evictable(
    std::span<const moe::ExpertId> extra_protected) const {
  std::vector<moe::ExpertId> out;
  out.reserve(resident_.size());
  for (const auto& id : resident_) {
    if (pinned_.contains(id)) continue;
    if (std::find(extra_protected.begin(), extra_protected.end(), id) !=
        extra_protected.end())
      continue;
    out.push_back(id);
  }
  // Deterministic candidate order regardless of hash-set iteration order.
  std::sort(out.begin(), out.end());
  return out;
}

InsertResult ExpertCache::insert(moe::ExpertId id,
                                 std::span<const moe::ExpertId> do_not_evict) {
  if (capacity_ == 0) {
    ++stats_.rejected_insertions;
    return {};
  }
  if (resident_.contains(id)) return {.inserted = true, .evicted = std::nullopt};

  InsertResult result;
  if (resident_.size() >= capacity_) {
    const auto candidates = evictable(do_not_evict);
    if (candidates.empty()) {
      ++stats_.rejected_insertions;
      return {};
    }
    const moe::ExpertId victim = policy_->choose_victim(candidates);
    HYBRIMOE_ASSERT(resident_.contains(victim), "policy chose a non-resident victim");
    resident_.erase(victim);
    policy_->on_evict(victim);
    ++stats_.evictions;
    result.evicted = victim;
  }
  resident_.insert(id);
  policy_->on_insert(id);
  ++stats_.insertions;
  result.inserted = true;
  return result;
}

void ExpertCache::insert_pinned(moe::ExpertId id) {
  const InsertResult r = insert(id);
  HYBRIMOE_REQUIRE(r.inserted, "insert_pinned failed: cache exhausted by pinned entries");
  pinned_.insert(id);
}

bool ExpertCache::erase(moe::ExpertId id) {
  if (!resident_.erase(id)) return false;
  pinned_.erase(id);
  policy_->on_evict(id);
  return true;
}

void ExpertCache::update_scores(std::uint16_t layer, std::span<const float> scores,
                                std::size_t top_k) {
  policy_->on_scores(layer, scores, top_k);
}

std::vector<moe::ExpertId> ExpertCache::residents() const {
  std::vector<moe::ExpertId> out(resident_.begin(), resident_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<moe::ExpertId> ExpertCache::peek_victim() {
  const auto candidates = evictable({});
  if (candidates.empty()) return std::nullopt;
  return policy_->choose_victim(candidates);
}

}  // namespace hybrimoe::cache
