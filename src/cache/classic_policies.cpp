#include "cache/classic_policies.hpp"

#include <limits>

#include "util/assert.hpp"

namespace hybrimoe::cache {

namespace {

/// Generic "smallest key wins" scan; `key(id)` must be totally ordered.
template <typename KeyFn>
moe::ExpertId min_by(std::span<const moe::ExpertId> candidates, KeyFn key) {
  HYBRIMOE_REQUIRE(!candidates.empty(), "choose_victim with no candidates");
  moe::ExpertId best = candidates.front();
  auto best_key = key(best);
  for (const auto& id : candidates.subspan(1)) {
    const auto k = key(id);
    if (k < best_key) {
      best_key = k;
      best = id;
    }
  }
  return best;
}

}  // namespace

moe::ExpertId LruPolicy::choose_victim(std::span<const moe::ExpertId> candidates) {
  return min_by(candidates, [&](moe::ExpertId id) {
    const auto it = stamp_.find(id);
    return it != stamp_.end() ? it->second : 0;
  });
}

double LruPolicy::priority(moe::ExpertId id) const {
  const auto it = stamp_.find(id);
  return it != stamp_.end() ? static_cast<double>(it->second) : 0.0;
}

moe::ExpertId LfuPolicy::choose_victim(std::span<const moe::ExpertId> candidates) {
  // Pair (count, recency): least frequent first, oldest first on ties.
  return min_by(candidates, [&](moe::ExpertId id) {
    const auto cit = count_.find(id);
    const auto sit = stamp_.find(id);
    const std::uint64_t c = cit != count_.end() ? cit->second : 0;
    const std::uint64_t s = sit != stamp_.end() ? sit->second : 0;
    return std::pair<std::uint64_t, std::uint64_t>{c, s};
  });
}

double LfuPolicy::priority(moe::ExpertId id) const {
  const auto it = count_.find(id);
  return it != count_.end() ? static_cast<double>(it->second) : 0.0;
}

moe::ExpertId FifoPolicy::choose_victim(std::span<const moe::ExpertId> candidates) {
  return min_by(candidates, [&](moe::ExpertId id) {
    const auto it = order_.find(id);
    return it != order_.end() ? it->second : 0;
  });
}

double FifoPolicy::priority(moe::ExpertId id) const {
  const auto it = order_.find(id);
  return it != order_.end() ? static_cast<double>(it->second) : 0.0;
}

moe::ExpertId RandomPolicy::choose_victim(std::span<const moe::ExpertId> candidates) {
  HYBRIMOE_REQUIRE(!candidates.empty(), "choose_victim with no candidates");
  return candidates[static_cast<std::size_t>(rng_.uniform_index(candidates.size()))];
}

BeladyPolicy::BeladyPolicy(std::vector<moe::ExpertId> reference_string) {
  for (std::size_t pos = 0; pos < reference_string.size(); ++pos)
    positions_[reference_string[pos]].push_back(pos);
}

void BeladyPolicy::on_reference(moe::ExpertId id) {
  auto it = positions_.find(id);
  HYBRIMOE_REQUIRE(it != positions_.end() && !it->second.empty() &&
                       it->second.front() == clock_,
                   "Belady reference stream diverged from the provided string");
  it->second.pop_front();
  ++clock_;
}

std::size_t BeladyPolicy::next_use(moe::ExpertId id) const {
  const auto it = positions_.find(id);
  if (it == positions_.end() || it->second.empty())
    return std::numeric_limits<std::size_t>::max();
  return it->second.front();
}

moe::ExpertId BeladyPolicy::choose_victim(std::span<const moe::ExpertId> candidates) {
  HYBRIMOE_REQUIRE(!candidates.empty(), "choose_victim with no candidates");
  moe::ExpertId best = candidates.front();
  std::size_t best_next = next_use(best);
  for (const auto& id : candidates.subspan(1)) {
    const std::size_t n = next_use(id);
    if (n > best_next) {  // farthest next use (or never used again) evicted
      best_next = n;
      best = id;
    }
  }
  return best;
}

}  // namespace hybrimoe::cache
