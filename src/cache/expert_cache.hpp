#pragma once

/// \file expert_cache.hpp
/// The accelerator expert cache: a bounded set of (layer, expert) entries
/// managed by a pluggable replacement policy. One ExpertCache models one
/// device's residency; a multi-accelerator engine owns one cache per device
/// (with MRS score tables shared across them — see MrsPolicy::share_table)
/// and splits the capacity budget by the topology's cache shares. Capacity
/// is counted in routed experts — the paper's "GPU expert cache ratio" of r
/// means total capacity = r * num_layers * num_routed_experts. Shared
/// experts are permanent GPU residents outside this budget; *pinned* entries
/// (kTransformers-style static placement) live inside the budget but are
/// never evicted.

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "cache/policy.hpp"
#include "moe/model_config.hpp"

namespace hybrimoe::cache {

/// Hit/miss counters; hit_rate() is the paper's Fig. 9 metric.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  std::size_t rejected_insertions = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::size_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
  void reset() noexcept { *this = CacheStats{}; }
};

/// Outcome of an insertion attempt.
struct InsertResult {
  bool inserted = false;
  std::optional<moe::ExpertId> evicted;
};

class ExpertCache {
 public:
  /// `capacity` in routed-expert slots; `policy` must be non-null.
  ExpertCache(std::size_t capacity, std::unique_ptr<CachePolicy> policy);

  /// Capacity from the paper's cache ratio for a given model.
  [[nodiscard]] static std::size_t capacity_for_ratio(const moe::ModelConfig& model,
                                                      double ratio);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return resident_.size(); }
  [[nodiscard]] bool full() const noexcept { return resident_.size() >= capacity_; }
  [[nodiscard]] bool contains(moe::ExpertId id) const {
    return resident_.contains(id);
  }
  [[nodiscard]] bool is_pinned(moe::ExpertId id) const { return pinned_.contains(id); }

  [[nodiscard]] CachePolicy& policy() noexcept { return *policy_; }
  [[nodiscard]] const CachePolicy& policy() const noexcept { return *policy_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  /// Record a lookup for an expert the current layer activated. Returns true
  /// on hit. Updates policy recency/frequency state and the statistics.
  bool lookup(moe::ExpertId id);

  /// Record a miss without probing residency — the multi-device engine
  /// resolves residency across per-device caches first, then charges the
  /// miss to exactly one cache. Equivalent to a lookup() that misses.
  void record_miss(moe::ExpertId id);

  /// Non-recording residency probe (used by schedulers building demands
  /// after lookups were already counted).
  [[nodiscard]] bool probe(moe::ExpertId id) const { return resident_.contains(id); }

  /// Make `id` resident, evicting a policy-chosen victim if full. Entries in
  /// `do_not_evict` are treated as pinned for this call (e.g. experts the
  /// current layer still needs). Fails — without eviction — when every
  /// resident entry is protected.
  InsertResult insert(moe::ExpertId id, std::span<const moe::ExpertId> do_not_evict = {});

  /// Insert and pin (static placement). Throws if the cache is full of
  /// pinned entries.
  void insert_pinned(moe::ExpertId id);

  /// Remove a specific entry (used by tests and invalidation paths).
  bool erase(moe::ExpertId id);

  /// Forward one layer's routing scores to the policy (Eq. 3 feed).
  void update_scores(std::uint16_t layer, std::span<const float> scores,
                     std::size_t top_k);

  /// Snapshot of resident ids (unspecified order).
  [[nodiscard]] std::vector<moe::ExpertId> residents() const;

  /// The entry the policy would evict next (nullopt when nothing evictable).
  [[nodiscard]] std::optional<moe::ExpertId> peek_victim();

 private:
  [[nodiscard]] std::vector<moe::ExpertId> evictable(
      std::span<const moe::ExpertId> extra_protected) const;

  std::size_t capacity_;
  std::unique_ptr<CachePolicy> policy_;
  std::unordered_set<moe::ExpertId> resident_;
  std::unordered_set<moe::ExpertId> pinned_;
  CacheStats stats_;
};

}  // namespace hybrimoe::cache
