#pragma once

/// \file policy.hpp
/// Replacement-policy interface for the GPU expert cache, plus the classic
/// policies the paper compares against. The paper's own policy — MRS,
/// Minus Recent Score (§IV-D) — lives in mrs_policy.hpp.
///
/// The cache notifies its policy of every reference, insertion and eviction;
/// score-aware policies additionally receive the full routing-score vector of
/// each layer each iteration (Eq. 3's `s`).

#include <cstdint>
#include <span>
#include <string>

#include "moe/expert_id.hpp"

namespace hybrimoe::cache {

/// Replacement policy. Implementations must be deterministic given the same
/// event sequence (RandomPolicy is deterministic via its seeded Rng).
class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Every cache lookup (hit or miss) in reference order. Default: no-op.
  /// Belady uses this to advance its oracle clock.
  virtual void on_reference(moe::ExpertId /*id*/) {}

  /// A lookup hit a resident entry.
  virtual void on_hit(moe::ExpertId id) = 0;

  /// `id` became resident (on-demand transfer, prefetch or seeding).
  virtual void on_insert(moe::ExpertId id) = 0;

  /// `id` was evicted.
  virtual void on_evict(moe::ExpertId id) = 0;

  /// Routing scores of `layer` for the current iteration: `scores[e]` is the
  /// full-softmax score of expert e; `top_k` is the model's activation count.
  /// Only score-aware policies care. Default: no-op.
  virtual void on_scores(std::uint16_t /*layer*/, std::span<const float> /*scores*/,
                         std::size_t /*top_k*/) {}

  /// Pick the entry to evict among `candidates` (non-empty, all resident and
  /// unpinned). May mutate internal bookkeeping.
  [[nodiscard]] virtual moe::ExpertId choose_victim(
      std::span<const moe::ExpertId> candidates) = 0;

  /// Retention priority of an entry — larger means "keep". Only meaningful
  /// relative to the same policy instance; the prefetcher uses it for
  /// admission decisions. Default 0.
  [[nodiscard]] virtual double priority(moe::ExpertId /*id*/) const { return 0.0; }
};

}  // namespace hybrimoe::cache
