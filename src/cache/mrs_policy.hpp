#pragma once

/// \file mrs_policy.hpp
/// The paper's score-aware replacement policy (§IV-D): Minus Recent Score.
///
/// Every iteration, each layer's routing produces a full-softmax score vector
/// `s`. MRS keeps an exponentially averaged priority per (layer, expert):
///
///     S  =  alpha * TopP(s) + (1 - alpha) * S                       (Eq. 3)
///
/// where TopP zeroes every score outside the iteration's top `p` — the paper
/// observes (Fig. 3b) that reuse probability is flat below roughly the top
/// 2K scores, so only those carry signal; by default p = 2 * top_k.
/// Eviction removes the resident entry with the smallest S.

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "cache/policy.hpp"

namespace hybrimoe::cache {

class MrsPolicy final : public CachePolicy {
 public:
  /// Tunable parameters of Eq. 3.
  struct Params {
    double alpha = 0.3;          ///< EMA coefficient of Eq. 3
    std::size_t top_p_factor = 2; ///< p = top_p_factor * top_k
    /// Throws std::invalid_argument on out-of-range parameters.
    void validate() const;
  };

  MrsPolicy();  // default parameters
  explicit MrsPolicy(Params params);

  /// Create a policy instance backed by this instance's score table. The
  /// per-device expert caches of one engine each own a policy but share one
  /// Eq. 3 table — routing scores are device-independent, so a single score
  /// feed (to the primary cache) keeps every device's eviction ranking
  /// consistent. Sharing across engines is not supported.
  [[nodiscard]] std::unique_ptr<MrsPolicy> share_table() const;

  [[nodiscard]] std::string name() const override { return "MRS"; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

  void on_hit(moe::ExpertId) override {}
  void on_insert(moe::ExpertId) override {}
  void on_evict(moe::ExpertId) override {}

  /// Apply Eq. 3 for one layer's score vector.
  void on_scores(std::uint16_t layer, std::span<const float> scores,
                 std::size_t top_k) override;

  [[nodiscard]] moe::ExpertId choose_victim(
      std::span<const moe::ExpertId> candidates) override;

  /// Current S of an entry (0 when never scored).
  [[nodiscard]] double score(moe::ExpertId id) const;
  [[nodiscard]] double priority(moe::ExpertId id) const override { return score(id); }

 private:
  using ScoreTable = std::unordered_map<moe::ExpertId, double>;
  MrsPolicy(Params params, std::shared_ptr<ScoreTable> table);

  Params params_;
  /// Shared across per-device instances created via share_table().
  std::shared_ptr<ScoreTable> scores_;
};

}  // namespace hybrimoe::cache
