#pragma once

/// \file classic_policies.hpp
/// The textbook replacement policies the paper's evaluation compares MRS
/// against (LRU in Fig. 9, LFU as the kTransformers default in Table I),
/// plus FIFO / Random controls and a Belady oracle upper bound used by the
/// ablation benches.

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "cache/policy.hpp"
#include "util/rng.hpp"

namespace hybrimoe::cache {

/// Least Recently Used: evicts the resident entry with the oldest access.
class LruPolicy final : public CachePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "LRU"; }
  void on_hit(moe::ExpertId id) override { stamp_[id] = ++clock_; }
  void on_insert(moe::ExpertId id) override { stamp_[id] = ++clock_; }
  void on_evict(moe::ExpertId id) override { stamp_.erase(id); }
  [[nodiscard]] moe::ExpertId choose_victim(
      std::span<const moe::ExpertId> candidates) override;
  [[nodiscard]] double priority(moe::ExpertId id) const override;

 private:
  std::unordered_map<moe::ExpertId, std::uint64_t> stamp_;
  std::uint64_t clock_ = 0;
};

/// Least Frequently Used with LRU tie-breaking (the kTransformers default).
class LfuPolicy final : public CachePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "LFU"; }
  void on_hit(moe::ExpertId id) override {
    ++count_[id];
    stamp_[id] = ++clock_;
  }
  void on_insert(moe::ExpertId id) override {
    ++count_[id];  // frequency persists across residency periods
    stamp_[id] = ++clock_;
  }
  void on_evict(moe::ExpertId id) override { stamp_.erase(id); }
  [[nodiscard]] moe::ExpertId choose_victim(
      std::span<const moe::ExpertId> candidates) override;
  [[nodiscard]] double priority(moe::ExpertId id) const override;

 private:
  std::unordered_map<moe::ExpertId, std::uint64_t> count_;
  std::unordered_map<moe::ExpertId, std::uint64_t> stamp_;
  std::uint64_t clock_ = 0;
};

/// First-In First-Out: insertion order only.
class FifoPolicy final : public CachePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "FIFO"; }
  void on_hit(moe::ExpertId) override {}
  void on_insert(moe::ExpertId id) override { order_[id] = ++clock_; }
  void on_evict(moe::ExpertId id) override { order_.erase(id); }
  [[nodiscard]] moe::ExpertId choose_victim(
      std::span<const moe::ExpertId> candidates) override;
  [[nodiscard]] double priority(moe::ExpertId id) const override;

 private:
  std::unordered_map<moe::ExpertId, std::uint64_t> order_;
  std::uint64_t clock_ = 0;
};

/// Uniform-random victim (seeded, deterministic control baseline).
class RandomPolicy final : public CachePolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 7) : rng_(seed) {}
  [[nodiscard]] std::string name() const override { return "Random"; }
  void on_hit(moe::ExpertId) override {}
  void on_insert(moe::ExpertId) override {}
  void on_evict(moe::ExpertId) override {}
  [[nodiscard]] moe::ExpertId choose_victim(
      std::span<const moe::ExpertId> candidates) override;

 private:
  util::Rng rng_;
};

/// Belady's optimal offline policy: evicts the resident entry whose next
/// reference is farthest in the future. Requires the full reference string up
/// front; on_reference advances the oracle clock. Used as the hit-rate upper
/// bound in the cache ablation bench.
class BeladyPolicy final : public CachePolicy {
 public:
  explicit BeladyPolicy(std::vector<moe::ExpertId> reference_string);
  [[nodiscard]] std::string name() const override { return "Belady"; }
  void on_reference(moe::ExpertId id) override;
  void on_hit(moe::ExpertId) override {}
  void on_insert(moe::ExpertId) override {}
  void on_evict(moe::ExpertId) override {}
  [[nodiscard]] moe::ExpertId choose_victim(
      std::span<const moe::ExpertId> candidates) override;

 private:
  /// Next position of `id` strictly after the current clock.
  [[nodiscard]] std::size_t next_use(moe::ExpertId id) const;

  std::unordered_map<moe::ExpertId, std::deque<std::size_t>> positions_;
  std::size_t clock_ = 0;
};

}  // namespace hybrimoe::cache
