#include "cache/mrs_policy.hpp"

#include <algorithm>
#include <vector>

#include "util/assert.hpp"

namespace hybrimoe::cache {

void MrsPolicy::Params::validate() const {
  HYBRIMOE_REQUIRE(alpha > 0.0 && alpha <= 1.0, "MRS alpha must be in (0,1]");
  HYBRIMOE_REQUIRE(top_p_factor >= 1, "MRS top_p_factor must be >= 1");
}

MrsPolicy::MrsPolicy() : MrsPolicy(Params{}) {}

MrsPolicy::MrsPolicy(Params params)
    : MrsPolicy(params, std::make_shared<ScoreTable>()) {}

MrsPolicy::MrsPolicy(Params params, std::shared_ptr<ScoreTable> table)
    : params_(params), scores_(std::move(table)) {
  params_.validate();
}

std::unique_ptr<MrsPolicy> MrsPolicy::share_table() const {
  return std::unique_ptr<MrsPolicy>(new MrsPolicy(params_, scores_));
}

void MrsPolicy::on_scores(std::uint16_t layer, std::span<const float> scores,
                          std::size_t top_k) {
  HYBRIMOE_REQUIRE(top_k > 0, "on_scores requires top_k > 0");
  const std::size_t p = std::min(scores.size(), params_.top_p_factor * top_k);

  // Threshold of the iteration's top-p scores (TopP of Eq. 3).
  std::vector<float> sorted(scores.begin(), scores.end());
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(p - 1), sorted.end(),
                   std::greater<>());
  const float threshold = sorted[p - 1];

  // Entries strictly above the threshold are always in; ties at the
  // threshold are admitted in index order until exactly p entries are kept.
  const auto above = static_cast<std::size_t>(
      std::count_if(scores.begin(), scores.end(),
                    [threshold](float s) { return s > threshold; }));
  std::size_t tie_budget = p - above;
  for (std::size_t e = 0; e < scores.size(); ++e) {
    bool in_top_p = scores[e] > threshold;
    if (!in_top_p && scores[e] == threshold && tie_budget > 0) {
      in_top_p = true;
      --tie_budget;
    }
    const double contribution = in_top_p ? static_cast<double>(scores[e]) : 0.0;
    const moe::ExpertId id{layer, static_cast<std::uint16_t>(e)};
    auto [it, inserted] = scores_->try_emplace(id, 0.0);
    it->second = params_.alpha * contribution + (1.0 - params_.alpha) * it->second;
  }
}

moe::ExpertId MrsPolicy::choose_victim(std::span<const moe::ExpertId> candidates) {
  HYBRIMOE_REQUIRE(!candidates.empty(), "choose_victim with no candidates");
  moe::ExpertId best = candidates.front();
  double best_score = score(best);
  for (const auto& id : candidates.subspan(1)) {
    const double s = score(id);
    if (s < best_score) {
      best_score = s;
      best = id;
    }
  }
  return best;
}

double MrsPolicy::score(moe::ExpertId id) const {
  const auto it = scores_->find(id);
  return it != scores_->end() ? it->second : 0.0;
}

}  // namespace hybrimoe::cache
