#pragma once

/// \file event.hpp
/// The discrete-event vocabulary of the serving simulator. An Event is one
/// timestamped happening in a serving run — a request arriving, a prefill
/// chunk or decode step completing, a transfer batch landing, a request
/// finishing, a KV-pressure eviction — and the EventHeap orders them by
/// (time, seq): time first, then the monotone sequence number assigned at
/// push. The seq tie-break makes simultaneous events (every completion of
/// one composed step, a burst of arrivals sharing a timestamp) pop in
/// exactly their scheduling order, so a run is deterministic down to the
/// last bit without any hidden iteration-order dependence.
///
/// The heap is a value type with no engine dependencies: the sim core
/// (sim_core.hpp) drives it, tests drive it directly, and StepHook
/// implementations observe the popped stream via on_sim_event.

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace hybrimoe::serve_sim {

/// What happened. The six kinds cover the full lifecycle the serving core
/// models; TransferComplete and Evict are accounting events (the state
/// change is applied when they are posted), the rest drive control flow.
enum class EventKind : std::uint8_t {
  Arrival,           ///< a request reaches the admission queue
  PrefillChunk,      ///< one prefill chunk of a composed step completed
  DecodeStep,        ///< one request's decode token of a composed step completed
  TransferComplete,  ///< the step's expert uploads landed (payload = count)
  Finish,            ///< a request went terminal; its traces can be released
  Evict,             ///< KV pressure pushed an admitted request back to the queue
};

/// Printable event-kind name ("arrival", "prefill_chunk", ...).
[[nodiscard]] constexpr const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::Arrival: return "arrival";
    case EventKind::PrefillChunk: return "prefill_chunk";
    case EventKind::DecodeStep: return "decode_step";
    case EventKind::TransferComplete: return "transfer_complete";
    case EventKind::Finish: return "finish";
    case EventKind::Evict: return "evict";
  }
  return "?";
}

/// One timestamped happening. `request` indexes the run's (arrival, id)-
/// sorted request vector; `payload` is kind-specific (TransferComplete: the
/// number of expert uploads the step performed; 0 otherwise).
struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< push order — the deterministic tie-break
  EventKind kind = EventKind::Arrival;
  std::size_t request = 0;
  std::size_t payload = 0;

  bool operator==(const Event&) const = default;
};

/// Min-heap over (time, seq): the earliest event pops first, and events
/// sharing a timestamp pop in the order they were pushed. seq is assigned by
/// the heap itself — callers cannot create ties, so determinism is a
/// property of the type, not a convention.
class EventHeap {
 public:
  /// \brief Schedule an event; the heap stamps the next sequence number.
  /// Returns the stamped event (the caller may want the seq for logging).
  Event push(EventKind kind, double time, std::size_t request,
             std::size_t payload = 0) {
    const Event event{time, next_seq_++, kind, request, payload};
    heap_.push(event);
    return event;
  }

  /// \brief The earliest (time, seq) event. Precondition: !empty().
  [[nodiscard]] const Event& top() const { return heap_.top(); }

  /// \brief Remove and return the earliest event. Precondition: !empty().
  Event pop() {
    Event event = heap_.top();
    heap_.pop();
    return event;
  }

  /// \brief True when no events are scheduled.
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  /// \brief Number of scheduled events.
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  /// \brief Total events ever pushed (== the next seq to be assigned).
  [[nodiscard]] std::uint64_t pushed() const noexcept { return next_seq_; }

 private:
  struct After {
    [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, After> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hybrimoe::serve_sim
