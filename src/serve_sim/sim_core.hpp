#pragma once

/// \file sim_core.hpp
/// The discrete-event serving core. SimCore replays a request stream as a
/// timestamped event simulation: request arrivals, per-part step completions
/// (one PrefillChunk or DecodeStep event per composed batch part), transfer
/// landings, finishes, and KV-pressure evictions all live on one EventHeap
/// ordered by (time, seq). The loop alternates two moves — *drain* every
/// event at or before the clock, then *dispatch* a composed step through
/// OffloadEngine::run_step when none is in flight — and the drain/dispatch
/// order reproduces the legacy lockstep ServeEngine loop operation for
/// operation, so a run with KV accounting disabled is bit-identical to the
/// pre-event engine (the regression test byte-diffs hybrimoe_run artifacts).
///
/// What the event formulation adds over the lockstep loop:
///  * KV-cache admission control (serve_sim/kv.hpp) — reserve-on-admit,
///    release-on-terminal, with queue / reject / evict-and-requeue policies
///    layered on the existing tier machinery;
///  * an event feed (StepHook::on_sim_event) scenario drivers record instead
///    of inferring timelines from per-step deltas;
///  * TraceSource-driven lazy materialisation, bounding trace memory by the
///    batch size so one run can carry 10^5-10^6 requests (bench/load_sweep).

#include <cstddef>
#include <optional>
#include <vector>

#include "runtime/serve_engine.hpp"
#include "serve_sim/event.hpp"
#include "serve_sim/kv.hpp"
#include "serve_sim/trace_source.hpp"

namespace hybrimoe::serve_sim {

/// One serving run as a discrete-event simulation. A SimCore is single-use:
/// construct, call run() once, read the metrics. The caller owns the request
/// vector (sorted by (arrival, id), every request Queued with cursors at
/// zero) and the trace source decides whether traces are pre-materialised or
/// produced lazily at admission.
class SimCore {
 public:
  /// \brief Bind the run to its engine, validated options, and trace source
  /// (all must outlive the run).
  SimCore(runtime::OffloadEngine& engine, const runtime::ServeOptions& options,
          TraceSource& source);

  /// \brief Serve the stream to completion and return its metrics. Asserts
  /// every request ends terminal and (when KV accounting is enabled) every
  /// reservation was returned.
  [[nodiscard]] runtime::ServeMetrics run(std::vector<runtime::Request>& requests);

 private:
  void handle(const Event& event);
  void on_arrival(const Event& event);
  void on_prefill_chunk(const Event& event);
  void on_decode_step(const Event& event);
  void on_finish(const Event& event);
  void step_event_done();
  /// Admission + composition + run_step; false when nothing could run.
  bool try_dispatch();
  void admit_waiting();
  /// Evict strictly lower-tier active requests (latest admitted first) until
  /// `incoming` fits; false (and no state change) if the evictable mass is
  /// insufficient.
  bool evict_for(const runtime::Request& incoming);
  void evict_one(runtime::Request& victim);
  void reject(runtime::Request& r);

  [[nodiscard]] std::size_t index_of(const runtime::Request* r) const;
  [[nodiscard]] double footprint(const runtime::Request& r) const;
  [[nodiscard]] const runtime::TierPolicy& tier_of(const runtime::Request* r) const;

  runtime::OffloadEngine& engine_;
  const runtime::ServeOptions& options_;
  TraceSource& source_;

  std::vector<runtime::Request>* requests_ = nullptr;
  runtime::ServeMetrics metrics_;
  EventHeap heap_;
  double clock_ = 0.0;
  std::size_t terminal_ = 0;  // finished + rejected
  bool any_decode_ = false;

  std::vector<runtime::Request*> waiting_;  // surfaced, unadmitted; (arrival, id)
  std::vector<runtime::Request*> active_;   // admission order == decode order
  std::vector<const workload::ForwardTrace*> parts_;
  std::vector<runtime::Request*> decoding_;
  // Running step-latency estimates for the preemption decision: the latest
  // observed latency of a step with / without a prefill chunk. Negative
  // until observed — no preemption before both regimes have been seen.
  double est_prefill_ = -1.0;
  double est_decode_ = -1.0;

  // The step in flight, if any: completion events outstanding and the
  // summary after_step receives once the last one lands.
  bool step_in_flight_ = false;
  std::size_t step_events_remaining_ = 0;
  runtime::StepInfo step_info_;

  std::optional<KvAccountant> accountant_;
  std::size_t kv_rejected_ = 0;
  std::size_t kv_evictions_ = 0;
  // Cumulative serving-state counters snapshotted into every StepInfo.
  std::size_t rejected_total_ = 0;
  std::size_t preemptions_total_ = 0;
};

}  // namespace hybrimoe::serve_sim
