#include "serve_sim/kv.hpp"

#include <sstream>
#include <variant>
#include <vector>

#include "hw/topology.hpp"
#include "moe/model_config.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/registry.hpp"

namespace hybrimoe::serve_sim {

AdmissionMode admission_from_name(std::string_view name) {
  if (name == "queue") return AdmissionMode::Queue;
  if (name == "reject") return AdmissionMode::Reject;
  if (name == "evict") return AdmissionMode::EvictRequeue;
  static const std::vector<std::string> kNames{"evict", "queue", "reject"};
  throw std::invalid_argument(
      util::unknown_name_message("admission mode", name, kNames));
}

void KvSpec::validate() const {
  HYBRIMOE_REQUIRE(budget_mb >= 0.0, "kv 'budget_mb' must be non-negative");
  HYBRIMOE_REQUIRE(bytes_per_token >= 0.0,
                   "kv 'bytes_per_token' must be non-negative");
}

double model_kv_bytes_per_token(const moe::ModelConfig& model) {
  // K and V, one d_model row each per layer, fp16.
  return 2.0 * static_cast<double>(model.num_layers) *
         static_cast<double>(model.routed.d_model) * 2.0;
}

double derived_kv_budget_mb(const hw::Topology& topology) {
  topology.validate();
  double share_total = 0.0;
  for (const auto& accel : topology.accelerators) share_total += accel.cache_share;
  const double mean_share =
      share_total / static_cast<double>(topology.num_accelerators());
  double budget = 0.0;
  for (const auto& accel : topology.accelerators)
    budget += kKvMbPerAccelerator * (accel.cache_share / mean_share);
  return budget;
}

KvSpec kv_from_json(const util::json::Value& value) {
  using util::json::as_number;
  using util::json::as_string;
  if (!value.is_object())
    util::json::error_at(value, "'kv' must be an object");
  static const std::vector<std::string> kKeys{"admission", "budget_mb",
                                             "bytes_per_token"};
  KvSpec spec;
  for (const auto& [key, v] : std::get<util::json::Object>(value.value)) {
    if (key == "budget_mb") {
      spec.budget_mb = as_number(v, key);
    } else if (key == "bytes_per_token") {
      spec.bytes_per_token = as_number(v, key);
    } else if (key == "admission") {
      try {
        spec.mode = admission_from_name(as_string(v, key));
      } catch (const std::invalid_argument& e) {
        util::json::error_at(v, e.what());
      }
    } else {
      util::json::error_at(v, util::unknown_name_message("kv option", key, kKeys));
    }
  }
  try {
    spec.validate();
  } catch (const std::invalid_argument& e) {
    util::json::error_at(value, e.what());
  }
  return spec;
}

KvSpec parse_kv_spec(std::string_view text) {
  return kv_from_json(util::json::Parser(text, "kv spec").parse_document());
}

std::string to_json(const KvSpec& spec) {
  std::ostringstream os;
  os << "{";
  util::json::FieldWriter w(os);
  w.field("budget_mb") << util::json::format_number(spec.budget_mb);
  if (spec.bytes_per_token > 0.0)
    w.field("bytes_per_token") << util::json::format_number(spec.bytes_per_token);
  w.field("admission") << util::json::quote(to_string(spec.mode));
  os << "}";
  return os.str();
}

KvAccountant::KvAccountant(const KvSpec& spec) : budget_(spec.budget_bytes()) {
  spec.validate();
  HYBRIMOE_REQUIRE(spec.enabled(),
                   "a KV accountant needs an enabled spec (budget_mb > 0)");
  HYBRIMOE_REQUIRE(spec.bytes_per_token > 0.0,
                   "KV accounting needs a resolved 'bytes_per_token' (derive "
                   "it from the model with model_kv_bytes_per_token)");
}

void KvAccountant::reserve(double bytes) {
  HYBRIMOE_ASSERT(bytes >= 0.0, "negative KV reservation");
  HYBRIMOE_ASSERT(fits(bytes), "KV reservation exceeds the budget");
  used_ += bytes;
  if (used_ > peak_) peak_ = used_;
}

void KvAccountant::release(double bytes) {
  HYBRIMOE_ASSERT(bytes >= 0.0, "negative KV release");
  HYBRIMOE_ASSERT(bytes <= used_ + 1e-9, "releasing more KV than reserved");
  used_ -= bytes;
  if (used_ < 0.0) used_ = 0.0;
}

}  // namespace hybrimoe::serve_sim
