#pragma once

/// \file kv.hpp
/// KV-cache memory accounting for the serving simulator. Every admitted
/// request reserves its full-context KV footprint — (prompt + decode budget)
/// tokens x bytes_per_token — against a budget (explicit, or derived from
/// the run's topology), and the admission policy decides what happens under
/// pressure:
///
///  * queue  — the head-of-queue request waits until enough KV frees (the
///    default: nothing is lost, latency absorbs the pressure);
///  * reject — a request that cannot fit the moment it would be admitted is
///    turned away (load shedding: tail latency is protected, goodput pays);
///  * evict  — strictly lower-tier active requests are evicted (latest
///    admitted first) and requeued with their progress discarded until the
///    incoming request fits; if the evictable mass is insufficient the
///    request waits as under `queue`.
///
/// Requests whose footprint exceeds the whole budget can never be scheduled
/// and are rejected at arrival regardless of mode — a near-zero budget
/// rejects every request outright, while an exact-fit request is admitted
/// (the comparison is <=). The KvSpec grammar rides the same JSON subset as
/// StackSpec ({"budget_mb": 64, "bytes_per_token": 2048, "admission":
/// "evict"}); unknown keys and unknown mode names fail with a did-you-mean
/// error, and parse(to_json(s)) == s for every valid spec.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hybrimoe::util::json {
/// Forward declaration (util/json.hpp) — keeps the JSON dep out of the header.
struct Value;
}

namespace hybrimoe::hw {
/// Forward declaration (hw/topology.hpp) — budgets derive from device VRAM.
struct Topology;
}
namespace hybrimoe::moe {
/// Forward declaration (moe/model_config.hpp) — per-token bytes derive from it.
struct ModelConfig;
}

namespace hybrimoe::serve_sim {

/// What admission does when a request's KV reservation does not fit.
enum class AdmissionMode : std::uint8_t { Queue, Reject, EvictRequeue };

/// Printable admission-mode name ("queue", "reject", "evict").
[[nodiscard]] constexpr const char* to_string(AdmissionMode m) noexcept {
  switch (m) {
    case AdmissionMode::Queue: return "queue";
    case AdmissionMode::Reject: return "reject";
    case AdmissionMode::EvictRequeue: return "evict";
  }
  return "?";
}

/// Name -> AdmissionMode ("queue" / "reject" / "evict"); throws
/// std::invalid_argument with a did-you-mean suggestion on unknown names.
[[nodiscard]] AdmissionMode admission_from_name(std::string_view name);

/// Declarative KV-accounting configuration. Disabled by default
/// (budget_mb == 0): the serving loop then takes the accounting-free path
/// and stays bit-identical to the pre-KV engine.
struct KvSpec {
  /// Total KV budget in MB (1e6 bytes). 0 = accounting disabled.
  double budget_mb = 0.0;
  /// Per-token KV footprint in bytes. 0 = derive from the model at the call
  /// site (model_kv_bytes_per_token); the sim core requires it resolved.
  double bytes_per_token = 0.0;
  /// Policy under pressure (see the file comment).
  AdmissionMode mode = AdmissionMode::Queue;

  bool operator==(const KvSpec&) const = default;

  /// True when accounting is active (a positive budget was configured).
  [[nodiscard]] bool enabled() const noexcept { return budget_mb > 0.0; }
  /// The budget in bytes (budget_mb is the canonical round-tripped field).
  [[nodiscard]] double budget_bytes() const noexcept { return budget_mb * 1e6; }

  /// \brief Throws std::invalid_argument on negative fields or an enabled
  /// budget without a resolvable per-token footprint.
  void validate() const;
};

/// \brief Per-token KV footprint of a model in bytes: 2 tensors (K and V) x
/// num_layers x d_model x 2 bytes (fp16) — the standard dense-attention KV
/// row the memory-constrained-throughput literature budgets against.
[[nodiscard]] double model_kv_bytes_per_token(const moe::ModelConfig& model);

/// KV headroom one accelerator of the default profile contributes to the
/// derived budget, in MB: the HBM slice left for KV after weights and
/// activations on a 48 GB A6000-class card at the paper's 4-bit deployment.
inline constexpr double kKvMbPerAccelerator = 4096.0;

/// \brief Topology-derived KV budget in MB: every accelerator contributes
/// kKvMbPerAccelerator scaled by its cache_share relative to the mean share
/// (so an accelerator carrying twice the cache share also carries twice the
/// KV headroom, and N identical devices contribute N x kKvMbPerAccelerator).
[[nodiscard]] double derived_kv_budget_mb(const hw::Topology& topology);

/// \brief Parse the KvSpec JSON grammar ({"budget_mb": ..,
/// "bytes_per_token": .., "admission": ".."}). Throws std::invalid_argument
/// with the offset and a did-you-mean suggestion on unknown keys/modes.
[[nodiscard]] KvSpec parse_kv_spec(std::string_view text);

/// \brief Build a KvSpec from an already-parsed JSON object — the entry
/// point for grammars that embed KV sections (StackSpec's "kv" key).
[[nodiscard]] KvSpec kv_from_json(const util::json::Value& value);

/// \brief Canonical JSON form; parse_kv_spec(to_json(s)) == s.
[[nodiscard]] std::string to_json(const KvSpec& spec);

/// Runtime ledger for one serving run: reservations against the budget,
/// plus the counters the metrics report (peak usage, rejects, evictions).
/// Pure bookkeeping — the admission *policy* lives in the sim core.
class KvAccountant {
 public:
  /// \brief Bind the ledger to a validated, enabled spec's budget.
  explicit KvAccountant(const KvSpec& spec);

  /// \brief True when a reservation of `bytes` fits the remaining budget
  /// (exact fit included: the comparison is <=).
  [[nodiscard]] bool fits(double bytes) const noexcept {
    return used_ + bytes <= budget_;
  }
  /// \brief True when `bytes` could never fit, even into an empty budget.
  [[nodiscard]] bool impossible(double bytes) const noexcept {
    return bytes > budget_;
  }
  /// \brief Take a reservation; asserts it fits.
  void reserve(double bytes);
  /// \brief Return a reservation; asserts it was held.
  void release(double bytes);

  /// \brief Bytes currently reserved.
  [[nodiscard]] double used() const noexcept { return used_; }
  /// \brief High-water mark of used() over the run.
  [[nodiscard]] double peak() const noexcept { return peak_; }
  /// \brief The budget the ledger enforces.
  [[nodiscard]] double budget() const noexcept { return budget_; }

 private:
  double budget_ = 0.0;
  double used_ = 0.0;
  double peak_ = 0.0;
};

}  // namespace hybrimoe::serve_sim
