#include "serve_sim/trace_source.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hybrimoe::serve_sim {

namespace {

/// Decorrelate per-request token streams from the stream seed (splitmix64).
std::uint64_t request_trace_seed(std::uint64_t stream_seed, std::uint64_t id) {
  std::uint64_t z = stream_seed ^ (0x9E3779B97F4A7C15ULL * (id + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void materialize_request(workload::TraceGenerator& generator,
                         runtime::Request& request,
                         std::size_t max_prefill_chunk) {
  const workload::RequestSpec& spec = request.spec;
  HYBRIMOE_REQUIRE(spec.prompt_tokens + spec.decode_tokens > 0,
                   "request has no tokens");
  generator.reset(request_trace_seed(generator.params().seed, spec.id));
  std::size_t remaining = spec.prompt_tokens;
  while (remaining > 0) {
    const std::size_t chunk =
        max_prefill_chunk == 0 ? remaining : std::min(max_prefill_chunk, remaining);
    request.prefill_chunks.push_back(generator.generate_prefill(chunk));
    remaining -= chunk;
  }
  if (spec.decode_tokens > 0)
    request.decode = generator.generate_decode(spec.decode_tokens);
}

}  // namespace hybrimoe::serve_sim
