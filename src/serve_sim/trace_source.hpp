#pragma once

/// \file trace_source.hpp
/// Where a simulated request's routing traces come from. The sim core is
/// agnostic: a PrematerializedSource serves requests whose traces were built
/// up front (the classic ServeEngine::run path — every trace lives for the
/// whole run), while a LazyTraceSource materialises a request's traces at
/// admission and frees them when the request goes terminal, bounding live
/// trace memory by the batch size instead of the stream length. Lazy
/// materialisation is what lets the load harness push 10^5-10^6 requests
/// through one run: per-request traces are seeded from (stream seed,
/// request id) independently of batch composition, so the lazy path is
/// bit-identical to materialising everything up front.

#include <cstddef>

#include "runtime/request.hpp"
#include "workload/generator.hpp"

namespace hybrimoe::serve_sim {

/// \brief Materialise one request's routing traces in place: reset the
/// generator to the request's derived seed, generate its prompt chunks
/// (split at `max_prefill_chunk` tokens; 0 = whole prompt) and its decode
/// steps as one continuous latent process. Deterministic per (generator
/// seed, request id) and independent of every other request — the fairness
/// and laziness guarantee of the serving layer.
void materialize_request(workload::TraceGenerator& generator,
                         runtime::Request& request,
                         std::size_t max_prefill_chunk = 0);

/// Supplies (and reclaims) the routing traces of requests entering and
/// leaving a simulated serving run.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  /// \brief Called when `request` is admitted (including re-admission after
  /// an eviction); must leave its traces consistent with its spec.
  virtual void acquire(runtime::Request& request) = 0;
  /// \brief Called when `request` goes terminal; may free its traces.
  virtual void release(runtime::Request& request) = 0;
};

/// Requests arrive with their traces already materialised; nothing to do.
class PrematerializedSource final : public TraceSource {
 public:
  /// \brief No-op: the traces were validated by the caller.
  void acquire(runtime::Request& request) override { (void)request; }
  /// \brief No-op: the caller owns the request vector's lifetime.
  void release(runtime::Request& request) override { (void)request; }
};

/// Materialises traces on first admission and frees them at terminal — the
/// bounded-memory source behind ServeEngine::serve_stream.
class LazyTraceSource final : public TraceSource {
 public:
  /// \brief Bind the source to the run's generator (must outlive it) and
  /// the serving loop's prefill chunking.
  LazyTraceSource(workload::TraceGenerator& generator,
                  std::size_t max_prefill_chunk)
      : generator_(generator), max_prefill_chunk_(max_prefill_chunk) {}

  /// \brief Materialise the request's traces unless they are already live
  /// (re-admission after an eviction keeps them).
  void acquire(runtime::Request& request) override {
    if (request.prefill_chunks.empty() && request.decode.num_steps() == 0)
      materialize_request(generator_, request, max_prefill_chunk_);
  }

  /// \brief Free the request's traces; only its spec and metrics remain.
  void release(runtime::Request& request) override {
    request.prefill_chunks.clear();
    request.prefill_chunks.shrink_to_fit();
    request.decode = workload::DecodeTrace{};
  }

 private:
  workload::TraceGenerator& generator_;
  std::size_t max_prefill_chunk_;
};

}  // namespace hybrimoe::serve_sim
