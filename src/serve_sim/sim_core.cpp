#include "serve_sim/sim_core.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hybrimoe::serve_sim {

using runtime::Request;
using runtime::RequestMetrics;
using runtime::RequestState;
using runtime::TierPolicy;

SimCore::SimCore(runtime::OffloadEngine& engine,
                 const runtime::ServeOptions& options, TraceSource& source)
    : engine_(engine), options_(options), source_(source) {
  options_.validate();
  if (options_.kv.enabled()) accountant_.emplace(options_.kv);
}

std::size_t SimCore::index_of(const Request* r) const {
  return static_cast<std::size_t>(r - requests_->data());
}

double SimCore::footprint(const Request& r) const {
  // Full-context safe reservation: the request will eventually hold KV for
  // its whole prompt plus its whole decode budget, so admission reserves
  // that up front — no mid-decode OOM, mirroring vLLM-style conservative
  // admission rather than optimistic paging.
  return static_cast<double>(r.spec.prompt_tokens + r.spec.decode_tokens) *
         options_.kv.bytes_per_token;
}

const TierPolicy& SimCore::tier_of(const Request* r) const {
  return options_.tiers[workload::priority_index(r->spec.priority)];
}

void SimCore::reject(Request& r) {
  r.state = RequestState::Rejected;
  metrics_.requests[index_of(&r)].rejected = true;
  ++terminal_;
  ++rejected_total_;
}

runtime::ServeMetrics SimCore::run(std::vector<Request>& requests) {
  HYBRIMOE_REQUIRE(!requests.empty(), "serving an empty request stream");
  requests_ = &requests;
  metrics_.requests.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    RequestMetrics& m = metrics_.requests[i];
    m.id = requests[i].spec.id;
    m.priority = requests[i].spec.priority;
    m.arrival = requests[i].spec.arrival_time;
    m.prompt_tokens = requests[i].spec.prompt_tokens;
  }
  engine_.cache().reset_stats();

  // Seed the heap with every arrival. Requests are (arrival, id)-sorted, so
  // the monotone seq reproduces that order for simultaneous arrivals.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    HYBRIMOE_REQUIRE(requests[i].spec.arrival_time >= 0.0,
                     "arrival time must be non-negative");
    heap_.push(EventKind::Arrival, requests[i].spec.arrival_time, i);
  }

  while (terminal_ < requests.size()) {
    // Drain: apply every event at or before the clock, in (time, seq) order.
    if (!heap_.empty() && heap_.top().time <= clock_) {
      handle(heap_.pop());
      continue;
    }
    // Dispatch: with no step in flight, admit and compose the next one.
    if (!step_in_flight_) {
      if (try_dispatch()) continue;
      if (terminal_ == requests.size()) break;  // everything rejected
      HYBRIMOE_ASSERT(!heap_.empty(), "serve loop stalled");
    }
    // Idle (or a step in flight): advance to the next scheduled event.
    clock_ = heap_.top().time;
  }
  // Late bookkeeping events (Finish of the last completions) still pending.
  while (!heap_.empty() && heap_.top().time <= clock_) handle(heap_.pop());
  HYBRIMOE_ASSERT(!step_in_flight_, "run ended with a step in flight");

  metrics_.makespan = clock_;
  metrics_.steps.stage = any_decode_ ? sched::Stage::Decode : sched::Stage::Prefill;
  // Merge the cache's own counters with the transient-buffer hits run_step
  // accumulated, exactly as run_prefill/run_decode do.
  cache::CacheStats stats = engine_.cache().stats();
  stats.hits += metrics_.steps.cache.hits;
  metrics_.steps.cache = stats;

  // Terminal accounting: every request either ran to completion with
  // exactly its budgeted tokens, or was rejected and emitted none.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& r = requests[i];
    metrics_.requests[i].evictions = r.evictions;
    if (r.state == RequestState::Rejected) {
      HYBRIMOE_ASSERT(metrics_.requests[i].generated_tokens == 0,
                      "rejected request emitted tokens");
      continue;
    }
    HYBRIMOE_ASSERT(r.state == RequestState::Finished, "unfinished request at exit");
    const std::size_t expected =
        (r.spec.prompt_tokens > 0 ? 1 : 0) + r.spec.decode_tokens;
    HYBRIMOE_ASSERT(metrics_.requests[i].generated_tokens == expected,
                    "request token accounting mismatch");
    metrics_.requests[i].preemptions = r.preemptions;
  }
  if (accountant_.has_value()) {
    HYBRIMOE_ASSERT(accountant_->used() <= 1e-6,
                    "KV reservations leaked past the run");
    metrics_.kv.budget_bytes = accountant_->budget();
    metrics_.kv.peak_bytes = accountant_->peak();
    metrics_.kv.rejected = kv_rejected_;
    metrics_.kv.evictions = kv_evictions_;
  }
  return std::move(metrics_);
}

void SimCore::handle(const Event& event) {
  HYBRIMOE_ASSERT(event.time >= clock_, "event from the past");
  clock_ = event.time;
  if (options_.hook != nullptr) options_.hook->on_sim_event(event);
  switch (event.kind) {
    case EventKind::Arrival: on_arrival(event); break;
    case EventKind::PrefillChunk: on_prefill_chunk(event); break;
    case EventKind::DecodeStep: on_decode_step(event); break;
    case EventKind::TransferComplete: break;  // accounting feed only
    case EventKind::Finish: on_finish(event); break;
    case EventKind::Evict: break;  // accounting feed only (applied at post)
  }
}

void SimCore::on_arrival(const Event& event) {
  Request& r = (*requests_)[event.request];
  // A request whose total token budget exceeds the context window is
  // rejected outright — it could never be scheduled. Same for a KV
  // footprint above the whole budget.
  if (options_.max_context_tokens > 0 &&
      r.spec.prompt_tokens + r.spec.decode_tokens > options_.max_context_tokens) {
    reject(r);
    return;
  }
  if (accountant_.has_value() && accountant_->impossible(footprint(r))) {
    reject(r);
    ++kv_rejected_;
    return;
  }
  waiting_.push_back(&r);
}

void SimCore::on_prefill_chunk(const Event& event) {
  Request& r = (*requests_)[event.request];
  ++r.next_chunk;
  if (r.next_chunk == r.prefill_chunks.size()) {
    // Prompt fully processed: the first output token is ready.
    RequestMetrics& m = metrics_.requests[event.request];
    r.first_token_time = clock_;
    r.last_token_time = clock_;
    m.first_token = clock_;
    ++m.generated_tokens;
    if (r.decode.num_steps() > 0) {
      r.state = RequestState::Decode;
    } else {
      r.state = RequestState::Finished;
      r.finish_time = clock_;
      m.finish = clock_;
      ++terminal_;
      heap_.push(EventKind::Finish, clock_, event.request);
    }
  }
  step_event_done();
}

void SimCore::on_decode_step(const Event& event) {
  Request& r = (*requests_)[event.request];
  RequestMetrics& m = metrics_.requests[event.request];
  if (r.prefill_chunks.empty() && r.next_step == 0) {
    // Promptless session: its first decode token is its first token.
    r.first_token_time = clock_;
    m.first_token = clock_;
  } else {
    m.tbt.push_back(clock_ - r.last_token_time);
  }
  r.last_token_time = clock_;
  ++m.generated_tokens;
  ++r.next_step;
  if (r.next_step == r.decode.num_steps()) {
    r.state = RequestState::Finished;
    r.finish_time = clock_;
    m.finish = clock_;
    ++terminal_;
    heap_.push(EventKind::Finish, clock_, event.request);
  }
  step_event_done();
}

void SimCore::on_finish(const Event& event) {
  Request& r = (*requests_)[event.request];
  HYBRIMOE_ASSERT(r.state == RequestState::Finished, "finish event for a live request");
  if (accountant_.has_value()) accountant_->release(footprint(r));
  std::erase(active_, &r);
  source_.release(r);
}

void SimCore::step_event_done() {
  HYBRIMOE_ASSERT(step_in_flight_ && step_events_remaining_ > 0,
                  "completion event outside a step");
  if (--step_events_remaining_ == 0) {
    step_in_flight_ = false;
    if (options_.hook != nullptr)
      options_.hook->after_step(step_info_, metrics_.steps);
  }
}

void SimCore::admit_waiting() {
  // Deadline-aware rejection: a request still waiting past its tier's
  // TTFT deadline will miss it no matter what — turn it away now.
  std::erase_if(waiting_, [&](Request* r) {
    const TierPolicy& tier = tier_of(r);
    if (tier.ttft_deadline <= 0.0 ||
        clock_ <= r->spec.arrival_time + tier.ttft_deadline)
      return false;
    reject(*r);
    return true;
  });

  // Tier queue pressure: drop the newest overflow of any bounded tier.
  for (std::size_t t = 0; t < options_.tiers.size(); ++t) {
    if (!options_.tiers[t].queue_capacity.has_value()) continue;
    const std::size_t cap = *options_.tiers[t].queue_capacity;
    std::size_t count = 0;
    for (const Request* r : waiting_)
      count += workload::priority_index(r->spec.priority) == t ? 1 : 0;
    // waiting is (arrival, id)-ordered, so reverse iteration drops the
    // latest-arrived first.
    for (std::size_t i = waiting_.size(); count > cap && i-- > 0;) {
      if (workload::priority_index(waiting_[i]->spec.priority) != t) continue;
      reject(*waiting_[i]);
      waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(i));
      --count;
    }
  }

  // Admission while the batch has capacity: FIFO by default; with
  // priority_admission the highest tier wins (FIFO within a tier — the
  // first max-tier element of the ordered waiting queue). KV accounting
  // gates each pick: the head-of-line request waits (queue), is shed
  // (reject), or evicts strictly lower tiers (evict) when it does not fit.
  while (!waiting_.empty() && active_.size() < options_.max_batch) {
    std::size_t pick = 0;
    if (options_.priority_admission) {
      for (std::size_t i = 1; i < waiting_.size(); ++i)
        if (waiting_[i]->spec.priority > waiting_[pick]->spec.priority) pick = i;
    }
    Request& r = *waiting_[pick];
    if (accountant_.has_value()) {
      const double bytes = footprint(r);
      if (!accountant_->fits(bytes)) {
        if (options_.kv.mode == AdmissionMode::Reject) {
          waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(pick));
          reject(r);
          ++kv_rejected_;
          continue;
        }
        // Queue mode blocks head-of-line; evict mode falls back to blocking
        // when the evictable (strictly lower-tier) mass is insufficient.
        if (options_.kv.mode != AdmissionMode::EvictRequeue || !evict_for(r))
          break;
      }
      accountant_->reserve(bytes);
    }
    // Erase by value: evict_for may have requeued victims *before* `pick`,
    // so the index no longer identifies r.
    std::erase(waiting_, &r);
    source_.acquire(r);
    r.admit_time = clock_;
    r.state = r.prefill_chunks.empty() ? RequestState::Decode : RequestState::Prefill;
    metrics_.requests[index_of(&r)].admit = clock_;
    active_.push_back(&r);
  }
}

bool SimCore::evict_for(const Request& incoming) {
  const std::size_t incoming_tier = workload::priority_index(incoming.spec.priority);
  const double needed = footprint(incoming);
  // Plan before committing: walk tiers from the bottom up, newest-admitted
  // victims first within each tier, and only evict if the plan actually
  // frees enough — a failed plan must leave the run untouched.
  std::vector<Request*> plan;
  double freed = 0.0;
  for (std::size_t tier = 0;
       tier < incoming_tier && !accountant_->fits(needed - freed); ++tier) {
    for (std::size_t i = active_.size(); i-- > 0;) {
      if (workload::priority_index(active_[i]->spec.priority) != tier) continue;
      plan.push_back(active_[i]);
      freed += footprint(*active_[i]);
      if (accountant_->fits(needed - freed)) break;
    }
  }
  if (!accountant_->fits(needed - freed)) return false;
  for (Request* victim : plan) evict_one(*victim);
  return true;
}

void SimCore::evict_one(Request& victim) {
  const std::size_t index = index_of(&victim);
  accountant_->release(footprint(victim));
  std::erase(active_, &victim);
  // Discard progress: the victim restarts from its first chunk when it is
  // re-admitted, and its emitted tokens are forgotten (the terminal token
  // conservation assert still holds — it will re-emit its full budget).
  if (victim.state == RequestState::Preempted) victim.resume(clock_);
  victim.state = RequestState::Queued;
  victim.next_chunk = 0;
  victim.next_step = 0;
  victim.admit_time = 0.0;
  victim.first_token_time = 0.0;
  victim.last_token_time = 0.0;
  victim.preempt_streak = 0;
  ++victim.evictions;
  RequestMetrics& m = metrics_.requests[index];
  m.generated_tokens = 0;
  m.first_token = 0.0;
  m.admit = 0.0;
  m.tbt.clear();
  // Requeue at the (arrival, id) position so queue-order invariants hold.
  const auto pos = std::lower_bound(
      waiting_.begin(), waiting_.end(), &victim,
      [](const Request* a, const Request* b) {
        if (a->spec.arrival_time != b->spec.arrival_time)
          return a->spec.arrival_time < b->spec.arrival_time;
        return a->spec.id < b->spec.id;
      });
  waiting_.insert(pos, &victim);
  ++kv_evictions_;
  heap_.push(EventKind::Evict, clock_, index);
}

bool SimCore::try_dispatch() {
  admit_waiting();
  if (active_.empty()) return false;

  auto& steps = metrics_.steps;
  const std::size_t step_index = steps.per_forward.size();
  if (options_.hook != nullptr)
    options_.hook->before_step(step_index, clock_, engine_);

  // The prefill candidate: earliest-admitted request still prefilling
  // (paused or not). With preemption enabled, defer its chunk when running
  // it would push a higher-tier active decode past its tier's TBT SLO —
  // unless the candidate already sat out max_consecutive_preemptions
  // steps (the no-starvation valve).
  Request* candidate = nullptr;
  for (Request* r : active_) {
    if (r->state == RequestState::Prefill || r->state == RequestState::Preempted) {
      candidate = r;
      break;
    }
  }
  bool defer = false;
  if (options_.preemption && candidate != nullptr && est_prefill_ > 0.0 &&
      est_decode_ > 0.0 && est_decode_ < est_prefill_ &&
      candidate->preempt_streak < options_.max_consecutive_preemptions) {
    for (const Request* d : active_) {
      if (d->state != RequestState::Decode) continue;
      if (!(d->spec.priority > candidate->spec.priority)) continue;
      const TierPolicy& tier = tier_of(d);
      if (tier.tbt_slo <= 0.0) continue;
      // A decode that has not emitted yet has no inter-token gap to protect.
      if (d->prefill_chunks.empty() && d->next_step == 0) continue;
      if ((clock_ - d->last_token_time) + est_prefill_ > tier.tbt_slo) {
        defer = true;
        break;
      }
    }
  }
  if (candidate != nullptr) {
    if (defer) {
      if (candidate->state == RequestState::Prefill) candidate->preempt(clock_);
      ++candidate->preempt_streak;
      ++preemptions_total_;
      metrics_.requests[index_of(candidate)].preemptions = candidate->preemptions;
    } else if (candidate->state == RequestState::Preempted) {
      candidate->resume(clock_);
    }
  }

  // Compose the step: the candidate's chunk (unless deferred) plus every
  // active decode, in admission order — merge order is float-sensitive,
  // so parts must appear exactly as the batch iterates.
  parts_.clear();
  decoding_.clear();
  Request* prefilling = nullptr;
  std::size_t prefill_tokens = 0;
  std::size_t decode_tokens = 0;
  for (Request* r : active_) {
    if (r->state == RequestState::Prefill) {
      if (r != candidate || defer || prefilling != nullptr) continue;
      prefilling = r;
      const workload::ForwardTrace& chunk = r->prefill_chunks[r->next_chunk].forward;
      parts_.push_back(&chunk);
      prefill_tokens += chunk.tokens;
    } else if (r->state == RequestState::Decode) {
      const workload::ForwardTrace& step = r->decode.steps[r->next_step];
      parts_.push_back(&step);
      decode_tokens += step.tokens;
      decoding_.push_back(r);
    }
    // Preempted requests (and prefills behind the candidate) sit the
    // step out.
  }
  HYBRIMOE_ASSERT(!parts_.empty(), "composed an empty step");
  const std::size_t batch_size = active_.size();
  const sched::Stage stage = sched::dominant_stage(prefill_tokens, decode_tokens);
  if (!decoding_.empty()) any_decode_ = true;

  const std::size_t uploads_before =
      steps.transfers + steps.prefetches + steps.maintenance;
  const double start_clock = clock_;
  double latency;
  if (options_.hook != nullptr) {
    // The transform hook needs a mutable copy even for single-part steps.
    workload::ForwardTrace merged = parts_.size() == 1
                                        ? *parts_.front()
                                        : workload::merge_forward_traces(parts_);
    options_.hook->transform_step(step_index, merged);
    latency = engine_.run_step(merged, stage, steps);
  } else if (parts_.size() == 1) {
    latency = engine_.run_step(*parts_.front(), stage, steps);
  } else {
    const workload::ForwardTrace merged = workload::merge_forward_traces(parts_);
    latency = engine_.run_step(merged, stage, steps);
  }
  steps.per_forward.push_back(latency);
  steps.total_latency += latency;
  steps.tokens += prefill_tokens + decode_tokens;
  const double end_clock = clock_ + latency;
  if (prefilling != nullptr) {
    est_prefill_ = latency;
  } else {
    est_decode_ = latency;
  }

  // Post the step's completion events: transfers land with the step, then
  // the prefill chunk, then every decode in admission order — the (time,
  // seq) pops replay the lockstep engine's bookkeeping order exactly.
  const std::size_t uploads =
      steps.transfers + steps.prefetches + steps.maintenance - uploads_before;
  if (uploads > 0)
    heap_.push(EventKind::TransferComplete, end_clock, index_of(active_.front()),
               uploads);
  std::size_t completion_events = 0;
  if (prefilling != nullptr) {
    heap_.push(EventKind::PrefillChunk, end_clock, index_of(prefilling));
    ++completion_events;
  }
  for (const Request* r : decoding_) {
    heap_.push(EventKind::DecodeStep, end_clock, index_of(r));
    ++completion_events;
  }
  step_in_flight_ = true;
  step_events_remaining_ = completion_events;
  step_info_ = runtime::StepInfo{};
  step_info_.index = step_index;
  step_info_.start_clock = start_clock;
  step_info_.end_clock = end_clock;
  step_info_.latency = latency;
  step_info_.stage = stage;
  step_info_.prefill_tokens = prefill_tokens;
  step_info_.decode_tokens = decode_tokens;
  step_info_.active_requests = batch_size;
  step_info_.waiting_requests = waiting_.size();
  for (const Request* r : waiting_)
    ++step_info_.waiting_by_tier[workload::priority_index(r->spec.priority)];
  step_info_.rejected_total = rejected_total_;
  step_info_.preemptions_total = preemptions_total_;
  if (accountant_.has_value()) {
    step_info_.kv_used_bytes = accountant_->used();
    step_info_.kv_peak_bytes = accountant_->peak();
  }
  step_info_.kv_evictions_total = kv_evictions_;
  return true;
}

}  // namespace hybrimoe::serve_sim
