#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool with per-worker task queues and work stealing —
/// the CPU expert lane of the threaded execution backend (the stand-in for
/// the paper's 10-core CPU expert pool, §V's in-kernel task allocation).
///
/// Thread-safety: submit/submit_to may be called from any thread, including
/// from inside a running task (the executor chains CPU-lane tasks this way).
/// Each worker pops from the front of its own deque and steals from the back
/// of the longest other queue when its own is empty. The destructor drains
/// every queued task before joining, so a joined pool has executed
/// everything submitted to it.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace hybrimoe::exec {

/// Fixed-size work-stealing worker pool.
class ThreadPool {
 public:
  /// Spawn `workers` (>= 1) worker threads, each owning one task deque.
  explicit ThreadPool(std::size_t workers);
  /// Drains all queued tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task on the next queue in round-robin order. Thread-safe.
  void submit(std::function<void()> task);
  /// Enqueue a task on a specific worker's queue (affinity submission; other
  /// workers may still steal it). Thread-safe.
  void submit_to(std::size_t worker, std::function<void()> task);

  /// Block until every submitted task has finished. Thread-safe, but must
  /// not be called from inside a task (it would wait on itself).
  void wait_idle();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }
  /// Total tasks completed so far (monotonic; racy-read accurate at idle).
  [[nodiscard]] std::uint64_t tasks_executed() const;
  /// Tasks a worker took from another worker's queue (work stealing).
  [[nodiscard]] std::uint64_t tasks_stolen() const;

  /// Rethrow the first exception that escaped a task, if any (the worker
  /// swallowed it to keep the pool alive). Clears the stored exception.
  void rethrow_pending_error();

 private:
  void worker_loop(std::size_t index);
  /// Pop from own front, else steal from the back of the longest other
  /// queue. Caller holds mutex_. Returns false when all queues are empty.
  bool pop_task(std::size_t index, std::function<void()>& out);

  // One deque per worker; a single mutex guards all of them (the pool paces
  // millisecond-scale tasks, so queue ops are never contended enough to need
  // finer locking — the per-queue structure is what preserves locality and
  // steal order).
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> threads_;
  std::size_t queued_ = 0;   ///< tasks sitting in queues
  std::size_t running_ = 0;  ///< tasks currently executing
  std::uint64_t executed_ = 0;
  std::uint64_t stolen_ = 0;
  std::uint64_t next_queue_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace hybrimoe::exec
