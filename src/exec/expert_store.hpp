#pragma once

/// \file expert_store.hpp
/// Deterministic functional weights for the execution backend. Every
/// moe::ExpertId maps to a SwiGLU expert whose weights are generated from
/// (store seed, expert id) alone — independent of creation order, worker
/// count, and scheduling policy — so two stores with equal options hold
/// bitwise-identical weights and any execution order reproduces the same
/// layer outputs. The functional geometry (d_model/d_ff) is intentionally
/// decoupled from the cost model's: scheduling charges the paper's Table II
/// shapes while kernels run at small dimensions that finish in microseconds.
///
/// Thread-safety: fully internally synchronized (shared_mutex). Lookups
/// take a shared lock; first touch of an expert materializes it under the
/// exclusive lock. Returned references/spans stay valid and immutable for
/// the store's lifetime (node-based map, weights never mutated after
/// creation), so workers may read them lock-free after the accessor returns.

#include <cstdint>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "kernels/expert.hpp"
#include "moe/expert_id.hpp"

namespace hybrimoe::exec {

/// Lazily-materialized (expert id -> weights) map plus per-layer inputs.
class ExpertStore {
 public:
  /// `d_model`/`d_ff`: functional expert geometry (both > 0); `seed` drives
  /// every weight and input value.
  ExpertStore(std::size_t d_model, std::size_t d_ff, std::uint64_t seed);

  /// \brief Functional d_model of every stored expert.
  [[nodiscard]] std::size_t d_model() const noexcept { return d_model_; }
  /// \brief Functional d_ff of every stored expert.
  [[nodiscard]] std::size_t d_ff() const noexcept { return d_ff_; }
  /// fp32 bytes of one expert's three projection matrices (the blob the
  /// copy engine moves per transfer).
  [[nodiscard]] std::size_t expert_bytes() const noexcept {
    return 3 * d_model_ * d_ff_ * sizeof(float);
  }

  /// Weights of `id`, materializing them on first touch. Thread-safe; the
  /// returned reference is stable and immutable.
  [[nodiscard]] const kernels::ExpertWeights& weights(moe::ExpertId id);

  /// Deterministic activation vector fed to every expert of `layer`
  /// (size d_model). Thread-safe; the returned span is stable and immutable.
  [[nodiscard]] std::span<const float> layer_input(std::uint16_t layer);

  /// Experts materialized so far (telemetry for memory accounting).
  [[nodiscard]] std::size_t materialized() const;

 private:
  std::size_t d_model_;
  std::size_t d_ff_;
  std::uint64_t seed_;
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::uint32_t, kernels::ExpertWeights> experts_;
  std::unordered_map<std::uint16_t, std::vector<float>> inputs_;
};

}  // namespace hybrimoe::exec
