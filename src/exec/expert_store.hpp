#pragma once

/// \file expert_store.hpp
/// Deterministic functional weights for the execution backend. Every
/// moe::ExpertId maps to a SwiGLU expert whose weights are generated from
/// (store seed, expert id) alone — independent of creation order, worker
/// count, and scheduling policy — so two stores with equal options hold
/// bitwise-identical weights and any execution order reproduces the same
/// layer outputs. The functional geometry (d_model/d_ff) is intentionally
/// decoupled from the cost model's: scheduling charges the paper's Table II
/// shapes while kernels run at small dimensions that finish in microseconds.
///
/// A store can run experts at fp32 (default) or Q4 precision. In either
/// case the per-expert transfer payload — the bytes a CopyEngine ships per
/// simulated PCIe transfer — is serialized once into an arena owned by the
/// store, so the step loop never allocates for weights; Q4 payloads are
/// ~6x smaller than fp32 at the default geometry.
///
/// Thread-safety: fully internally synchronized (shared_mutex). Lookups
/// take a shared lock; first touch of an expert materializes it under the
/// exclusive lock. Returned references/spans stay valid and immutable for
/// the store's lifetime (node-based map, arena chunks never move, weights
/// never mutated after creation), so workers may read them lock-free after
/// the accessor returns.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "kernels/expert.hpp"
#include "moe/expert_id.hpp"

namespace hybrimoe::exec {

/// Lazily-materialized (expert id -> weights) map plus per-layer inputs.
class ExpertStore {
 public:
  /// `d_model`/`d_ff`: functional expert geometry (both > 0); `seed` drives
  /// every weight and input value; `quantized` selects Q4 expert math and
  /// Q4 transfer blobs (weights are generated at fp32 first, so the dense
  /// weights are bitwise-identical across precisions for a given seed).
  ExpertStore(std::size_t d_model, std::size_t d_ff, std::uint64_t seed,
              bool quantized = false);

  /// \brief Functional d_model of every stored expert.
  [[nodiscard]] std::size_t d_model() const noexcept { return d_model_; }
  /// \brief Functional d_ff of every stored expert.
  [[nodiscard]] std::size_t d_ff() const noexcept { return d_ff_; }
  /// \brief True when experts run (and ship) at Q4 precision.
  [[nodiscard]] bool quantized() const noexcept { return quantized_; }
  /// Bytes of one expert's transfer blob (the payload the copy engine moves
  /// per transfer): the three fp32 projection matrices, or their Q4 blocks
  /// when the store is quantized.
  [[nodiscard]] std::size_t expert_bytes() const noexcept;

  /// Dense weights of `id`, materializing the expert on first touch.
  /// Thread-safe; the returned reference is stable and immutable.
  [[nodiscard]] const kernels::ExpertWeights& weights(moe::ExpertId id);

  /// Serialized transfer payload of `id` (size expert_bytes()), arena-backed
  /// and materialized on first touch. Thread-safe; stable and immutable.
  [[nodiscard]] std::span<const std::byte> transfer_blob(moe::ExpertId id);

  /// Forward pass of expert `id` on `x` at the store's precision, reusing
  /// per-thread scratch for intermediates. Thread-safe.
  [[nodiscard]] std::vector<float> forward(moe::ExpertId id, std::span<const float> x);

  /// Deterministic activation vector fed to every expert of `layer`
  /// (size d_model). Thread-safe; the returned span is stable and immutable.
  [[nodiscard]] std::span<const float> layer_input(std::uint16_t layer);

  /// Experts materialized so far (telemetry for memory accounting).
  [[nodiscard]] std::size_t materialized() const;

 private:
  /// Chunked bump allocator for transfer blobs: stable addresses, one
  /// allocation per ~1 MiB of weights instead of one per expert touch.
  class BlobArena {
   public:
    /// Carve `bytes` (64-byte aligned start) out of the current chunk,
    /// growing by a new chunk when it does not fit. Addresses never move.
    [[nodiscard]] std::span<std::byte> allocate(std::size_t bytes);

   private:
    static constexpr std::size_t kChunkBytes = 1 << 20;
    std::vector<std::unique_ptr<std::byte[]>> chunks_;
    std::size_t used_ = 0;
    std::size_t capacity_ = 0;
  };

  /// One materialized expert: dense weights, the Q4 form when quantized,
  /// and the serialized arena-backed transfer payload.
  struct Entry {
    kernels::ExpertWeights weights;
    kernels::QuantizedExpert q4;
    std::span<const std::byte> blob;
  };

  /// Materialize-on-first-touch lookup shared by the public accessors.
  [[nodiscard]] const Entry& entry(std::uint32_t key);

  std::size_t d_model_;
  std::size_t d_ff_;
  std::uint64_t seed_;
  bool quantized_;
  mutable std::shared_mutex mutex_;
  BlobArena arena_;
  std::unordered_map<std::uint32_t, Entry> experts_;
  std::unordered_map<std::uint16_t, std::vector<float>> inputs_;
};

}  // namespace hybrimoe::exec
