#include "exec/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <mutex>
#include <numeric>
#include <thread>

#include <condition_variable>

#include "exec/pacing.hpp"
#include "hw/calibration.hpp"
#include "util/assert.hpp"

namespace hybrimoe::exec {

void ExecOptions::validate() const {
  HYBRIMOE_REQUIRE(workers > 0, "executor needs at least one CPU worker");
  HYBRIMOE_REQUIRE(time_scale > 0.0 && std::isfinite(time_scale),
                   "time_scale must be positive and finite");
  HYBRIMOE_REQUIRE(d_model > 0 && d_ff > 0, "functional dimensions must be positive");
}

std::uint64_t hash_bytes(std::uint64_t seed, const void* data, std::size_t size) noexcept {
  constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    seed ^= bytes[i];
    seed *= kFnvPrime;
  }
  return seed;
}

std::uint64_t hash_u64(std::uint64_t seed, std::uint64_t value) noexcept {
  return hash_bytes(seed, &value, sizeof(value));
}

/// Per-layer completion board shared (by shared_ptr) with every task the
/// layer spawns, so worker/copy-thread closures never reference the engine
/// thread's stack. `done[i]` publishes completion of plan task i's async
/// prerequisite (transfer or CPU compute); the single mutex/cv pair is
/// uncontended at the backend's millisecond pacing granularity.
struct HybridExecutor::LayerBoard {
  struct CpuTask {
    std::size_t idx = 0;        ///< plan task index
    moe::ExpertId id;
    PaceClock::duration dur{};  ///< scaled modeled compute duration
  };

  std::mutex m;
  std::condition_variable cv;
  std::vector<char> done;                 ///< per plan-task completion flag
  std::size_t cpu_remaining = 0;
  std::size_t lanes_remaining = 0;        ///< extra accelerator lanes in flight
  std::vector<CpuTask> cpu;               ///< CPU lane, plan start order
  const sched::LayerPlan* plan = nullptr; ///< the plan being executed
  std::span<const float> input;           ///< layer input (stable in the store)
  std::vector<std::vector<float>> slots;  ///< per plan-task expert outputs
  bool compute = true;
};

HybridExecutor::HybridExecutor(ExecOptions options)
    : options_(options), store_(options.d_model, options.d_ff, options.weight_seed,
                                options.quantized_experts) {
  options_.validate();
}

HybridExecutor::~HybridExecutor() = default;

void HybridExecutor::ensure_started(std::size_t num_links, std::size_t num_lanes) {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(options_.workers);
  while (copiers_.size() < num_links) {
    copy_scratch_.push_back(std::make_unique<std::vector<std::byte>>());
    copiers_.push_back(std::make_unique<CopyEngine>());
  }
  while (gpu_lanes_.size() < num_lanes)
    gpu_lanes_.push_back(std::make_unique<CopyEngine>());
}

void HybridExecutor::begin_step(bool paced) {
  HYBRIMOE_REQUIRE(!in_step_, "begin_step while a step is already open");
  step_ = StepResult{};
  in_step_ = true;
  // Safe plain write: no backend task of this step exists yet, and task
  // submission (pool/copier queues) establishes the happens-before edge for
  // every thread that later reads paced_.
  paced_ = paced;
}

StepResult HybridExecutor::end_step() {
  HYBRIMOE_REQUIRE(in_step_, "end_step without begin_step");
  in_step_ = false;
  // Stragglers (prefetch/maintenance copies) drain outside the measurement,
  // mirroring the simulator's per-step per-link carry reset.
  for (const auto& copier : copiers_) {
    copier->drain();
    copier->rethrow_pending_error();
  }
  for (const auto& lane : gpu_lanes_) {
    lane->drain();
    lane->rethrow_pending_error();
  }
  if (pool_) pool_->rethrow_pending_error();
  return step_;
}

void HybridExecutor::abort_step() noexcept {
  if (!in_step_) return;
  in_step_ = false;
  // Quiesce: every dispatched task publishes its completion even on error
  // (see run_cpu_chain / the transfer jobs), so these waits terminate.
  try {
    if (pool_) pool_->wait_idle();
    for (const auto& lane : gpu_lanes_) lane->drain();
    for (const auto& copier : copiers_) copier->drain();
  } catch (...) {  // wait/drain do not throw in practice; stay noexcept
  }
  // Discard pending task errors — the abort cause is already propagating.
  try {
    if (pool_) pool_->rethrow_pending_error();
  } catch (...) {
  }
  for (const auto& copier : copiers_) {
    try {
      copier->rethrow_pending_error();
    } catch (...) {
    }
  }
  for (const auto& lane : gpu_lanes_) {
    try {
      lane->rethrow_pending_error();
    } catch (...) {
    }
  }
  step_ = StepResult{};
}

void HybridExecutor::pace_dense(double modeled_seconds) {
  HYBRIMOE_REQUIRE(in_step_, "pace_dense outside a step");
  HYBRIMOE_REQUIRE(modeled_seconds >= 0.0, "dense duration must be non-negative");
  if (!slack_reduced_) {
    reduce_timer_slack();
    slack_reduced_ = true;
  }
  const auto t0 = PaceClock::now();
  if (paced_)
    sleep_until_paced(t0 + scaled_duration(modeled_seconds, options_.time_scale));
  step_.measured += std::chrono::duration<double>(PaceClock::now() - t0).count() /
                    (paced_ ? options_.time_scale : 1.0);
}

void HybridExecutor::copy_blob(moe::ExpertId id, std::vector<std::byte>& scratch) {
  const auto blob = store_.transfer_blob(id);
  if (scratch.size() < blob.size()) scratch.resize(blob.size());
  std::memcpy(scratch.data(), blob.data(), blob.size());
}

void HybridExecutor::run_cpu_chain(const std::shared_ptr<LayerBoard>& board,
                                   std::size_t pos) {
  const LayerBoard::CpuTask& task = board->cpu[pos];
  const auto t0 = PaceClock::now();
  // Completion must be published even if the kernel throws — the engine
  // thread is (or will be) blocked on cpu_remaining, and the error is
  // surfaced via ThreadPool::rethrow_pending_error at the layer barrier.
  std::exception_ptr error;
  if (board->compute) {
    try {
      board->slots[task.idx] = store_.forward(task.id, board->input);
    } catch (...) {
      error = std::current_exception();
    }
  }
  if (paced_) sleep_until_paced(t0 + task.dur);
  {
    std::lock_guard lock(board->m);
    board->done[task.idx] = 1;
    --board->cpu_remaining;
    board->cv.notify_all();
  }
  if (pos + 1 < board->cpu.size())
    pool_->submit([this, board, next = pos + 1] { run_cpu_chain(board, next); });
  if (error) std::rethrow_exception(error);  // recorded by the worker loop
}

std::vector<float> HybridExecutor::combine_and_digest(
    const sched::LayerPlan& plan, std::vector<std::vector<float>>& slots) {
  const auto& tasks = plan.tasks;
  // Fixed reduction order — ascending expert index, which is unique within a
  // layer — makes the float accumulation identical regardless of device
  // assignment, completion order, or worker count.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&tasks](std::size_t a, std::size_t b) {
    return tasks[a].expert.expert < tasks[b].expert.expert;
  });
  double total_load = 0.0;
  for (const auto& t : tasks) total_load += static_cast<double>(t.load);

  std::vector<float> out(options_.d_model, 0.0f);
  for (const std::size_t i : order) {
    HYBRIMOE_ASSERT(slots[i].size() == out.size(), "expert output slot missing");
    const auto coeff = static_cast<float>(static_cast<double>(tasks[i].load) / total_load);
    for (std::size_t d = 0; d < out.size(); ++d) out[d] += coeff * slots[i][d];
  }
  step_.digest = hash_u64(step_.digest, plan.layer);
  step_.digest = hash_bytes(step_.digest, out.data(), out.size() * sizeof(float));
  return out;
}

LayerResult HybridExecutor::execute_layer_reference(const sched::LayerPlan& plan) {
  HYBRIMOE_REQUIRE(in_step_, "execute_layer_reference outside a step");
  HYBRIMOE_REQUIRE(!plan.tasks.empty(), "cannot execute an empty plan");
  LayerResult result;
  ++step_.layers;
  if (!options_.compute_experts) return result;
  const auto input = store_.layer_input(plan.layer);
  std::vector<std::vector<float>> slots(plan.tasks.size());
  for (std::size_t i = 0; i < plan.tasks.size(); ++i)
    slots[i] = store_.forward(plan.tasks[i].expert, input);
  result.output = combine_and_digest(plan, slots);
  return result;
}

void HybridExecutor::run_gpu_lane(const std::shared_ptr<LayerBoard>& board,
                                  std::vector<std::size_t> order,
                                  double dense_seconds) {
  const auto& tasks = board->plan->tasks;
  const double scale = options_.time_scale;
  // Publish lane completion even if a kernel throws — the engine thread is
  // blocked on lanes_remaining; the error surfaces at the lane's
  // rethrow_pending_error (end_step).
  std::exception_ptr error;
  if (paced_) {
    const auto t0 = PaceClock::now();
    sleep_until_paced(t0 + scaled_duration(dense_seconds, scale));
  }
  for (const std::size_t i : order) {
    if (tasks[i].transferred) {
      std::unique_lock lock(board->m);
      board->cv.wait(lock, [&board, i] { return board->done[i] != 0; });
    }
    const auto t0 = PaceClock::now();
    if (board->compute && !error) {
      try {
        board->slots[i] = store_.forward(tasks[i].expert, board->input);
      } catch (...) {
        error = std::current_exception();
      }
    }
    if (paced_)
      sleep_until_paced(t0 + scaled_duration(tasks[i].end - tasks[i].start, scale));
  }
  {
    std::lock_guard lock(board->m);
    --board->lanes_remaining;
    board->cv.notify_all();
  }
  if (error) std::rethrow_exception(error);  // recorded by the lane's loop
}

LayerResult HybridExecutor::execute_layer(const sched::LayerPlan& plan, double overhead,
                                          std::span<const AsyncCopy> async_copies) {
  HYBRIMOE_REQUIRE(in_step_, "execute_layer outside a step");
  HYBRIMOE_REQUIRE(!plan.tasks.empty(), "cannot execute an empty plan");
  HYBRIMOE_REQUIRE(overhead >= 0.0, "layer overhead must be non-negative");
  std::size_t num_links = plan.num_accel_devices();
  for (const AsyncCopy& c : async_copies) {
    HYBRIMOE_REQUIRE(c.seconds >= 0.0, "copy duration must be non-negative");
    num_links = std::max(num_links, c.link + 1);
  }
  ensure_started(num_links, num_links - 1);
  if (!slack_reduced_) {
    reduce_timer_slack();
    slack_reduced_ = true;
  }

  const double scale = options_.time_scale;
  const auto& tasks = plan.tasks;

  // Materialize weights on the engine thread up front: workers then hit the
  // store's shared-lock fast path only.
  if (options_.compute_experts)
    for (const auto& t : tasks) (void)store_.weights(t.expert);

  auto board = std::make_shared<LayerBoard>();
  board->done.assign(tasks.size(), 0);
  board->slots.resize(tasks.size());
  board->plan = &plan;
  board->input = store_.layer_input(plan.layer);
  board->compute = options_.compute_experts;
  for (const std::size_t i : plan.device_order(sched::kCpuDevice))
    board->cpu.push_back({i, tasks[i].expert,
                          scaled_duration(tasks[i].end - tasks[i].start, scale)});
  board->cpu_remaining = board->cpu.size();
  const auto gpu_order = plan.device_order(sched::kGpuDevice);

  const auto layer_start = PaceClock::now();

  // ---- Framework dispatch overhead serializes before the layer: the plan's
  // t = 0 is where the engine's per-layer latency charge ends, so nothing —
  // not even a transfer — may be issued earlier (the very term §V moves into
  // C++ kernels to shrink).
  if (paced_) sleep_until_paced(layer_start + scaled_duration(overhead, scale));

  // ---- Link lanes: each link's on-demand transfers in per-link plan order,
  // then the engine's speculative uploads routed to it. FIFO on each copy
  // thread reproduces the modeled serially-occupied links, including carry
  // into later layers.
  for (std::size_t link = 0; link < num_links; ++link) {
    for (const std::size_t i :
         plan.transfer_order(sched::accelerator_device(link))) {
      const auto dur =
          scaled_duration(tasks[i].transfer_end - tasks[i].transfer_start, scale);
      // The scratch pointer is resolved here, on the engine thread: the
      // copier thread must never index copy_scratch_ itself — a later
      // ensure_started (higher device count) may reallocate the outer
      // vector while copies are still in flight. The pointee is stable.
      copiers_[link]->submit(
          [this, board, idx = i, id = tasks[i].expert, dur,
           scratch = copy_scratch_[link].get()] {
            const auto t0 = PaceClock::now();
            // Publish completion even if the copy throws — a GPU lane blocks
            // on done[idx]; the error surfaces via rethrow_pending_error at
            // step end.
            std::exception_ptr error;
            if (options_.copy_weight_blobs) {
              try {
                copy_blob(id, *scratch);
              } catch (...) {
                error = std::current_exception();
              }
            }
            if (paced_) sleep_until_paced(t0 + dur);
            {
              std::lock_guard lock(board->m);
              board->done[idx] = 1;
              board->cv.notify_all();
            }
            if (error) std::rethrow_exception(error);  // recorded by the loop
          });
    }
  }
  for (const AsyncCopy& c : async_copies) {
    const auto dur = scaled_duration(c.seconds, scale);
    copiers_[c.link]->submit(
        [this, id = c.id, dur, scratch = copy_scratch_[c.link].get()] {
          const auto t0 = PaceClock::now();
          if (options_.copy_weight_blobs) copy_blob(id, *scratch);
          if (paced_) sleep_until_paced(t0 + dur);
        });
  }

  // ---- CPU lane: chained through the worker pool in plan start order (the
  // modeled CPU expert pool is one serially-occupied resource; the chain
  // hops across workers via round-robin dispatch and stealing).
  if (!board->cpu.empty())
    pool_->submit([this, board] { run_cpu_chain(board, 0); });

  // ---- Extra accelerator lanes (devices 2..N): each on its dedicated
  // thread — dense head, then that device's tasks gated on their transfers.
  for (std::size_t accel = 1; accel < num_links; ++accel) {
    auto order = plan.device_order(sched::accelerator_device(accel));
    if (order.empty()) continue;
    {
      std::lock_guard lock(board->m);
      ++board->lanes_remaining;
    }
    gpu_lanes_[accel - 1]->submit(
        [this, board, order = std::move(order), dense = plan.gpu_offset]() mutable {
          run_gpu_lane(board, std::move(order), dense);
        });
  }

  // ---- Primary GPU lane (this thread): dense head, then accelerator 0's
  // routed experts in plan order, each gated on its transfer completion.
  if (paced_) {
    const auto t0 = PaceClock::now();
    sleep_until_paced(t0 + scaled_duration(plan.gpu_offset, scale));
  }
  for (const std::size_t i : gpu_order) {
    if (tasks[i].transferred) {
      std::unique_lock lock(board->m);
      board->cv.wait(lock, [&board, i] { return board->done[i] != 0; });
    }
    const auto t0 = PaceClock::now();
    if (options_.compute_experts)
      board->slots[i] = store_.forward(tasks[i].expert, board->input);
    if (paced_)
      sleep_until_paced(t0 + scaled_duration(tasks[i].end - tasks[i].start, scale));
  }

  // ---- Barrier: the layer is done when every compute task has finished on
  // every lane (every plan transfer completed earlier — its accelerator
  // dependent waited on it).
  {
    std::unique_lock lock(board->m);
    board->cv.wait(lock, [&board] {
      return board->cpu_remaining == 0 && board->lanes_remaining == 0;
    });
  }
  pool_->rethrow_pending_error();

  LayerResult result;
  // Unpaced steps report raw wall seconds (there is no modeled time to
  // rescale to — the window *is* the kernel/copy time).
  result.measured = std::chrono::duration<double>(PaceClock::now() - layer_start).count() /
                    (paced_ ? scale : 1.0);
  step_.measured += result.measured;
  ++step_.layers;
  if (options_.compute_experts) result.output = combine_and_digest(plan, board->slots);
  return result;
}

double HybridExecutor::calibrate_time_scale(const hw::CostModel& costs, double safety) {
  HYBRIMOE_REQUIRE(!in_step_, "calibrate_time_scale inside a step");
  HYBRIMOE_REQUIRE(safety >= 1.0, "safety factor must be >= 1");
  // Scratch buffers are about to be touched from this thread.
  for (const auto& copier : copiers_) copier->drain();

  const moe::ExpertId probe{0, 0};
  const auto input = store_.layer_input(0);
  std::vector<std::byte> probe_scratch;
  double real = 0.0;
  if (options_.compute_experts)
    real = std::max(real, hw::time_callable([&] { (void)store_.forward(probe, input); }));
  if (options_.copy_weight_blobs)
    real = std::max(real, hw::time_callable([&] { copy_blob(probe, probe_scratch); }));
  // Sleep overshoot: how late a paced task typically wakes.
  static constexpr auto kProbeSleep = std::chrono::microseconds(200);
  reduce_timer_slack();
  const double overshoot =
      hw::time_callable([] { std::this_thread::sleep_for(kProbeSleep); }) -
      std::chrono::duration<double>(kProbeSleep).count();
  real = std::max({real, overshoot, 1e-6});

  double d_min = std::min(costs.cpu_expert_time(1, /*warm=*/true),
                          std::min(costs.gpu_expert_time(1), costs.transfer_time()));
  for (std::size_t a = 1; a < costs.num_accelerators(); ++a)
    d_min = std::min({d_min, costs.gpu_expert_time(1, a), costs.transfer_time(a)});
  HYBRIMOE_ASSERT(d_min > 0.0, "cost model yields non-positive task durations");
  return safety * real / d_min;
}

}  // namespace hybrimoe::exec
