#pragma once

/// \file pacing.hpp
/// Wall-clock pacing primitives shared by the execution backend threads.
///
/// The threaded backend runs real kernels whose wall time at the small
/// functional dimensions is far below the modeled durations of the paper's
/// testbed, so every task *paces* itself: it does its real work, then sleeps
/// until the scaled modeled duration has elapsed. These helpers keep that
/// pacing accurate enough for modeled-vs-measured validation (default Linux
/// timer slack alone is 50us per sleep, which accumulates along task chains).

#include <chrono>

namespace hybrimoe::exec {

/// Monotonic clock used for all pacing and measurement in the backend.
using PaceClock = std::chrono::steady_clock;

/// Ask the kernel for tight sleep wake-ups on the calling thread (Linux:
/// prctl(PR_SET_TIMERSLACK, 1us); a no-op elsewhere). Called once per backend
/// thread; idempotent and thread-safe (affects only the calling thread).
void reduce_timer_slack() noexcept;

/// Sleep until `deadline` (no-op when it already passed). Durations under a
/// few microseconds are not worth a syscall and return immediately.
void sleep_until_paced(PaceClock::time_point deadline) noexcept;

/// Convert a modeled duration (seconds in cost-model time) into a wall-clock
/// duration at `time_scale` wall seconds per modeled second.
[[nodiscard]] inline PaceClock::duration scaled_duration(double modeled_seconds,
                                                         double time_scale) noexcept {
  return std::chrono::duration_cast<PaceClock::duration>(
      std::chrono::duration<double>(modeled_seconds * time_scale));
}

}  // namespace hybrimoe::exec
