#include "exec/thread_pool.hpp"

#include <utility>

#include "exec/pacing.hpp"
#include "util/assert.hpp"

namespace hybrimoe::exec {

ThreadPool::ThreadPool(std::size_t workers) {
  HYBRIMOE_REQUIRE(workers > 0, "thread pool needs at least one worker");
  queues_.resize(workers);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard lock(mutex_);
    target = static_cast<std::size_t>(next_queue_++ % queues_.size());
    queues_[target].push_back(std::move(task));
    ++queued_;
  }
  work_cv_.notify_one();
}

void ThreadPool::submit_to(std::size_t worker, std::function<void()> task) {
  HYBRIMOE_REQUIRE(worker < queues_.size(), "submit_to worker index out of range");
  {
    std::lock_guard lock(mutex_);
    queues_[worker].push_back(std::move(task));
    ++queued_;
  }
  work_cv_.notify_all();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

std::uint64_t ThreadPool::tasks_executed() const {
  std::lock_guard lock(mutex_);
  return executed_;
}

std::uint64_t ThreadPool::tasks_stolen() const {
  std::lock_guard lock(mutex_);
  return stolen_;
}

void ThreadPool::rethrow_pending_error() {
  std::exception_ptr error;
  {
    std::lock_guard lock(mutex_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

bool ThreadPool::pop_task(std::size_t index, std::function<void()>& out) {
  if (!queues_[index].empty()) {
    out = std::move(queues_[index].front());
    queues_[index].pop_front();
    --queued_;
    return true;
  }
  // Steal from the back of the longest other queue.
  std::size_t victim = index;
  std::size_t victim_size = 0;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (i != index && queues_[i].size() > victim_size) {
      victim = i;
      victim_size = queues_[i].size();
    }
  }
  if (victim_size == 0) return false;
  out = std::move(queues_[victim].back());
  queues_[victim].pop_back();
  --queued_;
  ++stolen_;
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  reduce_timer_slack();
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    std::function<void()> task;
    if (!pop_task(index, task)) {
      if (stop_) return;  // drained: stop only once every queue is empty
      continue;
    }
    ++running_;
    lock.unlock();
    try {
      task();
    } catch (...) {
      std::lock_guard error_lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    lock.lock();
    --running_;
    ++executed_;
    if (queued_ == 0 && running_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace hybrimoe::exec
