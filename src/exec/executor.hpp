#pragma once

/// \file executor.hpp
/// The real threaded execution backend: takes the same sched::LayerPlan the
/// discrete-event simulator consumes and actually dispatches it — CPU expert
/// tasks to a work-stealing ThreadPool, transfers to one asynchronous
/// CopyEngine thread *per host link*, primary-GPU-lane work (dense phase +
/// routed experts of accelerator 0) to the calling engine thread, and each
/// further accelerator's lane to its own dedicated thread — honoring the
/// plan's dependencies: an uncached accelerator expert cannot start before
/// its transfer completes, and each resource lane is serially occupied in
/// plan order. Lanes and copiers are created lazily from the device count
/// the executed plans actually carry, so single-accelerator engines spawn
/// exactly the threads they did under the CPU+GPU pair model.
///
/// Every expert task runs a real expert forward pass at the store's
/// functional dimensions (SIMD-dispatched, fp32 or Q4), then — in a paced
/// step — sleeps to the scaled modeled duration (calibrated sleep), so
/// wall-clock measurements validate the *concurrency structure* the
/// scheduler claims — whether CPU compute, GPU compute and PCIe transfers
/// genuinely overlap in real time (paper §V moves task allocation into C++
/// for exactly this) — while remaining robust on small CI hosts. An unpaced
/// step (ExecutionMode::Performance) keeps the identical lowering and
/// dependency structure but drops every sleep, so the measured window is
/// real kernel/copy time. Layer outputs are reduced in a fixed
/// deterministic order, so threaded execution is bitwise-identical to the
/// single-threaded reference at any worker count, paced or not.
///
/// Thread-safety: one executor drives one engine thread at a time —
/// begin_step / execute_layer / pace_dense / end_step must be called from a
/// single thread (the OffloadEngine step loop), and that thread doubles as
/// the GPU lane. Internally the executor owns the worker pool and the copy
/// thread; the ExpertStore is internally synchronized. Sharing one executor
/// across engines is fine as long as their steps do not interleave.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "exec/copy_engine.hpp"
#include "exec/expert_store.hpp"
#include "exec/thread_pool.hpp"
#include "hw/cost_model.hpp"
#include "sched/plan.hpp"

namespace hybrimoe::exec {

/// Which backend an OffloadEngine runs its plans through.
enum class ExecutionMode : std::uint8_t {
  Simulated,    ///< discrete-event only: plans are charged, never executed
  Threaded,     ///< plans are lowered to real tasks on real threads, paced
                ///< to the scaled modeled durations
  Performance,  ///< same lowering as Threaded with pacing dropped: every
                ///< task runs flat out, wall clock is real kernel time
};

/// Printable name of an execution mode.
[[nodiscard]] constexpr const char* to_string(ExecutionMode m) noexcept {
  switch (m) {
    case ExecutionMode::Threaded:
      return "threaded";
    case ExecutionMode::Performance:
      return "performance";
    case ExecutionMode::Simulated:
    default:
      return "simulated";
  }
}

/// Tuning knobs of the threaded backend.
struct ExecOptions {
  /// CPU worker threads in the expert pool (>= 1).
  std::size_t workers = 4;
  /// Wall-clock seconds per modeled second. Pick via calibrate_time_scale
  /// (or a wall-time target) so that paced durations dominate real kernel
  /// times and sleep overshoot; 1.0 means real time == modeled time.
  double time_scale = 1.0;
  /// Run real expert FFN kernels and produce layer outputs/digests. When
  /// false the backend paces timing only.
  bool compute_experts = true;
  /// memcpy the expert's weight blob into the device staging buffer on every
  /// transfer (real PCIe traffic stand-in). Pacing applies either way.
  bool copy_weight_blobs = true;
  /// Run experts at Q4 precision: quantized kernels on the hot path and Q4
  /// transfer blobs (~6x smaller than fp32 at the default geometry).
  /// Outputs/digests stay deterministic but differ from fp32 runs.
  bool quantized_experts = false;
  /// Functional expert geometry (decoupled from the cost model's Table II
  /// shapes: scheduling charges the paper's sizes, kernels run small).
  std::size_t d_model = 32;
  std::size_t d_ff = 64;
  /// Seed for the deterministic weight/input store.
  std::uint64_t weight_seed = 0x5EED'0E8Aul;

  /// Throws std::invalid_argument on structurally invalid options.
  void validate() const;
};

/// FNV-1a offset basis — the seed of an empty digest chain.
inline constexpr std::uint64_t kDigestSeed = 0xCBF29CE484222325ULL;

/// Extend an FNV-1a digest chain over `size` raw bytes.
[[nodiscard]] std::uint64_t hash_bytes(std::uint64_t seed, const void* data,
                                       std::size_t size) noexcept;

/// Extend an FNV-1a digest chain with one 64-bit value.
[[nodiscard]] std::uint64_t hash_u64(std::uint64_t seed, std::uint64_t value) noexcept;

/// Outcome of executing one layer plan.
struct LayerResult {
  /// Wall-clock layer window re-expressed in modeled seconds (wall /
  /// time_scale); 0 for the single-threaded reference path.
  double measured = 0.0;
  /// Combined routed-expert output of the layer (empty when
  /// compute_experts is off). Bitwise-deterministic across backends,
  /// worker counts and device assignments.
  std::vector<float> output;
};

/// Outcome of one engine step (one forward pass) on the backend.
struct StepResult {
  double measured = 0.0;           ///< sum of layer windows, modeled seconds
  std::uint64_t digest = kDigestSeed;  ///< chained FNV-1a over layer outputs
  std::size_t layers = 0;          ///< layers executed this step
};

/// One speculative upload (prefetch or cache maintenance) the engine hands
/// to the backend alongside a plan: which expert, over which accelerator
/// link, at what modeled duration. Speculative copies are not waited on —
/// they drain behind the plan's on-demand transfers, exactly like the
/// modeled per-link carry.
struct AsyncCopy {
  moe::ExpertId id;
  std::size_t link = 0;   ///< accelerator/link index (topology order)
  double seconds = 0.0;   ///< modeled transfer duration on that link
};

/// Threaded (and reference) executor for scheduler layer plans.
class HybridExecutor {
 public:
  /// Threads are started lazily on the first threaded layer, so an executor
  /// used only for the reference path never spawns any.
  explicit HybridExecutor(ExecOptions options = {});
  /// Drains the copy engine and joins all backend threads.
  ~HybridExecutor();

  HybridExecutor(const HybridExecutor&) = delete;
  HybridExecutor& operator=(const HybridExecutor&) = delete;

  /// The options this executor was built with (immutable).
  [[nodiscard]] const ExecOptions& options() const noexcept { return options_; }
  /// The deterministic weight/input store (internally synchronized).
  [[nodiscard]] ExpertStore& store() noexcept { return store_; }

  /// Start a step: resets the step accumulator. `paced` selects whether this
  /// step's tasks sleep to their scaled modeled durations (Threaded) or run
  /// flat out (Performance; `measured` then reports raw wall seconds).
  /// Engine thread only; steps must not nest.
  void begin_step(bool paced = true);

  /// Execute one layer plan for real: dispatches each link's transfers to
  /// that link's copy thread (in per-link transfer_order, followed by the
  /// `async_copies` routed to it — speculative uploads that are *not* waited
  /// on and spill into subsequent layers exactly like the modeled per-link
  /// carry), chains CPU tasks through the worker pool, runs the dense head
  /// (`overhead` + plan.gpu_offset) and accelerator 0's tasks on the calling
  /// thread, runs every further accelerator's lane on its dedicated thread,
  /// and returns once every compute task of the plan has finished. Engine
  /// thread only, inside a step; plan.tasks must be non-empty.
  [[nodiscard]] LayerResult execute_layer(const sched::LayerPlan& plan, double overhead,
                                          std::span<const AsyncCopy> async_copies = {});

  /// Single-threaded reference execution: computes the same outputs/digest
  /// as execute_layer with no threads and no pacing (measured == 0). The
  /// bitwise ground truth the threaded backend is validated against.
  [[nodiscard]] LayerResult execute_layer_reference(const sched::LayerPlan& plan);

  /// Pace a layer with no routed experts (dense phase only) on the GPU
  /// lane. Engine thread only, inside a step.
  void pace_dense(double modeled_seconds);

  /// Finish the step: waits for stragglers on the copy engine (their drain
  /// time is *not* part of the measurement — the simulator resets PCIe
  /// carry between steps the same way), rethrows any worker/copy-thread
  /// error, and returns the step's accumulated measurement/digest.
  [[nodiscard]] StepResult end_step();

  /// Abandon an open step after a failure: quiesces the backend (waits for
  /// in-flight tasks, drains copies, discards pending errors and the step
  /// accumulator) so a shared executor is usable for a fresh begin_step
  /// instead of staying wedged. No-op when no step is open. Engine thread
  /// only — the engine's step loop invokes this from its unwind path.
  void abort_step() noexcept;

  /// Measure this host's real kernel/copy/sleep-wakeup times (via
  /// hw::time_callable) and return the smallest time_scale at which the
  /// fastest modeled task of `costs` still comfortably covers them
  /// (`safety` x). Feed the result (or any larger scale, e.g. one chosen
  /// for a wall-time budget) into ExecOptions::time_scale.
  [[nodiscard]] double calibrate_time_scale(const hw::CostModel& costs,
                                            double safety = 8.0);

  /// Copy links spun up so far (lazily grown by ensure_started; 0 before
  /// the first threaded layer).
  [[nodiscard]] std::size_t num_links() const noexcept { return copiers_.size(); }

  /// Copy jobs completed on link `link` so far (monotonic; 0 for a link that
  /// never started). Every expert upload the engine accounts — on-demand,
  /// prefetch or maintenance — is exactly one copy job on its target link,
  /// so these totals are the execution-side witness the trace subsystem's
  /// conservation checks compare per-step transfer records against. Call
  /// between steps (end_step drains the copiers).
  [[nodiscard]] std::uint64_t link_transfers_completed(std::size_t link) const {
    return link < copiers_.size() ? copiers_[link]->completed() : 0;
  }

 private:
  struct LayerBoard;
  /// Lazily spawn the worker pool plus one copy thread per link and one lane
  /// thread per extra accelerator (num_links >= 1, num_lanes >= 0).
  void ensure_started(std::size_t num_links, std::size_t num_lanes);
  /// Run CPU-lane task `pos` of the board, then chain-submit `pos` + 1.
  void run_cpu_chain(const std::shared_ptr<LayerBoard>& board, std::size_t pos);
  /// Run one extra accelerator's whole lane (device index >= 1) on its
  /// dedicated thread: dense head, then its tasks gated on their transfers.
  void run_gpu_lane(const std::shared_ptr<LayerBoard>& board,
                    std::vector<std::size_t> order, double dense_seconds);
  /// memcpy one expert's serialized transfer blob (fp32 or Q4, pre-built in
  /// the store's arena) into `scratch` (one reusable buffer per link).
  void copy_blob(moe::ExpertId id, std::vector<std::byte>& scratch);
  /// Deterministic load-weighted reduction of per-task outputs, then digest.
  [[nodiscard]] std::vector<float> combine_and_digest(
      const sched::LayerPlan& plan, std::vector<std::vector<float>>& slots);

  ExecOptions options_;
  ExpertStore store_;
  /// Per-link device staging buffers (reused across every transfer of a
  /// link's lifetime); entry i is touched by copier i only.
  std::vector<std::unique_ptr<std::vector<std::byte>>> copy_scratch_;
  // Declaration order is load-bearing: the copy/lane threads and worker pool
  // are destroyed (joined) before the store/scratch their tasks reference.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<CopyEngine>> copiers_;   ///< one per link
  std::vector<std::unique_ptr<CopyEngine>> gpu_lanes_; ///< accel 1.. lanes
  StepResult step_;
  bool in_step_ = false;
  bool paced_ = true;           ///< current step paces tasks (set by begin_step)
  bool slack_reduced_ = false;  ///< engine-thread timer slack tightened
};

}  // namespace hybrimoe::exec
