#include "exec/pacing.hpp"

#include <thread>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

namespace hybrimoe::exec {

void reduce_timer_slack() noexcept {
#if defined(__linux__)
  // 1us slack instead of the 50us default: paced sleeps along a task chain
  // otherwise accumulate tens of microseconds of oversleep per hop.
  (void)prctl(PR_SET_TIMERSLACK, 1000UL, 0UL, 0UL, 0UL);
#endif
}

void sleep_until_paced(PaceClock::time_point deadline) noexcept {
  constexpr auto kMinSleep = std::chrono::microseconds(2);
  const auto now = PaceClock::now();
  if (deadline <= now + kMinSleep) return;
  std::this_thread::sleep_until(deadline);
}

}  // namespace hybrimoe::exec
