#include "exec/copy_engine.hpp"

#include <utility>

#include "exec/pacing.hpp"

namespace hybrimoe::exec {

CopyEngine::CopyEngine() : thread_([this] { copy_loop(); }) {}

CopyEngine::~CopyEngine() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_one();
  thread_.join();
}

void CopyEngine::submit(std::function<void()> job) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void CopyEngine::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

std::uint64_t CopyEngine::completed() const {
  std::lock_guard lock(mutex_);
  return completed_;
}

void CopyEngine::rethrow_pending_error() {
  std::exception_ptr error;
  {
    std::lock_guard lock(mutex_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void CopyEngine::copy_loop() {
  reduce_timer_slack();
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop requested and fully drained
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    try {
      job();
    } catch (...) {
      std::lock_guard error_lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    lock.lock();
    busy_ = false;
    ++completed_;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace hybrimoe::exec
