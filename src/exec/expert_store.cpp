#include "exec/expert_store.hpp"

#include <mutex>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace hybrimoe::exec {

namespace {

/// Domain-separation salts so weights and inputs draw from disjoint streams.
constexpr std::uint64_t kWeightSalt = 0x57E1'6877'B10B'5EEDULL;
constexpr std::uint64_t kInputSalt = 0x1A7E'17F0'0D5A'17EDULL;

}  // namespace

ExpertStore::ExpertStore(std::size_t d_model, std::size_t d_ff, std::uint64_t seed)
    : d_model_(d_model), d_ff_(d_ff), seed_(seed) {
  HYBRIMOE_REQUIRE(d_model > 0 && d_ff > 0, "expert store dimensions must be positive");
}

const kernels::ExpertWeights& ExpertStore::weights(moe::ExpertId id) {
  const std::uint32_t key = id.encode();
  {
    std::shared_lock lock(mutex_);
    const auto it = experts_.find(key);
    if (it != experts_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  const auto it = experts_.find(key);  // re-check: another thread may have won
  if (it != experts_.end()) return it->second;
  util::Rng rng(seed_ ^ kWeightSalt ^ (static_cast<std::uint64_t>(key) << 16));
  return experts_.emplace(key, kernels::ExpertWeights::random(rng, d_model_, d_ff_))
      .first->second;
}

std::span<const float> ExpertStore::layer_input(std::uint16_t layer) {
  {
    std::shared_lock lock(mutex_);
    const auto it = inputs_.find(layer);
    if (it != inputs_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  const auto it = inputs_.find(layer);
  if (it != inputs_.end()) return it->second;
  util::Rng rng(seed_ ^ kInputSalt ^ (static_cast<std::uint64_t>(layer) + 1));
  std::vector<float> x(d_model_);
  for (auto& v : x) v = static_cast<float>(rng.gaussian());
  return inputs_.emplace(layer, std::move(x)).first->second;
}

std::size_t ExpertStore::materialized() const {
  std::shared_lock lock(mutex_);
  return experts_.size();
}

}  // namespace hybrimoe::exec
