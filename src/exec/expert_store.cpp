#include "exec/expert_store.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace hybrimoe::exec {

namespace {

/// Domain-separation salts so weights and inputs draw from disjoint streams.
constexpr std::uint64_t kWeightSalt = 0x57E1'6877'B10B'5EEDULL;
constexpr std::uint64_t kInputSalt = 0x1A7E'17F0'0D5A'17EDULL;

/// Q4 payload bytes of one [rows x cols] matrix (rows padded to whole blocks).
std::size_t q4_matrix_bytes(std::size_t rows, std::size_t cols) noexcept {
  const std::size_t blocks_per_row =
      (cols + kernels::Q4Block::kValues - 1) / kernels::Q4Block::kValues;
  return rows * blocks_per_row * sizeof(kernels::Q4Block);
}

}  // namespace

std::span<std::byte> ExpertStore::BlobArena::allocate(std::size_t bytes) {
  used_ = (used_ + 63) & ~static_cast<std::size_t>(63);
  if (used_ + bytes > capacity_) {
    const std::size_t chunk = std::max<std::size_t>(kChunkBytes, bytes);
    chunks_.push_back(std::make_unique<std::byte[]>(chunk));
    used_ = 0;
    capacity_ = chunk;
  }
  std::byte* base = chunks_.back().get() + used_;
  used_ += bytes;
  return {base, bytes};
}

ExpertStore::ExpertStore(std::size_t d_model, std::size_t d_ff, std::uint64_t seed,
                         bool quantized)
    : d_model_(d_model), d_ff_(d_ff), seed_(seed), quantized_(quantized) {
  HYBRIMOE_REQUIRE(d_model > 0 && d_ff > 0, "expert store dimensions must be positive");
}

std::size_t ExpertStore::expert_bytes() const noexcept {
  if (!quantized_) return 3 * d_model_ * d_ff_ * sizeof(float);
  return 2 * q4_matrix_bytes(d_ff_, d_model_) + q4_matrix_bytes(d_model_, d_ff_);
}

const ExpertStore::Entry& ExpertStore::entry(std::uint32_t key) {
  {
    std::shared_lock lock(mutex_);
    const auto it = experts_.find(key);
    if (it != experts_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  const auto it = experts_.find(key);  // re-check: another thread may have won
  if (it != experts_.end()) return it->second;

  util::Rng rng(seed_ ^ kWeightSalt ^ (static_cast<std::uint64_t>(key) << 16));
  Entry e;
  e.weights = kernels::ExpertWeights::random(rng, d_model_, d_ff_);
  const auto blob = arena_.allocate(expert_bytes());
  if (quantized_) {
    e.q4 = kernels::QuantizedExpert(e.weights);
    std::byte* out = blob.data();
    for (const kernels::QuantizedMatrix* m : {&e.q4.gate(), &e.q4.up(), &e.q4.down()}) {
      const auto blocks = m->blocks();
      const std::size_t bytes = blocks.size() * sizeof(kernels::Q4Block);
      std::memcpy(out, blocks.data(), bytes);
      out += bytes;
    }
  } else {
    const std::span<float> dst{reinterpret_cast<float*>(blob.data()),
                               blob.size() / sizeof(float)};
    e.weights.copy_blob_to(dst);
  }
  e.blob = blob;
  return experts_.emplace(key, std::move(e)).first->second;
}

const kernels::ExpertWeights& ExpertStore::weights(moe::ExpertId id) {
  return entry(id.encode()).weights;
}

std::span<const std::byte> ExpertStore::transfer_blob(moe::ExpertId id) {
  return entry(id.encode()).blob;
}

std::vector<float> ExpertStore::forward(moe::ExpertId id, std::span<const float> x) {
  const Entry& e = entry(id.encode());
  thread_local kernels::ForwardScratch scratch;
  return quantized_ ? e.q4.forward(x, scratch)
                    : kernels::expert_forward(e.weights, x, scratch);
}

std::span<const float> ExpertStore::layer_input(std::uint16_t layer) {
  {
    std::shared_lock lock(mutex_);
    const auto it = inputs_.find(layer);
    if (it != inputs_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  const auto it = inputs_.find(layer);
  if (it != inputs_.end()) return it->second;
  util::Rng rng(seed_ ^ kInputSalt ^ (static_cast<std::uint64_t>(layer) + 1));
  std::vector<float> x(d_model_);
  for (auto& v : x) v = static_cast<float>(rng.gaussian());
  return inputs_.emplace(layer, std::move(x)).first->second;
}

std::size_t ExpertStore::materialized() const {
  std::shared_lock lock(mutex_);
  return experts_.size();
}

}  // namespace hybrimoe::exec
