#pragma once

/// \file copy_engine.hpp
/// The PCIe lane of the threaded execution backend: one dedicated thread
/// servicing transfer jobs strictly in submission order, exactly as the
/// simulator models the link as a single serially-occupied resource. Jobs
/// are closures built by the executor — each performs the real work
/// (memcpy of an expert weight blob into the device staging buffer) and
/// paces itself to the scaled modeled transfer duration, then publishes its
/// completion to the task graph.
///
/// Thread-safety: submit() and drain() may be called from any thread (the
/// executor calls them from the engine thread). Jobs run on the copy thread
/// only; completion ordering is FIFO by submission.

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include <condition_variable>

namespace hybrimoe::exec {

/// Single-threaded asynchronous transfer servicer (the simulated PCIe link).
class CopyEngine {
 public:
  /// Spawns the copy thread.
  CopyEngine();
  /// Drains all queued jobs, then joins the copy thread.
  ~CopyEngine();

  CopyEngine(const CopyEngine&) = delete;
  CopyEngine& operator=(const CopyEngine&) = delete;

  /// Enqueue a transfer job; jobs execute strictly in submission order.
  void submit(std::function<void()> job);

  /// Block until every submitted job has completed. Must not be called from
  /// inside a job.
  void drain();

  /// Jobs completed so far (monotonic).
  [[nodiscard]] std::uint64_t completed() const;

  /// Rethrow the first exception that escaped a job, if any (the copy
  /// thread swallowed it to stay alive). Clears the stored exception.
  void rethrow_pending_error();

 private:
  void copy_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::uint64_t completed_ = 0;
  std::exception_ptr first_error_;
  bool busy_ = false;
  bool stop_ = false;
  // Last member: the thread must start only after all state is initialized.
  std::thread thread_;
};

}  // namespace hybrimoe::exec
