#pragma once

/// \file metrics.hpp
/// Per-stage measurements: TTFT for prefill, TBT for decode (§VI-A.4), plus
/// the resource-utilisation and cache statistics the analysis sections use.
/// Request-level serving measurements (per-request TTFT/TBT/E2E, tails,
/// throughput/goodput) live in serve_metrics.hpp; a ServeMetrics embeds one
/// StageMetrics as its aggregate step counters.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cache/expert_cache.hpp"
#include "sched/plan.hpp"
#include "util/assert.hpp"

namespace hybrimoe::runtime {

struct StageMetrics {
  sched::Stage stage = sched::Stage::Prefill;
  std::size_t tokens = 0;  ///< prompt tokens (prefill) or generated tokens (decode)
  double total_latency = 0.0;
  std::vector<double> per_forward;  ///< latency per forward pass

  double attention_time = 0.0;
  double shared_time = 0.0;
  double moe_time = 0.0;  ///< sum of routed-expert plan makespans

  double cpu_busy = 0.0;
  double gpu_busy = 0.0;
  double pcie_busy = 0.0;

  cache::CacheStats cache;        ///< lookups during this stage only
  std::size_t transfers = 0;      ///< on-demand expert uploads
  std::size_t prefetches = 0;     ///< speculative uploads
  std::size_t maintenance = 0;    ///< score-driven cache admissions
  /// Cumulative expert uploads (on-demand + prefetch + maintenance) per
  /// target accelerator — the conservation witness scenario invariants
  /// check: no entry of a lost device may grow while it is lost. Sized on
  /// first run_step; empty until then.
  std::vector<std::size_t> device_transfers;

  /// Wall-clock latency measured by the threaded execution backend,
  /// re-expressed in modeled seconds (wall / time_scale) so it is directly
  /// comparable to total_latency. Stays 0 in simulated mode; the
  /// modeled-vs-measured gap is the validation the §V real-system claim
  /// rests on (bench_exec_validation).
  double measured_latency = 0.0;
  /// Chained FNV-1a digest of every layer output produced by the execution
  /// backend (0 when no executor is attached). Bitwise-equal digests across
  /// execution modes, worker counts and frameworks certify that scheduling
  /// only moves computation — it never changes the result.
  std::uint64_t exec_digest = 0;

  /// Time To First Token — the prefill metric (Fig. 7).
  [[nodiscard]] double ttft() const {
    HYBRIMOE_REQUIRE(stage == sched::Stage::Prefill, "ttft is a prefill metric");
    return total_latency;
  }
  /// Mean Time Between Tokens — the decode metric (Fig. 8).
  [[nodiscard]] double tbt_mean() const {
    HYBRIMOE_REQUIRE(stage == sched::Stage::Decode, "tbt is a decode metric");
    HYBRIMOE_REQUIRE(!per_forward.empty(), "no decode steps recorded");
    return total_latency / static_cast<double>(per_forward.size());
  }
  [[nodiscard]] double tokens_per_second() const {
    return total_latency > 0.0 ? static_cast<double>(tokens) / total_latency : 0.0;
  }
  /// Fraction of total latency each resource was busy.
  [[nodiscard]] double cpu_utilization() const {
    return total_latency > 0.0 ? cpu_busy / total_latency : 0.0;
  }
  [[nodiscard]] double gpu_utilization() const {
    return total_latency > 0.0 ? gpu_busy / total_latency : 0.0;
  }
  [[nodiscard]] double pcie_utilization() const {
    return total_latency > 0.0 ? pcie_busy / total_latency : 0.0;
  }
};

}  // namespace hybrimoe::runtime
