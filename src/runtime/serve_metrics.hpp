#pragma once

/// \file serve_metrics.hpp
/// Request-level serving measurements, the counterpart of StageMetrics for
/// the ServeEngine: per-request TTFT / TBT / E2E and queueing delay, plus
/// stream aggregates (throughput, tail percentiles via util/stats, goodput
/// under a TBT SLO). Same contract style as StageMetrics::tbt_mean() — any
/// accessor whose value would be a 0/0 is guarded by a precondition instead
/// of silently returning garbage.
///
/// Tier awareness: every RequestMetrics carries its priority, and each
/// distribution accessor takes an optional tier filter so tables can report
/// per-tier p50/p95/p99 (the tier-isolation invariant compares VIP tails
/// across load levels). The unfiltered aggregates iterate the same requests
/// in the same order as before tiers existed, so a single-tier stream's
/// aggregate numbers are bit-identical to pre-tier output. Rejected
/// requests (deadline/queue-pressure admission control) are recorded but
/// excluded from every latency distribution — they have no tokens to
/// measure.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "runtime/metrics.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"
#include "workload/request_stream.hpp"

namespace hybrimoe::runtime {

/// Lifecycle timestamps and latency samples of one terminal request
/// (finished, or rejected by admission control).
struct RequestMetrics {
  std::uint64_t id = 0;
  workload::Priority priority = workload::Priority::Standard;
  bool rejected = false;     ///< admission control turned the request away
  double arrival = 0.0;      ///< entered the admission queue
  double admit = 0.0;        ///< left the queue (first batch membership)
  double first_token = 0.0;  ///< last prefill chunk (or first decode step) done
  double finish = 0.0;       ///< final token done
  std::size_t prompt_tokens = 0;
  std::size_t generated_tokens = 0;   ///< emitted tokens (first + decode steps)
  std::size_t preemptions = 0;        ///< prefill pauses suffered
  std::size_t evictions = 0;          ///< KV evict-and-requeue round trips
  std::vector<double> tbt;            ///< inter-token gaps, one per decode step

  [[nodiscard]] double ttft() const {
    HYBRIMOE_REQUIRE(!rejected, "rejected request has no latency");
    HYBRIMOE_REQUIRE(generated_tokens > 0, "request emitted no tokens");
    return first_token - arrival;
  }
  [[nodiscard]] double queueing_delay() const {
    HYBRIMOE_REQUIRE(!rejected, "rejected request has no latency");
    return admit - arrival;
  }
  [[nodiscard]] double e2e() const {
    HYBRIMOE_REQUIRE(!rejected, "rejected request has no latency");
    HYBRIMOE_REQUIRE(finish >= arrival, "request never finished");
    return finish - arrival;
  }
  [[nodiscard]] double tbt_mean() const {
    HYBRIMOE_REQUIRE(!tbt.empty(), "no decode gaps recorded");
    return util::mean(tbt);
  }
  /// SLO check used by goodput: the request's p95 inter-token gap stays
  /// within `tbt_slo`. Requests with no decode steps trivially meet it.
  [[nodiscard]] bool meets_tbt_slo(double tbt_slo) const {
    HYBRIMOE_REQUIRE(tbt_slo > 0.0, "TBT SLO must be positive");
    return tbt.empty() || util::p95(tbt) <= tbt_slo;
  }
};

/// Aggregate result of one ServeEngine::run: every request's metrics (in
/// arrival order, all terminal — the engine asserts each is finished or
/// rejected), the summed engine counters over the composed steps, and the
/// serving clock.
struct ServeMetrics {
  /// Optional tier filter for the distribution accessors: nullopt = every
  /// tier (the historical aggregates).
  using TierFilter = std::optional<workload::Priority>;

  std::vector<RequestMetrics> requests;
  /// Engine counters accumulated across every composed step: per-step
  /// latencies in per_forward, busy times, cache stats, transfer counts.
  StageMetrics steps;
  /// Final serving clock — busy step time plus idle gaps waiting for
  /// arrivals. Rates divide by this, not by steps.total_latency.
  double makespan = 0.0;

  /// KV-cache accounting outcome of the run. All zeros when accounting is
  /// disabled — consumers that predate KV see the same JSON they always did
  /// because emitters only write this block when budget_bytes > 0.
  struct KvSummary {
    double budget_bytes = 0.0;   ///< enforced budget
    double peak_bytes = 0.0;     ///< high-water mark of reserved KV
    std::size_t rejected = 0;    ///< requests shed by KV admission
    std::size_t evictions = 0;   ///< evict-and-requeue round trips
  };
  KvSummary kv;

  [[nodiscard]] std::size_t total_generated_tokens() const {
    std::size_t total = 0;
    for (const auto& r : requests) total += r.generated_tokens;
    return total;
  }
  [[nodiscard]] std::size_t finished_count() const {
    std::size_t n = 0;
    for (const auto& r : requests) n += r.rejected ? 0 : 1;
    return n;
  }
  [[nodiscard]] std::size_t rejected_count() const {
    return requests.size() - finished_count();
  }
  /// Total KV evict-and-requeue round trips across the stream (0 when KV
  /// accounting is disabled).
  [[nodiscard]] std::size_t eviction_count() const {
    std::size_t n = 0;
    for (const auto& r : requests) n += r.evictions;
    return n;
  }
  /// Terminal requests of one tier (finished + rejected).
  [[nodiscard]] std::size_t tier_count(workload::Priority tier) const {
    std::size_t n = 0;
    for (const auto& r : requests) n += r.priority == tier ? 1 : 0;
    return n;
  }

  /// Output tokens per second of serving time (0 for an empty run).
  [[nodiscard]] double throughput() const {
    return makespan > 0.0 ? static_cast<double>(total_generated_tokens()) / makespan
                          : 0.0;
  }
  /// Finished requests per second of serving time (0 for an empty run).
  [[nodiscard]] double request_throughput() const {
    return makespan > 0.0 ? static_cast<double>(finished_count()) / makespan : 0.0;
  }
  /// Output tokens per second from requests that met the TBT SLO — the
  /// throughput a latency-bound deployment can actually sell.
  [[nodiscard]] double goodput(double tbt_slo) const {
    if (makespan <= 0.0) return 0.0;
    std::size_t tokens = 0;
    for (const auto& r : requests)
      if (!r.rejected && r.meets_tbt_slo(tbt_slo)) tokens += r.generated_tokens;
    return static_cast<double>(tokens) / makespan;
  }

  // -- Latency distributions ---------------------------------------------
  // Each accessor walks `requests` in order, skipping rejected requests and
  // (when a tier filter is given) other tiers.
  [[nodiscard]] std::vector<double> ttfts(TierFilter tier = {}) const {
    std::vector<double> out;
    out.reserve(requests.size());
    for (const auto& r : requests)
      if (counted(r, tier)) out.push_back(r.ttft());
    return out;
  }
  [[nodiscard]] std::vector<double> e2es(TierFilter tier = {}) const {
    std::vector<double> out;
    out.reserve(requests.size());
    for (const auto& r : requests)
      if (counted(r, tier)) out.push_back(r.e2e());
    return out;
  }
  [[nodiscard]] std::vector<double> queueing_delays(TierFilter tier = {}) const {
    std::vector<double> out;
    out.reserve(requests.size());
    for (const auto& r : requests)
      if (counted(r, tier)) out.push_back(r.queueing_delay());
    return out;
  }
  /// All inter-token gaps pooled across requests.
  [[nodiscard]] std::vector<double> tbts(TierFilter tier = {}) const {
    std::vector<double> out;
    for (const auto& r : requests)
      if (counted(r, tier)) out.insert(out.end(), r.tbt.begin(), r.tbt.end());
    return out;
  }

  /// The p50/p95/p99 trio the serving tables report.
  struct TailSummary {
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  [[nodiscard]] TailSummary ttft_tails(TierFilter tier = {}) const {
    return tails(ttfts(tier), "no finished requests");
  }
  [[nodiscard]] TailSummary tbt_tails(TierFilter tier = {}) const {
    return tails(tbts(tier), "no decode gaps recorded");
  }
  [[nodiscard]] TailSummary e2e_tails(TierFilter tier = {}) const {
    return tails(e2es(tier), "no finished requests");
  }

  /// One row of a load sweep: the headline numbers a (shape, load) cell
  /// reports — everything guarded against empty distributions so a fully
  /// shed run still summarises (zeros instead of preconditions firing).
  /// `shape` and `arrival_rate` describe the workload and are filled by the
  /// caller via summarize()'s arguments.
  struct LoadSummary {
    std::string shape;           ///< arrival shape name ("poisson", ...)
    double arrival_rate = 0.0;   ///< offered load (requests/s)
    double tbt_slo = 0.0;        ///< SLO the goodput figure is judged under
    std::size_t requests = 0;
    std::size_t finished = 0;
    std::size_t rejected = 0;
    std::size_t evictions = 0;
    double reject_rate = 0.0;    ///< rejected / requests
    double ttft_p50 = 0.0;       ///< 0 when nothing finished
    double ttft_p99 = 0.0;
    double tbt_p50 = 0.0;        ///< 0 when no decode gaps were recorded
    double tbt_p99 = 0.0;
    double throughput = 0.0;     ///< output tokens/s over the makespan
    double goodput = 0.0;        ///< tokens/s from requests meeting the SLO
    double makespan = 0.0;
  };

  /// \brief Summarise the run as one load-sweep row for workload `shape` at
  /// offered `arrival_rate`, judging goodput under `tbt_slo` (0 = no SLO;
  /// goodput then equals throughput).
  [[nodiscard]] LoadSummary summarize(std::string shape, double arrival_rate,
                                      double tbt_slo) const {
    LoadSummary row;
    row.shape = std::move(shape);
    row.arrival_rate = arrival_rate;
    row.tbt_slo = tbt_slo;
    row.requests = requests.size();
    row.finished = finished_count();
    row.rejected = rejected_count();
    row.evictions = eviction_count();
    row.reject_rate = requests.empty()
                          ? 0.0
                          : static_cast<double>(row.rejected) /
                                static_cast<double>(requests.size());
    if (const auto v = ttfts(); !v.empty()) {
      row.ttft_p50 = util::percentile(v, 50.0);
      row.ttft_p99 = util::percentile(v, 99.0);
    }
    if (const auto v = tbts(); !v.empty()) {
      row.tbt_p50 = util::percentile(v, 50.0);
      row.tbt_p99 = util::percentile(v, 99.0);
    }
    row.throughput = throughput();
    row.goodput = tbt_slo > 0.0 ? goodput(tbt_slo) : row.throughput;
    row.makespan = makespan;
    return row;
  }

  /// Tail accessors (q in [0,100]); require at least one sample.
  [[nodiscard]] double ttft_p(double q, TierFilter tier = {}) const {
    const auto v = ttfts(tier);
    HYBRIMOE_REQUIRE(!v.empty(), "no finished requests");
    return util::percentile(v, q);
  }
  [[nodiscard]] double tbt_p(double q, TierFilter tier = {}) const {
    const auto v = tbts(tier);
    HYBRIMOE_REQUIRE(!v.empty(), "no decode gaps recorded");
    return util::percentile(v, q);
  }
  [[nodiscard]] double e2e_p(double q, TierFilter tier = {}) const {
    const auto v = e2es(tier);
    HYBRIMOE_REQUIRE(!v.empty(), "no finished requests");
    return util::percentile(v, q);
  }

 private:
  [[nodiscard]] static bool counted(const RequestMetrics& r, TierFilter tier) {
    return !r.rejected && (!tier.has_value() || r.priority == *tier);
  }
  [[nodiscard]] static TailSummary tails(const std::vector<double>& v,
                                         const char* what) {
    HYBRIMOE_REQUIRE(!v.empty(), what);
    return {util::p50(v), util::p95(v), util::p99(v)};
  }
};

}  // namespace hybrimoe::runtime
