#pragma once

/// \file serve_metrics.hpp
/// Request-level serving measurements, the counterpart of StageMetrics for
/// the ServeEngine: per-request TTFT / TBT / E2E and queueing delay, plus
/// stream aggregates (throughput, tail percentiles via util/stats, goodput
/// under a TBT SLO). Same contract style as StageMetrics::tbt_mean() — any
/// accessor whose value would be a 0/0 is guarded by a precondition instead
/// of silently returning garbage.

#include <cstdint>
#include <vector>

#include "runtime/metrics.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace hybrimoe::runtime {

/// Lifecycle timestamps and latency samples of one *finished* request.
struct RequestMetrics {
  std::uint64_t id = 0;
  double arrival = 0.0;      ///< entered the admission queue
  double admit = 0.0;        ///< left the queue (first batch membership)
  double first_token = 0.0;  ///< last prefill chunk (or first decode step) done
  double finish = 0.0;       ///< final token done
  std::size_t prompt_tokens = 0;
  std::size_t generated_tokens = 0;   ///< emitted tokens (first + decode steps)
  std::vector<double> tbt;            ///< inter-token gaps, one per decode step

  [[nodiscard]] double ttft() const {
    HYBRIMOE_REQUIRE(generated_tokens > 0, "request emitted no tokens");
    return first_token - arrival;
  }
  [[nodiscard]] double queueing_delay() const { return admit - arrival; }
  [[nodiscard]] double e2e() const {
    HYBRIMOE_REQUIRE(finish >= arrival, "request never finished");
    return finish - arrival;
  }
  [[nodiscard]] double tbt_mean() const {
    HYBRIMOE_REQUIRE(!tbt.empty(), "no decode gaps recorded");
    return util::mean(tbt);
  }
  /// SLO check used by goodput: the request's p95 inter-token gap stays
  /// within `tbt_slo`. Requests with no decode steps trivially meet it.
  [[nodiscard]] bool meets_tbt_slo(double tbt_slo) const {
    HYBRIMOE_REQUIRE(tbt_slo > 0.0, "TBT SLO must be positive");
    return tbt.empty() || util::p95(tbt) <= tbt_slo;
  }
};

/// Aggregate result of one ServeEngine::run: every request's metrics (in
/// arrival order, all finished — the engine asserts completion), the summed
/// engine counters over the composed steps, and the serving clock.
struct ServeMetrics {
  std::vector<RequestMetrics> requests;
  /// Engine counters accumulated across every composed step: per-step
  /// latencies in per_forward, busy times, cache stats, transfer counts.
  StageMetrics steps;
  /// Final serving clock — busy step time plus idle gaps waiting for
  /// arrivals. Rates divide by this, not by steps.total_latency.
  double makespan = 0.0;

  [[nodiscard]] std::size_t total_generated_tokens() const {
    std::size_t total = 0;
    for (const auto& r : requests) total += r.generated_tokens;
    return total;
  }

  /// Output tokens per second of serving time (0 for an empty run).
  [[nodiscard]] double throughput() const {
    return makespan > 0.0 ? static_cast<double>(total_generated_tokens()) / makespan
                          : 0.0;
  }
  /// Finished requests per second of serving time (0 for an empty run).
  [[nodiscard]] double request_throughput() const {
    return makespan > 0.0 ? static_cast<double>(requests.size()) / makespan : 0.0;
  }
  /// Output tokens per second from requests that met the TBT SLO — the
  /// throughput a latency-bound deployment can actually sell.
  [[nodiscard]] double goodput(double tbt_slo) const {
    if (makespan <= 0.0) return 0.0;
    std::size_t tokens = 0;
    for (const auto& r : requests)
      if (r.meets_tbt_slo(tbt_slo)) tokens += r.generated_tokens;
    return static_cast<double>(tokens) / makespan;
  }

  // -- Latency distributions ---------------------------------------------
  [[nodiscard]] std::vector<double> ttfts() const {
    std::vector<double> out;
    out.reserve(requests.size());
    for (const auto& r : requests) out.push_back(r.ttft());
    return out;
  }
  [[nodiscard]] std::vector<double> e2es() const {
    std::vector<double> out;
    out.reserve(requests.size());
    for (const auto& r : requests) out.push_back(r.e2e());
    return out;
  }
  [[nodiscard]] std::vector<double> queueing_delays() const {
    std::vector<double> out;
    out.reserve(requests.size());
    for (const auto& r : requests) out.push_back(r.queueing_delay());
    return out;
  }
  /// All inter-token gaps pooled across requests.
  [[nodiscard]] std::vector<double> tbts() const {
    std::vector<double> out;
    for (const auto& r : requests) out.insert(out.end(), r.tbt.begin(), r.tbt.end());
    return out;
  }

  /// The p50/p95/p99 trio the serving tables report.
  struct TailSummary {
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  [[nodiscard]] TailSummary ttft_tails() const { return tails(ttfts(), "no finished requests"); }
  [[nodiscard]] TailSummary tbt_tails() const { return tails(tbts(), "no decode gaps recorded"); }
  [[nodiscard]] TailSummary e2e_tails() const { return tails(e2es(), "no finished requests"); }

  /// Tail accessors (q in [0,100]); require at least one sample.
  [[nodiscard]] double ttft_p(double q) const {
    const auto v = ttfts();
    HYBRIMOE_REQUIRE(!v.empty(), "no finished requests");
    return util::percentile(v, q);
  }
  [[nodiscard]] double tbt_p(double q) const {
    const auto v = tbts();
    HYBRIMOE_REQUIRE(!v.empty(), "no decode gaps recorded");
    return util::percentile(v, q);
  }
  [[nodiscard]] double e2e_p(double q) const {
    const auto v = e2es();
    HYBRIMOE_REQUIRE(!v.empty(), "no finished requests");
    return util::percentile(v, q);
  }

 private:
  [[nodiscard]] static TailSummary tails(const std::vector<double>& v,
                                         const char* what) {
    HYBRIMOE_REQUIRE(!v.empty(), what);
    return {util::p50(v), util::p95(v), util::p99(v)};
  }
};

}  // namespace hybrimoe::runtime
