#include "runtime/stack_spec.hpp"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <variant>
#include <vector>

#include "cache/mrs_policy.hpp"
#include "core/prefetcher.hpp"
#include "exec/executor.hpp"
#include "runtime/stack_registry.hpp"
#include "util/assert.hpp"
#include "util/registry.hpp"

namespace hybrimoe::runtime {

namespace {

[[noreturn]] void spec_error(std::size_t offset, const std::string& message) {
  std::ostringstream os;
  os << "stack spec error at offset " << offset << ": " << message;
  throw std::invalid_argument(os.str());
}

// ---------------------------------------------------------------------------
// JSON subset: objects, strings, numbers, booleans. No arrays, no null —
// nothing in the spec grammar needs them, and every unsupported construct
// fails with a position-stamped error instead of parsing loosely.
// ---------------------------------------------------------------------------

struct JsonValue;
/// Insertion-ordered so error messages point at the offending source key.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  std::variant<std::string, double, bool, JsonObject> value;
  std::size_t offset = 0;  ///< where this value started, for error messages

  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(value); }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] JsonValue parse_document() {
    skip_whitespace();
    if (at_end() || peek() != '{')
      spec_error(pos_, "a stack spec must be a JSON object starting with '{'");
    JsonValue value = parse_value();
    skip_whitespace();
    if (!at_end()) spec_error(pos_, "trailing characters after the spec object");
    return value;
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_whitespace() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r'))
      ++pos_;
  }

  void expect(char c, const char* what) {
    if (at_end() || peek() != c)
      spec_error(pos_, std::string("expected ") + what);
    ++pos_;
  }

  [[nodiscard]] JsonValue parse_value() {
    skip_whitespace();
    if (at_end()) spec_error(pos_, "unexpected end of spec");
    const std::size_t start = pos_;
    const char c = peek();
    if (c == '{') return {parse_object(), start};
    if (c == '"') return {parse_string(), start};
    if (c == 't' || c == 'f') return {parse_bool(), start};
    if (c == '-' || (c >= '0' && c <= '9')) return {parse_number(), start};
    spec_error(pos_, std::string("unexpected character '") + c +
                         "' (expected an object, string, number or boolean)");
  }

  [[nodiscard]] JsonObject parse_object() {
    expect('{', "'{'");
    JsonObject object;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skip_whitespace();
      const std::size_t key_offset = pos_;
      if (at_end() || peek() != '"') spec_error(pos_, "expected a quoted key");
      std::string key = parse_string();
      for (const auto& [existing, value] : object)
        if (existing == key)
          spec_error(key_offset, "duplicate key '" + key + "'");
      skip_whitespace();
      expect(':', "':' after key");
      object.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (at_end()) spec_error(pos_, "unterminated object (missing '}')");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}', "',' or '}'");
      return object;
    }
  }

  [[nodiscard]] std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      if (at_end()) spec_error(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (at_end()) spec_error(pos_, "unterminated escape");
        const char e = text_[pos_++];
        if (e == '"' || e == '\\' || e == '/') {
          out.push_back(e);
        } else {
          spec_error(pos_ - 1, std::string("unsupported escape '\\") + e + "'");
        }
        continue;
      }
      out.push_back(c);
    }
  }

  [[nodiscard]] bool parse_bool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return false;
    }
    spec_error(pos_, "expected 'true' or 'false'");
  }

  [[nodiscard]] double parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
      return pos_ > before;
    };
    if (!digits()) spec_error(pos_, "malformed number");
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (!digits()) spec_error(pos_, "malformed number (digits required after '.')");
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) spec_error(pos_, "malformed exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    return std::strtod(token.c_str(), nullptr);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// JsonValue -> StackSpec with per-object allowed-key checking.
// ---------------------------------------------------------------------------

[[noreturn]] void unknown_key(const JsonValue& value, std::string_view family,
                              std::string_view key,
                              const std::vector<std::string>& allowed) {
  spec_error(value.offset, util::unknown_name_message(family, key, allowed));
}

const std::string& as_string(const JsonValue& v, const std::string& key) {
  if (!v.is_string()) spec_error(v.offset, "'" + key + "' must be a string");
  return std::get<std::string>(v.value);
}

double as_number(const JsonValue& v, const std::string& key) {
  if (!std::holds_alternative<double>(v.value))
    spec_error(v.offset, "'" + key + "' must be a number");
  return std::get<double>(v.value);
}

bool as_bool(const JsonValue& v, const std::string& key) {
  if (!std::holds_alternative<bool>(v.value))
    spec_error(v.offset, "'" + key + "' must be true or false");
  return std::get<bool>(v.value);
}

std::size_t as_count(const JsonValue& v, const std::string& key) {
  const double d = as_number(v, key);
  if (d < 0.0 || d != std::floor(d) || d > 9e15)
    spec_error(v.offset, "'" + key + "' must be a non-negative integer");
  return static_cast<std::size_t>(d);
}

/// "scheduler": "hybrid"  |  {"policy": "hybrid", "gpu_fraction": 0.5}
SchedulerSpec parse_scheduler(const JsonValue& v) {
  SchedulerSpec out;
  if (v.is_string()) {
    out.policy = std::get<std::string>(v.value);
    return out;
  }
  if (!v.is_object()) spec_error(v.offset, "'scheduler' must be a string or an object");
  static const std::vector<std::string> kKeys{"gpu_fraction", "policy"};
  for (const auto& [key, value] : std::get<JsonObject>(v.value)) {
    if (key == "policy") {
      out.policy = as_string(value, key);
    } else if (key == "gpu_fraction") {
      out.gpu_fraction = as_number(value, key);
    } else {
      unknown_key(value, "scheduler option", key, kKeys);
    }
  }
  return out;
}

/// "cache": "lru"  |  {"policy": "mrs", "ratio": 0.25, "alpha": 0.3, ...}
CacheSpec parse_cache(const JsonValue& v) {
  CacheSpec out;
  if (v.is_string()) {
    out.policy = std::get<std::string>(v.value);
    return out;
  }
  if (!v.is_object()) spec_error(v.offset, "'cache' must be a string or an object");
  static const std::vector<std::string> kKeys{"alpha", "policy", "ratio", "top_p_factor"};
  for (const auto& [key, value] : std::get<JsonObject>(v.value)) {
    if (key == "policy") {
      out.policy = as_string(value, key);
    } else if (key == "ratio") {
      out.ratio = as_number(value, key);
    } else if (key == "alpha") {
      out.alpha = as_number(value, key);
    } else if (key == "top_p_factor") {
      out.top_p_factor = as_count(value, key);
    } else {
      unknown_key(value, "cache option", key, kKeys);
    }
  }
  return out;
}

/// "prefetch": "impact"  |  {"policy": "impact", "depth": 3, ...}
PrefetchSpec parse_prefetch(const JsonValue& v) {
  PrefetchSpec out;
  if (v.is_string()) {
    out.policy = std::get<std::string>(v.value);
    return out;
  }
  if (!v.is_object()) spec_error(v.offset, "'prefetch' must be a string or an object");
  static const std::vector<std::string> kKeys{"confidence_decay", "depth",
                                              "max_per_layer", "policy"};
  for (const auto& [key, value] : std::get<JsonObject>(v.value)) {
    if (key == "policy") {
      out.policy = as_string(value, key);
    } else if (key == "depth") {
      out.depth = as_count(value, key);
    } else if (key == "confidence_decay") {
      out.confidence_decay = as_number(value, key);
    } else if (key == "max_per_layer") {
      out.max_per_layer = as_count(value, key);
    } else {
      unknown_key(value, "prefetch option", key, kKeys);
    }
  }
  return out;
}

/// "topology": "dual_a6000"  |  {"preset": "quad_sim", "devices": 4}
TopologySpec parse_topology(const JsonValue& v) {
  TopologySpec out;
  if (v.is_string()) {
    out.preset = std::get<std::string>(v.value);
    return out;
  }
  if (!v.is_object()) spec_error(v.offset, "'topology' must be a string or an object");
  static const std::vector<std::string> kKeys{"devices", "preset"};
  for (const auto& [key, value] : std::get<JsonObject>(v.value)) {
    if (key == "preset") {
      out.preset = as_string(value, key);
    } else if (key == "devices") {
      out.devices = as_count(value, key);
    } else {
      unknown_key(value, "topology option", key, kKeys);
    }
  }
  return out;
}

exec::ExecutionMode exec_from_name(const JsonValue& v) {
  const std::string& name = as_string(v, "exec");
  if (name == "simulated") return exec::ExecutionMode::Simulated;
  if (name == "threaded") return exec::ExecutionMode::Threaded;
  static const std::vector<std::string> kModes{"simulated", "threaded"};
  spec_error(v.offset, util::unknown_name_message("execution mode", name, kModes));
}

// ---------------------------------------------------------------------------
// Serialisation.
// ---------------------------------------------------------------------------

std::string quote(std::string_view s) { return json_quote(s); }

/// Shortest decimal form that parses back to the same double, so the JSON
/// round trip is exact without printing 17 digits for 0.25 (and integral
/// values like 120 stay "120", not "1.2e+02").
std::string format_number(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream os;
    os << std::setprecision(15) << std::fixed << v;
    std::string s = os.str();
    s.erase(s.find('.'));  // integral: drop the fractional zeros
    if (std::strtod(s.c_str(), nullptr) == v) return s;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    if (std::strtod(os.str().c_str(), nullptr) == v) return os.str();
  }
  HYBRIMOE_ASSERT(false, "a double must round-trip at 17 significant digits");
}

/// Appends ", \"key\": " (first field omits the comma).
class FieldWriter {
 public:
  explicit FieldWriter(std::ostringstream& os) : os_(os) {}
  std::ostringstream& field(const char* key) {
    if (!first_) os_ << ", ";
    first_ = false;
    os_ << '"' << key << "\": ";
    return os_;
  }

 private:
  std::ostringstream& os_;
  bool first_ = true;
};

}  // namespace

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

const char* to_string(WarmupSeeding w) {
  switch (w) {
    case WarmupSeeding::None: return "none";
    case WarmupSeeding::Seeded: return "seeded";
    case WarmupSeeding::Pinned: return "pinned";
  }
  HYBRIMOE_ASSERT(false, "unrepresentable WarmupSeeding value");
}

WarmupSeeding warmup_from_name(std::string_view name) {
  if (name == "none") return WarmupSeeding::None;
  if (name == "seeded") return WarmupSeeding::Seeded;
  if (name == "pinned") return WarmupSeeding::Pinned;
  static const std::vector<std::string> kNames{"none", "pinned", "seeded"};
  throw std::invalid_argument(util::unknown_name_message("warmup seeding", name, kNames));
}

std::string StackSpec::default_name() const {
  std::string out = scheduler.policy + "+" + cache.policy;
  if (prefetch.policy != "none") out += "+" + prefetch.policy;
  return out;
}

std::string StackSpec::display_name() const {
  return name.empty() ? default_name() : name;
}

void StackSpec::validate() const {
  // Component names resolve through the registries, so unknown names fail
  // with the registry's did-you-mean message listing what is available.
  (void)scheduler_registry().get(scheduler.policy);
  (void)cache_policy_registry().get(cache.policy);
  (void)prefetcher_registry().get(prefetch.policy);

  if (scheduler.gpu_fraction.has_value()) {
    HYBRIMOE_REQUIRE(scheduler.policy == "static-layer",
                     "scheduler option 'gpu_fraction' only applies to policy "
                     "'static-layer' (got '" + scheduler.policy + "')");
    HYBRIMOE_REQUIRE(*scheduler.gpu_fraction >= 0.0 && *scheduler.gpu_fraction <= 1.0,
                     "scheduler 'gpu_fraction' must be in [0, 1]");
  }

  if (cache.ratio.has_value())
    HYBRIMOE_REQUIRE(*cache.ratio >= 0.0 && *cache.ratio <= 1.0,
                     "cache 'ratio' must be in [0, 1]");
  if (cache.alpha.has_value() || cache.top_p_factor.has_value()) {
    HYBRIMOE_REQUIRE(cache.policy == "mrs",
                     "cache options 'alpha'/'top_p_factor' only apply to policy "
                     "'mrs' (got '" + cache.policy + "')");
    cache::MrsPolicy::Params params;
    if (cache.alpha.has_value()) params.alpha = *cache.alpha;
    if (cache.top_p_factor.has_value()) params.top_p_factor = *cache.top_p_factor;
    params.validate();
  }

  if (prefetch.depth.has_value() || prefetch.confidence_decay.has_value())
    HYBRIMOE_REQUIRE(prefetch.policy == "impact",
                     "prefetch options 'depth'/'confidence_decay' only apply to "
                     "policy 'impact' (got '" + prefetch.policy + "')");
  if (prefetch.max_per_layer.has_value())
    HYBRIMOE_REQUIRE(prefetch.policy == "impact" || prefetch.policy == "next-layer",
                     "prefetch option 'max_per_layer' requires a prefetching "
                     "policy (got '" + prefetch.policy + "')");
  if (prefetch.policy == "impact") {
    core::ImpactDrivenPrefetcher::Params params;
    if (prefetch.depth.has_value()) params.depth = *prefetch.depth;
    if (prefetch.confidence_decay.has_value())
      params.confidence_decay = *prefetch.confidence_decay;
    if (prefetch.max_per_layer.has_value()) params.max_per_layer = *prefetch.max_per_layer;
    params.validate();
  } else if (prefetch.max_per_layer.has_value()) {
    HYBRIMOE_REQUIRE(*prefetch.max_per_layer >= 1,
                     "prefetch 'max_per_layer' must be >= 1");
  }

  if (!topology.preset.empty()) (void)topology_registry().get(topology.preset);
  if (topology.devices.has_value())
    HYBRIMOE_REQUIRE(*topology.devices >= 1 && *topology.devices <= 254,
                     "topology 'devices' must be in [1, 254]");

  if (overhead_us.has_value())
    HYBRIMOE_REQUIRE(*overhead_us >= 0.0, "'overhead_us' must be >= 0");
}

StackSpec parse_stack_spec(std::string_view text) {
  const JsonValue document = Parser(text).parse_document();
  static const std::vector<std::string> kKeys{
      "cache",          "cache_maintenance", "dynamic_inserts", "exec",
      "name",           "overhead_us",       "prefetch",        "scheduler",
      "topology",       "update_scores",     "warmup"};

  StackSpec spec;
  for (const auto& [key, value] : std::get<JsonObject>(document.value)) {
    if (key == "name") {
      spec.name = as_string(value, key);
    } else if (key == "scheduler") {
      spec.scheduler = parse_scheduler(value);
    } else if (key == "cache") {
      spec.cache = parse_cache(value);
    } else if (key == "prefetch") {
      spec.prefetch = parse_prefetch(value);
    } else if (key == "topology") {
      spec.topology = parse_topology(value);
    } else if (key == "dynamic_inserts") {
      spec.dynamic_cache_inserts = as_bool(value, key);
    } else if (key == "update_scores") {
      spec.update_policy_scores = as_bool(value, key);
    } else if (key == "cache_maintenance") {
      spec.cache_maintenance = as_bool(value, key);
    } else if (key == "overhead_us") {
      spec.overhead_us = as_number(value, key);
    } else if (key == "warmup") {
      try {
        spec.warmup = warmup_from_name(as_string(value, key));
      } catch (const std::invalid_argument& e) {
        spec_error(value.offset, e.what());
      }
    } else if (key == "exec") {
      spec.execution = exec_from_name(value);
    } else {
      unknown_key(value, "spec key", key, kKeys);
    }
  }
  return spec;
}

std::string to_json(const StackSpec& spec) {
  std::ostringstream os;
  os << "{";
  FieldWriter w(os);

  if (!spec.name.empty()) w.field("name") << quote(spec.name);

  if (spec.scheduler.gpu_fraction.has_value()) {
    w.field("scheduler") << "{\"policy\": " << quote(spec.scheduler.policy)
                         << ", \"gpu_fraction\": "
                         << format_number(*spec.scheduler.gpu_fraction) << "}";
  } else {
    w.field("scheduler") << quote(spec.scheduler.policy);
  }

  const bool cache_policy_only = !spec.cache.ratio.has_value() &&
                                 !spec.cache.alpha.has_value() &&
                                 !spec.cache.top_p_factor.has_value();
  if (cache_policy_only) {
    w.field("cache") << quote(spec.cache.policy);
  } else {
    w.field("cache") << "{\"policy\": " << quote(spec.cache.policy);
    if (spec.cache.ratio.has_value())
      os << ", \"ratio\": " << format_number(*spec.cache.ratio);
    if (spec.cache.alpha.has_value())
      os << ", \"alpha\": " << format_number(*spec.cache.alpha);
    if (spec.cache.top_p_factor.has_value())
      os << ", \"top_p_factor\": " << *spec.cache.top_p_factor;
    os << "}";
  }

  const bool prefetch_policy_only = !spec.prefetch.depth.has_value() &&
                                    !spec.prefetch.confidence_decay.has_value() &&
                                    !spec.prefetch.max_per_layer.has_value();
  if (prefetch_policy_only) {
    w.field("prefetch") << quote(spec.prefetch.policy);
  } else {
    w.field("prefetch") << "{\"policy\": " << quote(spec.prefetch.policy);
    if (spec.prefetch.depth.has_value()) os << ", \"depth\": " << *spec.prefetch.depth;
    if (spec.prefetch.confidence_decay.has_value())
      os << ", \"confidence_decay\": " << format_number(*spec.prefetch.confidence_decay);
    if (spec.prefetch.max_per_layer.has_value())
      os << ", \"max_per_layer\": " << *spec.prefetch.max_per_layer;
    os << "}";
  }

  if (!spec.topology.empty()) {
    if (spec.topology.devices.has_value()) {
      w.field("topology") << "{\"preset\": " << quote(spec.topology.preset)
                          << ", \"devices\": " << *spec.topology.devices << "}";
    } else {
      w.field("topology") << quote(spec.topology.preset);
    }
  }

  w.field("dynamic_inserts") << (spec.dynamic_cache_inserts ? "true" : "false");
  w.field("update_scores") << (spec.update_policy_scores ? "true" : "false");
  w.field("cache_maintenance") << (spec.cache_maintenance ? "true" : "false");
  if (spec.overhead_us.has_value())
    w.field("overhead_us") << format_number(*spec.overhead_us);
  w.field("warmup") << quote(to_string(spec.warmup));
  if (spec.execution.has_value())
    w.field("exec") << quote(exec::to_string(*spec.execution));

  os << "}";
  return os.str();
}

}  // namespace hybrimoe::runtime
