#include "runtime/stack_spec.hpp"

#include <sstream>
#include <variant>
#include <vector>

#include "cache/mrs_policy.hpp"
#include "core/prefetcher.hpp"
#include "exec/executor.hpp"
#include "runtime/stack_registry.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/registry.hpp"

namespace hybrimoe::runtime {

namespace {

// The JSON machinery (parser, typed accessors, emission helpers) lives in
// util/json.hpp, shared with the scenario spec grammar. "stack spec" is the
// context stamped into every error message.
using JsonValue = util::json::Value;
using JsonObject = util::json::Object;
using util::json::as_bool;
using util::json::as_count;
using util::json::as_number;
using util::json::as_string;
using util::json::format_number;
using util::json::FieldWriter;

[[noreturn]] void spec_error(std::size_t offset, const std::string& message) {
  util::json::error("stack spec", offset, message);
}

// ---------------------------------------------------------------------------
// JsonValue -> StackSpec with per-object allowed-key checking.
// ---------------------------------------------------------------------------

[[noreturn]] void unknown_key(const JsonValue& value, std::string_view family,
                              std::string_view key,
                              const std::vector<std::string>& allowed) {
  spec_error(value.offset, util::unknown_name_message(family, key, allowed));
}

/// "scheduler": "hybrid"  |  {"policy": "hybrid", "gpu_fraction": 0.5}
SchedulerSpec parse_scheduler(const JsonValue& v) {
  SchedulerSpec out;
  if (v.is_string()) {
    out.policy = std::get<std::string>(v.value);
    return out;
  }
  if (!v.is_object()) spec_error(v.offset, "'scheduler' must be a string or an object");
  static const std::vector<std::string> kKeys{"gpu_fraction", "policy"};
  for (const auto& [key, value] : std::get<JsonObject>(v.value)) {
    if (key == "policy") {
      out.policy = as_string(value, key);
    } else if (key == "gpu_fraction") {
      out.gpu_fraction = as_number(value, key);
    } else {
      unknown_key(value, "scheduler option", key, kKeys);
    }
  }
  return out;
}

/// "cache": "lru"  |  {"policy": "mrs", "ratio": 0.25, "alpha": 0.3, ...}
CacheSpec parse_cache(const JsonValue& v) {
  CacheSpec out;
  if (v.is_string()) {
    out.policy = std::get<std::string>(v.value);
    return out;
  }
  if (!v.is_object()) spec_error(v.offset, "'cache' must be a string or an object");
  static const std::vector<std::string> kKeys{"alpha", "policy", "ratio", "top_p_factor"};
  for (const auto& [key, value] : std::get<JsonObject>(v.value)) {
    if (key == "policy") {
      out.policy = as_string(value, key);
    } else if (key == "ratio") {
      out.ratio = as_number(value, key);
    } else if (key == "alpha") {
      out.alpha = as_number(value, key);
    } else if (key == "top_p_factor") {
      out.top_p_factor = as_count(value, key);
    } else {
      unknown_key(value, "cache option", key, kKeys);
    }
  }
  return out;
}

/// "prefetch": "impact"  |  {"policy": "impact", "depth": 3, ...}
PrefetchSpec parse_prefetch(const JsonValue& v) {
  PrefetchSpec out;
  if (v.is_string()) {
    out.policy = std::get<std::string>(v.value);
    return out;
  }
  if (!v.is_object()) spec_error(v.offset, "'prefetch' must be a string or an object");
  static const std::vector<std::string> kKeys{"confidence_decay", "depth",
                                              "max_per_layer", "policy"};
  for (const auto& [key, value] : std::get<JsonObject>(v.value)) {
    if (key == "policy") {
      out.policy = as_string(value, key);
    } else if (key == "depth") {
      out.depth = as_count(value, key);
    } else if (key == "confidence_decay") {
      out.confidence_decay = as_number(value, key);
    } else if (key == "max_per_layer") {
      out.max_per_layer = as_count(value, key);
    } else {
      unknown_key(value, "prefetch option", key, kKeys);
    }
  }
  return out;
}

/// "topology": "dual_a6000"  |  {"preset": "quad_sim", "devices": 4}
TopologySpec parse_topology(const JsonValue& v) {
  TopologySpec out;
  if (v.is_string()) {
    out.preset = std::get<std::string>(v.value);
    return out;
  }
  if (!v.is_object()) spec_error(v.offset, "'topology' must be a string or an object");
  static const std::vector<std::string> kKeys{"devices", "preset"};
  for (const auto& [key, value] : std::get<JsonObject>(v.value)) {
    if (key == "preset") {
      out.preset = as_string(value, key);
    } else if (key == "devices") {
      out.devices = as_count(value, key);
    } else {
      unknown_key(value, "topology option", key, kKeys);
    }
  }
  return out;
}

exec::ExecutionMode exec_from_name(const JsonValue& v) {
  const std::string& name = as_string(v, "exec");
  if (name == "simulated") return exec::ExecutionMode::Simulated;
  if (name == "threaded") return exec::ExecutionMode::Threaded;
  if (name == "performance") return exec::ExecutionMode::Performance;
  static const std::vector<std::string> kModes{"simulated", "threaded", "performance"};
  spec_error(v.offset, util::unknown_name_message("execution mode", name, kModes));
}

// ---------------------------------------------------------------------------
// Serialisation.
// ---------------------------------------------------------------------------

std::string quote(std::string_view s) { return json_quote(s); }

}  // namespace

std::string json_quote(std::string_view s) { return util::json::quote(s); }

const char* to_string(WarmupSeeding w) {
  switch (w) {
    case WarmupSeeding::None: return "none";
    case WarmupSeeding::Seeded: return "seeded";
    case WarmupSeeding::Pinned: return "pinned";
  }
  HYBRIMOE_ASSERT(false, "unrepresentable WarmupSeeding value");
}

WarmupSeeding warmup_from_name(std::string_view name) {
  if (name == "none") return WarmupSeeding::None;
  if (name == "seeded") return WarmupSeeding::Seeded;
  if (name == "pinned") return WarmupSeeding::Pinned;
  static const std::vector<std::string> kNames{"none", "pinned", "seeded"};
  throw std::invalid_argument(util::unknown_name_message("warmup seeding", name, kNames));
}

std::string StackSpec::default_name() const {
  std::string out = scheduler.policy + "+" + cache.policy;
  if (prefetch.policy != "none") out += "+" + prefetch.policy;
  return out;
}

std::string StackSpec::display_name() const {
  return name.empty() ? default_name() : name;
}

void StackSpec::validate() const {
  // Component names resolve through the registries, so unknown names fail
  // with the registry's did-you-mean message listing what is available.
  (void)scheduler_registry().get(scheduler.policy);
  (void)cache_policy_registry().get(cache.policy);
  (void)prefetcher_registry().get(prefetch.policy);

  if (scheduler.gpu_fraction.has_value()) {
    HYBRIMOE_REQUIRE(scheduler.policy == "static-layer",
                     "scheduler option 'gpu_fraction' only applies to policy "
                     "'static-layer' (got '" + scheduler.policy + "')");
    HYBRIMOE_REQUIRE(*scheduler.gpu_fraction >= 0.0 && *scheduler.gpu_fraction <= 1.0,
                     "scheduler 'gpu_fraction' must be in [0, 1]");
  }

  if (cache.ratio.has_value())
    HYBRIMOE_REQUIRE(*cache.ratio >= 0.0 && *cache.ratio <= 1.0,
                     "cache 'ratio' must be in [0, 1]");
  if (cache.alpha.has_value() || cache.top_p_factor.has_value()) {
    HYBRIMOE_REQUIRE(cache.policy == "mrs",
                     "cache options 'alpha'/'top_p_factor' only apply to policy "
                     "'mrs' (got '" + cache.policy + "')");
    cache::MrsPolicy::Params params;
    if (cache.alpha.has_value()) params.alpha = *cache.alpha;
    if (cache.top_p_factor.has_value()) params.top_p_factor = *cache.top_p_factor;
    params.validate();
  }

  if (prefetch.depth.has_value() || prefetch.confidence_decay.has_value())
    HYBRIMOE_REQUIRE(prefetch.policy == "impact",
                     "prefetch options 'depth'/'confidence_decay' only apply to "
                     "policy 'impact' (got '" + prefetch.policy + "')");
  if (prefetch.max_per_layer.has_value())
    HYBRIMOE_REQUIRE(prefetch.policy == "impact" || prefetch.policy == "next-layer",
                     "prefetch option 'max_per_layer' requires a prefetching "
                     "policy (got '" + prefetch.policy + "')");
  if (prefetch.policy == "impact") {
    core::ImpactDrivenPrefetcher::Params params;
    if (prefetch.depth.has_value()) params.depth = *prefetch.depth;
    if (prefetch.confidence_decay.has_value())
      params.confidence_decay = *prefetch.confidence_decay;
    if (prefetch.max_per_layer.has_value()) params.max_per_layer = *prefetch.max_per_layer;
    params.validate();
  } else if (prefetch.max_per_layer.has_value()) {
    HYBRIMOE_REQUIRE(*prefetch.max_per_layer >= 1,
                     "prefetch 'max_per_layer' must be >= 1");
  }

  if (!topology.preset.empty()) (void)topology_registry().get(topology.preset);
  if (topology.devices.has_value())
    HYBRIMOE_REQUIRE(*topology.devices >= 1 && *topology.devices <= 254,
                     "topology 'devices' must be in [1, 254]");

  if (overhead_us.has_value())
    HYBRIMOE_REQUIRE(*overhead_us >= 0.0, "'overhead_us' must be >= 0");

  if (kv.has_value()) kv->validate();
}

StackSpec parse_stack_spec(std::string_view text) {
  const JsonValue document =
      util::json::Parser(text, "stack spec").parse_document();
  static const std::vector<std::string> kKeys{
      "cache",          "cache_maintenance", "dynamic_inserts", "exec",
      "kv",             "name",              "overhead_us",     "prefetch",
      "scenario",       "scheduler",         "topology",        "update_scores",
      "warmup"};

  StackSpec spec;
  for (const auto& [key, value] : std::get<JsonObject>(document.value)) {
    if (key == "name") {
      spec.name = as_string(value, key);
    } else if (key == "scheduler") {
      spec.scheduler = parse_scheduler(value);
    } else if (key == "cache") {
      spec.cache = parse_cache(value);
    } else if (key == "prefetch") {
      spec.prefetch = parse_prefetch(value);
    } else if (key == "topology") {
      spec.topology = parse_topology(value);
    } else if (key == "dynamic_inserts") {
      spec.dynamic_cache_inserts = as_bool(value, key);
    } else if (key == "update_scores") {
      spec.update_policy_scores = as_bool(value, key);
    } else if (key == "cache_maintenance") {
      spec.cache_maintenance = as_bool(value, key);
    } else if (key == "overhead_us") {
      spec.overhead_us = as_number(value, key);
    } else if (key == "warmup") {
      try {
        spec.warmup = warmup_from_name(as_string(value, key));
      } catch (const std::invalid_argument& e) {
        spec_error(value.offset, e.what());
      }
    } else if (key == "exec") {
      spec.execution = exec_from_name(value);
    } else if (key == "scenario") {
      if (value.is_string()) {
        try {
          spec.scenario =
              scenario::scenario_registry().get(std::get<std::string>(value.value));
        } catch (const std::invalid_argument& e) {
          spec_error(value.offset, e.what());
        }
      } else {
        spec.scenario = scenario::scenario_from_json(value);
      }
    } else if (key == "kv") {
      spec.kv = serve_sim::kv_from_json(value);
    } else {
      unknown_key(value, "spec key", key, kKeys);
    }
  }
  return spec;
}

std::string to_json(const StackSpec& spec) {
  std::ostringstream os;
  os << "{";
  FieldWriter w(os);

  if (!spec.name.empty()) w.field("name") << quote(spec.name);

  if (spec.scheduler.gpu_fraction.has_value()) {
    w.field("scheduler") << "{\"policy\": " << quote(spec.scheduler.policy)
                         << ", \"gpu_fraction\": "
                         << format_number(*spec.scheduler.gpu_fraction) << "}";
  } else {
    w.field("scheduler") << quote(spec.scheduler.policy);
  }

  const bool cache_policy_only = !spec.cache.ratio.has_value() &&
                                 !spec.cache.alpha.has_value() &&
                                 !spec.cache.top_p_factor.has_value();
  if (cache_policy_only) {
    w.field("cache") << quote(spec.cache.policy);
  } else {
    w.field("cache") << "{\"policy\": " << quote(spec.cache.policy);
    if (spec.cache.ratio.has_value())
      os << ", \"ratio\": " << format_number(*spec.cache.ratio);
    if (spec.cache.alpha.has_value())
      os << ", \"alpha\": " << format_number(*spec.cache.alpha);
    if (spec.cache.top_p_factor.has_value())
      os << ", \"top_p_factor\": " << *spec.cache.top_p_factor;
    os << "}";
  }

  const bool prefetch_policy_only = !spec.prefetch.depth.has_value() &&
                                    !spec.prefetch.confidence_decay.has_value() &&
                                    !spec.prefetch.max_per_layer.has_value();
  if (prefetch_policy_only) {
    w.field("prefetch") << quote(spec.prefetch.policy);
  } else {
    w.field("prefetch") << "{\"policy\": " << quote(spec.prefetch.policy);
    if (spec.prefetch.depth.has_value()) os << ", \"depth\": " << *spec.prefetch.depth;
    if (spec.prefetch.confidence_decay.has_value())
      os << ", \"confidence_decay\": " << format_number(*spec.prefetch.confidence_decay);
    if (spec.prefetch.max_per_layer.has_value())
      os << ", \"max_per_layer\": " << *spec.prefetch.max_per_layer;
    os << "}";
  }

  if (!spec.topology.empty()) {
    if (spec.topology.devices.has_value()) {
      w.field("topology") << "{\"preset\": " << quote(spec.topology.preset)
                          << ", \"devices\": " << *spec.topology.devices << "}";
    } else {
      w.field("topology") << quote(spec.topology.preset);
    }
  }

  w.field("dynamic_inserts") << (spec.dynamic_cache_inserts ? "true" : "false");
  w.field("update_scores") << (spec.update_policy_scores ? "true" : "false");
  w.field("cache_maintenance") << (spec.cache_maintenance ? "true" : "false");
  if (spec.overhead_us.has_value())
    w.field("overhead_us") << format_number(*spec.overhead_us);
  w.field("warmup") << quote(to_string(spec.warmup));
  if (spec.execution.has_value())
    w.field("exec") << quote(exec::to_string(*spec.execution));
  if (spec.scenario.has_value())
    w.field("scenario") << scenario::to_json(*spec.scenario);
  if (spec.kv.has_value()) w.field("kv") << serve_sim::to_json(*spec.kv);

  os << "}";
  return os.str();
}

}  // namespace hybrimoe::runtime
