#include "runtime/session.hpp"

namespace hybrimoe::runtime {

namespace {

/// Seed offset separating warmup traces from evaluation traces.
constexpr std::uint64_t kWarmupSeedSalt = 0x5EEDFACEULL;

workload::TraceGenParams warmup_params(const workload::TraceGenParams& base) {
  workload::TraceGenParams p = base;
  p.gate_seed = base.effective_gate_seed();  // same model instance ...
  p.seed = base.seed ^ kWarmupSeedSalt;      // ... different token stream
  return p;
}

}  // namespace

ExperimentHarness::ExperimentHarness(ExperimentSpec spec)
    : spec_(std::move(spec)),
      costs_(spec_.machine, spec_.model),
      generator_(spec_.model, spec_.trace) {
  // Warmup statistics from an independent trace: same gates, different
  // token process — no oracle knowledge of the evaluation trace.
  workload::TraceGenerator warmup_gen(spec_.model, warmup_params(spec_.trace));
  const auto warmup_trace = warmup_gen.generate_decode(spec_.warmup_steps);
  warmup_frequencies_ = workload::activation_frequencies(warmup_trace, spec_.model);
}

const workload::PrefillTrace& ExperimentHarness::prefill_trace(std::size_t tokens) {
  auto it = prefill_traces_.find(tokens);
  if (it == prefill_traces_.end()) {
    // A fresh conversation per prompt length, deterministic in (seed, length).
    generator_.reset(spec_.trace.seed + tokens * 2654435761ULL);
    it = prefill_traces_.emplace(tokens, generator_.generate_prefill(tokens)).first;
  }
  return it->second;
}

const workload::DecodeTrace& ExperimentHarness::decode_trace(std::size_t steps) {
  auto it = decode_traces_.find(steps);
  if (it == decode_traces_.end()) {
    generator_.reset(spec_.trace.seed + steps * 0x9E3779B1ULL + 1);
    it = decode_traces_.emplace(steps, generator_.generate_decode(steps)).first;
  }
  return it->second;
}

std::unique_ptr<OffloadEngine> ExperimentHarness::build(Framework framework) const {
  EngineBuildInfo info;
  info.cache_ratio = spec_.cache_ratio;
  info.warmup_frequencies = warmup_frequencies_;
  info.seed = spec_.trace.seed;
  return make_engine(framework, costs_, info);
}

std::unique_ptr<OffloadEngine> ExperimentHarness::build(
    const core::HybriMoeConfig& config) const {
  EngineBuildInfo info;
  info.cache_ratio = spec_.cache_ratio;
  info.warmup_frequencies = warmup_frequencies_;
  info.seed = spec_.trace.seed;
  return make_ablation_engine(config, costs_, info);
}

StageMetrics ExperimentHarness::run_prefill(Framework framework, std::size_t tokens) {
  const auto& trace = prefill_trace(tokens);
  return build(framework)->run_prefill(trace);
}

StageMetrics ExperimentHarness::run_decode(Framework framework, std::size_t steps) {
  const auto& trace = decode_trace(steps);
  return build(framework)->run_decode(trace);
}

StageMetrics ExperimentHarness::run_prefill(const core::HybriMoeConfig& config,
                                            std::size_t tokens) {
  const auto& trace = prefill_trace(tokens);
  return build(config)->run_prefill(trace);
}

StageMetrics ExperimentHarness::run_decode(const core::HybriMoeConfig& config,
                                           std::size_t steps) {
  const auto& trace = decode_trace(steps);
  return build(config)->run_decode(trace);
}

}  // namespace hybrimoe::runtime
